# Empty dependencies file for example_ecs_memcached.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/example_ecs_memcached.dir/ecs_memcached.cpp.o"
  "CMakeFiles/example_ecs_memcached.dir/ecs_memcached.cpp.o.d"
  "example_ecs_memcached"
  "example_ecs_memcached.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_ecs_memcached.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/example_ebs_storage.dir/ebs_storage.cpp.o"
  "CMakeFiles/example_ebs_storage.dir/ebs_storage.cpp.o.d"
  "example_ebs_storage"
  "example_ebs_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_ebs_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for example_ebs_storage.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for example_incast_rescue.
# This may be replaced when dependencies are built.

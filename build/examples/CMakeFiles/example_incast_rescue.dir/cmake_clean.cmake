file(REMOVE_RECURSE
  "CMakeFiles/example_incast_rescue.dir/incast_rescue.cpp.o"
  "CMakeFiles/example_incast_rescue.dir/incast_rescue.cpp.o.d"
  "example_incast_rescue"
  "example_incast_rescue.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_incast_rescue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

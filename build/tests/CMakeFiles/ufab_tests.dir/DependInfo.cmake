
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/baselines/clove_test.cpp" "tests/CMakeFiles/ufab_tests.dir/baselines/clove_test.cpp.o" "gcc" "tests/CMakeFiles/ufab_tests.dir/baselines/clove_test.cpp.o.d"
  "/root/repo/tests/baselines/swift_test.cpp" "tests/CMakeFiles/ufab_tests.dir/baselines/swift_test.cpp.o" "gcc" "tests/CMakeFiles/ufab_tests.dir/baselines/swift_test.cpp.o.d"
  "/root/repo/tests/baselines/transport_integration_test.cpp" "tests/CMakeFiles/ufab_tests.dir/baselines/transport_integration_test.cpp.o" "gcc" "tests/CMakeFiles/ufab_tests.dir/baselines/transport_integration_test.cpp.o.d"
  "/root/repo/tests/core/core_test.cpp" "tests/CMakeFiles/ufab_tests.dir/core/core_test.cpp.o" "gcc" "tests/CMakeFiles/ufab_tests.dir/core/core_test.cpp.o.d"
  "/root/repo/tests/harness/harness_test.cpp" "tests/CMakeFiles/ufab_tests.dir/harness/harness_test.cpp.o" "gcc" "tests/CMakeFiles/ufab_tests.dir/harness/harness_test.cpp.o.d"
  "/root/repo/tests/integration/apps_across_schemes_test.cpp" "tests/CMakeFiles/ufab_tests.dir/integration/apps_across_schemes_test.cpp.o" "gcc" "tests/CMakeFiles/ufab_tests.dir/integration/apps_across_schemes_test.cpp.o.d"
  "/root/repo/tests/integration/property_test.cpp" "tests/CMakeFiles/ufab_tests.dir/integration/property_test.cpp.o" "gcc" "tests/CMakeFiles/ufab_tests.dir/integration/property_test.cpp.o.d"
  "/root/repo/tests/sim/link_test.cpp" "tests/CMakeFiles/ufab_tests.dir/sim/link_test.cpp.o" "gcc" "tests/CMakeFiles/ufab_tests.dir/sim/link_test.cpp.o.d"
  "/root/repo/tests/sim/simulator_test.cpp" "tests/CMakeFiles/ufab_tests.dir/sim/simulator_test.cpp.o" "gcc" "tests/CMakeFiles/ufab_tests.dir/sim/simulator_test.cpp.o.d"
  "/root/repo/tests/sim/switch_test.cpp" "tests/CMakeFiles/ufab_tests.dir/sim/switch_test.cpp.o" "gcc" "tests/CMakeFiles/ufab_tests.dir/sim/switch_test.cpp.o.d"
  "/root/repo/tests/stats/stats_test.cpp" "tests/CMakeFiles/ufab_tests.dir/stats/stats_test.cpp.o" "gcc" "tests/CMakeFiles/ufab_tests.dir/stats/stats_test.cpp.o.d"
  "/root/repo/tests/telemetry/int_codec_test.cpp" "tests/CMakeFiles/ufab_tests.dir/telemetry/int_codec_test.cpp.o" "gcc" "tests/CMakeFiles/ufab_tests.dir/telemetry/int_codec_test.cpp.o.d"
  "/root/repo/tests/telemetry/telemetry_test.cpp" "tests/CMakeFiles/ufab_tests.dir/telemetry/telemetry_test.cpp.o" "gcc" "tests/CMakeFiles/ufab_tests.dir/telemetry/telemetry_test.cpp.o.d"
  "/root/repo/tests/topo/network_test.cpp" "tests/CMakeFiles/ufab_tests.dir/topo/network_test.cpp.o" "gcc" "tests/CMakeFiles/ufab_tests.dir/topo/network_test.cpp.o.d"
  "/root/repo/tests/transport/transport_test.cpp" "tests/CMakeFiles/ufab_tests.dir/transport/transport_test.cpp.o" "gcc" "tests/CMakeFiles/ufab_tests.dir/transport/transport_test.cpp.o.d"
  "/root/repo/tests/ufab/edge_agent_options_test.cpp" "tests/CMakeFiles/ufab_tests.dir/ufab/edge_agent_options_test.cpp.o" "gcc" "tests/CMakeFiles/ufab_tests.dir/ufab/edge_agent_options_test.cpp.o.d"
  "/root/repo/tests/ufab/edge_agent_test.cpp" "tests/CMakeFiles/ufab_tests.dir/ufab/edge_agent_test.cpp.o" "gcc" "tests/CMakeFiles/ufab_tests.dir/ufab/edge_agent_test.cpp.o.d"
  "/root/repo/tests/ufab/token_assigner_test.cpp" "tests/CMakeFiles/ufab_tests.dir/ufab/token_assigner_test.cpp.o" "gcc" "tests/CMakeFiles/ufab_tests.dir/ufab/token_assigner_test.cpp.o.d"
  "/root/repo/tests/ufab/wfq_test.cpp" "tests/CMakeFiles/ufab_tests.dir/ufab/wfq_test.cpp.o" "gcc" "tests/CMakeFiles/ufab_tests.dir/ufab/wfq_test.cpp.o.d"
  "/root/repo/tests/workload/workload_test.cpp" "tests/CMakeFiles/ufab_tests.dir/workload/workload_test.cpp.o" "gcc" "tests/CMakeFiles/ufab_tests.dir/workload/workload_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ufab.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty compiler generated dependencies file for ufab_tests.
# This may be replaced when dependencies are built.

# Empty dependencies file for fig17_large_scale.
# This may be replaced when dependencies are built.

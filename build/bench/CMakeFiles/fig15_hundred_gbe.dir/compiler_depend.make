# Empty compiler generated dependencies file for fig15_hundred_gbe.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig15_hundred_gbe.dir/fig15_hundred_gbe.cpp.o"
  "CMakeFiles/fig15_hundred_gbe.dir/fig15_hundred_gbe.cpp.o.d"
  "fig15_hundred_gbe"
  "fig15_hundred_gbe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_hundred_gbe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/fig11_bandwidth_guarantee.dir/fig11_bandwidth_guarantee.cpp.o"
  "CMakeFiles/fig11_bandwidth_guarantee.dir/fig11_bandwidth_guarantee.cpp.o.d"
  "fig11_bandwidth_guarantee"
  "fig11_bandwidth_guarantee.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_bandwidth_guarantee.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

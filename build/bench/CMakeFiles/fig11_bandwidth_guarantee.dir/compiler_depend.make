# Empty compiler generated dependencies file for fig11_bandwidth_guarantee.
# This may be replaced when dependencies are built.

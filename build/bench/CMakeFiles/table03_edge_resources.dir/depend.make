# Empty dependencies file for table03_edge_resources.
# This may be replaced when dependencies are built.

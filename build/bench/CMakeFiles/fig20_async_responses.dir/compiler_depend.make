# Empty compiler generated dependencies file for fig20_async_responses.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig20_async_responses.dir/fig20_async_responses.cpp.o"
  "CMakeFiles/fig20_async_responses.dir/fig20_async_responses.cpp.o.d"
  "fig20_async_responses"
  "fig20_async_responses.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig20_async_responses.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

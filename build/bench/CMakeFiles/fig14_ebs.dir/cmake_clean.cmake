file(REMOVE_RECURSE
  "CMakeFiles/fig14_ebs.dir/fig14_ebs.cpp.o"
  "CMakeFiles/fig14_ebs.dir/fig14_ebs.cpp.o.d"
  "fig14_ebs"
  "fig14_ebs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_ebs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

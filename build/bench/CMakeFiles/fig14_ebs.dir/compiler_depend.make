# Empty compiler generated dependencies file for fig14_ebs.
# This may be replaced when dependencies are built.

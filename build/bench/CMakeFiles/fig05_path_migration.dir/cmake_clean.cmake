file(REMOVE_RECURSE
  "CMakeFiles/fig05_path_migration.dir/fig05_path_migration.cpp.o"
  "CMakeFiles/fig05_path_migration.dir/fig05_path_migration.cpp.o.d"
  "fig05_path_migration"
  "fig05_path_migration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_path_migration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

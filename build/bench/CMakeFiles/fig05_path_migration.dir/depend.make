# Empty dependencies file for fig05_path_migration.
# This may be replaced when dependencies are built.

# Empty dependencies file for fig12_incast_bounded_latency.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig12_incast_bounded_latency.dir/fig12_incast_bounded_latency.cpp.o"
  "CMakeFiles/fig12_incast_bounded_latency.dir/fig12_incast_bounded_latency.cpp.o.d"
  "fig12_incast_bounded_latency"
  "fig12_incast_bounded_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_incast_bounded_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for fig16_dynamic_workload.
# This may be replaced when dependencies are built.

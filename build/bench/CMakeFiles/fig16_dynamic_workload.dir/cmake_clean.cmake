file(REMOVE_RECURSE
  "CMakeFiles/fig16_dynamic_workload.dir/fig16_dynamic_workload.cpp.o"
  "CMakeFiles/fig16_dynamic_workload.dir/fig16_dynamic_workload.cpp.o.d"
  "fig16_dynamic_workload"
  "fig16_dynamic_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_dynamic_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

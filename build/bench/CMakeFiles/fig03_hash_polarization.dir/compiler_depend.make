# Empty compiler generated dependencies file for fig03_hash_polarization.
# This may be replaced when dependencies are built.

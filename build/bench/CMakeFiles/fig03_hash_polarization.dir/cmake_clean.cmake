file(REMOVE_RECURSE
  "CMakeFiles/fig03_hash_polarization.dir/fig03_hash_polarization.cpp.o"
  "CMakeFiles/fig03_hash_polarization.dir/fig03_hash_polarization.cpp.o.d"
  "fig03_hash_polarization"
  "fig03_hash_polarization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_hash_polarization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/fig01_burst_interference.dir/fig01_burst_interference.cpp.o"
  "CMakeFiles/fig01_burst_interference.dir/fig01_burst_interference.cpp.o.d"
  "fig01_burst_interference"
  "fig01_burst_interference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_burst_interference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

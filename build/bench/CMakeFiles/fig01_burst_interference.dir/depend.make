# Empty dependencies file for fig01_burst_interference.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig15_probe_overhead.dir/fig15_probe_overhead.cpp.o"
  "CMakeFiles/fig15_probe_overhead.dir/fig15_probe_overhead.cpp.o.d"
  "fig15_probe_overhead"
  "fig15_probe_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_probe_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

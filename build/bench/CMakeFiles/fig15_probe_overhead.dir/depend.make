# Empty dependencies file for fig15_probe_overhead.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/table04_core_resources.dir/table04_core_resources.cpp.o"
  "CMakeFiles/table04_core_resources.dir/table04_core_resources.cpp.o.d"
  "table04_core_resources"
  "table04_core_resources.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table04_core_resources.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for table04_core_resources.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig04_incast_latency.dir/fig04_incast_latency.cpp.o"
  "CMakeFiles/fig04_incast_latency.dir/fig04_incast_latency.cpp.o.d"
  "fig04_incast_latency"
  "fig04_incast_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_incast_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for ufab.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/clove.cpp" "src/CMakeFiles/ufab.dir/baselines/clove.cpp.o" "gcc" "src/CMakeFiles/ufab.dir/baselines/clove.cpp.o.d"
  "/root/repo/src/baselines/es_transport.cpp" "src/CMakeFiles/ufab.dir/baselines/es_transport.cpp.o" "gcc" "src/CMakeFiles/ufab.dir/baselines/es_transport.cpp.o.d"
  "/root/repo/src/baselines/pwc_transport.cpp" "src/CMakeFiles/ufab.dir/baselines/pwc_transport.cpp.o" "gcc" "src/CMakeFiles/ufab.dir/baselines/pwc_transport.cpp.o.d"
  "/root/repo/src/baselines/swift.cpp" "src/CMakeFiles/ufab.dir/baselines/swift.cpp.o" "gcc" "src/CMakeFiles/ufab.dir/baselines/swift.cpp.o.d"
  "/root/repo/src/core/log.cpp" "src/CMakeFiles/ufab.dir/core/log.cpp.o" "gcc" "src/CMakeFiles/ufab.dir/core/log.cpp.o.d"
  "/root/repo/src/core/rng.cpp" "src/CMakeFiles/ufab.dir/core/rng.cpp.o" "gcc" "src/CMakeFiles/ufab.dir/core/rng.cpp.o.d"
  "/root/repo/src/core/strings.cpp" "src/CMakeFiles/ufab.dir/core/strings.cpp.o" "gcc" "src/CMakeFiles/ufab.dir/core/strings.cpp.o.d"
  "/root/repo/src/harness/experiment.cpp" "src/CMakeFiles/ufab.dir/harness/experiment.cpp.o" "gcc" "src/CMakeFiles/ufab.dir/harness/experiment.cpp.o.d"
  "/root/repo/src/harness/fabric.cpp" "src/CMakeFiles/ufab.dir/harness/fabric.cpp.o" "gcc" "src/CMakeFiles/ufab.dir/harness/fabric.cpp.o.d"
  "/root/repo/src/harness/schemes.cpp" "src/CMakeFiles/ufab.dir/harness/schemes.cpp.o" "gcc" "src/CMakeFiles/ufab.dir/harness/schemes.cpp.o.d"
  "/root/repo/src/harness/vm_map.cpp" "src/CMakeFiles/ufab.dir/harness/vm_map.cpp.o" "gcc" "src/CMakeFiles/ufab.dir/harness/vm_map.cpp.o.d"
  "/root/repo/src/sim/host.cpp" "src/CMakeFiles/ufab.dir/sim/host.cpp.o" "gcc" "src/CMakeFiles/ufab.dir/sim/host.cpp.o.d"
  "/root/repo/src/sim/link.cpp" "src/CMakeFiles/ufab.dir/sim/link.cpp.o" "gcc" "src/CMakeFiles/ufab.dir/sim/link.cpp.o.d"
  "/root/repo/src/sim/packet.cpp" "src/CMakeFiles/ufab.dir/sim/packet.cpp.o" "gcc" "src/CMakeFiles/ufab.dir/sim/packet.cpp.o.d"
  "/root/repo/src/sim/switch.cpp" "src/CMakeFiles/ufab.dir/sim/switch.cpp.o" "gcc" "src/CMakeFiles/ufab.dir/sim/switch.cpp.o.d"
  "/root/repo/src/stats/cdf.cpp" "src/CMakeFiles/ufab.dir/stats/cdf.cpp.o" "gcc" "src/CMakeFiles/ufab.dir/stats/cdf.cpp.o.d"
  "/root/repo/src/stats/percentile.cpp" "src/CMakeFiles/ufab.dir/stats/percentile.cpp.o" "gcc" "src/CMakeFiles/ufab.dir/stats/percentile.cpp.o.d"
  "/root/repo/src/stats/rate_meter.cpp" "src/CMakeFiles/ufab.dir/stats/rate_meter.cpp.o" "gcc" "src/CMakeFiles/ufab.dir/stats/rate_meter.cpp.o.d"
  "/root/repo/src/stats/timeseries.cpp" "src/CMakeFiles/ufab.dir/stats/timeseries.cpp.o" "gcc" "src/CMakeFiles/ufab.dir/stats/timeseries.cpp.o.d"
  "/root/repo/src/telemetry/bloom.cpp" "src/CMakeFiles/ufab.dir/telemetry/bloom.cpp.o" "gcc" "src/CMakeFiles/ufab.dir/telemetry/bloom.cpp.o.d"
  "/root/repo/src/telemetry/core_agent.cpp" "src/CMakeFiles/ufab.dir/telemetry/core_agent.cpp.o" "gcc" "src/CMakeFiles/ufab.dir/telemetry/core_agent.cpp.o.d"
  "/root/repo/src/telemetry/int_codec.cpp" "src/CMakeFiles/ufab.dir/telemetry/int_codec.cpp.o" "gcc" "src/CMakeFiles/ufab.dir/telemetry/int_codec.cpp.o.d"
  "/root/repo/src/topo/builders.cpp" "src/CMakeFiles/ufab.dir/topo/builders.cpp.o" "gcc" "src/CMakeFiles/ufab.dir/topo/builders.cpp.o.d"
  "/root/repo/src/topo/network.cpp" "src/CMakeFiles/ufab.dir/topo/network.cpp.o" "gcc" "src/CMakeFiles/ufab.dir/topo/network.cpp.o.d"
  "/root/repo/src/transport/transport.cpp" "src/CMakeFiles/ufab.dir/transport/transport.cpp.o" "gcc" "src/CMakeFiles/ufab.dir/transport/transport.cpp.o.d"
  "/root/repo/src/ufab/edge_agent.cpp" "src/CMakeFiles/ufab.dir/ufab/edge_agent.cpp.o" "gcc" "src/CMakeFiles/ufab.dir/ufab/edge_agent.cpp.o.d"
  "/root/repo/src/ufab/resource_model.cpp" "src/CMakeFiles/ufab.dir/ufab/resource_model.cpp.o" "gcc" "src/CMakeFiles/ufab.dir/ufab/resource_model.cpp.o.d"
  "/root/repo/src/ufab/token_assigner.cpp" "src/CMakeFiles/ufab.dir/ufab/token_assigner.cpp.o" "gcc" "src/CMakeFiles/ufab.dir/ufab/token_assigner.cpp.o.d"
  "/root/repo/src/ufab/wfq.cpp" "src/CMakeFiles/ufab.dir/ufab/wfq.cpp.o" "gcc" "src/CMakeFiles/ufab.dir/ufab/wfq.cpp.o.d"
  "/root/repo/src/workload/apps.cpp" "src/CMakeFiles/ufab.dir/workload/apps.cpp.o" "gcc" "src/CMakeFiles/ufab.dir/workload/apps.cpp.o.d"
  "/root/repo/src/workload/distributions.cpp" "src/CMakeFiles/ufab.dir/workload/distributions.cpp.o" "gcc" "src/CMakeFiles/ufab.dir/workload/distributions.cpp.o.d"
  "/root/repo/src/workload/sources.cpp" "src/CMakeFiles/ufab.dir/workload/sources.cpp.o" "gcc" "src/CMakeFiles/ufab.dir/workload/sources.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libufab.a"
)

// ECS scenario: a latency-sensitive Memcached tenant sharing the fabric with
// a bandwidth-hungry MongoDB tenant (the motivation of Fig. 1 / §5.3).
//
// Shows how to combine the scheme factory, application models and metering —
// run once with uFAB and once with the PicNIC'+WCC+Clove composite and
// compare Memcached's tail latency.
#include <cstdio>

#include "src/harness/experiment.hpp"
#include "src/workload/apps.hpp"

using namespace ufab;
using namespace ufab::time_literals;
using namespace ufab::unit_literals;
using harness::Experiment;
using harness::Scheme;

namespace {

void run(Scheme scheme) {
  Experiment exp(
      scheme,
      [](sim::Simulator& s, const topo::FabricOptions& o) { return topo::make_testbed(s, o); },
      {}, {}, 2026);
  auto& fab = exp.fab();
  auto& vms = fab.vms();

  // Memcached: 6 clients on pod 1, 8 servers on pod 2.
  const TenantId mc = vms.add_tenant("memcached", 1_Gbps);
  std::vector<VmId> clients;
  std::vector<VmId> servers;
  for (int i = 0; i < 6; ++i) clients.push_back(vms.add_vm(mc, HostId{i % 4}));
  for (int i = 0; i < 8; ++i) servers.push_back(vms.add_vm(mc, HostId{4 + i % 4}));

  // MongoDB: continuous 500 KB fetches across the same pods.
  const TenantId mg = vms.add_tenant("mongodb", 1_Gbps);
  std::vector<VmId> mg_clients;
  std::vector<VmId> mg_servers;
  for (int i = 0; i < 8; ++i) {
    mg_clients.push_back(vms.add_vm(mg, HostId{i % 4}));
    mg_servers.push_back(vms.add_vm(mg, HostId{4 + i % 4}));
  }

  workload::RpcApp mongo(fab, mg_clients, mg_servers, workload::RpcApp::mongodb(0_ms, 80_ms, 2),
                         fab.rng().fork("mongo"));
  workload::RpcApp memcached(fab, clients, servers, workload::RpcApp::memcached(0_ms, 80_ms, 1),
                             fab.rng().fork("mc"));
  fab.sim().run_until(100_ms);

  const auto& qct = memcached.qct_us();
  std::printf("%-22s  QPS=%8.0f  QCT p50=%7.1fus  p99=%8.1fus  max=%8.1fus\n",
              harness::to_string(scheme), memcached.qps(20_ms, 80_ms), qct.percentile(50),
              qct.percentile(99), qct.max());
}

}  // namespace

int main() {
  std::printf("ECS example — Memcached + MongoDB tenants on the 8-host testbed\n\n");
  run(Scheme::kPwc);
  run(Scheme::kUfab);
  std::printf("\nuFAB isolates the tenants end to end: Memcached keeps its QPS and its\n"
              "tail completion time stays within a few base RTTs of the unloaded case.\n");
  return 0;
}

// Quickstart: two tenants with 4:2 Gbps guarantees share a 10G trunk.
//
// Demonstrates the core uFAB loop end to end:
//   1. build a fabric and instrument every switch egress with uFAB-C,
//   2. run uFAB-E (the active edge) on every host,
//   3. define tenants/VMs with hose-model guarantees,
//   4. offer traffic and watch token-proportional sharing with work
//      conservation emerge within a few hundred microseconds,
//   5. dump the observability plane: a metrics snapshot plus a Chrome-trace
//      flight recording (open quickstart.trace.json in chrome://tracing or
//      https://ui.perfetto.dev to see probes, window updates, and register
//      writes on per-host/switch/tenant tracks).
#include <cstdio>

#include "src/harness/fabric.hpp"
#include "src/topo/builders.hpp"
#include "src/ufab/edge_agent.hpp"

using namespace ufab;
using namespace ufab::time_literals;
using namespace ufab::unit_literals;

int main() {
  // A dumbbell: two hosts per side of a single 10G trunk.
  harness::Fabric fab([](sim::Simulator& s) { return topo::make_dumbbell(s, 2, 2); }, 42);
  fab.enable_observability();  // passive: flight recorder + metric registry
  fab.instrument_cores();      // uFAB-C on every switch egress

  // One uFAB edge agent per host (the SmartNIC role).
  for (std::size_t h = 0; h < fab.net().host_count(); ++h) {
    const HostId host{static_cast<std::int32_t>(h)};
    fab.adopt_stack(host, std::make_unique<edge::EdgeAgent>(
                              fab.net(), fab.vms(), host, edge::EdgeConfig{},
                              transport::TransportOptions{}, fab.rng().fork(h)));
  }
  fab.install_pair_metering(1_ms);

  // Two tenants with different minimum guarantees.
  auto& vms = fab.vms();
  const TenantId big = vms.add_tenant("big", 4_Gbps);
  const TenantId small = vms.add_tenant("small", 2_Gbps);
  const VmPairId p1{vms.add_vm(big, HostId{0}), vms.add_vm(big, HostId{2})};
  const VmPairId p2{vms.add_vm(small, HostId{1}), vms.add_vm(small, HostId{3})};

  // Both tenants are backlogged: expect a 2:1 split at ~95% utilization.
  fab.keep_backlogged(p1, 0_ms, 50_ms);
  fab.keep_backlogged(p2, 0_ms, 50_ms);

  std::printf("time_ms  big_gbps  small_gbps\n");
  for (int ms = 5; ms <= 50; ms += 5) {
    fab.sim().run_until(TimeNs{ms * 1'000'000LL});
    const auto* m1 = fab.pair_meter(p1);
    const auto* m2 = fab.pair_meter(p2);
    std::printf("%7d  %8.2f  %10.2f\n", ms,
                m1 != nullptr ? m1->rate(fab.sim().now()).gbit_per_sec() : 0.0,
                m2 != nullptr ? m2->rate(fab.sim().now()).gbit_per_sec() : 0.0);
  }
  std::printf("\nExpected: ~6.1 and ~3.0 Gbps — guarantees met, 2:1 proportional\n"
              "sharing, and the trunk at its 95%% utilization target.\n");

  // Dump the run's observability: every registered metric, and the flight
  // recorder as a Chrome trace (validate/summarize with scripts/render_trace.py).
  const auto snap = fab.metrics_snapshot();
  std::printf("\n%zu metrics registered; a few of them:\n", snap.rows.size());
  for (const char* name : {"sim.events_processed", "fabric.total_drops", "core.phi_total"}) {
    if (const auto* row = snap.find(name)) std::printf("  %-22s %.0f\n", name, row->value);
  }
  fab.write_trace_json("quickstart.trace.json");
  std::printf("flight recorder: %zu events -> quickstart.trace.json\n",
              fab.observability()->recorder().size());
  return 0;
}

// EBS scenario: three storage tasks (Storage Agents, Block Agents with 3-way
// replication, Garbage Collection) treated as tenants with individual
// guarantees — the storage pipeline of Fig. 2 / §5.3.
#include <cstdio>

#include "src/harness/experiment.hpp"
#include "src/workload/apps.hpp"

using namespace ufab;
using namespace ufab::time_literals;
using namespace ufab::unit_literals;
using harness::Experiment;
using harness::Scheme;

int main() {
  std::printf("EBS example — SA(2G) / BA(6G) / GC(1G) pipeline on the testbed (uFAB)\n\n");
  Experiment exp(
      Scheme::kUfab,
      [](sim::Simulator& s, const topo::FabricOptions& o) { return topo::make_testbed(s, o); },
      {}, {}, 7);
  auto& fab = exp.fab();
  auto& vms = fab.vms();

  const TenantId sa_t = vms.add_tenant("SA", 2_Gbps);
  const TenantId ba_t = vms.add_tenant("BA", 6_Gbps);
  const TenantId gc_t = vms.add_tenant("GC", 1_Gbps);
  std::vector<VmId> sas;
  std::vector<VmId> bas;
  std::vector<VmId> css;
  std::vector<VmId> gcs;
  for (int i = 0; i < 4; ++i) sas.push_back(vms.add_vm(sa_t, HostId{i}));
  for (int i = 0; i < 4; ++i) {
    bas.push_back(vms.add_vm(ba_t, HostId{4 + i}));
    css.push_back(vms.add_vm(ba_t, HostId{4 + i}));
    gcs.push_back(vms.add_vm(gc_t, HostId{4 + i}));
  }

  workload::EbsApp::Config cfg;
  cfg.stop = 100_ms;
  workload::EbsApp app(fab, sas, bas, css, gcs, cfg, fab.rng().fork("ebs"));
  fab.sim().run_until(130_ms);

  std::printf("blocks completed: %lld\n\n", static_cast<long long>(app.blocks_completed()));
  const auto row = [](const char* task, const PercentileTracker& t) {
    std::printf("  %-6s avg=%7.2fms  p99=%7.2fms\n", task, t.mean(), t.percentile(99));
  };
  row("SA", app.sa_tct_ms());
  row("BA", app.ba_tct_ms());
  row("Total", app.total_tct_ms());
  row("GC", app.gc_tct_ms());
  std::printf(
      "\nWith per-task guarantees enforced by uFAB, every stage completes well inside\n"
      "the EBS latency budget (2 ms average / 10 ms tail, 10G-converted) even though\n"
      "the tasks burst against each other at millisecond timescales.\n");
  return 0;
}

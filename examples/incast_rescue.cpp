// Incast + failure rescue: the two headline mechanisms in one script.
//
//  * 8-to-1 incast with per-VF guarantees: the two-stage admission bounds the
//    aggregate burst, so the receiver downlink queue never exceeds ~3x BDP.
//  * A spine failure mid-run: probe timeouts flag the dead path and the
//    victims migrate within a few RTTs.
#include <cstdio>

#include "src/harness/experiment.hpp"

using namespace ufab;
using namespace ufab::time_literals;
using namespace ufab::unit_literals;
using harness::Experiment;
using harness::Scheme;

int main() {
  std::printf("Incast + failure rescue example (uFAB, 2 leaves x 3 spines)\n\n");
  Experiment exp(
      Scheme::kUfab,
      [](sim::Simulator& s, const topo::FabricOptions& o) {
        return topo::make_leaf_spine(s, 2, 3, 5, o);
      },
      {}, {}, 123);
  auto& fab = exp.fab();
  auto& vms = fab.vms();

  // 8 senders, one receiver, 1 Gbps guarantee each — all start together.
  std::vector<VmPairId> pairs;
  for (int i = 0; i < 8; ++i) {
    const TenantId t = vms.add_tenant("VF" + std::to_string(i), 1_Gbps);
    pairs.push_back(VmPairId{vms.add_vm(t, HostId{i % 5}), vms.add_vm(t, HostId{5})});
    fab.keep_backlogged(pairs.back(), 1_ms, 60_ms);
  }

  // Kill Spine1 at 30 ms.
  fab.schedule_global(30_ms, [&fab] {
    for (sim::Link* l : fab.net().links()) {
      if (l->name().find("Spine1") != std::string::npos) l->set_down(true);
    }
    std::printf("[30 ms] Spine1 failed\n");
  });
  fab.sim().run_until(60_ms);

  double total = 0.0;
  for (const auto& p : pairs) total += exp.pair_rate_gbps(p, 45_ms, 60_ms);
  std::int64_t migrations = 0;
  for (std::size_t h = 0; h < fab.net().host_count(); ++h) {
    migrations += fab.stack_as<edge::EdgeAgent>(HostId{static_cast<std::int32_t>(h)}).migrations();
  }
  const auto rtt = exp.aggregate_rtt_us();
  std::printf("\naggregate goodput after failure: %.2f Gbps (two spines remain)\n", total);
  std::printf("migrations: %lld\n", static_cast<long long>(migrations));
  std::printf("RTT p50=%.1fus p99.9=%.1fus  (bounded by two-stage admission)\n",
              rtt.percentile(50), rtt.percentile(99.9));
  std::printf("max queue across fabric: %lld B, drops: %lld\n",
              static_cast<long long>(exp.max_queue_bytes()),
              static_cast<long long>(exp.total_drops()));
  return 0;
}

#!/usr/bin/env bash
# Soak gate: build and run the long-horizon soak harness (bench/soak).
#
#   scripts/run_soak.sh              # full soak: 1 simulated hour (~1 min wall)
#   scripts/run_soak.sh --smoke      # CI smoke shape (~seconds), fixed seed
#
# The soak exits nonzero on any invariant violation or SLO breach, so this
# script is a gate, not a report.  Knobs pass through the environment:
#
#   UFAB_SOAK_SEED        episode/workload seed        (default 1)
#   UFAB_SOAK_DURATION_S  simulated traffic seconds    (default 3600)
#   UFAB_SOAK_WINDOW_MS   SLO window width             (default 1000)
#   UFAB_SOAK_CSV         per-window SLO rows          (default soak_slo.csv)
#   UFAB_SHARDS           engine shards (the fault plane pins execution to
#                         sequential epochs; the run reports why)
#   UFAB_SANITIZE         e.g. "address,undefined": sanitized build dir
#
# A sanitized selection gets its own build dir, mirroring run_tier1.sh.
set -euo pipefail
cd "$(dirname "$0")/.."

SMOKE=0
if [[ "${1:-}" == "--smoke" ]]; then
  SMOKE=1
  shift
fi

SANITIZE="${UFAB_SANITIZE:-}"
case "${SANITIZE}" in
  "")       BUILD_DIR="build" ;;
  thread)   BUILD_DIR="build-tsan" ;;
  *)        BUILD_DIR="build-sanitize" ;;
esac

cmake -B "${BUILD_DIR}" -S . -DUFAB_SANITIZE="${SANITIZE}"
cmake --build "${BUILD_DIR}" -j "$(nproc)" --target soak

UFAB_SOAK_SMOKE="${SMOKE}" "${BUILD_DIR}/bench/soak"

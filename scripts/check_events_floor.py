#!/usr/bin/env python3
"""Events-per-second floor guard for the perf lane.

Usage:
    scripts/check_events_floor.py BENCH_engine.json [--record]

Reads the serial fused fig17 cell's engine throughput out of
BENCH_engine.json (fig17_fused_ab.b_profile.events_per_sec, keyed by the
workload string so k=4 smoke and k=8 full runs track separate baselines) and
compares it against the committed baseline in
bench_baselines/events_per_sec.json:

  * no baseline for this workload -> record-only: the baseline file is
    written/updated and the guard passes.  Commit the file to start
    enforcing.
  * baseline present -> FAIL if throughput fell more than the tolerance
    below it (UFAB_EVENTS_FLOOR_PCT, default 15).  A rise beyond the same
    tolerance passes with a nudge to refresh the baseline (re-run with
    --record) so the floor ratchets upward with the engine.

--record forces a baseline rewrite from the current run.

events_per_sec is wall-clock bound, so the tolerance must absorb host
variance; CI pins one runner class, and local runs can widen the band via
the environment knob.  Stdlib only.
"""

import json
import os
import sys

BASELINE_PATH = "bench_baselines/events_per_sec.json"


def fail(msg):
    print("check_events_floor: FAIL: %s" % msg, file=sys.stderr)
    sys.exit(1)


def main(argv):
    args = [a for a in argv[1:] if a != "--record"]
    record = "--record" in argv[1:]
    if len(args) != 1:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    with open(args[0], "r", encoding="utf-8") as f:
        bench = json.load(f)
    fused = bench.get("fig17_fused_ab")
    if not isinstance(fused, dict):
        fail("%s has no fig17_fused_ab entry (schema %s)"
             % (args[0], bench.get("schema")))
    profile = fused.get("b_profile") or {}
    eps = profile.get("events_per_sec", 0.0)
    key = fused.get("workload", "unknown")
    if eps <= 0:
        fail("no events_per_sec in fig17_fused_ab.b_profile")

    baselines = {}
    if os.path.exists(BASELINE_PATH):
        with open(BASELINE_PATH, "r", encoding="utf-8") as f:
            baselines = json.load(f)

    tolerance = float(os.environ.get("UFAB_EVENTS_FLOOR_PCT", "15"))
    base = baselines.get(key)
    if base is not None and not record:
        floor = base * (1.0 - tolerance / 100.0)
        ceiling = base * (1.0 + tolerance / 100.0)
        print("events_per_sec: %.3g (baseline %.3g, floor %.3g, +/-%.0f%%) [%s]"
              % (eps, base, floor, tolerance, key))
        if eps < floor:
            fail("engine throughput fell %.1f%% below the recorded baseline"
                 % (100.0 * (1.0 - eps / base)))
        if eps > ceiling:
            print("note: throughput is %.1f%% above baseline — refresh with "
                  "--record to ratchet the floor" % (100.0 * (eps / base - 1.0)))
        return 0

    baselines[key] = eps
    os.makedirs(os.path.dirname(BASELINE_PATH), exist_ok=True)
    with open(BASELINE_PATH, "w", encoding="utf-8") as f:
        json.dump(baselines, f, indent=2, sort_keys=True)
        f.write("\n")
    print("recorded baseline events_per_sec=%.3g for '%s' in %s%s"
          % (eps, key, BASELINE_PATH,
             "" if record else " (no prior baseline; commit it to enforce)"))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))

#!/usr/bin/env python3
"""Validate and summarize a uFAB Chrome trace-event JSON file.

Usage:
    scripts/render_trace.py <trace.json> [--quiet]

Checks that the file is the Chrome trace-event format the flight recorder
emits (an object with a "traceEvents" array whose entries carry the keys
their phase requires), resolves track names from the "M" metadata records,
and prints one summary line per track plus the overall event-name histogram.
Exits non-zero if the file is missing, unparsable, or schema-invalid, so
tests and CI can use it as a validity gate.  Stdlib only.

Schema versions ("ufab_schema" top-level key; absent means 1):
  1  fabric events only (PR 2 flight recorder).
  2  adds engine-profiler counter tracks: "C" events named "prof.*" on the
     profiler process group.
A trace that mixes versions — profiler counters in a schema-1 file, or a
schema newer than this validator — is rejected with a clear message.
"""

import collections
import json
import sys

VALID_PHASES = {"M", "i", "X", "C", "s", "t", "f"}

# Newest trace schema this validator understands.
KNOWN_SCHEMA = 2

# Keys every record of a phase must carry (beyond "ph").
REQUIRED_KEYS = {
    "M": {"name", "pid", "args"},
    "i": {"name", "pid", "tid", "ts", "s"},
    "X": {"name", "pid", "tid", "ts", "dur"},
    "C": {"name", "pid", "tid", "ts", "args"},
    "s": {"name", "id", "pid", "tid", "ts"},
    "t": {"name", "id", "pid", "tid", "ts"},
    "f": {"name", "id", "pid", "tid", "ts"},
}


def fail(msg):
    print("render_trace: INVALID: %s" % msg, file=sys.stderr)
    sys.exit(1)


def validate(events, schema):
    if not isinstance(events, list):
        fail("traceEvents is not an array")
    for n, ev in enumerate(events):
        if not isinstance(ev, dict):
            fail("event %d is not an object" % n)
        ph = ev.get("ph")
        if ph not in VALID_PHASES:
            fail("event %d has unknown phase %r" % (n, ph))
        missing = REQUIRED_KEYS[ph] - ev.keys()
        if missing:
            fail("event %d (ph=%s, name=%r) missing keys %s"
                 % (n, ph, ev.get("name"), sorted(missing)))
        if ph == "M":
            if ev["name"] not in ("process_name", "thread_name"):
                fail("event %d: metadata name %r" % (n, ev["name"]))
            if not isinstance(ev["args"], dict) or "name" not in ev["args"]:
                fail("event %d: metadata args lack a name" % n)
        elif "ts" in ev and not isinstance(ev["ts"], (int, float)):
            fail("event %d: non-numeric ts" % n)
        name = ev.get("name", "")
        is_prof = isinstance(name, str) and name.startswith("prof.")
        if is_prof and schema < 2:
            fail("event %d (%r): trace mixes schema versions — profiler "
                 "counter tracks require \"ufab_schema\": 2 but this trace "
                 "declares schema %d; re-export it with a current build"
                 % (n, name, schema))
        if is_prof and ph == "C":
            args = ev.get("args")
            if not isinstance(args, dict) or not args:
                fail("event %d (%r): profiler counter has no args" % (n, name))
            for key, value in args.items():
                if not isinstance(value, (int, float)):
                    fail("event %d (%r): counter arg %r is non-numeric"
                         % (n, name, key))


def summarize(events, quiet):
    process = {}  # pid -> name
    track = {}  # (pid, tid) -> name
    per_track = collections.defaultdict(collections.Counter)
    span = {}  # (pid, tid) -> [min_ts, max_ts]
    names = collections.Counter()

    for ev in events:
        ph = ev["ph"]
        if ph == "M":
            if ev["name"] == "process_name":
                process[ev["pid"]] = ev["args"]["name"]
            else:
                track[(ev["pid"], ev.get("tid", 0))] = ev["args"]["name"]
            continue
        key = (ev["pid"], ev["tid"])
        per_track[key][ev["name"]] += 1
        names[ev["name"]] += 1
        ts = ev["ts"]
        lohi = span.setdefault(key, [ts, ts])
        lohi[0] = min(lohi[0], ts)
        lohi[1] = max(lohi[1], ts)

    n_events = sum(names.values())
    print("%d events on %d tracks in %d process groups"
          % (n_events, len(per_track), len(process)))
    if quiet:
        return

    def label(key):
        pid, tid = key
        proc = process.get(pid, "pid%d" % pid)
        thread = track.get(key, "tid%d" % tid)
        return "%s/%s" % (proc, thread)

    print("\n%-42s %8s %12s %12s  top events" % ("track", "events", "first_us", "last_us"))
    for key in sorted(per_track, key=lambda k: (k[0], k[1])):
        counts = per_track[key]
        top = ", ".join("%s x%d" % (n, c) for n, c in counts.most_common(3))
        lo, hi = span[key]
        print("%-42s %8d %12.1f %12.1f  %s"
              % (label(key), sum(counts.values()), lo, hi, top))

    print("\nevent-name totals:")
    for name, count in names.most_common():
        print("  %-28s %8d" % (name, count))


def main(argv):
    args = [a for a in argv[1:] if a != "--quiet"]
    quiet = "--quiet" in argv[1:]
    if len(args) != 1:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    try:
        with open(args[0], "r", encoding="utf-8") as f:
            doc = json.load(f)
    except OSError as e:
        fail("cannot read %s: %s" % (args[0], e))
    except json.JSONDecodeError as e:
        fail("not valid JSON: %s" % e)
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        fail("top level is not an object with a traceEvents array")
    schema = doc.get("ufab_schema", 1)
    if not isinstance(schema, int) or schema < 1:
        fail("ufab_schema is %r, expected a positive integer" % (schema,))
    if schema > KNOWN_SCHEMA:
        fail("trace declares schema %d but this validator only understands "
             "up to %d — update scripts/render_trace.py" % (schema, KNOWN_SCHEMA))
    validate(doc["traceEvents"], schema)
    summarize(doc["traceEvents"], quiet)
    print("render_trace: OK (schema %d)" % schema)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))

#!/usr/bin/env python3
"""Render a uFAB engine profile (<bench>.<variant>.profile.json) as a
human-readable imbalance/stall report.

Usage:
    scripts/profile_report.py <profile.json> [more.profile.json ...]
    scripts/profile_report.py --json <profile.json>

The profile is the shard x scope wall-time matrix written by
harness::write_bench_artifacts when UFAB_PROF >= 1 (schema ufab-profile-v1).
The report answers the two questions the sharding work needs answered:

  * stall_fraction — of all shard wall time, how much was spent parked at
    epoch barriers instead of doing useful work?
  * shard_imbalance — max(busy) / mean(busy): how lopsided is the partition?
    1.0 is perfectly balanced; the barrier makes every epoch as slow as the
    busiest shard, so imbalance is an upper bound on the speedup left.

  * events / events_per_sec / ns_per_event — engine throughput: total events
    across shards over the run's wall clock.  The per-event figures are what
    the fused-link work (DESIGN.md §13) moves, so the perf lane floors them.

With --json, emits exactly those derived numbers (single file only) so
scripts/run_perf.sh can merge them into BENCH_engine.json.  Stdlib only.
"""

import json
import sys

BAR_WIDTH = 40


def fail(msg):
    print("profile_report: ERROR: %s" % msg, file=sys.stderr)
    sys.exit(1)


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except OSError as e:
        fail("cannot read %s: %s" % (path, e))
    except json.JSONDecodeError as e:
        fail("%s is not valid JSON: %s" % (path, e))
    if not isinstance(doc, dict) or doc.get("schema") != "ufab-profile-v1":
        fail("%s is not a ufab-profile-v1 profile" % path)
    return doc


def fmt_ms(ns):
    return "%.2f" % (ns / 1e6)


def bar(frac, width=BAR_WIDTH):
    filled = int(round(max(0.0, min(1.0, frac)) * width))
    return "#" * filled + "." * (width - filled)


def occupancy_summary(hist):
    """Median log2 bucket of a histogram: 'empty', or a [lo, hi) range."""
    total = sum(hist)
    if total == 0:
        return "no samples"
    acc = 0
    for i, count in enumerate(hist):
        acc += count
        if acc * 2 >= total:
            if i == 0:
                return "typically empty"
            return "typically %d-%d events" % (2 ** (i - 1), 2 ** i - 1)
    return "no samples"


def report(path, doc):
    derived = doc.get("derived", {})
    epochs = doc.get("epochs", {})
    shards = doc.get("shards_detail", [])
    print("=== %s ===" % path)
    events_total = sum(s.get("events", 0) for s in shards)
    wall_ns = doc.get("wall_ns", 0.0)
    print("shards=%d threaded=%s level=%d lookahead_ns=%s wall_ms=%s"
          % (doc.get("shards", 1), doc.get("threaded", False),
             doc.get("level", 1), doc.get("lookahead_ns", -1),
             fmt_ms(wall_ns)))
    print("events=%d events_per_sec=%.3g ns_per_event=%.1f"
          % (events_total,
             events_total / (wall_ns / 1e9) if wall_ns > 0 else 0.0,
             wall_ns / events_total if events_total > 0 else 0.0))
    print("epochs=%d windows=%d barrier_skips=%d crossings_injected=%d "
          "adaptive=%s epoch_windows=%d"
          % (epochs.get("count", 0), epochs.get("windows", 0),
             epochs.get("barrier_skips", 0), epochs.get("crossings_injected", 0),
             doc.get("adaptive_epochs", False), doc.get("epoch_windows", 1)))
    handoff = doc.get("handoff", {})
    if handoff:
        print("handoff: max_drain_batch=%d mailbox_flushes=%d"
              % (handoff.get("max_drain_batch", 0), handoff.get("mailbox_flushes", 0)))
    print("stall_fraction=%.4f shard_imbalance=%.3f"
          % (derived.get("stall_fraction", 0.0),
             derived.get("shard_imbalance", 1.0)))

    # Epoch-length distribution: simulated time amortized per barrier.  A
    # healthy adaptive run piles up in buckets well above the lookahead.
    epoch_hist = doc.get("epoch_len_ns_log2", [])
    if any(epoch_hist):
        total = sum(epoch_hist)
        peak = max(epoch_hist)
        print("\nepoch length (sim-ns per barrier, log2 buckets):")
        for i, count in enumerate(epoch_hist):
            if count == 0:
                continue
            print("  [%11d, %11d) %8d %5.1f%%  %s"
                  % (2 ** (i - 1) if i > 0 else 0, 2 ** i, count,
                     100.0 * count / total, bar(count / peak, 20)))

    # Per-shard busy/stall split, busy bar normalized to the busiest shard.
    busiest = max((s.get("busy_ns", 0.0) for s in shards), default=0.0)
    print("\n%-6s %10s %10s %7s %9s  %s"
          % ("shard", "busy_ms", "stall_ms", "stall%", "events", "busy (vs busiest)"))
    for s in shards:
        busy = s.get("busy_ns", 0.0)
        stall = s.get("stall_ns", 0.0)
        stall_pct = 100.0 * stall / (busy + stall) if busy + stall > 0 else 0.0
        print("%-6d %10s %10s %6.1f%% %9d  %s"
              % (s.get("shard", 0), fmt_ms(busy), fmt_ms(stall), stall_pct,
                 s.get("events", 0),
                 bar(busy / busiest if busiest > 0 else 0.0)))

    # Scope breakdown aggregated across shards.
    scope_totals = {}
    scope_counts = {}
    for s in shards:
        for name, ns in s.get("scope_ns", {}).items():
            scope_totals[name] = scope_totals.get(name, 0.0) + ns
        for name, n in s.get("scope_count", {}).items():
            scope_counts[name] = scope_counts.get(name, 0) + n
    grand = sum(scope_totals.values())
    print("\n%-18s %10s %7s %12s %9s" % ("scope", "total_ms", "share", "calls", "ns/call"))
    for name in sorted(scope_totals, key=lambda n: -scope_totals[n]):
        total = scope_totals[name]
        calls = scope_counts.get(name, 0)
        if total == 0.0 and calls == 0:
            continue
        print("%-18s %10s %6.1f%% %12d %9.1f"
              % (name, fmt_ms(total),
                 100.0 * total / grand if grand > 0 else 0.0, calls,
                 total / calls if calls > 0 else 0.0))

    # Calendar occupancy from the log2 sample histograms.
    print("\nqueue occupancy (sampled every %d sim-ns):" % doc.get("sample_period_ns", 0))
    for s in shards:
        queue = s.get("queue", {})
        print("  shard %d: %d samples, ring %s, overflow %s"
              % (s.get("shard", 0), queue.get("samples", 0),
                 occupancy_summary(queue.get("ring_occ_log2", [])),
                 occupancy_summary(queue.get("overflow_occ_log2", []))))
    print()


def main(argv):
    args = [a for a in argv[1:] if a != "--json"]
    as_json = "--json" in argv[1:]
    if not args:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    if as_json:
        if len(args) != 1:
            fail("--json takes exactly one profile")
        doc = load(args[0])
        derived = doc.get("derived", {})
        epochs = doc.get("epochs", {})
        events_total = sum(s.get("events", 0) for s in doc.get("shards_detail", []))
        wall_ns = doc.get("wall_ns", 0.0)
        print(json.dumps({
            "events": events_total,
            "events_per_sec": (events_total / (wall_ns / 1e9)
                               if wall_ns > 0 else 0.0),
            "ns_per_event": (wall_ns / events_total
                             if events_total > 0 else 0.0),
            "stall_fraction": derived.get("stall_fraction", 0.0),
            "shard_imbalance": derived.get("shard_imbalance", 1.0),
            "busy_ns_total": derived.get("busy_ns_total", 0.0),
            "stall_ns_total": derived.get("stall_ns_total", 0.0),
            "shards": doc.get("shards", 1),
            "threaded": doc.get("threaded", False),
            "epochs": epochs.get("count", 0),
            "windows": epochs.get("windows", 0),
            "barrier_skips": epochs.get("barrier_skips", 0),
            "crossings_injected": epochs.get("crossings_injected", 0),
            "adaptive_epochs": doc.get("adaptive_epochs", False),
            "epoch_windows": doc.get("epoch_windows", 1),
            "handoff_max_batch": doc.get("handoff", {}).get("max_drain_batch", 0),
        }))
        return 0
    for path in args:
        report(path, load(path))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))

#!/usr/bin/env bash
# Tier-1 gate: configure, build, and run the full test suite.
#
#   scripts/run_tier1.sh                 # plain RelWithDebInfo build
#   scripts/run_tier1.sh address,undefined
#                                        # sanitized lane (ASan+UBSan), own
#                                        # build dir so object files never mix
set -euo pipefail
cd "$(dirname "$0")/.."

SANITIZE="${1:-}"
if [[ -n "${SANITIZE}" ]]; then
  BUILD_DIR="build-sanitize"
  CMAKE_ARGS=(-DUFAB_SANITIZE="${SANITIZE}")
else
  BUILD_DIR="build"
  CMAKE_ARGS=(-DUFAB_SANITIZE=)
fi

cmake -B "${BUILD_DIR}" -S . "${CMAKE_ARGS[@]}"
cmake --build "${BUILD_DIR}" -j "$(nproc)"
ctest --test-dir "${BUILD_DIR}" -j "$(nproc)" --output-on-failure

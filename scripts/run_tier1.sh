#!/usr/bin/env bash
# Tier-1 gate: configure, build, and run the full test suite.
#
#   scripts/run_tier1.sh                 # plain RelWithDebInfo build
#   scripts/run_tier1.sh address,undefined
#                                        # sanitized lane (ASan+UBSan)
#   scripts/run_tier1.sh thread          # TSan lane (sharded engine races)
#
# Each sanitizer selection gets its own build dir so object files never mix.
# Environment (UFAB_SHARDS, UFAB_SHARD_EXEC, UFAB_JOBS, ...) passes through
# to the tests: CI's sharded lane runs `UFAB_SHARDS=4 scripts/run_tier1.sh`.
set -euo pipefail
cd "$(dirname "$0")/.."

SANITIZE="${1:-}"
case "${SANITIZE}" in
  "")       BUILD_DIR="build" ;;
  thread)   BUILD_DIR="build-tsan" ;;
  *)        BUILD_DIR="build-sanitize" ;;
esac
CMAKE_ARGS=(-DUFAB_SANITIZE="${SANITIZE}")

cmake -B "${BUILD_DIR}" -S . "${CMAKE_ARGS[@]}"
cmake --build "${BUILD_DIR}" -j "$(nproc)"
ctest --test-dir "${BUILD_DIR}" -j "$(nproc)" --output-on-failure

#!/usr/bin/env bash
# Engine performance lane: builds Release, runs the data-structure
# microbenchmarks plus interleaved A/B wall-clock comparisons of the fig17
# workload, and writes the numbers to BENCH_engine.json at the repo root.
#
# A/B comparisons, each run interleaved (A B C A B C ..., take the min per
# side) so slow-machine noise and thermal drift hit every side equally:
#   * engine sharding — one fig17 grid cell, UFAB_SHARDS=1 vs =4.  Runs in
#     BOTH smoke (k=4, 1 round) and full (k=8, 3 rounds) so the samples are
#     never null, even on single-CPU hosts;
#   * epoch adaptivity — the same sharded cell with UFAB_ADAPTIVE_EPOCHS=0
#     (legacy one-barrier-per-lookahead-window) vs the adaptive default;
#   * sweep parallelism — the full k=4 grid, UFAB_JOBS=1 vs all cores
#     (full lane only);
#   * profiler overhead — BM_Fig17Slice with UFAB_PROF=0 vs =1, guarded:
#     the lane FAILS if enabling the profiler costs more than
#     UFAB_PROF_GUARD_PCT percent (default 5);
#   * fused link pipelines — the serial fig17 cell with UFAB_FUSED_LINKS=0
#     (legacy two-event serializer) vs the fused default.  Both lanes verify
#     the legacy stdout is byte-identical to the fused one and that fusing
#     cut calendar events by >= UFAB_FUSED_EVENT_CUT_PCT percent (default
#     40, machine-independent).  The full lane additionally FAILS if the
#     fused cell is not UFAB_FUSED_SPEEDUP_FLOOR (default 1.25) times
#     faster than legacy on the k=8 cell.
#
# The full lane additionally records a shard-scaling grid (UFAB_SHARDS=2/4/8
# single-round wall clocks on the k=8 cell) and a first fig17 k=16 row
# (1024 hosts, sharded, profiled).  On hosts with >= 4 CPUs the threaded
# 4-shard run must beat serial by UFAB_SHARD_SPEEDUP_FLOOR (default 2.0) or
# the lane fails; on smaller hosts the numbers are recorded but not gated
# (a 1-CPU host cannot express engine parallelism).
#
# The lane also runs the fig17 cell untimed with UFAB_PROF=1 (serial,
# sharded-adaptive, and sharded-legacy), checks the profiled stdout is
# byte-identical to the unprofiled run (the profiler must be passive),
# verifies the adaptive engine used >= 5x fewer barriers than legacy, and
# merges the stall/imbalance/epoch numbers from the emitted *.profile.json
# into BENCH_engine.json via scripts/profile_report.py.
#
#   scripts/run_perf.sh            # full lane: microbenches + timed fig17
#   scripts/run_perf.sh --smoke    # short: microbenches + k=4 cells
#
# Environment:
#   UFAB_JOBS    worker threads for the sweep-parallel side (default: nproc).
#   UFAB_SHARDS_AB      shard count for the sharded side (default: 4).
#   UFAB_PROF_GUARD_PCT max tolerated profiler overhead percent (default: 5).
#   UFAB_SHARD_SPEEDUP_FLOOR  min 4-shard speedup on >=4-CPU hosts (2.0).
#   UFAB_FUSED_SPEEDUP_FLOOR  min fused-vs-legacy speedup, full lane (1.25).
#   UFAB_FUSED_EVENT_CUT_PCT  min calendar-event cut from fusing (40).
#   UFAB_PERF_SKIP_K16=1      skip the k=16 row (it is the longest run).
set -euo pipefail
cd "$(dirname "$0")/.."

SMOKE=0
if [[ "${1:-}" == "--smoke" ]]; then SMOKE=1; fi

BUILD_DIR="build-perf"
cmake -B "${BUILD_DIR}" -S . -DCMAKE_BUILD_TYPE=Release -DUFAB_SANITIZE= >/dev/null
cmake --build "${BUILD_DIR}" -j "$(nproc)" --target micro_datastructures fig17_large_scale

OUT="BENCH_engine.json"
MICRO_JSON="$(mktemp)"
GUARD_JSON="$(mktemp)"
STDOUT_OFF="$(mktemp)"
STDOUT_ON="$(mktemp)"
trap 'rm -f "${MICRO_JSON}" "${GUARD_JSON}" "${STDOUT_OFF}" "${STDOUT_ON}"' EXIT

cpus_online="$(nproc)"

MIN_TIME=0.5
if [[ "${SMOKE}" == "1" ]]; then MIN_TIME=0.05; fi
"${BUILD_DIR}/bench/micro_datastructures" \
  --benchmark_min_time="${MIN_TIME}" \
  --benchmark_out="${MICRO_JSON}" --benchmark_out_format=json \
  --benchmark_filter='BM_(EventQueue|EventQueueBurst|EventQueueFarHorizon|ShardMailbox|MailboxBatch|EpochBarrier|AdaptiveEpoch|PacketMake|CoreAgentProbe|Fig17Slice|ProfScope)'

# Runs BM_Fig17Slice once under the given UFAB_PROF level and prints its
# real_time in milliseconds.  The guard always uses a 0.2 s min-time (even in
# smoke) — at the smoke min-time the iteration count is too small for a
# stable 5% comparison.
fig17_slice_ms() {
  env UFAB_PROF="$1" "${BUILD_DIR}/bench/micro_datastructures" \
    --benchmark_min_time=0.2 \
    --benchmark_out="${GUARD_JSON}" --benchmark_out_format=json \
    --benchmark_filter='BM_Fig17Slice$' >/dev/null
  python3 -c '
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
for b in doc["benchmarks"]:
    if b["name"] == "BM_Fig17Slice":
        print("%.4f" % b["real_time"])
        break
' "${GUARD_JSON}"
}

# Profiler overhead guard: interleaved min-of-3 of the end-to-end engine
# slice, profiler off vs on.  Runs in smoke too — it is the cheapest place
# to catch an accidentally hot profiling path.
guard_pct="${UFAB_PROF_GUARD_PCT:-5}"
off_samples=""
on_samples=""
for i in 1 2 3; do
  echo "[perf] prof guard, round ${i}/3: UFAB_PROF=0 ..." >&2
  off_samples+="${off_samples:+,}$(fig17_slice_ms 0)"
  echo "[perf] prof guard, round ${i}/3: UFAB_PROF=1 ..." >&2
  on_samples+="${on_samples:+,}$(fig17_slice_ms 1)"
done
prof_overhead=$(python3 -c '
import sys
off = min(float(x) for x in sys.argv[1].split(","))
on = min(float(x) for x in sys.argv[2].split(","))
print("%.2f %.4f %.4f" % (100.0 * (on - off) / off if off > 0 else 0.0, off, on))
' "${off_samples}" "${on_samples}")
read -r overhead_pct off_ms on_ms <<<"${prof_overhead}"
echo "[perf] prof guard: BM_Fig17Slice off=${off_ms}ms on=${on_ms}ms overhead=${overhead_pct}% (limit ${guard_pct}%)" >&2
if python3 -c 'import sys; sys.exit(0 if float(sys.argv[1]) > float(sys.argv[2]) else 1)' \
    "${overhead_pct}" "${guard_pct}"; then
  echo "[perf] FAIL: profiler overhead ${overhead_pct}% exceeds ${guard_pct}%" >&2
  exit 1
fi

# Profiled fig17 cell runs (untimed): serial, sharded-adaptive, and
# sharded-legacy, each into its own artifact dir so the profile files cannot
# collide.  The serial pair doubles as the passivity check: stdout with
# UFAB_PROF=1 must be byte-identical to stdout with UFAB_PROF=0.
jobs="${UFAB_JOBS:-$(nproc)}"
shards_ab="${UFAB_SHARDS_AB:-4}"
prof_k=8
if [[ "${SMOKE}" == "1" ]]; then prof_k=4; fi
cell=(UFAB_FIG17_K="${prof_k}" UFAB_FIG17_ONLY=uFAB,1,0.5 UFAB_JOBS=1 UFAB_OBS=0)
rm -rf bench_artifacts/prof-serial bench_artifacts/prof-sharded \
  bench_artifacts/prof-sharded-legacy bench_artifacts/prof-serial-legacy-links \
  bench_artifacts/prof-k16
echo "[perf] fig17 cell k=${prof_k}: passivity reference (UFAB_PROF=0, serial) ..." >&2
env "${cell[@]}" UFAB_SHARDS=1 UFAB_PROF=0 \
  "${BUILD_DIR}/bench/fig17_large_scale" >"${STDOUT_OFF}"
echo "[perf] fig17 cell k=${prof_k}: profiled serial (UFAB_PROF=1) ..." >&2
env "${cell[@]}" UFAB_SHARDS=1 UFAB_PROF=1 UFAB_METRICS_DIR=bench_artifacts/prof-serial \
  "${BUILD_DIR}/bench/fig17_large_scale" >"${STDOUT_ON}"
if ! cmp -s "${STDOUT_OFF}" "${STDOUT_ON}"; then
  echo "[perf] FAIL: profiler is not passive — fig17 stdout differs between UFAB_PROF=0 and =1:" >&2
  diff "${STDOUT_OFF}" "${STDOUT_ON}" >&2 || true
  exit 1
fi
echo "[perf] passivity OK: profiled stdout byte-identical" >&2
echo "[perf] fig17 cell k=${prof_k}: profiled sharded (UFAB_SHARDS=${shards_ab}, adaptive) ..." >&2
env "${cell[@]}" UFAB_SHARDS="${shards_ab}" UFAB_PROF=1 UFAB_METRICS_DIR=bench_artifacts/prof-sharded \
  "${BUILD_DIR}/bench/fig17_large_scale" >"${STDOUT_ON}"
# The sharded engine must still be byte-identical to serial (any epoch
# schedule is schedule-neutral; DESIGN.md §12).
if ! cmp -s "${STDOUT_OFF}" "${STDOUT_ON}"; then
  echo "[perf] FAIL: sharded stdout differs from serial:" >&2
  diff "${STDOUT_OFF}" "${STDOUT_ON}" >&2 || true
  exit 1
fi
echo "[perf] equivalence OK: sharded stdout byte-identical to serial" >&2
echo "[perf] fig17 cell k=${prof_k}: profiled sharded (legacy epochs, UFAB_ADAPTIVE_EPOCHS=0) ..." >&2
env "${cell[@]}" UFAB_SHARDS="${shards_ab}" UFAB_ADAPTIVE_EPOCHS=0 UFAB_PROF=1 \
  UFAB_METRICS_DIR=bench_artifacts/prof-sharded-legacy \
  "${BUILD_DIR}/bench/fig17_large_scale" >"${STDOUT_ON}"
if ! cmp -s "${STDOUT_OFF}" "${STDOUT_ON}"; then
  echo "[perf] FAIL: legacy-epoch stdout differs from serial:" >&2
  diff "${STDOUT_OFF}" "${STDOUT_ON}" >&2 || true
  exit 1
fi

# Fused-link escape hatch: UFAB_FUSED_LINKS=0 re-enables the legacy
# two-event serializer.  Its stdout must stay byte-identical to the fused
# default, serially and sharded (DESIGN.md §13) — only the event count may
# move, and it must shrink by the floor percentage.
echo "[perf] fig17 cell k=${prof_k}: profiled serial, legacy links (UFAB_FUSED_LINKS=0) ..." >&2
env "${cell[@]}" UFAB_SHARDS=1 UFAB_FUSED_LINKS=0 UFAB_PROF=1 \
  UFAB_METRICS_DIR=bench_artifacts/prof-serial-legacy-links \
  "${BUILD_DIR}/bench/fig17_large_scale" >"${STDOUT_ON}"
if ! cmp -s "${STDOUT_OFF}" "${STDOUT_ON}"; then
  echo "[perf] FAIL: legacy-link stdout differs from fused:" >&2
  diff "${STDOUT_OFF}" "${STDOUT_ON}" >&2 || true
  exit 1
fi
echo "[perf] fig17 cell k=${prof_k}: legacy links sharded (UFAB_SHARDS=${shards_ab}) ..." >&2
env "${cell[@]}" UFAB_SHARDS="${shards_ab}" UFAB_FUSED_LINKS=0 \
  "${BUILD_DIR}/bench/fig17_large_scale" >"${STDOUT_ON}"
if ! cmp -s "${STDOUT_OFF}" "${STDOUT_ON}"; then
  echo "[perf] FAIL: sharded legacy-link stdout differs from serial fused:" >&2
  diff "${STDOUT_OFF}" "${STDOUT_ON}" >&2 || true
  exit 1
fi
echo "[perf] equivalence OK: legacy-link stdout byte-identical to fused" >&2

profile_of() {
  local files=("$1"/*.profile.json)
  if [[ ! -e "${files[0]}" ]]; then
    echo "[perf] FAIL: no profile.json written under $1" >&2
    exit 1
  fi
  scripts/profile_report.py --json "${files[0]}"
}
serial_profile="$(profile_of bench_artifacts/prof-serial)"
sharded_profile="$(profile_of bench_artifacts/prof-sharded)"
legacy_profile="$(profile_of bench_artifacts/prof-sharded-legacy)"
legacy_links_profile="$(profile_of bench_artifacts/prof-serial-legacy-links)"
echo "[perf] stall/imbalance report:" >&2
scripts/profile_report.py bench_artifacts/prof-serial/*.profile.json \
  bench_artifacts/prof-sharded/*.profile.json \
  bench_artifacts/prof-sharded-legacy/*.profile.json \
  bench_artifacts/prof-serial-legacy-links/*.profile.json >&2

# Event-cut guard (machine-independent, runs in smoke too): fusing must
# schedule at least UFAB_FUSED_EVENT_CUT_PCT percent fewer calendar events
# than the legacy serializer on the same cell.
event_cut_pct="${UFAB_FUSED_EVENT_CUT_PCT:-40}"
if ! python3 -c '
import json, sys
fused = json.loads(sys.argv[1])
legacy = json.loads(sys.argv[2])
floor = float(sys.argv[3])
cut = 100.0 * (1.0 - fused["events"] / legacy["events"]) if legacy["events"] else 0.0
print("[perf] fused links: events legacy=%d fused=%d (%.1f%% cut, floor %.0f%%)"
      % (legacy["events"], fused["events"], cut, floor), file=sys.stderr)
sys.exit(0 if cut >= floor else 1)
' "${serial_profile}" "${legacy_links_profile}" "${event_cut_pct}"; then
  echo "[perf] FAIL: fused links cut fewer than ${event_cut_pct}% of calendar events" >&2
  exit 1
fi

# Barrier-amortization guard: the adaptive engine must synchronize at least
# 5x less often than the legacy one-window cadence on the same cell.
if ! python3 -c '
import json, sys
adaptive = json.loads(sys.argv[1])
legacy = json.loads(sys.argv[2])
a, l = adaptive["epochs"], legacy["epochs"]
print("[perf] epochs: legacy=%d adaptive=%d (%.1fx fewer barriers)"
      % (l, a, l / a if a else float("inf")), file=sys.stderr)
sys.exit(0 if a > 0 and l >= 5 * a else 1)
' "${sharded_profile}" "${legacy_profile}"; then
  echo "[perf] FAIL: adaptive epochs did not amortize >=5x fewer barriers" >&2
  exit 1
fi

# Timed A/B wall clocks.  The sharding/adaptivity comparison runs in smoke
# too (single round) so a_min_s/b_min_s are never null in BENCH_engine.json,
# whatever the host; the sweep A/B and scaling grid are full-lane only.
serial_samples=""
sharded_samples=""
legacy_samples=""
fusedoff_samples=""
jobs1_samples=""
jobsN_samples=""
wall() {
  local t0 t1
  t0=$(date +%s.%N)
  env "$@" "${BUILD_DIR}/bench/fig17_large_scale" >/dev/null
  t1=$(date +%s.%N)
  awk -v a="$t0" -v b="$t1" 'BEGIN{printf "%.2f", b-a}'
}
ab_rounds=3
if [[ "${SMOKE}" == "1" ]]; then ab_rounds=1; fi
abcell=(UFAB_FIG17_K="${prof_k}" UFAB_FIG17_ONLY=uFAB,1,0.5 UFAB_JOBS=1 UFAB_OBS=0)
for ((i = 1; i <= ab_rounds; ++i)); do
  echo "[perf] fig17 cell k=${prof_k}, round ${i}/${ab_rounds}: UFAB_SHARDS=1 ..." >&2
  serial_samples+="${serial_samples:+,}$(wall "${abcell[@]}" UFAB_SHARDS=1)"
  echo "[perf] fig17 cell k=${prof_k}, round ${i}/${ab_rounds}: UFAB_SHARDS=${shards_ab} ..." >&2
  sharded_samples+="${sharded_samples:+,}$(wall "${abcell[@]}" UFAB_SHARDS="${shards_ab}")"
  echo "[perf] fig17 cell k=${prof_k}, round ${i}/${ab_rounds}: UFAB_SHARDS=${shards_ab} legacy epochs ..." >&2
  legacy_samples+="${legacy_samples:+,}$(wall "${abcell[@]}" UFAB_SHARDS="${shards_ab}" UFAB_ADAPTIVE_EPOCHS=0)"
  echo "[perf] fig17 cell k=${prof_k}, round ${i}/${ab_rounds}: UFAB_SHARDS=1 UFAB_FUSED_LINKS=0 ..." >&2
  fusedoff_samples+="${fusedoff_samples:+,}$(wall "${abcell[@]}" UFAB_SHARDS=1 UFAB_FUSED_LINKS=0)"
done

# Fused speedup floor: gated on the full lane only (the k=4 smoke cell is
# too short for a stable wall-clock ratio; its event-cut guard above is the
# smoke-side check).
fused_floor="${UFAB_FUSED_SPEEDUP_FLOOR:-1.25}"
if [[ "${SMOKE}" == "0" ]]; then
  if ! python3 -c '
import sys
legacy = min(float(x) for x in sys.argv[1].split(","))
fused = min(float(x) for x in sys.argv[2].split(","))
floor = float(sys.argv[3])
speedup = legacy / fused if fused > 0 else 0.0
print("[perf] fused links: k=8 serial %.2fs -> %.2fs (%.2fx, floor %.2fx)"
      % (legacy, fused, speedup, floor), file=sys.stderr)
sys.exit(0 if speedup >= floor else 1)
' "${fusedoff_samples}" "${serial_samples}" "${fused_floor}"; then
    echo "[perf] FAIL: fused links below ${fused_floor}x on the serial k=8 cell" >&2
    exit 1
  fi
fi

# Shard-scaling grid + sweep A/B (full lane only).
grid_entries=""
if [[ "${SMOKE}" == "0" ]]; then
  for s in 2 4 8; do
    echo "[perf] scaling grid: k=${prof_k} UFAB_SHARDS=${s} ..." >&2
    grid_entries+="${grid_entries:+,}${s}:auto:$(wall "${abcell[@]}" UFAB_SHARDS="${s}")"
  done
  if [[ "${cpus_online}" -ge 4 ]]; then
    echo "[perf] scaling grid: k=${prof_k} UFAB_SHARDS=4 threads ..." >&2
    grid_entries+="${grid_entries:+,}4:threads:$(wall "${abcell[@]}" UFAB_SHARDS=4 UFAB_SHARD_EXEC=threads)"
  fi
  for i in 1 2 3; do
    echo "[perf] fig17 k=4 grid, round ${i}/3: UFAB_JOBS=1 ..." >&2
    jobs1_samples+="${jobs1_samples:+,}$(wall UFAB_FIG17_K=4 UFAB_OBS=0 UFAB_JOBS=1)"
    echo "[perf] fig17 k=4 grid, round ${i}/3: UFAB_JOBS=${jobs} ..." >&2
    jobsN_samples+="${jobsN_samples:+,}$(wall UFAB_FIG17_K=4 UFAB_OBS=0 UFAB_JOBS="${jobs}")"
  done
fi

# First fig17 k=16 row: 1024 hosts, sharded + profiled, one run (it is the
# longest cell in the lane).  Full lane only; UFAB_PERF_SKIP_K16=1 skips.
k16_wall=""
k16_profile="null"
if [[ "${SMOKE}" == "0" && "${UFAB_PERF_SKIP_K16:-0}" != "1" ]]; then
  echo "[perf] fig17 k=16 cell (1024 hosts): UFAB_SHARDS=${shards_ab}, profiled ..." >&2
  k16_wall="$(wall UFAB_FIG17_K=16 UFAB_FIG17_ONLY=uFAB,1,0.5 UFAB_JOBS=1 UFAB_OBS=0 \
    UFAB_SHARDS="${shards_ab}" UFAB_PROF=1 UFAB_METRICS_DIR=bench_artifacts/prof-k16)"
  k16_profile="$(profile_of bench_artifacts/prof-k16)"
  echo "[perf] fig17 k=16: ${k16_wall}s" >&2
fi

# Threaded speedup floor: only meaningful where the host can actually run
# 4 shards in parallel.
speedup_floor="${UFAB_SHARD_SPEEDUP_FLOOR:-2.0}"
if [[ "${SMOKE}" == "0" && "${cpus_online}" -ge 4 ]]; then
  if ! python3 -c '
import sys
serial = min(float(x) for x in sys.argv[1].split(","))
threaded = None
for row in sys.argv[2].split(","):
    shards, exec_, wall = row.split(":")
    if shards == "4" and exec_ == "threads":
        threaded = float(wall)
floor = float(sys.argv[3])
if threaded is None:
    sys.exit(1)
speedup = serial / threaded if threaded > 0 else 0.0
print("[perf] threaded 4-shard speedup: %.2fx (floor %.1fx)" % (speedup, floor),
      file=sys.stderr)
sys.exit(0 if speedup >= floor else 1)
' "${serial_samples}" "${grid_entries}" "${speedup_floor}"; then
    echo "[perf] FAIL: threaded 4-shard speedup below ${speedup_floor}x on a ${cpus_online}-CPU host" >&2
    exit 1
  fi
else
  echo "[perf] ${cpus_online} CPU(s): recording shard wall clocks without a speedup gate" >&2
fi

python3 - "$MICRO_JSON" "$OUT" "$serial_samples" "$sharded_samples" \
  "$legacy_samples" "$jobs1_samples" "$jobsN_samples" "$jobs" "$shards_ab" \
  "$serial_profile" "$sharded_profile" "$legacy_profile" "$overhead_pct" \
  "$off_ms" "$on_ms" "$guard_pct" "$prof_k" "$cpus_online" "$grid_entries" \
  "$k16_wall" "$k16_profile" "$speedup_floor" "$fusedoff_samples" \
  "$legacy_links_profile" "$fused_floor" "$event_cut_pct" "$SMOKE" <<'PY'
import json, platform, sys

(micro_path, out_path, serial_s, sharded_s, legacy_s,
 jobs1_s, jobsN_s, jobs, shards_ab,
 serial_profile, sharded_profile, legacy_profile, overhead_pct, off_ms, on_ms,
 guard_pct, prof_k, cpus_online, grid_entries, k16_wall, k16_profile,
 speedup_floor, fusedoff_s, legacy_links_profile, fused_floor,
 event_cut_pct, smoke) = sys.argv[1:28]
with open(micro_path) as f:
    micro = json.load(f)

entries = {}
for b in micro.get("benchmarks", []):
    if b.get("run_type", "iteration") != "iteration":
        continue
    entries[b["name"]] = {
        "real_time": b["real_time"],
        "cpu_time": b["cpu_time"],
        "time_unit": b["time_unit"],
        "iterations": b["iterations"],
    }

def samples(csv):
    return [float(x) for x in csv.split(",")] if csv else None

def ab(a_csv, b_csv):
    a, b = samples(a_csv), samples(b_csv)
    entry = {"a_samples_s": a, "b_samples_s": b,
             "a_min_s": min(a) if a else None,
             "b_min_s": min(b) if b else None}
    if a and b and min(b) > 0:
        entry["speedup_min_over_min"] = round(min(a) / min(b), 3)
    return entry

sharding = ab(serial_s, sharded_s)
sharding.update({"a": "UFAB_SHARDS=1", "b": f"UFAB_SHARDS={shards_ab}",
                 "workload": f"fig17 k={prof_k} cell uFAB,1,0.5 (UFAB_JOBS=1)",
                 "a_profile": json.loads(serial_profile),
                 "b_profile": json.loads(sharded_profile)})
adaptivity = ab(legacy_s, sharded_s)
adaptivity.update({"a": f"UFAB_SHARDS={shards_ab} UFAB_ADAPTIVE_EPOCHS=0",
                   "b": f"UFAB_SHARDS={shards_ab} (adaptive, default)",
                   "workload": f"fig17 k={prof_k} cell uFAB,1,0.5 (UFAB_JOBS=1)",
                   "a_profile": json.loads(legacy_profile),
                   "b_profile": json.loads(sharded_profile)})
sweep = ab(jobs1_s, jobsN_s)
sweep.update({"a": "UFAB_JOBS=1", "b": f"UFAB_JOBS={jobs}",
              "workload": "fig17 k=4 full grid"})

fused_a = json.loads(legacy_links_profile)
fused_b = json.loads(serial_profile)
fused = ab(fusedoff_s, serial_s)
fused.update({
    "a": "UFAB_FUSED_LINKS=0 (legacy two-event serializer)",
    "b": "fused link pipelines (default)",
    "workload": f"fig17 k={prof_k} cell uFAB,1,0.5 (serial, UFAB_JOBS=1)",
    "a_profile": fused_a,
    "b_profile": fused_b,
    "event_cut_pct": (round(100.0 * (1.0 - fused_b["events"] / fused_a["events"]), 2)
                      if fused_a.get("events") else None),
    "event_cut_floor_pct": float(event_cut_pct),
    "speedup_floor": float(fused_floor),
    "speedup_gated": smoke == "0",
    "passivity": "stdout byte-identical, serial and sharded",
})

grid = []
for row in (grid_entries.split(",") if grid_entries else []):
    shards, exec_, wall = row.split(":")
    entry = {"shards": int(shards), "exec": exec_, "wall_s": float(wall),
             "workload": f"fig17 k={prof_k} cell uFAB,1,0.5"}
    a = samples(serial_s)
    if a and float(wall) > 0:
        entry["speedup_vs_serial"] = round(min(a) / float(wall), 3)
    grid.append(entry)

k16 = None
if k16_wall:
    k16 = {"shards": int(shards_ab), "wall_s": float(k16_wall),
           "workload": "fig17 k=16 cell uFAB,1,0.5 (1024 hosts, UFAB_PROF=1)",
           "profile": json.loads(k16_profile)}

doc = {
    "schema": "ufab-bench-engine-v5",
    "notes": "interleaved min-of-N wall clocks (A B C A B C ...); speedups "
             "are min(A)/min(B).  On single-CPU hosts the sharded and sweep "
             "sides cannot beat serial — the lane still records every sample "
             "(never null) so the equivalence and epoch-amortization claims "
             "are auditable everywhere; the threaded speedup floor only "
             "gates on >=4-CPU hosts.  *_profile entries come from untimed "
             f"UFAB_PROF=1 runs of the k={prof_k} cell (see "
             "scripts/profile_report.py) and carry the per-event engine "
             "figures (events, events_per_sec, ns_per_event); prof_overhead "
             "is the guarded BM_Fig17Slice cost of enabling the profiler.  "
             "fig17_fused_ab compares the fused link pipelines against the "
             "UFAB_FUSED_LINKS=0 escape hatch: stdout byte-identical both "
             "ways, events cut gated everywhere, wall-clock speedup gated "
             "on the full lane.",
    "host": {
        "machine": platform.machine(),
        "cpus_online": int(cpus_online),
    },
    "micro": entries,
    "prof_overhead": {
        "workload": "BM_Fig17Slice, UFAB_PROF=0 vs 1, interleaved min-of-3",
        "off_ms": float(off_ms),
        "on_ms": float(on_ms),
        "overhead_pct": float(overhead_pct),
        "guard_pct": float(guard_pct),
        "passivity": "stdout byte-identical",
    },
    "fig17_sharding_ab": sharding,
    "fig17_adaptivity_ab": adaptivity,
    "fig17_sweep_ab": sweep,
    "fig17_fused_ab": fused,
    "fig17_shard_grid": grid,
    "fig17_k16": k16,
    "speedup_floor": {"value": float(speedup_floor),
                      "gated": int(cpus_online) >= 4},
}
with open(out_path, "w") as f:
    json.dump(doc, f, indent=2, sort_keys=True)
    f.write("\n")
print(f"wrote {out_path}")
PY

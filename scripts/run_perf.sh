#!/usr/bin/env bash
# Engine performance lane: builds Release, runs the data-structure
# microbenchmarks plus interleaved A/B wall-clock comparisons of the fig17
# workload, and writes the numbers to BENCH_engine.json at the repo root.
#
# Three A/B comparisons, each run as interleaved min-of-3 (A B A B A B, take
# the min per side) so slow-machine noise and thermal drift hit both sides
# equally:
#   * engine sharding — one fig17 grid cell at k=8, UFAB_SHARDS=1 vs =4
#     (UFAB_JOBS=1 so sweep parallelism cannot mask engine parallelism);
#   * sweep parallelism — the full k=4 grid, UFAB_JOBS=1 vs all cores.
#
#   scripts/run_perf.sh            # full lane: microbenches + timed fig17
#   scripts/run_perf.sh --smoke    # microbenches only, short min-time
#
# Environment:
#   UFAB_JOBS    worker threads for the sweep-parallel side (default: nproc).
#   UFAB_SHARDS_AB  shard count for the sharded side (default: 4).
set -euo pipefail
cd "$(dirname "$0")/.."

SMOKE=0
if [[ "${1:-}" == "--smoke" ]]; then SMOKE=1; fi

BUILD_DIR="build-perf"
cmake -B "${BUILD_DIR}" -S . -DCMAKE_BUILD_TYPE=Release -DUFAB_SANITIZE= >/dev/null
cmake --build "${BUILD_DIR}" -j "$(nproc)" --target micro_datastructures fig17_large_scale

OUT="BENCH_engine.json"
MICRO_JSON="$(mktemp)"
trap 'rm -f "${MICRO_JSON}"' EXIT

MIN_TIME=0.5
if [[ "${SMOKE}" == "1" ]]; then MIN_TIME=0.05; fi
"${BUILD_DIR}/bench/micro_datastructures" \
  --benchmark_min_time="${MIN_TIME}" \
  --benchmark_out="${MICRO_JSON}" --benchmark_out_format=json \
  --benchmark_filter='BM_(EventQueue|EventQueueBurst|EventQueueFarHorizon|ShardMailbox|EpochBarrier|PacketMake|CoreAgentProbe|Fig17Slice)'

# Wall-clocks one fig17 invocation with the given extra environment.
wall() {
  local t0 t1
  t0=$(date +%s.%N)
  env "$@" "${BUILD_DIR}/bench/fig17_large_scale" >/dev/null
  t1=$(date +%s.%N)
  awk -v a="$t0" -v b="$t1" 'BEGIN{printf "%.2f", b-a}'
}

jobs="${UFAB_JOBS:-$(nproc)}"
shards_ab="${UFAB_SHARDS_AB:-4}"
serial_samples=""
sharded_samples=""
jobs1_samples=""
jobsN_samples=""
if [[ "${SMOKE}" == "0" ]]; then
  # Engine sharding A/B: one k=8 grid cell, serial engine vs sharded engine.
  cell=(UFAB_FIG17_K=8 UFAB_FIG17_ONLY=uFAB,1,0.5 UFAB_JOBS=1 UFAB_OBS=0)
  for i in 1 2 3; do
    echo "[perf] fig17 cell, round ${i}/3: UFAB_SHARDS=1 ..." >&2
    serial_samples+="${serial_samples:+,}$(wall "${cell[@]}" UFAB_SHARDS=1)"
    echo "[perf] fig17 cell, round ${i}/3: UFAB_SHARDS=${shards_ab} ..." >&2
    sharded_samples+="${sharded_samples:+,}$(wall "${cell[@]}" UFAB_SHARDS="${shards_ab}")"
  done
  # Sweep parallelism A/B: the full k=4 grid, 1 worker vs all cores.
  for i in 1 2 3; do
    echo "[perf] fig17 k=4 grid, round ${i}/3: UFAB_JOBS=1 ..." >&2
    jobs1_samples+="${jobs1_samples:+,}$(wall UFAB_FIG17_K=4 UFAB_OBS=0 UFAB_JOBS=1)"
    echo "[perf] fig17 k=4 grid, round ${i}/3: UFAB_JOBS=${jobs} ..." >&2
    jobsN_samples+="${jobsN_samples:+,}$(wall UFAB_FIG17_K=4 UFAB_OBS=0 UFAB_JOBS="${jobs}")"
  done
fi

python3 - "$MICRO_JSON" "$OUT" "$serial_samples" "$sharded_samples" \
  "$jobs1_samples" "$jobsN_samples" "$jobs" "$shards_ab" <<'PY'
import json, os, platform, sys

(micro_path, out_path, serial_s, sharded_s,
 jobs1_s, jobsN_s, jobs, shards_ab) = sys.argv[1:9]
with open(micro_path) as f:
    micro = json.load(f)

entries = {}
for b in micro.get("benchmarks", []):
    if b.get("run_type", "iteration") != "iteration":
        continue
    entries[b["name"]] = {
        "real_time": b["real_time"],
        "cpu_time": b["cpu_time"],
        "time_unit": b["time_unit"],
        "iterations": b["iterations"],
    }

def samples(csv):
    return [float(x) for x in csv.split(",")] if csv else None

def ab(a_csv, b_csv):
    a, b = samples(a_csv), samples(b_csv)
    entry = {"a_samples_s": a, "b_samples_s": b,
             "a_min_s": min(a) if a else None,
             "b_min_s": min(b) if b else None}
    if a and b and min(b) > 0:
        entry["speedup_min_over_min"] = round(min(a) / min(b), 3)
    return entry

sharding = ab(serial_s, sharded_s)
sharding.update({"a": "UFAB_SHARDS=1", "b": f"UFAB_SHARDS={shards_ab}",
                 "workload": "fig17 k=8 cell uFAB,1,0.5 (UFAB_JOBS=1)"})
sweep = ab(jobs1_s, jobsN_s)
sweep.update({"a": "UFAB_JOBS=1", "b": f"UFAB_JOBS={jobs}",
              "workload": "fig17 k=4 full grid"})

doc = {
    "schema": "ufab-bench-engine-v2",
    "notes": "interleaved min-of-3 wall clocks (A B A B A B); speedups are "
             "min(A)/min(B).  On single-CPU hosts the sharded and sweep "
             "sides cannot beat serial — the lane still records the samples "
             "so the equivalence claim is auditable everywhere.",
    "host": {
        "machine": platform.machine(),
        "cpus_online": os.cpu_count(),
    },
    "micro": entries,
    "fig17_sharding_ab": sharding,
    "fig17_sweep_ab": sweep,
}
with open(out_path, "w") as f:
    json.dump(doc, f, indent=2, sort_keys=True)
    f.write("\n")
print(f"wrote {out_path}")
PY

#!/usr/bin/env bash
# Engine performance lane: builds Release, runs the data-structure
# microbenchmarks plus a timed fig17 variant, and writes the numbers to
# BENCH_engine.json at the repo root (machine-readable, one entry per
# benchmark).  CI runs `--smoke` (short repetitions, no timed fig17) to catch
# gross regressions without burning minutes; run it bare before/after engine
# work to produce comparable numbers.
#
#   scripts/run_perf.sh            # full lane: microbenches + timed fig17
#   scripts/run_perf.sh --smoke    # microbenches only, short min-time
#
# Environment:
#   UFAB_JOBS   worker threads for the bench variant sweeps (default: all
#               cores).  The timed fig17 run is recorded at UFAB_JOBS=1 too,
#               so single-thread engine gains are visible separately from
#               sweep parallelism.
set -euo pipefail
cd "$(dirname "$0")/.."

SMOKE=0
if [[ "${1:-}" == "--smoke" ]]; then SMOKE=1; fi

BUILD_DIR="build-perf"
cmake -B "${BUILD_DIR}" -S . -DCMAKE_BUILD_TYPE=Release -DUFAB_SANITIZE= >/dev/null
cmake --build "${BUILD_DIR}" -j "$(nproc)" --target micro_datastructures fig17_large_scale

OUT="BENCH_engine.json"
MICRO_JSON="$(mktemp)"
trap 'rm -f "${MICRO_JSON}"' EXIT

MIN_TIME=0.5
if [[ "${SMOKE}" == "1" ]]; then MIN_TIME=0.05; fi
"${BUILD_DIR}/bench/micro_datastructures" \
  --benchmark_min_time="${MIN_TIME}" \
  --benchmark_out="${MICRO_JSON}" --benchmark_out_format=json \
  --benchmark_filter='BM_(EventQueue|EventQueueBurst|EventQueueFarHorizon|PacketMake|CoreAgentProbe|Fig17Slice)'

# Wall-clock the full fig17 bench (the paper's headline experiment and the
# engine's end-to-end workload) serially and with the parallel sweep.
fig17_serial_s="null"
fig17_parallel_s="null"
jobs="${UFAB_JOBS:-$(nproc)}"
if [[ "${SMOKE}" == "0" ]]; then
  t0=$(date +%s.%N)
  UFAB_JOBS=1 UFAB_OBS=0 "${BUILD_DIR}/bench/fig17_large_scale" >/dev/null
  t1=$(date +%s.%N)
  fig17_serial_s=$(awk -v a="$t0" -v b="$t1" 'BEGIN{printf "%.2f", b-a}')
  t0=$(date +%s.%N)
  UFAB_JOBS="${jobs}" UFAB_OBS=0 "${BUILD_DIR}/bench/fig17_large_scale" >/dev/null
  t1=$(date +%s.%N)
  fig17_parallel_s=$(awk -v a="$t0" -v b="$t1" 'BEGIN{printf "%.2f", b-a}')
fi

python3 - "$MICRO_JSON" "$OUT" "$fig17_serial_s" "$fig17_parallel_s" "$jobs" <<'PY'
import json, platform, sys

micro_path, out_path, serial_s, parallel_s, jobs = sys.argv[1:6]
with open(micro_path) as f:
    micro = json.load(f)

entries = {}
for b in micro.get("benchmarks", []):
    if b.get("run_type", "iteration") != "iteration":
        continue
    entries[b["name"]] = {
        "real_time": b["real_time"],
        "cpu_time": b["cpu_time"],
        "time_unit": b["time_unit"],
        "iterations": b["iterations"],
    }

doc = {
    "schema": "ufab-bench-engine-v1",
    "notes": "single-shot wall clocks; on shared/single-CPU hosts expect "
             "double-digit noise, and parallel_wall_s can only beat "
             "serial_wall_s when cpus_online > 1.  For A/B claims use "
             "interleaved min-of-N runs.",
    "host": {
        "machine": platform.machine(),
        "cpus_online": __import__("os").cpu_count(),
    },
    "micro": entries,
    "fig17_large_scale": {
        "serial_wall_s": None if serial_s == "null" else float(serial_s),
        "parallel_wall_s": None if parallel_s == "null" else float(parallel_s),
        "parallel_jobs": int(jobs),
    },
}
with open(out_path, "w") as f:
    json.dump(doc, f, indent=2, sort_keys=True)
    f.write("\n")
print(f"wrote {out_path}")
PY

#!/usr/bin/env bash
# Engine performance lane: builds Release, runs the data-structure
# microbenchmarks plus interleaved A/B wall-clock comparisons of the fig17
# workload, and writes the numbers to BENCH_engine.json at the repo root.
#
# Three A/B comparisons, each run as interleaved min-of-3 (A B A B A B, take
# the min per side) so slow-machine noise and thermal drift hit both sides
# equally:
#   * engine sharding — one fig17 grid cell at k=8, UFAB_SHARDS=1 vs =4
#     (UFAB_JOBS=1 so sweep parallelism cannot mask engine parallelism);
#   * sweep parallelism — the full k=4 grid, UFAB_JOBS=1 vs all cores;
#   * profiler overhead — BM_Fig17Slice with UFAB_PROF=0 vs =1, guarded:
#     the lane FAILS if enabling the profiler costs more than
#     UFAB_PROF_GUARD_PCT percent (default 5).
#
# The lane also runs the fig17 cell untimed with UFAB_PROF=1 (serial and
# sharded), checks the profiled stdout is byte-identical to the unprofiled
# run (the profiler must be passive), and merges the stall_fraction /
# shard_imbalance numbers from the emitted *.profile.json into
# BENCH_engine.json via scripts/profile_report.py.
#
#   scripts/run_perf.sh            # full lane: microbenches + timed fig17
#   scripts/run_perf.sh --smoke    # short: microbenches + k=4 profiled cell
#
# Environment:
#   UFAB_JOBS    worker threads for the sweep-parallel side (default: nproc).
#   UFAB_SHARDS_AB      shard count for the sharded side (default: 4).
#   UFAB_PROF_GUARD_PCT max tolerated profiler overhead percent (default: 5).
set -euo pipefail
cd "$(dirname "$0")/.."

SMOKE=0
if [[ "${1:-}" == "--smoke" ]]; then SMOKE=1; fi

BUILD_DIR="build-perf"
cmake -B "${BUILD_DIR}" -S . -DCMAKE_BUILD_TYPE=Release -DUFAB_SANITIZE= >/dev/null
cmake --build "${BUILD_DIR}" -j "$(nproc)" --target micro_datastructures fig17_large_scale

OUT="BENCH_engine.json"
MICRO_JSON="$(mktemp)"
GUARD_JSON="$(mktemp)"
STDOUT_OFF="$(mktemp)"
STDOUT_ON="$(mktemp)"
trap 'rm -f "${MICRO_JSON}" "${GUARD_JSON}" "${STDOUT_OFF}" "${STDOUT_ON}"' EXIT

MIN_TIME=0.5
if [[ "${SMOKE}" == "1" ]]; then MIN_TIME=0.05; fi
"${BUILD_DIR}/bench/micro_datastructures" \
  --benchmark_min_time="${MIN_TIME}" \
  --benchmark_out="${MICRO_JSON}" --benchmark_out_format=json \
  --benchmark_filter='BM_(EventQueue|EventQueueBurst|EventQueueFarHorizon|ShardMailbox|EpochBarrier|PacketMake|CoreAgentProbe|Fig17Slice|ProfScope)'

# Runs BM_Fig17Slice once under the given UFAB_PROF level and prints its
# real_time in milliseconds.  The guard always uses a 0.2 s min-time (even in
# smoke) — at the smoke min-time the iteration count is too small for a
# stable 5% comparison.
fig17_slice_ms() {
  env UFAB_PROF="$1" "${BUILD_DIR}/bench/micro_datastructures" \
    --benchmark_min_time=0.2 \
    --benchmark_out="${GUARD_JSON}" --benchmark_out_format=json \
    --benchmark_filter='BM_Fig17Slice$' >/dev/null
  python3 -c '
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
for b in doc["benchmarks"]:
    if b["name"] == "BM_Fig17Slice":
        print("%.4f" % b["real_time"])
        break
' "${GUARD_JSON}"
}

# Profiler overhead guard: interleaved min-of-3 of the end-to-end engine
# slice, profiler off vs on.  Runs in smoke too — it is the cheapest place
# to catch an accidentally hot profiling path.
guard_pct="${UFAB_PROF_GUARD_PCT:-5}"
off_samples=""
on_samples=""
for i in 1 2 3; do
  echo "[perf] prof guard, round ${i}/3: UFAB_PROF=0 ..." >&2
  off_samples+="${off_samples:+,}$(fig17_slice_ms 0)"
  echo "[perf] prof guard, round ${i}/3: UFAB_PROF=1 ..." >&2
  on_samples+="${on_samples:+,}$(fig17_slice_ms 1)"
done
prof_overhead=$(python3 -c '
import sys
off = min(float(x) for x in sys.argv[1].split(","))
on = min(float(x) for x in sys.argv[2].split(","))
print("%.2f %.4f %.4f" % (100.0 * (on - off) / off if off > 0 else 0.0, off, on))
' "${off_samples}" "${on_samples}")
read -r overhead_pct off_ms on_ms <<<"${prof_overhead}"
echo "[perf] prof guard: BM_Fig17Slice off=${off_ms}ms on=${on_ms}ms overhead=${overhead_pct}% (limit ${guard_pct}%)" >&2
if python3 -c 'import sys; sys.exit(0 if float(sys.argv[1]) > float(sys.argv[2]) else 1)' \
    "${overhead_pct}" "${guard_pct}"; then
  echo "[perf] FAIL: profiler overhead ${overhead_pct}% exceeds ${guard_pct}%" >&2
  exit 1
fi

# Profiled fig17 cell runs (untimed): serial and sharded, each into its own
# artifact dir so the profile files cannot collide.  The serial pair doubles
# as the passivity check: stdout with UFAB_PROF=1 must be byte-identical to
# stdout with UFAB_PROF=0.
jobs="${UFAB_JOBS:-$(nproc)}"
shards_ab="${UFAB_SHARDS_AB:-4}"
prof_k=8
if [[ "${SMOKE}" == "1" ]]; then prof_k=4; fi
cell=(UFAB_FIG17_K="${prof_k}" UFAB_FIG17_ONLY=uFAB,1,0.5 UFAB_JOBS=1 UFAB_OBS=0)
rm -rf bench_artifacts/prof-serial bench_artifacts/prof-sharded
echo "[perf] fig17 cell k=${prof_k}: passivity reference (UFAB_PROF=0, serial) ..." >&2
env "${cell[@]}" UFAB_SHARDS=1 UFAB_PROF=0 \
  "${BUILD_DIR}/bench/fig17_large_scale" >"${STDOUT_OFF}"
echo "[perf] fig17 cell k=${prof_k}: profiled serial (UFAB_PROF=1) ..." >&2
env "${cell[@]}" UFAB_SHARDS=1 UFAB_PROF=1 UFAB_METRICS_DIR=bench_artifacts/prof-serial \
  "${BUILD_DIR}/bench/fig17_large_scale" >"${STDOUT_ON}"
if ! cmp -s "${STDOUT_OFF}" "${STDOUT_ON}"; then
  echo "[perf] FAIL: profiler is not passive — fig17 stdout differs between UFAB_PROF=0 and =1:" >&2
  diff "${STDOUT_OFF}" "${STDOUT_ON}" >&2 || true
  exit 1
fi
echo "[perf] passivity OK: profiled stdout byte-identical" >&2
echo "[perf] fig17 cell k=${prof_k}: profiled sharded (UFAB_PROF=1, UFAB_SHARDS=${shards_ab}) ..." >&2
env "${cell[@]}" UFAB_SHARDS="${shards_ab}" UFAB_PROF=1 UFAB_METRICS_DIR=bench_artifacts/prof-sharded \
  "${BUILD_DIR}/bench/fig17_large_scale" >/dev/null

profile_of() {
  local files=("$1"/*.profile.json)
  if [[ ! -e "${files[0]}" ]]; then
    echo "[perf] FAIL: no profile.json written under $1" >&2
    exit 1
  fi
  scripts/profile_report.py --json "${files[0]}"
}
serial_profile="$(profile_of bench_artifacts/prof-serial)"
sharded_profile="$(profile_of bench_artifacts/prof-sharded)"
echo "[perf] stall/imbalance report:" >&2
scripts/profile_report.py bench_artifacts/prof-serial/*.profile.json \
  bench_artifacts/prof-sharded/*.profile.json >&2

# Timed A/B wall-clocks (full lane only; always unprofiled).
serial_samples=""
sharded_samples=""
jobs1_samples=""
jobsN_samples=""
wall() {
  local t0 t1
  t0=$(date +%s.%N)
  env "$@" "${BUILD_DIR}/bench/fig17_large_scale" >/dev/null
  t1=$(date +%s.%N)
  awk -v a="$t0" -v b="$t1" 'BEGIN{printf "%.2f", b-a}'
}
if [[ "${SMOKE}" == "0" ]]; then
  # Engine sharding A/B: one k=8 grid cell, serial engine vs sharded engine.
  abcell=(UFAB_FIG17_K=8 UFAB_FIG17_ONLY=uFAB,1,0.5 UFAB_JOBS=1 UFAB_OBS=0)
  for i in 1 2 3; do
    echo "[perf] fig17 cell, round ${i}/3: UFAB_SHARDS=1 ..." >&2
    serial_samples+="${serial_samples:+,}$(wall "${abcell[@]}" UFAB_SHARDS=1)"
    echo "[perf] fig17 cell, round ${i}/3: UFAB_SHARDS=${shards_ab} ..." >&2
    sharded_samples+="${sharded_samples:+,}$(wall "${abcell[@]}" UFAB_SHARDS="${shards_ab}")"
  done
  # Sweep parallelism A/B: the full k=4 grid, 1 worker vs all cores.
  for i in 1 2 3; do
    echo "[perf] fig17 k=4 grid, round ${i}/3: UFAB_JOBS=1 ..." >&2
    jobs1_samples+="${jobs1_samples:+,}$(wall UFAB_FIG17_K=4 UFAB_OBS=0 UFAB_JOBS=1)"
    echo "[perf] fig17 k=4 grid, round ${i}/3: UFAB_JOBS=${jobs} ..." >&2
    jobsN_samples+="${jobsN_samples:+,}$(wall UFAB_FIG17_K=4 UFAB_OBS=0 UFAB_JOBS="${jobs}")"
  done
fi

python3 - "$MICRO_JSON" "$OUT" "$serial_samples" "$sharded_samples" \
  "$jobs1_samples" "$jobsN_samples" "$jobs" "$shards_ab" \
  "$serial_profile" "$sharded_profile" "$overhead_pct" "$off_ms" "$on_ms" \
  "$guard_pct" "$prof_k" <<'PY'
import json, os, platform, sys

(micro_path, out_path, serial_s, sharded_s,
 jobs1_s, jobsN_s, jobs, shards_ab,
 serial_profile, sharded_profile, overhead_pct, off_ms, on_ms,
 guard_pct, prof_k) = sys.argv[1:16]
with open(micro_path) as f:
    micro = json.load(f)

entries = {}
for b in micro.get("benchmarks", []):
    if b.get("run_type", "iteration") != "iteration":
        continue
    entries[b["name"]] = {
        "real_time": b["real_time"],
        "cpu_time": b["cpu_time"],
        "time_unit": b["time_unit"],
        "iterations": b["iterations"],
    }

def samples(csv):
    return [float(x) for x in csv.split(",")] if csv else None

def ab(a_csv, b_csv):
    a, b = samples(a_csv), samples(b_csv)
    entry = {"a_samples_s": a, "b_samples_s": b,
             "a_min_s": min(a) if a else None,
             "b_min_s": min(b) if b else None}
    if a and b and min(b) > 0:
        entry["speedup_min_over_min"] = round(min(a) / min(b), 3)
    return entry

sharding = ab(serial_s, sharded_s)
sharding.update({"a": "UFAB_SHARDS=1", "b": f"UFAB_SHARDS={shards_ab}",
                 "workload": "fig17 k=8 cell uFAB,1,0.5 (UFAB_JOBS=1)",
                 "a_profile": json.loads(serial_profile),
                 "b_profile": json.loads(sharded_profile)})
sweep = ab(jobs1_s, jobsN_s)
sweep.update({"a": "UFAB_JOBS=1", "b": f"UFAB_JOBS={jobs}",
              "workload": "fig17 k=4 full grid"})

doc = {
    "schema": "ufab-bench-engine-v3",
    "notes": "interleaved min-of-3 wall clocks (A B A B A B); speedups are "
             "min(A)/min(B).  On single-CPU hosts the sharded and sweep "
             "sides cannot beat serial — the lane still records the samples "
             "so the equivalence claim is auditable everywhere.  a_profile/"
             "b_profile are stall/imbalance numbers from an untimed "
             f"UFAB_PROF=1 run of the k={prof_k} cell (see "
             "scripts/profile_report.py); prof_overhead is the guarded "
             "BM_Fig17Slice cost of enabling the profiler.",
    "host": {
        "machine": platform.machine(),
        "cpus_online": os.cpu_count(),
    },
    "micro": entries,
    "prof_overhead": {
        "workload": "BM_Fig17Slice, UFAB_PROF=0 vs 1, interleaved min-of-3",
        "off_ms": float(off_ms),
        "on_ms": float(on_ms),
        "overhead_pct": float(overhead_pct),
        "guard_pct": float(guard_pct),
        "passivity": "stdout byte-identical",
    },
    "fig17_sharding_ab": sharding,
    "fig17_sweep_ab": sweep,
}
with open(out_path, "w") as f:
    json.dump(doc, f, indent=2, sort_keys=True)
    f.write("\n")
print(f"wrote {out_path}")
PY

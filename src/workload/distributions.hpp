// Flow/message-size distributions used by the evaluation workloads.
#pragma once

#include <cstdint>
#include <vector>

#include "src/core/rng.hpp"

namespace ufab::workload {

/// Piecewise-linear inverse-CDF sampler over (size, cumulative probability)
/// points. Points must be sorted by probability, ending at probability 1.
class EmpiricalSizeDist {
 public:
  struct Point {
    double size_bytes;
    double cum_prob;
  };

  explicit EmpiricalSizeDist(std::vector<Point> points);

  [[nodiscard]] std::int64_t sample(Rng& rng) const;
  [[nodiscard]] double mean_bytes() const;

  /// Key-value store object sizes (Atikoglu et al., SIGMETRICS'12 shape):
  /// mostly sub-KB values with a tail of multi-KB objects; mean ~2 KB —
  /// the Memcached workload of §5.3.
  static EmpiricalSizeDist key_value();

  /// Web-search style heavy-tailed flow sizes (as in the CONGA/DCTCP
  /// evaluations the paper's §5.5 workload cites): half the flows are small,
  /// but most bytes come from multi-MB flows.
  static EmpiricalSizeDist websearch();

 private:
  std::vector<Point> points_;
};

/// Poisson arrival process helper: exponential inter-arrival times sized to
/// hit `target_load` on `link_bps` given the size distribution's mean.
class PoissonArrivals {
 public:
  PoissonArrivals(double target_load, double link_bps, double mean_flow_bytes)
      : mean_gap_sec_(mean_flow_bytes * 8.0 / (target_load * link_bps)) {}

  /// Next inter-arrival gap in seconds.
  [[nodiscard]] double next_gap_sec(Rng& rng) const {
    return rng.exponential(mean_gap_sec_);
  }
  [[nodiscard]] double mean_gap_sec() const { return mean_gap_sec_; }

 private:
  double mean_gap_sec_;
};

}  // namespace ufab::workload

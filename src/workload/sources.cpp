#include "src/workload/sources.hpp"

#include <algorithm>

#include "src/core/assert.hpp"

namespace ufab::workload {

// ---------------------------------------------------------------------------
// OnOffSource
// ---------------------------------------------------------------------------

OnOffSource::OnOffSource(harness::Fabric& fab, VmPairId pair, Config cfg)
    : fab_(fab), pair_(pair), cfg_(cfg), unlimited_(cfg.start_unlimited) {
  // The source's timers live on the sending host's shard (follow-up events
  // inherit it), matching where the sends execute.
  fab_.schedule_on_host(fab_.vms().host_of(pair_.src), cfg_.start,
                        [this] { toggle_initial(); });
}

void OnOffSource::toggle_initial() {
  // Enter the configured initial phase and schedule the flip cadence.
  if (unlimited_) {
    top_up_unlimited();
  } else {
    tick_limited();
  }
  toggle_scheduled();
}

void OnOffSource::toggle_scheduled() {
  fab_.sim().after(cfg_.period, [this] {
    if (fab_.sim().now() >= cfg_.stop) return;
    unlimited_ = !unlimited_;
    if (unlimited_) {
      top_up_unlimited();
    } else {
      tick_limited();
    }
    toggle_scheduled();
  });
}

void OnOffSource::tick_limited() {
  if (unlimited_ || fab_.sim().now() >= cfg_.stop) return;
  fab_.send(pair_, cfg_.chunk_bytes);
  const double gap_ns =
      static_cast<double>(cfg_.chunk_bytes) * 8e9 / cfg_.limited_rate.bits_per_sec();
  fab_.sim().after(TimeNs{static_cast<std::int64_t>(gap_ns)}, [this] { tick_limited(); });
}

void OnOffSource::top_up_unlimited() {
  if (!unlimited_ || fab_.sim().now() >= cfg_.stop) return;
  const HostId src = fab_.vms().host_of(pair_.src);
  auto* conn = fab_.stack_at(src).find_connection(pair_);
  std::int64_t queued = conn != nullptr ? conn->queued_bytes() : 0;
  while (queued < 2 * cfg_.chunk_bytes * 8) {
    fab_.send(pair_, cfg_.chunk_bytes * 8);
    queued += cfg_.chunk_bytes * 8;
  }
  fab_.sim().after(TimeNs{100'000}, [this] { top_up_unlimited(); });
}

// ---------------------------------------------------------------------------
// FlowRecorder
// ---------------------------------------------------------------------------

void FlowRecorder::on_start(std::uint64_t tag, TimeNs started, double expected_sec,
                            std::int64_t size_bytes) {
  slot_of_tag_.emplace(tag, flows_.size());
  flows_.push_back(Flow{started, expected_sec, size_bytes});
}

void FlowRecorder::on_delivery(std::uint64_t tag, TimeNs delivered) {
  const auto it = slot_of_tag_.find(tag);
  if (it == slot_of_tag_.end()) return;
  Flow& f = flows_[it->second];
  if (f.delivered.ns() >= 0) return;  // first completion wins
  f.delivered = delivered;
}

void FlowRecorder::refresh() const {
  std::size_t done = 0;
  for (const Flow& f : flows_) {
    if (f.delivered.ns() >= 0) ++done;
  }
  if (done == cached_done_ && flows_.size() == cached_started_) return;
  cached_done_ = done;
  cached_started_ = flows_.size();
  fct_us_ = PercentileTracker{};
  slowdown_ = PercentileTracker{};
  for (const Flow& f : flows_) {
    if (f.delivered.ns() < 0) continue;
    const double fct_sec = (f.delivered - f.started).sec();
    fct_us_.add(fct_sec * 1e6);
    slowdown_.add(fct_sec / std::max(f.expected_sec, 1e-9));
  }
}

const PercentileTracker& FlowRecorder::fct_us() const {
  refresh();
  return fct_us_;
}

const PercentileTracker& FlowRecorder::slowdown() const {
  refresh();
  return slowdown_;
}

std::size_t FlowRecorder::completed() const {
  refresh();
  return cached_done_;
}

double FlowRecorder::violation_volume_pct() const {
  double violated = 0.0;
  double total = 0.0;
  for (const Flow& f : flows_) {
    if (f.delivered.ns() < 0) continue;
    total += static_cast<double>(f.size);
    const double slow = (f.delivered - f.started).sec() / std::max(f.expected_sec, 1e-9);
    if (slow > 1.0) violated += static_cast<double>(f.size) * (1.0 - 1.0 / slow);
  }
  return total <= 0.0 ? 0.0 : 100.0 * violated / total;
}

PercentileTracker FlowRecorder::slowdown_for_sizes(std::int64_t min_bytes,
                                                   std::int64_t max_bytes) const {
  PercentileTracker out;
  for (const Flow& f : flows_) {
    if (f.delivered.ns() < 0 || f.size < min_bytes || f.size >= max_bytes) continue;
    out.add((f.delivered - f.started).sec() / std::max(f.expected_sec, 1e-9));
  }
  return out;
}

// ---------------------------------------------------------------------------
// PoissonFlowGenerator
// ---------------------------------------------------------------------------

PoissonFlowGenerator::PoissonFlowGenerator(harness::Fabric& fab, std::vector<VmPairId> pairs,
                                           EmpiricalSizeDist dist, Config cfg, Rng rng)
    : fab_(fab),
      pairs_(std::move(pairs)),
      dist_(std::move(dist)),
      cfg_(cfg),
      rng_(rng),
      next_tag_(cfg.tag_base) {
  UFAB_CHECK(!pairs_.empty());
  // Interpret target_load against the aggregate sending capacity of the
  // distinct source hosts feeding this generator.
  std::vector<bool> seen(fab_.net().host_count(), false);
  double total_bps = 0.0;
  for (const VmPairId& p : pairs_) {
    const HostId h = fab_.vms().host_of(p.src);
    if (!seen[static_cast<std::size_t>(h.value())]) {
      seen[static_cast<std::size_t>(h.value())] = true;
      total_bps += fab_.net().host(h).nic().capacity().bits_per_sec();
    }
  }
  mean_gap_sec_ = dist_.mean_bytes() * 8.0 / (cfg_.target_load * total_bps);

  fab_.add_delivery_listener([this](const transport::Message& msg, TimeNs at) {
    recorder_.on_delivery(msg.user_tag, at);
  });
  if (cfg_.stop < TimeNs::max()) {
    // Bounded horizon: pre-draw the whole arrival schedule up front, with the
    // same per-arrival draw order as the lazy chain (pair, size, gap), homing
    // each send on its source host's shard.  The schedule — and every flow
    // record — is then a pure function of the seed, independent of how the
    // engine executes.
    TimeNs t = cfg_.start;
    while (t < cfg_.stop) {
      const VmPairId pair = pairs_[rng_.below(pairs_.size())];
      const std::int64_t size = dist_.sample(rng_);
      const std::uint64_t tag = next_tag_++;
      const double guarantee_bps = fab_.vms().vm_guarantee(pair.src).bits_per_sec();
      recorder_.on_start(tag, t, static_cast<double>(size) * 8.0 / guarantee_bps, size);
      fab_.schedule_on_host(fab_.vms().host_of(pair.src), t,
                            [this, pair, size, tag] { fab_.send(pair, size, tag); });
      const double gap = rng_.exponential(mean_gap_sec_);
      t += TimeNs{static_cast<std::int64_t>(gap * 1e9)};
    }
  } else {
    // Unbounded: keep the lazy self-scheduling chain.  Each arrival draws
    // from the shared RNG inside an event, so the draw order would depend on
    // shard interleaving — pin the engine to one-shard-at-a-time execution.
    if (fab_.sim().shard_count() > 1) fab_.sim().require_sequential("unbounded-poisson");
    fab_.sim().at(cfg_.start, [this] { arrival(); });
  }
}

void PoissonFlowGenerator::arrival() {
  if (fab_.sim().now() >= cfg_.stop) return;
  const VmPairId pair = pairs_[rng_.below(pairs_.size())];
  const std::int64_t size = dist_.sample(rng_);
  const std::uint64_t tag = next_tag_++;
  const double guarantee_bps = fab_.vms().vm_guarantee(pair.src).bits_per_sec();
  recorder_.on_start(tag, fab_.sim().now(), static_cast<double>(size) * 8.0 / guarantee_bps,
                     size);
  fab_.send(pair, size, tag);
  const double gap = rng_.exponential(mean_gap_sec_);
  fab_.sim().after(TimeNs{static_cast<std::int64_t>(gap * 1e9)}, [this] { arrival(); });
}

}  // namespace ufab::workload

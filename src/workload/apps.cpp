#include "src/workload/apps.hpp"

#include <algorithm>

#include "src/core/assert.hpp"

namespace ufab::workload {

namespace {
/// Tag layout: [app_id:16][kind:8][id:40].
std::uint64_t pack_tag(std::uint16_t app_id, std::uint8_t kind, std::uint64_t id) {
  return (static_cast<std::uint64_t>(app_id) << 48) | (static_cast<std::uint64_t>(kind) << 40) |
         (id & ((1ULL << 40) - 1));
}
std::uint16_t tag_app(std::uint64_t tag) { return static_cast<std::uint16_t>(tag >> 48); }
std::uint8_t tag_kind(std::uint64_t tag) { return static_cast<std::uint8_t>((tag >> 40) & 0xff); }
std::uint64_t tag_id(std::uint64_t tag) { return tag & ((1ULL << 40) - 1); }

void send_app_message(harness::Fabric& fab, VmId src, VmId dst, std::int64_t bytes,
                      std::uint64_t tag) {
  fab.send(VmPairId{src, dst}, bytes, tag);
}
}  // namespace

// ---------------------------------------------------------------------------
// RpcApp
// ---------------------------------------------------------------------------

RpcApp::Config RpcApp::memcached(TimeNs start, TimeNs stop, std::uint16_t app_id) {
  Config cfg;
  cfg.request_bytes = 100;
  cfg.response_sizes = EmpiricalSizeDist::key_value();
  cfg.start = start;
  cfg.stop = stop;
  cfg.app_id = app_id;
  return cfg;
}

RpcApp::Config RpcApp::mongodb(TimeNs start, TimeNs stop, std::uint16_t app_id) {
  Config cfg;
  cfg.request_bytes = 200;
  cfg.fixed_response_bytes = 500'000;
  cfg.start = start;
  cfg.stop = stop;
  cfg.app_id = app_id;
  return cfg;
}

RpcApp::RpcApp(harness::Fabric& fab, std::vector<VmId> clients, std::vector<VmId> servers,
               Config cfg, Rng rng)
    : fab_(fab), clients_(std::move(clients)), servers_(std::move(servers)), cfg_(cfg),
      rng_(rng) {
  UFAB_CHECK(!clients_.empty() && !servers_.empty());
  fab_.add_delivery_listener(
      [this](const transport::Message& msg, TimeNs at) { on_delivery(msg, at); });
  fab_.sim().at(cfg_.start, [this] {
    for (std::size_t i = 0; i < clients_.size(); ++i) issue(i);
  });
}

std::uint64_t RpcApp::make_tag(bool response, std::uint64_t req_id) const {
  return pack_tag(cfg_.app_id, response ? 2 : 1, req_id);
}

void RpcApp::issue(std::size_t client_idx) {
  if (fab_.sim().now() >= cfg_.stop) return;
  const std::uint64_t req_id = next_req_++;
  const VmId server = servers_[rng_.below(servers_.size())];
  pending_[req_id] = PendingReq{client_idx, fab_.sim().now()};
  send_app_message(fab_, clients_[client_idx], server, cfg_.request_bytes,
                   make_tag(false, req_id));
}

void RpcApp::on_delivery(const transport::Message& msg, TimeNs at) {
  if (tag_app(msg.user_tag) != cfg_.app_id) return;
  const std::uint64_t req_id = tag_id(msg.user_tag);
  if (tag_kind(msg.user_tag) == 1) {
    // Request reached the server: return the value to the client VM.
    const std::int64_t bytes = cfg_.fixed_response_bytes > 0
                                   ? cfg_.fixed_response_bytes
                                   : cfg_.response_sizes.sample(rng_);
    send_app_message(fab_, msg.pair.dst, msg.pair.src, bytes, make_tag(true, req_id));
    return;
  }
  // Response reached the client.
  auto it = pending_.find(req_id);
  if (it == pending_.end()) return;
  qct_us_.add((at - it->second.issued).us());
  completions_.push_back(at);
  ++completed_;
  const std::size_t client = it->second.client_idx;
  pending_.erase(it);
  issue(client);  // closed loop
}

double RpcApp::qps(TimeNs from, TimeNs to) const {
  std::int64_t n = 0;
  for (const TimeNs t : completions_) {
    if (t >= from && t < to) ++n;
  }
  const double window_sec = (to - from).sec();
  return window_sec <= 0.0 ? 0.0 : static_cast<double>(n) / window_sec;
}

// ---------------------------------------------------------------------------
// EbsApp
// ---------------------------------------------------------------------------

EbsApp::EbsApp(harness::Fabric& fab, std::vector<VmId> storage_agents,
               std::vector<VmId> block_agents, std::vector<VmId> chunk_servers,
               std::vector<VmId> gc_agents, Config cfg, Rng rng)
    : fab_(fab),
      sas_(std::move(storage_agents)),
      bas_(std::move(block_agents)),
      css_(std::move(chunk_servers)),
      gcs_(std::move(gc_agents)),
      cfg_(cfg),
      rng_(rng) {
  UFAB_CHECK(!sas_.empty() && !bas_.empty() && !css_.empty());
  UFAB_CHECK(static_cast<int>(css_.size()) >= cfg_.replicas);
  fab_.add_delivery_listener(
      [this](const transport::Message& msg, TimeNs at) { on_delivery(msg, at); });
  fab_.sim().at(cfg_.start, [this] {
    for (std::size_t i = 0; i < sas_.size(); ++i) sa_tick(i);
    for (std::size_t i = 0; i < gcs_.size(); ++i) gc_tick(i);
  });
}

std::uint64_t EbsApp::make_tag(Kind kind, std::uint64_t id) const {
  return pack_tag(cfg_.app_id, static_cast<std::uint8_t>(kind), id);
}

void EbsApp::sa_tick(std::size_t sa_idx) {
  if (fab_.sim().now() >= cfg_.stop) return;
  const std::uint64_t id = next_id_++;
  const VmId ba = bas_[rng_.below(bas_.size())];
  blocks_[id] = BlockTask{fab_.sim().now(), TimeNs::zero(), cfg_.replicas};
  send_app_message(fab_, sas_[sa_idx], ba, cfg_.block_bytes, make_tag(Kind::kSaBlock, id));
  fab_.sim().after(cfg_.sa_period, [this, sa_idx] { sa_tick(sa_idx); });
}

void EbsApp::gc_tick(std::size_t gc_idx) {
  if (fab_.sim().now() >= cfg_.stop) return;
  const std::uint64_t id = next_id_++;
  const VmId cs = css_[rng_.below(css_.size())];
  gc_reads_[id] = fab_.sim().now();
  // Small read request; the chunk server answers with the block (kGcRead).
  send_app_message(fab_, gcs_[gc_idx], cs, 200, make_tag(Kind::kGcRead, id));
  fab_.sim().after(cfg_.gc_period, [this, gc_idx] { gc_tick(gc_idx); });
}

void EbsApp::on_delivery(const transport::Message& msg, TimeNs at) {
  if (tag_app(msg.user_tag) != cfg_.app_id) return;
  const std::uint64_t id = tag_id(msg.user_tag);
  switch (static_cast<Kind>(tag_kind(msg.user_tag))) {
    case Kind::kSaBlock: {
      auto it = blocks_.find(id);
      if (it == blocks_.end()) return;
      it->second.sa_done = at;
      sa_tct_ms_.add((at - it->second.created).ms());
      // Block Agent replicates to `replicas` distinct chunk servers.
      std::vector<std::size_t> order(css_.size());
      for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
      for (int r = 0; r < cfg_.replicas; ++r) {
        const auto j =
            static_cast<std::size_t>(r) + rng_.below(order.size() - static_cast<std::size_t>(r));
        std::swap(order[static_cast<std::size_t>(r)], order[j]);
        send_app_message(fab_, msg.pair.dst, css_[order[static_cast<std::size_t>(r)]],
                         cfg_.block_bytes, make_tag(Kind::kReplica, id));
      }
      return;
    }
    case Kind::kReplica: {
      auto it = blocks_.find(id);
      if (it == blocks_.end()) return;
      if (--it->second.replicas_pending == 0) {
        ba_tct_ms_.add((at - it->second.sa_done).ms());
        total_tct_ms_.add((at - it->second.created).ms());
        ++blocks_completed_;
        blocks_.erase(it);
      }
      return;
    }
    case Kind::kGcRead: {
      // The read request reached the chunk server if dst is a CS; the data
      // reached the GC if dst is a GC agent. Distinguish by membership.
      const bool at_chunk_server =
          std::find(css_.begin(), css_.end(), msg.pair.dst) != css_.end();
      if (at_chunk_server) {
        // Serve the read: chunk server returns the block to the GC agent.
        send_app_message(fab_, msg.pair.dst, msg.pair.src, cfg_.block_bytes,
                         make_tag(Kind::kGcRead, id));
      } else {
        // GC received the data; write the compressed block back.
        send_app_message(fab_, msg.pair.dst, msg.pair.src, cfg_.block_bytes,
                         make_tag(Kind::kGcWrite, id));
      }
      return;
    }
    case Kind::kGcWrite: {
      auto it = gc_reads_.find(id);
      if (it == gc_reads_.end()) return;
      gc_tct_ms_.add((at - it->second).ms());
      gc_reads_.erase(it);
      return;
    }
  }
}

}  // namespace ufab::workload

// Application models for §5.3: Memcached / MongoDB (ECS) and the EBS
// storage pipeline.
//
// The models reproduce the network-visible behaviour of the applications —
// message sizes, fan-outs, arrival cadence and request/response dependencies
// — on top of any transport scheme, and account QPS / QCT / TCT exactly as
// the paper reports them.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/harness/fabric.hpp"
#include "src/stats/percentile.hpp"
#include "src/workload/distributions.hpp"

namespace ufab::workload {

/// Closed-loop request/response application (Memcached and MongoDB shapes).
///
/// Each client repeatedly: picks a random server VM, sends a small request,
/// waits for the response (sized from a distribution or fixed), records the
/// query completion time, then immediately issues the next request.
class RpcApp {
 public:
  struct Config {
    std::int32_t request_bytes = 100;
    /// Response size distribution; ignored when fixed_response_bytes > 0.
    EmpiricalSizeDist response_sizes = EmpiricalSizeDist::key_value();
    std::int64_t fixed_response_bytes = 0;
    TimeNs start = TimeNs::zero();
    TimeNs stop = TimeNs::max();
    std::uint16_t app_id = 1;  ///< Disambiguates user_tag namespaces.
  };

  /// Memcached defaults: 100 B requests, key-value response sizes (~2 KB).
  static Config memcached(TimeNs start, TimeNs stop, std::uint16_t app_id);
  /// MongoDB defaults: clients continuously fetch 500 KB documents.
  static Config mongodb(TimeNs start, TimeNs stop, std::uint16_t app_id);

  RpcApp(harness::Fabric& fab, std::vector<VmId> clients, std::vector<VmId> servers,
         Config cfg, Rng rng);

  [[nodiscard]] const PercentileTracker& qct_us() const { return qct_us_; }
  [[nodiscard]] std::int64_t completed() const { return completed_; }
  /// Queries per second over [from, to).
  [[nodiscard]] double qps(TimeNs from, TimeNs to) const;

 private:
  void issue(std::size_t client_idx);
  void on_delivery(const transport::Message& msg, TimeNs at);
  [[nodiscard]] std::uint64_t make_tag(bool response, std::uint64_t req_id) const;

  harness::Fabric& fab_;
  std::vector<VmId> clients_;
  std::vector<VmId> servers_;
  Config cfg_;
  Rng rng_;
  std::uint64_t next_req_ = 1;

  struct PendingReq {
    std::size_t client_idx;
    TimeNs issued;
  };
  std::unordered_map<std::uint64_t, PendingReq> pending_;
  PercentileTracker qct_us_;
  std::vector<TimeNs> completions_;
  std::int64_t completed_ = 0;
};

/// EBS storage pipeline (§5.3): Storage Agents stream 64 KB writes to Block
/// Agents; each Block Agent replicates the block to three Chunk Servers;
/// a Garbage Collector does periodic read-modify-write cycles against Chunk
/// Servers. Task completion times are tracked per stage and end to end.
class EbsApp {
 public:
  struct Config {
    std::int64_t block_bytes = 64'000;
    TimeNs sa_period = TimeNs{320'000};  ///< One block per SA every 320 us.
    TimeNs gc_period = TimeNs{1'000'000};
    int replicas = 3;
    TimeNs start = TimeNs::zero();
    TimeNs stop = TimeNs::max();
    std::uint16_t app_id = 7;
  };

  EbsApp(harness::Fabric& fab, std::vector<VmId> storage_agents, std::vector<VmId> block_agents,
         std::vector<VmId> chunk_servers, std::vector<VmId> gc_agents, Config cfg, Rng rng);

  [[nodiscard]] const PercentileTracker& sa_tct_ms() const { return sa_tct_ms_; }
  [[nodiscard]] const PercentileTracker& ba_tct_ms() const { return ba_tct_ms_; }
  [[nodiscard]] const PercentileTracker& total_tct_ms() const { return total_tct_ms_; }
  [[nodiscard]] const PercentileTracker& gc_tct_ms() const { return gc_tct_ms_; }
  [[nodiscard]] std::int64_t blocks_completed() const { return blocks_completed_; }

 private:
  enum class Kind : std::uint8_t { kSaBlock = 1, kReplica = 2, kGcRead = 3, kGcWrite = 4 };

  void sa_tick(std::size_t sa_idx);
  void gc_tick(std::size_t gc_idx);
  void on_delivery(const transport::Message& msg, TimeNs at);
  [[nodiscard]] std::uint64_t make_tag(Kind kind, std::uint64_t id) const;

  harness::Fabric& fab_;
  std::vector<VmId> sas_;
  std::vector<VmId> bas_;
  std::vector<VmId> css_;
  std::vector<VmId> gcs_;
  Config cfg_;
  Rng rng_;
  std::uint64_t next_id_ = 1;

  struct BlockTask {
    TimeNs created;
    TimeNs sa_done = TimeNs::zero();
    int replicas_pending = 0;
  };
  std::unordered_map<std::uint64_t, BlockTask> blocks_;
  std::unordered_map<std::uint64_t, TimeNs> gc_reads_;  // id -> issue time

  PercentileTracker sa_tct_ms_;
  PercentileTracker ba_tct_ms_;
  PercentileTracker total_tct_ms_;
  PercentileTracker gc_tct_ms_;
  std::int64_t blocks_completed_ = 0;
};

}  // namespace ufab::workload

#include "src/workload/distributions.hpp"

#include <algorithm>
#include <cmath>

#include "src/core/assert.hpp"

namespace ufab::workload {

EmpiricalSizeDist::EmpiricalSizeDist(std::vector<Point> points) : points_(std::move(points)) {
  UFAB_CHECK(points_.size() >= 2);
  UFAB_CHECK(std::abs(points_.back().cum_prob - 1.0) < 1e-9);
  for (std::size_t i = 1; i < points_.size(); ++i) {
    UFAB_CHECK(points_[i].cum_prob >= points_[i - 1].cum_prob);
    UFAB_CHECK(points_[i].size_bytes >= points_[i - 1].size_bytes);
  }
}

std::int64_t EmpiricalSizeDist::sample(Rng& rng) const {
  const double u = rng.uniform();
  auto it = std::lower_bound(points_.begin(), points_.end(), u,
                             [](const Point& p, double v) { return p.cum_prob < v; });
  if (it == points_.begin()) return static_cast<std::int64_t>(it->size_bytes);
  if (it == points_.end()) return static_cast<std::int64_t>(points_.back().size_bytes);
  const Point& hi = *it;
  const Point& lo = *(it - 1);
  const double span = hi.cum_prob - lo.cum_prob;
  const double frac = span <= 0.0 ? 0.0 : (u - lo.cum_prob) / span;
  const double size = lo.size_bytes + frac * (hi.size_bytes - lo.size_bytes);
  return std::max<std::int64_t>(1, static_cast<std::int64_t>(size));
}

double EmpiricalSizeDist::mean_bytes() const {
  // Mean of the piecewise-linear distribution: trapezoid midpoints.
  double mean = points_.front().size_bytes * points_.front().cum_prob;
  for (std::size_t i = 1; i < points_.size(); ++i) {
    const double p = points_[i].cum_prob - points_[i - 1].cum_prob;
    mean += p * 0.5 * (points_[i].size_bytes + points_[i - 1].size_bytes);
  }
  return mean;
}

EmpiricalSizeDist EmpiricalSizeDist::key_value() {
  return EmpiricalSizeDist({
      {64, 0.0},
      {128, 0.10},
      {256, 0.30},
      {512, 0.50},
      {1024, 0.70},
      {2048, 0.80},
      {4096, 0.90},
      {8192, 0.96},
      {16384, 0.99},
      {65536, 1.0},
  });
}

EmpiricalSizeDist EmpiricalSizeDist::websearch() {
  return EmpiricalSizeDist({
      {6'000, 0.0},
      {10'000, 0.15},
      {13'000, 0.20},
      {19'000, 0.30},
      {33'000, 0.40},
      {53'000, 0.53},
      {133'000, 0.60},
      {667'000, 0.70},
      {1'333'000, 0.80},
      {3'333'000, 0.90},
      {6'667'000, 0.97},
      {20'000'000, 1.0},
  });
}

}  // namespace ufab::workload

// Traffic sources used by the evaluation: on/off demand (Fig. 16), Poisson
// flow arrivals with empirical sizes (Fig. 17), and FCT recording.
#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "src/harness/fabric.hpp"
#include "src/stats/percentile.hpp"
#include "src/workload/distributions.hpp"

namespace ufab::workload {

/// Demand that flips between a fixed paced rate ("underload") and unlimited
/// backlog every `period` — the 90-to-1 dynamic workload of §5.5.
class OnOffSource {
 public:
  struct Config {
    TimeNs period = TimeNs{4'000'000};      ///< Phase length (4 ms).
    Bandwidth limited_rate = Bandwidth::mbps(500);
    std::int64_t chunk_bytes = 16'000;      ///< Message size while paced.
    TimeNs start = TimeNs::zero();
    TimeNs stop = TimeNs::max();
    bool start_unlimited = false;
  };

  OnOffSource(harness::Fabric& fab, VmPairId pair, Config cfg);

 private:
  void toggle_initial();
  void toggle_scheduled();
  void tick_limited();
  void top_up_unlimited();

  harness::Fabric& fab_;
  VmPairId pair_;
  Config cfg_;
  bool unlimited_;
};

/// Records flow completion times against expected hose-model FCTs.
///
/// Storage is slot-per-flow: registration (setup time, or a sequential-only
/// lazy generator) appends a slot; a delivery writes only its own flow's
/// slot, so deliveries landing on different shard threads never touch shared
/// state.  Aggregates are rebuilt on demand in registration order —
/// independent of delivery order, hence identical for every shard count and
/// execution mode.
class FlowRecorder {
 public:
  /// Registers a flow started at `started`; `expected_sec` is
  /// size / min-guarantee.  Not safe concurrently with deliveries.
  void on_start(std::uint64_t tag, TimeNs started, double expected_sec,
                std::int64_t size_bytes);
  /// Feed from a Fabric delivery listener.  Safe to call concurrently for
  /// *different* flows (disjoint slots).
  void on_delivery(std::uint64_t tag, TimeNs delivered);

  [[nodiscard]] const PercentileTracker& fct_us() const;
  [[nodiscard]] const PercentileTracker& slowdown() const;
  /// Slowdown restricted to flows in [min_bytes, max_bytes).
  [[nodiscard]] PercentileTracker slowdown_for_sizes(std::int64_t min_bytes,
                                                     std::int64_t max_bytes) const;
  [[nodiscard]] std::size_t started() const { return flows_.size(); }
  [[nodiscard]] std::size_t completed() const;

  /// Guarantee-violation volume percentage (Fig. 17a): per flow, the byte
  /// share that failed to arrive at the hose-guarantee rate is
  /// size * max(0, 1 - 1/slowdown); the metric is that sum over total bytes.
  [[nodiscard]] double violation_volume_pct() const;

 private:
  struct Flow {
    TimeNs started;
    double expected_sec;
    std::int64_t size;
    TimeNs delivered{-1};  ///< -1: still in flight.
  };
  void refresh() const;

  std::vector<Flow> flows_;                             // registration order
  std::unordered_map<std::uint64_t, std::size_t> slot_of_tag_;
  mutable PercentileTracker fct_us_;
  mutable PercentileTracker slowdown_;
  mutable std::size_t cached_started_ = 0;
  mutable std::size_t cached_done_ = 0;
};

/// Poisson flow arrivals over a set of VM pairs, sizes from an empirical
/// distribution, targeting an average host-link load (§5.5's workload).
class PoissonFlowGenerator {
 public:
  struct Config {
    double target_load = 0.5;      ///< Fraction of host link bandwidth.
    TimeNs start = TimeNs::zero();
    TimeNs stop = TimeNs::max();
    std::uint64_t tag_base = 1ull << 40;  ///< user_tag namespace.
  };

  PoissonFlowGenerator(harness::Fabric& fab, std::vector<VmPairId> pairs,
                       EmpiricalSizeDist dist, Config cfg, Rng rng);

  [[nodiscard]] FlowRecorder& recorder() { return recorder_; }

 private:
  void arrival();

  harness::Fabric& fab_;
  std::vector<VmPairId> pairs_;
  EmpiricalSizeDist dist_;
  Config cfg_;
  Rng rng_;
  double mean_gap_sec_;
  std::uint64_t next_tag_;
  FlowRecorder recorder_;
};

}  // namespace ufab::workload

// Deterministic fault-injection plane.
//
// A FaultPlane compiles a declarative fault scenario into simulator events
// and hooks on the fabric it targets:
//
//   * link flaps — administrative down/up schedules, optionally repeating;
//   * random wire loss — per-link Bernoulli loss within a time window,
//     restricted to a packet class (all / probe-family-only / data-only);
//   * INT tampering — freeze record timestamps (stale telemetry), scale the
//     Φ_l/W_l registers (corruption), or strip records entirely;
//   * switch state reset — a uFAB-C warm reboot that wipes every register
//     and the Bloom filter on one switch;
//   * Bloom saturation — junk keys that drive up the false-positive rate.
//
// All randomness flows from the plane's own seeded Rng, so a scenario is
// exactly reproducible: same seed + same fabric => same faults, packet for
// packet.  Every injected fault is counted in FaultCounters, mirroring how
// the edge and core count their recovery actions, so tests can assert both
// sides of the ledger.
//
// Usage:
//   faults::FaultPlane plane(fab, /*seed=*/42);
//   plane.flap(link, 10_ms, 12_ms)
//        .loss(trunk, 0.01, faults::LossClass::kAll, 5_ms, 50_ms)
//        .reset_switch_state(spine, 20_ms)
//        .arm();
//   fab.sim().run_until(60_ms);
//
// The plane must outlive the simulation run: its hooks call back into it.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/core/ids.hpp"
#include "src/core/rng.hpp"
#include "src/core/time.hpp"
#include "src/harness/fabric.hpp"

namespace ufab::obs {
class Obs;
}  // namespace ufab::obs

namespace ufab::faults {

/// Which packets a loss rule applies to.
enum class LossClass {
  kAll,        ///< Every packet on the link.
  kProbeOnly,  ///< Probe family: probes, responses, finish probes.
  kDataOnly,   ///< Tenant data packets only.
};

[[nodiscard]] const char* to_string(LossClass c);

/// What an INT tamper rule does to each record.
enum class TamperKind {
  kFreezeStamp,     ///< Stamp records as of the window start (staleness).
  kScaleRegisters,  ///< Multiply Φ_l/W_l by a factor (corruption).
  kStrip,           ///< Suppress the record entirely (INT stripping).
};

/// Everything the plane injected, for assertions and reports.
struct FaultCounters {
  std::int64_t link_downs = 0;         ///< set_down(true) transitions executed.
  std::int64_t link_ups = 0;           ///< set_down(false) transitions executed.
  std::int64_t loss_drops = 0;         ///< Packets discarded by loss rules.
  std::int64_t switch_resets = 0;      ///< Warm reboots executed.
  std::int64_t stale_records = 0;      ///< INT records with frozen stamps.
  std::int64_t corrupted_records = 0;  ///< INT records with scaled registers.
  std::int64_t stripped_records = 0;   ///< INT records suppressed.
  std::int64_t bloom_junk_keys = 0;    ///< Junk keys inserted into Blooms.
};

class FaultPlane {
 public:
  /// The plane injects into `fab` and draws randomness from `seed` only.
  FaultPlane(harness::Fabric& fab, std::uint64_t seed = 1);

  FaultPlane(const FaultPlane&) = delete;
  FaultPlane& operator=(const FaultPlane&) = delete;

  // --- scenario building (declare everything, then arm() once) ---

  /// Takes `link` down at `down_at` and back up at `up_at`; with
  /// `repeats` > 1 the cycle recurs every `period` (which must be longer
  /// than the outage).
  FaultPlane& flap(LinkId link, TimeNs down_at, TimeNs up_at, int repeats = 1,
                   TimeNs period = TimeNs::zero());

  /// Bernoulli wire loss: each matching packet finishing serialization on
  /// `link` within [from, until) is dropped with probability `rate`.
  FaultPlane& loss(LinkId link, double rate, LossClass klass = LossClass::kAll,
                   TimeNs from = TimeNs::zero(), TimeNs until = TimeNs::max());

  /// Wipes all uFAB-C register and Bloom state on `sw` at `at`, as a switch
  /// reboot would.  Recovery is the edge's job (re-registration probes).
  FaultPlane& reset_switch_state(NodeId sw, TimeNs at);

  /// Freezes the stamps of INT records written by `sw` to the window start:
  /// the switch keeps forwarding but its telemetry stops reflecting time.
  FaultPlane& stale_telemetry(NodeId sw, TimeNs from, TimeNs until);

  /// Scales Φ_l/W_l in INT records written by `sw` by `scale` within the
  /// window (register corruption / bit rot).
  FaultPlane& corrupt_telemetry(NodeId sw, double scale, TimeNs from, TimeNs until);

  /// Suppresses every INT record written by `sw` within the window.
  FaultPlane& strip_telemetry(NodeId sw, TimeNs from, TimeNs until);

  /// Inserts `junk_keys` random keys into every Bloom filter on `sw` at
  /// `at`, raising its false-positive rate (§3.6 tolerance analysis).
  FaultPlane& saturate_bloom(NodeId sw, std::size_t junk_keys, TimeNs at);

  /// Compiles the declared scenario into simulator events and hooks.
  /// Call exactly once, before the simulator runs past the first fault.
  void arm();

  [[nodiscard]] bool armed() const { return armed_; }
  [[nodiscard]] const FaultCounters& counters() const { return counters_; }

  /// Publishes FaultCounters as gauges and records every fault activation in
  /// the flight recorder.  Call before arm(); the fabric's obs must outlive
  /// the plane.
  void attach_obs(obs::Obs& obs);

 private:
  struct FlapSpec {
    LinkId link;
    TimeNs down_at;
    TimeNs up_at;
    int repeats;
    TimeNs period;
  };
  struct LossRule {
    double rate;
    LossClass klass;
    TimeNs from;
    TimeNs until;
  };
  struct TamperSpec {
    TamperKind kind;
    double scale;
    TimeNs from;
    TimeNs until;
  };
  struct ResetSpec {
    NodeId sw;
    TimeNs at;
  };
  struct BloomSpec {
    NodeId sw;
    std::size_t junk_keys;
    TimeNs at;
  };

  void arm_flap(const FlapSpec& spec);
  [[nodiscard]] static bool matches(LossClass klass, const sim::Packet& pkt);

  harness::Fabric& fab_;
  Rng rng_;
  FaultCounters counters_;
  bool armed_ = false;
  obs::Obs* obs_ = nullptr;

  std::vector<FlapSpec> flaps_;
  std::unordered_map<std::int32_t, std::vector<LossRule>> loss_rules_;  // by LinkId
  std::unordered_map<std::int32_t, std::vector<TamperSpec>> tampers_;  // by NodeId
  std::vector<ResetSpec> resets_;
  std::vector<BloomSpec> blooms_;
};

}  // namespace ufab::faults

#include "src/faults/fault_plane.hpp"

#include <utility>

#include "src/core/assert.hpp"

namespace ufab::faults {

const char* to_string(LossClass c) {
  switch (c) {
    case LossClass::kAll:
      return "all";
    case LossClass::kProbeOnly:
      return "probe-only";
    case LossClass::kDataOnly:
      return "data-only";
  }
  return "?";
}

FaultPlane::FaultPlane(harness::Fabric& fab, std::uint64_t seed)
    : fab_(fab), rng_(Rng{seed}.fork("fault-plane")) {}

FaultPlane& FaultPlane::flap(LinkId link, TimeNs down_at, TimeNs up_at, int repeats,
                             TimeNs period) {
  UFAB_CHECK_MSG(fab_.net().link(link) != nullptr, "flap on unknown link");
  UFAB_CHECK_MSG(up_at > down_at, "flap must come back up after going down");
  UFAB_CHECK_MSG(repeats == 1 || period > up_at - down_at,
                 "repeating flap period must exceed the outage");
  flaps_.push_back(FlapSpec{link, down_at, up_at, repeats, period});
  return *this;
}

FaultPlane& FaultPlane::loss(LinkId link, double rate, LossClass klass, TimeNs from,
                             TimeNs until) {
  UFAB_CHECK_MSG(fab_.net().link(link) != nullptr, "loss on unknown link");
  UFAB_CHECK_MSG(rate >= 0.0 && rate <= 1.0, "loss rate must be a probability");
  loss_rules_[link.value()].push_back(LossRule{rate, klass, from, until});
  return *this;
}

FaultPlane& FaultPlane::reset_switch_state(NodeId sw, TimeNs at) {
  UFAB_CHECK_MSG(!fab_.core_agents_of(sw).empty(),
                 "reset_switch_state on a switch without uFAB-C agents");
  resets_.push_back(ResetSpec{sw, at});
  return *this;
}

FaultPlane& FaultPlane::stale_telemetry(NodeId sw, TimeNs from, TimeNs until) {
  UFAB_CHECK_MSG(!fab_.core_agents_of(sw).empty(),
                 "stale_telemetry on a switch without uFAB-C agents");
  tampers_[sw.value()].push_back(TamperSpec{TamperKind::kFreezeStamp, 1.0, from, until});
  return *this;
}

FaultPlane& FaultPlane::corrupt_telemetry(NodeId sw, double scale, TimeNs from, TimeNs until) {
  UFAB_CHECK_MSG(!fab_.core_agents_of(sw).empty(),
                 "corrupt_telemetry on a switch without uFAB-C agents");
  UFAB_CHECK_MSG(scale >= 0.0, "register scale must be non-negative");
  tampers_[sw.value()].push_back(TamperSpec{TamperKind::kScaleRegisters, scale, from, until});
  return *this;
}

FaultPlane& FaultPlane::strip_telemetry(NodeId sw, TimeNs from, TimeNs until) {
  UFAB_CHECK_MSG(!fab_.core_agents_of(sw).empty(),
                 "strip_telemetry on a switch without uFAB-C agents");
  tampers_[sw.value()].push_back(TamperSpec{TamperKind::kStrip, 1.0, from, until});
  return *this;
}

FaultPlane& FaultPlane::saturate_bloom(NodeId sw, std::size_t junk_keys, TimeNs at) {
  UFAB_CHECK_MSG(!fab_.core_agents_of(sw).empty(),
                 "saturate_bloom on a switch without uFAB-C agents");
  blooms_.push_back(BloomSpec{sw, junk_keys, at});
  return *this;
}

bool FaultPlane::matches(LossClass klass, const sim::Packet& pkt) {
  switch (klass) {
    case LossClass::kAll:
      return true;
    case LossClass::kProbeOnly:
      return pkt.kind == sim::PacketKind::kProbe || pkt.kind == sim::PacketKind::kProbeResponse ||
             pkt.kind == sim::PacketKind::kFinishProbe;
    case LossClass::kDataOnly:
      return pkt.kind == sim::PacketKind::kData;
  }
  return false;
}

void FaultPlane::arm_flap(const FlapSpec& spec) {
  sim::Link* link = fab_.net().link(spec.link);
  for (int k = 0; k < spec.repeats; ++k) {
    const TimeNs shift = spec.period * k;
    fab_.sim().at(spec.down_at + shift, [this, link] {
      link->set_down(true);
      ++counters_.link_downs;
    });
    fab_.sim().at(spec.up_at + shift, [this, link] {
      link->set_down(false);
      ++counters_.link_ups;
    });
  }
}

void FaultPlane::arm() {
  UFAB_CHECK_MSG(!armed_, "FaultPlane::arm() called twice");
  armed_ = true;

  for (const FlapSpec& spec : flaps_) arm_flap(spec);

  // One filter per link, scanning that link's rules in declaration order.
  // A packet is dropped by the first rule whose window and class match and
  // whose Bernoulli draw fires; draws are only consumed for matching rules,
  // keeping unrelated scenarios on the same seed independent.
  for (auto& [link_value, rules] : loss_rules_) {
    sim::Link* link = fab_.net().link(LinkId{link_value});
    link->set_fault_filter([this, rules = rules](const sim::Packet& pkt) {
      const TimeNs now = fab_.sim().now();
      for (const LossRule& rule : rules) {
        if (now < rule.from || now >= rule.until) continue;
        if (!matches(rule.klass, pkt)) continue;
        if (rng_.uniform() < rule.rate) {
          ++counters_.loss_drops;
          return true;
        }
      }
      return false;
    });
  }

  for (const ResetSpec& spec : resets_) {
    fab_.sim().at(spec.at, [this, sw = spec.sw] {
      for (telemetry::CoreAgent* agent : fab_.core_agents_of(sw)) agent->reset_state();
      ++counters_.switch_resets;
    });
  }

  for (auto& [sw_value, specs] : tampers_) {
    for (telemetry::CoreAgent* agent : fab_.core_agents_of(NodeId{sw_value})) {
      agent->set_int_tamper([this, specs = specs](sim::IntRecord& rec, TimeNs now) {
        for (const TamperSpec& spec : specs) {
          if (now < spec.from || now >= spec.until) continue;
          switch (spec.kind) {
            case TamperKind::kFreezeStamp:
              rec.stamp = spec.from;
              ++counters_.stale_records;
              break;
            case TamperKind::kScaleRegisters:
              rec.phi_total *= spec.scale;
              rec.window_total *= spec.scale;
              ++counters_.corrupted_records;
              break;
            case TamperKind::kStrip:
              ++counters_.stripped_records;
              return false;
          }
        }
        return true;
      });
    }
  }

  for (const BloomSpec& spec : blooms_) {
    fab_.sim().at(spec.at, [this, spec] {
      for (telemetry::CoreAgent* agent : fab_.core_agents_of(spec.sw)) {
        for (std::size_t i = 0; i < spec.junk_keys; ++i) {
          agent->inject_bloom_junk(rng_());
          ++counters_.bloom_junk_keys;
        }
      }
    });
  }
}

}  // namespace ufab::faults

#include "src/faults/fault_plane.hpp"

#include <utility>

#include "src/core/assert.hpp"
#include "src/obs/obs.hpp"

namespace ufab::faults {

const char* to_string(LossClass c) {
  switch (c) {
    case LossClass::kAll:
      return "all";
    case LossClass::kProbeOnly:
      return "probe-only";
    case LossClass::kDataOnly:
      return "data-only";
  }
  return "?";
}

FaultPlane::FaultPlane(harness::Fabric& fab, std::uint64_t seed)
    : fab_(fab), rng_(Rng{seed}.fork("fault-plane")) {
  // Fault events flip link/switch state anywhere in the fabric and draw from
  // one shared RNG; under a sharded engine that is only well-defined when
  // shards execute one at a time.
  if (fab_.sim().shard_count() > 1) fab_.sim().require_sequential("fault-plane");
}

void FaultPlane::attach_obs(obs::Obs& obs) {
  if (!obs.enabled()) return;
  obs_ = &obs;
  auto& m = obs.metrics();
  m.gauge_fn("fault.link_downs", {},
             [this] { return static_cast<double>(counters_.link_downs); });
  m.gauge_fn("fault.link_ups", {},
             [this] { return static_cast<double>(counters_.link_ups); });
  m.gauge_fn("fault.loss_drops", {},
             [this] { return static_cast<double>(counters_.loss_drops); });
  m.gauge_fn("fault.switch_resets", {},
             [this] { return static_cast<double>(counters_.switch_resets); });
  m.gauge_fn("fault.stale_records", {},
             [this] { return static_cast<double>(counters_.stale_records); });
  m.gauge_fn("fault.corrupted_records", {},
             [this] { return static_cast<double>(counters_.corrupted_records); });
  m.gauge_fn("fault.stripped_records", {},
             [this] { return static_cast<double>(counters_.stripped_records); });
  m.gauge_fn("fault.bloom_junk_keys", {},
             [this] { return static_cast<double>(counters_.bloom_junk_keys); });
}

FaultPlane& FaultPlane::flap(LinkId link, TimeNs down_at, TimeNs up_at, int repeats,
                             TimeNs period) {
  UFAB_CHECK_MSG(fab_.net().link(link) != nullptr, "flap on unknown link");
  UFAB_CHECK_MSG(up_at > down_at, "flap must come back up after going down");
  UFAB_CHECK_MSG(repeats == 1 || period > up_at - down_at,
                 "repeating flap period must exceed the outage");
  flaps_.push_back(FlapSpec{link, down_at, up_at, repeats, period});
  return *this;
}

FaultPlane& FaultPlane::loss(LinkId link, double rate, LossClass klass, TimeNs from,
                             TimeNs until) {
  UFAB_CHECK_MSG(fab_.net().link(link) != nullptr, "loss on unknown link");
  UFAB_CHECK_MSG(rate >= 0.0 && rate <= 1.0, "loss rate must be a probability");
  loss_rules_[link.value()].push_back(LossRule{rate, klass, from, until});
  return *this;
}

FaultPlane& FaultPlane::reset_switch_state(NodeId sw, TimeNs at) {
  UFAB_CHECK_MSG(!fab_.core_agents_of(sw).empty(),
                 "reset_switch_state on a switch without uFAB-C agents");
  resets_.push_back(ResetSpec{sw, at});
  return *this;
}

FaultPlane& FaultPlane::stale_telemetry(NodeId sw, TimeNs from, TimeNs until) {
  UFAB_CHECK_MSG(!fab_.core_agents_of(sw).empty(),
                 "stale_telemetry on a switch without uFAB-C agents");
  tampers_[sw.value()].push_back(TamperSpec{TamperKind::kFreezeStamp, 1.0, from, until});
  return *this;
}

FaultPlane& FaultPlane::corrupt_telemetry(NodeId sw, double scale, TimeNs from, TimeNs until) {
  UFAB_CHECK_MSG(!fab_.core_agents_of(sw).empty(),
                 "corrupt_telemetry on a switch without uFAB-C agents");
  UFAB_CHECK_MSG(scale >= 0.0, "register scale must be non-negative");
  tampers_[sw.value()].push_back(TamperSpec{TamperKind::kScaleRegisters, scale, from, until});
  return *this;
}

FaultPlane& FaultPlane::strip_telemetry(NodeId sw, TimeNs from, TimeNs until) {
  UFAB_CHECK_MSG(!fab_.core_agents_of(sw).empty(),
                 "strip_telemetry on a switch without uFAB-C agents");
  tampers_[sw.value()].push_back(TamperSpec{TamperKind::kStrip, 1.0, from, until});
  return *this;
}

FaultPlane& FaultPlane::saturate_bloom(NodeId sw, std::size_t junk_keys, TimeNs at) {
  UFAB_CHECK_MSG(!fab_.core_agents_of(sw).empty(),
                 "saturate_bloom on a switch without uFAB-C agents");
  blooms_.push_back(BloomSpec{sw, junk_keys, at});
  return *this;
}

bool FaultPlane::matches(LossClass klass, const sim::Packet& pkt) {
  switch (klass) {
    case LossClass::kAll:
      return true;
    case LossClass::kProbeOnly:
      return pkt.kind == sim::PacketKind::kProbe || pkt.kind == sim::PacketKind::kProbeResponse ||
             pkt.kind == sim::PacketKind::kFinishProbe;
    case LossClass::kDataOnly:
      return pkt.kind == sim::PacketKind::kData;
  }
  return false;
}

void FaultPlane::arm_flap(const FlapSpec& spec) {
  sim::Link* link = fab_.net().link(spec.link);
  // A flapped link must use the legacy serializer: a fused *cut* link posts
  // its cross-shard crossing when serialization starts, and a later
  // set_down(true) could not recall it.  The pin is applied on every
  // partition (the flap schedule is partition-invariant), so per-hop event
  // counts stay byte-identical across shard counts.
  link->pin_legacy();
  for (int k = 0; k < spec.repeats; ++k) {
    const TimeNs shift = spec.period * k;
    fab_.sim().at(spec.down_at + shift, [this, link] {
      link->set_down(true);
      ++counters_.link_downs;
      if (obs_ != nullptr) {
        obs::TraceEvent ev;
        ev.at = fab_.sim().now();
        ev.kind = obs::EventKind::kLinkDown;
        ev.track = obs::Track::link(link->id());
        ev.link = link->id();
        obs_->record(ev);
      }
    });
    fab_.sim().at(spec.up_at + shift, [this, link] {
      link->set_down(false);
      ++counters_.link_ups;
      if (obs_ != nullptr) {
        obs::TraceEvent ev;
        ev.at = fab_.sim().now();
        ev.kind = obs::EventKind::kLinkUp;
        ev.track = obs::Track::link(link->id());
        ev.link = link->id();
        obs_->record(ev);
      }
    });
  }
}

void FaultPlane::arm() {
  UFAB_CHECK_MSG(!armed_, "FaultPlane::arm() called twice");
  armed_ = true;

  for (const FlapSpec& spec : flaps_) arm_flap(spec);

  // One filter per link, scanning that link's rules in declaration order.
  // A packet is dropped by the first rule whose window and class match and
  // whose Bernoulli draw fires; draws are only consumed for matching rules,
  // keeping unrelated scenarios on the same seed independent.
  for (auto& [link_value, rules] : loss_rules_) {
    sim::Link* link = fab_.net().link(LinkId{link_value});
    link->set_fault_filter([this, rules = rules, link_value = link_value](const sim::Packet& pkt) {
      const TimeNs now = fab_.sim().now();
      for (const LossRule& rule : rules) {
        if (now < rule.from || now >= rule.until) continue;
        if (!matches(rule.klass, pkt)) continue;
        if (rng_.uniform() < rule.rate) {
          ++counters_.loss_drops;
          if (obs_ != nullptr) {
            obs::TraceEvent ev;
            ev.at = now;
            ev.kind = obs::EventKind::kFaultLossDrop;
            ev.track = obs::Track::link(LinkId{link_value});
            ev.pair = pkt.pair;
            ev.tenant = pkt.tenant;
            ev.link = LinkId{link_value};
            ev.seq = pkt.id;
            ev.a = static_cast<double>(pkt.size_bytes);
            obs_->record(ev);
          }
          return true;
        }
      }
      return false;
    });
  }

  for (const ResetSpec& spec : resets_) {
    fab_.sim().at(spec.at, [this, sw = spec.sw] {
      for (telemetry::CoreAgent* agent : fab_.core_agents_of(sw)) agent->reset_state();
      ++counters_.switch_resets;
      if (obs_ != nullptr) {
        // The injection itself, on the switch's own track; each CoreAgent
        // also records its per-egress kSwitchReset from inside reset_state().
        obs::TraceEvent ev;
        ev.at = fab_.sim().now();
        ev.kind = obs::EventKind::kSwitchReset;
        ev.track = obs::Track::switch_port(sw, -1);
        obs_->record(ev);
      }
    });
  }

  for (auto& [sw_value, specs] : tampers_) {
    for (telemetry::CoreAgent* agent : fab_.core_agents_of(NodeId{sw_value})) {
      agent->set_int_tamper(
          [this, specs = specs, sw_value = sw_value](sim::IntRecord& rec, TimeNs now) {
        const auto tampered = [&](std::uint8_t detail) {
          if (obs_ == nullptr) return;
          obs::TraceEvent ev;
          ev.at = now;
          ev.kind = obs::EventKind::kIntTamper;
          ev.detail = detail;  // 0=stale 1=corrupt 2=strip
          ev.track = obs::Track::switch_port(NodeId{sw_value}, -1);
          ev.link = rec.link;
          obs_->record(ev);
        };
        for (const TamperSpec& spec : specs) {
          if (now < spec.from || now >= spec.until) continue;
          switch (spec.kind) {
            case TamperKind::kFreezeStamp:
              rec.stamp = spec.from;
              ++counters_.stale_records;
              tampered(0);
              break;
            case TamperKind::kScaleRegisters:
              rec.phi_total *= spec.scale;
              rec.window_total *= spec.scale;
              ++counters_.corrupted_records;
              tampered(1);
              break;
            case TamperKind::kStrip:
              ++counters_.stripped_records;
              tampered(2);
              return false;
          }
        }
        return true;
      });
    }
  }

  for (const BloomSpec& spec : blooms_) {
    fab_.sim().at(spec.at, [this, spec] {
      for (telemetry::CoreAgent* agent : fab_.core_agents_of(spec.sw)) {
        for (std::size_t i = 0; i < spec.junk_keys; ++i) {
          agent->inject_bloom_junk(rng_());
          ++counters_.bloom_junk_keys;
        }
      }
      if (obs_ != nullptr) {
        obs::TraceEvent ev;
        ev.at = fab_.sim().now();
        ev.kind = obs::EventKind::kBloomJunk;
        ev.track = obs::Track::switch_port(spec.sw, -1);
        ev.a = static_cast<double>(spec.junk_keys);
        obs_->record(ev);
      }
    });
  }
}

}  // namespace ufab::faults

// Windowed throughput measurement.
//
// RateMeter counts bytes against wall (simulation) time and reports the rate
// over the most recent closed window — the same measurement an experiment
// operator would make when plotting "rate vs time" curves like Fig. 11/12/16.
//
// Storage is a ring of per-bucket byte counts.  By default every bucket since
// t=0 is retained (figure benches read the whole series after the run); with
// a retention cap the ring holds only the trailing `retain_buckets` buckets
// and evicts the oldest as time advances, so a meter fed for a week of
// simulated time occupies the same memory as one fed for a millisecond — the
// mode the soak harness runs in.  Evicted bytes stay in `total_bytes()` and
// are tallied in `evicted_bytes()`; windowed queries see the retained
// history only.
#pragma once

#include <cstdint>
#include <vector>

#include "src/core/ring_deque.hpp"
#include "src/core/time.hpp"
#include "src/core/units.hpp"

namespace ufab {

/// Accumulates bytes into fixed-width time buckets and reports per-bucket or
/// trailing-window rates. Buckets are closed lazily as time advances.
class RateMeter {
 public:
  /// `bucket_width` must be positive (a zero-width meter cannot close a
  /// bucket and would divide by zero on every query).  `retain_buckets` = 0
  /// keeps the full history; a positive cap bounds memory to that many
  /// trailing buckets.
  explicit RateMeter(TimeNs bucket_width, std::size_t retain_buckets = 0);

  void add(TimeNs now, std::int64_t bytes);

  /// Rate over the last fully closed bucket before `now` (zero if none).
  [[nodiscard]] Bandwidth rate(TimeNs now) const;

  /// Rate averaged over the trailing `n` closed buckets before `now`.
  /// `n` is clamped to the number of closed buckets, so asking for a longer
  /// window than exists averages over all available (retained) history;
  /// while `now` is still inside bucket 0 there is no closed bucket and the
  /// rate is zero.
  [[nodiscard]] Bandwidth trailing_rate(TimeNs now, int n) const;

  /// Per-bucket series: (bucket start time, rate) for every closed bucket
  /// still retained.
  struct Sample {
    TimeNs at;
    Bandwidth rate;
  };
  [[nodiscard]] std::vector<Sample> series(TimeNs now) const;

  [[nodiscard]] std::int64_t total_bytes() const { return total_; }
  [[nodiscard]] TimeNs bucket_width() const { return width_; }

  // --- retention introspection (memory-bound assertions) ---
  /// Buckets currently held; never exceeds the cap when one is set.
  [[nodiscard]] std::size_t retained_buckets() const { return buckets_.size(); }
  [[nodiscard]] std::size_t retention_cap() const { return retain_; }
  /// Bytes whose buckets have been evicted (bounded mode only).
  [[nodiscard]] std::int64_t evicted_bytes() const { return evicted_bytes_; }

  /// Adds another meter's per-bucket bytes into this one.  Both meters must
  /// share the same bucket width.  Bucket sums are order-independent, so a
  /// merged meter reads the same regardless of which host (or shard) each
  /// byte was counted on.  Buckets older than this meter's retained window
  /// fold into `evicted_bytes()`.
  void merge_from(const RateMeter& other);

 private:
  [[nodiscard]] std::int64_t bucket_index(TimeNs t) const { return t.ns() / width_.ns(); }
  void add_bucket(std::int64_t idx, std::int64_t bytes);

  TimeNs width_;
  std::size_t retain_;                  ///< 0 = unbounded.
  RingDeque<std::int64_t> buckets_;     ///< Bytes per bucket, front = `base_`.
  std::int64_t base_ = 0;               ///< Absolute bucket index of the front.
  std::int64_t total_ = 0;
  std::int64_t evicted_bytes_ = 0;
};

}  // namespace ufab

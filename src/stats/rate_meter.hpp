// Windowed throughput measurement.
//
// RateMeter counts bytes against wall (simulation) time and reports the rate
// over the most recent closed window — the same measurement an experiment
// operator would make when plotting "rate vs time" curves like Fig. 11/12/16.
#pragma once

#include <cstdint>
#include <vector>

#include "src/core/time.hpp"
#include "src/core/units.hpp"

namespace ufab {

/// Accumulates bytes into fixed-width time buckets and reports per-bucket or
/// trailing-window rates. Buckets are closed lazily as time advances.
class RateMeter {
 public:
  /// `bucket_width` must be positive (a zero-width meter cannot close a
  /// bucket and would divide by zero on every query).
  explicit RateMeter(TimeNs bucket_width);

  void add(TimeNs now, std::int64_t bytes);

  /// Rate over the last fully closed bucket before `now` (zero if none).
  [[nodiscard]] Bandwidth rate(TimeNs now) const;

  /// Rate averaged over the trailing `n` closed buckets before `now`.
  /// `n` is clamped to the number of closed buckets, so asking for a longer
  /// window than exists averages over all available history; while `now` is
  /// still inside bucket 0 there is no closed bucket and the rate is zero.
  [[nodiscard]] Bandwidth trailing_rate(TimeNs now, int n) const;

  /// Per-bucket series: (bucket start time, rate) for every closed bucket.
  struct Sample {
    TimeNs at;
    Bandwidth rate;
  };
  [[nodiscard]] std::vector<Sample> series(TimeNs now) const;

  [[nodiscard]] std::int64_t total_bytes() const { return total_; }
  [[nodiscard]] TimeNs bucket_width() const { return width_; }

  /// Adds another meter's per-bucket bytes into this one.  Both meters must
  /// share the same bucket width.  Bucket sums are order-independent, so a
  /// merged meter reads the same regardless of which host (or shard) each
  /// byte was counted on.
  void merge_from(const RateMeter& other);

 private:
  [[nodiscard]] std::int64_t bucket_index(TimeNs t) const { return t.ns() / width_.ns(); }

  TimeNs width_;
  std::vector<std::int64_t> buckets_;  // bytes per bucket, index = bucket number
  std::int64_t total_ = 0;
};

}  // namespace ufab

#include "src/stats/percentile.hpp"

#include <algorithm>
#include <cmath>

#include "src/core/assert.hpp"

namespace ufab {

void PercentileTracker::add(double sample) {
  samples_.push_back(sample);
  sorted_ = false;
  sum_ += sample;
  sum_sq_ += sample * sample;
}

double PercentileTracker::mean() const {
  if (samples_.empty()) return 0.0;
  return sum_ / static_cast<double>(samples_.size());
}

double PercentileTracker::stddev() const {
  const auto n = static_cast<double>(samples_.size());
  if (n < 2.0) return 0.0;
  const double m = mean();
  const double var = std::max(0.0, sum_sq_ / n - m * m);
  return std::sqrt(var);
}

const std::vector<double>& PercentileTracker::sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  return samples_;
}

double PercentileTracker::min() const {
  UFAB_CHECK_MSG(!samples_.empty(), "min() on empty tracker");
  return sorted().front();
}

double PercentileTracker::max() const {
  UFAB_CHECK_MSG(!samples_.empty(), "max() on empty tracker");
  return sorted().back();
}

double PercentileTracker::percentile(double p) const {
  UFAB_CHECK_MSG(!samples_.empty(), "percentile() on empty tracker");
  UFAB_CHECK(p >= 0.0 && p <= 100.0);
  const auto& s = sorted();
  if (s.size() == 1) return s.front();
  const double rank = p / 100.0 * static_cast<double>(s.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, s.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return s[lo] + (s[hi] - s[lo]) * frac;
}

void PercentileTracker::clear() {
  samples_.clear();
  sorted_ = true;
  sum_ = 0.0;
  sum_sq_ = 0.0;
}

}  // namespace ufab

#include "src/stats/cdf.hpp"

#include <cstdio>

namespace ufab {

std::vector<CdfPoint> make_cdf(const PercentileTracker& tracker, int points) {
  std::vector<CdfPoint> out;
  if (tracker.empty() || points < 2) return out;
  out.reserve(static_cast<std::size_t>(points));
  for (int i = 0; i < points; ++i) {
    const double p = 100.0 * static_cast<double>(i) / static_cast<double>(points - 1);
    out.push_back({tracker.percentile(p), p / 100.0});
  }
  return out;
}

std::string latency_row(const std::string& label, const PercentileTracker& tracker,
                        const std::string& unit) {
  char buf[256];
  if (tracker.empty()) {
    std::snprintf(buf, sizeof(buf), "%-28s  (no samples)", label.c_str());
    return buf;
  }
  std::snprintf(buf, sizeof(buf),
                "%-28s  p50=%9.1f%s  p90=%9.1f%s  p99=%9.1f%s  p99.9=%9.1f%s  max=%9.1f%s",
                label.c_str(), tracker.percentile(50), unit.c_str(), tracker.percentile(90),
                unit.c_str(), tracker.percentile(99), unit.c_str(), tracker.percentile(99.9),
                unit.c_str(), tracker.max(), unit.c_str());
  return buf;
}

}  // namespace ufab

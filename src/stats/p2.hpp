// Streaming percentile estimation in O(1) memory (P², Jain & Chlamtac 1985).
//
// PercentileTracker stores every sample, which is the right trade for figure
// runs (a few million samples, exact tails) and the wrong one for the soak
// harness, where a week of simulated production would accumulate billions of
// FCT/RTT samples.  P2Quantile keeps five markers per tracked quantile and
// adjusts them with a piecewise-parabolic fit as samples stream through: the
// estimate converges to the true quantile for stationary inputs and the
// memory footprint never grows, no matter how long the run is.
//
// StreamingStats bundles the moments every SLO window wants (count / mean /
// min / max / stddev via Welford) with a fixed set of P² quantiles, so a
// consumer that used to hold a PercentileTracker can switch to O(1) memory by
// swapping the type.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace ufab {

/// One streaming quantile estimate (p in (0, 1)), five markers, no heap.
class P2Quantile {
 public:
  explicit P2Quantile(double p);

  void add(double sample);

  /// Current estimate: exact while fewer than 5 samples were seen, the P²
  /// middle-marker height afterwards.  0 when empty.
  [[nodiscard]] double value() const;

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double quantile() const { return p_; }
  [[nodiscard]] bool empty() const { return count_ == 0; }

  void clear();

 private:
  double p_;
  std::uint64_t count_ = 0;
  std::array<double, 5> q_{};   ///< Marker heights.
  std::array<double, 5> n_{};   ///< Marker positions (1-based).
  std::array<double, 5> np_{};  ///< Desired positions.
  std::array<double, 5> dn_{};  ///< Desired-position increments per sample.
};

/// Welford moments plus a fixed quantile set, all O(1) memory.
class StreamingStats {
 public:
  /// Default quantiles are the SLO set: p50 / p90 / p99 / p99.9.
  StreamingStats();
  explicit StreamingStats(const std::vector<double>& quantiles);

  void add(double sample);

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] bool empty() const { return count_ == 0; }
  [[nodiscard]] double mean() const { return count_ == 0 ? 0.0 : mean_; }
  [[nodiscard]] double min() const { return count_ == 0 ? 0.0 : min_; }
  [[nodiscard]] double max() const { return count_ == 0 ? 0.0 : max_; }
  [[nodiscard]] double stddev() const;

  /// Estimate for a quantile registered at construction (p in (0,1));
  /// asking for an unregistered quantile is a programming error.
  [[nodiscard]] double quantile(double p) const;

  /// Number of tracked quantiles (memory audit: fixed after construction).
  [[nodiscard]] std::size_t quantile_count() const { return quantiles_.size(); }

  void clear();

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  std::vector<P2Quantile> quantiles_;  ///< Sized at construction, never grows.
};

}  // namespace ufab

#include "src/stats/timeseries.hpp"

#include <algorithm>

namespace ufab {

void TimeSeries::compact() {
  // Amortized front-trim: runs when size reaches 2x the cap, drops the oldest
  // points down to exactly the cap.  Each retained point is moved at most once
  // per `retain_` appends, so adds stay amortized O(1).
  const std::size_t excess = points_.size() - retain_;
  dropped_ += excess;
  points_.erase(points_.begin(), points_.begin() + static_cast<std::ptrdiff_t>(excess));
}

double TimeSeries::mean_in(TimeNs from, TimeNs to) const {
  double sum = 0.0;
  std::size_t n = 0;
  for (const auto& p : points_) {
    if (p.at >= from && p.at < to) {
      sum += p.value;
      ++n;
    }
  }
  return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

double TimeSeries::max_in(TimeNs from, TimeNs to) const {
  double best = 0.0;
  bool any = false;
  for (const auto& p : points_) {
    if (p.at >= from && p.at < to) {
      best = any ? std::max(best, p.value) : p.value;
      any = true;
    }
  }
  return any ? best : 0.0;
}

double TimeSeries::value_at(TimeNs t, double fallback) const {
  double v = fallback;
  bool any = false;
  for (const auto& p : points_) {
    if (p.at <= t) {
      v = p.value;
      any = true;
    } else {
      break;  // points are appended in time order
    }
  }
  return any ? v : fallback;
}

TimeNs TimeSeries::settle_time(TimeNs from, double lo, double hi, TimeNs hold) const {
  TimeNs entered = TimeNs::max();
  for (const auto& p : points_) {
    if (p.at < from) continue;
    const bool inside = p.value >= lo && p.value <= hi;
    if (inside) {
      if (entered == TimeNs::max()) entered = p.at;
      if (p.at - entered >= hold) return entered;
    } else {
      entered = TimeNs::max();
    }
  }
  return TimeNs::max();
}

}  // namespace ufab

#include "src/stats/p2.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "src/core/assert.hpp"

namespace ufab {

P2Quantile::P2Quantile(double p) : p_(p) {
  UFAB_CHECK_MSG(p > 0.0 && p < 1.0, "P2Quantile wants p in (0, 1)");
  clear();
}

void P2Quantile::clear() {
  count_ = 0;
  q_.fill(0.0);
  n_ = {1, 2, 3, 4, 5};
  np_ = {1.0, 1.0 + 2.0 * p_, 1.0 + 4.0 * p_, 3.0 + 2.0 * p_, 5.0};
  dn_ = {0.0, p_ / 2.0, p_, (1.0 + p_) / 2.0, 1.0};
}

void P2Quantile::add(double x) {
  if (count_ < 5) {
    q_[count_++] = x;
    if (count_ == 5) std::sort(q_.begin(), q_.end());
    return;
  }
  ++count_;

  // Locate the cell and update the extremes.
  std::size_t k;
  if (x < q_[0]) {
    q_[0] = x;
    k = 0;
  } else if (x >= q_[4]) {
    q_[4] = x;
    k = 3;
  } else {
    k = 0;
    while (k < 3 && x >= q_[k + 1]) ++k;
  }

  for (std::size_t i = k + 1; i < 5; ++i) n_[i] += 1.0;
  for (std::size_t i = 0; i < 5; ++i) np_[i] += dn_[i];

  // Adjust the interior markers toward their desired positions.
  for (std::size_t i = 1; i <= 3; ++i) {
    const double d = np_[i] - n_[i];
    if ((d >= 1.0 && n_[i + 1] - n_[i] > 1.0) || (d <= -1.0 && n_[i - 1] - n_[i] < -1.0)) {
      const double s = d >= 0.0 ? 1.0 : -1.0;
      // Piecewise-parabolic prediction; fall back to linear when it would
      // break marker monotonicity.
      const double parabolic =
          q_[i] + s / (n_[i + 1] - n_[i - 1]) *
                      ((n_[i] - n_[i - 1] + s) * (q_[i + 1] - q_[i]) / (n_[i + 1] - n_[i]) +
                       (n_[i + 1] - n_[i] - s) * (q_[i] - q_[i - 1]) / (n_[i] - n_[i - 1]));
      if (q_[i - 1] < parabolic && parabolic < q_[i + 1]) {
        q_[i] = parabolic;
      } else {
        const std::size_t j = s > 0.0 ? i + 1 : i - 1;
        q_[i] = q_[i] + s * (q_[j] - q_[i]) / (n_[j] - n_[i]);
      }
      n_[i] += s;
    }
  }
}

double P2Quantile::value() const {
  if (count_ == 0) return 0.0;
  if (count_ >= 5) return q_[2];
  // Exact closest-rank interpolation over the stored prefix.
  std::array<double, 5> s = q_;
  std::sort(s.begin(), s.begin() + static_cast<std::ptrdiff_t>(count_));
  const double rank = p_ * static_cast<double>(count_ - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, static_cast<std::size_t>(count_ - 1));
  const double frac = rank - static_cast<double>(lo);
  return s[lo] + (s[hi] - s[lo]) * frac;
}

StreamingStats::StreamingStats() : StreamingStats(std::vector<double>{0.5, 0.9, 0.99, 0.999}) {}

StreamingStats::StreamingStats(const std::vector<double>& quantiles) {
  quantiles_.reserve(quantiles.size());
  for (const double p : quantiles) quantiles_.emplace_back(p);
}

void StreamingStats::add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  for (P2Quantile& q : quantiles_) q.add(x);
}

double StreamingStats::stddev() const {
  if (count_ < 2) return 0.0;
  return std::sqrt(std::max(0.0, m2_ / static_cast<double>(count_)));
}

double StreamingStats::quantile(double p) const {
  for (const P2Quantile& q : quantiles_) {
    if (q.quantile() == p) return q.value();
  }
  UFAB_CHECK_MSG(false, "StreamingStats::quantile(p) for an unregistered p");
  return 0.0;
}

void StreamingStats::clear() {
  count_ = 0;
  mean_ = 0.0;
  m2_ = 0.0;
  min_ = 0.0;
  max_ = 0.0;
  for (P2Quantile& q : quantiles_) q.clear();
}

}  // namespace ufab

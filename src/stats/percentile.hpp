// Exact percentile tracking over a stored sample set.
//
// Experiments in this repo record at most a few million scalar samples, so an
// exact sorted-on-demand digest is both simpler and more trustworthy than a
// streaming sketch when reproducing a paper's tail-latency claims.
#pragma once

#include <cstddef>
#include <vector>

namespace ufab {

/// Collects double samples and answers percentile / mean / extrema queries.
class PercentileTracker {
 public:
  void add(double sample);

  [[nodiscard]] std::size_t count() const { return samples_.size(); }
  [[nodiscard]] bool empty() const { return samples_.empty(); }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double stddev() const;

  /// Percentile by linear interpolation between closest ranks; p in [0, 100].
  /// Precondition: at least one sample.
  [[nodiscard]] double percentile(double p) const;

  [[nodiscard]] double median() const { return percentile(50.0); }

  /// Read-only access to (sorted) samples, e.g. for CDF dumps.
  [[nodiscard]] const std::vector<double>& sorted() const;

  void clear();

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
  double sum_ = 0.0;
  double sum_sq_ = 0.0;
};

}  // namespace ufab

// Timestamped scalar series, with helpers the benches use to print figures.
#pragma once

#include <string>
#include <vector>

#include "src/core/time.hpp"

namespace ufab {

/// An append-only (time, value) series.
class TimeSeries {
 public:
  struct Point {
    TimeNs at;
    double value;
  };

  void add(TimeNs at, double value) { points_.push_back({at, value}); }

  [[nodiscard]] const std::vector<Point>& points() const { return points_; }
  [[nodiscard]] bool empty() const { return points_.empty(); }
  [[nodiscard]] std::size_t size() const { return points_.size(); }

  /// Mean of values with timestamps in [from, to).
  [[nodiscard]] double mean_in(TimeNs from, TimeNs to) const;

  /// Max of values with timestamps in [from, to); 0 when the range is empty.
  [[nodiscard]] double max_in(TimeNs from, TimeNs to) const;

  /// Last value at or before `t`; `fallback` when none exists.
  [[nodiscard]] double value_at(TimeNs t, double fallback = 0.0) const;

  /// First time >= `from` at which the value enters [lo, hi] and stays inside
  /// for `hold`; returns TimeNs::max() if it never settles.
  [[nodiscard]] TimeNs settle_time(TimeNs from, double lo, double hi, TimeNs hold) const;

 private:
  std::vector<Point> points_;
};

}  // namespace ufab

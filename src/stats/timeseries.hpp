// Timestamped scalar series, with helpers the benches use to print figures.
#pragma once

#include <string>
#include <vector>

#include "src/core/time.hpp"

namespace ufab {

/// An append-only (time, value) series.
///
/// By default every point is retained (figure benches replay the whole run).
/// Constructed with a retention cap, the series keeps only the newest
/// `retain_points` entries: old points are dropped from the front in
/// amortized O(1) with at most 2x the cap resident, so a series fed for
/// unbounded simulated time stays bounded — the soak-harness mode.  Queries
/// then answer over the retained suffix only.
class TimeSeries {
 public:
  struct Point {
    TimeNs at;
    double value;
  };

  TimeSeries() = default;
  explicit TimeSeries(std::size_t retain_points) : retain_(retain_points) {}

  void add(TimeNs at, double value) {
    points_.push_back({at, value});
    if (retain_ > 0 && points_.size() >= 2 * retain_) compact();
  }

  [[nodiscard]] const std::vector<Point>& points() const { return points_; }
  [[nodiscard]] bool empty() const { return points_.empty(); }
  [[nodiscard]] std::size_t size() const { return points_.size(); }

  // --- retention introspection (memory-bound assertions) ---
  [[nodiscard]] std::size_t retention_cap() const { return retain_; }
  /// Points dropped from the front to honor the cap.
  [[nodiscard]] std::size_t dropped() const { return dropped_; }

  /// Mean of values with timestamps in [from, to).
  [[nodiscard]] double mean_in(TimeNs from, TimeNs to) const;

  /// Max of values with timestamps in [from, to); 0 when the range is empty.
  [[nodiscard]] double max_in(TimeNs from, TimeNs to) const;

  /// Last value at or before `t`; `fallback` when none exists.
  [[nodiscard]] double value_at(TimeNs t, double fallback = 0.0) const;

  /// First time >= `from` at which the value enters [lo, hi] and stays inside
  /// for `hold`; returns TimeNs::max() if it never settles.
  [[nodiscard]] TimeNs settle_time(TimeNs from, double lo, double hi, TimeNs hold) const;

 private:
  void compact();

  std::size_t retain_ = 0;  ///< 0 = unbounded.
  std::size_t dropped_ = 0;
  std::vector<Point> points_;
};

}  // namespace ufab

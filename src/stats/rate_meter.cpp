#include "src/stats/rate_meter.hpp"

#include <algorithm>

#include "src/core/assert.hpp"

namespace ufab {

RateMeter::RateMeter(TimeNs bucket_width, std::size_t retain_buckets)
    : width_(bucket_width), retain_(retain_buckets) {
  UFAB_CHECK_MSG(width_.ns() > 0, "RateMeter bucket width must be positive");
}

void RateMeter::add_bucket(std::int64_t idx, std::int64_t bytes) {
  if (idx < base_) {
    // The bucket was already evicted (late-arriving sample in bounded mode):
    // the bytes still count toward the totals, just not toward any window.
    evicted_bytes_ += bytes;
    return;
  }
  if (retain_ > 0 && idx >= base_ + static_cast<std::int64_t>(retain_)) {
    // Slide the retained window forward so it ends at `idx`.  Sliding before
    // the zero-fill below keeps the work per add bounded by the cap even
    // when the new sample lands far past the held range (an idle meter that
    // wakes up hours of simulated time later).
    const std::int64_t new_base = idx - static_cast<std::int64_t>(retain_) + 1;
    while (!buckets_.empty() && base_ < new_base) {
      evicted_bytes_ += buckets_.front();
      buckets_.pop_front();
      ++base_;
    }
    base_ = new_base;  // the window may have been skipped over entirely
  }
  while (base_ + static_cast<std::int64_t>(buckets_.size()) <= idx) buckets_.push_back(0);
  buckets_[static_cast<std::size_t>(idx - base_)] += bytes;
}

void RateMeter::add(TimeNs now, std::int64_t bytes) {
  UFAB_CHECK(bytes >= 0);
  UFAB_CHECK_MSG(now.ns() >= 0, "RateMeter fed a negative timestamp");
  add_bucket(bucket_index(now), bytes);
  total_ += bytes;
}

void RateMeter::merge_from(const RateMeter& other) {
  UFAB_CHECK_MSG(width_ == other.width_, "merge_from requires equal bucket widths");
  for (std::size_t i = 0; i < other.buckets_.size(); ++i) {
    if (other.buckets_[i] != 0) {
      add_bucket(other.base_ + static_cast<std::int64_t>(i), other.buckets_[i]);
    }
  }
  evicted_bytes_ += other.evicted_bytes_;
  total_ += other.total_;
}

Bandwidth RateMeter::rate(TimeNs now) const { return trailing_rate(now, 1); }

Bandwidth RateMeter::trailing_rate(TimeNs now, int n) const {
  UFAB_CHECK(n >= 1);
  if (now.ns() < 0) return Bandwidth::zero();
  // Only fully closed buckets count: while `now` sits inside bucket 0 there is
  // no complete window yet, so the measured rate is zero by definition.
  const std::int64_t current = bucket_index(now);
  if (current <= 0) return Bandwidth::zero();
  // Clamp the window to the closed, retained history: asking for more buckets
  // than exist averages over everything available rather than dividing by a
  // span that was never observed (or is no longer held).
  const std::int64_t first = std::max({std::int64_t{0}, current - n, base_});
  std::int64_t bytes = 0;
  const std::int64_t held_end = base_ + static_cast<std::int64_t>(buckets_.size());
  for (std::int64_t i = first; i < current; ++i) {
    if (i < held_end) bytes += buckets_[static_cast<std::size_t>(i - base_)];
  }
  const TimeNs span = width_ * (current - first);
  if (span.ns() <= 0) return Bandwidth::zero();
  return Bandwidth::bps(static_cast<double>(bytes) * 8e9 / static_cast<double>(span.ns()));
}

std::vector<RateMeter::Sample> RateMeter::series(TimeNs now) const {
  std::vector<Sample> out;
  if (now.ns() < 0) return out;
  const std::int64_t current = bucket_index(now);
  const std::int64_t held_end = base_ + static_cast<std::int64_t>(buckets_.size());
  for (std::int64_t i = base_; i < current && i < held_end; ++i) {
    const double bps = static_cast<double>(buckets_[static_cast<std::size_t>(i - base_)]) * 8e9 /
                       static_cast<double>(width_.ns());
    out.push_back({TimeNs{i * width_.ns()}, Bandwidth::bps(bps)});
  }
  return out;
}

}  // namespace ufab

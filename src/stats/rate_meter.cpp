#include "src/stats/rate_meter.hpp"

#include "src/core/assert.hpp"

namespace ufab {

RateMeter::RateMeter(TimeNs bucket_width) : width_(bucket_width) {
  UFAB_CHECK_MSG(width_.ns() > 0, "RateMeter bucket width must be positive");
}

void RateMeter::add(TimeNs now, std::int64_t bytes) {
  UFAB_CHECK(bytes >= 0);
  UFAB_CHECK_MSG(now.ns() >= 0, "RateMeter fed a negative timestamp");
  const auto idx = static_cast<std::size_t>(bucket_index(now));
  if (idx >= buckets_.size()) buckets_.resize(idx + 1, 0);
  buckets_[idx] += bytes;
  total_ += bytes;
}

void RateMeter::merge_from(const RateMeter& other) {
  UFAB_CHECK_MSG(width_ == other.width_, "merge_from requires equal bucket widths");
  if (other.buckets_.size() > buckets_.size()) buckets_.resize(other.buckets_.size(), 0);
  for (std::size_t i = 0; i < other.buckets_.size(); ++i) buckets_[i] += other.buckets_[i];
  total_ += other.total_;
}

Bandwidth RateMeter::rate(TimeNs now) const { return trailing_rate(now, 1); }

Bandwidth RateMeter::trailing_rate(TimeNs now, int n) const {
  UFAB_CHECK(n >= 1);
  if (now.ns() < 0) return Bandwidth::zero();
  // Only fully closed buckets count: while `now` sits inside bucket 0 there is
  // no complete window yet, so the measured rate is zero by definition.
  const std::int64_t current = bucket_index(now);
  if (current <= 0) return Bandwidth::zero();
  // Clamp the window to the closed history: asking for more buckets than have
  // closed averages over everything available rather than dividing by a span
  // that was never observed.
  const std::int64_t first = std::max<std::int64_t>(0, current - n);
  std::int64_t bytes = 0;
  for (std::int64_t i = first; i < current; ++i) {
    if (i < static_cast<std::int64_t>(buckets_.size())) bytes += buckets_[static_cast<std::size_t>(i)];
  }
  const TimeNs span = width_ * (current - first);
  if (span.ns() <= 0) return Bandwidth::zero();
  return Bandwidth::bps(static_cast<double>(bytes) * 8e9 / static_cast<double>(span.ns()));
}

std::vector<RateMeter::Sample> RateMeter::series(TimeNs now) const {
  std::vector<Sample> out;
  if (now.ns() < 0) return out;
  const std::int64_t current = bucket_index(now);
  for (std::int64_t i = 0; i < current && i < static_cast<std::int64_t>(buckets_.size()); ++i) {
    const double bps =
        static_cast<double>(buckets_[static_cast<std::size_t>(i)]) * 8e9 / static_cast<double>(width_.ns());
    out.push_back({TimeNs{i * width_.ns()}, Bandwidth::bps(bps)});
  }
  return out;
}

}  // namespace ufab

// CDF extraction and table printing helpers shared by benches.
#pragma once

#include <string>
#include <vector>

#include "src/stats/percentile.hpp"

namespace ufab {

/// One (x, F(x)) point of an empirical CDF.
struct CdfPoint {
  double value;
  double cum_prob;
};

/// Evenly spaced (in probability) CDF points from a tracker's samples.
std::vector<CdfPoint> make_cdf(const PercentileTracker& tracker, int points = 50);

/// Formats a row of the standard latency summary used across benches:
/// median / p90 / p99 / p999 / max.
std::string latency_row(const std::string& label, const PercentileTracker& tracker,
                        const std::string& unit = "us");

}  // namespace ufab

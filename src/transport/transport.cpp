#include "src/transport/transport.hpp"

#include <algorithm>

#include "src/core/assert.hpp"
#include "src/obs/obs.hpp"

namespace ufab::transport {

namespace {
using sim::Packet;
using sim::PacketKind;
using sim::PacketPtr;

/// How often the retransmission scanner wakes while packets are outstanding.
constexpr TimeNs kRtxScanInterval{50'000};  // 50 us
}  // namespace

TransportStack::TransportStack(topo::Network& net, const harness::VmMap& vms, HostId host,
                               TransportOptions opts, Rng rng)
    : net_(net), vms_(vms), sim_(net.simulator()), host_(host), opts_(opts), rng_(rng) {
  net_.host(host_).set_stack(this);
}

TransportStack::~TransportStack() = default;

void TransportStack::attach_obs(obs::Obs& obs) {
  if (!obs.enabled()) return;
  obs_ = &obs;
  const obs::Labels labels{{"host", std::to_string(host_.value())}};
  obs.metrics().gauge_fn("transport.retransmits", labels,
                         [this] { return static_cast<double>(retransmits_); });
  obs.metrics().gauge_fn("transport.connections", labels, [this] {
    return static_cast<double>(conn_order_.size());
  });
  obs.metrics().gauge_fn("transport.rtt_p99_us", labels, [this] { return rtt_p99_us(); });
}

double TransportStack::rtt_p99_us() const {
  if (opts_.bounded_rtt_stats) {
    return rtt_stream_us_.empty() ? 0.0 : rtt_stream_us_.quantile(0.99);
  }
  return rtt_us_.count() > 0 ? rtt_us_.percentile(99.0) : 0.0;
}

Connection* TransportStack::find_connection(VmPairId pair) {
  auto it = conns_.find(pair);
  return it == conns_.end() ? nullptr : it->second.get();
}

Connection& TransportStack::connection(VmPairId pair, TenantId tenant) {
  if (auto it = conns_.find(pair); it != conns_.end()) return *it->second;
  auto conn = make_connection();
  conn->pair = pair;
  conn->tenant = tenant;
  conn->src_host = host_;
  conn->dst_host = vms_.host_of(pair.dst);
  UFAB_CHECK_MSG(conn->dst_host != host_, "VM pair endpoints on the same host");
  conn->base_rtt = net_.base_rtt(host_, conn->dst_host);
  assign_candidate_paths(*conn);
  Connection& ref = *conn;
  conn_order_.push_back(conn.get());
  conns_.emplace(pair, std::move(conn));
  on_connection_created(ref);
  return ref;
}

void TransportStack::assign_candidate_paths(Connection& conn) {
  conn.candidates.clear();
  conn.candidate_reverse.clear();
  if (!opts_.source_routing) return;
  const auto& all = net_.paths(host_, conn.dst_host, 64);
  if (all.size() <= opts_.candidate_paths) {
    conn.candidates = all;
  } else {
    // Random subset without replacement (deterministic per stack RNG).
    std::vector<std::size_t> idx(all.size());
    for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
    for (std::size_t i = 0; i < opts_.candidate_paths; ++i) {
      const auto j = i + static_cast<std::size_t>(rng_.below(idx.size() - i));
      std::swap(idx[i], idx[j]);
      conn.candidates.push_back(all[idx[i]]);
    }
  }
  conn.candidate_reverse.reserve(conn.candidates.size());
  for (const auto& p : conn.candidates) {
    conn.candidate_reverse.push_back(net_.reverse(p, host_, conn.dst_host));
  }
  conn.path_idx = static_cast<std::int32_t>(rng_.below(conn.candidates.size()));
}

std::uint64_t TransportStack::send_message(Message msg) {
  UFAB_CHECK(msg.size_bytes > 0);
  UFAB_CHECK_MSG(vms_.host_of(msg.pair.src) == host_, "message source VM not on this host");
  if (msg.id == 0) msg.id = next_msg_id_++;
  if (msg.created_at == TimeNs::zero()) msg.created_at = sim_.now();
  if (vms_.host_of(msg.pair.dst) == host_) {
    // Intra-host traffic never touches the fabric: deliver via the software
    // loopback with a small fixed latency.
    constexpr TimeNs kLoopbackDelay{2'000};
    sim_.after(kLoopbackDelay, [this, msg] {
      if (sink_ != nullptr) sink_->on_message_delivered(msg, sim_.now());
      if (sent_cb_) sent_cb_(msg, sim_.now());
    });
    return msg.id;
  }
  Connection& conn = connection(msg.pair, msg.tenant);
  const bool was_idle = !conn.has_backlog() && conn.inflight_bytes == 0;
  conn.pending_msgs[msg.id] = Connection::PendingMessage{msg.size_bytes, msg};
  conn.sendq.push_back(msg);
  if (was_idle) on_demand_arrived(conn);
  kick();
  return msg.id;
}

void TransportStack::kick() { host().notify_sendable(); }

void TransportStack::kick_at(TimeNs t) {
  if (kick_pending_ && t >= pending_kick_at_) return;
  kick_pending_ = true;
  pending_kick_at_ = t;
  sim_.at(t, [this, t] {
    if (pending_kick_at_ == t) {
      kick_pending_ = false;
      pending_kick_at_ = TimeNs::max();
    }
    kick();
  });
}

void TransportStack::send_control_packet(PacketPtr pkt) { host().send_control(std::move(pkt)); }

Connection* TransportStack::next_sender() {
  if (conn_order_.empty()) return nullptr;
  const TimeNs now = sim_.now();
  for (std::size_t i = 0; i < conn_order_.size(); ++i) {
    rr_cursor_ = (rr_cursor_ + 1) % conn_order_.size();
    Connection* c = conn_order_[rr_cursor_];
    if (c->has_backlog() && can_send(*c) && earliest_send(*c) <= now) return c;
  }
  return nullptr;
}

PacketPtr TransportStack::pull() {
  Connection* c = next_sender();
  if (c == nullptr) {
    // Nothing sendable now: if some connection is only pacing-blocked,
    // schedule a wake-up at its release time.
    TimeNs wake = TimeNs::max();
    for (Connection* conn : conn_order_) {
      if (!conn->has_backlog() || !can_send(*conn)) continue;
      wake = std::min(wake, earliest_send(*conn));
    }
    if (wake != TimeNs::max() && wake > sim_.now()) kick_at(wake);
    return nullptr;
  }
  return c->rtx_queue.empty() ? make_data_packet(*c) : make_rtx_packet(*c);
}

PacketPtr TransportStack::make_data_packet(Connection& conn) {
  UFAB_CHECK(!conn.sendq.empty());
  select_path(conn);
  Message& m = conn.sendq.front();
  const std::int64_t remaining = m.size_bytes - conn.cur_offset;
  const auto payload = static_cast<std::int32_t>(
      std::min<std::int64_t>(opts_.mtu_payload, remaining));
  auto pkt = sim::make_packet(sim_.packet_pool(), PacketKind::kData, conn.pair, conn.tenant, host_, conn.dst_host,
                          payload + sim::kDataHeaderBytes);
  pkt->message_id = m.id;
  pkt->seq = conn.cur_offset;
  pkt->payload = payload;
  pkt->message_size = m.size_bytes;
  pkt->msg_created = m.created_at;
  pkt->user_tag = m.user_tag;
  pkt->last_of_message = conn.cur_offset + payload >= m.size_bytes;
  pkt->sent_at = sim_.now();
  if (!conn.candidates.empty()) {
    pkt->route = conn.current_path().route;
    pkt->reverse_route = conn.candidate_reverse[static_cast<std::size_t>(conn.path_idx)].route;
    pkt->path_tag = PathId{conn.path_idx};
  }

  conn.outstanding.emplace(
      pkt->id, Connection::Outstanding{m.id, m.user_tag, conn.cur_offset, pkt->size_bytes,
                                       payload, m.size_bytes, m.created_at, sim_.now(),
                                       /*retransmitted=*/false, pkt->last_of_message});
  conn.inflight_bytes += pkt->size_bytes;
  conn.bytes_sent_total += payload;
  conn.cur_offset += payload;
  conn.last_activity = sim_.now();
  if (conn.cur_offset >= m.size_bytes) {
    conn.sendq.pop_front();
    conn.cur_offset = 0;
  }
  ensure_rtx_scan();
  on_data_sent(conn, *pkt);
  return pkt;
}

PacketPtr TransportStack::make_rtx_packet(Connection& conn) {
  UFAB_CHECK(!conn.rtx_queue.empty());
  select_path(conn);
  Connection::Outstanding o = conn.rtx_queue.front();
  conn.rtx_queue.pop_front();
  auto pkt = sim::make_packet(sim_.packet_pool(), PacketKind::kData, conn.pair, conn.tenant, host_, conn.dst_host,
                          o.wire_bytes);
  pkt->message_id = o.msg_id;
  pkt->seq = o.offset;
  pkt->payload = o.payload;
  pkt->message_size = o.msg_size;
  pkt->msg_created = o.msg_created;
  pkt->user_tag = o.user_tag;
  pkt->last_of_message = o.last;
  pkt->sent_at = sim_.now();
  if (!conn.candidates.empty()) {
    pkt->route = conn.current_path().route;
    pkt->reverse_route = conn.candidate_reverse[static_cast<std::size_t>(conn.path_idx)].route;
    pkt->path_tag = PathId{conn.path_idx};
  }
  o.sent_at = sim_.now();
  o.retransmitted = true;
  conn.outstanding.emplace(pkt->id, o);
  conn.inflight_bytes += o.wire_bytes;
  conn.last_activity = sim_.now();
  ++retransmits_;
  if (obs_ != nullptr && obs_->record_datapath()) {
    obs::TraceEvent ev;
    ev.at = sim_.now();
    ev.kind = obs::EventKind::kDataRetransmit;
    ev.track = obs::Track::host(host_);
    ev.pair = conn.pair;
    ev.tenant = conn.tenant;
    ev.seq = pkt->id;
    ev.a = static_cast<double>(o.wire_bytes);
    obs_->record(ev);
  }
  ensure_rtx_scan();
  on_data_sent(conn, *pkt);
  return pkt;
}

void TransportStack::ensure_rtx_scan() {
  if (rtx_scan_scheduled_) return;
  rtx_scan_scheduled_ = true;
  sim_.after(kRtxScanInterval, [this] {
    rtx_scan_scheduled_ = false;
    scan_for_timeouts();
  });
}

void TransportStack::scan_for_timeouts() {
  const TimeNs now = sim_.now();
  bool any_outstanding = false;
  bool gained_rtx = false;
  std::vector<Connection::Outstanding> expired;
  for (Connection* conn : conn_order_) {
    const TimeNs rto = conn->base_rtt.scaled(opts_.rto_rtts);
    // `outstanding` is keyed by packet id, whose values depend on pool
    // layout; collect expired entries and order them by send history so the
    // retransmit order is a function of the traffic, not of hash iteration.
    expired.clear();
    for (auto it = conn->outstanding.begin(); it != conn->outstanding.end();) {
      if (now - it->second.sent_at > rto) {
        conn->inflight_bytes -= it->second.wire_bytes;
        expired.push_back(it->second);
        it = conn->outstanding.erase(it);
        gained_rtx = true;
      } else {
        ++it;
      }
    }
    std::sort(expired.begin(), expired.end(),
              [](const Connection::Outstanding& a, const Connection::Outstanding& b) {
                if (a.sent_at != b.sent_at) return a.sent_at < b.sent_at;
                if (a.msg_id != b.msg_id) return a.msg_id < b.msg_id;
                return a.offset < b.offset;
              });
    for (auto& o : expired) conn->rtx_queue.push_back(std::move(o));
    if (!conn->outstanding.empty() || !conn->rtx_queue.empty()) any_outstanding = true;
  }
  if (any_outstanding) ensure_rtx_scan();
  if (gained_rtx) kick();
}

void TransportStack::on_packet(PacketPtr pkt) {
  switch (pkt->kind) {
    case PacketKind::kData:
      handle_data(std::move(pkt));
      return;
    case PacketKind::kAck:
      handle_ack(std::move(pkt));
      return;
    default:
      on_control_packet(std::move(pkt));
      return;
  }
}

void TransportStack::handle_data(PacketPtr pkt) {
  for (const auto& tap : rx_taps_) tap(*pkt);
  on_data_received(*pkt);
  // Reassembly bookkeeping.
  auto& per_pair = rx_[pkt->pair.key()];
  auto it = per_pair.find(pkt->message_id);
  if (it == per_pair.end()) {
    Reassembly r;
    r.msg.id = pkt->message_id;
    r.msg.pair = pkt->pair;
    r.msg.tenant = pkt->tenant;
    r.msg.size_bytes = pkt->message_size;
    r.msg.created_at = pkt->msg_created;
    r.msg.user_tag = pkt->user_tag;
    const auto chunks = static_cast<std::size_t>(
        (pkt->message_size + opts_.mtu_payload - 1) / opts_.mtu_payload);
    r.chunks.assign(std::max<std::size_t>(1, chunks), false);
    it = per_pair.emplace(pkt->message_id, std::move(r)).first;
  }
  Reassembly& r = it->second;
  const auto chunk = static_cast<std::size_t>(pkt->seq / opts_.mtu_payload);
  if (chunk < r.chunks.size() && !r.chunks[chunk]) {
    r.chunks[chunk] = true;
    r.received += pkt->payload;
  }
  const bool complete = r.received >= r.msg.size_bytes;

  // Per-packet ACK along the reverse route (control priority).
  auto ack = sim::make_packet(sim_.packet_pool(), PacketKind::kAck, pkt->pair, pkt->tenant, host_, pkt->src_host,
                          sim::kAckBytes);
  ack->acked_packet_id = pkt->id;
  ack->message_id = pkt->message_id;
  ack->seq = pkt->seq;
  ack->payload = pkt->payload;
  ack->sent_at = pkt->sent_at;
  ack->ecn_echo = pkt->ecn_ce;
  ack->path_tag = pkt->path_tag;
  ack->route = pkt->reverse_route;
  send_control_packet(std::move(ack));

  if (complete) {
    if (sink_ != nullptr) sink_->on_message_delivered(r.msg, sim_.now());
    per_pair.erase(it);
  }
}

void TransportStack::handle_ack(PacketPtr pkt) {
  auto cit = conns_.find(pkt->pair);
  if (cit == conns_.end()) return;
  Connection& conn = *cit->second;

  Connection::Outstanding o;
  bool found = false;
  if (auto it = conn.outstanding.find(pkt->acked_packet_id); it != conn.outstanding.end()) {
    o = it->second;
    conn.outstanding.erase(it);
    conn.inflight_bytes -= o.wire_bytes;
    found = true;
  } else {
    // The packet may have been moved to the retransmit queue by a timeout
    // that raced with this (late) ACK: cancel the spurious retransmit.
    for (auto it2 = conn.rtx_queue.begin(); it2 != conn.rtx_queue.end(); ++it2) {
      if (it2->msg_id == pkt->message_id && it2->offset == pkt->seq) {
        o = *it2;
        conn.rtx_queue.erase(it2);
        found = true;
        break;
      }
    }
  }
  if (!found) {
    on_ack(conn, *pkt, std::nullopt);  // duplicate ACK: scheme may still care
    return;
  }

  std::optional<TimeNs> rtt;
  if (!o.retransmitted) {
    rtt = sim_.now() - o.sent_at;
    if (opts_.bounded_rtt_stats) {
      rtt_stream_us_.add(rtt->us());
    } else {
      rtt_us_.add(rtt->us());
    }
    conn.last_rtt = *rtt;
  }

  if (auto pm = conn.pending_msgs.find(o.msg_id); pm != conn.pending_msgs.end()) {
    pm->second.remaining -= o.payload;
    if (pm->second.remaining <= 0) {
      if (sent_cb_) sent_cb_(pm->second.meta, sim_.now());
      conn.pending_msgs.erase(pm);
    }
  }
  on_ack(conn, *pkt, rtt);
  kick();
}

}  // namespace ufab::transport

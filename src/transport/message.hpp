// Application-visible message abstraction.
#pragma once

#include <cstdint>
#include <functional>

#include "src/core/ids.hpp"
#include "src/core/time.hpp"

namespace ufab::transport {

/// One application message (the unit of FCT accounting): a byte stream from
/// VM pair.src to pair.dst.
struct Message {
  std::uint64_t id = 0;  ///< Assigned by the stack if zero.
  VmPairId pair;
  TenantId tenant;
  std::int64_t size_bytes = 0;
  TimeNs created_at;
  /// Opaque application correlation tag (request id, task id, ...).
  std::uint64_t user_tag = 0;
};

/// Receiver-side delivery notifications (wired by application models).
class MessageSink {
 public:
  virtual ~MessageSink() = default;
  virtual void on_message_delivered(const Message& msg, TimeNs delivered_at) = 0;
};

}  // namespace ufab::transport

// Shared transport framework.
//
// TransportStack is the per-host engine common to uFAB-E and all baselines:
// connection tracking, packetization, per-packet ACKs with RTT sampling,
// selective-repeat retransmission, receiver-side reassembly, and NIC pull
// scheduling.  Scheme specifics (admission control, probing, path selection,
// scheduling policy) hang off virtual hooks.
//
// Conventions:
//  - A Connection is sender-side state for one directional VM pair.
//  - Data packets carry a source route taken from the connection's current
//    candidate path, or no route at all (ECMP mode for baselines).
//  - ACKs/credits/probe-responses are control packets: they bypass admission
//    and are pushed ahead of data on the NIC.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "src/core/ids.hpp"
#include "src/core/rng.hpp"
#include "src/core/time.hpp"
#include "src/harness/vm_map.hpp"
#include "src/sim/host.hpp"
#include "src/sim/packet.hpp"
#include "src/stats/p2.hpp"
#include "src/stats/percentile.hpp"
#include "src/topo/network.hpp"
#include "src/transport/message.hpp"

namespace ufab::obs {
class Obs;
}  // namespace ufab::obs

namespace ufab::transport {

struct TransportOptions {
  std::int32_t mtu_payload = 1440;  ///< Payload bytes per full data packet.
  /// Retransmission timeout as a multiple of the connection base RTT.
  double rto_rtts = 16.0;
  /// How many candidate underlay paths a connection keeps (uFAB picks a
  /// random subset of all equal-cost paths, §3.5).
  std::size_t candidate_paths = 8;
  /// If false, data carries no source route (plain ECMP forwarding).
  bool source_routing = true;
  /// Route RTT samples into an O(1)-memory streaming estimator instead of
  /// the exact store-everything tracker.  Figure runs keep the exact default;
  /// the soak harness flips this so a week of ACKs cannot grow the stack.
  bool bounded_rtt_stats = false;
};

class TransportStack;

/// Sender-side state for one directional VM pair.
struct Connection {
  virtual ~Connection() = default;

  VmPairId pair;
  TenantId tenant;
  HostId src_host;
  HostId dst_host;
  TimeNs base_rtt;

  // --- send queue ---
  std::deque<Message> sendq;
  std::int64_t cur_offset = 0;       ///< Send offset within sendq.front().
  std::int64_t inflight_bytes = 0;   ///< Wire bytes sent but not acked.
  std::int64_t bytes_sent_total = 0; ///< Payload bytes handed to the wire.

  struct Outstanding {
    std::uint64_t msg_id;
    std::uint64_t user_tag;
    std::int64_t offset;
    std::int32_t wire_bytes;
    std::int32_t payload;
    std::int64_t msg_size;
    TimeNs msg_created;
    TimeNs sent_at;
    bool retransmitted = false;
    bool last = false;
  };
  /// Keyed by the data packet id echoed back in ACKs.
  std::unordered_map<std::uint64_t, Outstanding> outstanding;
  std::deque<Outstanding> rtx_queue;  ///< Timed-out packets awaiting resend.

  /// Sender-side completion bookkeeping per message.
  struct PendingMessage {
    std::int64_t remaining;  ///< Unacked payload bytes.
    Message meta;
  };
  std::unordered_map<std::uint64_t, PendingMessage> pending_msgs;

  // --- paths ---
  std::vector<topo::Path> candidates;
  std::vector<topo::Path> candidate_reverse;
  std::int32_t path_idx = 0;

  // --- measurements ---
  TimeNs last_rtt = TimeNs::zero();
  TimeNs last_activity = TimeNs::zero();

  [[nodiscard]] bool has_backlog() const { return !sendq.empty() || !rtx_queue.empty(); }
  /// Wire size of the next packet this connection would transmit (0 if none).
  [[nodiscard]] std::int32_t next_wire_size(std::int32_t mtu_payload,
                                            std::int32_t header_bytes) const {
    if (!rtx_queue.empty()) return rtx_queue.front().wire_bytes;
    if (sendq.empty()) return 0;
    const std::int64_t rem = sendq.front().size_bytes - cur_offset;
    return static_cast<std::int32_t>(std::min<std::int64_t>(mtu_payload, rem)) + header_bytes;
  }
  [[nodiscard]] std::int64_t queued_bytes() const {
    std::int64_t total = -cur_offset;
    for (const auto& m : sendq) total += m.size_bytes;
    return total;
  }
  [[nodiscard]] const topo::Path& current_path() const {
    return candidates.at(static_cast<std::size_t>(path_idx));
  }
};

class TransportStack : public sim::HostStack {
 public:
  TransportStack(topo::Network& net, const harness::VmMap& vms, HostId host,
                 TransportOptions opts, Rng rng);
  ~TransportStack() override;

  // --- application API ---
  /// Queues a message for transmission; returns its id.
  std::uint64_t send_message(Message msg);
  void set_message_sink(MessageSink* sink) { sink_ = sink; }
  /// Observers invoked for every data packet delivered to this host
  /// (metering, application accounting). Taps stack.
  using RxTap = std::function<void(const sim::Packet&)>;
  void add_rx_tap(RxTap tap) { rx_taps_.push_back(std::move(tap)); }
  /// Sender-side completion callback: all bytes of the message were acked.
  using SentCallback = std::function<void(const Message&, TimeNs acked_at)>;
  void set_sent_callback(SentCallback cb) { sent_cb_ = std::move(cb); }

  // --- sim::HostStack ---
  void on_packet(sim::PacketPtr pkt) final;
  sim::PacketPtr pull() final;

  // --- observability ---
  /// Attaches this stack to a fabric observability context: registers its
  /// per-host metrics and starts recording transport events. Subclasses
  /// override to add scheme-specific metrics (and must call the base).
  virtual void attach_obs(obs::Obs& obs);
  [[nodiscard]] const PercentileTracker& rtt_samples_us() const { return rtt_us_; }
  /// Streaming RTT stats (µs); the live store under `bounded_rtt_stats`.
  [[nodiscard]] const StreamingStats& rtt_stream_us() const { return rtt_stream_us_; }
  /// RTT samples observed, whichever store is active.
  [[nodiscard]] std::uint64_t rtt_sample_count() const {
    return opts_.bounded_rtt_stats ? rtt_stream_us_.count() : rtt_us_.count();
  }
  /// p99 RTT in µs from the active store (0 when no samples yet).
  [[nodiscard]] double rtt_p99_us() const;
  [[nodiscard]] std::int64_t retransmits() const { return retransmits_; }
  [[nodiscard]] Connection* find_connection(VmPairId pair);
  [[nodiscard]] const std::vector<Connection*>& connections() const { return conn_order_; }
  [[nodiscard]] HostId host_id() const { return host_; }

 protected:
  // --- hooks for schemes ---
  /// Allocates scheme-specific connection state.
  virtual std::unique_ptr<Connection> make_connection() {
    return std::make_unique<Connection>();
  }
  /// Called once after base fields are populated.
  virtual void on_connection_created(Connection& conn) { (void)conn; }
  /// Admission: may this connection put one more packet on the wire now?
  virtual bool can_send(const Connection& conn) const {
    (void)conn;
    return true;
  }
  /// For rate-paced schemes: earliest time `conn` may send next (or zero).
  virtual TimeNs earliest_send(const Connection& conn) const {
    (void)conn;
    return TimeNs::zero();
  }
  /// A data (or retransmitted) packet was handed to the NIC.
  virtual void on_data_sent(Connection& conn, const sim::Packet& pkt) {
    (void)conn;
    (void)pkt;
  }
  /// An ACK arrived; `rtt` present unless the sample was retransmit-tainted.
  virtual void on_ack(Connection& conn, const sim::Packet& ack, std::optional<TimeNs> rtt) {
    (void)conn;
    (void)ack;
    (void)rtt;
  }
  /// Non-data, non-ack packets (probes, responses, credits).
  virtual void on_control_packet(sim::PacketPtr pkt) { (void)pkt; }
  /// Data arrived for local delivery (receiver-side scheme accounting).
  virtual void on_data_received(const sim::Packet& pkt) { (void)pkt; }
  /// A connection with pending data went idle->active (new demand).
  virtual void on_demand_arrived(Connection& conn) { (void)conn; }
  /// Re-chooses the connection's path just before a data packet is built
  /// (flowlet selectors override this). Default: keep the current path.
  virtual void select_path(Connection& conn) { (void)conn; }
  /// Scheduler: next connection allowed to send, or nullptr. The default is
  /// round-robin over connections that have backlog and pass can_send().
  virtual Connection* next_sender();

  // --- services for subclasses ---
  [[nodiscard]] topo::Network& network() { return net_; }
  [[nodiscard]] const harness::VmMap& vms() const { return vms_; }
  [[nodiscard]] sim::Simulator& simulator() { return sim_; }
  [[nodiscard]] const sim::Simulator& simulator() const { return sim_; }
  [[nodiscard]] sim::Host& host() { return net_.host(host_); }
  [[nodiscard]] const TransportOptions& options() const { return opts_; }
  [[nodiscard]] Rng& rng() { return rng_; }

  /// Sends a control packet with priority, routed along `route`.
  void send_control_packet(sim::PacketPtr pkt);
  /// Notifies the NIC that new data may be admissible.
  void kick();
  /// Schedules a kick at `t` (deduplicated).
  void kick_at(TimeNs t);
  /// Looks up or creates the connection for `pair` (sender side).
  Connection& connection(VmPairId pair, TenantId tenant);
  /// Re-resolves candidate paths for a connection (after failures).
  void assign_candidate_paths(Connection& conn);

  /// All connections in creation order (subclass scheduling).
  std::vector<Connection*> conn_order_;

  /// Observability context (null when disabled); see attach_obs().
  obs::Obs* obs_ = nullptr;

 private:
  sim::PacketPtr make_data_packet(Connection& conn);
  sim::PacketPtr make_rtx_packet(Connection& conn);
  void handle_data(sim::PacketPtr pkt);
  void handle_ack(sim::PacketPtr pkt);
  void scan_for_timeouts();
  void ensure_rtx_scan();

  topo::Network& net_;
  const harness::VmMap& vms_;
  sim::Simulator& sim_;
  HostId host_;
  TransportOptions opts_;
  Rng rng_;

  std::unordered_map<VmPairId, std::unique_ptr<Connection>> conns_;
  std::size_t rr_cursor_ = 0;

  MessageSink* sink_ = nullptr;
  SentCallback sent_cb_;
  std::vector<RxTap> rx_taps_;

  // Receiver-side reassembly: pair key -> (msg id -> chunk bitmap).
  struct Reassembly {
    Message msg;
    std::int64_t received = 0;
    std::vector<bool> chunks;
  };
  std::unordered_map<std::uint64_t, std::unordered_map<std::uint64_t, Reassembly>> rx_;

  PercentileTracker rtt_us_;       ///< Exact store (default mode only).
  StreamingStats rtt_stream_us_;   ///< O(1) store (`bounded_rtt_stats`).
  std::int64_t retransmits_ = 0;
  std::uint64_t next_msg_id_ = 1;
  bool kick_pending_ = false;
  TimeNs pending_kick_at_ = TimeNs::max();
  bool rtx_scan_scheduled_ = false;
};

}  // namespace ufab::transport

// Exponentially weighted moving average with an explicit warm-up.
#pragma once

namespace ufab {

/// EWMA that returns the first sample verbatim instead of decaying from zero.
class Ewma {
 public:
  /// `alpha` is the weight of a new sample, in (0, 1].
  explicit Ewma(double alpha = 0.125) : alpha_(alpha) {}

  void add(double sample) {
    if (!primed_) {
      value_ = sample;
      primed_ = true;
    } else {
      value_ += alpha_ * (sample - value_);
    }
  }

  [[nodiscard]] double value() const { return value_; }
  [[nodiscard]] bool primed() const { return primed_; }

  void reset() {
    primed_ = false;
    value_ = 0.0;
  }

 private:
  double alpha_;
  double value_ = 0.0;
  bool primed_ = false;
};

}  // namespace ufab

// Which engine shard the current thread is executing for.
//
// The sharded simulator (src/sim/simulator.*) runs one event loop per shard,
// possibly on worker threads.  Lower layers that keep per-thread state — the
// obs flight recorder routes writes into per-shard rings — need the shard
// index without depending on the sim layer, so the thread-local lives here in
// core.  Single-shard runs (and any thread the simulator never touched) read
// shard 0, which reproduces the pre-sharding behavior exactly.
#pragma once

namespace ufab {

inline thread_local int tls_shard_index = 0;

[[nodiscard]] inline int current_shard_index() { return tls_shard_index; }

}  // namespace ufab

#include "src/core/rng.hpp"

#include <cmath>

namespace ufab {

double Rng::exponential(double mean) {
  // Inverse-CDF; clamp the uniform away from 0 to avoid log(0).
  double u = uniform();
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

Rng Rng::fork(std::string_view tag) const {
  // FNV-1a over the tag, mixed with this stream's state so different parents
  // with the same tag produce different children.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : tag) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  std::uint64_t mix = s_[0] ^ (s_[3] + h);
  return Rng{detail::splitmix64(mix)};
}

Rng Rng::fork(std::uint64_t tag) const {
  std::uint64_t mix = s_[0] ^ (s_[3] + tag * 0x9e3779b97f4a7c15ULL);
  return Rng{detail::splitmix64(mix)};
}

}  // namespace ufab

// Precondition / invariant checks that stay on in release builds.
//
// The simulator's correctness depends on invariants (no negative queues, no
// time travel); violating one silently would corrupt an experiment, so checks
// abort with a message instead of being compiled out.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace ufab {

/// Invoked (once) just before a failed check aborts — the observability plane
/// registers a hook here that dumps its flight recorder, so the event history
/// leading up to an invariant violation is preserved on disk.  Thread-local:
/// when bench variants run on worker threads, a failing check dumps the
/// recorder of the fabric running on *that* thread.
using CheckFailureHook = void (*)(const char* expr, const char* file, int line,
                                  const char* msg);
inline CheckFailureHook& check_failure_hook() {
  thread_local CheckFailureHook hook = nullptr;
  return hook;
}
inline void set_check_failure_hook(CheckFailureHook hook) { check_failure_hook() = hook; }

}  // namespace ufab

namespace ufab::detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file, int line,
                                      const char* msg) {
  std::fprintf(stderr, "ufab check failed: %s at %s:%d%s%s\n", expr, file, line,
               msg[0] ? " — " : "", msg);
  if (CheckFailureHook hook = check_failure_hook(); hook != nullptr) {
    check_failure_hook() = nullptr;  // a hook that itself fails must not recurse
    hook(expr, file, line, msg);
  }
  std::abort();
}
}  // namespace ufab::detail

#define UFAB_CHECK(expr)                                                 \
  do {                                                                   \
    if (!(expr)) ::ufab::detail::check_failed(#expr, __FILE__, __LINE__, ""); \
  } while (false)

#define UFAB_CHECK_MSG(expr, msg)                                             \
  do {                                                                        \
    if (!(expr)) ::ufab::detail::check_failed(#expr, __FILE__, __LINE__, msg); \
  } while (false)

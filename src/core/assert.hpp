// Precondition / invariant checks that stay on in release builds.
//
// The simulator's correctness depends on invariants (no negative queues, no
// time travel); violating one silently would corrupt an experiment, so checks
// abort with a message instead of being compiled out.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace ufab::detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file, int line,
                                      const char* msg) {
  std::fprintf(stderr, "ufab check failed: %s at %s:%d%s%s\n", expr, file, line,
               msg[0] ? " — " : "", msg);
  std::abort();
}
}  // namespace ufab::detail

#define UFAB_CHECK(expr)                                                 \
  do {                                                                   \
    if (!(expr)) ::ufab::detail::check_failed(#expr, __FILE__, __LINE__, ""); \
  } while (false)

#define UFAB_CHECK_MSG(expr, msg)                                             \
  do {                                                                        \
    if (!(expr)) ::ufab::detail::check_failed(#expr, __FILE__, __LINE__, msg); \
  } while (false)

// Small-buffer vector for hot-path packet fields.
//
// A `SmallVec<T, N>` stores up to N elements inline (no heap allocation) and
// spills to the heap only beyond that.  Packet routes and probe INT stacks are
// bounded by the path length — at most 5 hops on both the testbed and FatTree
// topologies — so with N sized above that bound the per-packet fast path never
// allocates.  The interface is the subset of std::vector the simulator uses;
// clear() keeps any spilled capacity so pooled packets retain their storage
// across reuse.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "src/core/assert.hpp"

namespace ufab {

template <typename T, std::size_t N>
class SmallVec {
  static_assert(N > 0, "inline capacity must be positive");

 public:
  using value_type = T;

  SmallVec() = default;

  SmallVec(const SmallVec& other) { assign(other.begin(), other.end()); }
  SmallVec(SmallVec&& other) noexcept { move_from(std::move(other)); }

  SmallVec& operator=(const SmallVec& other) {
    if (this != &other) assign(other.begin(), other.end());
    return *this;
  }
  SmallVec& operator=(SmallVec&& other) noexcept {
    if (this != &other) {
      clear();
      move_from(std::move(other));
    }
    return *this;
  }
  /// Assignment from a std::vector (topology paths stay plain vectors).
  SmallVec& operator=(const std::vector<T>& v) {
    assign(v.data(), v.data() + v.size());
    return *this;
  }

  ~SmallVec() { destroy_all(); }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] static constexpr std::size_t inline_capacity() { return N; }

  [[nodiscard]] T* data() { return spilled() ? heap_.data() : inline_data(); }
  [[nodiscard]] const T* data() const { return spilled() ? heap_.data() : inline_data(); }

  [[nodiscard]] T& operator[](std::size_t i) { return data()[i]; }
  [[nodiscard]] const T& operator[](std::size_t i) const { return data()[i]; }

  [[nodiscard]] T& front() { return data()[0]; }
  [[nodiscard]] const T& front() const { return data()[0]; }
  [[nodiscard]] T& back() { return data()[size_ - 1]; }
  [[nodiscard]] const T& back() const { return data()[size_ - 1]; }

  [[nodiscard]] T* begin() { return data(); }
  [[nodiscard]] T* end() { return data() + size_; }
  [[nodiscard]] const T* begin() const { return data(); }
  [[nodiscard]] const T* end() const { return data() + size_; }

  void push_back(const T& v) { emplace_back(v); }
  void push_back(T&& v) { emplace_back(std::move(v)); }

  template <typename... Args>
  T& emplace_back(Args&&... args) {
    if (!spilled()) {
      if (size_ < N) {
        T* slot = inline_data() + size_;
        ::new (static_cast<void*>(slot)) T(std::forward<Args>(args)...);
        ++size_;
        return *slot;
      }
      spill();
    }
    heap_.emplace_back(std::forward<Args>(args)...);
    ++size_;
    return heap_.back();
  }

  void pop_back() {
    UFAB_CHECK(size_ > 0);
    if (spilled()) {
      heap_.pop_back();
    } else {
      inline_data()[size_ - 1].~T();
    }
    --size_;
  }

  /// Removes every element.  Spilled heap capacity is kept so that a pooled
  /// packet that once took a long path never reallocates on reuse.
  void clear() {
    if (spilled()) {
      heap_.clear();  // keeps capacity
    } else {
      for (std::size_t i = 0; i < size_; ++i) inline_data()[i].~T();
    }
    size_ = 0;
  }

  [[nodiscard]] bool operator==(const SmallVec& other) const {
    if (size_ != other.size_) return false;
    for (std::size_t i = 0; i < size_; ++i) {
      if (!((*this)[i] == other[i])) return false;
    }
    return true;
  }

 private:
  void assign(const T* first, const T* last) {
    clear();
    for (const T* p = first; p != last; ++p) emplace_back(*p);
  }

  void move_from(SmallVec&& other) noexcept {
    if (other.spilled()) {
      heap_ = std::move(other.heap_);
      size_ = other.size_;
      // The source's store left with heap_; it must read as empty before any
      // other member call or its inline destructors would run on garbage.
      other.size_ = 0;
      other.heap_.clear();
    } else {
      for (std::size_t i = 0; i < other.size_; ++i) {
        emplace_back(std::move(other.inline_data()[i]));
      }
      other.clear();
    }
  }

  /// Moves the inline elements to the heap; from then on heap_ is the store
  /// (clear() keeps its capacity, so the vec stays in heap mode thereafter).
  void spill() {
    heap_.reserve(N * 2);
    for (std::size_t i = 0; i < size_; ++i) {
      heap_.emplace_back(std::move(inline_data()[i]));
      inline_data()[i].~T();
    }
  }

  [[nodiscard]] bool spilled() const { return !heap_.empty() || heap_.capacity() != 0; }

  void destroy_all() {
    if (!spilled()) {
      for (std::size_t i = 0; i < size_; ++i) inline_data()[i].~T();
    }
    size_ = 0;
  }

  [[nodiscard]] T* inline_data() { return std::launder(reinterpret_cast<T*>(inline_storage_)); }
  [[nodiscard]] const T* inline_data() const {
    return std::launder(reinterpret_cast<const T*>(inline_storage_));
  }

  alignas(T) unsigned char inline_storage_[N * sizeof(T)];
  std::size_t size_ = 0;
  std::vector<T> heap_;  ///< Engaged (non-zero capacity) only after a spill.
};

}  // namespace ufab

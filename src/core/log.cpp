#include "src/core/log.hpp"

#include <atomic>
#include <cctype>
#include <cstdlib>
#include <cstring>

namespace ufab {

namespace {
// The threshold is process-wide and read from every thread once bench
// variants run on workers (harness::ParallelSweep), so it is atomic.  The
// sink and clock are thread-local: each worker's fabric stamps its own log
// lines with its own simulator clock, and one variant's sink never sees
// another variant's lines.
std::atomic<LogLevel> g_threshold{LogLevel::kWarn};
std::atomic<bool> g_env_checked{false};
thread_local LogSink g_sink;
thread_local LogClock g_clock;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}
}  // namespace

LogLevel parse_log_level(const char* name, LogLevel fallback) {
  if (name == nullptr) return fallback;
  std::string lower;
  for (const char* p = name; *p != '\0'; ++p) {
    lower.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(*p))));
  }
  if (lower == "debug") return LogLevel::kDebug;
  if (lower == "info") return LogLevel::kInfo;
  if (lower == "warn" || lower == "warning") return LogLevel::kWarn;
  if (lower == "error") return LogLevel::kError;
  if (lower == "off" || lower == "none") return LogLevel::kOff;
  return fallback;
}

void reload_log_level_from_env() {
  g_env_checked.store(true, std::memory_order_relaxed);
  g_threshold.store(parse_log_level(std::getenv("UFAB_LOG_LEVEL"),
                                    g_threshold.load(std::memory_order_relaxed)),
                    std::memory_order_relaxed);
}

LogLevel log_threshold() {
  if (!g_env_checked.load(std::memory_order_relaxed)) reload_log_level_from_env();
  return g_threshold.load(std::memory_order_relaxed);
}

void set_log_threshold(LogLevel level) {
  g_env_checked.store(true, std::memory_order_relaxed);  // outranks the environment
  g_threshold.store(level, std::memory_order_relaxed);
}

void set_log_sink(LogSink sink) { g_sink = std::move(sink); }

void set_log_clock(LogClock clock) { g_clock = std::move(clock); }

namespace detail {
void log_line(LogLevel level, const std::string& msg) {
  std::string line;
  if (g_clock) {
    line = "[ufab " + std::string(level_name(level)) + " t=" + to_string(g_clock()) + "] " + msg;
  } else {
    line = "[ufab " + std::string(level_name(level)) + "] " + msg;
  }
  if (g_sink) {
    g_sink(level, line);
    return;
  }
  std::fprintf(stderr, "%s\n", line.c_str());
}
}  // namespace detail

}  // namespace ufab

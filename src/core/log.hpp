// Minimal leveled logging.
//
// The simulator is a library, so logging defaults to warnings only; tests and
// benches can raise the level. Messages are plain lines on stderr.
#pragma once

#include <cstdio>
#include <string>
#include <utility>

namespace ufab {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Process-wide log threshold (not thread-safe by design: the simulator is
/// single-threaded and experiments set this once at startup).
LogLevel log_threshold();
void set_log_threshold(LogLevel level);

namespace detail {
void log_line(LogLevel level, const std::string& msg);

template <typename... Args>
std::string format(const char* fmt, Args&&... args) {
  const int n = std::snprintf(nullptr, 0, fmt, std::forward<Args>(args)...);
  if (n <= 0) return {};
  std::string out(static_cast<std::size_t>(n), '\0');
  std::snprintf(out.data(), out.size() + 1, fmt, std::forward<Args>(args)...);
  return out;
}
}  // namespace detail

template <typename... Args>
void log(LogLevel level, const char* fmt, Args&&... args) {
  if (level < log_threshold()) return;
  detail::log_line(level, detail::format(fmt, std::forward<Args>(args)...));
}

#define UFAB_LOG_DEBUG(...) ::ufab::log(::ufab::LogLevel::kDebug, __VA_ARGS__)
#define UFAB_LOG_INFO(...) ::ufab::log(::ufab::LogLevel::kInfo, __VA_ARGS__)
#define UFAB_LOG_WARN(...) ::ufab::log(::ufab::LogLevel::kWarn, __VA_ARGS__)
#define UFAB_LOG_ERROR(...) ::ufab::log(::ufab::LogLevel::kError, __VA_ARGS__)

}  // namespace ufab

// Minimal leveled logging.
//
// The simulator is a library, so logging defaults to warnings only; tests and
// benches can raise the level — either in code or via the UFAB_LOG_LEVEL
// environment variable (debug|info|warn|error|off), read once at first use so
// verbosity changes need no recompile.  Lines go to a pluggable sink (stderr
// by default), and are stamped with simulation time whenever a clock callback
// is registered (the harness registers its simulator's clock).
#pragma once

#include <cstdio>
#include <functional>
#include <string>
#include <utility>

#include "src/core/time.hpp"

namespace ufab {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Process-wide log threshold (atomic: worker threads running parallel bench
/// variants read it concurrently).  The first query seeds the threshold from
/// UFAB_LOG_LEVEL when that is set.
LogLevel log_threshold();
void set_log_threshold(LogLevel level);

/// Parses "debug" / "info" / "warn" / "error" / "off" (case-insensitive);
/// returns `fallback` on anything else.
LogLevel parse_log_level(const char* name, LogLevel fallback);

/// Re-reads UFAB_LOG_LEVEL and applies it (tests; long-lived tools).
void reload_log_level_from_env();

/// Replaces the calling thread's output sink; an empty function restores the
/// stderr default.  Sinks are thread-local so concurrent bench variants
/// (harness::ParallelSweep) never interleave into each other's capture.
using LogSink = std::function<void(LogLevel, const std::string&)>;
void set_log_sink(LogSink sink);

/// Registers a simulation-time source for the calling thread; every
/// subsequent line on this thread is stamped with its value.  An empty
/// function removes the stamp.  Thread-local for the same reason as the sink:
/// each worker's fabric stamps with its own simulator clock.
using LogClock = std::function<TimeNs()>;
void set_log_clock(LogClock clock);

namespace detail {
void log_line(LogLevel level, const std::string& msg);

template <typename... Args>
std::string format(const char* fmt, Args&&... args) {
  const int n = std::snprintf(nullptr, 0, fmt, std::forward<Args>(args)...);
  if (n <= 0) return {};
  std::string out(static_cast<std::size_t>(n), '\0');
  std::snprintf(out.data(), out.size() + 1, fmt, std::forward<Args>(args)...);
  return out;
}
}  // namespace detail

template <typename... Args>
void log(LogLevel level, const char* fmt, Args&&... args) {
  if (level < log_threshold()) return;
  detail::log_line(level, detail::format(fmt, std::forward<Args>(args)...));
}

#define UFAB_LOG_DEBUG(...) ::ufab::log(::ufab::LogLevel::kDebug, __VA_ARGS__)
#define UFAB_LOG_INFO(...) ::ufab::log(::ufab::LogLevel::kInfo, __VA_ARGS__)
#define UFAB_LOG_WARN(...) ::ufab::log(::ufab::LogLevel::kWarn, __VA_ARGS__)
#define UFAB_LOG_ERROR(...) ::ufab::log(::ufab::LogLevel::kError, __VA_ARGS__)

}  // namespace ufab

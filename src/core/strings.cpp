#include <cinttypes>
#include <cstdio>

#include "src/core/time.hpp"
#include "src/core/units.hpp"

namespace ufab {

std::string to_string(TimeNs t) {
  char buf[48];
  const std::int64_t ns = t.ns();
  if (ns < 10'000) {
    std::snprintf(buf, sizeof(buf), "%" PRId64 "ns", ns);
  } else if (ns < 10'000'000) {
    std::snprintf(buf, sizeof(buf), "%.3fus", t.us());
  } else if (ns < 10'000'000'000LL) {
    std::snprintf(buf, sizeof(buf), "%.3fms", t.ms());
  } else {
    std::snprintf(buf, sizeof(buf), "%.3fs", t.sec());
  }
  return buf;
}

std::string to_string(Bandwidth b) {
  char buf[48];
  const double bps = b.bits_per_sec();
  if (bps < 1e6) {
    std::snprintf(buf, sizeof(buf), "%.1fKbps", bps / 1e3);
  } else if (bps < 1e9) {
    std::snprintf(buf, sizeof(buf), "%.1fMbps", bps / 1e6);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2fGbps", bps / 1e9);
  }
  return buf;
}

}  // namespace ufab

// Strong identifier types.
//
// Every entity in the simulated fabric is addressed by a small integer wrapped
// in a distinct type, so a link index can never be passed where a host index
// is expected.
#pragma once

#include <compare>
#include <cstddef>
#include <cstdint>
#include <functional>

namespace ufab {

namespace detail {
/// CRTP base for a 32-bit strong id with an explicit invalid state.
template <typename Tag>
class StrongId {
 public:
  constexpr StrongId() = default;
  constexpr explicit StrongId(std::int32_t v) : v_(v) {}

  [[nodiscard]] constexpr std::int32_t value() const { return v_; }
  [[nodiscard]] constexpr bool valid() const { return v_ >= 0; }
  [[nodiscard]] static constexpr StrongId invalid() { return StrongId{}; }

  constexpr auto operator<=>(const StrongId&) const = default;

 private:
  std::int32_t v_ = -1;
};
}  // namespace detail

using NodeId = detail::StrongId<struct NodeTag>;      ///< Any switch or host.
using HostId = detail::StrongId<struct HostTag>;      ///< Index into the host table.
using LinkId = detail::StrongId<struct LinkTag>;      ///< Unidirectional link index.
using VmId = detail::StrongId<struct VmTag>;          ///< A virtual machine.
using TenantId = detail::StrongId<struct TenantTag>;  ///< A VF / tenant.
using PathId = detail::StrongId<struct PathTag>;      ///< Index into a path set.

/// A directional VM pair a -> b, the unit of guarantee assignment in uFAB.
struct VmPairId {
  VmId src;
  VmId dst;

  constexpr auto operator<=>(const VmPairId&) const = default;

  [[nodiscard]] constexpr bool valid() const { return src.valid() && dst.valid(); }
  /// A stable 64-bit key for hashing (used by switch Bloom filters).
  [[nodiscard]] constexpr std::uint64_t key() const {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src.value())) << 32) |
           static_cast<std::uint32_t>(dst.value());
  }
};

}  // namespace ufab

template <typename Tag>
struct std::hash<ufab::detail::StrongId<Tag>> {
  std::size_t operator()(const ufab::detail::StrongId<Tag>& id) const noexcept {
    return std::hash<std::int32_t>{}(id.value());
  }
};

template <>
struct std::hash<ufab::VmPairId> {
  std::size_t operator()(const ufab::VmPairId& p) const noexcept {
    // SplitMix64 finalizer over the packed key: cheap and well mixed.
    std::uint64_t x = p.key() + 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return static_cast<std::size_t>(x ^ (x >> 31));
  }
};

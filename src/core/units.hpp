// Strong types for bandwidth and data size.
//
// Bandwidth is stored as double bits-per-second.  The conversions between
// (bytes, bandwidth, duration) live here so that every module computes
// serialization delays and rate estimates with the same arithmetic.
#pragma once

#include <cmath>
#include <compare>
#include <cstdint>
#include <string>

#include "src/core/time.hpp"

namespace ufab {

/// Link or flow bandwidth.
class Bandwidth {
 public:
  constexpr Bandwidth() = default;

  [[nodiscard]] static constexpr Bandwidth bps(double v) { return Bandwidth{v}; }
  [[nodiscard]] static constexpr Bandwidth kbps(double v) { return Bandwidth{v * 1e3}; }
  [[nodiscard]] static constexpr Bandwidth mbps(double v) { return Bandwidth{v * 1e6}; }
  [[nodiscard]] static constexpr Bandwidth gbps(double v) { return Bandwidth{v * 1e9}; }
  [[nodiscard]] static constexpr Bandwidth zero() { return Bandwidth{0.0}; }

  [[nodiscard]] constexpr double bits_per_sec() const { return bps_; }
  [[nodiscard]] constexpr double gbit_per_sec() const { return bps_ / 1e9; }
  [[nodiscard]] constexpr double bytes_per_sec() const { return bps_ / 8.0; }
  [[nodiscard]] constexpr double bytes_per_ns() const { return bps_ / 8e9; }

  /// Time to serialize `bytes` at this bandwidth (at least 1 ns for any
  /// non-empty payload so events always make forward progress).
  [[nodiscard]] TimeNs tx_time(std::int64_t bytes) const {
    if (bytes <= 0 || bps_ <= 0.0) return TimeNs::zero();
    const double ns = static_cast<double>(bytes) / bytes_per_ns();
    return TimeNs{std::max<std::int64_t>(1, std::llround(ns))};
  }

  /// Bytes transferred in `d` at this bandwidth.
  [[nodiscard]] double bytes_in(TimeNs d) const {
    return bytes_per_ns() * static_cast<double>(d.ns());
  }

  /// Bandwidth-delay product in bytes.
  [[nodiscard]] double bdp_bytes(TimeNs rtt) const { return bytes_in(rtt); }

  constexpr auto operator<=>(const Bandwidth&) const = default;

  friend constexpr Bandwidth operator+(Bandwidth a, Bandwidth b) {
    return Bandwidth{a.bps_ + b.bps_};
  }
  friend constexpr Bandwidth operator-(Bandwidth a, Bandwidth b) {
    return Bandwidth{a.bps_ - b.bps_};
  }
  friend constexpr Bandwidth operator*(Bandwidth a, double k) { return Bandwidth{a.bps_ * k}; }
  friend constexpr Bandwidth operator*(double k, Bandwidth a) { return Bandwidth{a.bps_ * k}; }
  friend constexpr Bandwidth operator/(Bandwidth a, double k) { return Bandwidth{a.bps_ / k}; }
  friend constexpr double operator/(Bandwidth a, Bandwidth b) { return a.bps_ / b.bps_; }

 private:
  constexpr explicit Bandwidth(double bps) : bps_(bps) {}
  double bps_ = 0.0;
};

namespace unit_literals {
constexpr Bandwidth operator""_Gbps(unsigned long long v) {
  return Bandwidth::gbps(static_cast<double>(v));
}
constexpr Bandwidth operator""_Mbps(unsigned long long v) {
  return Bandwidth::mbps(static_cast<double>(v));
}
constexpr std::int64_t operator""_KB(unsigned long long v) {
  return static_cast<std::int64_t>(v) * 1000;
}
constexpr std::int64_t operator""_KiB(unsigned long long v) {
  return static_cast<std::int64_t>(v) * 1024;
}
constexpr std::int64_t operator""_MB(unsigned long long v) {
  return static_cast<std::int64_t>(v) * 1000 * 1000;
}
}  // namespace unit_literals

std::string to_string(Bandwidth b);

}  // namespace ufab

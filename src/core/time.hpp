// Fixed-point simulation time.
//
// All simulation time in this library is an integer number of nanoseconds
// wrapped in the strong type `TimeNs`.  Integer time keeps event ordering
// exact and reproducible (no floating-point drift across platforms), and one
// nanosecond of resolution is fine enough to represent packet serialization
// on a 100 Gbps link (a 64 B packet takes 5.12 ns) without meaningful
// rounding error.
#pragma once

#include <compare>
#include <cstdint>
#include <limits>
#include <string>

namespace ufab {

/// A point in time or a duration, in integer nanoseconds.
class TimeNs {
 public:
  constexpr TimeNs() = default;
  constexpr explicit TimeNs(std::int64_t ns) : ns_(ns) {}

  [[nodiscard]] constexpr std::int64_t ns() const { return ns_; }
  [[nodiscard]] constexpr double us() const { return static_cast<double>(ns_) / 1e3; }
  [[nodiscard]] constexpr double ms() const { return static_cast<double>(ns_) / 1e6; }
  [[nodiscard]] constexpr double sec() const { return static_cast<double>(ns_) / 1e9; }

  [[nodiscard]] static constexpr TimeNs zero() { return TimeNs{0}; }
  [[nodiscard]] static constexpr TimeNs max() {
    return TimeNs{std::numeric_limits<std::int64_t>::max()};
  }

  constexpr auto operator<=>(const TimeNs&) const = default;

  constexpr TimeNs& operator+=(TimeNs d) {
    ns_ += d.ns_;
    return *this;
  }
  constexpr TimeNs& operator-=(TimeNs d) {
    ns_ -= d.ns_;
    return *this;
  }

  friend constexpr TimeNs operator+(TimeNs a, TimeNs b) { return TimeNs{a.ns_ + b.ns_}; }
  friend constexpr TimeNs operator-(TimeNs a, TimeNs b) { return TimeNs{a.ns_ - b.ns_}; }
  friend constexpr TimeNs operator*(TimeNs a, std::int64_t k) { return TimeNs{a.ns_ * k}; }
  friend constexpr TimeNs operator*(std::int64_t k, TimeNs a) { return TimeNs{a.ns_ * k}; }
  friend constexpr std::int64_t operator/(TimeNs a, TimeNs b) { return a.ns_ / b.ns_; }
  friend constexpr TimeNs operator/(TimeNs a, std::int64_t k) { return TimeNs{a.ns_ / k}; }

  /// Scales a duration by a real factor (used for randomized backoffs).
  [[nodiscard]] constexpr TimeNs scaled(double f) const {
    return TimeNs{static_cast<std::int64_t>(static_cast<double>(ns_) * f)};
  }

 private:
  std::int64_t ns_ = 0;
};

namespace time_literals {
constexpr TimeNs operator""_ns(unsigned long long v) { return TimeNs{static_cast<std::int64_t>(v)}; }
constexpr TimeNs operator""_us(unsigned long long v) {
  return TimeNs{static_cast<std::int64_t>(v) * 1000};
}
constexpr TimeNs operator""_ms(unsigned long long v) {
  return TimeNs{static_cast<std::int64_t>(v) * 1000 * 1000};
}
constexpr TimeNs operator""_s(unsigned long long v) {
  return TimeNs{static_cast<std::int64_t>(v) * 1000 * 1000 * 1000};
}
}  // namespace time_literals

/// Human-readable rendering, e.g. "13.250us" — for logs and traces.
std::string to_string(TimeNs t);

}  // namespace ufab

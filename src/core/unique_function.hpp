// Type-erased move-only `void()` callable with small-buffer optimization.
//
// Like `std::function<void()>` but accepts non-copyable captures, which lets
// simulator events own the objects they deliver (e.g. a packet in flight on a
// link's propagation stage). Ownership matters at shutdown: when
// `run_until(t)` cuts a run with events still pending, their captures are
// destroyed with the event queue instead of leaking.
//
// Captures up to kInlineCaptureBytes are stored in-place; the simulator's
// common closure shapes (a `this` pointer plus a couple of scalars, or an
// owned PacketPtr) then cost no heap allocation per scheduled event.  Larger
// or over-aligned captures fall back to the heap transparently.
//
// Dispatch is by plain function pointers rather than a vtable, because moves
// dominate calls on the event-queue hot path (an event is moved into and out
// of its calendar bucket but called once).  A trivially relocatable capture —
// see is_trivially_relocatable_v below — moves as a fixed-size memcpy of the
// inline buffer with no indirect call at all.
#pragma once

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace ufab {

/// True when T can be moved by copying its bytes and then abandoning the
/// source without running its destructor.  Defaults to trivially-copyable;
/// specialize it for move-only types whose members are all bare
/// pointers/scalars (e.g. the link propagation event that owns a PacketPtr).
template <typename T>
inline constexpr bool is_trivially_relocatable_v = std::is_trivially_copyable_v<T>;

class UniqueFunction {
 public:
  /// Captures at most this large (and at most max_align_t-aligned, nothrow
  /// move constructible) are stored inline.
  static constexpr std::size_t kInlineCaptureBytes = 48;

  UniqueFunction() = default;

  template <typename F,
            typename = std::enable_if_t<!std::is_same_v<std::decay_t<F>, UniqueFunction>>>
  UniqueFunction(F&& fn) {  // NOLINT(google-explicit-constructor): mirrors std::function
    using D = std::decay_t<F>;
    call_ = &invoke_impl<D>;
    if constexpr (fits_inline<D>()) {
      ::new (static_cast<void*>(payload_.bytes)) D(std::forward<F>(fn));
      inline_ = true;
      if constexpr (!std::is_trivially_destructible_v<D>) {
        destroy_ = [](void* obj) noexcept { static_cast<D*>(obj)->~D(); };
      }
      if constexpr (!is_trivially_relocatable_v<D>) {
        relocate_ = [](void* src, void* dst) noexcept {
          D* s = static_cast<D*>(src);
          ::new (dst) D(std::move(*s));
          s->~D();
        };
      }
    } else {
      payload_.heap = new D(std::forward<F>(fn));
      destroy_ = [](void* obj) noexcept { delete static_cast<D*>(obj); };
    }
  }

  UniqueFunction(UniqueFunction&& other) noexcept { steal(other); }

  UniqueFunction& operator=(UniqueFunction&& other) noexcept {
    if (this != &other) {
      destroy();
      steal(other);
    }
    return *this;
  }

  UniqueFunction(const UniqueFunction&) = delete;
  UniqueFunction& operator=(const UniqueFunction&) = delete;

  ~UniqueFunction() { destroy(); }

  void operator()() { call_(obj()); }

  [[nodiscard]] explicit operator bool() const { return call_ != nullptr; }

  /// True when the capture lives in the inline buffer (tests / benchmarks).
  [[nodiscard]] bool is_inline() const { return call_ != nullptr && inline_; }

  /// Whether a callable of type F would be stored inline (compile-time).
  template <typename F>
  [[nodiscard]] static constexpr bool fits_inline() {
    return sizeof(F) <= kInlineCaptureBytes && alignof(F) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<F>;
  }

  /// True when this callable wraps exactly a `D` (after decay).  Dispatch
  /// goes through one `invoke_impl` instantiation per capture type, so the
  /// check is a function-pointer compare — the engine profiler uses it to
  /// classify events (packet delivery vs generic closure) without adding a
  /// tag byte to every event.
  template <typename D>
  [[nodiscard]] bool invokes() const {
    return call_ == &invoke_impl<std::decay_t<D>>;
  }

 private:
  using Call = void (*)(void*);

  template <typename D>
  static void invoke_impl(void* obj) {
    (*static_cast<D*>(obj))();
  }
  using Destroy = void (*)(void*) noexcept;
  using Relocate = void (*)(void* src, void* dst) noexcept;

  /// Inline capture buffer, or the heap pointer for spilled captures.
  union Payload {
    alignas(std::max_align_t) unsigned char bytes[kInlineCaptureBytes];
    void* heap;
  };

  [[nodiscard]] void* obj() { return inline_ ? static_cast<void*>(payload_.bytes) : payload_.heap; }

  void steal(UniqueFunction& other) noexcept {
    call_ = other.call_;
    destroy_ = other.destroy_;
    relocate_ = other.relocate_;
    inline_ = other.inline_;
    if (call_ != nullptr) {
      if (!inline_) {
        payload_.heap = other.payload_.heap;
      } else if (relocate_ != nullptr) {
        relocate_(other.payload_.bytes, payload_.bytes);
      } else {
        // Trivially relocatable: a fixed-size copy the compiler turns into a
        // few wide moves; the source is abandoned, not destroyed.
        std::memcpy(payload_.bytes, other.payload_.bytes, kInlineCaptureBytes);
      }
    }
    other.call_ = nullptr;
    other.destroy_ = nullptr;
    other.relocate_ = nullptr;
    other.inline_ = false;
  }

  void destroy() noexcept {
    if (destroy_ != nullptr) destroy_(obj());
    call_ = nullptr;
    destroy_ = nullptr;
    relocate_ = nullptr;
    inline_ = false;
  }

  Payload payload_;
  Call call_ = nullptr;
  Destroy destroy_ = nullptr;
  Relocate relocate_ = nullptr;
  bool inline_ = false;
};

}  // namespace ufab

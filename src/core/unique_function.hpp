// Type-erased move-only `void()` callable.
//
// Like `std::function<void()>` but accepts non-copyable captures, which lets
// simulator events own the objects they deliver (e.g. a packet in flight on a
// link's propagation stage). Ownership matters at shutdown: when
// `run_until(t)` cuts a run with events still pending, their captures are
// destroyed with the event queue instead of leaking.
#pragma once

#include <memory>
#include <type_traits>
#include <utility>

namespace ufab {

class UniqueFunction {
 public:
  UniqueFunction() = default;

  template <typename F,
            typename = std::enable_if_t<!std::is_same_v<std::decay_t<F>, UniqueFunction>>>
  UniqueFunction(F&& fn)  // NOLINT(google-explicit-constructor): mirrors std::function
      : impl_(std::make_unique<Model<std::decay_t<F>>>(std::forward<F>(fn))) {}

  UniqueFunction(UniqueFunction&&) = default;
  UniqueFunction& operator=(UniqueFunction&&) = default;

  void operator()() { impl_->call(); }

  [[nodiscard]] explicit operator bool() const { return impl_ != nullptr; }

 private:
  struct Concept {
    virtual ~Concept() = default;
    virtual void call() = 0;
  };
  template <typename F>
  struct Model final : Concept {
    explicit Model(F fn) : fn_(std::move(fn)) {}
    void call() override { fn_(); }
    F fn_;
  };

  std::unique_ptr<Concept> impl_;
};

}  // namespace ufab

// Deterministic random number generation.
//
// Experiments must be exactly reproducible: all randomness flows from a
// per-experiment seed through xoshiro256** streams.  `Rng::fork(tag)` derives
// an independent child stream, so adding a consumer never perturbs the draws
// seen by existing consumers.
#pragma once

#include <cstdint>
#include <string_view>

namespace ufab {

namespace detail {
/// SplitMix64: used for seeding and for hashing tags into seeds.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}
}  // namespace detail

/// xoshiro256** 1.0 (Blackman & Vigna), seeded via SplitMix64.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 1) {
    std::uint64_t sm = seed;
    for (auto& w : s_) w = detail::splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() { return static_cast<double>((*this)() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). Precondition: n > 0.
  std::uint64_t below(std::uint64_t n) {
    // Lemire's multiply-shift rejection method: unbiased.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = -n % n;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Exponentially distributed value with the given mean.
  double exponential(double mean);

  /// Derives an independent child stream keyed by `tag`.
  [[nodiscard]] Rng fork(std::string_view tag) const;

  /// Derives an independent child stream keyed by an integer.
  [[nodiscard]] Rng fork(std::uint64_t tag) const;

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4] = {};
};

}  // namespace ufab

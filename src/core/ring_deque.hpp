// A growable circular FIFO with deque semantics and vector storage.
//
// std::deque pays a block allocation every few dozen pushes and frees it
// again as the front drains — measurable allocator traffic when a deque
// holds per-packet state (Link keeps one rate checkpoint per transmitted
// packet, ~1e8 per large bench).  RingDeque keeps one contiguous buffer and
// a head index: steady-state push_back/pop_front touch no allocator at all,
// and the capacity sticks at the high-water mark like a vector's.
//
// Only what the hot paths need: push_back, pop_front, front/back, indexed
// access from the front.  Elements must be movable; capacity grows by
// doubling (power of two, so the wrap is a mask).
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "src/core/assert.hpp"

namespace ufab {

template <typename T>
class RingDeque {
 public:
  [[nodiscard]] bool empty() const { return count_ == 0; }
  [[nodiscard]] std::size_t size() const { return count_; }

  /// i = 0 is the front (oldest element).
  [[nodiscard]] const T& operator[](std::size_t i) const {
    UFAB_CHECK(i < count_);
    return buf_[(head_ + i) & (buf_.size() - 1)];
  }
  [[nodiscard]] T& operator[](std::size_t i) {
    UFAB_CHECK(i < count_);
    return buf_[(head_ + i) & (buf_.size() - 1)];
  }
  [[nodiscard]] const T& front() const { return (*this)[0]; }
  [[nodiscard]] T& front() { return (*this)[0]; }
  [[nodiscard]] const T& back() const { return (*this)[count_ - 1]; }

  void push_back(T v) {
    if (count_ == buf_.size()) grow();
    buf_[(head_ + count_) & (buf_.size() - 1)] = std::move(v);
    ++count_;
  }

  void pop_front() {
    UFAB_CHECK(count_ > 0);
    buf_[head_] = T{};  // release any resources held by the slot
    head_ = (head_ + 1) & (buf_.size() - 1);
    --count_;
  }

  void pop_back() {
    UFAB_CHECK(count_ > 0);
    buf_[(head_ + count_ - 1) & (buf_.size() - 1)] = T{};
    --count_;
  }

  void clear() {
    for (std::size_t i = 0; i < count_; ++i) {
      buf_[(head_ + i) & (buf_.size() - 1)] = T{};
    }
    head_ = 0;
    count_ = 0;
  }

 private:
  void grow() {
    const std::size_t new_cap = buf_.empty() ? kInitialCapacity : buf_.size() * 2;
    std::vector<T> next(new_cap);
    for (std::size_t i = 0; i < count_; ++i) {
      next[i] = std::move(buf_[(head_ + i) & (buf_.size() - 1)]);
    }
    buf_ = std::move(next);
    head_ = 0;
  }

  static constexpr std::size_t kInitialCapacity = 16;

  std::vector<T> buf_;  ///< Capacity is always zero or a power of two.
  std::size_t head_ = 0;
  std::size_t count_ = 0;
};

}  // namespace ufab

// Unidirectional link with an egress FIFO.
//
// A Link models one egress: a tail-drop FIFO, a serializer running at the
// link capacity, and the propagation delay to the peer node.  Switch egresses
// use the push queue; host NICs additionally register a pull source so the
// host's packet scheduler is consulted exactly when the wire goes idle (this
// is how the hierarchical WFQ of uFAB-E is enforced without a second queue).
//
// The link also owns the state the informative core reads: cumulative TX
// bytes (for sender-side rate differentiation, as in HPCC), a short-window
// rate estimate, instantaneous queue depth, and ECN marking.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>

#include "src/core/ids.hpp"
#include "src/core/ring_deque.hpp"
#include "src/core/time.hpp"
#include "src/core/units.hpp"
#include "src/sim/packet.hpp"
#include "src/sim/simulator.hpp"

namespace ufab::obs {
class Obs;
enum class DropReason : std::uint8_t;
}  // namespace ufab::obs

namespace ufab::sim {

class Node;

struct LinkConfig {
  Bandwidth capacity = Bandwidth::gbps(10);
  TimeNs prop_delay = TimeNs{1000};
  std::int64_t queue_limit_bytes = 2'000'000;
  /// ECN marking threshold on enqueue; <0 disables marking.
  std::int64_t ecn_threshold_bytes = -1;
  /// Target utilization eta: the "target capacity" C_l = eta * capacity that
  /// uFAB converges to (95% in the paper, leaving headroom for bursts).
  double target_utilization = 0.95;
};

class Link {
 public:
  /// Returns the next packet to transmit, or nullptr if nothing is ready.
  using PullSource = std::function<PacketPtr()>;

  Link(Simulator& sim, LinkId id, std::string name, Node* dst, LinkConfig cfg);

  /// Push-path entry (switch egress / host control packets). May tail-drop.
  void enqueue(PacketPtr pkt);

  /// Registers a pull source consulted when the queue is empty and the wire
  /// is idle (host NIC mode).
  void set_source(PullSource source) { source_ = std::move(source); }

  /// Re-evaluates transmission; call after the pull source gains work.
  void kick();

  /// Administratively disables the link (failure injection); queued and
  /// in-flight packets are dropped, future packets are dropped on arrival.
  /// Re-enabling takes effect immediately: the serializer is freed and any
  /// stale completion event is neutralized, so a rapid down->up flap does
  /// not leave the link wedged until the old event fires.
  void set_down(bool down);
  [[nodiscard]] bool down() const { return down_; }

  /// Wire-loss fault hook (fault injection): consulted when a packet finishes
  /// serializing; returning true discards it instead of delivering (the
  /// packet still consumed link time, like corruption on the wire).
  using FaultFilter = std::function<bool(const Packet&)>;
  void set_fault_filter(FaultFilter filter) { fault_filter_ = std::move(filter); }
  [[nodiscard]] std::int64_t fault_drops() const { return fault_drops_; }

  // --- telemetry / observability ---
  [[nodiscard]] LinkId id() const { return id_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] Bandwidth capacity() const { return cfg_.capacity; }
  [[nodiscard]] Bandwidth target_capacity() const {
    return cfg_.capacity * cfg_.target_utilization;
  }
  [[nodiscard]] TimeNs prop_delay() const { return cfg_.prop_delay; }
  [[nodiscard]] std::int64_t queue_limit_bytes() const { return cfg_.queue_limit_bytes; }
  [[nodiscard]] std::int64_t queue_bytes() const { return queue_bytes_; }
  [[nodiscard]] std::int64_t max_queue_bytes() const { return max_queue_bytes_; }
  [[nodiscard]] std::int64_t tx_bytes_cum() const { return tx_bytes_cum_; }
  [[nodiscard]] std::int64_t drops() const { return drops_; }
  [[nodiscard]] Node* peer() const { return dst_; }

  /// Bytes-over-window rate estimate from departure checkpoints.
  [[nodiscard]] Bandwidth tx_rate(TimeNs window = TimeNs{10'000}) const;

  void reset_max_queue() { max_queue_bytes_ = queue_bytes_; }

  /// Attaches the observability context (null detaches). Passive: recording
  /// never changes queueing or timing.
  void set_obs(obs::Obs* obs) { obs_ = obs; }

  /// Marks this link as a shard-cut link: delivered packets are posted to
  /// `shard`'s mailbox instead of scheduled locally (sharded engine only;
  /// -1 restores local delivery).  Set by Fabric::configure_sharding.
  void set_cross_shard_dst(int shard) { cross_shard_dst_ = shard; }
  [[nodiscard]] int cross_shard_dst() const { return cross_shard_dst_; }

 private:
  void start_next();
  void finish_transmit(std::int32_t bytes, std::uint64_t epoch);
  void record_drop(const Packet& pkt, obs::DropReason reason);

  Simulator& sim_;
  LinkId id_;
  std::string name_;
  Node* dst_;
  LinkConfig cfg_;

  RingDeque<PacketPtr> queue_;
  std::int64_t queue_bytes_ = 0;
  std::int64_t max_queue_bytes_ = 0;
  bool busy_ = false;
  bool down_ = false;
  PacketPtr in_flight_;  // the packet currently being serialized
  /// Bumped when an in-flight serialization is aborted (set_down); the
  /// completion event compares its captured epoch and becomes a no-op.
  std::uint64_t epoch_ = 0;
  PullSource source_;
  FaultFilter fault_filter_;
  obs::Obs* obs_ = nullptr;
  int cross_shard_dst_ = -1;  ///< Destination shard when this link is cut.

  std::int64_t tx_bytes_cum_ = 0;
  std::int64_t drops_ = 0;
  std::int64_t fault_drops_ = 0;

  /// (time, cumulative bytes) checkpoints for windowed rate estimation.
  /// One per transmitted packet, trimmed to the rate window: a RingDeque so
  /// the steady-state push/trim cycle never touches the allocator (std::deque
  /// allocates a block every few dozen pushes on this per-packet path).
  RingDeque<std::pair<TimeNs, std::int64_t>> checkpoints_;
};

}  // namespace ufab::sim

// Unidirectional link with an egress FIFO.
//
// A Link models one egress: a tail-drop FIFO, a serializer running at the
// link capacity, and the propagation delay to the peer node.  Switch egresses
// use the push queue; host NICs additionally register a pull source so the
// host's packet scheduler is consulted exactly when the wire goes idle (this
// is how the hierarchical WFQ of uFAB-E is enforced without a second queue).
//
// The link also owns the state the informative core reads: cumulative TX
// bytes (for sender-side rate differentiation, as in HPCC), a short-window
// rate estimate, instantaneous queue depth, and ECN marking.
//
// Two serializer implementations share that contract (DESIGN.md §13):
//
//  * Legacy two-event path: every packet hop schedules a serializer-end
//    closure plus a DeliverEvent one propagation delay later.  Default-mode
//    runs, pull-source (host NIC) links, links with wire-loss fault filters,
//    and links pinned by the fault plane use it.
//
//  * Fused pipeline (canonical mode, push links): the link keeps an in-order
//    FIFO of in-flight packets (`pipe_`) and the calendar holds only the
//    *head* departure — one resident event per busy link instead of one per
//    packet.  Serialization milestones become virtual: each pipe entry
//    carries the raw (h, k) ordering key its legacy serializer-end event
//    would have used, and bookkeeping (cumulative TX, rate checkpoints,
//    queue accounting) replays lazily, exactly when the engine's key_fired()
//    predicate says the legacy event would already have run.  Delivery
//    events reuse the byte-identical legacy keys, so schedules, telemetry,
//    and shard handoffs are indistinguishable from the two-event engine.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>

#include "src/core/ids.hpp"
#include "src/core/ring_deque.hpp"
#include "src/core/time.hpp"
#include "src/core/units.hpp"
#include "src/sim/node.hpp"
#include "src/sim/packet.hpp"
#include "src/sim/simulator.hpp"

namespace ufab::obs {
class Obs;
enum class DropReason : std::uint8_t;
}  // namespace ufab::obs

namespace ufab::sim {

struct LinkConfig {
  Bandwidth capacity = Bandwidth::gbps(10);
  TimeNs prop_delay = TimeNs{1000};
  std::int64_t queue_limit_bytes = 2'000'000;
  /// ECN marking threshold on enqueue; <0 disables marking.
  std::int64_t ecn_threshold_bytes = -1;
  /// Target utilization eta: the "target capacity" C_l = eta * capacity that
  /// uFAB converges to (95% in the paper, leaving headroom for bursts).
  double target_utilization = 0.95;
};

class Link {
 public:
  /// Returns the next packet to transmit, or nullptr if nothing is ready.
  using PullSource = std::function<PacketPtr()>;

  Link(Simulator& sim, LinkId id, std::string name, Node* dst, LinkConfig cfg);

  /// Push-path entry (switch egress / host control packets). May tail-drop.
  void enqueue(PacketPtr pkt);

  /// Registers a pull source consulted when the queue is empty and the wire
  /// is idle (host NIC mode).  Pull links always use the legacy serializer
  /// (the source callback must run exactly when the wire goes idle).
  void set_source(PullSource source) {
    UFAB_CHECK_MSG(pipe_.empty(), "set_source on a link with fused traffic");
    source_ = std::move(source);
  }

  /// Re-evaluates transmission; call after the pull source gains work.
  void kick();

  /// Administratively disables the link (failure injection); queued and
  /// in-flight packets are dropped, future packets are dropped on arrival.
  /// Re-enabling takes effect immediately: the serializer is freed and any
  /// stale completion event is neutralized, so a rapid down->up flap does
  /// not leave the link wedged until the old event fires.
  void set_down(bool down);
  [[nodiscard]] bool down() const { return down_; }

  using FaultFilter = std::function<bool(const Packet&)>;

  /// Wire-loss fault hook (fault injection): consulted when a packet finishes
  /// serializing; returning true discards it instead of delivering (the
  /// packet still consumed link time, like corruption on the wire).  A
  /// filtered link uses the legacy serializer: the filter's RNG draws must
  /// happen at wire-exit time in event order.
  void set_fault_filter(FaultFilter filter) {
    UFAB_CHECK_MSG(pipe_.empty(), "set_fault_filter on a link with fused traffic");
    fault_filter_ = std::move(filter);
  }
  [[nodiscard]] std::int64_t fault_drops() const { return fault_drops_; }

  /// Pins this link to the legacy two-event serializer.  The fault plane
  /// pins every link it will flap: a fused *cut* link posts its cross-shard
  /// crossing at commit time, which cannot be recalled by a later
  /// set_down — and the pin must be partition-invariant (the fault schedule
  /// is), so event counts stay byte-identical across shard counts.
  void pin_legacy() {
    UFAB_CHECK_MSG(pipe_.empty(), "pin_legacy on a link with fused traffic");
    pinned_legacy_ = true;
  }
  [[nodiscard]] bool pinned_legacy() const { return pinned_legacy_; }

  // --- telemetry / observability ---
  [[nodiscard]] LinkId id() const { return id_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] Bandwidth capacity() const { return cfg_.capacity; }
  [[nodiscard]] Bandwidth target_capacity() const {
    return cfg_.capacity * cfg_.target_utilization;
  }
  [[nodiscard]] TimeNs prop_delay() const { return cfg_.prop_delay; }
  [[nodiscard]] std::int64_t queue_limit_bytes() const { return cfg_.queue_limit_bytes; }
  [[nodiscard]] std::int64_t queue_bytes() const {
    advance();
    return queue_bytes_;
  }
  [[nodiscard]] std::int64_t max_queue_bytes() const { return max_queue_bytes_; }
  [[nodiscard]] std::int64_t tx_bytes_cum() const {
    advance();
    return tx_bytes_cum_;
  }
  [[nodiscard]] std::int64_t drops() const { return drops_; }
  [[nodiscard]] Node* peer() const { return dst_; }

  /// Bytes-over-window rate estimate from departure checkpoints.
  [[nodiscard]] Bandwidth tx_rate(TimeNs window = TimeNs{10'000}) const;

  void reset_max_queue() {
    advance();
    max_queue_bytes_ = queue_bytes_;
  }

  /// In-flight packets on the fused pipeline (0 on the legacy path) — the
  /// calendar holds at most one event for all of them (tests).
  [[nodiscard]] std::size_t pipe_depth() const { return pipe_.size(); }

  /// Attaches the observability context (null detaches). Passive: recording
  /// never changes queueing or timing.
  void set_obs(obs::Obs* obs) { obs_ = obs; }

  /// Marks this link as a shard-cut link: delivered packets are posted to
  /// `shard`'s mailbox instead of scheduled locally (sharded engine only;
  /// -1 restores local delivery).  Set by Fabric::configure_sharding.
  void set_cross_shard_dst(int shard) {
    UFAB_CHECK_MSG(pipe_.empty(), "set_cross_shard_dst on a link with fused traffic");
    cross_shard_dst_ = shard;
  }
  [[nodiscard]] int cross_shard_dst() const { return cross_shard_dst_; }

 private:
  friend struct FusedLinkDeliver;

  /// One in-flight packet on the fused pipeline.  `ser_end` plus the raw
  /// (h, k) key name the *virtual* serializer-end event this entry replaces;
  /// `in_queue` tracks whether the packet still counts toward queue_bytes_
  /// (cleared when its predecessor finishes serializing, exactly when legacy
  /// start_next would have popped it).  `pkt` is null on cut links — the
  /// packet traveled with the eagerly posted crossing.
  struct PipeEntry {
    PacketPtr pkt;
    std::int32_t bytes = 0;
    bool in_queue = false;
    TimeNs ser_end = TimeNs::zero();
    std::uint64_t h = 0;
    std::uint32_t k = 0;
  };

  [[nodiscard]] bool use_fused() const {
    return !pinned_legacy_ && !source_ && !fault_filter_ && cfg_.prop_delay.ns() > 0 &&
           sim_.canonical_order() && sim_.fused_links();
  }

  /// Tail-drop / ECN admission against the current queue_bytes_; shared by
  /// both serializer paths so the formulas can never drift apart.  Returns
  /// false when the packet was dropped.
  bool admit(Packet& pkt);
  void enqueue_fused(PacketPtr pkt);
  /// Replays every virtual serializer-end milestone the legacy engine would
  /// already have run, in order, each at its own timestamp.  Lazy and
  /// idempotent; called before every read or commit of serializer state.
  void advance() const;
  void fire_head(std::uint64_t epoch);
  void check_pipe_order() const;  ///< Debug-only FIFO invariant sweep.

  void start_next();
  void finish_transmit(std::int32_t bytes, std::uint64_t epoch);
  void record_drop(const Packet& pkt, obs::DropReason reason);

  Simulator& sim_;
  LinkId id_;
  std::string name_;
  Node* dst_;
  LinkConfig cfg_;

  RingDeque<PacketPtr> queue_;
  /// Fused pipeline of in-flight packets, in serialization order; the first
  /// `mat_` entries' serializer-end milestones have been replayed.  Mutable
  /// (with the bookkeeping below) because replay happens lazily from const
  /// telemetry reads.
  mutable RingDeque<PipeEntry> pipe_;
  mutable std::size_t mat_ = 0;
  mutable std::int64_t queue_bytes_ = 0;
  std::int64_t max_queue_bytes_ = 0;
  bool busy_ = false;
  bool down_ = false;
  bool pinned_legacy_ = false;
  PacketPtr in_flight_;  // the packet currently being serialized (legacy path)
  /// Bumped when an in-flight serialization is aborted (set_down); the
  /// completion event — legacy serializer-end or fused head departure —
  /// compares its captured epoch and becomes a no-op.
  std::uint64_t epoch_ = 0;
  /// The shard whose execution frontier decides which virtual milestones
  /// have fired; captured at the first fused commit.
  Simulator::ShardHandle home_ = nullptr;
  PullSource source_;
  FaultFilter fault_filter_;
  obs::Obs* obs_ = nullptr;
  int cross_shard_dst_ = -1;  ///< Destination shard when this link is cut.

  mutable std::int64_t tx_bytes_cum_ = 0;
  std::int64_t drops_ = 0;
  std::int64_t fault_drops_ = 0;

  /// (time, cumulative bytes) checkpoints for windowed rate estimation.
  /// One per transmitted packet, trimmed to the rate window: a RingDeque so
  /// the steady-state push/trim cycle never touches the allocator (std::deque
  /// allocates a block every few dozen pushes on this per-packet path).
  mutable RingDeque<std::pair<TimeNs, std::int64_t>> checkpoints_;
};

}  // namespace ufab::sim

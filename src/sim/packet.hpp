// Packet model.
//
// One struct covers every packet kind on the simulated wire: tenant data,
// per-packet ACKs, uFAB probes / responses / finish probes, and the credit
// messages used by receiver-driven baselines.  Probes accumulate an INT stack
// (one IntRecord per traversed switch egress), mirroring the wire format of
// Appendix G.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "src/core/ids.hpp"
#include "src/core/small_vec.hpp"
#include "src/core/time.hpp"
#include "src/core/units.hpp"
#include "src/sim/packet_pool.hpp"

namespace ufab::sim {

enum class PacketKind : std::uint8_t {
  kData,           ///< Tenant payload.
  kAck,            ///< Per-packet acknowledgment (also carries ECN echo).
  kProbe,          ///< uFAB-E probe carrying (phi, w); collects INT.
  kProbeResponse,  ///< Destination's echo of the INT stack + receiver token.
  kFinishProbe,    ///< Explicit VM-pair deregistration along a path.
  kCredit,         ///< Receiver-driven rate advertisement (PicNIC'/EyeQ).
};

[[nodiscard]] const char* to_string(PacketKind kind);

/// Telemetry written by one uFAB-C egress into a probe (one per hop).
struct IntRecord {
  LinkId link;                      ///< Which egress link this snapshot describes.
  double phi_total = 0.0;           ///< Φ_l: total active tokens on the link.
  /// W_l: total claimed admission, reported by uFAB-E as window/baseRTT
  /// (bytes per second) so the aggregate is RTT-neutral.
  double window_total = 0.0;
  std::int64_t tx_bytes_cum = 0;    ///< Cumulative bytes transmitted (for rate diff).
  TimeNs stamp;                     ///< Switch-local time of the snapshot.
  Bandwidth tx_rate_hint;           ///< Switch's own short-window rate estimate.
  std::int64_t queue_bytes = 0;     ///< q_l at probe processing time.
  Bandwidth capacity;               ///< Physical C_l (target = eta * capacity).
};

/// Fields specific to probes, responses, and finish probes (section 3.6).
struct ProbeFields {
  double phi = 0.0;           ///< Pair token currently claimed by the sender.
  double phi_prev = 0.0;      ///< Token value last registered at switches.
  double window = 0.0;        ///< Pair window (bytes) currently claimed.
  double window_prev = 0.0;   ///< Window last registered at switches.
  double phi_receiver = 0.0;  ///< Receiver-admitted token (set in the response).
  std::uint64_t seq = 0;      ///< Per-(pair, path) probe sequence number.
  std::uint64_t reg_key = 0;  ///< Switch registration key: hash of (pair, path).
  std::int32_t finish_acks = 0;  ///< Switches that confirmed deregistration.
  /// Scout probes carry zero tokens/window: they gather INT from candidate
  /// paths during migration without distorting the path's subscription.
  bool scout = false;
};

struct Packet;

/// Destroying a PacketPtr recycles pooled packets instead of freeing them.
struct PacketDeleter {
  void operator()(Packet* p) const;
};
using PacketPtr = std::unique_ptr<Packet, PacketDeleter>;

/// Inline capacities sized for the deepest supported path (FatTree: 5 switch
/// hops host-to-host), so routes and INT stacks never touch the heap.
inline constexpr std::size_t kInlineRouteHops = 8;
inline constexpr std::size_t kInlineIntRecords = 6;

using RouteVec = SmallVec<std::int32_t, kInlineRouteHops>;
using IntStack = SmallVec<IntRecord, kInlineIntRecords>;

struct Packet {
  PacketKind kind = PacketKind::kData;
  std::uint64_t id = 0;  ///< Globally unique, for tracing.
  VmPairId pair;
  TenantId tenant;
  std::uint64_t message_id = 0;
  std::int32_t size_bytes = 0;  ///< Wire size (headers included).

  HostId src_host;
  HostId dst_host;

  /// Source route: egress port index at the i-th switch on the path. Empty
  /// means "use the switch ECMP tables" (baseline mode / motivation studies).
  RouteVec route;
  std::int32_t hop = 0;
  PathId path_tag;  ///< Sender-side path index, echoed back in ACKs/responses.
  /// Source route for the matching reverse-direction packet (ACK/response),
  /// so feedback returns along the same physical links.
  RouteVec reverse_route;

  // --- data / ack ---
  std::int64_t seq = 0;        ///< First payload byte offset within the message.
  std::int32_t payload = 0;    ///< Payload bytes carried / acknowledged.
  std::int64_t message_size = 0;        ///< Total message bytes (for reassembly).
  std::uint64_t acked_packet_id = 0;    ///< In ACKs: id of the data packet acked.
  TimeNs msg_created;                   ///< Message creation time (FCT accounting).
  std::uint64_t user_tag = 0;           ///< Application correlation tag.
  bool last_of_message = false;
  TimeNs sent_at;              ///< Sender timestamp (echoed in ACKs for RTT).
  bool ecn_capable = true;
  bool ecn_ce = false;    ///< Congestion Experienced mark set by a switch.
  bool ecn_echo = false;  ///< CE echoed back to the sender (in ACKs).

  // --- credit (receiver-driven baselines) ---
  Bandwidth credit_rate;  ///< Advertised sending rate.

  // --- probe family ---
  ProbeFields probe;
  IntStack telemetry;

  /// The pool this packet recycles into on destruction (null: plain heap).
  PacketPool* origin_pool = nullptr;

  /// Makes a packet on the plain heap (tests, setup paths).  Hot paths use
  /// PacketPool::make via their simulator so storage is recycled.
  [[nodiscard]] static PacketPtr make(PacketKind kind, VmPairId pair, TenantId tenant,
                                      HostId src, HostId dst, std::int32_t size_bytes);

  /// Returns every field to its freshly-constructed state, keeping any
  /// route/telemetry storage capacity.  Must cover *all* fields: a pooled
  /// packet's next life must not observe this one (see packet_pool_test).
  void reset_for_reuse();
};

/// Pooled variant of Packet::make: recycled storage, per-pool packet ids.
[[nodiscard]] PacketPtr make_packet(PacketPool& pool, PacketKind kind, VmPairId pair,
                                    TenantId tenant, HostId src, HostId dst,
                                    std::int32_t size_bytes);

/// Wire-size constants (documented against Appendix G).
inline constexpr std::int32_t kMtuBytes = 1500;
inline constexpr std::int32_t kDataHeaderBytes = 58;   ///< Eth+IP+UDP+SR.
inline constexpr std::int32_t kAckBytes = 64;
inline constexpr std::int32_t kProbeBaseBytes = 64;    ///< Headers + probe fields.
inline constexpr std::int32_t kIntRecordBytes = 8;     ///< Per-hop INT payload.
inline constexpr std::int32_t kCreditBytes = 64;

/// Probe wire size grows with the INT stack, as on real hardware.
[[nodiscard]] inline std::int32_t probe_wire_size(std::int32_t hops) {
  return kProbeBaseBytes + kIntRecordBytes * hops;
}

}  // namespace ufab::sim

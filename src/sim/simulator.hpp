// The discrete-event engine.
//
// A future-event list per shard: events are (time, h, k, closure) tuples
// ordered by time with deterministic tie-breaking, which makes runs exactly
// reproducible for a fixed seed.
//
// Each shard's list is a two-tier bucketed calendar queue rather than one
// global binary heap.  Near-horizon events (within ~0.5 ms of `now`) land in
// a ring of 512 ns time buckets; far-horizon events go to an overflow tier
// and migrate into the ring as the clock approaches them.  Each bucket keeps
// its events in an append-only slot vector (reset whenever the bucket drains,
// which at 512 ns a bucket is constantly) and orders them through a small
// heap of (time, h, k, slot) keys — sifts compare and move 24-byte keys
// without touching the events themselves, and a closure is moved exactly once
// in (into its slot) and once out (when it fires).
//
// Ordering comes in two modes, distinguished only by how (h, k) is stamped —
// the comparator and the queues are identical:
//
//  * Default (single shard, no configure_shards): h is a global scheduling
//    sequence number and k is 0, so the pop order is exactly the (time, seq)
//    total order of the old priority_queue — FIFO tie-break included — and
//    results are byte-identical to the pre-sharding engine (proven by
//    tests/sim/calendar_queue_test.cpp).
//
//  * Canonical (configure_shards was called, any shard count >= 1): h is a
//    mixed 64-bit identity of the *scheduling parent* (the event whose
//    closure called at()/after(), or a fixed root id for setup code) and k
//    counts that parent's children in order.  The key no longer depends on
//    global scheduling interleavings — only on the causal tree, which is the
//    same no matter how events are distributed across shards — so a 4-shard
//    run fires events in exactly the order a 1-shard canonical run does.
//    Within one parent, ties keep FIFO order (k increments); across parents
//    at the same instant, the mixed identity is the arbiter.  (A 64-bit hash
//    collision between two distinct parents scheduling at the same
//    nanosecond would fall through to the slot index; at fig17 scale the
//    probability is ~1e-10 per run and any such run would still be
//    deterministic, just not provably shard-count-invariant.)
//
// Sharded execution (configure_shards(n > 1)) is conservative parallel DES:
// shards run epochs of length `lookahead` (the min propagation delay over
// cut links) in lockstep — each shard processes its own calendar up to the
// epoch boundary, cross-shard packets are posted to per-shard outboxes, and
// the coordinator drains the outboxes between epochs in (src shard, post
// order) order, cloning each packet into the destination shard's pool.
// Because a crossing materializes at wire-exit and arrives one full
// propagation delay later, no crossing can land inside the epoch that
// produced it, so each shard's pass needs no peeking at its neighbors.  The
// epoch machinery lives in simulator.cpp; the serial hot paths stay inline
// here.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/core/assert.hpp"
#include "src/core/shard_context.hpp"
#include "src/core/time.hpp"
#include "src/core/unique_function.hpp"
#include "src/obs/profiler.hpp"
#include "src/sim/packet.hpp"
#include "src/sim/packet_pool.hpp"
#include "src/sim/shard_sync.hpp"

namespace ufab::sim {

class Node;

/// How a multi-shard configuration executes its epochs.
enum class ShardExec : std::uint8_t {
  kAuto,        ///< Worker threads when the host has >1 CPU, else sequential.
  kThreads,     ///< One persistent worker thread per non-coordinator shard.
  kSequential,  ///< Coordinator runs every shard's pass in index order.
};

class Simulator {
 public:
  Simulator() { shards_.push_back(std::make_unique<Shard>(0)); }
  ~Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  [[nodiscard]] TimeNs now() const { return active().now; }

  /// Schedules `fn` at absolute time `t` (>= now) on the active shard. The
  /// closure may be move-only, so events can own what they deliver (packets
  /// in flight).
  void at(TimeNs t, UniqueFunction fn) {
    Shard& s = active();
    UFAB_CHECK_MSG(t >= s.now, "scheduling into the past");
    std::uint64_t h;
    std::uint32_t k;
    if (!canonical_) {
      h = s.next_seq++;
      k = 0;
    } else if (s.in_event) {
      h = s.cur_id;
      k = s.cur_k++;
    } else {
      // Setup/root context: all shards share one root identity and one FIFO
      // counter, so setup code keeps registration order across shards.
      h = kRootIdentity;
      k = root_k_++;
    }
    push(s, t, h, k, std::move(fn));
  }

  /// Schedules `fn` after `delay` from now.
  void after(TimeNs delay, UniqueFunction fn) { at(now() + delay, std::move(fn)); }

  /// Runs until every event list (and outbox) drains.
  void run() {
    if (shards_.size() == 1) {
      Shard& s = *shards_.front();
      if (prof_ != nullptr) {
        run_serial_profiled(s, TimeNs::max());
        return;
      }
      while (peek(s) != nullptr) pop_and_run(s);
    } else {
      run_sharded_drain();
    }
  }

  /// Runs all events with time <= `t`, then sets now to `t`.
  void run_until(TimeNs t) {
    if (shards_.size() == 1) {
      Shard& s = *shards_.front();
      if (prof_ != nullptr) {
        run_serial_profiled(s, t);
      } else {
        while (true) {
          const Event* ev = peek(s);
          if (ev == nullptr || ev->at > t) break;
          pop_and_run(s);
        }
      }
      if (t > s.now) s.now = t;
    } else {
      run_until_sharded(t);
    }
  }

  [[nodiscard]] std::uint64_t events_processed() const {
    std::uint64_t total = 0;
    for (const auto& s : shards_) total += s->processed;
    return total;
  }
  [[nodiscard]] std::size_t pending() const {
    std::size_t total = 0;
    for (const auto& s : shards_) {
      total += s->ring_size + s->overflow.heap.size() + s->outbox.size();
    }
    return total;
  }

  /// The active shard's packet freelist: packets made through it are recycled
  /// on delivery/drop instead of freed (see PacketPool).  Declared before the
  /// event tiers so pending events' packets are destroyed first on teardown.
  [[nodiscard]] PacketPool& packet_pool() { return active().pool; }

  // --- sharding ---

  /// Switches the engine to canonical ordering with `shards` event loops
  /// synchronized in epochs of `lookahead` (the min prop delay over
  /// cut links; TimeNs::max() when no link is cut).  Must be called before
  /// any event is scheduled.  `shards == 1` still switches ordering to
  /// canonical mode — that is how a 1-shard run produces the same schedule
  /// as a 4-shard run of the same experiment.
  void configure_shards(int shards, TimeNs lookahead, ShardExec exec = ShardExec::kAuto);

  [[nodiscard]] int shard_count() const { return static_cast<int>(shards_.size()); }
  [[nodiscard]] bool canonical_order() const { return canonical_; }
  [[nodiscard]] TimeNs lookahead() const { return lookahead_; }

  /// Forces sequential (single-thread) epoch execution.  Sequential epochs
  /// fire the exact same schedule as threaded ones, so this is a safety
  /// valve, not a semantic switch: callbacks that touch cross-shard state
  /// (queue sampling across all links, the fault plane) call it during
  /// setup.  Must happen before the first run.  `reason` labels who demanded
  /// it — recorded (deduplicated) for the `sim.forced_sequential` gauge and
  /// logged once per reason when a multi-shard run is being downgraded, so a
  /// silently single-threaded soak is visible instead of mysterious.
  void require_sequential(const char* reason = "unspecified");

  /// Distinct reasons passed to require_sequential(), in first-call order.
  [[nodiscard]] const std::vector<std::string>& sequential_reasons() const {
    return sequential_reasons_;
  }

  /// True once a multi-shard run has started with worker threads.
  [[nodiscard]] bool threaded() const { return exec_started_ && exec_threads_; }

  /// RAII guard homing scheduling calls onto one shard: while alive, at() /
  /// after() / packet_pool() on this thread resolve to `shard`.  Setup code
  /// uses it to place per-host/per-switch work on the owning shard.
  class [[nodiscard]] ShardScope {
   public:
    ~ShardScope() {
      tls_ = prev_;
      ufab::tls_shard_index = prev_index_;
    }
    ShardScope(const ShardScope&) = delete;
    ShardScope& operator=(const ShardScope&) = delete;

   private:
    friend class Simulator;
    ShardScope(Simulator* sim, int shard) : prev_(tls_), prev_index_(ufab::tls_shard_index) {
      tls_ = Active{sim, sim->shards_[static_cast<std::size_t>(shard)].get()};
      ufab::tls_shard_index = shard;
    }
    struct Active {
      Simulator* sim;
      void* shard;
    };
    Active prev_;
    int prev_index_;
  };

  [[nodiscard]] ShardScope scoped(int shard) {
    UFAB_CHECK(shard >= 0 && shard < shard_count());
    return ShardScope(this, shard);
  }

  /// Posts a packet crossing a cut link into `dst_shard`'s calendar: the
  /// delivery fires at absolute time `at` with the same ordering key the
  /// event would have had as a local after() call, so the merged schedule is
  /// independent of the partition.  Only valid in canonical mode from inside
  /// a running event.
  void post_cross(int dst_shard, TimeNs at, Node* dst, PacketPtr pkt) {
    UFAB_PROF_SCOPE(obs::ProfCat::kMailboxPost);
    Shard& s = active();
    UFAB_CHECK(canonical_ && s.in_event);
    UFAB_CHECK(dst_shard >= 0 && dst_shard < shard_count());
    s.outbox.post(Crossing{at, s.cur_id, s.cur_k++, dst_shard, dst, std::move(pkt)});
  }

  // --- per-shard introspection (obs gauges, tests) ---
  [[nodiscard]] std::uint64_t shard_events_processed(int shard) const {
    return shard_at(shard).processed;
  }
  [[nodiscard]] std::uint64_t shard_crossings_out(int shard) const {
    return shard_at(shard).outbox.posted_total();
  }
  [[nodiscard]] std::int64_t shard_barrier_wait_ns(int shard) const {
    return shard_at(shard).barrier_wait_ns;
  }
  [[nodiscard]] std::uint64_t shard_outbox_drains(int shard) const {
    return shard_at(shard).outbox.drains();
  }
  [[nodiscard]] std::size_t shard_outbox_max_batch(int shard) const {
    return shard_at(shard).outbox.max_drain_batch();
  }
  [[nodiscard]] const PacketPool& shard_pool(int shard) const { return shard_at(shard).pool; }

  // --- engine self-profiling (see src/obs/profiler.hpp) ---

  /// Attaches the profiling plane.  Must happen before the first run; from
  /// then on the run loops take their profiled variants (identical schedule,
  /// plus wall-clock attribution).  Passive by construction: profiling never
  /// schedules events or consumes randomness, so results are byte-identical
  /// to an unprofiled run (tests/obs/profiler_test.cpp).
  void enable_profiling(obs::ProfOptions opts = {});

  /// The attached profiler, or nullptr when profiling is disabled.
  [[nodiscard]] obs::Profiler* profiler() { return prof_.get(); }
  [[nodiscard]] const obs::Profiler* profiler() const { return prof_.get(); }

  /// The per-run profile artifact (ufab-profile-v1 JSON): run context plus
  /// the shard x scope time matrix.  Empty string when profiling is off.
  [[nodiscard]] std::string profile_json() const;

  /// The canonical identity an event gets from parent identity `h` and child
  /// index `k` (splitmix64-style finalizer).  Exposed so tests can mirror
  /// the engine's tie-break order in a reference queue.
  [[nodiscard]] static std::uint64_t event_identity(std::uint64_t h, std::uint32_t k) {
    std::uint64_t x = h + 0x9E3779B97F4A7C15ull * (static_cast<std::uint64_t>(k) + 1);
    x ^= x >> 30;
    x *= 0xBF58476D1CE4E5B9ull;
    x ^= x >> 27;
    x *= 0x94D049BB133111EBull;
    x ^= x >> 31;
    return x;
  }

 private:
  struct Event {
    TimeNs at;
    std::uint64_t h;
    std::uint32_t k;
    UniqueFunction fn;
  };

  /// Bucket-heap key: the event's full order key plus its slot index, so
  /// sifting compares and moves these 24-byte entries only and never touches
  /// the (much larger) events.
  struct HeapEntry {
    std::int64_t at;
    std::uint64_t h;
    std::uint32_t k;
    std::uint32_t idx;
  };

  /// One calendar bucket: `heap` is a binary min-heap of HeapEntry keys over
  /// the events stored in `slots`.  For ring buckets, slots are append-only
  /// while the bucket has pending events and the vector resets (keeping
  /// capacity) every time the bucket drains; at 512 ns per bucket that
  /// happens constantly, so `slots` stays small and a steady-state bucket
  /// allocates nothing.  The overflow tier instead recycles dead slots
  /// through `free_idx` (see bucket_push<kRecycle>): recurring timers can
  /// keep its heap non-empty for an entire run, so without reuse the slot
  /// vector would grow with every far-scheduled event.  Recycling costs a
  /// branch per push/pop, which measured slower on the ring hot path —
  /// hence the compile-time split.
  struct Bucket {
    std::vector<Event> slots;
    std::vector<HeapEntry> heap;
    std::vector<std::uint32_t> free_idx;  ///< Overflow tier only: dead slots.
    [[nodiscard]] bool empty() const { return heap.empty(); }
  };

  /// One cross-shard packet handoff, carrying the exact ordering key the
  /// delivery event will use in the destination calendar.
  struct Crossing {
    TimeNs at;
    std::uint64_t h;
    std::uint32_t k;
    int dst_shard;
    Node* dst;
    PacketPtr pkt;
  };

  static constexpr int kBucketShift = 9;  ///< 512 ns per bucket.
  static constexpr std::uint64_t kNumBuckets = 1024;  ///< ~0.5 ms near horizon.
  static constexpr int kMaxShards = 64;
  /// Identity of the implicit root event (setup code outside any event).
  static constexpr std::uint64_t kRootIdentity = 0x52EEDF00DDEADB01ull;

  /// One event loop: its own clock, calendar, packet pool, and outbox.  The
  /// pool is declared first so the event tiers (whose pending closures own
  /// packets) are destroyed while the pool is still alive.
  struct Shard {
    explicit Shard(int idx) : index(idx), ring(kNumBuckets) {}

    int index;
    PacketPool pool;
    TimeNs now = TimeNs::zero();
    std::uint64_t next_seq = 0;  ///< Default-mode FIFO sequence.
    std::uint64_t processed = 0;
    std::vector<Bucket> ring;
    std::size_t ring_size = 0;
    std::uint64_t cursor = 0;     ///< No ring events live in buckets before this.
    bool peeked_overflow = false;  ///< Tier of the last peek() result.
    Bucket overflow;

    // Canonical-mode scheduling context (the currently executing event).
    std::uint64_t cur_id = 0;
    std::uint32_t cur_k = 0;
    bool in_event = false;

    // Cross-shard machinery.
    ShardMailbox<Crossing> outbox;
    std::int64_t barrier_wait_ns = 0;  ///< Worker idle time at epoch barriers.
  };

  [[nodiscard]] static std::uint64_t abs_bucket(TimeNs t) {
    return static_cast<std::uint64_t>(t.ns()) >> kBucketShift;
  }

  /// Heap predicate for std::push_heap/std::pop_heap (max-heap semantics):
  /// "a sorts after b", so the heap top is the earliest (time, h, k).  A
  /// functor type, not a function: passing a function pointer would make
  /// every sift comparison an indirect call (measured at >1e9 calls per
  /// fig17 run), while a stateless functor inlines into the sift loops.
  struct Later {
    [[nodiscard]] bool operator()(const HeapEntry& a, const HeapEntry& b) const {
      if (a.at != b.at) return a.at > b.at;
      if (a.h != b.h) return a.h > b.h;
      if (a.k != b.k) return a.k > b.k;
      return a.idx > b.idx;
    }
  };

  template <bool kRecycle>
  static void bucket_push(Bucket& b, TimeNs t, std::uint64_t h, std::uint32_t k,
                          UniqueFunction&& fn) {
    auto idx = static_cast<std::uint32_t>(b.slots.size());
    if constexpr (kRecycle) {
      if (!b.free_idx.empty()) {
        idx = b.free_idx.back();
        b.free_idx.pop_back();
        b.slots[idx] = Event{t, h, k, std::move(fn)};
      } else {
        b.slots.emplace_back(t, h, k, std::move(fn));
      }
    } else {
      b.slots.emplace_back(t, h, k, std::move(fn));
    }
    b.heap.push_back(HeapEntry{t.ns(), h, k, idx});
    std::push_heap(b.heap.begin(), b.heap.end(), Later{});
  }

  template <bool kRecycle>
  static Event bucket_pop(Bucket& b) {
    std::pop_heap(b.heap.begin(), b.heap.end(), Later{});
    const std::uint32_t idx = b.heap.back().idx;
    Event ev = std::move(b.slots[idx]);
    b.heap.pop_back();
    if (b.heap.empty()) {
      b.slots.clear();  // keeps capacity
      if constexpr (kRecycle) b.free_idx.clear();
    } else if constexpr (kRecycle) {
      b.free_idx.push_back(idx);
    }
    return ev;
  }

  static void ring_push(Shard& s, std::uint64_t ab, TimeNs t, std::uint64_t h, std::uint32_t k,
                        UniqueFunction&& fn) {
    bucket_push<false>(s.ring[ab & (kNumBuckets - 1)], t, h, k, std::move(fn));
    ++s.ring_size;
    if (ab < s.cursor) s.cursor = ab;
  }

  static void push(Shard& s, TimeNs t, std::uint64_t h, std::uint32_t k, UniqueFunction&& fn) {
    const std::uint64_t ab = abs_bucket(t);
    if (ab >= abs_bucket(s.now) + kNumBuckets) {
      bucket_push<true>(s.overflow, t, h, k, std::move(fn));
    } else {
      ring_push(s, ab, t, h, k, std::move(fn));
    }
  }

  /// Pulls overflow events that now fall inside the near-horizon window into
  /// the ring.  Overflow is ordered, so this stops at the first far event.
  static void migrate_overflow(Shard& s) {
    if (s.overflow.empty()) return;  // the common case: nothing far-scheduled
    const std::uint64_t window_end = abs_bucket(s.now) + kNumBuckets;
    while (!s.overflow.empty()) {
      const HeapEntry& top = s.overflow.heap.front();
      const std::uint64_t ab = abs_bucket(TimeNs{top.at});
      if (ab >= window_end) break;
      Event ev = bucket_pop<true>(s.overflow);
      ring_push(s, ab, ev.at, ev.h, ev.k, std::move(ev.fn));
    }
  }

  /// The earliest pending event, or nullptr.  Advances the bucket cursor past
  /// empty buckets; `peeked_overflow` records which tier holds the result.
  [[nodiscard]] static const Event* peek(Shard& s) {
    migrate_overflow(s);
    if (s.ring_size > 0) {
      // Ring events are all within the window, so every index maps to one
      // absolute bucket and scanning at most kNumBuckets finds the earliest.
      if (s.cursor < abs_bucket(s.now)) s.cursor = abs_bucket(s.now);
      while (s.ring[s.cursor & (kNumBuckets - 1)].empty()) ++s.cursor;
      s.peeked_overflow = false;
      const Bucket& b = s.ring[s.cursor & (kNumBuckets - 1)];
      return &b.slots[b.heap.front().idx];
    }
    if (!s.overflow.empty()) {
      // Every within-window event has migrated, so the overflow top — which
      // lies beyond the window — is the global earliest.
      s.peeked_overflow = true;
      return &s.overflow.slots[s.overflow.heap.front().idx];
    }
    return nullptr;
  }

  /// Pops the event `peek()` just located and runs it.
  void pop_and_run(Shard& s) {
    Event ev = s.peeked_overflow ? bucket_pop<true>(s.overflow)
                                 : bucket_pop<false>(s.ring[s.cursor & (kNumBuckets - 1)]);
    if (!s.peeked_overflow) --s.ring_size;
    s.now = ev.at;
    ++s.processed;
    if (canonical_) {
      s.cur_id = event_identity(ev.h, ev.k);
      s.cur_k = 0;
      s.in_event = true;
      ev.fn();
      s.in_event = false;
    } else {
      ev.fn();
    }
  }

  /// The shard this thread's scheduling calls resolve to: the scoped/worker
  /// shard when one is set for *this* simulator, else shard 0 (setup code,
  /// tests, foreign threads).
  [[nodiscard]] Shard& active() {
    const ShardScope::Active a = tls_;
    return a.sim == this ? *static_cast<Shard*>(a.shard) : *shards_.front();
  }
  [[nodiscard]] const Shard& active() const {
    const ShardScope::Active a = tls_;
    return a.sim == this ? *static_cast<const Shard*>(a.shard) : *shards_.front();
  }
  [[nodiscard]] const Shard& shard_at(int i) const {
    return *shards_.at(static_cast<std::size_t>(i));
  }

  // --- sharded execution (simulator.cpp) ---
  void run_until_sharded(TimeNs t);
  void run_sharded_drain();
  void ensure_exec_started();
  void run_pass(TimeNs boundary, bool inclusive);
  void shard_pass(Shard& s, TimeNs boundary, bool inclusive);
  [[nodiscard]] TimeNs earliest_pending();
  void set_clocks(TimeNs t);
  [[nodiscard]] bool inject_crossings(TimeNs le_mark);
  [[nodiscard]] bool outboxes_empty() const;
  void worker_main(int shard_index);

  // --- profiled run loops (simulator.cpp; same schedule, plus attribution) ---
  void run_serial_profiled(Shard& s, TimeNs bound);
  void shard_pass_profiled(Shard& s, TimeNs boundary, bool inclusive);
  void pop_and_run_profiled(Shard& s, obs::ProfSlice& sl);

  inline static thread_local ShardScope::Active tls_{nullptr, nullptr};

  std::vector<std::unique_ptr<Shard>> shards_;
  bool canonical_ = false;
  TimeNs lookahead_ = TimeNs::max();
  std::uint32_t root_k_ = 0;  ///< FIFO counter for root-context scheduling.

  ShardExec exec_request_ = ShardExec::kAuto;
  bool sequential_only_ = false;
  std::vector<std::string> sequential_reasons_;  ///< Deduplicated, first-call order.
  bool exec_started_ = false;
  bool exec_threads_ = false;
  std::unique_ptr<EpochBarrier> barrier_;
  std::vector<std::thread> workers_;
  TimeNs pass_boundary_ = TimeNs::zero();
  bool pass_inclusive_ = false;
  std::uint64_t pass_gen_ = 0;
  std::vector<Crossing> inject_scratch_;
  std::unique_ptr<obs::Profiler> prof_;  ///< Null = profiling disabled.
};

}  // namespace ufab::sim

// The discrete-event engine.
//
// A single-threaded future-event list: events are (time, sequence, closure)
// triples ordered by time with FIFO tie-breaking, which makes runs exactly
// reproducible for a fixed seed.
//
// The list is a two-tier bucketed calendar queue rather than one global
// binary heap.  Near-horizon events (within ~0.5 ms of `now`) land in a ring
// of 512 ns time buckets; far-horizon events go to an overflow tier and
// migrate into the ring as the clock approaches them.  Each bucket keeps its
// events in an append-only slot vector (reset whenever the bucket drains,
// which at 512 ns a bucket is constantly) and orders them through a small
// heap of (time, seq, slot) keys — sifts compare and
// move 24-byte keys without touching the events themselves, and a closure is
// moved exactly once in (into its slot) and once out (when it fires).  The
// pop order is exactly
// the (time, seq) total order of the old priority_queue — FIFO tie-break
// included — so results and `events_processed()` are byte-identical for a
// fixed seed (proven by tests/sim/calendar_queue_test.cpp).
#pragma once

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "src/core/assert.hpp"
#include "src/core/time.hpp"
#include "src/core/unique_function.hpp"
#include "src/sim/packet_pool.hpp"

namespace ufab::sim {

class Simulator {
 public:
  Simulator() : ring_(kNumBuckets) {}
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  [[nodiscard]] TimeNs now() const { return now_; }

  /// Schedules `fn` at absolute time `t` (>= now). The closure may be
  /// move-only, so events can own what they deliver (packets in flight).
  void at(TimeNs t, UniqueFunction fn) {
    UFAB_CHECK_MSG(t >= now_, "scheduling into the past");
    const std::uint64_t ab = abs_bucket(t);
    const std::uint64_t seq = next_seq_++;
    if (ab >= abs_bucket(now_) + kNumBuckets) {
      bucket_push<true>(overflow_, t, seq, std::move(fn));
    } else {
      ring_push(ab, t, seq, std::move(fn));
    }
  }

  /// Schedules `fn` after `delay` from now.
  void after(TimeNs delay, UniqueFunction fn) { at(now_ + delay, std::move(fn)); }

  /// Runs until the event list drains.
  void run() {
    while (peek() != nullptr) pop_and_run();
  }

  /// Runs all events with time <= `t`, then sets now to `t`.
  void run_until(TimeNs t) {
    while (true) {
      const Event* ev = peek();
      if (ev == nullptr || ev->at > t) break;
      pop_and_run();
    }
    if (t > now_) now_ = t;
  }

  [[nodiscard]] std::uint64_t events_processed() const { return processed_; }
  [[nodiscard]] std::size_t pending() const { return ring_size_ + overflow_.heap.size(); }

  /// The simulator's packet freelist: packets made through it are recycled on
  /// delivery/drop instead of freed (see PacketPool).  Declared before the
  /// event tiers so pending events' packets are destroyed first on teardown.
  [[nodiscard]] PacketPool& packet_pool() { return pool_; }

 private:
  struct Event {
    TimeNs at;
    std::uint64_t seq;
    UniqueFunction fn;
  };

  /// Bucket-heap key: the event's full order key plus its slot index, so
  /// sifting compares and moves these 24-byte entries only and never touches
  /// the (much larger) events.
  struct HeapEntry {
    std::int64_t at;
    std::uint64_t seq;
    std::uint32_t idx;
  };

  /// One calendar bucket: `heap` is a binary min-heap of HeapEntry keys over
  /// the events stored in `slots`.  For ring buckets, slots are append-only
  /// while the bucket has pending events and the vector resets (keeping
  /// capacity) every time the bucket drains; at 512 ns per bucket that
  /// happens constantly, so `slots` stays small and a steady-state bucket
  /// allocates nothing.  The overflow tier instead recycles dead slots
  /// through `free_idx` (see bucket_push<kRecycle>): recurring timers can
  /// keep its heap non-empty for an entire run, so without reuse the slot
  /// vector would grow with every far-scheduled event.  Recycling costs a
  /// branch per push/pop, which measured slower on the ring hot path —
  /// hence the compile-time split.
  struct Bucket {
    std::vector<Event> slots;
    std::vector<HeapEntry> heap;
    std::vector<std::uint32_t> free_idx;  ///< Overflow tier only: dead slots.
    [[nodiscard]] bool empty() const { return heap.empty(); }
  };

  static constexpr int kBucketShift = 9;  ///< 512 ns per bucket.
  static constexpr std::uint64_t kNumBuckets = 1024;  ///< ~0.5 ms near horizon.

  [[nodiscard]] static std::uint64_t abs_bucket(TimeNs t) {
    return static_cast<std::uint64_t>(t.ns()) >> kBucketShift;
  }

  /// Heap predicate for std::push_heap/std::pop_heap (max-heap semantics):
  /// "a sorts after b", so the heap top is the earliest (time, seq).  A
  /// functor type, not a function: passing a function pointer would make
  /// every sift comparison an indirect call (measured at >1e9 calls per
  /// fig17 run), while a stateless functor inlines into the sift loops.
  struct Later {
    [[nodiscard]] bool operator()(const HeapEntry& a, const HeapEntry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  template <bool kRecycle>
  static void bucket_push(Bucket& b, TimeNs t, std::uint64_t seq, UniqueFunction&& fn) {
    auto idx = static_cast<std::uint32_t>(b.slots.size());
    if constexpr (kRecycle) {
      if (!b.free_idx.empty()) {
        idx = b.free_idx.back();
        b.free_idx.pop_back();
        b.slots[idx] = Event{t, seq, std::move(fn)};
      } else {
        b.slots.emplace_back(t, seq, std::move(fn));
      }
    } else {
      b.slots.emplace_back(t, seq, std::move(fn));
    }
    b.heap.push_back(HeapEntry{t.ns(), seq, idx});
    std::push_heap(b.heap.begin(), b.heap.end(), Later{});
  }

  template <bool kRecycle>
  static Event bucket_pop(Bucket& b) {
    std::pop_heap(b.heap.begin(), b.heap.end(), Later{});
    const std::uint32_t idx = b.heap.back().idx;
    Event ev = std::move(b.slots[idx]);
    b.heap.pop_back();
    if (b.heap.empty()) {
      b.slots.clear();  // keeps capacity
      if constexpr (kRecycle) b.free_idx.clear();
    } else if constexpr (kRecycle) {
      b.free_idx.push_back(idx);
    }
    return ev;
  }

  void ring_push(std::uint64_t ab, TimeNs t, std::uint64_t seq, UniqueFunction&& fn) {
    bucket_push<false>(ring_[ab & (kNumBuckets - 1)], t, seq, std::move(fn));
    ++ring_size_;
    if (ab < cursor_) cursor_ = ab;
  }

  /// Pulls overflow events that now fall inside the near-horizon window into
  /// the ring.  Overflow is ordered, so this stops at the first far event.
  void migrate_overflow() {
    if (overflow_.empty()) return;  // the common case: nothing far-scheduled
    const std::uint64_t window_end = abs_bucket(now_) + kNumBuckets;
    while (!overflow_.empty()) {
      const HeapEntry& top = overflow_.heap.front();
      const std::uint64_t ab = abs_bucket(TimeNs{top.at});
      if (ab >= window_end) break;
      Event ev = bucket_pop<true>(overflow_);
      ring_push(ab, ev.at, ev.seq, std::move(ev.fn));
    }
  }

  /// The earliest pending event, or nullptr.  Advances the bucket cursor past
  /// empty buckets; `peeked_overflow_` records which tier holds the result.
  [[nodiscard]] const Event* peek() {
    migrate_overflow();
    if (ring_size_ > 0) {
      // Ring events are all within the window, so every index maps to one
      // absolute bucket and scanning at most kNumBuckets finds the earliest.
      if (cursor_ < abs_bucket(now_)) cursor_ = abs_bucket(now_);
      while (ring_[cursor_ & (kNumBuckets - 1)].empty()) ++cursor_;
      peeked_overflow_ = false;
      const Bucket& b = ring_[cursor_ & (kNumBuckets - 1)];
      return &b.slots[b.heap.front().idx];
    }
    if (!overflow_.empty()) {
      // Every within-window event has migrated, so the overflow top — which
      // lies beyond the window — is the global earliest.
      peeked_overflow_ = true;
      return &overflow_.slots[overflow_.heap.front().idx];
    }
    return nullptr;
  }

  /// Pops the event `peek()` just located and runs it.
  void pop_and_run() {
    Event ev = peeked_overflow_ ? bucket_pop<true>(overflow_)
                                : bucket_pop<false>(ring_[cursor_ & (kNumBuckets - 1)]);
    if (!peeked_overflow_) --ring_size_;
    now_ = ev.at;
    ++processed_;
    ev.fn();
  }

  PacketPool pool_;
  TimeNs now_ = TimeNs::zero();
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
  std::vector<Bucket> ring_;
  std::size_t ring_size_ = 0;
  std::uint64_t cursor_ = 0;       ///< No ring events live in buckets before this.
  bool peeked_overflow_ = false;   ///< Tier of the last peek() result.
  Bucket overflow_;
};

}  // namespace ufab::sim

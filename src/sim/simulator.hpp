// The discrete-event engine.
//
// A future-event list per shard: events are (time, h, k, closure) tuples
// ordered by time with deterministic tie-breaking, which makes runs exactly
// reproducible for a fixed seed.
//
// Each shard's list is a two-tier bucketed calendar queue rather than one
// global binary heap.  Near-horizon events (within ~0.5 ms of `now`) land in
// a ring of 512 ns time buckets; far-horizon events go to an overflow tier
// and migrate into the ring as the clock approaches them.  Each bucket keeps
// its events in an append-only slot vector (reset whenever the bucket drains,
// which at 512 ns a bucket is constantly) and orders them through a small
// heap of (time, h, k, slot) keys — sifts compare and move 24-byte keys
// without touching the events themselves, and a closure is moved exactly once
// in (into its slot) and once out (when it fires).
//
// Ordering comes in two modes, distinguished only by how (h, k) is stamped —
// the comparator and the queues are identical:
//
//  * Default (single shard, no configure_shards): h is a global scheduling
//    sequence number and k is 0, so the pop order is exactly the (time, seq)
//    total order of the old priority_queue — FIFO tie-break included — and
//    results are byte-identical to the pre-sharding engine (proven by
//    tests/sim/calendar_queue_test.cpp).
//
//  * Canonical (configure_shards was called, any shard count >= 1): h is a
//    mixed 64-bit identity of the *scheduling parent* (the event whose
//    closure called at()/after(), or a fixed root id for setup code) and k
//    counts that parent's children in order.  The key no longer depends on
//    global scheduling interleavings — only on the causal tree, which is the
//    same no matter how events are distributed across shards — so a 4-shard
//    run fires events in exactly the order a 1-shard canonical run does.
//    Within one parent, ties keep FIFO order (k increments); across parents
//    at the same instant, the mixed identity is the arbiter.  (A 64-bit hash
//    collision between two distinct parents scheduling at the same
//    nanosecond would fall through to the slot index; at fig17 scale the
//    probability is ~1e-10 per run and any such run would still be
//    deterministic, just not provably shard-count-invariant.)
//
// Sharded execution (configure_shards(n > 1)) is conservative parallel DES:
// shards advance through lookahead windows (the min propagation delay over
// cut links) in lockstep.  Because a crossing materializes at wire-exit and
// arrives one full propagation delay later, no crossing can land inside the
// window that produced it, so a shard processing events strictly before a
// window boundary never misses a remote event.  Cross-shard packets are
// posted into per-(src,dst) SPSC mailboxes (batched publication, see
// shard_sync.hpp) and *travel*: the destination shard takes ownership of the
// packet itself — no clone — and a later release on a foreign shard routes
// back to the owner pool through a return mailbox (PacketPool's foreign
// guard).  An *epoch* (one coordinator barrier) spans many windows: inside a
// pass each shard self-synchronizes at window boundaries through published
// per-shard clocks (flush mailboxes, publish clock, spin until peers reach
// the boundary, drain incoming — DESIGN.md §12), which amortizes the ~µs
// condvar barrier over UFAB_EPOCH_WINDOWS windows of ~100 ns clock spins.
// When only one shard has pending events the coordinator skips barriers
// entirely and runs it solo with a stride of that shard's *outgoing* cut
// lookahead, routing crossings itself until another shard wakes.  The epoch
// machinery lives in simulator.cpp; the serial hot paths stay inline here.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/core/assert.hpp"
#include "src/core/shard_context.hpp"
#include "src/core/time.hpp"
#include "src/core/unique_function.hpp"
#include "src/obs/profiler.hpp"
#include "src/sim/packet.hpp"
#include "src/sim/packet_pool.hpp"
#include "src/sim/shard_sync.hpp"

namespace ufab::sim {

class Node;

/// How a multi-shard configuration executes its epochs.
enum class ShardExec : std::uint8_t {
  kAuto,        ///< Worker threads when the host has >1 CPU, else sequential.
  kThreads,     ///< One persistent worker thread per non-coordinator shard.
  kSequential,  ///< Coordinator runs every shard's pass in index order.
};

class Simulator {
 public:
  Simulator() {
    shards_.push_back(std::make_unique<Shard>(0));
    if (const char* v = std::getenv("UFAB_FUSED_LINKS"); v != nullptr && v[0] == '0') {
      fused_links_ = false;
    }
  }
  ~Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  [[nodiscard]] TimeNs now() const { return active().now; }

  /// Schedules `fn` at absolute time `t` (>= now) on the active shard. The
  /// closure may be move-only, so events can own what they deliver (packets
  /// in flight).
  void at(TimeNs t, UniqueFunction fn) {
    Shard& s = active();
    UFAB_CHECK_MSG(t >= s.now, "scheduling into the past");
    std::uint64_t h;
    std::uint32_t k;
    if (!canonical_) {
      h = s.next_seq++;
      k = 0;
    } else if (s.in_event) {
      h = s.cur_id;
      k = s.cur_k++;
    } else {
      // Setup/root context: all shards share one root identity and one FIFO
      // counter, so setup code keeps registration order across shards.
      h = kRootIdentity;
      k = root_k_++;
    }
    push(s, t, h, k, std::move(fn));
  }

  /// Schedules `fn` after `delay` from now.
  void after(TimeNs delay, UniqueFunction fn) { at(now() + delay, std::move(fn)); }

  /// Runs until every event list (and outbox) drains.
  void run() {
    if (shards_.size() == 1) {
      Shard& s = *shards_.front();
      if (prof_ != nullptr) {
        run_serial_profiled(s, TimeNs::max());
        return;
      }
      while (peek(s) != nullptr) pop_and_run(s);
    } else {
      run_sharded_drain();
    }
  }

  /// Runs all events with time <= `t`, then sets now to `t`.
  void run_until(TimeNs t) {
    if (shards_.size() == 1) {
      Shard& s = *shards_.front();
      if (prof_ != nullptr) {
        run_serial_profiled(s, t);
      } else {
        while (true) {
          const Event* ev = peek(s);
          if (ev == nullptr || ev->at > t) break;
          pop_and_run(s);
        }
      }
      if (t > s.now) s.now = t;
      s.now_inclusive = true;  // everything at or before t has run
    } else {
      run_until_sharded(t);
    }
  }

  [[nodiscard]] std::uint64_t events_processed() const {
    std::uint64_t total = 0;
    for (const auto& s : shards_) total += s->processed;
    return total;
  }
  [[nodiscard]] std::size_t pending() const {
    std::size_t total = 0;
    for (const auto& s : shards_) total += s->ring_size + s->overflow.heap.size();
    for (const auto& ch : cross_ch_) {
      if (ch != nullptr) total += ch->size();
    }
    return total;
  }

  /// The active shard's packet freelist: packets made through it are recycled
  /// on delivery/drop instead of freed (see PacketPool).  Declared before the
  /// event tiers so pending events' packets are destroyed first on teardown.
  [[nodiscard]] PacketPool& packet_pool() { return active().pool; }

  // --- sharding ---

  /// Switches the engine to canonical ordering with `shards` event loops
  /// synchronized in epochs of `lookahead` (the min prop delay over
  /// cut links; TimeNs::max() when no link is cut).  Must be called before
  /// any event is scheduled.  `shards == 1` still switches ordering to
  /// canonical mode — that is how a 1-shard run produces the same schedule
  /// as a 4-shard run of the same experiment.
  void configure_shards(int shards, TimeNs lookahead, ShardExec exec = ShardExec::kAuto);

  [[nodiscard]] int shard_count() const { return static_cast<int>(shards_.size()); }
  [[nodiscard]] bool canonical_order() const { return canonical_; }
  [[nodiscard]] TimeNs lookahead() const { return lookahead_; }

  /// Adaptive epoch synchronization (DESIGN.md §12).  On: one coordinator
  /// barrier spans `windows` lookahead windows (shards self-synchronize at
  /// the interior boundaries through published clocks) and solo rounds skip
  /// barriers entirely.  Off (`on == false`): every window pays a barrier and
  /// solo skipping is disabled — the PR-4 epoch structure, kept as the A/B
  /// baseline for determinism tests.  The schedule is byte-identical either
  /// way (canonical (h,k) keys are partition- and batching-invariant).
  /// Must be called before the first run.
  void set_adaptive_epochs(bool on, int windows = 16) {
    UFAB_CHECK_MSG(!exec_started_, "set_adaptive_epochs after a run started");
    UFAB_CHECK(windows >= 1);
    adaptive_ = on;
    epoch_windows_ = on ? windows : 1;
  }
  [[nodiscard]] bool adaptive_epochs() const { return adaptive_; }
  [[nodiscard]] int epoch_windows() const { return epoch_windows_; }

  /// Per-shard *outgoing* cut lookahead (min prop delay over the shard's
  /// outgoing cut links; TimeNs::max() when the shard has none) from
  /// topo::partition_network.  Solo rounds stride by it — a shard whose
  /// cheapest outgoing cut is 5 µs can run 5 µs between routings even when
  /// the global (incoming-min) lookahead is 500 ns.
  void set_shard_lookaheads(std::vector<TimeNs> out_lookahead) {
    UFAB_CHECK(out_lookahead.empty() ||
               out_lookahead.size() == shards_.size());
    shard_out_la_ = std::move(out_lookahead);
  }

  /// Forces sequential (single-thread) epoch execution.  Sequential epochs
  /// fire the exact same schedule as threaded ones, so this is a safety
  /// valve, not a semantic switch: callbacks that touch cross-shard state
  /// (queue sampling across all links, the fault plane) call it during
  /// setup.  Must happen before the first run.  `reason` labels who demanded
  /// it — recorded (deduplicated) for the `sim.forced_sequential` gauge and
  /// logged once per reason when a multi-shard run is being downgraded, so a
  /// silently single-threaded soak is visible instead of mysterious.
  void require_sequential(const char* reason = "unspecified");

  /// Distinct reasons passed to require_sequential(), in first-call order.
  [[nodiscard]] const std::vector<std::string>& sequential_reasons() const {
    return sequential_reasons_;
  }

  /// True once a multi-shard run has started with worker threads.
  [[nodiscard]] bool threaded() const { return exec_started_ && exec_threads_; }

  /// RAII guard homing scheduling calls onto one shard: while alive, at() /
  /// after() / packet_pool() on this thread resolve to `shard`.  Setup code
  /// uses it to place per-host/per-switch work on the owning shard.
  class [[nodiscard]] ShardScope {
   public:
    ~ShardScope() {
      tls_ = prev_;
      ufab::tls_shard_index = prev_index_;
    }
    ShardScope(const ShardScope&) = delete;
    ShardScope& operator=(const ShardScope&) = delete;

   private:
    friend class Simulator;
    ShardScope(Simulator* sim, int shard) : prev_(tls_), prev_index_(ufab::tls_shard_index) {
      tls_ = Active{sim, sim->shards_[static_cast<std::size_t>(shard)].get()};
      ufab::tls_shard_index = shard;
    }
    struct Active {
      Simulator* sim;
      void* shard;
    };
    Active prev_;
    int prev_index_;
  };

  [[nodiscard]] ShardScope scoped(int shard) {
    UFAB_CHECK(shard >= 0 && shard < shard_count());
    return ShardScope(this, shard);
  }

  /// Posts a packet crossing a cut link into `dst_shard`'s calendar: the
  /// delivery fires at absolute time `at` with the same ordering key the
  /// event would have had as a local after() call, so the merged schedule is
  /// independent of the partition.  The packet itself is handed over —
  /// ownership transfers to the destination shard; its storage stays with
  /// the origin pool and returns there through the return mailboxes when the
  /// destination releases it.  Only valid in canonical mode from inside a
  /// running event.
  void post_cross(int dst_shard, TimeNs at, Node* dst, PacketPtr pkt) {
    UFAB_PROF_SCOPE(obs::ProfCat::kMailboxPost);
    Shard& s = active();
    UFAB_CHECK(canonical_ && s.in_event);
    UFAB_CHECK(dst_shard >= 0 && dst_shard < shard_count() && dst_shard != s.index);
    ++s.crossings_posted;
    cross_ch(s.index, dst_shard)
        .post(Crossing{at, s.cur_id, s.cur_k++, dst_shard, dst, std::move(pkt)});
  }

  // --- explicit-key scheduling (the fused link pipeline, DESIGN.md §13) ---

  /// A raw (h, k) ordering key, before the event_identity finalizer.
  struct ChildKey {
    std::uint64_t h;
    std::uint32_t k;
  };

  /// Consumes and returns the key the next at()/after() call from this
  /// context would have stamped — without scheduling anything.  The fused
  /// link pipeline reserves the slot the legacy serializer-end event would
  /// have occupied, so every descendant keeps its byte-identical key even
  /// though the event itself never enters the calendar.  Canonical mode only.
  [[nodiscard]] ChildKey alloc_child_key() {
    UFAB_CHECK(canonical_);
    Shard& s = active();
    if (s.in_event) return ChildKey{s.cur_id, s.cur_k++};
    return ChildKey{kRootIdentity, root_k_++};
  }

  /// Schedules `fn` at `t` under an explicit raw key instead of one stamped
  /// from the current context (canonical mode only).  The fused pipeline
  /// reproduces legacy delivery keys through this: the head departure is
  /// scheduled with exactly the (h, k) the two-event chain would have used.
  void at_keyed(TimeNs t, std::uint64_t h, std::uint32_t k, UniqueFunction fn) {
    Shard& s = active();
    UFAB_CHECK(canonical_);
    UFAB_CHECK_MSG(t >= s.now, "scheduling into the past");
    push(s, t, h, k, std::move(fn));
  }

  /// post_cross with an explicit key: the fused pipeline posts a cut-link
  /// crossing eagerly at commit time (from the enqueuing event) carrying the
  /// delivery key the legacy serializer-end event would have produced at wire
  /// exit.  Safe for the conservative sync: `at` exceeds the posting time by
  /// at least tx + prop >= lookahead, so the crossing still lands at or past
  /// every boundary reachable from the posting window, and it is flushed and
  /// drained at the first boundary after the post — earlier than legacy,
  /// never later.  Must be called from inside a running event: a root-context
  /// post would sit unflushed where earliest_pending()/solo decisions cannot
  /// see it.
  void post_cross_keyed(int dst_shard, TimeNs at, Node* dst, PacketPtr pkt,
                        std::uint64_t h, std::uint32_t k) {
    UFAB_PROF_SCOPE(obs::ProfCat::kMailboxPost);
    Shard& s = active();
    UFAB_CHECK(canonical_);
    UFAB_CHECK_MSG(s.in_event, "eager crossing posted outside an event");
    UFAB_CHECK(dst_shard >= 0 && dst_shard < shard_count() && dst_shard != s.index);
    ++s.crossings_posted;
    cross_ch(s.index, dst_shard).post(Crossing{at, h, k, dst_shard, dst, std::move(pkt)});
  }

  /// Opaque handle to the shard the calling context schedules onto.  The
  /// fused pipeline captures it at first commit so later queries — possibly
  /// made from another shard's context under sequential execution (soak's
  /// queue sampler) — evaluate firedness against the link's own shard.
  using ShardHandle = const void*;
  [[nodiscard]] ShardHandle active_shard_handle() const { return &active(); }

  /// Whether the legacy engine would already have run an event keyed
  /// (t, h, k) on `handle`'s shard.  Monotone (once fired, always fired):
  /// strictly-past times have run; at the current instant, mid-event the raw
  /// key of the executing event is the frontier (the calendar pops in strict
  /// (at, h, k) order and every key we ask about was scheduled strictly
  /// before `t`, so pure key order applies), and between events it depends on
  /// whether the shard stopped at an inclusive horizon or a strict window
  /// boundary.
  [[nodiscard]] bool key_fired(ShardHandle handle, TimeNs t, std::uint64_t h,
                               std::uint32_t k) const {
    const Shard& s = *static_cast<const Shard*>(handle);
    if (t < s.now) return true;
    if (t > s.now) return false;
    if (s.in_event) return h < s.cur_raw_h || (h == s.cur_raw_h && k < s.cur_raw_k);
    return s.now_inclusive;
  }

  /// Fused link pipelines (one resident calendar event per busy link instead
  /// of two events per packet hop).  Default on; UFAB_FUSED_LINKS=0 is the
  /// escape hatch / A-B baseline.  Links consult this at commit time, so it
  /// must not change once packets are in flight.
  [[nodiscard]] bool fused_links() const { return fused_links_; }
  void set_fused_links(bool on) {
    UFAB_CHECK_MSG(events_processed() == 0, "set_fused_links after events ran");
    fused_links_ = on;
  }

  // --- per-shard introspection (obs gauges, tests; read between runs) ---
  [[nodiscard]] std::uint64_t shard_events_processed(int shard) const {
    return shard_at(shard).processed;
  }
  [[nodiscard]] std::uint64_t shard_crossings_out(int shard) const {
    return shard_at(shard).crossings_posted;
  }
  [[nodiscard]] std::int64_t shard_barrier_wait_ns(int shard) const {
    return shard_at(shard).barrier_wait_ns;
  }
  /// Drain batches absorbed by `shard` across its incoming cross mailboxes.
  [[nodiscard]] std::uint64_t shard_outbox_drains(int shard) const {
    std::uint64_t total = 0;
    for (int src = 0; src < shard_count(); ++src) {
      if (src != shard) total += cross_ch(src, shard).drains();
    }
    return total;
  }
  /// Largest single drain batch `shard` absorbed from any peer.
  [[nodiscard]] std::size_t shard_outbox_max_batch(int shard) const {
    std::size_t m = 0;
    for (int src = 0; src < shard_count(); ++src) {
      if (src != shard) m = std::max(m, cross_ch(src, shard).max_drain_batch());
    }
    return m;
  }
  /// Largest single drain batch over every cross mailbox — the per-boundary
  /// handoff traffic high-water mark the profiler exports.
  [[nodiscard]] std::size_t handoff_max_batch() const {
    std::size_t m = 0;
    for (const auto& ch : cross_ch_) {
      if (ch != nullptr) m = std::max(m, ch->max_drain_batch());
    }
    return m;
  }
  /// Batch publications (one release-store each) over every cross mailbox.
  [[nodiscard]] std::uint64_t mailbox_flushes_total() const {
    std::uint64_t total = 0;
    for (const auto& ch : cross_ch_) {
      if (ch != nullptr) total += ch->flushes();
    }
    return total;
  }
  [[nodiscard]] const PacketPool& shard_pool(int shard) const { return shard_at(shard).pool; }

  // --- engine self-profiling (see src/obs/profiler.hpp) ---

  /// Attaches the profiling plane.  Must happen before the first run; from
  /// then on the run loops take their profiled variants (identical schedule,
  /// plus wall-clock attribution).  Passive by construction: profiling never
  /// schedules events or consumes randomness, so results are byte-identical
  /// to an unprofiled run (tests/obs/profiler_test.cpp).
  void enable_profiling(obs::ProfOptions opts = {});

  /// The attached profiler, or nullptr when profiling is disabled.
  [[nodiscard]] obs::Profiler* profiler() { return prof_.get(); }
  [[nodiscard]] const obs::Profiler* profiler() const { return prof_.get(); }

  /// The per-run profile artifact (ufab-profile-v1 JSON): run context plus
  /// the shard x scope time matrix.  Empty string when profiling is off.
  [[nodiscard]] std::string profile_json() const;

  /// The canonical identity an event gets from parent identity `h` and child
  /// index `k` (splitmix64-style finalizer).  Exposed so tests can mirror
  /// the engine's tie-break order in a reference queue.
  [[nodiscard]] static std::uint64_t event_identity(std::uint64_t h, std::uint32_t k) {
    std::uint64_t x = h + 0x9E3779B97F4A7C15ull * (static_cast<std::uint64_t>(k) + 1);
    x ^= x >> 30;
    x *= 0xBF58476D1CE4E5B9ull;
    x ^= x >> 27;
    x *= 0x94D049BB133111EBull;
    x ^= x >> 31;
    return x;
  }

 private:
  struct Event {
    TimeNs at;
    std::uint64_t h;
    std::uint32_t k;
    UniqueFunction fn;
  };

  /// Bucket-heap key: the event's full order key plus its slot index, so
  /// sifting compares and moves these 24-byte entries only and never touches
  /// the (much larger) events.
  struct HeapEntry {
    std::int64_t at;
    std::uint64_t h;
    std::uint32_t k;
    std::uint32_t idx;
  };

  /// One calendar bucket: `heap` is a binary min-heap of HeapEntry keys over
  /// the events stored in `slots`.  For ring buckets, slots are append-only
  /// while the bucket has pending events and the vector resets (keeping
  /// capacity) every time the bucket drains; at 512 ns per bucket that
  /// happens constantly, so `slots` stays small and a steady-state bucket
  /// allocates nothing.  The overflow tier instead recycles dead slots
  /// through `free_idx` (see bucket_push<kRecycle>): recurring timers can
  /// keep its heap non-empty for an entire run, so without reuse the slot
  /// vector would grow with every far-scheduled event.  Recycling costs a
  /// branch per push/pop, which measured slower on the ring hot path —
  /// hence the compile-time split.
  struct Bucket {
    static constexpr std::uint32_t kNoFixup = 0xFFFFFFFFu;

    std::vector<Event> slots;
    std::vector<HeapEntry> heap;
    std::vector<std::uint32_t> free_idx;  ///< Overflow tier only: dead slots.
    /// Bulk-insert marker: heap size before the first deferred append of the
    /// current drain batch (kNoFixup when no fixup is pending).  Entries at
    /// or past it are appended un-heapified and restored in one end_bulk()
    /// sweep — O(batch·log n) sifts or one make_heap instead of a push_heap
    /// per crossing.
    std::uint32_t fixup_from = kNoFixup;
    [[nodiscard]] bool empty() const { return heap.empty(); }
  };

  /// One cross-shard packet handoff, carrying the exact ordering key the
  /// delivery event will use in the destination calendar.
  struct Crossing {
    TimeNs at;
    std::uint64_t h;
    std::uint32_t k;
    int dst_shard;
    Node* dst;
    PacketPtr pkt;
  };

  static constexpr int kBucketShift = 9;  ///< 512 ns per bucket.
  static constexpr std::uint64_t kNumBuckets = 1024;  ///< ~0.5 ms near horizon.
  static constexpr int kMaxShards = 64;
  /// Identity of the implicit root event (setup code outside any event).
  static constexpr std::uint64_t kRootIdentity = 0x52EEDF00DDEADB01ull;

  /// One event loop: its own clock, calendar, packet pool, and outbox.  The
  /// pool is declared first so the event tiers (whose pending closures own
  /// packets) are destroyed while the pool is still alive.
  struct Shard {
    explicit Shard(int idx) : index(idx), ring(kNumBuckets) {}

    int index;
    PacketPool pool;
    TimeNs now = TimeNs::zero();
    std::uint64_t next_seq = 0;  ///< Default-mode FIFO sequence.
    std::uint64_t processed = 0;
    std::vector<Bucket> ring;
    std::size_t ring_size = 0;
    std::uint64_t cursor = 0;     ///< No ring events live in buckets before this.
    bool peeked_overflow = false;  ///< Tier of the last peek() result.
    Bucket overflow;

    // Canonical-mode scheduling context (the currently executing event).
    std::uint64_t cur_id = 0;
    std::uint32_t cur_k = 0;
    bool in_event = false;
    // Raw (h, k) key of the executing event — the key_fired() frontier.
    std::uint64_t cur_raw_h = 0;
    std::uint32_t cur_raw_k = 0;
    /// Whether events at exactly `now` are guaranteed processed: true after
    /// an inclusive horizon (run_until's t), false while parked at a strict
    /// window boundary (events at the boundary run in the next window).
    bool now_inclusive = true;

    // Cross-shard machinery (the mailboxes themselves are per-(src,dst)
    // simulator members; see cross_ch_/ret_ch_).
    std::uint64_t crossings_posted = 0;
    std::int64_t barrier_wait_ns = 0;  ///< Worker idle time at epoch barriers.
    /// Buckets with pending bulk-insert fixups (scratch; owner-thread only).
    std::vector<Bucket*> touched;
  };

  [[nodiscard]] static std::uint64_t abs_bucket(TimeNs t) {
    return static_cast<std::uint64_t>(t.ns()) >> kBucketShift;
  }

  /// Heap predicate for std::push_heap/std::pop_heap (max-heap semantics):
  /// "a sorts after b", so the heap top is the earliest (time, h, k).  A
  /// functor type, not a function: passing a function pointer would make
  /// every sift comparison an indirect call (measured at >1e9 calls per
  /// fig17 run), while a stateless functor inlines into the sift loops.
  struct Later {
    [[nodiscard]] bool operator()(const HeapEntry& a, const HeapEntry& b) const {
      if (a.at != b.at) return a.at > b.at;
      if (a.h != b.h) return a.h > b.h;
      if (a.k != b.k) return a.k > b.k;
      return a.idx > b.idx;
    }
  };

  template <bool kRecycle>
  static void bucket_push(Bucket& b, TimeNs t, std::uint64_t h, std::uint32_t k,
                          UniqueFunction&& fn) {
    auto idx = static_cast<std::uint32_t>(b.slots.size());
    if constexpr (kRecycle) {
      if (!b.free_idx.empty()) {
        idx = b.free_idx.back();
        b.free_idx.pop_back();
        b.slots[idx] = Event{t, h, k, std::move(fn)};
      } else {
        b.slots.emplace_back(t, h, k, std::move(fn));
      }
    } else {
      b.slots.emplace_back(t, h, k, std::move(fn));
    }
    b.heap.push_back(HeapEntry{t.ns(), h, k, idx});
    std::push_heap(b.heap.begin(), b.heap.end(), Later{});
  }

  template <bool kRecycle>
  static Event bucket_pop(Bucket& b) {
    std::pop_heap(b.heap.begin(), b.heap.end(), Later{});
    const std::uint32_t idx = b.heap.back().idx;
    Event ev = std::move(b.slots[idx]);
    b.heap.pop_back();
    if (b.heap.empty()) {
      b.slots.clear();  // keeps capacity
      if constexpr (kRecycle) b.free_idx.clear();
    } else if constexpr (kRecycle) {
      b.free_idx.push_back(idx);
    }
    return ev;
  }

  static void ring_push(Shard& s, std::uint64_t ab, TimeNs t, std::uint64_t h, std::uint32_t k,
                        UniqueFunction&& fn) {
    bucket_push<false>(s.ring[ab & (kNumBuckets - 1)], t, h, k, std::move(fn));
    ++s.ring_size;
    if (ab < s.cursor) s.cursor = ab;
  }

  static void push(Shard& s, TimeNs t, std::uint64_t h, std::uint32_t k, UniqueFunction&& fn) {
    const std::uint64_t ab = abs_bucket(t);
    if (ab >= abs_bucket(s.now) + kNumBuckets) {
      bucket_push<true>(s.overflow, t, h, k, std::move(fn));
    } else {
      ring_push(s, ab, t, h, k, std::move(fn));
    }
  }

  /// Bulk-insert path for mailbox drains: appends the event without sifting
  /// its heap entry and marks the bucket for a deferred fixup.  The caller
  /// MUST run end_bulk() before any peek()/pop on this shard.  Far-horizon
  /// events (rare for crossings) take the ordinary overflow push.
  static void push_deferred(Shard& s, TimeNs t, std::uint64_t h, std::uint32_t k,
                            UniqueFunction&& fn) {
    const std::uint64_t ab = abs_bucket(t);
    if (ab >= abs_bucket(s.now) + kNumBuckets) {
      bucket_push<true>(s.overflow, t, h, k, std::move(fn));
      return;
    }
    Bucket& b = s.ring[ab & (kNumBuckets - 1)];
    if (b.fixup_from == Bucket::kNoFixup) {
      b.fixup_from = static_cast<std::uint32_t>(b.heap.size());
      s.touched.push_back(&b);
    }
    const auto idx = static_cast<std::uint32_t>(b.slots.size());
    b.slots.emplace_back(t, h, k, std::move(fn));
    b.heap.push_back(HeapEntry{t.ns(), h, k, idx});
    ++s.ring_size;
    if (ab < s.cursor) s.cursor = ab;
  }

  /// Restores the heap property of every bucket push_deferred touched.  Small
  /// batches sift the appended entries one by one; a batch that rivals the
  /// bucket's population rebuilds the whole heap in O(n).  Pop order is the
  /// strict (at, h, k, idx) total order either way, so heap layout never
  /// leaks into the schedule.
  static void end_bulk(Shard& s) {
    for (Bucket* b : s.touched) {
      const std::size_t from = b->fixup_from;
      const std::size_t size = b->heap.size();
      if ((size - from) * 4 < size) {
        for (std::size_t i = from + 1; i <= size; ++i) {
          std::push_heap(b->heap.begin(),
                         b->heap.begin() + static_cast<std::ptrdiff_t>(i), Later{});
        }
      } else {
        std::make_heap(b->heap.begin(), b->heap.end(), Later{});
      }
      b->fixup_from = Bucket::kNoFixup;
    }
    s.touched.clear();
  }

  /// Pulls overflow events that now fall inside the near-horizon window into
  /// the ring.  Overflow is ordered, so this stops at the first far event.
  static void migrate_overflow(Shard& s) {
    if (s.overflow.empty()) return;  // the common case: nothing far-scheduled
    const std::uint64_t window_end = abs_bucket(s.now) + kNumBuckets;
    while (!s.overflow.empty()) {
      const HeapEntry& top = s.overflow.heap.front();
      const std::uint64_t ab = abs_bucket(TimeNs{top.at});
      if (ab >= window_end) break;
      Event ev = bucket_pop<true>(s.overflow);
      ring_push(s, ab, ev.at, ev.h, ev.k, std::move(ev.fn));
    }
  }

  /// The earliest pending event, or nullptr.  Advances the bucket cursor past
  /// empty buckets; `peeked_overflow` records which tier holds the result.
  [[nodiscard]] static const Event* peek(Shard& s) {
    migrate_overflow(s);
    if (s.ring_size > 0) {
      // Ring events are all within the window, so every index maps to one
      // absolute bucket and scanning at most kNumBuckets finds the earliest.
      if (s.cursor < abs_bucket(s.now)) s.cursor = abs_bucket(s.now);
      while (s.ring[s.cursor & (kNumBuckets - 1)].empty()) ++s.cursor;
      s.peeked_overflow = false;
      const Bucket& b = s.ring[s.cursor & (kNumBuckets - 1)];
      return &b.slots[b.heap.front().idx];
    }
    if (!s.overflow.empty()) {
      // Every within-window event has migrated, so the overflow top — which
      // lies beyond the window — is the global earliest.
      s.peeked_overflow = true;
      return &s.overflow.slots[s.overflow.heap.front().idx];
    }
    return nullptr;
  }

  /// Pops the event `peek()` just located and runs it.
  void pop_and_run(Shard& s) {
    Event ev = s.peeked_overflow ? bucket_pop<true>(s.overflow)
                                 : bucket_pop<false>(s.ring[s.cursor & (kNumBuckets - 1)]);
    if (!s.peeked_overflow) --s.ring_size;
    s.now = ev.at;
    ++s.processed;
    if (canonical_) {
      s.cur_id = event_identity(ev.h, ev.k);
      s.cur_k = 0;
      s.cur_raw_h = ev.h;
      s.cur_raw_k = ev.k;
      s.now_inclusive = false;  // same-instant events may still be pending
      s.in_event = true;
      ev.fn();
      s.in_event = false;
    } else {
      ev.fn();
    }
  }

  /// The shard this thread's scheduling calls resolve to: the scoped/worker
  /// shard when one is set for *this* simulator, else shard 0 (setup code,
  /// tests, foreign threads).
  [[nodiscard]] Shard& active() {
    const ShardScope::Active a = tls_;
    return a.sim == this ? *static_cast<Shard*>(a.shard) : *shards_.front();
  }
  [[nodiscard]] const Shard& active() const {
    const ShardScope::Active a = tls_;
    return a.sim == this ? *static_cast<const Shard*>(a.shard) : *shards_.front();
  }
  [[nodiscard]] const Shard& shard_at(int i) const {
    return *shards_.at(static_cast<std::size_t>(i));
  }

  /// The cross mailbox carrying crossings from `src` to `dst`.
  [[nodiscard]] ShardMailbox<Crossing>& cross_ch(int src, int dst) const {
    return *cross_ch_[static_cast<std::size_t>(src) * shards_.size() +
                      static_cast<std::size_t>(dst)];
  }
  /// The return mailbox carrying packet storage freed by `freer` back to
  /// `owner`'s pool (populated only while the foreign guard is armed).
  [[nodiscard]] ShardMailbox<Packet*>& ret_ch(int freer, int owner) const {
    return *ret_ch_[static_cast<std::size_t>(freer) * shards_.size() +
                    static_cast<std::size_t>(owner)];
  }

  // --- sharded execution (simulator.cpp) ---
  void run_until_sharded(TimeNs t);
  void run_sharded_drain();
  void ensure_exec_started();
  void run_pass(TimeNs boundary, bool inclusive);
  void run_pass_windowed(TimeNs base, int windows);
  void windowed_shard_pass(Shard& s);
  void shard_pass(Shard& s, TimeNs boundary, bool inclusive);
  void flush_outgoing(int src);
  void drain_incoming(Shard& s);
  bool solo_run(int x, TimeNs limit);
  [[nodiscard]] int single_active_shard() const;
  void reset_channels();
  void note_injected_progress();
  [[nodiscard]] TimeNs earliest_pending();
  void set_clocks(TimeNs t, bool inclusive);
  [[nodiscard]] bool inject_crossings(TimeNs le_mark);
  void worker_main(int shard_index);
  static void foreign_release_sink(void* ctx, PacketPool* owner, Packet* p);

  // --- profiled run loops (simulator.cpp; same schedule, plus attribution) ---
  void run_serial_profiled(Shard& s, TimeNs bound);
  void shard_pass_profiled(Shard& s, TimeNs boundary, bool inclusive);
  void pop_and_run_profiled(Shard& s, obs::ProfSlice& sl);

  inline static thread_local ShardScope::Active tls_{nullptr, nullptr};

  std::vector<std::unique_ptr<Shard>> shards_;
  /// Cross-shard mailboxes, row-major [src * n + dst] (diagonal null).
  /// Declared after shards_ so pending crossings (which own packets) are
  /// destroyed while every pool is still alive.
  std::vector<std::unique_ptr<ShardMailbox<Crossing>>> cross_ch_;
  /// Return mailboxes, row-major [freer * n + owner] (diagonal null).
  std::vector<std::unique_ptr<ShardMailbox<Packet*>>> ret_ch_;
  /// Per-shard published clocks for intra-epoch window synchronization.
  std::vector<std::unique_ptr<ShardClockSlot>> clocks_;
  bool canonical_ = false;
  TimeNs lookahead_ = TimeNs::max();
  std::uint32_t root_k_ = 0;  ///< FIFO counter for root-context scheduling.

  bool fused_links_ = true;  ///< Fused link pipelines (UFAB_FUSED_LINKS=0 off).
  bool adaptive_ = true;    ///< Multi-window epochs + solo barrier skipping.
  int epoch_windows_ = 16;  ///< Lookahead windows per coordinator barrier.
  std::vector<TimeNs> shard_out_la_;  ///< Per-shard outgoing cut lookahead.

  ShardExec exec_request_ = ShardExec::kAuto;
  bool sequential_only_ = false;
  std::vector<std::string> sequential_reasons_;  ///< Deduplicated, first-call order.
  bool exec_started_ = false;
  bool exec_threads_ = false;
  std::unique_ptr<EpochBarrier> barrier_;
  std::vector<std::thread> workers_;
  TimeNs pass_boundary_ = TimeNs::zero();
  bool pass_inclusive_ = false;
  TimeNs pass_base_ = TimeNs::zero();  ///< Windowed pass: first window start.
  int pass_windows_ = 0;               ///< 0 = legacy single-boundary pass.
  std::uint64_t pass_gen_ = 0;
  std::uint64_t injected_noted_ = 0;  ///< Crossings already reported to prof_.
  std::unique_ptr<obs::Profiler> prof_;  ///< Null = profiling disabled.
};

}  // namespace ufab::sim

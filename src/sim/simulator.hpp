// The discrete-event engine.
//
// A single-threaded future-event list: events are (time, sequence, closure)
// triples ordered by time with FIFO tie-breaking, which makes runs exactly
// reproducible for a fixed seed.
#pragma once

#include <cstdint>
#include <queue>
#include <vector>

#include "src/core/assert.hpp"
#include "src/core/time.hpp"
#include "src/core/unique_function.hpp"

namespace ufab::sim {

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  [[nodiscard]] TimeNs now() const { return now_; }

  /// Schedules `fn` at absolute time `t` (>= now). The closure may be
  /// move-only, so events can own what they deliver (packets in flight).
  void at(TimeNs t, UniqueFunction fn) {
    UFAB_CHECK_MSG(t >= now_, "scheduling into the past");
    queue_.push(Event{t, next_seq_++, std::move(fn)});
  }

  /// Schedules `fn` after `delay` from now.
  void after(TimeNs delay, UniqueFunction fn) { at(now_ + delay, std::move(fn)); }

  /// Runs until the event list drains.
  void run() {
    while (!queue_.empty()) step();
  }

  /// Runs all events with time <= `t`, then sets now to `t`.
  void run_until(TimeNs t) {
    while (!queue_.empty() && queue_.top().at <= t) step();
    if (t > now_) now_ = t;
  }

  [[nodiscard]] std::uint64_t events_processed() const { return processed_; }
  [[nodiscard]] std::size_t pending() const { return queue_.size(); }

 private:
  struct Event {
    TimeNs at;
    std::uint64_t seq;
    UniqueFunction fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  void step() {
    // Move the closure out before popping so it can schedule new events.
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = ev.at;
    ++processed_;
    ev.fn();
  }

  TimeNs now_ = TimeNs::zero();
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace ufab::sim

// Base class for anything that can terminate a link (switch or host).
#pragma once

#include <string>

#include "src/core/ids.hpp"
#include "src/sim/packet.hpp"

namespace ufab::sim {

class Node {
 public:
  Node(NodeId id, std::string name) : id_(id), name_(std::move(name)) {}
  virtual ~Node() = default;
  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  /// A packet has fully arrived at this node.
  virtual void receive(PacketPtr pkt) = 0;

  [[nodiscard]] NodeId id() const { return id_; }
  [[nodiscard]] const std::string& name() const { return name_; }

 private:
  NodeId id_;
  std::string name_;
};

}  // namespace ufab::sim

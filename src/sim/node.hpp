// Base class for anything that can terminate a link (switch or host).
#pragma once

#include <string>
#include <utility>

#include "src/core/ids.hpp"
#include "src/core/unique_function.hpp"
#include "src/sim/packet.hpp"

namespace ufab::sim {

class Node {
 public:
  Node(NodeId id, std::string name) : id_(id), name_(std::move(name)) {}
  virtual ~Node() = default;
  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  /// A packet has fully arrived at this node.
  virtual void receive(PacketPtr pkt) = 0;

  [[nodiscard]] NodeId id() const { return id_; }
  [[nodiscard]] const std::string& name() const { return name_; }

 private:
  NodeId id_;
  std::string name_;
};

/// The propagation-stage event: owns the packet until delivery.  A named
/// functor (not a lambda) so it can be marked trivially relocatable — it is
/// the single hottest event shape, and the mark lets the event queue move it
/// by memcpy instead of an out-of-line unique_ptr move (see UniqueFunction).
/// Lives here (not in link.cpp) because the sharded engine also materializes
/// one when injecting a cross-shard crossing into the destination calendar.
struct DeliverEvent {
  Node* dst;
  PacketPtr p;
  void operator()() { dst->receive(std::move(p)); }
};

class Link;

/// The fused-pipeline head event: the only calendar entry a busy fused link
/// keeps resident.  Fires the pipe head's arrival at the peer and re-arms
/// itself for the next in-flight packet (src/sim/link.cpp).  The packet stays
/// owned by the link's pipe — not by this event — so an abort (set_down)
/// destroys dropped packets at legacy-identical times; `epoch` neutralizes a
/// stale head event after such an abort, exactly like the legacy serializer.
/// Lives here so the engine profiler can classify it as a delivery dispatch.
struct FusedLinkDeliver {
  Link* link;
  std::uint64_t epoch;
  void operator()();
};

}  // namespace ufab::sim

/// DeliverEvent is a raw pointer plus a unique_ptr with a stateless deleter:
/// moving its bytes and abandoning the source is equivalent to its move
/// constructor followed by destroying the (then empty) source.
template <>
inline constexpr bool ufab::is_trivially_relocatable_v<ufab::sim::DeliverEvent> = true;

/// FusedLinkDeliver is a raw pointer plus an integer: trivially copyable.
template <>
inline constexpr bool ufab::is_trivially_relocatable_v<ufab::sim::FusedLinkDeliver> = true;

// Sharded (conservative parallel DES) execution for Simulator.
//
// The serial hot paths live inline in simulator.hpp; everything here runs
// once per window or epoch, not once per event.  The safety invariant is the
// same at every granularity: a crossing posted at wire-exit time tau arrives
// at tau + prop >= tau + lookahead, which is at or past the boundary of the
// lookahead window that produced it, so a shard processing events strictly
// before a boundary can never miss a remote event (DESIGN.md §9).
//
// What changed for §12 is how boundaries are *paid for*:
//
//  * A pass now spans many windows per coordinator barrier
//    (run_pass_windowed).  Inside the pass each shard walks the common
//    boundary ladder b_1 < b_2 < ... on its own: run events < b_w, flush the
//    outgoing mailboxes (one release-store per non-empty channel), publish
//    its clock = b_w, spin until every peer's clock reached b_w, drain
//    incoming mailboxes, continue.  Because a peer flushes *before*
//    publishing, acquiring its clock at b_w also acquires every crossing it
//    posted before b_w — and any such crossing delivers at or after b_w, so
//    draining at b_w is always early enough.  One condvar barrier (~µs) per
//    UFAB_EPOCH_WINDOWS windows instead of one per window.
//
//  * When exactly one shard has pending events the coordinator skips the
//    barrier machinery entirely (solo_run): it executes that shard inline
//    with a stride of the shard's *outgoing* cut lookahead (no outgoing cut
//    links: straight to the limit), routing any crossings itself, and falls
//    back to synchronized epochs at the first boundary where a crossing
//    woke a peer — before the woken shard executes anything, so nothing is
//    ever missed.
//
//  * The final inclusive stretch of run_until keeps the PR-4 coordinator
//    round structure (run_pass(t, true) + inject_crossings loops): at the
//    horizon the window ladder degenerates (events at exactly t can emit
//    crossings at exactly t), and the legacy rounds already handle that
//    termination argument.
//
// Cross-shard packets are handed over, not cloned: injection moves the
// PacketPtr into the destination calendar with its origin pool unchanged,
// and a release on a foreign shard routes the storage home through a
// per-(freer, owner) return mailbox (PacketPool's foreign guard, armed only
// for threaded execution).  Every injection path inserts through the bulk
// calendar path (push_deferred + end_bulk) so a drain batch costs one heap
// fixup per touched bucket instead of one sift per crossing.
#include "src/sim/simulator.hpp"

#include <algorithm>
#include <chrono>
#include <string>

#include "src/core/log.hpp"
#include "src/sim/node.hpp"

namespace ufab::sim {

namespace {
[[nodiscard]] std::int64_t steady_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

Simulator::~Simulator() {
  if (barrier_ != nullptr) barrier_->shutdown();
  for (std::thread& w : workers_) w.join();
  // Teardown releases (pending events, undrained crossings) must reach their
  // pools directly: with the workers gone there is nobody left to drain a
  // return mailbox, so disarm every foreign guard before members destruct.
  for (auto& s : shards_) s->pool.set_foreign_guard(s->index, nullptr, nullptr);
  // Ownership handoff means a shard's calendar can hold packets born in any
  // other shard's arena.  Shards destruct member-wise in index order, so
  // shard 0's pool (and the slabs its packets live in) would be freed while
  // a later shard's pending events still own packets from it.  Drop every
  // pending event here, while all pools are alive; the cross/return
  // mailboxes are declared after shards_ and already destruct first.
  for (auto& s : shards_) {
    for (Bucket& b : s->ring) {
      b.heap.clear();
      b.slots.clear();
      b.fixup_from = Bucket::kNoFixup;
    }
    s->overflow.heap.clear();
    s->overflow.slots.clear();
    s->overflow.free_idx.clear();
    s->ring_size = 0;
    s->touched.clear();
  }
}

void Simulator::configure_shards(int shards, TimeNs lookahead, ShardExec exec) {
  UFAB_CHECK_MSG(!exec_started_, "configure_shards after a run started");
  UFAB_CHECK_MSG(!canonical_, "configure_shards called twice");
  const Shard& s0 = *shards_.front();
  UFAB_CHECK_MSG(shards_.size() == 1 && s0.processed == 0 && s0.next_seq == 0 &&
                     s0.ring_size == 0 && s0.overflow.heap.empty() && root_k_ == 0,
                 "configure_shards must precede all scheduling");
  UFAB_CHECK(shards >= 1 && shards <= kMaxShards);
  UFAB_CHECK(lookahead.ns() > 0);
  canonical_ = true;
  lookahead_ = lookahead;
  exec_request_ = exec;
  for (int i = 1; i < shards; ++i) shards_.push_back(std::make_unique<Shard>(i));
  const auto n = static_cast<std::size_t>(shards);
  cross_ch_.resize(n * n);
  ret_ch_.resize(n * n);
  clocks_.resize(n);
  for (std::size_t src = 0; src < n; ++src) {
    clocks_[src] = std::make_unique<ShardClockSlot>();
    for (std::size_t dst = 0; dst < n; ++dst) {
      if (src == dst) continue;
      cross_ch_[src * n + dst] = std::make_unique<ShardMailbox<Crossing>>();
      ret_ch_[src * n + dst] = std::make_unique<ShardMailbox<Packet*>>();
    }
  }
}

void Simulator::require_sequential(const char* reason) {
  UFAB_CHECK_MSG(!(exec_started_ && exec_threads_),
                 "require_sequential() after threaded execution began");
  sequential_only_ = true;
  const std::string label = reason == nullptr ? "unspecified" : reason;
  if (std::find(sequential_reasons_.begin(), sequential_reasons_.end(), label) !=
      sequential_reasons_.end()) {
    return;
  }
  sequential_reasons_.push_back(label);
  // A 1-shard run was never going to use threads; only warn when a requested
  // multi-shard run is actually being downgraded.
  if (shards_.size() > 1) {
    UFAB_LOG_WARN("sim: forcing sequential epoch execution (reason: %s); %d shards will run "
                  "single-threaded",
                  label.c_str(), static_cast<int>(shards_.size()));
  }
}

void Simulator::ensure_exec_started() {
  if (exec_started_) return;
  exec_started_ = true;
  bool threads = shards_.size() > 1;
  switch (exec_request_) {
    case ShardExec::kSequential:
      threads = false;
      break;
    case ShardExec::kThreads:
      break;  // forced, even on a single-CPU host (useful under TSan)
    case ShardExec::kAuto:
      threads = threads && std::thread::hardware_concurrency() > 1;
      break;
  }
  // A sequential requirement wins over a threads request: sequential epochs
  // fire the identical schedule, so correctness is never at stake — only the
  // cross-shard reads (queue sampling, fault plane) that demanded it.
  if (sequential_only_) threads = false;
  exec_threads_ = threads;
  if (!threads) return;
  // Concurrent shards must not touch each other's freelists: arm the
  // foreign-release guard so a packet freed away from home is posted to the
  // return mailbox instead (sequential execution keeps the plain fast path).
  for (auto& s : shards_) {
    s->pool.set_foreign_guard(s->index, &Simulator::foreign_release_sink, this);
  }
  barrier_ = std::make_unique<EpochBarrier>(static_cast<int>(shards_.size()) - 1);
  workers_.reserve(shards_.size() - 1);
  for (std::size_t i = 1; i < shards_.size(); ++i) {
    workers_.emplace_back([this, i] { worker_main(static_cast<int>(i)); });
  }
}

void Simulator::foreign_release_sink(void* ctx, PacketPool* owner, Packet* p) {
  auto* sim = static_cast<Simulator*>(ctx);
  sim->ret_ch(ufab::current_shard_index(), owner->owner_shard()).post(p);
}

void Simulator::worker_main(int shard_index) {
  Shard& s = *shards_[static_cast<std::size_t>(shard_index)];
  tls_ = ShardScope::Active{this, &s};
  ufab::tls_shard_index = shard_index;
  std::uint64_t gen = 0;
  if (!barrier_->wait_for_pass(gen)) return;
  while (true) {
    if (pass_windows_ > 0) {
      windowed_shard_pass(s);
    } else {
      shard_pass(s, pass_boundary_, pass_inclusive_);
    }
    const std::int64_t parked_at = steady_ns();
    const std::int64_t parked_ticks = prof_ != nullptr ? obs::ProfClock::now() : 0;
    barrier_->arrive_done();
    if (!barrier_->wait_for_pass(gen)) return;
    // Written between passes is safe: the coordinator only reads this while
    // workers are parked, ordered through the barrier's mutex.
    s.barrier_wait_ns += steady_ns() - parked_at;
    if (prof_ != nullptr) {
      prof_->slice(shard_index)
          .add(obs::ProfCat::kBarrierWait, obs::ProfClock::now() - parked_ticks);
    }
  }
}

/// Runs one synchronized legacy pass (single boundary) on every shard.
/// Threaded mode: workers run their own shard while the coordinator (already
/// scoped to shard 0 by the caller) runs shard 0.  Sequential mode: the
/// coordinator runs each shard's pass in index order — byte-identical
/// schedule, no concurrency.
void Simulator::run_pass(TimeNs boundary, bool inclusive) {
  if (exec_threads_) {
    pass_boundary_ = boundary;
    pass_inclusive_ = inclusive;
    pass_windows_ = 0;
    barrier_->release(++pass_gen_);
    shard_pass(*shards_.front(), boundary, inclusive);
    if (prof_ != nullptr) {
      // The coordinator's stall is the tail it spends waiting for the
      // slowest worker — the direct read on "does sharding pay".
      const std::int64_t t0 = obs::ProfClock::now();
      barrier_->wait_all_done();
      prof_->slice(0).add(obs::ProfCat::kBarrierWait, obs::ProfClock::now() - t0);
    } else {
      barrier_->wait_all_done();
    }
  } else {
    for (auto& s : shards_) {
      const ShardScope scope = scoped(s->index);
      shard_pass(*s, boundary, inclusive);
    }
  }
}

/// Runs one multi-window pass: every shard walks `windows` boundaries of
/// length lookahead_ starting at `base`, self-synchronizing at each through
/// the published clocks — ONE coordinator barrier for the whole pass.
/// Sequential mode replays the identical structure in index order: for each
/// window, every shard runs to the boundary and flushes, then every shard
/// drains — the same flush-before-drain dataflow, hence the same schedule.
void Simulator::run_pass_windowed(TimeNs base, int windows) {
  pass_base_ = base;
  pass_windows_ = windows;
  if (exec_threads_) {
    barrier_->release(++pass_gen_);
    windowed_shard_pass(*shards_.front());
    if (prof_ != nullptr) {
      const std::int64_t t0 = obs::ProfClock::now();
      barrier_->wait_all_done();
      prof_->slice(0).add(obs::ProfCat::kBarrierWait, obs::ProfClock::now() - t0);
    } else {
      barrier_->wait_all_done();
    }
  } else {
    TimeNs b = base;
    for (int w = 0; w < windows; ++w) {
      b = b + lookahead_;
      for (auto& s : shards_) {
        const ShardScope scope = scoped(s->index);
        shard_pass(*s, b, false);
        if (b > s->now) s->now = b;
        s->now_inclusive = false;  // events at exactly b run in the next window
        flush_outgoing(s->index);
      }
      const std::int64_t t0 = prof_ != nullptr ? obs::ProfClock::now() : 0;
      for (auto& s : shards_) drain_incoming(*s);
      if (prof_ != nullptr) {
        prof_->slice(0).add(obs::ProfCat::kMailboxInject, obs::ProfClock::now() - t0);
      }
    }
  }
  pass_windows_ = 0;
}

/// One shard's side of a windowed pass (worker thread, or the coordinator
/// for shard 0).  The boundary ladder is common to all shards, so publishing
/// the clock after flushing makes "peer clock >= b" imply "peer's crossings
/// relevant to my next window are visible" — the message-passing pattern the
/// mailboxes' single release-store is designed around.
void Simulator::windowed_shard_pass(Shard& s) {
  const int n = shard_count();
  obs::ProfSlice* const sl = prof_ != nullptr ? &prof_->slice(s.index) : nullptr;
  TimeNs b = pass_base_;
  for (int w = 0; w < pass_windows_; ++w) {
    b = b + lookahead_;
    shard_pass(s, b, false);
    if (b > s.now) s.now = b;
    s.now_inclusive = false;  // events at exactly b run in the next window
    flush_outgoing(s.index);
    clocks_[static_cast<std::size_t>(s.index)]->publish(b.ns());
    const std::int64_t t0 = sl != nullptr ? obs::ProfClock::now() : 0;
    for (int p = 0; p < n; ++p) {
      if (p != s.index) (void)clocks_[static_cast<std::size_t>(p)]->await(b.ns());
    }
    if (sl != nullptr) {
      const std::int64_t t1 = obs::ProfClock::now();
      sl->add(obs::ProfCat::kBarrierWait, t1 - t0);
      drain_incoming(s);
      sl->add(obs::ProfCat::kMailboxInject, obs::ProfClock::now() - t1);
    } else {
      drain_incoming(s);
    }
  }
}

void Simulator::shard_pass(Shard& s, TimeNs boundary, bool inclusive) {
  if (prof_ != nullptr) {
    shard_pass_profiled(s, boundary, inclusive);
    return;
  }
  while (true) {
    const Event* ev = peek(s);
    if (ev == nullptr) break;
    if (inclusive ? ev->at > boundary : ev->at >= boundary) break;
    pop_and_run(s);
  }
}

void Simulator::flush_outgoing(int src) {
  const int n = shard_count();
  for (int dst = 0; dst < n; ++dst) {
    if (dst == src) continue;
    cross_ch(src, dst).flush();
    ret_ch(src, dst).flush();
  }
}

/// Absorbs everything published to this shard: crossings bulk-insert into
/// the calendar (ownership handoff — the packet travels, its pool does not),
/// returned storage goes home via put_direct (we ARE the owner here, so the
/// foreign guard must not re-route it).
void Simulator::drain_incoming(Shard& s) {
  const int n = shard_count();
  for (int src = 0; src < n; ++src) {
    if (src == s.index) continue;
    cross_ch(src, s.index).drain([&s](Crossing&& c) {
      UFAB_CHECK_MSG(c.at >= s.now, "cross-shard crossing violates the lookahead bound");
      push_deferred(s, c.at, c.h, c.k, UniqueFunction(DeliverEvent{c.dst, std::move(c.pkt)}));
    });
    ret_ch(src, s.index).drain([](Packet*&& p) { p->origin_pool->put_direct(p); });
  }
  end_bulk(s);
}

/// The profiled dispatch step.  Every event bumps its exact category counts
/// (two plain increments); only every timing_stride-th event pays clock
/// reads — t0 -> peek/migrate/pop -> t1 -> closure -> t2, attributing
/// [t0,t1) to queue_pop and [t1,t2) to the dispatch category — and the
/// export scales sampled ticks back up by count/sampled.  A clock-read pair
/// can cost tens of ns on VMs with slow TSC reads, comparable to the mean
/// event itself, so per-event timing would blow the <= 5% overhead guard.
/// The event sequence is identical to pop_and_run after a successful peek.
void Simulator::pop_and_run_profiled(Shard& s, obs::ProfSlice& sl) {
  obs::Profiler& p = *prof_;
  const bool timed = (sl.strided++ & p.timing_mask()) == 0;
  const std::int64_t t0 = timed ? obs::ProfClock::now() : 0;
  Event ev = s.peeked_overflow ? bucket_pop<true>(s.overflow)
                               : bucket_pop<false>(s.ring[s.cursor & (kNumBuckets - 1)]);
  if (!s.peeked_overflow) --s.ring_size;
  s.now = ev.at;
  ++s.processed;
  const obs::ProfCat dispatch_cat =
      ev.fn.invokes<DeliverEvent>() || ev.fn.invokes<FusedLinkDeliver>()
          ? obs::ProfCat::kDispatchDeliver
          : obs::ProfCat::kDispatchClosure;
  sl.bump(obs::ProfCat::kQueuePop);
  sl.bump(dispatch_cat);
  const std::int64_t t1 = timed ? obs::ProfClock::now() : 0;
  if (canonical_) {
    s.cur_id = event_identity(ev.h, ev.k);
    s.cur_k = 0;
    s.cur_raw_h = ev.h;
    s.cur_raw_k = ev.k;
    s.now_inclusive = false;
    s.in_event = true;
    ev.fn();
    s.in_event = false;
  } else {
    ev.fn();
  }
  if (timed) {
    const std::int64_t t2 = obs::ProfClock::now();
    sl.add_sampled(obs::ProfCat::kQueuePop, t1 - t0);
    sl.add_sampled(dispatch_cat, t2 - t1);
  }
  // Calendar introspection on a sim-time cadence: pure simulation state, so
  // the sample series is deterministic for a fixed seed and shard count.
  if (s.now.ns() >= p.next_sample_ns(s.index)) {
    p.add_sample(s.index,
                 obs::ProfSample{s.now.ns(), static_cast<std::uint64_t>(s.ring_size),
                                 static_cast<std::uint64_t>(s.overflow.heap.size()),
                                 s.processed, s.crossings_posted});
  }
}

void Simulator::shard_pass_profiled(Shard& s, TimeNs boundary, bool inclusive) {
  obs::Profiler& p = *prof_;
  obs::ProfSlice& sl = p.slice(s.index);
  obs::ProfSlice* const prev_tls = obs::tls_prof_slice;
  if (p.detailed()) obs::tls_prof_slice = &sl;
  while (true) {
    const Event* ev = peek(s);
    if (ev == nullptr) break;
    if (inclusive ? ev->at > boundary : ev->at >= boundary) break;
    pop_and_run_profiled(s, sl);
  }
  obs::tls_prof_slice = prev_tls;
}

void Simulator::run_serial_profiled(Shard& s, TimeNs bound) {
  obs::Profiler& p = *prof_;
  obs::ProfSlice& sl = p.slice(s.index);
  obs::ProfSlice* const prev_tls = obs::tls_prof_slice;
  if (p.detailed()) obs::tls_prof_slice = &sl;
  const std::int64_t loop_start = obs::ProfClock::now();
  while (true) {
    const Event* ev = peek(s);
    if (ev == nullptr || ev->at > bound) break;
    pop_and_run_profiled(s, sl);
  }
  p.add_run_wall(obs::ProfClock::now() - loop_start);
  obs::tls_prof_slice = prev_tls;
}

TimeNs Simulator::earliest_pending() {
  TimeNs earliest = TimeNs::max();
  for (auto& s : shards_) {
    const Event* ev = peek(*s);
    if (ev != nullptr && ev->at < earliest) earliest = ev->at;
  }
  return earliest;
}

void Simulator::set_clocks(TimeNs t, bool inclusive) {
  for (auto& s : shards_) {
    if (t >= s->now) {
      s->now = t;
      s->now_inclusive = inclusive;
    }
  }
}

/// The shard holding every pending event, or -1 when zero or several shards
/// have work.  Only meaningful between passes (mailboxes drained).
int Simulator::single_active_shard() const {
  int active = -1;
  for (const auto& s : shards_) {
    if (s->ring_size > 0 || !s->overflow.empty()) {
      if (active >= 0) return -1;
      active = s->index;
    }
  }
  return active;
}

/// Rewinds mailbox positions before they near the chunk-index wrap.  Called
/// between passes, when every channel is drained, so the reset precondition
/// (empty) holds by construction.
void Simulator::reset_channels() {
  for (auto& ch : cross_ch_) {
    if (ch != nullptr) ch->maybe_reset();
  }
  for (auto& ch : ret_ch_) {
    if (ch != nullptr) ch->maybe_reset();
  }
}

/// Reports newly injected crossings to the profiler.  Called at points where
/// posted == injected (after a pass's final drain), so the posted total *is*
/// the injected total.
void Simulator::note_injected_progress() {
  if (prof_ == nullptr) return;
  std::uint64_t total = 0;
  for (const auto& s : shards_) total += s->crossings_posted;
  prof_->note_injected(total - injected_noted_);
  injected_noted_ = total;
}

/// Barrier-skip fast path: exactly one shard has pending events, so the
/// coordinator runs it inline — no barrier, no clock publishing — striding
/// by the shard's *outgoing* cut lookahead (nothing it does before
/// boundary can be seen elsewhere before boundary) and routing any crossings
/// itself.  Ends at the first boundary where a crossing woke a peer: the
/// woken shard has executed nothing yet, so falling back to synchronized
/// epochs there preserves the schedule exactly.  Returns whether any events
/// ran (false lets the caller take the ordinary path this iteration).
bool Simulator::solo_run(int x, TimeNs limit) {
  Shard& s = *shards_[static_cast<std::size_t>(x)];
  const TimeNs out_la =
      shard_out_la_.empty() ? lookahead_ : shard_out_la_[static_cast<std::size_t>(x)];
  const ShardScope scope = scoped(x);
  const int n = shard_count();
  bool progressed = false;
  while (true) {
    const Event* ev = peek(s);
    if (ev == nullptr) break;
    if (out_la == TimeNs::max()) {
      // No outgoing cut links: nothing this shard runs can wake a peer.  Run
      // straight to the limit, inclusively, matching the serial engine's
      // treatment of events at exactly t.
      shard_pass(s, limit, true);
      if (limit != TimeNs::max() && limit > s.now) s.now = limit;
      s.now_inclusive = true;
      if (prof_ != nullptr) prof_->note_barrier_skip();
      progressed = true;
      break;
    }
    if (ev->at >= limit) break;
    const TimeNs boundary = ev->at + out_la;
    if (boundary >= limit) break;  // final stretch: the epoch loop owns it
    shard_pass(s, boundary, false);
    if (boundary > s.now) s.now = boundary;
    s.now_inclusive = false;
    if (prof_ != nullptr) prof_->note_barrier_skip();
    progressed = true;
    flush_outgoing(x);
    bool woke = false;
    const std::int64_t t0 = prof_ != nullptr ? obs::ProfClock::now() : 0;
    for (int dst = 0; dst < n; ++dst) {
      if (dst == x) continue;
      Shard& d = *shards_[static_cast<std::size_t>(dst)];
      cross_ch(x, dst).drain([&d, &woke](Crossing&& c) {
        UFAB_CHECK_MSG(c.at >= d.now, "cross-shard crossing violates the lookahead bound");
        push_deferred(d, c.at, c.h, c.k, UniqueFunction(DeliverEvent{c.dst, std::move(c.pkt)}));
        woke = true;
      });
      end_bulk(d);
      // Storage this shard freed on behalf of `dst`'s pool goes home now
      // (put_direct: the guard would bounce a foreign put right back here).
      ret_ch(x, dst).drain([](Packet*&& p) { p->origin_pool->put_direct(p); });
    }
    if (prof_ != nullptr) {
      prof_->slice(0).add(obs::ProfCat::kMailboxInject, obs::ProfClock::now() - t0);
    }
    if (woke) break;
  }
  note_injected_progress();
  return progressed;
}

/// Coordinator-only legacy injection round (workers parked): flushes and
/// drains every mailbox, bulk-inserting crossings and returning freed
/// storage.  Returns whether any injected crossing fires at or before
/// `le_mark` — the run_until final-epoch loop uses this to know it must run
/// another inclusive pass.
bool Simulator::inject_crossings(TimeNs le_mark) {
  const std::int64_t inject_t0 = prof_ != nullptr ? obs::ProfClock::now() : 0;
  bool any_le = false;
  const int n = shard_count();
  for (int src = 0; src < n; ++src) {
    for (int dst = 0; dst < n; ++dst) {
      if (src == dst) continue;
      // The coordinator acts as writer here (flush) — safe because every
      // worker is parked at the barrier, which orders their posts before
      // this read-modify of the writer cursor.
      ShardMailbox<Crossing>& ch = cross_ch(src, dst);
      ch.flush();
      Shard& d = *shards_[static_cast<std::size_t>(dst)];
      ch.drain([&](Crossing&& c) {
        UFAB_CHECK_MSG(c.at >= d.now, "cross-shard crossing violates the lookahead bound");
        if (c.at <= le_mark) any_le = true;
        push_deferred(d, c.at, c.h, c.k, UniqueFunction(DeliverEvent{c.dst, std::move(c.pkt)}));
      });
      ShardMailbox<Packet*>& rch = ret_ch(src, dst);
      rch.flush();
      rch.drain([](Packet*&& p) { p->origin_pool->put_direct(p); });
    }
  }
  for (auto& s : shards_) end_bulk(*s);
  if (prof_ != nullptr) {
    prof_->slice(0).add(obs::ProfCat::kMailboxInject, obs::ProfClock::now() - inject_t0);
  }
  return any_le;
}

void Simulator::run_until_sharded(TimeNs t) {
  ensure_exec_started();
  const ShardScope scope = scoped(0);
  const std::int64_t wall_t0 = prof_ != nullptr ? obs::ProfClock::now() : 0;
  while (true) {
    // Between passes every mailbox is drained; clocks may be staggered after
    // a solo round but never exceed the earliest pending event.
    const TimeNs clock = shards_.front()->now;
    if (clock >= t) break;
    reset_channels();
    const TimeNs earliest = earliest_pending();
    if (earliest > t) {
      // Nothing left at or before the horizon (events at exactly t included).
      set_clocks(t, true);
      break;
    }
    if (adaptive_ && shards_.size() > 1) {
      const int x = single_active_shard();
      if (x >= 0 && solo_run(x, t)) continue;
    }
    // Fast-forward: idle gaps cost one pass, not (gap / lookahead) of them.
    const TimeNs base = std::max(clock, earliest);
    if (lookahead_ == TimeNs::max() || t - base <= lookahead_) {
      // Final epoch: process inclusively up to t, then loop — a crossing
      // produced at tau in (t - lookahead, t] can arrive exactly at t and
      // the serial engine would fire it, so keep passing until no injected
      // crossing lands at or before t.  Terminates: second-round events all
      // run at exactly t, and their crossings land strictly after t.
      if (prof_ != nullptr) prof_->note_epoch((t - base).ns());
      run_pass(t, true);
      set_clocks(t, true);
      while (inject_crossings(t)) run_pass(t, true);
      // The injection passes popped events (clearing the inclusive marks);
      // everything at or before t has now run on every shard.
      set_clocks(t, true);
      note_injected_progress();
      break;
    }
    // Multi-window epoch: as many full windows as fit strictly below t (the
    // final stretch needs the inclusive rounds above), capped by the knob.
    const std::int64_t la = lookahead_.ns();
    const std::int64_t span = t.ns() - base.ns();  // > la here
    const int w = static_cast<int>(
        std::min<std::int64_t>(epoch_windows_, (span - 1) / la));
    if (prof_ != nullptr) {
      prof_->note_epoch(w * la);
      prof_->note_windows(w);
    }
    run_pass_windowed(base, w);
    set_clocks(base + TimeNs{w * la}, false);
    note_injected_progress();
  }
  if (prof_ != nullptr) prof_->add_run_wall(obs::ProfClock::now() - wall_t0);
}

void Simulator::run_sharded_drain() {
  ensure_exec_started();
  const ShardScope scope = scoped(0);
  const std::int64_t wall_t0 = prof_ != nullptr ? obs::ProfClock::now() : 0;
  while (true) {
    reset_channels();
    const TimeNs earliest = earliest_pending();
    if (earliest == TimeNs::max()) break;  // mailboxes are empty between passes
    if (lookahead_ == TimeNs::max()) {
      // No cut links: shards are causally independent; one unbounded
      // inclusive pass drains everything and can post no crossings.
      run_pass(TimeNs::max(), true);
      continue;
    }
    if (adaptive_ && shards_.size() > 1) {
      const int x = single_active_shard();
      if (x >= 0 && solo_run(x, TimeNs::max())) continue;
    }
    const std::int64_t la = lookahead_.ns();
    const int w = epoch_windows_;
    if (prof_ != nullptr) {
      prof_->note_epoch(w * la);
      prof_->note_windows(w);
    }
    run_pass_windowed(earliest, w);
    set_clocks(earliest + TimeNs{w * la}, false);
    note_injected_progress();
  }
  if (prof_ != nullptr) prof_->add_run_wall(obs::ProfClock::now() - wall_t0);
}

void Simulator::enable_profiling(obs::ProfOptions opts) {
  UFAB_CHECK_MSG(!exec_started_, "enable_profiling after a sharded run started");
  UFAB_CHECK_MSG(prof_ == nullptr, "enable_profiling called twice");
  UFAB_CHECK_MSG(static_cast<int>(shards_.size()) <= obs::Profiler::kMaxShards,
                 "profiler shard capacity out of sync with the engine");
  prof_ = std::make_unique<obs::Profiler>(opts);
}

std::string Simulator::profile_json() const {
  if (prof_ == nullptr) return {};
  obs::ProfContext ctx;
  ctx.shard_count = shard_count();
  ctx.threaded = threaded();
  ctx.lookahead_ns = lookahead_ == TimeNs::max() ? -1 : lookahead_.ns();
  ctx.adaptive_epochs = adaptive_;
  ctx.epoch_windows = epoch_windows_;
  ctx.handoff_max_batch = handoff_max_batch();
  ctx.mailbox_flushes = mailbox_flushes_total();
  ctx.events_per_shard.reserve(shards_.size());
  ctx.crossings_per_shard.reserve(shards_.size());
  for (const auto& s : shards_) {
    ctx.events_per_shard.push_back(s->processed);
    ctx.crossings_per_shard.push_back(s->crossings_posted);
  }
  return prof_->to_json(ctx);
}

}  // namespace ufab::sim

// Sharded (conservative parallel DES) execution for Simulator.
//
// The serial hot paths live inline in simulator.hpp; everything here runs
// once per epoch, not once per event.  An epoch is one synchronized pass:
// every shard processes its calendar up to a common boundary, then the
// coordinator — alone, with every worker parked at the barrier — drains the
// cross-shard outboxes in (src shard, post order) order and injects the
// crossings into the destination calendars.  The epoch length is the
// partition's lookahead: the minimum propagation delay over cut links.  A
// crossing posted at wire-exit time tau arrives at tau + prop >= tau +
// lookahead, which is at or past the boundary of the epoch that produced it,
// so a shard processing events strictly before the boundary can never miss a
// remote event — the conservative-PDES safety argument (see DESIGN.md §9).
#include "src/sim/simulator.hpp"

#include <algorithm>
#include <chrono>
#include <string>

#include "src/core/log.hpp"
#include "src/sim/node.hpp"

namespace ufab::sim {

namespace {
[[nodiscard]] std::int64_t steady_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

Simulator::~Simulator() {
  if (barrier_ != nullptr) barrier_->shutdown();
  for (std::thread& w : workers_) w.join();
}

void Simulator::configure_shards(int shards, TimeNs lookahead, ShardExec exec) {
  UFAB_CHECK_MSG(!exec_started_, "configure_shards after a run started");
  UFAB_CHECK_MSG(!canonical_, "configure_shards called twice");
  const Shard& s0 = *shards_.front();
  UFAB_CHECK_MSG(shards_.size() == 1 && s0.processed == 0 && s0.next_seq == 0 &&
                     s0.ring_size == 0 && s0.overflow.heap.empty() && root_k_ == 0,
                 "configure_shards must precede all scheduling");
  UFAB_CHECK(shards >= 1 && shards <= kMaxShards);
  UFAB_CHECK(lookahead.ns() > 0);
  canonical_ = true;
  lookahead_ = lookahead;
  exec_request_ = exec;
  for (int i = 1; i < shards; ++i) shards_.push_back(std::make_unique<Shard>(i));
}

void Simulator::require_sequential(const char* reason) {
  UFAB_CHECK_MSG(!(exec_started_ && exec_threads_),
                 "require_sequential() after threaded execution began");
  sequential_only_ = true;
  const std::string label = reason == nullptr ? "unspecified" : reason;
  if (std::find(sequential_reasons_.begin(), sequential_reasons_.end(), label) !=
      sequential_reasons_.end()) {
    return;
  }
  sequential_reasons_.push_back(label);
  // A 1-shard run was never going to use threads; only warn when a requested
  // multi-shard run is actually being downgraded.
  if (shards_.size() > 1) {
    UFAB_LOG_WARN("sim: forcing sequential epoch execution (reason: %s); %d shards will run "
                  "single-threaded",
                  label.c_str(), static_cast<int>(shards_.size()));
  }
}

void Simulator::ensure_exec_started() {
  if (exec_started_) return;
  exec_started_ = true;
  bool threads = shards_.size() > 1;
  switch (exec_request_) {
    case ShardExec::kSequential:
      threads = false;
      break;
    case ShardExec::kThreads:
      break;  // forced, even on a single-CPU host (useful under TSan)
    case ShardExec::kAuto:
      threads = threads && std::thread::hardware_concurrency() > 1;
      break;
  }
  // A sequential requirement wins over a threads request: sequential epochs
  // fire the identical schedule, so correctness is never at stake — only the
  // cross-shard reads (queue sampling, fault plane) that demanded it.
  if (sequential_only_) threads = false;
  exec_threads_ = threads;
  if (!threads) return;
  barrier_ = std::make_unique<EpochBarrier>(static_cast<int>(shards_.size()) - 1);
  workers_.reserve(shards_.size() - 1);
  for (std::size_t i = 1; i < shards_.size(); ++i) {
    workers_.emplace_back([this, i] { worker_main(static_cast<int>(i)); });
  }
}

void Simulator::worker_main(int shard_index) {
  Shard& s = *shards_[static_cast<std::size_t>(shard_index)];
  tls_ = ShardScope::Active{this, &s};
  ufab::tls_shard_index = shard_index;
  std::uint64_t gen = 0;
  if (!barrier_->wait_for_pass(gen)) return;
  while (true) {
    shard_pass(s, pass_boundary_, pass_inclusive_);
    const std::int64_t parked_at = steady_ns();
    const std::int64_t parked_ticks = prof_ != nullptr ? obs::ProfClock::now() : 0;
    barrier_->arrive_done();
    if (!barrier_->wait_for_pass(gen)) return;
    // Written between passes is safe: the coordinator only reads this while
    // workers are parked, ordered through the barrier's mutex.
    s.barrier_wait_ns += steady_ns() - parked_at;
    if (prof_ != nullptr) {
      prof_->slice(shard_index)
          .add(obs::ProfCat::kBarrierWait, obs::ProfClock::now() - parked_ticks);
    }
  }
}

/// Runs one synchronized pass on every shard.  Threaded mode: workers run
/// their own shard while the coordinator (already scoped to shard 0 by the
/// caller) runs shard 0.  Sequential mode: the coordinator runs each shard's
/// pass in index order — byte-identical schedule, no concurrency.
void Simulator::run_pass(TimeNs boundary, bool inclusive) {
  if (exec_threads_) {
    pass_boundary_ = boundary;
    pass_inclusive_ = inclusive;
    barrier_->release(++pass_gen_);
    shard_pass(*shards_.front(), boundary, inclusive);
    if (prof_ != nullptr) {
      // The coordinator's stall is the tail it spends waiting for the
      // slowest worker — the direct read on "does sharding pay".
      const std::int64_t t0 = obs::ProfClock::now();
      barrier_->wait_all_done();
      prof_->slice(0).add(obs::ProfCat::kBarrierWait, obs::ProfClock::now() - t0);
    } else {
      barrier_->wait_all_done();
    }
  } else {
    for (auto& s : shards_) {
      const ShardScope scope = scoped(s->index);
      shard_pass(*s, boundary, inclusive);
    }
  }
}

void Simulator::shard_pass(Shard& s, TimeNs boundary, bool inclusive) {
  if (prof_ != nullptr) {
    shard_pass_profiled(s, boundary, inclusive);
    return;
  }
  while (true) {
    const Event* ev = peek(s);
    if (ev == nullptr) break;
    if (inclusive ? ev->at > boundary : ev->at >= boundary) break;
    pop_and_run(s);
  }
}

/// The profiled dispatch step.  Every event bumps its exact category counts
/// (two plain increments); only every timing_stride-th event pays clock
/// reads — t0 -> peek/migrate/pop -> t1 -> closure -> t2, attributing
/// [t0,t1) to queue_pop and [t1,t2) to the dispatch category — and the
/// export scales sampled ticks back up by count/sampled.  A clock-read pair
/// can cost tens of ns on VMs with slow TSC reads, comparable to the mean
/// event itself, so per-event timing would blow the <= 5% overhead guard.
/// The event sequence is identical to pop_and_run after a successful peek.
void Simulator::pop_and_run_profiled(Shard& s, obs::ProfSlice& sl) {
  obs::Profiler& p = *prof_;
  const bool timed = (sl.strided++ & p.timing_mask()) == 0;
  const std::int64_t t0 = timed ? obs::ProfClock::now() : 0;
  Event ev = s.peeked_overflow ? bucket_pop<true>(s.overflow)
                               : bucket_pop<false>(s.ring[s.cursor & (kNumBuckets - 1)]);
  if (!s.peeked_overflow) --s.ring_size;
  s.now = ev.at;
  ++s.processed;
  const obs::ProfCat dispatch_cat = ev.fn.invokes<DeliverEvent>()
                                        ? obs::ProfCat::kDispatchDeliver
                                        : obs::ProfCat::kDispatchClosure;
  sl.bump(obs::ProfCat::kQueuePop);
  sl.bump(dispatch_cat);
  const std::int64_t t1 = timed ? obs::ProfClock::now() : 0;
  if (canonical_) {
    s.cur_id = event_identity(ev.h, ev.k);
    s.cur_k = 0;
    s.in_event = true;
    ev.fn();
    s.in_event = false;
  } else {
    ev.fn();
  }
  if (timed) {
    const std::int64_t t2 = obs::ProfClock::now();
    sl.add_sampled(obs::ProfCat::kQueuePop, t1 - t0);
    sl.add_sampled(dispatch_cat, t2 - t1);
  }
  // Calendar introspection on a sim-time cadence: pure simulation state, so
  // the sample series is deterministic for a fixed seed and shard count.
  if (s.now.ns() >= p.next_sample_ns(s.index)) {
    p.add_sample(s.index,
                 obs::ProfSample{s.now.ns(), static_cast<std::uint64_t>(s.ring_size),
                                 static_cast<std::uint64_t>(s.overflow.heap.size()),
                                 s.processed, s.outbox.posted_total()});
  }
}

void Simulator::shard_pass_profiled(Shard& s, TimeNs boundary, bool inclusive) {
  obs::Profiler& p = *prof_;
  obs::ProfSlice& sl = p.slice(s.index);
  obs::ProfSlice* const prev_tls = obs::tls_prof_slice;
  if (p.detailed()) obs::tls_prof_slice = &sl;
  while (true) {
    const Event* ev = peek(s);
    if (ev == nullptr) break;
    if (inclusive ? ev->at > boundary : ev->at >= boundary) break;
    pop_and_run_profiled(s, sl);
  }
  obs::tls_prof_slice = prev_tls;
}

void Simulator::run_serial_profiled(Shard& s, TimeNs bound) {
  obs::Profiler& p = *prof_;
  obs::ProfSlice& sl = p.slice(s.index);
  obs::ProfSlice* const prev_tls = obs::tls_prof_slice;
  if (p.detailed()) obs::tls_prof_slice = &sl;
  const std::int64_t loop_start = obs::ProfClock::now();
  while (true) {
    const Event* ev = peek(s);
    if (ev == nullptr || ev->at > bound) break;
    pop_and_run_profiled(s, sl);
  }
  p.add_run_wall(obs::ProfClock::now() - loop_start);
  obs::tls_prof_slice = prev_tls;
}

TimeNs Simulator::earliest_pending() {
  TimeNs earliest = TimeNs::max();
  for (auto& s : shards_) {
    const Event* ev = peek(*s);
    if (ev != nullptr && ev->at < earliest) earliest = ev->at;
  }
  return earliest;
}

void Simulator::set_clocks(TimeNs t) {
  for (auto& s : shards_) {
    if (t > s->now) s->now = t;
  }
}

bool Simulator::outboxes_empty() const {
  for (const auto& s : shards_) {
    if (!s->outbox.empty()) return false;
  }
  return true;
}

/// Drains every outbox in shard-index order and injects the crossings into
/// their destination calendars, cloning each packet into the destination
/// shard's pool (pools are single-shard-owned; the original returns to its
/// source pool here, while every worker is parked).  The clone preserves the
/// packet id, so ACK matching at the sender sees the id it recorded.
/// Returns whether any injected crossing fires at or before `le_mark` — the
/// run_until final-epoch loop uses this to know it must run another
/// inclusive pass.
bool Simulator::inject_crossings(TimeNs le_mark) {
  const std::int64_t inject_t0 = prof_ != nullptr ? obs::ProfClock::now() : 0;
  std::uint64_t injected = 0;
  bool any_le = false;
  for (auto& src : shards_) {
    if (src->outbox.empty()) continue;
    src->outbox.drain_into(inject_scratch_);
    injected += inject_scratch_.size();
    for (Crossing& c : inject_scratch_) {
      Shard& dst = *shards_[static_cast<std::size_t>(c.dst_shard)];
      UFAB_CHECK_MSG(c.at >= dst.now, "cross-shard crossing violates the lookahead bound");
      Packet* raw = dst.pool.take();
      *raw = *c.pkt;
      raw->origin_pool = &dst.pool;
      PacketPtr clone{raw};
      c.pkt.reset();
      if (c.at <= le_mark) any_le = true;
      push(dst, c.at, c.h, c.k, UniqueFunction(DeliverEvent{c.dst, std::move(clone)}));
    }
    inject_scratch_.clear();
  }
  if (prof_ != nullptr) {
    prof_->slice(0).add(obs::ProfCat::kMailboxInject, obs::ProfClock::now() - inject_t0);
    prof_->note_injected(injected);
  }
  return any_le;
}

void Simulator::run_until_sharded(TimeNs t) {
  ensure_exec_started();
  const ShardScope scope = scoped(0);
  const std::int64_t wall_t0 = prof_ != nullptr ? obs::ProfClock::now() : 0;
  while (true) {
    // Between epochs every clock is equal and every outbox is empty.
    const TimeNs clock = shards_.front()->now;
    if (clock >= t) break;
    const TimeNs earliest = earliest_pending();
    if (earliest > t) {
      // Nothing left at or before the horizon (events at exactly t included).
      set_clocks(t);
      break;
    }
    // Fast-forward: idle gaps cost one epoch, not (gap / lookahead) of them.
    const TimeNs base = std::max(clock, earliest);
    if (lookahead_ == TimeNs::max() || t - base <= lookahead_) {
      // Final epoch: process inclusively up to t, then loop — a crossing
      // produced at tau in (t - lookahead, t] can arrive exactly at t and
      // the serial engine would fire it, so keep passing until no injected
      // crossing lands at or before t.  Terminates: second-round events all
      // run at exactly t, and their crossings land strictly after t.
      if (prof_ != nullptr) prof_->note_epoch((t - base).ns());
      run_pass(t, true);
      set_clocks(t);
      while (inject_crossings(t)) run_pass(t, true);
      break;
    }
    const TimeNs boundary = base + lookahead_;
    if (prof_ != nullptr) prof_->note_epoch(lookahead_.ns());
    run_pass(boundary, false);
    set_clocks(boundary);
    (void)inject_crossings(TimeNs{-1});
  }
  if (prof_ != nullptr) prof_->add_run_wall(obs::ProfClock::now() - wall_t0);
}

void Simulator::run_sharded_drain() {
  ensure_exec_started();
  const ShardScope scope = scoped(0);
  const std::int64_t wall_t0 = prof_ != nullptr ? obs::ProfClock::now() : 0;
  while (true) {
    const TimeNs earliest = earliest_pending();
    if (earliest == TimeNs::max()) break;  // outboxes are empty between epochs
    if (lookahead_ == TimeNs::max()) {
      // No cut links: shards are causally independent; one unbounded
      // inclusive pass drains everything and can post no crossings.
      run_pass(TimeNs::max(), true);
      continue;
    }
    const TimeNs boundary = earliest + lookahead_;
    if (prof_ != nullptr) prof_->note_epoch(lookahead_.ns());
    run_pass(boundary, false);
    set_clocks(boundary);
    (void)inject_crossings(TimeNs{-1});
  }
  if (prof_ != nullptr) prof_->add_run_wall(obs::ProfClock::now() - wall_t0);
}

void Simulator::enable_profiling(obs::ProfOptions opts) {
  UFAB_CHECK_MSG(!exec_started_, "enable_profiling after a sharded run started");
  UFAB_CHECK_MSG(prof_ == nullptr, "enable_profiling called twice");
  UFAB_CHECK_MSG(static_cast<int>(shards_.size()) <= obs::Profiler::kMaxShards,
                 "profiler shard capacity out of sync with the engine");
  prof_ = std::make_unique<obs::Profiler>(opts);
}

std::string Simulator::profile_json() const {
  if (prof_ == nullptr) return {};
  obs::ProfContext ctx;
  ctx.shard_count = shard_count();
  ctx.threaded = threaded();
  ctx.lookahead_ns = lookahead_ == TimeNs::max() ? -1 : lookahead_.ns();
  ctx.events_per_shard.reserve(shards_.size());
  ctx.crossings_per_shard.reserve(shards_.size());
  for (const auto& s : shards_) {
    ctx.events_per_shard.push_back(s->processed);
    ctx.crossings_per_shard.push_back(s->outbox.posted_total());
  }
  return prof_->to_json(ctx);
}

}  // namespace ufab::sim

// Simulated host: one NIC uplink plus a pluggable transport stack.
//
// The NIC runs a pull model: when the wire goes idle the stack's scheduler is
// asked for the next admissible packet.  Control packets (ACKs, probes,
// responses, credits) can instead be pushed via `send_control` — the push
// queue is drained before the pull source, giving control traffic strict
// priority as on the paper's SmartNIC.
#pragma once

#include <memory>

#include "src/sim/link.hpp"
#include "src/sim/node.hpp"
#include "src/sim/simulator.hpp"

namespace ufab::sim {

/// The transport stack interface implemented by uFAB-E and all baselines.
class HostStack {
 public:
  virtual ~HostStack() = default;
  /// A packet arrived at this host.
  virtual void on_packet(PacketPtr pkt) = 0;
  /// The NIC is idle: return the next packet to transmit, or nullptr.
  virtual PacketPtr pull() = 0;
};

class Host : public Node {
 public:
  Host(Simulator& sim, NodeId id, HostId hid, std::string name)
      : Node(id, std::move(name)), sim_(sim), host_id_(hid) {}

  void attach_uplink(std::unique_ptr<Link> link);

  void set_stack(HostStack* stack) { stack_ = stack; }
  [[nodiscard]] HostStack* stack() const { return stack_; }

  void receive(PacketPtr pkt) override {
    if (stack_ != nullptr) stack_->on_packet(std::move(pkt));
  }

  /// Pushes a control packet ahead of scheduled data.
  void send_control(PacketPtr pkt) { uplink_->enqueue(std::move(pkt)); }

  /// Tells the NIC new data became admissible.
  void notify_sendable() { uplink_->kick(); }

  [[nodiscard]] Link& nic() { return *uplink_; }
  [[nodiscard]] HostId host_id() const { return host_id_; }

 private:
  Simulator& sim_;
  HostId host_id_;
  HostStack* stack_ = nullptr;
  std::unique_ptr<Link> uplink_;
};

}  // namespace ufab::sim

#include "src/sim/switch.hpp"

#include "src/core/assert.hpp"
#include "src/obs/obs.hpp"

namespace ufab::sim {

namespace {
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}
}  // namespace

std::int32_t Switch::add_port(std::unique_ptr<Link> link) {
  UFAB_CHECK(link != nullptr);
  ports_.push_back(std::move(link));
  processors_.push_back(nullptr);
  return static_cast<std::int32_t>(ports_.size() - 1);
}

void Switch::set_ecmp_ports(HostId dst, std::vector<std::int32_t> ports) {
  const auto idx = static_cast<std::size_t>(dst.value());
  if (ecmp_.size() <= idx) ecmp_.resize(idx + 1);
  ecmp_[idx] = std::move(ports);
  fib_compiled_ = false;  // stale until the next compile_fib()
}

void Switch::compile_fib() {
  fib_direct_.assign(ecmp_.size(), kNoRoute);
  fib_offsets_.assign(1, 0);
  fib_ports_.clear();
  for (std::size_t i = 0; i < ecmp_.size(); ++i) {
    const auto& candidates = ecmp_[i];
    if (candidates.empty()) continue;
    if (candidates.size() == 1) {
      fib_direct_[i] = candidates[0];
      continue;
    }
    fib_direct_[i] = kMultiBase - static_cast<std::int32_t>(fib_offsets_.size() - 1);
    fib_ports_.insert(fib_ports_.end(), candidates.begin(), candidates.end());
    fib_offsets_.push_back(static_cast<std::uint32_t>(fib_ports_.size()));
  }
  fib_compiled_ = true;
}

void Switch::set_egress_processor(std::int32_t port, EgressProcessor* proc) {
  processors_.at(static_cast<std::size_t>(port)) = proc;
}

void Switch::set_obs(obs::Obs* obs) {
  obs_ = obs;
  for (auto& port : ports_) port->set_obs(obs);
}

std::int32_t Switch::select_port(const Packet& pkt) const {
  const auto idx = static_cast<std::size_t>(pkt.dst_host.value());
  if (fib_compiled_) {
    if (idx >= fib_direct_.size()) return kNoRoute;
    const std::int32_t entry = fib_direct_[idx];
    if (entry >= kNoRoute) return entry;  // single egress port, or no route
    const auto row = static_cast<std::size_t>(kMultiBase - entry);
    const std::uint32_t begin = fib_offsets_[row];
    const std::uint32_t count = fib_offsets_[row + 1] - begin;
    // Flow-level ECMP: hash of (VM pair, message) plus this switch's salt.
    const std::uint64_t flow_key = pkt.pair.key() ^ mix64(pkt.message_id);
    const std::uint64_t h = mix64(flow_key ^ hash_salt_);
    return fib_ports_[begin + h % count];
  }
  if (idx >= ecmp_.size() || ecmp_[idx].empty()) return -1;
  const auto& candidates = ecmp_[idx];
  if (candidates.size() == 1) return candidates[0];
  // Flow-level ECMP: hash of (VM pair, message) plus this switch's salt.
  const std::uint64_t flow_key = pkt.pair.key() ^ mix64(pkt.message_id);
  const std::uint64_t h = mix64(flow_key ^ hash_salt_);
  return candidates[h % candidates.size()];
}

void Switch::receive(PacketPtr pkt) {
  std::int32_t out;
  if (!pkt->route.empty()) {
    UFAB_CHECK_MSG(pkt->hop < static_cast<std::int32_t>(pkt->route.size()),
                   "source route exhausted before reaching destination");
    out = pkt->route[static_cast<std::size_t>(pkt->hop)];
    ++pkt->hop;
  } else {
    out = select_port(*pkt);
    if (out < 0) {
      ++no_route_drops_;
      if (obs_ != nullptr && obs_->record_datapath()) {
        obs::TraceEvent ev;
        ev.at = sim_.now();
        ev.kind = obs::EventKind::kDrop;
        ev.detail = static_cast<std::uint8_t>(obs::DropReason::kNoRoute);
        ev.track = obs::Track::switch_port(id(), -1);
        ev.pair = pkt->pair;
        ev.tenant = pkt->tenant;
        ev.seq = pkt->id;
        ev.a = static_cast<double>(pkt->size_bytes);
        obs_->record(ev);
      }
      return;
    }
  }
  Link& link = port(out);
  if (pkt->kind == PacketKind::kProbe || pkt->kind == PacketKind::kFinishProbe) {
    if (EgressProcessor* proc = processors_[static_cast<std::size_t>(out)]) {
      proc->on_probe_egress(*pkt, link, sim_.now());
    }
    // Probe wire size grows as INT accumulates.
    pkt->size_bytes = probe_wire_size(static_cast<std::int32_t>(pkt->telemetry.size()));
  }
  link.enqueue(std::move(pkt));
}

}  // namespace ufab::sim

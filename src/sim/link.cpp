#include "src/sim/link.hpp"

#include <algorithm>
#include <utility>

#include "src/core/assert.hpp"
#include "src/obs/obs.hpp"
#include "src/sim/node.hpp"

namespace ufab::sim {

namespace {
/// Retain enough checkpoints to answer rate queries up to this far back.
constexpr TimeNs kMaxRateWindow{200'000};  // 200 us
}  // namespace

void FusedLinkDeliver::operator()() { link->fire_head(epoch); }

Link::Link(Simulator& sim, LinkId id, std::string name, Node* dst, LinkConfig cfg)
    : sim_(sim), id_(id), name_(std::move(name)), dst_(dst), cfg_(cfg) {
  UFAB_CHECK(dst_ != nullptr);
  UFAB_CHECK(cfg_.capacity.bits_per_sec() > 0.0);
}

void Link::record_drop(const Packet& pkt, obs::DropReason reason) {
  if (obs_ == nullptr || !obs_->record_datapath()) return;
  obs::TraceEvent ev;
  ev.at = sim_.now();
  ev.kind = obs::EventKind::kDrop;
  ev.detail = static_cast<std::uint8_t>(reason);
  ev.track = obs::Track::link(id_);
  ev.pair = pkt.pair;
  ev.tenant = pkt.tenant;
  ev.link = id_;
  ev.seq = pkt.id;
  ev.a = static_cast<double>(pkt.size_bytes);
  obs_->record(ev);
}

bool Link::admit(Packet& pkt) {
  if (queue_bytes_ + pkt.size_bytes > cfg_.queue_limit_bytes) {
    ++drops_;
    record_drop(pkt, obs::DropReason::kTailDrop);
    return false;  // tail drop
  }
  if (cfg_.ecn_threshold_bytes >= 0 && pkt.ecn_capable &&
      queue_bytes_ > cfg_.ecn_threshold_bytes) {
    pkt.ecn_ce = true;
    if (obs_ != nullptr && obs_->record_datapath()) {
      obs::TraceEvent ev;
      ev.at = sim_.now();
      ev.kind = obs::EventKind::kEcnMark;
      ev.track = obs::Track::link(id_);
      ev.pair = pkt.pair;
      ev.tenant = pkt.tenant;
      ev.link = id_;
      ev.seq = pkt.id;
      ev.a = static_cast<double>(queue_bytes_);
      obs_->record(ev);
    }
  }
  return true;
}

void Link::enqueue(PacketPtr pkt) {
  UFAB_CHECK(pkt != nullptr);
  if (down_) {
    ++drops_;
    record_drop(*pkt, obs::DropReason::kLinkDown);
    return;
  }
  if (use_fused()) {
    enqueue_fused(std::move(pkt));
    return;
  }
  if (!admit(*pkt)) return;
  queue_bytes_ += pkt->size_bytes;
  max_queue_bytes_ = std::max(max_queue_bytes_, queue_bytes_);
  queue_.push_back(std::move(pkt));
  if (!busy_) start_next();
}

void Link::enqueue_fused(PacketPtr pkt) {
  // Catch everything the legacy engine would already have done by now, so the
  // admission checks below see exactly the state legacy enqueue() would.
  advance();
  UFAB_CHECK(!busy_ && !in_flight_);  // legacy serializer must never be active
  if (home_ == nullptr) home_ = sim_.active_shard_handle();
  UFAB_CHECK_MSG(home_ == sim_.active_shard_handle(),
                 "fused link committed from a foreign shard");
  if (!admit(*pkt)) return;

  const std::int32_t bytes = pkt->size_bytes;
  // Commit the packet's serialization interval eagerly.  Idle serializer:
  // it starts now, and its virtual serializer-end event consumes the exact
  // child-key slot legacy start_next()'s after() call would have.  Busy:
  // it starts when its predecessor's serialization ends, and its virtual
  // event is the predecessor event's second child (the first child is the
  // predecessor's own delivery) — the slot legacy's chained start_next()
  // would have consumed.
  const bool idle = (mat_ == pipe_.size());
  PipeEntry e;
  e.bytes = bytes;
  e.in_queue = !idle;
  if (idle) {
    const Simulator::ChildKey key = sim_.alloc_child_key();
    e.h = key.h;
    e.k = key.k;
    e.ser_end = sim_.now() + cfg_.capacity.tx_time(bytes);
  } else {
    const PipeEntry& prev = pipe_.back();
    e.h = Simulator::event_identity(prev.h, prev.k);
    e.k = 1;
    e.ser_end = prev.ser_end + cfg_.capacity.tx_time(bytes);
  }
  // Legacy enqueue() adds the packet to the queue before start_next() pulls
  // it back out, so max_queue_bytes_ observes the transient even on an idle
  // link; queue_bytes_ itself only grows when the packet actually waits.
  max_queue_bytes_ = std::max(max_queue_bytes_, queue_bytes_ + bytes);
  if (!idle) queue_bytes_ += bytes;

  // The delivery at the peer is the virtual serializer-end event's first
  // child: raw key (event_identity(h, k), 0), byte-identical to the key the
  // legacy DeliverEvent / crossing would carry.
  const std::uint64_t id_f = Simulator::event_identity(e.h, e.k);
  const TimeNs deliver_at = e.ser_end + cfg_.prop_delay;
  if (cross_shard_dst_ >= 0) {
    // Cut link: post the crossing eagerly so the hop still costs one event
    // on every partition (event counts are compared bit-exactly across shard
    // counts).  The crossing's arrival is >= the first epoch boundary after
    // this commit (prop_delay >= lookahead for cut links), so posting early
    // never outruns the conservative window protocol.
    sim_.post_cross_keyed(cross_shard_dst_, deliver_at, dst_, std::move(pkt), id_f, 0);
    pipe_.push_back(std::move(e));
  } else {
    e.pkt = std::move(pkt);
    pipe_.push_back(std::move(e));
    if (pipe_.size() == 1) {
      // Head of an idle pipe: arm the single resident calendar event.
      sim_.at_keyed(deliver_at, id_f, 0, FusedLinkDeliver{this, epoch_});
    }
  }
  check_pipe_order();
}

void Link::advance() const {
  // Replay, in order, every virtual serializer-end milestone whose (time,
  // key) the executing shard has passed — i.e. every milestone the legacy
  // engine would already have run as a real calendar event.  Each replay
  // performs exactly the state updates legacy finish_transmit()/start_next()
  // performed at that instant: cumulative TX bytes, a rate checkpoint
  // (trimmed with the milestone's own timestamp as "now"), and the
  // successor's dequeue.
  while (mat_ < pipe_.size()) {
    const PipeEntry& e = pipe_[mat_];
    if (!sim_.key_fired(home_, e.ser_end, e.h, e.k)) break;
    tx_bytes_cum_ += e.bytes;
    checkpoints_.push_back({e.ser_end, tx_bytes_cum_});
    while (checkpoints_.size() > 2 &&
           e.ser_end - checkpoints_.front().first > kMaxRateWindow) {
      checkpoints_.pop_front();
    }
    if (mat_ + 1 < pipe_.size()) {
      PipeEntry& next = pipe_[mat_ + 1];
      if (next.in_queue) {
        next.in_queue = false;
        queue_bytes_ -= next.bytes;
      }
    }
    ++mat_;
  }
  if (cross_shard_dst_ >= 0) {
    // Cut links have no local delivery: a materialized entry's packet is
    // already traveling in the mailbox, so the entry is fully retired.
    while (mat_ > 0) {
      pipe_.pop_front();
      --mat_;
    }
  }
}

void Link::fire_head(std::uint64_t epoch) {
  if (epoch != epoch_) return;  // pipeline aborted by set_down
  advance();
  // The head's serialization milestone precedes its delivery by prop_delay
  // > 0, so by the time this event runs it must have been replayed.
  UFAB_CHECK(mat_ > 0);
  PipeEntry head = std::move(pipe_.front());
  pipe_.pop_front();
  --mat_;
  UFAB_CHECK(head.pkt != nullptr);
  if (!pipe_.empty()) {
    // Re-arm for the next in-flight packet before delivering: receive() can
    // re-enter this link, and the pipe must look consistent when it does.
    const PipeEntry& next = pipe_.front();
    sim_.at_keyed(next.ser_end + cfg_.prop_delay,
                  Simulator::event_identity(next.h, next.k), 0,
                  FusedLinkDeliver{this, epoch_});
  }
  check_pipe_order();
  dst_->receive(std::move(head.pkt));
}

void Link::check_pipe_order() const {
#ifndef NDEBUG
  // The fused pipe must be a FIFO in serialization time: entries are
  // committed in arrival order and ser_end is nondecreasing front to back.
  // A violation would mean the fused engine could deliver out of order.
  for (std::size_t i = 1; i < pipe_.size(); ++i) {
    UFAB_CHECK_MSG(!(pipe_[i].ser_end < pipe_[i - 1].ser_end),
                   "fused link pipe reordered");
  }
  UFAB_CHECK(mat_ <= pipe_.size());
#endif
}

void Link::kick() {
  if (!busy_ && !down_) start_next();
}

void Link::set_down(bool down) {
  if (down_ == down) return;
  down_ = down;
  if (down_) {
    advance();
    drops_ += static_cast<std::int64_t>(queue_.size());
    queue_.clear();
    if (mat_ < pipe_.size()) {
      // Drop the fused entries that are not yet on the wire: in legacy terms
      // the suffix [mat_+1, size) is the queue and entry mat_ is in flight.
      // Packets already past their serializer-end (entries [0, mat_)) are
      // propagating and still deliver, exactly like legacy DeliverEvents.
      UFAB_CHECK_MSG(cross_shard_dst_ < 0,
                     "set_down on a fused cut link: its crossings were posted "
                     "at commit time and cannot be recalled — pin_legacy() "
                     "flapped cut links");
      const std::size_t sz = pipe_.size();
      drops_ += static_cast<std::int64_t>(sz - mat_);
      // Destroy in legacy order: queued packets front to back, then the
      // in-flight one (packet-pool free order feeds later allocations).
      for (std::size_t i = mat_ + 1; i < sz; ++i) pipe_[i].pkt.reset();
      pipe_[mat_].pkt.reset();
      while (pipe_.size() > mat_) pipe_.pop_back();
      if (mat_ == 0) {
        // The resident head event pointed at a dropped entry; neutralize it.
        ++epoch_;
      }
      check_pipe_order();
    }
    queue_bytes_ = 0;
    if (in_flight_) {
      // Abort the in-flight serialization: drop the packet, free the
      // serializer, and bump the epoch so the already-scheduled completion
      // event becomes a no-op. Leaving busy_ set here would make kick()
      // after a fast re-enable a no-op until the stale event fired.
      in_flight_.reset();
      ++drops_;
      ++epoch_;
      busy_ = false;
    }
  } else {
    kick();
  }
}

void Link::start_next() {
  UFAB_CHECK(!busy_);
  // Claim the serializer before running the pull callback: source_() can
  // re-enter enqueue() on this same link (e.g. the transport's probe cadence
  // fires while the NIC asks for the next data packet), and a nested
  // start_next() would put that packet in flight only for the assignment
  // below to overwrite — and silently destroy — it.
  busy_ = true;
  PacketPtr pkt;
  if (!queue_.empty()) {
    pkt = std::move(queue_.front());
    queue_.pop_front();
    queue_bytes_ -= pkt->size_bytes;
  } else if (source_) {
    pkt = source_();
    if (!pkt && !queue_.empty()) {
      // A re-entrant enqueue during the pull queued a packet; serialize it
      // now rather than leaving it stranded until the next kick.
      pkt = std::move(queue_.front());
      queue_.pop_front();
      queue_bytes_ -= pkt->size_bytes;
    }
  }
  if (!pkt) {
    busy_ = false;
    return;  // idle
  }
  const std::int32_t bytes = pkt->size_bytes;
  in_flight_ = std::move(pkt);
  sim_.after(cfg_.capacity.tx_time(bytes),
             [this, bytes, epoch = epoch_] { finish_transmit(bytes, epoch); });
}

void Link::finish_transmit(std::int32_t bytes, std::uint64_t epoch) {
  if (epoch != epoch_) return;  // serialization aborted by set_down
  busy_ = false;
  if (in_flight_) {
    tx_bytes_cum_ += bytes;
    checkpoints_.push_back({sim_.now(), tx_bytes_cum_});
    while (checkpoints_.size() > 2 &&
           sim_.now() - checkpoints_.front().first > kMaxRateWindow) {
      checkpoints_.pop_front();
    }
    PacketPtr pkt = std::move(in_flight_);
    if (fault_filter_ && fault_filter_(*pkt)) {
      // Lost on the wire (fault injection): link time was consumed but the
      // packet never reaches the peer.
      ++fault_drops_;
      record_drop(*pkt, obs::DropReason::kWireFault);
    } else if (cross_shard_dst_ >= 0) {
      // The peer lives on another engine shard: hand the packet to the
      // cross-shard mailbox with the exact arrival time and ordering key the
      // local after() call would have produced (post_cross consumes the same
      // child slot), so the merged schedule is partition-independent.
      sim_.post_cross(cross_shard_dst_, sim_.now() + cfg_.prop_delay, dst_, std::move(pkt));
    } else {
      // Hand the packet to the propagation stage; delivery is a future event
      // that owns the packet (freed with the queue if the run is cut short).
      sim_.after(cfg_.prop_delay, DeliverEvent{dst_, std::move(pkt)});
    }
  }
  if (!down_) start_next();
}

Bandwidth Link::tx_rate(TimeNs window) const {
  advance();
  if (checkpoints_.empty()) return Bandwidth::zero();
  const TimeNs now = sim_.now();
  const TimeNs cutoff = now - window;
  // Find the most recent checkpoint at or before the cutoff.
  std::int64_t base_bytes = 0;
  TimeNs base_time = TimeNs::zero();
  bool found = false;
  for (std::size_t i = checkpoints_.size(); i-- > 0;) {
    const auto& cp = checkpoints_[i];
    if (cp.first <= cutoff) {
      base_bytes = cp.second;
      base_time = cp.first;
      found = true;
      break;
    }
  }
  if (!found) {
    base_time = checkpoints_.front().first;
    base_bytes = checkpoints_.front().second - 0;
    // Use the oldest checkpoint; subtract its own packet to avoid inflating.
  }
  const TimeNs span = now - base_time;
  if (span.ns() <= 0) return Bandwidth::zero();
  const std::int64_t bytes = tx_bytes_cum_ - base_bytes;
  return Bandwidth::bps(static_cast<double>(bytes) * 8e9 / static_cast<double>(span.ns()));
}

}  // namespace ufab::sim

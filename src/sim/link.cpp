#include "src/sim/link.hpp"

#include <utility>

#include "src/core/assert.hpp"
#include "src/obs/obs.hpp"
#include "src/sim/node.hpp"

namespace ufab::sim {

namespace {
/// Retain enough checkpoints to answer rate queries up to this far back.
constexpr TimeNs kMaxRateWindow{200'000};  // 200 us
}  // namespace

Link::Link(Simulator& sim, LinkId id, std::string name, Node* dst, LinkConfig cfg)
    : sim_(sim), id_(id), name_(std::move(name)), dst_(dst), cfg_(cfg) {
  UFAB_CHECK(dst_ != nullptr);
  UFAB_CHECK(cfg_.capacity.bits_per_sec() > 0.0);
}

void Link::record_drop(const Packet& pkt, obs::DropReason reason) {
  if (obs_ == nullptr || !obs_->record_datapath()) return;
  obs::TraceEvent ev;
  ev.at = sim_.now();
  ev.kind = obs::EventKind::kDrop;
  ev.detail = static_cast<std::uint8_t>(reason);
  ev.track = obs::Track::link(id_);
  ev.pair = pkt.pair;
  ev.tenant = pkt.tenant;
  ev.link = id_;
  ev.seq = pkt.id;
  ev.a = static_cast<double>(pkt.size_bytes);
  obs_->record(ev);
}

void Link::enqueue(PacketPtr pkt) {
  UFAB_CHECK(pkt != nullptr);
  if (down_) {
    ++drops_;
    record_drop(*pkt, obs::DropReason::kLinkDown);
    return;
  }
  if (queue_bytes_ + pkt->size_bytes > cfg_.queue_limit_bytes) {
    ++drops_;
    record_drop(*pkt, obs::DropReason::kTailDrop);
    return;  // tail drop
  }
  if (cfg_.ecn_threshold_bytes >= 0 && pkt->ecn_capable &&
      queue_bytes_ > cfg_.ecn_threshold_bytes) {
    pkt->ecn_ce = true;
    if (obs_ != nullptr && obs_->record_datapath()) {
      obs::TraceEvent ev;
      ev.at = sim_.now();
      ev.kind = obs::EventKind::kEcnMark;
      ev.track = obs::Track::link(id_);
      ev.pair = pkt->pair;
      ev.tenant = pkt->tenant;
      ev.link = id_;
      ev.seq = pkt->id;
      ev.a = static_cast<double>(queue_bytes_);
      obs_->record(ev);
    }
  }
  queue_bytes_ += pkt->size_bytes;
  max_queue_bytes_ = std::max(max_queue_bytes_, queue_bytes_);
  queue_.push_back(std::move(pkt));
  if (!busy_) start_next();
}

void Link::kick() {
  if (!busy_ && !down_) start_next();
}

void Link::set_down(bool down) {
  if (down_ == down) return;
  down_ = down;
  if (down_) {
    drops_ += static_cast<std::int64_t>(queue_.size());
    queue_.clear();
    queue_bytes_ = 0;
    if (in_flight_) {
      // Abort the in-flight serialization: drop the packet, free the
      // serializer, and bump the epoch so the already-scheduled completion
      // event becomes a no-op. Leaving busy_ set here would make kick()
      // after a fast re-enable a no-op until the stale event fired.
      in_flight_.reset();
      ++drops_;
      ++epoch_;
      busy_ = false;
    }
  } else {
    kick();
  }
}

void Link::start_next() {
  UFAB_CHECK(!busy_);
  // Claim the serializer before running the pull callback: source_() can
  // re-enter enqueue() on this same link (e.g. the transport's probe cadence
  // fires while the NIC asks for the next data packet), and a nested
  // start_next() would put that packet in flight only for the assignment
  // below to overwrite — and silently destroy — it.
  busy_ = true;
  PacketPtr pkt;
  if (!queue_.empty()) {
    pkt = std::move(queue_.front());
    queue_.pop_front();
    queue_bytes_ -= pkt->size_bytes;
  } else if (source_) {
    pkt = source_();
    if (!pkt && !queue_.empty()) {
      // A re-entrant enqueue during the pull queued a packet; serialize it
      // now rather than leaving it stranded until the next kick.
      pkt = std::move(queue_.front());
      queue_.pop_front();
      queue_bytes_ -= pkt->size_bytes;
    }
  }
  if (!pkt) {
    busy_ = false;
    return;  // idle
  }
  const std::int32_t bytes = pkt->size_bytes;
  in_flight_ = std::move(pkt);
  sim_.after(cfg_.capacity.tx_time(bytes),
             [this, bytes, epoch = epoch_] { finish_transmit(bytes, epoch); });
}

void Link::finish_transmit(std::int32_t bytes, std::uint64_t epoch) {
  if (epoch != epoch_) return;  // serialization aborted by set_down
  busy_ = false;
  if (in_flight_) {
    tx_bytes_cum_ += bytes;
    checkpoints_.push_back({sim_.now(), tx_bytes_cum_});
    while (checkpoints_.size() > 2 &&
           sim_.now() - checkpoints_.front().first > kMaxRateWindow) {
      checkpoints_.pop_front();
    }
    PacketPtr pkt = std::move(in_flight_);
    if (fault_filter_ && fault_filter_(*pkt)) {
      // Lost on the wire (fault injection): link time was consumed but the
      // packet never reaches the peer.
      ++fault_drops_;
      record_drop(*pkt, obs::DropReason::kWireFault);
    } else if (cross_shard_dst_ >= 0) {
      // The peer lives on another engine shard: hand the packet to the
      // cross-shard mailbox with the exact arrival time and ordering key the
      // local after() call would have produced (post_cross consumes the same
      // child slot), so the merged schedule is partition-independent.
      sim_.post_cross(cross_shard_dst_, sim_.now() + cfg_.prop_delay, dst_, std::move(pkt));
    } else {
      // Hand the packet to the propagation stage; delivery is a future event
      // that owns the packet (freed with the queue if the run is cut short).
      sim_.after(cfg_.prop_delay, DeliverEvent{dst_, std::move(pkt)});
    }
  }
  if (!down_) start_next();
}

Bandwidth Link::tx_rate(TimeNs window) const {
  if (checkpoints_.empty()) return Bandwidth::zero();
  const TimeNs now = sim_.now();
  const TimeNs cutoff = now - window;
  // Find the most recent checkpoint at or before the cutoff.
  std::int64_t base_bytes = 0;
  TimeNs base_time = TimeNs::zero();
  bool found = false;
  for (std::size_t i = checkpoints_.size(); i-- > 0;) {
    const auto& cp = checkpoints_[i];
    if (cp.first <= cutoff) {
      base_bytes = cp.second;
      base_time = cp.first;
      found = true;
      break;
    }
  }
  if (!found) {
    base_time = checkpoints_.front().first;
    base_bytes = checkpoints_.front().second - 0;
    // Use the oldest checkpoint; subtract its own packet to avoid inflating.
  }
  const TimeNs span = now - base_time;
  if (span.ns() <= 0) return Bandwidth::zero();
  const std::int64_t bytes = tx_bytes_cum_ - base_bytes;
  return Bandwidth::bps(static_cast<double>(bytes) * 8e9 / static_cast<double>(span.ns()));
}

}  // namespace ufab::sim

// Simulated switch: source-routed or ECMP forwarding plus egress hooks.
//
// The switch owns one Link per port. Forwarding consults the packet's source
// route when present (uFAB and Clove pin paths at the edge), otherwise the
// per-destination ECMP table with a configurable hash salt — sharing one salt
// across tiers reproduces the hash-polarization pathology of Figure 3.
//
// Egress processors are the attachment point for uFAB-C: a processor sees
// every probe just before it enters the egress FIFO, at which point it can
// update its registers and append INT.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "src/sim/link.hpp"
#include "src/sim/node.hpp"
#include "src/sim/simulator.hpp"

namespace ufab::sim {

/// Interface implemented by uFAB-C (telemetry::CoreAgent).
class EgressProcessor {
 public:
  virtual ~EgressProcessor() = default;
  /// Invoked for probe-family packets just before enqueue on `link`.
  virtual void on_probe_egress(Packet& pkt, Link& link, TimeNs now) = 0;
};

class Switch : public Node {
 public:
  Switch(Simulator& sim, NodeId id, std::string name)
      : Node(id, std::move(name)), sim_(sim) {}

  /// Adds an egress link; returns the port index.
  std::int32_t add_port(std::unique_ptr<Link> link);

  void receive(PacketPtr pkt) override;

  /// Installs the ECMP candidate ports toward a destination host.
  void set_ecmp_ports(HostId dst, std::vector<std::int32_t> ports);

  /// Compiles the ECMP tables into a flat FIB: one dense host->entry array
  /// where the common single-path entry is the port itself and multi-path
  /// entries index a CSR candidate pool.  Steady-state forwarding becomes a
  /// single array load instead of a nested-vector walk.  Called by
  /// Network::finalize(); installing new ECMP ports afterwards falls back to
  /// the uncompiled table until the next compile.  Selection is unchanged:
  /// the same hash over the same candidate order, with the salt read at
  /// lookup time so set_hash_polarization() still applies.
  void compile_fib();

  /// Hash salt for ECMP; distinct per switch unless polarization is modeled.
  void set_hash_salt(std::uint64_t salt) { hash_salt_ = salt; }

  void set_egress_processor(std::int32_t port, EgressProcessor* proc);

  /// The forwarding decision alone (source route or FIB), without the egress
  /// side effects — benchmark/test hook for the lookup path.
  [[nodiscard]] std::int32_t forwarding_port(const Packet& pkt) const { return select_port(pkt); }

  [[nodiscard]] Link& port(std::int32_t idx) { return *ports_.at(static_cast<std::size_t>(idx)); }
  [[nodiscard]] std::int32_t port_count() const { return static_cast<std::int32_t>(ports_.size()); }
  [[nodiscard]] std::int64_t no_route_drops() const { return no_route_drops_; }

  /// Attaches the observability context to the switch and all its ports.
  void set_obs(obs::Obs* obs);

 private:
  [[nodiscard]] std::int32_t select_port(const Packet& pkt) const;

  Simulator& sim_;
  std::vector<std::unique_ptr<Link>> ports_;
  std::vector<EgressProcessor*> processors_;
  std::vector<std::vector<std::int32_t>> ecmp_;  // indexed by dst HostId
  /// Flat FIB (compile_fib).  fib_direct_[dst] >= 0 is the single egress
  /// port; kNoRoute means unreachable; <= kMultiBase encodes a candidate set
  /// at CSR row (kMultiBase - value) in fib_offsets_/fib_ports_.
  static constexpr std::int32_t kNoRoute = -1;
  static constexpr std::int32_t kMultiBase = -2;
  bool fib_compiled_ = false;
  std::vector<std::int32_t> fib_direct_;
  std::vector<std::uint32_t> fib_offsets_;
  std::vector<std::int32_t> fib_ports_;
  std::uint64_t hash_salt_ = 0;
  std::int64_t no_route_drops_ = 0;
  obs::Obs* obs_ = nullptr;
};

}  // namespace ufab::sim

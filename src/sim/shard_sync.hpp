// Synchronization primitives for the sharded engine.
//
// ShardMailbox is the cross-shard handoff buffer: the owning shard appends
// crossings while its event pass runs (single writer, no locking — passes
// never overlap with drains), and the coordinator drains it between passes in
// shard-index order, which is what makes cross-shard injection a fixed total
// order.  EpochBarrier parks the worker threads between passes: the
// coordinator publishes a pass generation, workers run their shard's pass and
// report back, and the coordinator proceeds only when every worker is done.
// Both are benchmarked in bench/micro_datastructures.cpp (BM_ShardMailbox,
// BM_EpochBarrier).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <utility>
#include <vector>

namespace ufab::sim {

/// Single-writer append buffer with coordinator-side drain.  The writer is
/// the shard that owns the mailbox (during its pass); drains happen at epoch
/// barriers while every worker is parked, so no operation ever races.
template <typename T>
class ShardMailbox {
 public:
  void post(T v) {
    box_.push_back(std::move(v));
    ++posted_;
  }

  /// Moves the buffered entries into `out` (cleared first) and leaves the
  /// mailbox empty.  Swapping keeps both vectors' capacity, so steady-state
  /// epochs allocate nothing.
  void drain_into(std::vector<T>& out) {
    if (box_.size() > max_batch_) max_batch_ = box_.size();
    ++drains_;
    out.clear();
    std::swap(out, box_);
  }

  [[nodiscard]] bool empty() const { return box_.empty(); }
  [[nodiscard]] std::size_t size() const { return box_.size(); }
  /// Entries ever posted (the mailbox-crossings counter for obs).
  [[nodiscard]] std::uint64_t posted_total() const { return posted_; }
  /// Times the coordinator drained this mailbox (== non-skipped epochs).
  [[nodiscard]] std::uint64_t drains() const { return drains_; }
  /// High-water mark of entries handed over in one drain — the per-epoch
  /// cross-shard traffic gauge the profiler exports.
  [[nodiscard]] std::size_t max_drain_batch() const { return max_batch_; }

 private:
  std::vector<T> box_;
  std::uint64_t posted_ = 0;
  std::uint64_t drains_ = 0;
  std::size_t max_batch_ = 0;
};

/// Two-phase barrier between the coordinator and the shard workers.
///
/// Coordinator: release(gen) -> run its own shard's pass -> wait_all_done().
/// Worker: wait_for_pass(gen) -> run its shard's pass -> arrive_done().
/// shutdown() wakes every worker with a stop signal (wait_for_pass returns
/// false) so threads can be joined.
class EpochBarrier {
 public:
  explicit EpochBarrier(int workers) : workers_(workers) {}

  // --- coordinator side ---
  void release(std::uint64_t gen) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      gen_ = gen;
      done_ = 0;
    }
    cv_start_.notify_all();
  }

  void wait_all_done() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_done_.wait(lock, [this] { return done_ == workers_; });
  }

  void shutdown() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_start_.notify_all();
  }

  // --- worker side ---
  /// Blocks until a pass newer than `last_gen` is released (updates
  /// `last_gen` and returns true) or shutdown is requested (returns false).
  [[nodiscard]] bool wait_for_pass(std::uint64_t& last_gen) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_start_.wait(lock, [&] { return stop_ || gen_ != last_gen; });
    if (stop_) return false;
    last_gen = gen_;
    return true;
  }

  void arrive_done() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++done_;
    }
    cv_done_.notify_one();
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  int workers_;
  int done_ = 0;
  std::uint64_t gen_ = 0;
  bool stop_ = false;
};

}  // namespace ufab::sim

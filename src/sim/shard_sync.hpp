// Synchronization primitives for the sharded engine.
//
// ShardMailbox is the cross-shard handoff channel: a single-producer /
// single-consumer queue of fixed-size chunks with *batched* publication.  The
// writer (the source shard, during its pass) appends entries into chunk
// arrays with plain stores and makes a whole batch visible with ONE
// release-store of the published count (`flush()`); the reader (the
// destination shard, at a window boundary) acquires that count once and
// drains every published entry.  That amortizes the cross-core cache-line
// traffic of the old per-entry vector to one line per 64 entries plus one
// atomic per batch — the "cache-line-friendly chunks with a single size/flag
// publish" design from DESIGN.md §12.  Between coordinator barriers the
// usual quiesced-owner discipline applies, so the coordinator may also act
// as reader or writer while workers are parked.
//
// ShardClockSlot is the per-shard published simulation clock that lets
// shards self-synchronize at window boundaries *inside* an epoch without a
// condvar barrier: a shard flushes its mailboxes, release-publishes its
// clock, then spin-waits (with yields) until every peer's clock reaches the
// boundary.  Acquiring a peer's clock therefore also acquires everything the
// peer flushed before publishing it — the message-passing pattern the
// windowed pass relies on (DESIGN.md §12).
//
// EpochBarrier parks the worker threads between epochs (multi-window
// passes): the coordinator publishes a pass generation, workers run their
// shard's windows and report back, and the coordinator proceeds only when
// every worker is done.  All three are benchmarked in
// bench/micro_datastructures.cpp (BM_ShardMailbox, BM_MailboxBatch,
// BM_EpochBarrier).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "src/core/assert.hpp"

namespace ufab::sim {

/// Single-producer / single-consumer chunked channel with batch publication.
///
/// Roles (enforced by the engine's pass structure, not by the type):
///   * writer — post() any number of entries, then flush() once per batch;
///   * reader — drain() everything published so far;
///   * coordinator (both sides quiesced at a barrier) — may call any method,
///     including maybe_reset(), which rewinds the monotone positions so the
///     chunk index never overflows on long runs.
///
/// Entry positions grow monotonically; chunk `p / kChunkItems` holds
/// position p.  Chunk storage is allocated on first touch and retained
/// across resets, so steady-state epochs allocate nothing.
template <typename T>
class ShardMailbox {
 public:
  static constexpr std::size_t kChunkItems = 64;   ///< One batch cache block.
  static constexpr std::size_t kMaxChunks = 512;   ///< 32768 in-flight entries.

  ShardMailbox() : chunks_(kMaxChunks, nullptr) {}
  ShardMailbox(const ShardMailbox&) = delete;
  ShardMailbox& operator=(const ShardMailbox&) = delete;
  ~ShardMailbox() {
    for (Chunk* c : chunks_) delete c;
  }

  // --- writer side ---

  void post(T v) {
    const std::uint64_t pos = tail_;
    UFAB_CHECK_MSG(pos - head_ < kChunkItems * kMaxChunks,
                   "shard mailbox overflow: one pass posted too many crossings");
    Chunk*& slot = chunks_[(pos / kChunkItems) % kMaxChunks];
    if (slot == nullptr) slot = new Chunk();
    slot->items[pos % kChunkItems] = std::move(v);
    tail_ = pos + 1;
    ++posted_;
  }

  /// Publishes every entry posted since the last flush with a single
  /// release-store.  No-op (and not counted) when nothing new was posted.
  void flush() {
    if (published_.load(std::memory_order_relaxed) == tail_) return;
    published_.store(tail_, std::memory_order_release);
    ++flushes_;
  }

  // --- reader side ---

  /// Consumes every published entry in post order, invoking `fn(T&&)` on
  /// each.  Returns the batch size (0 when nothing was published).
  template <typename Fn>
  std::size_t drain(Fn&& fn) {
    const std::uint64_t avail = published_.load(std::memory_order_acquire);
    if (avail == head_) return 0;
    const auto batch = static_cast<std::size_t>(avail - head_);
    for (std::uint64_t pos = head_; pos < avail; ++pos) {
      fn(std::move(chunks_[(pos / kChunkItems) % kMaxChunks]->items[pos % kChunkItems]));
    }
    head_ = avail;
    ++drains_;
    if (batch > max_batch_) max_batch_ = batch;
    return batch;
  }

  // --- coordinator side (both roles quiesced) ---

  /// True when every posted entry has been drained.  Only meaningful while
  /// both sides are quiesced (between passes).
  [[nodiscard]] bool quiesced_empty() const { return head_ == tail_; }

  /// Rewinds the monotone positions once they near the chunk-index wrap, so
  /// arbitrarily long runs never overflow.  Requires an empty channel.
  void maybe_reset() {
    if (tail_ < kChunkItems * (kMaxChunks / 2)) return;
    UFAB_CHECK(head_ == tail_);
    head_ = tail_ = 0;
    published_.store(0, std::memory_order_relaxed);
  }

  // --- stats (read quiesced) ---
  [[nodiscard]] std::uint64_t posted_total() const { return posted_; }
  /// Batches published (one release-store each).
  [[nodiscard]] std::uint64_t flushes() const { return flushes_; }
  /// Non-empty drains (== injection batches the reader absorbed).
  [[nodiscard]] std::uint64_t drains() const { return drains_; }
  /// High-water mark of entries handed over in one drain — the per-boundary
  /// cross-shard traffic gauge the profiler exports.
  [[nodiscard]] std::size_t max_drain_batch() const { return max_batch_; }
  /// Entries posted but not yet drained (quiesced read; pending() uses it).
  [[nodiscard]] std::size_t size() const { return static_cast<std::size_t>(tail_ - head_); }

 private:
  struct Chunk {
    T items[kChunkItems];
  };

  std::vector<Chunk*> chunks_;  ///< Fixed slot table; entries allocated lazily.

  // Writer-owned.
  std::uint64_t tail_ = 0;    ///< Next position to post.
  std::uint64_t posted_ = 0;
  std::uint64_t flushes_ = 0;

  /// The batch publication point: item writes (and chunk-pointer stores)
  /// happen-before this release-store; the reader's acquire-load pairs with
  /// it.  The only cross-thread traffic the channel generates per batch.
  std::atomic<std::uint64_t> published_{0};

  // Reader-owned.
  std::uint64_t head_ = 0;    ///< Next position to drain.
  std::uint64_t drains_ = 0;
  std::size_t max_batch_ = 0;
};

/// One shard's published simulation clock, cache-line isolated so the spin
/// loops of the windowed pass never false-share.  Publishing with release
/// after flushing mailboxes makes every pre-publish flush visible to any
/// thread that acquires a clock value at or past the boundary.
struct alignas(64) ShardClockSlot {
  std::atomic<std::int64_t> ns{0};

  void publish(std::int64_t t) { ns.store(t, std::memory_order_release); }
  [[nodiscard]] std::int64_t read() const { return ns.load(std::memory_order_acquire); }

  /// Spin-waits (pausing/yielding) until the clock reaches `target`.
  /// Returns the number of spin iterations (0 = peer was already there).
  std::uint64_t await(std::int64_t target) const {
    std::uint64_t spins = 0;
    while (read() < target) {
      ++spins;
      if ((spins & 63u) == 0) {
        std::this_thread::yield();  // single-CPU hosts: let the peer run
      }
    }
    return spins;
  }
};

/// Two-phase barrier between the coordinator and the shard workers.
///
/// Coordinator: release(gen) -> run its own shard's pass -> wait_all_done().
/// Worker: wait_for_pass(gen) -> run its shard's pass -> arrive_done().
/// shutdown() wakes every worker with a stop signal (wait_for_pass returns
/// false) so threads can be joined.
class EpochBarrier {
 public:
  explicit EpochBarrier(int workers) : workers_(workers) {}

  // --- coordinator side ---
  void release(std::uint64_t gen) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      gen_ = gen;
      done_ = 0;
    }
    cv_start_.notify_all();
  }

  void wait_all_done() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_done_.wait(lock, [this] { return done_ == workers_; });
  }

  void shutdown() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_start_.notify_all();
  }

  // --- worker side ---
  /// Blocks until a pass newer than `last_gen` is released (updates
  /// `last_gen` and returns true) or shutdown is requested (returns false).
  [[nodiscard]] bool wait_for_pass(std::uint64_t& last_gen) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_start_.wait(lock, [&] { return stop_ || gen_ != last_gen; });
    if (stop_) return false;
    last_gen = gen_;
    return true;
  }

  void arrive_done() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++done_;
    }
    cv_done_.notify_one();
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  int workers_;
  int done_ = 0;
  std::uint64_t gen_ = 0;
  bool stop_ = false;
};

}  // namespace ufab::sim

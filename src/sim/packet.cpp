#include "src/sim/packet.hpp"

namespace ufab::sim {

namespace {
std::uint64_t g_next_packet_id = 1;
}  // namespace

const char* to_string(PacketKind kind) {
  switch (kind) {
    case PacketKind::kData:
      return "data";
    case PacketKind::kAck:
      return "ack";
    case PacketKind::kProbe:
      return "probe";
    case PacketKind::kProbeResponse:
      return "probe-resp";
    case PacketKind::kFinishProbe:
      return "finish";
    case PacketKind::kCredit:
      return "credit";
  }
  return "?";
}

PacketPtr Packet::make(PacketKind kind, VmPairId pair, TenantId tenant, HostId src, HostId dst,
                       std::int32_t size_bytes) {
  auto p = std::make_unique<Packet>();
  p->kind = kind;
  p->id = g_next_packet_id++;
  p->pair = pair;
  p->tenant = tenant;
  p->src_host = src;
  p->dst_host = dst;
  p->size_bytes = size_bytes;
  return p;
}

}  // namespace ufab::sim

#include "src/sim/packet.hpp"

#include <atomic>

namespace ufab::sim {

namespace {
/// Id source for pool-less packets (tests, setup code).  Pooled packets draw
/// from their pool's counter instead, which keeps ids deterministic per run
/// even when several runs execute concurrently on worker threads.
std::atomic<std::uint64_t> g_fallback_packet_id{1};
}  // namespace

const char* to_string(PacketKind kind) {
  switch (kind) {
    case PacketKind::kData:
      return "data";
    case PacketKind::kAck:
      return "ack";
    case PacketKind::kProbe:
      return "probe";
    case PacketKind::kProbeResponse:
      return "probe-resp";
    case PacketKind::kFinishProbe:
      return "finish";
    case PacketKind::kCredit:
      return "credit";
  }
  return "?";
}

void PacketDeleter::operator()(Packet* p) const {
  if (p == nullptr) return;
  if (p->origin_pool != nullptr) {
    p->origin_pool->put(p);
  } else {
    delete p;
  }
}

void Packet::reset_for_reuse() {
  kind = PacketKind::kData;
  id = 0;
  pair = VmPairId{};
  tenant = TenantId{};
  message_id = 0;
  size_bytes = 0;
  src_host = HostId{};
  dst_host = HostId{};
  route.clear();
  hop = 0;
  path_tag = PathId{};
  reverse_route.clear();
  seq = 0;
  payload = 0;
  message_size = 0;
  acked_packet_id = 0;
  msg_created = TimeNs::zero();
  user_tag = 0;
  last_of_message = false;
  sent_at = TimeNs::zero();
  ecn_capable = true;
  ecn_ce = false;
  ecn_echo = false;
  credit_rate = Bandwidth::zero();
  probe = ProbeFields{};
  telemetry.clear();
  // origin_pool is the packet's identity, not per-life state: keep it.
}

namespace {
void init_packet(Packet& p, std::uint64_t id, PacketKind kind, VmPairId pair, TenantId tenant,
                 HostId src, HostId dst, std::int32_t size_bytes) {
  p.kind = kind;
  p.id = id;
  p.pair = pair;
  p.tenant = tenant;
  p.src_host = src;
  p.dst_host = dst;
  p.size_bytes = size_bytes;
}
}  // namespace

PacketPtr Packet::make(PacketKind kind, VmPairId pair, TenantId tenant, HostId src, HostId dst,
                       std::int32_t size_bytes) {
  PacketPtr p{new Packet()};
  init_packet(*p, g_fallback_packet_id.fetch_add(1, std::memory_order_relaxed), kind, pair,
              tenant, src, dst, size_bytes);
  return p;
}

PacketPtr make_packet(PacketPool& pool, PacketKind kind, VmPairId pair, TenantId tenant,
                      HostId src, HostId dst, std::int32_t size_bytes) {
  PacketPtr p{pool.take()};
  init_packet(*p, pool.next_packet_id(), kind, pair, tenant, src, dst, size_bytes);
  return p;
}

// --- PacketPool (needs the complete Packet type) ---

PacketPool::PacketPool() = default;
PacketPool::~PacketPool() = default;

Packet* PacketPool::take() {
  if (free_.empty()) {
    auto chunk = std::make_unique<Packet[]>(kChunkPackets);
    free_.reserve(free_.size() + kChunkPackets);
    // Pushed in reverse so the freelist hands out packets in address order.
    for (std::size_t i = kChunkPackets; i-- > 0;) {
      chunk[i].origin_pool = this;
      free_.push_back(&chunk[i]);
    }
    chunks_.push_back(std::move(chunk));
    allocated_ += kChunkPackets;
  }
  Packet* p = free_.back();
  free_.pop_back();
  ++in_use_;
  if (in_use_ > in_use_hwm_) in_use_hwm_ = in_use_;
  return p;
}

void PacketPool::put_direct(Packet* p) {
  p->reset_for_reuse();
  free_.push_back(p);
  ++recycled_;
  --in_use_;
}

}  // namespace ufab::sim

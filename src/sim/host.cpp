#include "src/sim/host.hpp"

#include "src/core/assert.hpp"

namespace ufab::sim {

void Host::attach_uplink(std::unique_ptr<Link> link) {
  UFAB_CHECK_MSG(uplink_ == nullptr, "host already has an uplink");
  uplink_ = std::move(link);
  uplink_->set_source([this]() -> PacketPtr {
    return stack_ != nullptr ? stack_->pull() : nullptr;
  });
}

}  // namespace ufab::sim

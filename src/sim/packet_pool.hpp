// Packet freelist.
//
// Every simulated packet used to be a fresh heap allocation (plus two
// std::vector allocations for its routes) that was freed on delivery or drop.
// PacketPool turns that into reuse: packets are carved from stable arena
// chunks, and destruction through PacketPtr's deleter puts them back on the
// pool's freelist after a field reset — so the steady-state cost of
// Packet::make is a pointer pop plus the reset, with no allocator traffic.
// The reset is total (see Packet::reset_for_reuse): a recycled packet carries
// no telemetry, route, or probe state from its previous life, which
// tests/sim/packet_pool_test.cpp locks in.
//
// The pool also owns the run's packet-id counter.  Ids used to come from a
// process-wide global; a per-pool counter makes them deterministic per run
// regardless of what ran earlier in the process — a requirement once bench
// variants execute concurrently (harness::ParallelSweep).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

namespace ufab::sim {

struct Packet;

class PacketPool {
 public:
  PacketPool();  // out of line: members hold the then-incomplete Packet
  PacketPool(const PacketPool&) = delete;
  PacketPool& operator=(const PacketPool&) = delete;
  ~PacketPool();

  /// A reset packet with a fresh id, recycled when possible.  The caller
  /// wraps it in a PacketPtr (Packet::make does this).
  [[nodiscard]] Packet* take();

  /// Returns a packet to the freelist (called by PacketPtr's deleter).
  void put(Packet* p);

  [[nodiscard]] std::uint64_t next_packet_id() { return next_id_++; }

  // --- introspection (tests / benches) ---
  [[nodiscard]] std::size_t allocated() const { return allocated_; }
  [[nodiscard]] std::size_t free_count() const { return free_.size(); }
  /// Packets returned to the freelist for reuse (counted at put time).
  [[nodiscard]] std::uint64_t recycled_total() const { return recycled_; }
  /// Most packets simultaneously live over the pool's lifetime (shard
  /// imbalance shows up here: a hot shard's pool peaks far above the rest).
  [[nodiscard]] std::size_t in_use_high_water() const { return in_use_hwm_; }

 private:
  static constexpr std::size_t kChunkPackets = 256;

  /// Stable storage: packets are carved from fixed arrays and never move.
  std::vector<std::unique_ptr<Packet[]>> chunks_;
  std::vector<Packet*> free_;  ///< LIFO freelist (best cache locality).
  std::size_t allocated_ = 0;
  std::uint64_t next_id_ = 1;
  std::uint64_t recycled_ = 0;
  std::size_t in_use_ = 0;
  std::size_t in_use_hwm_ = 0;
};

}  // namespace ufab::sim

// Packet freelist.
//
// Every simulated packet used to be a fresh heap allocation (plus two
// std::vector allocations for its routes) that was freed on delivery or drop.
// PacketPool turns that into reuse: packets are carved from stable arena
// chunks, and destruction through PacketPtr's deleter puts them back on the
// pool's freelist after a field reset — so the steady-state cost of
// Packet::make is a pointer pop plus the reset, with no allocator traffic.
// The reset is total (see Packet::reset_for_reuse): a recycled packet carries
// no telemetry, route, or probe state from its previous life, which
// tests/sim/packet_pool_test.cpp locks in.
//
// The pool also owns the run's packet-id counter.  Ids used to come from a
// process-wide global; a per-pool counter makes them deterministic per run
// regardless of what ran earlier in the process — a requirement once bench
// variants execute concurrently (harness::ParallelSweep).
//
// Sharded ownership handoff (DESIGN.md §12): a pool is owned by one shard,
// and a cross-shard packet now *travels* — the destination shard holds a
// packet whose origin_pool belongs to the source shard.  During threaded
// passes a release on a foreign thread must not touch the owner's freelist,
// so the engine arms a foreign-release guard: put() detects that the calling
// thread is not the owning shard and hands the packet to the engine's sink
// (a per-shard-pair return channel) instead; the owner drains it back at the
// next window boundary via put_direct().  With the guard disarmed (serial
// engine, sequential epochs, setup/teardown) put() is the plain freelist
// push it always was.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "src/core/shard_context.hpp"

namespace ufab::sim {

struct Packet;

class PacketPool {
 public:
  /// Routes a foreign-thread release (engine-provided; posts to the return
  /// channel from the *calling* shard back to this pool's owner shard).
  using ForeignSink = void (*)(void* ctx, PacketPool* owner, Packet* p);

  PacketPool();  // out of line: members hold the then-incomplete Packet
  PacketPool(const PacketPool&) = delete;
  PacketPool& operator=(const PacketPool&) = delete;
  ~PacketPool();

  /// A reset packet with a fresh id, recycled when possible.  The caller
  /// wraps it in a PacketPtr (Packet::make does this).
  [[nodiscard]] Packet* take();

  /// Returns a packet to the freelist (called by PacketPtr's deleter).
  /// With the foreign guard armed, a call from a thread currently executing
  /// a different shard is rerouted to the sink instead of touching the
  /// freelist (one predictable branch on the unarmed hot path).
  void put(Packet* p) {
    if (sink_ != nullptr && ufab::current_shard_index() != owner_shard_) {
      sink_(sink_ctx_, this, p);
      return;
    }
    put_direct(p);
  }

  /// The plain freelist return, bypassing the foreign guard.  Engine-side
  /// drain paths use it when handing returned packets back to the owner.
  void put_direct(Packet* p);

  /// Arms (sink != nullptr) or disarms (nullptr) the foreign-release guard.
  /// Engine-only: armed just for threaded multi-shard execution.
  void set_foreign_guard(int owner_shard, ForeignSink sink, void* ctx) {
    owner_shard_ = owner_shard;
    sink_ = sink;
    sink_ctx_ = ctx;
  }

  [[nodiscard]] std::uint64_t next_packet_id() { return next_id_++; }

  // --- introspection (tests / benches) ---
  [[nodiscard]] std::size_t allocated() const { return allocated_; }
  [[nodiscard]] std::size_t free_count() const { return free_.size(); }
  /// Packets returned to the freelist for reuse (counted at put time).
  [[nodiscard]] std::uint64_t recycled_total() const { return recycled_; }
  /// Most packets simultaneously live over the pool's lifetime (shard
  /// imbalance shows up here: a hot shard's pool peaks far above the rest).
  [[nodiscard]] std::size_t in_use_high_water() const { return in_use_hwm_; }
  /// The shard whose thread may touch the freelist directly (0 when the
  /// guard has never been armed).
  [[nodiscard]] int owner_shard() const { return owner_shard_; }

 private:
  static constexpr std::size_t kChunkPackets = 256;

  /// Stable storage: packets are carved from fixed arrays and never move.
  std::vector<std::unique_ptr<Packet[]>> chunks_;
  std::vector<Packet*> free_;  ///< LIFO freelist (best cache locality).
  std::size_t allocated_ = 0;
  std::uint64_t next_id_ = 1;
  std::uint64_t recycled_ = 0;
  std::size_t in_use_ = 0;
  std::size_t in_use_hwm_ = 0;

  // Foreign-release guard (armed only for threaded multi-shard runs).
  int owner_shard_ = 0;
  ForeignSink sink_ = nullptr;
  void* sink_ctx_ = nullptr;
};

}  // namespace ufab::sim

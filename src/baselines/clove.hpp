// Clove: congestion-aware flowlet load balancing at the virtual edge
// (Katta et al., CoNEXT'17), the path-selection component of both baseline
// composites.
//
// The selector keeps a weight per candidate path, decreased multiplicatively
// when the path returns ECN-marked ACKs (Clove-ECN) and slowly recovered
// otherwise.  At flowlet boundaries (an inter-packet gap larger than the
// configured flowlet gap) the next path is drawn with probability
// proportional to the weights.  Crucially — and this is the paper's Case-2
// point — the weights reflect *utilization/congestion*, not bandwidth
// subscription, so migrations can stampede onto paths whose guarantees are
// already fully subscribed.
#pragma once

#include <cstdint>
#include <vector>

#include "src/core/rng.hpp"
#include "src/core/time.hpp"

namespace ufab::baselines {

struct CloveConfig {
  /// Inter-packet gap that opens a flowlet boundary (200 us recommended by
  /// Clove; Fig. 5 also evaluates an aggressive 36 us = 1.5x baseRTT).
  TimeNs flowlet_gap = TimeNs{200'000};
  double ecn_decrease = 0.25;   ///< Multiplicative weight cut per marked ACK.
  double recovery = 0.01;       ///< Additive weight recovery per clean ACK.
  double min_weight = 0.05;
};

class CloveSelector {
 public:
  CloveSelector(CloveConfig cfg, std::size_t n_paths, Rng rng);

  /// Returns the path index for the next packet sent at `now`.
  std::int32_t select(TimeNs now);

  /// Feeds ECN feedback from an ACK that used path `path_idx`.
  void on_ack(std::int32_t path_idx, bool ecn_marked);

  [[nodiscard]] const std::vector<double>& weights() const { return weights_; }
  [[nodiscard]] std::int64_t path_switches() const { return switches_; }

 private:
  CloveConfig cfg_;
  std::vector<double> weights_;
  Rng rng_;
  std::int32_t current_ = 0;
  TimeNs last_send_ = TimeNs::zero();
  std::int64_t switches_ = 0;
};

}  // namespace ufab::baselines

#include "src/baselines/pwc_transport.hpp"

#include <algorithm>

#include "src/core/assert.hpp"

namespace ufab::baselines {

namespace {
using sim::Packet;
using sim::PacketKind;
using sim::PacketPtr;
}  // namespace

PwcTransport::PwcTransport(topo::Network& net, const harness::VmMap& vms, HostId host,
                           PwcConfig cfg, transport::TransportOptions topts, Rng rng)
    : TransportStack(net, vms, host, topts, rng),
      cfg_(cfg),
      wfq_(cfg.wfq_base_weight, 1500) {}

std::unique_ptr<transport::Connection> PwcTransport::make_connection() {
  return std::make_unique<PwcConnection>();
}

void PwcTransport::on_connection_created(transport::Connection& conn) {
  auto& c = static_cast<PwcConnection&>(conn);
  const double tokens = vms().vm_tokens(c.pair.src);
  c.swift = std::make_unique<SwiftCc>(cfg_.swift, c.base_rtt, tokens / cfg_.weight_unit_bps);
  c.clove = std::make_unique<CloveSelector>(cfg_.clove, std::max<std::size_t>(1, c.candidates.size()),
                                            rng().fork(c.pair.key()));
  const std::uint64_t entity = next_entity_++;
  by_entity_[entity] = &c;
  wfq_.set_tenant_weight(c.tenant, vms().tenant_guarantee(c.tenant).bits_per_sec());
  wfq_.add(c.tenant, entity);
}

bool PwcTransport::can_send(const transport::Connection& conn) const {
  const auto& c = static_cast<const PwcConnection&>(conn);
  const std::int32_t next = c.next_wire_size(options().mtu_payload, sim::kDataHeaderBytes);
  if (next == 0) return false;
  return c.swift->cwnd_bytes() - static_cast<double>(c.inflight_bytes) >=
         static_cast<double>(next) / 2.0;
}

TimeNs PwcTransport::earliest_send(const transport::Connection& conn) const {
  return static_cast<const PwcConnection&>(conn).next_send_at;
}

void PwcTransport::on_data_sent(transport::Connection& conn, const sim::Packet& pkt) {
  auto& c = static_cast<PwcConnection&>(conn);
  if (c.credit_bps > 0.0) {
    // Receiver-driven pacing: spread packets at the advertised rate.
    const double gap_ns = static_cast<double>(pkt.size_bytes) * 8e9 / c.credit_bps;
    const TimeNs base = std::max(c.next_send_at, simulator().now());
    c.next_send_at = base + TimeNs{static_cast<std::int64_t>(gap_ns)};
  }
}

void PwcTransport::on_ack(transport::Connection& conn, const sim::Packet& ack,
                          std::optional<TimeNs> rtt) {
  auto& c = static_cast<PwcConnection&>(conn);
  if (rtt.has_value()) c.swift->on_ack(*rtt, ack.payload, simulator().now());
  c.clove->on_ack(ack.path_tag.value(), ack.ecn_echo);
}

void PwcTransport::select_path(transport::Connection& conn) {
  auto& c = static_cast<PwcConnection&>(conn);
  if (c.candidates.empty()) return;
  c.path_idx = c.clove->select(simulator().now());
}

transport::Connection* PwcTransport::next_sender() {
  // PicNIC's sender-side bandwidth envelope: WFQ across tenants.
  const auto sendable = [this](std::uint64_t entity) -> std::int32_t {
    auto it = by_entity_.find(entity);
    if (it == by_entity_.end()) return 0;
    transport::Connection* c = it->second;
    if (!c->has_backlog() || !can_send(*c) || earliest_send(*c) > simulator().now()) return 0;
    return c->next_wire_size(options().mtu_payload, sim::kDataHeaderBytes);
  };
  const std::uint64_t entity = wfq_.next(sendable);
  if (entity == 0) return nullptr;
  return by_entity_.at(entity);
}

void PwcTransport::on_data_received(const sim::Packet& pkt) {
  auto& a = arrivals_[pkt.pair.key()];
  a.pair = pkt.pair;
  a.tenant = pkt.tenant;
  a.src_host = pkt.src_host;
  a.bytes_in_period += pkt.payload;
  a.last_seen = simulator().now();
  ensure_rcm_timer();
}

void PwcTransport::ensure_rcm_timer() {
  if (rcm_running_) return;
  rcm_running_ = true;
  simulator().after(cfg_.rcm_period, [this] {
    rcm_running_ = false;
    rcm_tick();
  });
}

void PwcTransport::rcm_tick() {
  const double period_sec = cfg_.rcm_period.sec();
  const double line_bps = host().nic().capacity().bits_per_sec();
  const TimeNs now = simulator().now();

  // Measure arrivals and expire idle entries.
  double total_bps = 0.0;
  std::vector<Arrival*> active;
  for (auto it = arrivals_.begin(); it != arrivals_.end();) {
    Arrival& a = it->second;
    if (now - a.last_seen > 8 * cfg_.rcm_period) {
      it = arrivals_.erase(it);
      continue;
    }
    total_bps += static_cast<double>(a.bytes_in_period) * 8.0 / period_sec;
    active.push_back(&a);
    ++it;
  }

  if (!active.empty() && total_bps > cfg_.congestion_threshold * line_bps) {
    // Weighted max-min over (tenant-weighted) senders with demand caps.
    struct Item {
      Arrival* a;
      double weight;
      double demand;
      double alloc = 0.0;
    };
    std::vector<Item> items;
    items.reserve(active.size());
    for (Arrival* a : active) {
      const double w = vms().tenant_guarantee(a->tenant).bits_per_sec();
      const double measured = static_cast<double>(a->bytes_in_period) * 8.0 / period_sec;
      items.push_back({a, w, measured * cfg_.demand_headroom, 0.0});
    }
    // Progressive filling: pour capacity proportionally to weights; capped
    // items return their slack to the pool.
    double capacity = cfg_.congestion_threshold * line_bps;
    std::vector<Item*> open;
    for (auto& it2 : items) open.push_back(&it2);
    for (int round = 0; round < 8 && !open.empty() && capacity > 1.0; ++round) {
      double weight_sum = 0.0;
      for (Item* it2 : open) weight_sum += it2->weight;
      double next_capacity = 0.0;
      std::vector<Item*> still_open;
      for (Item* it2 : open) {
        const double offer = capacity * it2->weight / weight_sum;
        const double room = it2->demand - it2->alloc;
        if (offer >= room) {
          it2->alloc = it2->demand;
          next_capacity += offer - room;
        } else {
          it2->alloc += offer;
          still_open.push_back(it2);
        }
      }
      capacity = next_capacity;
      open = std::move(still_open);
      if (open.empty()) break;
    }
    for (const Item& it2 : items) {
      auto credit = sim::make_packet(simulator().packet_pool(), PacketKind::kCredit, it2.a->pair, it2.a->tenant, host_id(),
                                 it2.a->src_host, sim::kCreditBytes);
      credit->credit_rate = Bandwidth::bps(std::max(it2.alloc, 1e6));
      send_control_packet(std::move(credit));
      ++credits_sent_;
    }
  } else {
    // No receiver congestion: lift any caps.
    for (Arrival* a : active) {
      auto credit = sim::make_packet(simulator().packet_pool(), PacketKind::kCredit, a->pair, a->tenant, host_id(),
                                 a->src_host, sim::kCreditBytes);
      credit->credit_rate = Bandwidth::bps(line_bps);
      send_control_packet(std::move(credit));
      ++credits_sent_;
    }
  }

  for (Arrival* a : active) a->bytes_in_period = 0;
  if (!arrivals_.empty()) ensure_rcm_timer();
}

void PwcTransport::on_control_packet(PacketPtr pkt) {
  if (pkt->kind != PacketKind::kCredit) return;
  auto* conn = static_cast<PwcConnection*>(find_connection(pkt->pair));
  if (conn == nullptr) return;
  conn->credit_bps = pkt->credit_rate.bits_per_sec();
  kick();
}

}  // namespace ufab::baselines

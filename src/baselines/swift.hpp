// Swift delay-based congestion control (Kumar et al., SIGCOMM'20), used as
// the basis of the Weighted Congestion Control (WCC) fabric in the paper's
// PicNIC'+WCC+Clove composite (§2.2).
//
// Per-ACK: if the measured delay is below target, additively grow the window
// (one weighted MSS per RTT); above target, multiplicatively decrease
// proportional to the overshoot, at most once per RTT.  Seawall-style
// weighting scales the additive increment so steady-state throughput is
// roughly proportional to the per-source weight — and is exactly why these
// schemes converge in tens of milliseconds rather than sub-millisecond.
#pragma once

#include <cstdint>

#include "src/core/time.hpp"

namespace ufab::baselines {

struct SwiftConfig {
  /// Queueing-delay budget added to the base RTT to form the target delay.
  TimeNs target_slack = TimeNs{20'000};  // 20 us
  double additive_increase_mss = 1.0;    ///< MSS per RTT at weight 1.
  double beta = 0.8;                     ///< Multiplicative-decrease gain.
  double max_mdf = 0.5;                  ///< Max decrease per RTT.
  std::int32_t mss_bytes = 1500;
  double min_cwnd_mss = 1.0;
  double max_cwnd_mss = 512.0;
  /// Initial window, ~1 BDP at testbed scale: flows start greedy and evolve
  /// down — the burst behaviour Case-1 (Fig. 4) attributes to conventional
  /// congestion control.
  double initial_cwnd_mss = 20.0;
};

class SwiftCc {
 public:
  SwiftCc(SwiftConfig cfg, TimeNs base_rtt, double weight)
      : cfg_(cfg), base_rtt_(base_rtt), weight_(weight),
        cwnd_(cfg.initial_cwnd_mss * cfg.mss_bytes) {}

  /// Feed one ACK's RTT sample.
  void on_ack(TimeNs rtt, std::int32_t acked_bytes, TimeNs now);

  [[nodiscard]] double cwnd_bytes() const { return cwnd_; }
  [[nodiscard]] TimeNs target_delay() const { return base_rtt_ + cfg_.target_slack; }
  void set_weight(double weight) { weight_ = weight; }
  [[nodiscard]] double weight() const { return weight_; }

 private:
  void clamp();

  SwiftConfig cfg_;
  TimeNs base_rtt_;
  double weight_;
  double cwnd_;
  TimeNs last_decrease_ = TimeNs::zero();
};

}  // namespace ufab::baselines

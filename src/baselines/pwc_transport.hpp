// PicNIC' + WCC + Clove — the paper's strongest baseline composite (§2.2).
//
//  * PicNIC' (the bandwidth-envelope components of PicNIC, similar to EyeQ):
//    sender-side WFQ across tenants plus receiver-driven rate allocation —
//    the receiver's congestion point measures per-pair arrival rates every
//    RCM period and, when the downlink nears saturation, advertises weighted
//    max-min rates back to senders in credit messages.
//  * WCC: Swift delay-based congestion control with Seawall-style per-source
//    weights in the fabric.
//  * Clove: flowlet-granularity path selection driven by ECN feedback.
//
// None of these components sees bandwidth *subscription*, which is exactly
// the failure mode Figures 4/5 demonstrate.
#pragma once

#include <unordered_map>

#include "src/baselines/clove.hpp"
#include "src/baselines/swift.hpp"
#include "src/transport/transport.hpp"
#include "src/ufab/wfq.hpp"

namespace ufab::baselines {

struct PwcConfig {
  SwiftConfig swift;
  CloveConfig clove;
  /// Receiver control message (credit) period.
  TimeNs rcm_period = TimeNs{100'000};  // 100 us
  /// Receiver starts shaping when arrivals exceed this fraction of line rate.
  double congestion_threshold = 0.90;
  /// Headroom multiplier on measured demand so senders can ramp.
  double demand_headroom = 1.5;
  /// Weight normalization: tokens per unit of Swift additive increase.
  double weight_unit_bps = 1e9;
  double wfq_base_weight = 5e8;
};

struct PwcConnection : transport::Connection {
  std::unique_ptr<SwiftCc> swift;
  std::unique_ptr<CloveSelector> clove;
  double credit_bps = 0.0;  ///< 0 = no cap received yet.
  TimeNs next_send_at = TimeNs::zero();
};

class PwcTransport : public transport::TransportStack {
 public:
  PwcTransport(topo::Network& net, const harness::VmMap& vms, HostId host, PwcConfig cfg = {},
               transport::TransportOptions topts = {}, Rng rng = Rng{1});

  [[nodiscard]] std::int64_t credits_sent() const { return credits_sent_; }

 protected:
  std::unique_ptr<transport::Connection> make_connection() override;
  void on_connection_created(transport::Connection& conn) override;
  bool can_send(const transport::Connection& conn) const override;
  TimeNs earliest_send(const transport::Connection& conn) const override;
  void on_data_sent(transport::Connection& conn, const sim::Packet& pkt) override;
  void on_ack(transport::Connection& conn, const sim::Packet& ack,
              std::optional<TimeNs> rtt) override;
  void on_data_received(const sim::Packet& pkt) override;
  void on_control_packet(sim::PacketPtr pkt) override;
  void select_path(transport::Connection& conn) override;
  transport::Connection* next_sender() override;

 private:
  void rcm_tick();
  void ensure_rcm_timer();

  PwcConfig cfg_;
  edge::WfqScheduler wfq_;
  std::unordered_map<std::uint64_t, transport::Connection*> by_entity_;
  std::uint64_t next_entity_ = 1;

  /// Receiver-side arrival accounting per incoming pair.
  struct Arrival {
    VmPairId pair;
    TenantId tenant;
    HostId src_host;
    std::int64_t bytes_in_period = 0;
    TimeNs last_seen = TimeNs::zero();
  };
  std::unordered_map<std::uint64_t, Arrival> arrivals_;
  bool rcm_running_ = false;
  std::int64_t credits_sent_ = 0;
};

}  // namespace ufab::baselines

#include "src/baselines/es_transport.hpp"

#include <algorithm>

#include "src/ufab/token_assigner.hpp"

namespace ufab::baselines {

namespace {
using sim::Packet;
using sim::PacketKind;
using sim::PacketPtr;
}  // namespace

EsTransport::EsTransport(topo::Network& net, const harness::VmMap& vms, HostId host,
                         EsConfig cfg, transport::TransportOptions topts, Rng rng)
    : TransportStack(net, vms, host, topts, rng), cfg_(cfg) {}

std::unique_ptr<transport::Connection> EsTransport::make_connection() {
  return std::make_unique<EsConnection>();
}

void EsTransport::on_connection_created(transport::Connection& conn) {
  auto& c = static_cast<EsConnection&>(conn);
  int outgoing = 0;
  for (transport::Connection* other : conn_order_) {
    if (other->pair.src == c.pair.src) ++outgoing;
  }
  c.guarantee_bps = vms().vm_tokens(c.pair.src) / std::max(1, outgoing);
  c.clove = std::make_unique<CloveSelector>(
      cfg_.clove, std::max<std::size_t>(1, c.candidates.size()), rng().fork(c.pair.key()));
  c.window_started = simulator().now();
  ensure_gp_timer();
}

bool EsTransport::can_send(const transport::Connection& conn) const {
  const auto& c = static_cast<const EsConnection&>(conn);
  // Rate-based sending; an inflight cap of a few RTTs bounds sender memory.
  const double cap =
      c.rate_bps() * c.base_rtt.sec() * cfg_.inflight_cap_rtts + 3.0 * 1500.0;
  return static_cast<double>(c.inflight_bytes) < cap;
}

TimeNs EsTransport::earliest_send(const transport::Connection& conn) const {
  return static_cast<const EsConnection&>(conn).next_send_at;
}

void EsTransport::on_data_sent(transport::Connection& conn, const sim::Packet& pkt) {
  auto& c = static_cast<EsConnection&>(conn);
  const double rate = std::max(c.rate_bps(), 1e6);
  const double gap_ns = static_cast<double>(pkt.size_bytes) * 8e9 / rate;
  const TimeNs base = std::max(c.next_send_at, simulator().now());
  c.next_send_at = base + TimeNs{static_cast<std::int64_t>(gap_ns)};
}

void EsTransport::on_ack(transport::Connection& conn, const sim::Packet& ack,
                         std::optional<TimeNs> rtt) {
  (void)rtt;
  auto& c = static_cast<EsConnection&>(conn);
  c.clove->on_ack(ack.path_tag.value(), ack.ecn_echo);
  ++c.acks_in_window;
  if (ack.ecn_echo) ++c.marked_in_window;

  const TimeNs now = simulator().now();
  if (now - c.window_started >= c.base_rtt && c.acks_in_window > 0) {
    const double frac = static_cast<double>(c.marked_in_window) /
                        static_cast<double>(c.acks_in_window);
    const double weight =
        std::max(c.guarantee_bps, 1e6) / cfg_.weight_unit_bps;
    if (frac > 0.0) {
      // RA decrease: only the work-conserving portion shrinks; the rate
      // never drops below the guarantee (ElasticSwitch's defining choice).
      c.wc_bps *= std::max(0.0, 1.0 - cfg_.wc_md * frac);
    } else {
      // Seawall-style weighted probing for spare bandwidth.
      c.wc_bps += cfg_.wc_increase_mss * weight * 1500.0 * 8.0 / c.base_rtt.sec();
    }
    c.acks_in_window = 0;
    c.marked_in_window = 0;
    c.window_started = now;
  }
}

void EsTransport::select_path(transport::Connection& conn) {
  auto& c = static_cast<EsConnection&>(conn);
  if (c.candidates.empty()) return;
  c.path_idx = c.clove->select(simulator().now());
}

void EsTransport::on_data_received(const sim::Packet& pkt) {
  auto& in = incoming_[pkt.pair.key()];
  in.pair = pkt.pair;
  in.tenant = pkt.tenant;
  in.src_host = pkt.src_host;
  in.bytes += pkt.payload;
  in.last_seen = simulator().now();
  ensure_gp_timer();
}

void EsTransport::ensure_gp_timer() {
  if (gp_running_) return;
  gp_running_ = true;
  simulator().after(cfg_.gp_period, [this] {
    gp_running_ = false;
    gp_epoch();
  });
}

void EsTransport::gp_epoch() {
  const TimeNs now = simulator().now();

  // Sender side: re-partition each local VM's guarantee across its pairs.
  std::unordered_map<std::int32_t, std::vector<EsConnection*>> by_vm;
  for (transport::Connection* conn : conn_order_) {
    auto* c = static_cast<EsConnection*>(conn);
    if (c->has_backlog() || c->inflight_bytes > 0 ||
        now - c->last_activity < 4 * cfg_.gp_period) {
      by_vm[c->pair.src.value()].push_back(c);
    }
  }
  const double period_ns = static_cast<double>(cfg_.gp_period.ns());
  for (auto& [vm, conns] : by_vm) {
    std::vector<edge::SenderPairView> views(conns.size());
    for (std::size_t i = 0; i < conns.size(); ++i) {
      EsConnection* c = conns[i];
      const double measured =
          static_cast<double>(c->bytes_sent_total - c->bytes_at_epoch) * 8e9 / period_ns;
      c->bytes_at_epoch = c->bytes_sent_total;
      views[i].demand_tokens = c->has_backlog() ? 1e30 : measured;
      views[i].receiver_tokens = c->remote_guarantee_bps;
      views[i].receiver_known = c->remote_known;
    }
    edge::assign_tokens(vms().vm_tokens(VmId{vm}), views);
    for (std::size_t i = 0; i < conns.size(); ++i) conns[i]->guarantee_bps = views[i].assigned;
  }

  // Receiver side: admit incoming pairs per destination VM (max-min) and
  // advertise the admitted partition back in control messages.
  std::unordered_map<std::int32_t, std::vector<Incoming*>> by_dst;
  for (auto it = incoming_.begin(); it != incoming_.end();) {
    if (now - it->second.last_seen > 8 * cfg_.gp_period) {
      it = incoming_.erase(it);
    } else {
      by_dst[it->second.pair.dst.value()].push_back(&it->second);
      ++it;
    }
  }
  for (auto& [vm, entries] : by_dst) {
    std::vector<edge::ReceiverPairView> views(entries.size());
    for (std::size_t i = 0; i < entries.size(); ++i) {
      views[i].requested_tokens =
          static_cast<double>(entries[i]->bytes) * 8e9 / period_ns * 1.5 + 1e6;
      entries[i]->bytes = 0;
    }
    edge::admit_tokens(vms().vm_tokens(VmId{vm}), views);
    for (std::size_t i = 0; i < entries.size(); ++i) {
      auto msg = sim::make_packet(simulator().packet_pool(), PacketKind::kCredit, entries[i]->pair, entries[i]->tenant,
                              host_id(), entries[i]->src_host, sim::kCreditBytes);
      msg->credit_rate = Bandwidth::bps(views[i].admitted);
      send_control_packet(std::move(msg));
    }
  }

  if (!conn_order_.empty() || !incoming_.empty()) ensure_gp_timer();
}

void EsTransport::on_control_packet(PacketPtr pkt) {
  if (pkt->kind != PacketKind::kCredit) return;
  auto* conn = static_cast<EsConnection*>(find_connection(pkt->pair));
  if (conn == nullptr) return;
  conn->remote_guarantee_bps = pkt->credit_rate.bits_per_sec();
  conn->remote_known = true;
  kick();
}

}  // namespace ufab::baselines

#include "src/baselines/swift.hpp"

#include <algorithm>

namespace ufab::baselines {

void SwiftCc::on_ack(TimeNs rtt, std::int32_t acked_bytes, TimeNs now) {
  const TimeNs target = target_delay();
  if (rtt <= target) {
    // Weighted additive increase, spread across the ACKs of one window.
    const double ai_bytes = cfg_.additive_increase_mss * weight_ * cfg_.mss_bytes;
    cwnd_ += ai_bytes * static_cast<double>(acked_bytes) / std::max(cwnd_, 1.0);
  } else if (now - last_decrease_ >= base_rtt_) {
    const double over =
        static_cast<double>((rtt - target).ns()) / static_cast<double>(rtt.ns());
    const double factor = std::max(1.0 - cfg_.beta * over, 1.0 - cfg_.max_mdf);
    cwnd_ *= factor;
    last_decrease_ = now;
  }
  clamp();
}

void SwiftCc::clamp() {
  cwnd_ = std::clamp(cwnd_, cfg_.min_cwnd_mss * cfg_.mss_bytes,
                     cfg_.max_cwnd_mss * cfg_.mss_bytes);
}

}  // namespace ufab::baselines

// ElasticSwitch + Clove (Popa et al., SIGCOMM'13 + Katta et al., CoNEXT'17).
//
//  * GP (Guarantee Partitioning): hose guarantees are divided among VM pairs
//    each epoch — sender-side partitioning with receiver-side max-min
//    admission advertised back in periodic control messages (we reuse the
//    same Algorithm-1 implementation uFAB adopts, since uFAB took the idea
//    from ElasticSwitch in the first place).
//  * RA (Rate Allocation): each pair is rate-limited to
//        rate = guarantee + wc_rate,
//    where wc_rate probes for spare bandwidth with a weighted TCP-like AIMD
//    driven by ECN echo. Crucially the rate never drops below the guarantee,
//    even when the path is congested — which keeps guarantees but queues the
//    fabric (the behaviour Figures 11c/11e and 14 show).
//  * Clove selects flowlet paths by ECN feedback, with no subscription
//    awareness.
#pragma once

#include <unordered_map>

#include "src/baselines/clove.hpp"
#include "src/transport/transport.hpp"

namespace ufab::baselines {

struct EsConfig {
  CloveConfig clove;
  /// Guarantee-partitioning epoch (ElasticSwitch runs GP at RTT timescales
  /// but converges over many epochs; tens of milliseconds end to end).
  TimeNs gp_period = TimeNs{500'000};  // 0.5 ms
  /// Weighted additive increase of the work-conserving rate, per RTT, at
  /// weight 1 (1 Gbps of guarantee).
  double wc_increase_mss = 1.0;
  /// Multiplicative decrease applied to the work-conserving rate when the
  /// ECN-marked fraction of a window is `frac`: wc *= (1 - md * frac).
  double wc_md = 0.5;
  double weight_unit_bps = 1e9;
  /// Inflight cap in RTTs at the current rate (bounds memory, not latency).
  double inflight_cap_rtts = 4.0;
};

struct EsConnection : transport::Connection {
  double guarantee_bps = 0.0;        ///< GP result for this pair.
  double remote_guarantee_bps = 0.0; ///< Receiver-admitted partition.
  bool remote_known = false;
  double wc_bps = 0.0;               ///< Work-conserving rate above guarantee.
  std::unique_ptr<CloveSelector> clove;
  TimeNs next_send_at = TimeNs::zero();
  // ECN window accounting (per ~RTT).
  std::int64_t acks_in_window = 0;
  std::int64_t marked_in_window = 0;
  TimeNs window_started = TimeNs::zero();
  std::int64_t bytes_at_epoch = 0;

  [[nodiscard]] double rate_bps() const {
    const double g = remote_known ? std::min(guarantee_bps, remote_guarantee_bps)
                                  : guarantee_bps;
    return g + wc_bps;
  }
};

class EsTransport : public transport::TransportStack {
 public:
  EsTransport(topo::Network& net, const harness::VmMap& vms, HostId host, EsConfig cfg = {},
              transport::TransportOptions topts = {}, Rng rng = Rng{1});

 protected:
  std::unique_ptr<transport::Connection> make_connection() override;
  void on_connection_created(transport::Connection& conn) override;
  bool can_send(const transport::Connection& conn) const override;
  TimeNs earliest_send(const transport::Connection& conn) const override;
  void on_data_sent(transport::Connection& conn, const sim::Packet& pkt) override;
  void on_ack(transport::Connection& conn, const sim::Packet& ack,
              std::optional<TimeNs> rtt) override;
  void on_data_received(const sim::Packet& pkt) override;
  void on_control_packet(sim::PacketPtr pkt) override;
  void select_path(transport::Connection& conn) override;

 private:
  void gp_epoch();
  void ensure_gp_timer();

  EsConfig cfg_;
  /// Receiver-side incoming pairs for GP admission.
  struct Incoming {
    VmPairId pair;
    TenantId tenant;
    HostId src_host;
    std::int64_t bytes = 0;
    TimeNs last_seen = TimeNs::zero();
  };
  std::unordered_map<std::uint64_t, Incoming> incoming_;
  bool gp_running_ = false;
};

}  // namespace ufab::baselines

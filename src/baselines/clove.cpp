#include "src/baselines/clove.hpp"

#include <algorithm>
#include <numeric>

#include "src/core/assert.hpp"

namespace ufab::baselines {

CloveSelector::CloveSelector(CloveConfig cfg, std::size_t n_paths, Rng rng)
    : cfg_(cfg), weights_(n_paths, 1.0), rng_(rng) {
  UFAB_CHECK(n_paths > 0);
  current_ = static_cast<std::int32_t>(rng_.below(n_paths));
}

std::int32_t CloveSelector::select(TimeNs now) {
  if (now - last_send_ >= cfg_.flowlet_gap) {
    // Flowlet boundary: weighted random draw.
    const double total = std::accumulate(weights_.begin(), weights_.end(), 0.0);
    double x = rng_.uniform() * total;
    std::int32_t pick = static_cast<std::int32_t>(weights_.size()) - 1;
    for (std::size_t i = 0; i < weights_.size(); ++i) {
      x -= weights_[i];
      if (x <= 0.0) {
        pick = static_cast<std::int32_t>(i);
        break;
      }
    }
    if (pick != current_) ++switches_;
    current_ = pick;
  }
  last_send_ = now;
  return current_;
}

void CloveSelector::on_ack(std::int32_t path_idx, bool ecn_marked) {
  if (path_idx < 0 || path_idx >= static_cast<std::int32_t>(weights_.size())) return;
  double& w = weights_[static_cast<std::size_t>(path_idx)];
  if (ecn_marked) {
    w = std::max(cfg_.min_weight, w * (1.0 - cfg_.ecn_decrease));
  } else {
    w = std::min(1.0, w + cfg_.recovery);
  }
}

}  // namespace ufab::baselines

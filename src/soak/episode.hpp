// Seeded episode scheduler for the soak harness.
//
// A soak run is structured as a rotating sequence of *episodes*: bounded
// windows in which one kind of adversity is active — a trunk link flapping,
// wire loss ramping up and back down, a core switch losing its state, INT
// records going stale or corrupt, a Bloom filter being saturated, or the
// workload itself bursting toward a hotspot host.  The scheduler draws the
// entire sequence up front from one seed (UFAB_SOAK_SEED), so a week-long
// schedule is reproducible fault-for-fault and can be compiled into a
// FaultPlane scenario in one arm() call — the plane's declare-then-arm
// contract is exactly the pre-generated shape this produces.
//
// Episodes are separated by cooldowns so the fabric sees clean recovery
// windows (where SLOs are enforced), and a configurable fraction of episodes
// deliberately overlaps the previous one, because real incidents do.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/ids.hpp"
#include "src/core/rng.hpp"
#include "src/core/time.hpp"

namespace ufab::faults {
class FaultPlane;
}  // namespace ufab::faults

namespace ufab::soak {

enum class EpisodeKind {
  kLinkFlap,          ///< A trunk link goes administratively down/up, repeating.
  kWireLoss,          ///< Bernoulli loss on a trunk link, intensity ramped.
  kSwitchReset,       ///< One switch's uFAB-C registers + Bloom wiped.
  kStaleTelemetry,    ///< One switch's INT stamps frozen for the window.
  kCorruptTelemetry,  ///< One switch's INT registers scaled for the window.
  kBloomSaturation,   ///< Junk keys pushed into one switch's Blooms.
  kTrafficBurst,      ///< Extra short flows across random pairs.
  kHotspot,           ///< Extra short flows all aimed at one victim host.
};
inline constexpr int kEpisodeKindCount = 8;

[[nodiscard]] const char* to_string(EpisodeKind k);

/// One scheduled episode.  `target` indexes the eligible set for the kind
/// (trunk links for flap/loss, switches for reset/telemetry/bloom, hosts for
/// hotspot); `intensity` and `aux` are kind-specific knobs.
struct Episode {
  EpisodeKind kind;
  TimeNs start;
  TimeNs end;
  double intensity = 0.0;  ///< Loss rate / register scale / burst flow rate multiplier.
  int target = 0;
  int aux = 0;  ///< Flap repeats / Bloom junk keys / burst flow count.

  [[nodiscard]] std::string describe() const;
};

struct EpisodeOptions {
  TimeNs warmup = TimeNs{2'000'000'000};         ///< No episodes before this.
  TimeNs mean_gap = TimeNs{6'000'000'000};       ///< Mean clean gap between episodes.
  TimeNs min_cooldown = TimeNs{2'000'000'000};   ///< Quiet floor after each episode.
  TimeNs mean_duration = TimeNs{2'000'000'000};  ///< Mean active window.
  TimeNs max_duration = TimeNs{8'000'000'000};   ///< Clamp on the active window.
  double overlap_fraction = 0.2;  ///< Episodes that start while the previous still runs.
  double max_loss_rate = 0.05;    ///< Peak Bernoulli loss for kWireLoss.
};

/// Draws and holds the full episode sequence for one soak run.
class EpisodeScheduler {
 public:
  /// All randomness comes from `seed`; same seed + same options + same
  /// eligible-set sizes => the identical schedule.
  EpisodeScheduler(std::uint64_t seed, EpisodeOptions opts);

  /// Generates episodes covering [warmup, horizon).  `n_trunk_links`,
  /// `n_switches` and `n_hosts` size the target sets.  Call once.
  const std::vector<Episode>& generate(TimeNs horizon, int n_trunk_links, int n_switches,
                                       int n_hosts);

  [[nodiscard]] const std::vector<Episode>& episodes() const { return episodes_; }

  /// Compiles every fault-kind episode onto `plane` (which must not be armed
  /// yet).  Traffic-kind episodes (burst/hotspot) are the runner's job — the
  /// plane only speaks faults.
  void compile(faults::FaultPlane& plane, const std::vector<LinkId>& trunk_links,
               const std::vector<NodeId>& switches) const;

  /// Intervals in which some episode is active or the fabric is still within
  /// `recovery_allowance` of one ending — the complement is the clean time
  /// where SLOs are enforced.  Sorted and coalesced.
  [[nodiscard]] std::vector<std::pair<TimeNs, TimeNs>> dirty_intervals(
      TimeNs recovery_allowance) const;

 private:
  Rng rng_;
  EpisodeOptions opts_;
  std::vector<Episode> episodes_;
};

}  // namespace ufab::soak

#include "src/soak/slo.hpp"

#include <algorithm>
#include <cstdio>

#include "src/core/assert.hpp"

namespace ufab::soak {

SloTracker::SloTracker(TimeNs window, double guarantee_bps, double wc_reference_bps,
                       const std::string& csv_path)
    : window_(window), guarantee_bps_(guarantee_bps), wc_reference_bps_(wc_reference_bps) {
  UFAB_CHECK(window_.ns() > 0);
  if (!csv_path.empty()) {
    csv_.open(csv_path, std::ios::out | std::ios::trunc);
    UFAB_CHECK_MSG(csv_.is_open(), "SloTracker could not open its CSV path");
    csv_open_ = true;
    csv_ << "window,start_s,clean,active_episodes,fct_count,fct_p50_us,fct_p99_us,"
            "fct_p999_us,delivered_gbps,wc_gap,pairs_below,violation_s_cum,drops,"
            "fault_drops,retransmits\n";
  }
}

void SloTracker::record_fct_us(double fct_us) {
  win_fct_us_.add(fct_us);
  all_fct_us_.add(fct_us);
  if (win_clean_) clean_fct_us_.add(fct_us);
}

void SloTracker::record_recovery_rtts(double rtts) { recovery_rtts_.add(rtts); }

void SloTracker::begin_window(TimeNs start, bool clean, int active_episodes) {
  UFAB_CHECK_MSG(!win_open_, "begin_window while a window is open");
  win_open_ = true;
  win_start_ = start;
  win_clean_ = clean;
  win_active_episodes_ = active_episodes;
  win_fct_us_.clear();
}

void SloTracker::close_window(double delivered_bps, int pairs_below, std::int64_t drops,
                              std::int64_t fault_drops, std::int64_t retransmits) {
  UFAB_CHECK_MSG(win_open_, "close_window without begin_window");
  win_open_ = false;

  const double win_sec = window_.sec();
  double wc_gap = 0.0;
  if (win_clean_) {
    ++clean_windows_;
    violation_seconds_ += static_cast<double>(pairs_below) * win_sec;
    wc_gap = wc_reference_bps_ > 0.0
                 ? std::max(0.0, 1.0 - delivered_bps / wc_reference_bps_)
                 : 0.0;
    clean_wc_gap_.add(wc_gap);
  }

  if (csv_open_) {
    char row[320];
    std::snprintf(row, sizeof(row),
                  "%d,%.3f,%d,%d,%llu,%.3f,%.3f,%.3f,%.6f,%.6f,%d,%.3f,%lld,%lld,%lld\n",
                  windows_, win_start_.sec(), win_clean_ ? 1 : 0, win_active_episodes_,
                  static_cast<unsigned long long>(win_fct_us_.count()),
                  win_fct_us_.quantile(0.5), win_fct_us_.quantile(0.99),
                  win_fct_us_.quantile(0.999), delivered_bps / 1e9, wc_gap, pairs_below,
                  violation_seconds_, static_cast<long long>(drops),
                  static_cast<long long>(fault_drops), static_cast<long long>(retransmits));
    csv_ << row;
  }
  ++windows_;
}

void SloTracker::finish() {
  if (csv_open_) {
    csv_.flush();
    csv_.close();
    csv_open_ = false;
  }
}

double SloTracker::sim_hours() const {
  return static_cast<double>(windows_) * window_.sec() / 3600.0;
}

bool SloTracker::check(const SloThresholds& t, std::vector<std::string>* out) const {
  bool ok = true;
  char buf[256];
  const auto fail = [&](const char* fmt, double got, double cap) {
    std::snprintf(buf, sizeof(buf), fmt, got, cap);
    if (out != nullptr) out->emplace_back(buf);
    ok = false;
  };

  const double hours = std::max(sim_hours(), 1e-9);
  if (violation_seconds_ / hours > t.violation_seconds_per_hour) {
    fail("guarantee-violation-seconds %.3f/h exceeds %.3f/h", violation_seconds_ / hours,
         t.violation_seconds_per_hour);
  }
  if (!clean_fct_us_.empty() && clean_fct_us_.quantile(0.99) / 1e3 > t.fct_p99_ms) {
    fail("clean-window FCT p99 %.3f ms exceeds %.3f ms", clean_fct_us_.quantile(0.99) / 1e3,
         t.fct_p99_ms);
  }
  if (!clean_wc_gap_.empty() && clean_wc_gap_.mean() > t.wc_gap_mean) {
    fail("mean work-conservation gap %.4f exceeds %.4f", clean_wc_gap_.mean(), t.wc_gap_mean);
  }
  if (!recovery_rtts_.empty() && recovery_rtts_.quantile(0.99) > t.recovery_p99_rtts) {
    fail("recovery p99 %.1f RTTs exceeds %.1f RTTs", recovery_rtts_.quantile(0.99),
         t.recovery_p99_rtts);
  }
  return ok;
}

}  // namespace ufab::soak

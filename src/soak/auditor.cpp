#include "src/soak/auditor.hpp"

#include <algorithm>
#include <cstdio>

#include "src/harness/fabric.hpp"

namespace ufab::soak {

InvariantAuditor::InvariantAuditor(harness::Fabric& fab, AuditorLimits limits)
    : fab_(fab), limits_(limits) {}

std::size_t InvariantAuditor::packets_in_flight() const {
  std::size_t in_flight = 0;
  for (int s = 0; s < fab_.sim().shard_count(); ++s) {
    const sim::PacketPool& pool = fab_.sim().shard_pool(s);
    in_flight += pool.allocated() - pool.free_count();
  }
  return in_flight;
}

void InvariantAuditor::report(const std::string& invariant, const std::string& detail) {
  ++violation_count_;
  if (violations_.size() < limits_.max_recorded) {
    violations_.push_back({invariant, detail, fab_.sim().now()});
  }
}

void InvariantAuditor::checkpoint() {
  ++checkpoints_;
  char buf[192];

  // Packet-conservation ledger: per shard, the freelist can never exceed
  // what was allocated, and fabric-wide in-flight must stay under the cap.
  for (int s = 0; s < fab_.sim().shard_count(); ++s) {
    const sim::PacketPool& pool = fab_.sim().shard_pool(s);
    if (pool.free_count() > pool.allocated()) {
      std::snprintf(buf, sizeof(buf), "shard %d: free %zu > allocated %zu", s,
                    pool.free_count(), pool.allocated());
      report("pool-ledger", buf);
    }
  }
  const std::size_t in_flight = packets_in_flight();
  peak_in_flight_ = std::max(peak_in_flight_, in_flight);
  if (in_flight > limits_.max_packets_in_flight) {
    std::snprintf(buf, sizeof(buf), "%zu packets in flight exceeds cap %zu", in_flight,
                  limits_.max_packets_in_flight);
    report("pool-bound", buf);
  }

  const std::size_t pending = fab_.sim().pending();
  peak_pending_ = std::max(peak_pending_, pending);
  if (pending > limits_.max_pending_events) {
    std::snprintf(buf, sizeof(buf), "%zu pending events exceeds cap %zu", pending,
                  limits_.max_pending_events);
    report("event-bound", buf);
  }

  for (const sim::Link* l : fab_.net().links()) {
    const std::int64_t q = l->queue_bytes();
    if (q < 0 || q > l->queue_limit_bytes()) {
      std::snprintf(buf, sizeof(buf), "%s queue %lld outside [0, %lld]", l->name().c_str(),
                    static_cast<long long>(q), static_cast<long long>(l->queue_limit_bytes()));
      report("queue-bound", buf);
    }
  }
}

void InvariantAuditor::final_audit() {
  char buf[192];
  // After the workload stops and the drain grace elapses, every link queue
  // must be empty — anything still queued is a packet the fabric lost track
  // of (recurring control timers carry no queued bytes).
  for (const sim::Link* l : fab_.net().links()) {
    if (l->queue_bytes() != 0) {
      std::snprintf(buf, sizeof(buf), "%s still queues %lld bytes after drain",
                    l->name().c_str(), static_cast<long long>(l->queue_bytes()));
      report("drain-queues", buf);
    }
  }
  // And the pool ledger must balance: all allocated packets back on the
  // freelists.  A nonzero residue is a leak (or a stuck event holding one).
  const std::size_t in_flight = packets_in_flight();
  if (in_flight != 0) {
    std::snprintf(buf, sizeof(buf), "%zu pool packets never returned", in_flight);
    report("drain-pool", buf);
  }
}

}  // namespace ufab::soak

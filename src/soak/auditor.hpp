// Invariant auditor: the soak harness's loud failure detector.
//
// A soak run is only meaningful if silent corruption cannot hide behind
// averaged metrics, so the auditor cross-checks conservation ledgers the
// engine already keeps:
//
//   * packet conservation — per-shard PacketPool ledgers (allocated vs free
//     vs recycled) must stay consistent, and the fabric-wide in-flight count
//     must stay under a hard bound at every checkpoint (a leak shows up as a
//     ratcheting floor long before it OOMs);
//   * event-queue sanity — the pending-event count must stay bounded during
//     the run, and after traffic stops plus a drain grace the queues must be
//     back to recurring timers only;
//   * link-queue sanity — every queue depth within [0, configured limit];
//   * episode post-conditions — reported by the runner (e.g. "every edge
//     re-registered within K RTTs of a switch reset") through report().
//
// Violations are recorded (capped) and counted; the soak exits nonzero if
// any occurred.  Checks run at window edges, so their cost is O(links) per
// window — invisible next to the packet work between windows.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/time.hpp"

namespace ufab::harness {
class Fabric;
}  // namespace ufab::harness

namespace ufab::soak {

struct Violation {
  std::string invariant;
  std::string detail;
  TimeNs at;
};

struct AuditorLimits {
  /// Hard cap on fabric-wide in-flight (allocated minus free) pool packets.
  std::size_t max_packets_in_flight = 200'000;
  /// Hard cap on pending simulator events at any checkpoint.
  std::size_t max_pending_events = 1'000'000;
  /// Violations kept verbatim; beyond this only the count grows.
  std::size_t max_recorded = 64;
};

class InvariantAuditor {
 public:
  explicit InvariantAuditor(harness::Fabric& fab, AuditorLimits limits = {});

  /// Periodic checks (pool ledger, pending bound, link-queue bounds).
  void checkpoint();

  /// End-of-run checks, after traffic stopped and a drain grace elapsed:
  /// link queues empty, no packets left in flight.
  void final_audit();

  /// Records an externally-checked post-condition failure (runner episodes).
  void report(const std::string& invariant, const std::string& detail);

  [[nodiscard]] const std::vector<Violation>& violations() const { return violations_; }
  [[nodiscard]] std::size_t violation_count() const { return violation_count_; }
  [[nodiscard]] std::size_t checkpoints() const { return checkpoints_; }

  // --- peaks, for memory-bound assertions ---
  [[nodiscard]] std::size_t peak_packets_in_flight() const { return peak_in_flight_; }
  [[nodiscard]] std::size_t peak_pending_events() const { return peak_pending_; }

 private:
  [[nodiscard]] std::size_t packets_in_flight() const;

  harness::Fabric& fab_;
  AuditorLimits limits_;
  std::vector<Violation> violations_;
  std::size_t violation_count_ = 0;
  std::size_t checkpoints_ = 0;
  std::size_t peak_in_flight_ = 0;
  std::size_t peak_pending_ = 0;
};

}  // namespace ufab::soak

// Long-horizon soak runner: a stretched production fabric under rotating
// adversity, SLO-guarded and memory-bounded.
//
// The runner fuses the pieces a week-long run needs: a small leaf-spine
// fabric scaled down in bandwidth (so an hour of simulated production is
// minutes of wall clock), the uFAB scheme with O(1)-memory stats, backlogged
// guarantee-holding pairs plus a short-flow background workload, the episode
// scheduler compiled onto one FaultPlane, the windowed SLO tracker streaming
// per-window rows to CSV, and the invariant auditor checking conservation
// ledgers at every window edge.
//
// Everything derives from SoakOptions (env-overridable via UFAB_SOAK_*), and
// every random draw flows from the one seed — two runs with the same seed
// produce byte-identical SLO CSVs.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/core/time.hpp"
#include "src/core/units.hpp"
#include "src/faults/fault_plane.hpp"
#include "src/soak/auditor.hpp"
#include "src/soak/episode.hpp"
#include "src/soak/slo.hpp"

namespace ufab::soak {

struct SoakOptions {
  std::uint64_t seed = 1;

  // --- horizon ---
  TimeNs duration = TimeNs{3'600'000'000'000};  ///< Simulated traffic time (1 h).
  TimeNs window = TimeNs{1'000'000'000};        ///< SLO accounting window.
  TimeNs drain_grace = TimeNs{2'000'000'000};   ///< Post-traffic drain before final audit.

  // --- stretched fabric (low rates => long horizons stay cheap) ---
  int n_leaf = 2;
  int n_spine = 2;
  int hosts_per_leaf = 2;
  Bandwidth host_bw = Bandwidth::mbps(25);
  Bandwidth fabric_bw = Bandwidth::mbps(50);
  TimeNs prop_delay = TimeNs{150'000};
  std::int64_t queue_limit_bytes = 100'000;
  TimeNs token_update_period = TimeNs{10'000'000};  ///< 10 ms GP epochs.

  // --- workload ---
  double guarantee_frac = 0.30;        ///< Per-pair guarantee as share of host_bw.
  std::int64_t backlog_chunk = 262'144;
  double flows_per_sec = 30.0;         ///< Background short-flow arrivals.
  std::int64_t flow_bytes_mean = 20'000;

  // --- episodes / SLO / audit ---
  EpisodeOptions episodes;
  SloThresholds slo;
  AuditorLimits audit;
  TimeNs recovery_allowance = TimeNs{2'000'000'000};  ///< Dirty tail after an episode.
  int recovery_poll_max_rtts = 128;   ///< Re-registration deadline after a reset.

  // --- memory bounds ---
  TimeNs meter_bucket = TimeNs{50'000'000};  ///< Pair/tenant metering grain.
  std::size_t meter_retain_buckets = 64;     ///< Trailing buckets kept per meter.

  // --- output / plumbing ---
  std::string csv_path;       ///< Per-window SLO rows; empty = summaries only.
  bool observability = true;  ///< Metrics + flight recorder (datapath events off).
  int shards = 0;             ///< >0: configure canonical sharding; 0: UFAB_SHARDS/serial.

  /// Reads UFAB_SOAK_SEED / UFAB_SOAK_DURATION_S / UFAB_SOAK_WINDOW_MS /
  /// UFAB_SOAK_CSV / UFAB_SOAK_SMOKE on top of the defaults.
  [[nodiscard]] static SoakOptions from_env();

  /// Shrinks the horizon to the CI smoke shape (~seconds of wall clock).
  void apply_smoke();
};

struct SoakReport {
  // SLO summary.
  int windows = 0;
  int clean_windows = 0;
  double violation_seconds = 0.0;
  double fct_p99_us_clean = 0.0;
  double wc_gap_mean = 0.0;
  double recovery_p99_rtts = 0.0;
  std::uint64_t fct_samples = 0;
  std::vector<std::string> slo_breaches;

  // Faults / episodes.
  faults::FaultCounters faults;
  int episodes_total = 0;
  int recoveries_measured = 0;

  // Invariants.
  std::size_t invariant_violations = 0;
  std::vector<Violation> violations;
  std::size_t peak_packets_in_flight = 0;
  std::size_t peak_pending_events = 0;

  // Memory-bound evidence: these stay flat as the horizon grows.
  std::size_t meter_buckets_retained_max = 0;
  std::uint64_t rtt_exact_samples = 0;  ///< Must be 0 (streaming stats only).
  std::uint64_t rtt_stream_samples = 0;

  // Engine.
  std::uint64_t events = 0;
  double sim_seconds = 0.0;
  double wall_seconds = 0.0;
  std::vector<std::string> forced_sequential;

  [[nodiscard]] bool ok() const {
    return invariant_violations == 0 && slo_breaches.empty();
  }
};

class SoakRunner {
 public:
  explicit SoakRunner(SoakOptions opts);
  ~SoakRunner();
  SoakRunner(const SoakRunner&) = delete;
  SoakRunner& operator=(const SoakRunner&) = delete;

  /// Builds the fabric, compiles the schedule, runs to completion. Call once.
  SoakReport run();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace ufab::soak

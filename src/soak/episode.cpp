#include "src/soak/episode.hpp"

#include <algorithm>
#include <cstdio>

#include "src/core/assert.hpp"
#include "src/faults/fault_plane.hpp"

namespace ufab::soak {

const char* to_string(EpisodeKind k) {
  switch (k) {
    case EpisodeKind::kLinkFlap:
      return "link-flap";
    case EpisodeKind::kWireLoss:
      return "wire-loss";
    case EpisodeKind::kSwitchReset:
      return "switch-reset";
    case EpisodeKind::kStaleTelemetry:
      return "stale-telemetry";
    case EpisodeKind::kCorruptTelemetry:
      return "corrupt-telemetry";
    case EpisodeKind::kBloomSaturation:
      return "bloom-saturation";
    case EpisodeKind::kTrafficBurst:
      return "traffic-burst";
    case EpisodeKind::kHotspot:
      return "hotspot";
  }
  return "?";
}

std::string Episode::describe() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "%s target=%d [%.3fs, %.3fs) intensity=%.4f aux=%d",
                to_string(kind), target, start.sec(), end.sec(), intensity, aux);
  return buf;
}

EpisodeScheduler::EpisodeScheduler(std::uint64_t seed, EpisodeOptions opts)
    : rng_(Rng{seed}.fork("soak-episodes")), opts_(opts) {}

const std::vector<Episode>& EpisodeScheduler::generate(TimeNs horizon, int n_trunk_links,
                                                       int n_switches, int n_hosts) {
  UFAB_CHECK_MSG(episodes_.empty(), "EpisodeScheduler::generate called twice");
  UFAB_CHECK(n_trunk_links > 0 && n_switches > 0 && n_hosts > 0);

  TimeNs t = opts_.warmup;
  TimeNs prev_end = TimeNs::zero();
  int idx = 0;
  while (t < horizon) {
    Episode ep;
    // Rotate through the kinds so every adversity recurs, with the draw order
    // still seed-stable; the rotation is perturbed so targets/durations vary.
    ep.kind = static_cast<EpisodeKind>(idx % kEpisodeKindCount);
    ++idx;

    const double dur_draw = rng_.exponential(static_cast<double>(opts_.mean_duration.ns()));
    const TimeNs dur{std::clamp(static_cast<std::int64_t>(dur_draw),
                                std::int64_t{100'000'000}, opts_.max_duration.ns())};
    ep.start = t;
    ep.end = t + dur;

    switch (ep.kind) {
      case EpisodeKind::kLinkFlap:
        ep.target = static_cast<int>(rng_.below(static_cast<std::uint64_t>(n_trunk_links)));
        ep.aux = 1 + static_cast<int>(rng_.below(3));  // 1-3 down/up cycles
        break;
      case EpisodeKind::kWireLoss:
        ep.target = static_cast<int>(rng_.below(static_cast<std::uint64_t>(n_trunk_links)));
        ep.intensity = rng_.uniform(0.005, opts_.max_loss_rate);
        break;
      case EpisodeKind::kSwitchReset:
        ep.target = static_cast<int>(rng_.below(static_cast<std::uint64_t>(n_switches)));
        ep.end = ep.start;  // instantaneous; recovery happens after.
        break;
      case EpisodeKind::kStaleTelemetry:
        ep.target = static_cast<int>(rng_.below(static_cast<std::uint64_t>(n_switches)));
        break;
      case EpisodeKind::kCorruptTelemetry:
        ep.target = static_cast<int>(rng_.below(static_cast<std::uint64_t>(n_switches)));
        // Scale Φ/W registers by x0.25 .. x4 — both directions of corruption.
        ep.intensity = rng_.uniform() < 0.5 ? rng_.uniform(0.25, 0.9) : rng_.uniform(1.2, 4.0);
        break;
      case EpisodeKind::kBloomSaturation:
        ep.target = static_cast<int>(rng_.below(static_cast<std::uint64_t>(n_switches)));
        ep.aux = 500 + static_cast<int>(rng_.below(4500));
        ep.end = ep.start;  // the junk keys land at once
        break;
      case EpisodeKind::kTrafficBurst:
        ep.intensity = rng_.uniform(2.0, 6.0);  // x background flow rate
        ep.aux = 8 + static_cast<int>(rng_.below(24));
        break;
      case EpisodeKind::kHotspot:
        ep.target = static_cast<int>(rng_.below(static_cast<std::uint64_t>(n_hosts)));
        ep.intensity = rng_.uniform(3.0, 8.0);
        ep.aux = 12 + static_cast<int>(rng_.below(24));
        break;
    }
    episodes_.push_back(ep);
    prev_end = std::max(prev_end, ep.end);

    // Next start: usually after cooldown plus an exponential clean gap, but a
    // configurable fraction starts while the current episode still runs.
    if (rng_.uniform() < opts_.overlap_fraction && ep.end > ep.start) {
      const double frac = rng_.uniform(0.2, 0.8);
      t = ep.start + TimeNs{static_cast<std::int64_t>(static_cast<double>(dur.ns()) * frac)};
    } else {
      const double gap = rng_.exponential(static_cast<double>(opts_.mean_gap.ns()));
      t = prev_end + opts_.min_cooldown + TimeNs{static_cast<std::int64_t>(gap)};
    }
  }
  // Episodes that would straddle the horizon are clipped so the run ends in a
  // recoverable state rather than mid-outage.
  for (Episode& ep : episodes_) ep.end = std::min(ep.end, horizon);
  std::stable_sort(episodes_.begin(), episodes_.end(),
                   [](const Episode& a, const Episode& b) { return a.start < b.start; });
  return episodes_;
}

void EpisodeScheduler::compile(faults::FaultPlane& plane, const std::vector<LinkId>& trunk_links,
                               const std::vector<NodeId>& switches) const {
  UFAB_CHECK_MSG(!plane.armed(), "compile() must precede FaultPlane::arm()");
  for (const Episode& ep : episodes_) {
    switch (ep.kind) {
      case EpisodeKind::kLinkFlap: {
        const LinkId link = trunk_links.at(static_cast<std::size_t>(ep.target));
        const int repeats = std::max(1, ep.aux);
        const TimeNs period{(ep.end - ep.start).ns() / repeats};
        if (period.ns() <= 0) break;
        // Down for the first third of each cycle, up for the rest.
        plane.flap(link, ep.start, ep.start + TimeNs{period.ns() / 3}, repeats, period);
        break;
      }
      case EpisodeKind::kWireLoss: {
        const LinkId link = trunk_links.at(static_cast<std::size_t>(ep.target));
        // Intensity ramp: a third at half rate, peak in the middle, then back
        // down — soak loss arrives and leaves gradually, like real brownouts.
        const std::int64_t third = (ep.end - ep.start).ns() / 3;
        if (third <= 0) break;
        const TimeNs a = ep.start + TimeNs{third};
        const TimeNs b = ep.start + TimeNs{2 * third};
        plane.loss(link, ep.intensity / 2.0, faults::LossClass::kAll, ep.start, a);
        plane.loss(link, ep.intensity, faults::LossClass::kAll, a, b);
        plane.loss(link, ep.intensity / 2.0, faults::LossClass::kAll, b, ep.end);
        break;
      }
      case EpisodeKind::kSwitchReset:
        plane.reset_switch_state(switches.at(static_cast<std::size_t>(ep.target)), ep.start);
        break;
      case EpisodeKind::kStaleTelemetry:
        if (ep.end > ep.start) {
          plane.stale_telemetry(switches.at(static_cast<std::size_t>(ep.target)), ep.start,
                                ep.end);
        }
        break;
      case EpisodeKind::kCorruptTelemetry:
        if (ep.end > ep.start) {
          plane.corrupt_telemetry(switches.at(static_cast<std::size_t>(ep.target)), ep.intensity,
                                  ep.start, ep.end);
        }
        break;
      case EpisodeKind::kBloomSaturation:
        plane.saturate_bloom(switches.at(static_cast<std::size_t>(ep.target)),
                             static_cast<std::size_t>(ep.aux), ep.start);
        break;
      case EpisodeKind::kTrafficBurst:
      case EpisodeKind::kHotspot:
        break;  // workload-side; the runner schedules these
    }
  }
}

std::vector<std::pair<TimeNs, TimeNs>> EpisodeScheduler::dirty_intervals(
    TimeNs recovery_allowance) const {
  std::vector<std::pair<TimeNs, TimeNs>> raw;
  raw.reserve(episodes_.size());
  for (const Episode& ep : episodes_) raw.emplace_back(ep.start, ep.end + recovery_allowance);
  std::sort(raw.begin(), raw.end());
  std::vector<std::pair<TimeNs, TimeNs>> out;
  for (const auto& iv : raw) {
    if (!out.empty() && iv.first <= out.back().second) {
      out.back().second = std::max(out.back().second, iv.second);
    } else {
      out.push_back(iv);
    }
  }
  return out;
}

}  // namespace ufab::soak

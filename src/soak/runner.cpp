#include "src/soak/runner.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "src/core/assert.hpp"
#include "src/core/log.hpp"
#include "src/harness/experiment.hpp"
#include "src/harness/schemes.hpp"
#include "src/topo/builders.hpp"
#include "src/ufab/edge_agent.hpp"

namespace ufab::soak {

SoakOptions SoakOptions::from_env() {
  SoakOptions o;
  if (const char* v = std::getenv("UFAB_SOAK_SEED"); v != nullptr && v[0] != '\0') {
    o.seed = static_cast<std::uint64_t>(std::strtoull(v, nullptr, 10));
  }
  if (const char* v = std::getenv("UFAB_SOAK_SMOKE"); v != nullptr && v[0] == '1') {
    o.apply_smoke();
  }
  if (const char* v = std::getenv("UFAB_SOAK_DURATION_S"); v != nullptr && v[0] != '\0') {
    o.duration = TimeNs{static_cast<std::int64_t>(std::strtod(v, nullptr) * 1e9)};
  }
  if (const char* v = std::getenv("UFAB_SOAK_WINDOW_MS"); v != nullptr && v[0] != '\0') {
    o.window = TimeNs{static_cast<std::int64_t>(std::strtod(v, nullptr) * 1e6)};
  }
  if (const char* v = std::getenv("UFAB_SOAK_CSV"); v != nullptr && v[0] != '\0') {
    o.csv_path = v;
  }
  return o;
}

void SoakOptions::apply_smoke() {
  duration = TimeNs{6'000'000'000};
  window = TimeNs{250'000'000};
  drain_grace = TimeNs{1'500'000'000};
  episodes.warmup = TimeNs{500'000'000};
  episodes.mean_gap = TimeNs{700'000'000};
  episodes.min_cooldown = TimeNs{350'000'000};
  episodes.mean_duration = TimeNs{500'000'000};
  episodes.max_duration = TimeNs{1'200'000'000};
  recovery_allowance = TimeNs{500'000'000};
}

struct SoakRunner::Impl {
  explicit Impl(SoakOptions o) : opts(std::move(o)) {}

  SoakOptions opts;
  std::unique_ptr<harness::Fabric> fab;
  std::unique_ptr<faults::FaultPlane> plane;
  std::unique_ptr<EpisodeScheduler> scheduler;
  std::unique_ptr<SloTracker> slo;
  std::unique_ptr<InvariantAuditor> auditor;

  std::vector<VmPairId> backlog_pairs;
  std::vector<VmPairId> bg_pairs;           ///< Short-flow pairs, src-half x dst-half.
  std::vector<std::size_t> bg_pairs_by_dst;  ///< Offsets: bg pairs grouped by dst host.
  std::vector<LinkId> trunk_links;
  std::vector<NodeId> switch_ids;

  Rng flows_rng{1};
  TimeNs rtt_est = TimeNs::zero();
  double guarantee_bps = 0.0;
  double wc_reference_bps = 0.0;
  double mean_flow_gap_sec = 0.0;

  // Window bookkeeping.
  std::vector<std::pair<TimeNs, TimeNs>> dirty;
  std::vector<std::int64_t> prev_pair_bytes;
  std::int64_t prev_drops = 0;
  std::int64_t prev_fault_drops = 0;
  std::int64_t prev_retx = 0;
  int recoveries = 0;

  void build();
  void flow_arrival();
  void schedule_workload();
  void schedule_traffic_episodes();
  void schedule_recovery_polls();
  void start_windows();
  void window_tick();
  [[nodiscard]] bool window_clean(TimeNs start) const;
  [[nodiscard]] int active_episodes(TimeNs start) const;
  [[nodiscard]] bool all_registered();
  void poll_recovery(TimeNs reset_at, int tries);
  SoakReport finish(double wall_seconds);

  [[nodiscard]] std::int64_t sum_drops() const {
    std::int64_t d = 0;
    for (const sim::Link* l : fab->net().links()) d += l->drops();
    return d;
  }
  [[nodiscard]] std::int64_t sum_fault_drops() const {
    std::int64_t d = 0;
    for (const sim::Link* l : fab->net().links()) d += l->fault_drops();
    return d;
  }
  [[nodiscard]] std::int64_t sum_retransmits() const {
    std::int64_t r = 0;
    for (std::size_t h = 0; h < fab->net().host_count(); ++h) {
      r += fab->stack_at(HostId{static_cast<std::int32_t>(h)}).retransmits();
    }
    return r;
  }
};

void SoakRunner::Impl::build() {
  topo::FabricOptions fopts;
  fopts.host_bw = opts.host_bw;
  fopts.fabric_bw = opts.fabric_bw;
  fopts.prop_delay = opts.prop_delay;
  fopts.queue_limit_bytes = opts.queue_limit_bytes;

  fab = std::make_unique<harness::Fabric>(
      [&](sim::Simulator& s) {
        return topo::make_leaf_spine(s, opts.n_leaf, opts.n_spine, opts.hosts_per_leaf, fopts);
      },
      opts.seed);

  // Sharding: an explicit option wins; otherwise honor UFAB_SHARDS so the
  // soak exercises the same engine configuration the benches do.  The fault
  // plane will pin execution to sequential epochs either way — which is
  // exactly the path the sim.forced_sequential gauge exists to expose.
  int shards = opts.shards;
  if (shards == 0) {
    if (const char* v = std::getenv("UFAB_SHARDS"); v != nullptr && v[0] != '\0') {
      shards = std::max(1, std::atoi(v));
    }
  }
  if (shards > 0) fab->configure_sharding(shards);

  // UFAB_PROF attaches the engine profiling plane, same as the benches —
  // prof.* gauges then show up in the soak's metric snapshots.
  if (const int prof_level = obs::Profiler::env_level(); prof_level > 0) {
    obs::ProfOptions popts;
    popts.level = prof_level;
    fab->sim().enable_profiling(popts);
  }

  if (opts.observability) {
    obs::ObsOptions oo = harness::obs_options_from_env();
    // Per-packet wire events would dominate a multi-hour ring; keep the
    // recorder for control-plane history (faults, resets, migrations).
    oo.record_datapath = false;
    oo.ring_capacity = 1 << 14;
    fab->enable_observability(oo);
  }

  harness::SchemeOptions sopts;
  sopts.ufab.token_update_period = opts.token_update_period;
  sopts.transport.bounded_rtt_stats = true;
  harness::install_scheme(*fab, harness::Scheme::kUfab, sopts);
  fab->install_pair_metering(opts.meter_bucket, opts.meter_retain_buckets);
  fab->install_tenant_metering(opts.meter_bucket, opts.meter_retain_buckets);

  // Base RTT estimate for the stretched fabric: 4 hops each way plus one
  // MTU serialization at each end.  Used for recovery polling cadence only.
  const double mtu_sec = 1500.0 * 8.0 / opts.host_bw.bits_per_sec();
  rtt_est = TimeNs{8 * opts.prop_delay.ns() +
                   2 * static_cast<std::int64_t>(mtu_sec * 1e9)};

  // Tenants: one guarantee-holding VF per backlogged pair (first half of the
  // hosts sends to the second half), plus one background tenant whose pairs
  // carry the short flows.
  const int n_hosts = opts.n_leaf * opts.hosts_per_leaf;
  const int n_half = n_hosts / 2;
  UFAB_CHECK_MSG(n_half >= 1, "soak fabric needs at least 2 hosts");
  guarantee_bps = opts.host_bw.bits_per_sec() * opts.guarantee_frac;

  for (int i = 0; i < n_half; ++i) {
    const TenantId t = fab->vms().add_tenant("VF-" + std::to_string(i + 1),
                                             Bandwidth::bps(guarantee_bps));
    const VmId src = fab->vms().add_vm(t, HostId{i});
    const VmId dst = fab->vms().add_vm(t, HostId{n_half + i});
    backlog_pairs.push_back(VmPairId{src, dst});
  }
  const TenantId bg = fab->vms().add_tenant("BG", Bandwidth::bps(guarantee_bps * 0.1));
  std::vector<VmId> bg_src, bg_dst;
  for (int i = 0; i < n_half; ++i) bg_src.push_back(fab->vms().add_vm(bg, HostId{i}));
  for (int i = 0; i < n_half; ++i) {
    bg_dst.push_back(fab->vms().add_vm(bg, HostId{n_half + i}));
  }
  // Grouped by destination so hotspot episodes can aim at one victim host.
  for (int d = 0; d < n_half; ++d) {
    bg_pairs_by_dst.push_back(bg_pairs.size());
    for (int s = 0; s < n_half; ++s) {
      bg_pairs.push_back(VmPairId{bg_src[static_cast<std::size_t>(s)],
                                  bg_dst[static_cast<std::size_t>(d)]});
    }
  }

  // Work conservation reference: what the backlogged half should deliver in
  // aggregate when nothing is broken — eta-scaled host lines with slack for
  // header overhead and the background share.
  wc_reference_bps = static_cast<double>(n_half) * opts.host_bw.bits_per_sec() * 0.95 * 0.80;

  // Target sets for the episode scheduler.
  for (const sim::Switch* sw : fab->net().switches()) switch_ids.push_back(sw->id());
  for (const sim::Link* l : fab->net().links()) {
    const bool owner_is_switch =
        std::find(switch_ids.begin(), switch_ids.end(), fab->net().link_owner(l->id())) !=
        switch_ids.end();
    const bool peer_is_switch =
        std::find(switch_ids.begin(), switch_ids.end(), l->peer()->id()) != switch_ids.end();
    if (owner_is_switch && peer_is_switch) trunk_links.push_back(l->id());
  }
  UFAB_CHECK_MSG(!trunk_links.empty(), "leaf-spine fabric with no trunk links?");

  plane = std::make_unique<faults::FaultPlane>(*fab, opts.seed + 1000);
  scheduler = std::make_unique<EpisodeScheduler>(opts.seed, opts.episodes);
  scheduler->generate(opts.duration, static_cast<int>(trunk_links.size()),
                      static_cast<int>(switch_ids.size()), n_half);
  if (fab->observability() != nullptr) plane->attach_obs(*fab->observability());
  scheduler->compile(*plane, trunk_links, switch_ids);
  plane->arm();

  dirty = scheduler->dirty_intervals(opts.recovery_allowance);

  slo = std::make_unique<SloTracker>(opts.window, guarantee_bps, wc_reference_bps,
                                     opts.csv_path);
  auditor = std::make_unique<InvariantAuditor>(*fab, opts.audit);
  flows_rng = Rng{opts.seed}.fork("soak-flows");
  mean_flow_gap_sec = 1.0 / std::max(opts.flows_per_sec, 1e-3);
  prev_pair_bytes.assign(backlog_pairs.size(), 0);

  if (obs::Obs* o = fab->observability(); o != nullptr && o->enabled()) {
    auto& m = o->metrics();
    m.gauge_fn("soak.invariant_violations", {},
               [this] { return static_cast<double>(auditor->violation_count()); });
    m.gauge_fn("soak.windows", {}, [this] { return static_cast<double>(slo->windows()); });
    m.gauge_fn("soak.violation_seconds", {}, [this] { return slo->violation_seconds(); });
  }
}

void SoakRunner::Impl::schedule_workload() {
  for (const VmPairId pair : backlog_pairs) {
    fab->keep_backlogged(pair, TimeNs::zero(), opts.duration, opts.backlog_chunk);
  }
  // Background short flows: FCT probes for the SLO tracker.  Lazy chain (one
  // pending arrival at a time) — the engine runs sequential epochs under the
  // fault plane, so in-event draws are deterministic.
  fab->sim().at(TimeNs{1'000'000}, [this] { flow_arrival(); });

  // Deliveries: user_tag 1 marks an SLO-tracked short flow.
  fab->add_delivery_listener([this](const transport::Message& msg, TimeNs at) {
    if (msg.user_tag == 1) slo->record_fct_us((at - msg.created_at).us());
  });
}

void SoakRunner::Impl::schedule_traffic_episodes() {
  Rng rng = Rng{opts.seed}.fork("soak-bursts");
  for (const Episode& ep : scheduler->episodes()) {
    if (ep.kind != EpisodeKind::kTrafficBurst && ep.kind != EpisodeKind::kHotspot) continue;
    const std::int64_t span = std::max<std::int64_t>((ep.end - ep.start).ns(), 1);
    for (int j = 0; j < ep.aux; ++j) {
      const TimeNs at = ep.start + TimeNs{static_cast<std::int64_t>(
                                       rng.uniform() * static_cast<double>(span))};
      std::size_t pick;
      if (ep.kind == EpisodeKind::kHotspot) {
        // All burst flows converge on one victim destination host.
        const std::size_t base =
            bg_pairs_by_dst[static_cast<std::size_t>(ep.target) % bg_pairs_by_dst.size()];
        const std::size_t per_dst = bg_pairs.size() / bg_pairs_by_dst.size();
        pick = base + rng.below(per_dst);
      } else {
        pick = rng.below(bg_pairs.size());
      }
      const double size_draw =
          rng.exponential(static_cast<double>(opts.flow_bytes_mean) * ep.intensity);
      const std::int64_t bytes =
          std::clamp<std::int64_t>(static_cast<std::int64_t>(size_draw), 1000,
                                   opts.flow_bytes_mean * 20);
      const VmPairId pair = bg_pairs[pick];
      fab->sim().at(at, [this, pair, bytes] {
        if (fab->sim().now() < opts.duration) fab->send(pair, bytes, /*user_tag=*/2);
      });
    }
  }
}

void SoakRunner::Impl::flow_arrival() {
  if (fab->sim().now() >= opts.duration) return;
  const VmPairId pair = bg_pairs[flows_rng.below(bg_pairs.size())];
  const double size_draw = flows_rng.exponential(static_cast<double>(opts.flow_bytes_mean));
  const std::int64_t bytes = std::clamp<std::int64_t>(
      static_cast<std::int64_t>(size_draw), 1000, opts.flow_bytes_mean * 20);
  fab->send(pair, bytes, /*user_tag=*/1);
  const double gap = flows_rng.exponential(mean_flow_gap_sec);
  fab->sim().after(TimeNs{static_cast<std::int64_t>(gap * 1e9)}, [this] { flow_arrival(); });
}

bool SoakRunner::Impl::window_clean(TimeNs start) const {
  const TimeNs end = start + opts.window;
  for (const auto& iv : dirty) {
    if (iv.first >= end) break;
    if (iv.second > start) return false;
  }
  return true;
}

int SoakRunner::Impl::active_episodes(TimeNs start) const {
  const TimeNs end = start + opts.window;
  int n = 0;
  for (const Episode& ep : scheduler->episodes()) {
    if (ep.start >= end) break;
    if (ep.end > start || (ep.start >= start && ep.start < end)) ++n;
  }
  return n;
}

void SoakRunner::Impl::start_windows() {
  slo->begin_window(TimeNs::zero(), window_clean(TimeNs::zero()),
                    active_episodes(TimeNs::zero()));
  fab->schedule_global(opts.window, [this] { window_tick(); });
}

void SoakRunner::Impl::window_tick() {
  const TimeNs now = fab->sim().now();

  // Close the window that just ended.
  std::int64_t delivered = 0;
  int below = 0;
  for (std::size_t i = 0; i < backlog_pairs.size(); ++i) {
    const RateMeter* m = fab->pair_meter(backlog_pairs[i]);
    const std::int64_t total = m != nullptr ? m->total_bytes() : 0;
    const std::int64_t delta = total - prev_pair_bytes[i];
    prev_pair_bytes[i] = total;
    delivered += delta;
    const double bps = static_cast<double>(delta) * 8.0 / opts.window.sec();
    if (bps < guarantee_bps * 0.95) ++below;
  }
  const std::int64_t drops = sum_drops();
  const std::int64_t fault_drops = sum_fault_drops();
  const std::int64_t retx = sum_retransmits();
  slo->close_window(static_cast<double>(delivered) * 8.0 / opts.window.sec(), below,
                    drops - prev_drops, fault_drops - prev_fault_drops, retx - prev_retx);
  prev_drops = drops;
  prev_fault_drops = fault_drops;
  prev_retx = retx;

  auditor->checkpoint();

  if (now + opts.window <= opts.duration) {
    slo->begin_window(now, window_clean(now), active_episodes(now));
    fab->schedule_global(now + opts.window, [this] { window_tick(); });
  }
}

bool SoakRunner::Impl::all_registered() {
  for (const VmPairId pair : backlog_pairs) {
    const HostId src = fab->vms().host_of(pair.src);
    auto& agent = fab->stack_as<edge::EdgeAgent>(src);
    edge::UfabConnection* conn = agent.ufab_connection(pair);
    if (conn == nullptr || !conn->registered) return false;
  }
  return true;
}

void SoakRunner::Impl::poll_recovery(TimeNs reset_at, int tries) {
  if (all_registered()) {
    slo->record_recovery_rtts(static_cast<double>(tries));
    ++recoveries;
    return;
  }
  if (tries >= opts.recovery_poll_max_rtts) {
    char buf[128];
    std::snprintf(buf, sizeof(buf),
                  "edges not re-registered within %d RTTs of reset at %.3fs", tries,
                  reset_at.sec());
    auditor->report("reregistration", buf);
    return;
  }
  fab->sim().after(rtt_est, [this, reset_at, tries] { poll_recovery(reset_at, tries + 1); });
}

void SoakRunner::Impl::schedule_recovery_polls() {
  for (const Episode& ep : scheduler->episodes()) {
    if (ep.kind != EpisodeKind::kSwitchReset) continue;
    const TimeNs start = ep.start;
    fab->sim().at(start + rtt_est, [this, start] { poll_recovery(start, 1); });
  }
}

SoakReport SoakRunner::Impl::finish(double wall_seconds) {
  slo->finish();

  SoakReport r;
  r.windows = slo->windows();
  r.clean_windows = slo->clean_windows();
  r.violation_seconds = slo->violation_seconds();
  r.fct_p99_us_clean = slo->clean_fct_us().empty() ? 0.0 : slo->clean_fct_us().quantile(0.99);
  r.wc_gap_mean = slo->clean_wc_gap().mean();
  r.recovery_p99_rtts =
      slo->recovery_rtts().empty() ? 0.0 : slo->recovery_rtts().quantile(0.99);
  r.fct_samples = slo->all_fct_us().count();
  slo->check(opts.slo, &r.slo_breaches);

  r.faults = plane->counters();
  r.episodes_total = static_cast<int>(scheduler->episodes().size());
  r.recoveries_measured = recoveries;

  r.invariant_violations = auditor->violation_count();
  r.violations = auditor->violations();
  r.peak_packets_in_flight = auditor->peak_packets_in_flight();
  r.peak_pending_events = auditor->peak_pending_events();

  for (const VmPairId pair : backlog_pairs) {
    if (const RateMeter* m = fab->pair_meter(pair); m != nullptr) {
      r.meter_buckets_retained_max = std::max(r.meter_buckets_retained_max,
                                              m->retained_buckets());
    }
  }
  for (std::size_t h = 0; h < fab->net().host_count(); ++h) {
    const auto& stack = fab->stack_at(HostId{static_cast<std::int32_t>(h)});
    r.rtt_exact_samples += static_cast<std::uint64_t>(stack.rtt_samples_us().count());
    r.rtt_stream_samples += stack.rtt_stream_us().count();
  }

  r.events = fab->sim().events_processed();
  r.sim_seconds = fab->sim().now().sec();
  r.wall_seconds = wall_seconds;
  r.forced_sequential = fab->sim().sequential_reasons();
  return r;
}

SoakRunner::SoakRunner(SoakOptions opts) : impl_(std::make_unique<Impl>(std::move(opts))) {}
SoakRunner::~SoakRunner() = default;

SoakReport SoakRunner::run() {
  Impl& im = *impl_;
  UFAB_CHECK_MSG(im.fab == nullptr, "SoakRunner::run called twice");
  const auto wall_start = std::chrono::steady_clock::now();

  im.build();
  im.schedule_workload();
  im.schedule_traffic_episodes();
  im.schedule_recovery_polls();
  im.start_windows();

  UFAB_LOG_INFO("soak: seed=%llu duration=%.1fs window=%.3fs episodes=%d",
                static_cast<unsigned long long>(im.opts.seed), im.opts.duration.sec(),
                im.opts.window.sec(), static_cast<int>(im.scheduler->episodes().size()));

  im.fab->sim().run_until(im.opts.duration + im.opts.drain_grace);
  im.auditor->final_audit();

  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start).count();
  return im.finish(wall);
}

}  // namespace ufab::soak

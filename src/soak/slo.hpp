// Windowed SLO tracking for the soak harness.
//
// The tracker consumes the run as a stream of fixed-width windows.  Within a
// window it absorbs FCT and recovery samples into P² estimators; at the
// window edge the runner hands it the window's delivered volume and error
// counters and the tracker appends one CSV row to disk and folds the window
// into cumulative O(1)-memory summaries.  Nothing here grows with simulated
// time: per-window state resets at each edge, cumulative state is Welford
// moments plus five-marker quantile estimators, and rows go to the stream
// instead of RAM.
//
// SLOs are enforced on *clean* windows only — windows with no active episode
// and past the recovery allowance of the last one.  Guarantee shortfalls and
// work-conservation gaps during a fault window are the fault's fault; what
// the soak guards is that the fabric recovers and that clean operation meets
// its targets for a week at a stretch.
#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "src/core/time.hpp"
#include "src/stats/p2.hpp"

namespace ufab::soak {

/// Pass/fail gates checked at the end of a run.
struct SloThresholds {
  /// Max accumulated guarantee-violation-seconds over clean windows
  /// (pair-seconds delivering below guarantee), per simulated hour.
  double violation_seconds_per_hour = 5.0;
  /// Max p99 FCT over clean-window short flows, in milliseconds.
  double fct_p99_ms = 400.0;
  /// Max mean work-conservation gap over clean windows (fraction of the
  /// reference aggregate not delivered).
  double wc_gap_mean = 0.25;
  /// Max p99 recovery time after a switch reset, in base RTTs.
  double recovery_p99_rtts = 64.0;
};

class SloTracker {
 public:
  /// `window` is the accounting width; `guarantee_bps` the per-pair floor
  /// enforced in clean windows; `wc_reference_bps` the aggregate delivered
  /// rate a work-conserving fabric should sustain.  `csv_path` empty means
  /// summaries only, no file.
  SloTracker(TimeNs window, double guarantee_bps, double wc_reference_bps,
             const std::string& csv_path);

  // --- streaming inputs (any time within the current window) ---
  void record_fct_us(double fct_us);
  void record_recovery_rtts(double rtts);

  // --- window lifecycle (driven by the runner) ---
  void begin_window(TimeNs start, bool clean, int active_episodes);
  /// Closes the current window: `delivered_bps` aggregate goodput of the
  /// tracked pairs, `pairs_below` how many delivered under guarantee,
  /// deltas of drop/retransmit counters over the window.
  void close_window(double delivered_bps, int pairs_below, std::int64_t drops,
                    std::int64_t fault_drops, std::int64_t retransmits);
  /// Flushes and closes the CSV stream.
  void finish();

  // --- cumulative summaries ---
  [[nodiscard]] int windows() const { return windows_; }
  [[nodiscard]] int clean_windows() const { return clean_windows_; }
  [[nodiscard]] double violation_seconds() const { return violation_seconds_; }
  [[nodiscard]] const StreamingStats& clean_fct_us() const { return clean_fct_us_; }
  [[nodiscard]] const StreamingStats& all_fct_us() const { return all_fct_us_; }
  [[nodiscard]] const StreamingStats& recovery_rtts() const { return recovery_rtts_; }
  [[nodiscard]] const StreamingStats& clean_wc_gap() const { return clean_wc_gap_; }
  [[nodiscard]] double sim_hours() const;

  /// Evaluates `t` against the run; appends one line per breach to `out`.
  /// Returns true when every gate passes.
  bool check(const SloThresholds& t, std::vector<std::string>* out) const;

 private:
  TimeNs window_;
  double guarantee_bps_;
  double wc_reference_bps_;
  std::ofstream csv_;
  bool csv_open_ = false;

  // Current window.
  TimeNs win_start_ = TimeNs::zero();
  bool win_clean_ = false;
  bool win_open_ = false;
  int win_active_episodes_ = 0;
  StreamingStats win_fct_us_;

  // Cumulative (all O(1) memory).
  int windows_ = 0;
  int clean_windows_ = 0;
  double violation_seconds_ = 0.0;
  StreamingStats clean_fct_us_;
  StreamingStats all_fct_us_;
  StreamingStats recovery_rtts_;
  StreamingStats clean_wc_gap_;
};

}  // namespace ufab::soak

#include "src/harness/parallel_sweep.hpp"

#include <atomic>
#include <cstdlib>
#include <thread>

#include "src/core/assert.hpp"

namespace ufab::harness {

int ParallelSweep::jobs_from_env() {
  if (const char* env = std::getenv("UFAB_JOBS"); env != nullptr && env[0] != '\0') {
    const int jobs = std::atoi(env);
    if (jobs >= 1) return jobs;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

void ParallelSweep::run_indexed(int n, const std::function<void(int)>& fn) {
  UFAB_CHECK(n >= 0);
  if (n == 0) return;
  const int workers = jobs_ < n ? jobs_ : n;
  if (workers <= 1) {
    // Inline serial path: same thread, same order, no thread machinery —
    // UFAB_JOBS=1 behaves exactly like the pre-sweep benches.
    for (int i = 0; i < n; ++i) fn(i);
    return;
  }

  std::atomic<int> next{0};
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(n));
  auto worker = [&] {
    while (true) {
      const int i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        fn(i);
      } catch (...) {
        errors[static_cast<std::size_t>(i)] = std::current_exception();
      }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(workers));
  for (int w = 0; w < workers; ++w) threads.emplace_back(worker);
  for (std::thread& t : threads) t.join();

  // Deterministic error propagation: the lowest-index failure wins.
  for (const std::exception_ptr& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

}  // namespace ufab::harness

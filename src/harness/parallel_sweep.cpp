#include "src/harness/parallel_sweep.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "src/core/assert.hpp"
#include "src/obs/profiler.hpp"

namespace ufab::harness {

namespace {
[[nodiscard]] std::int64_t wall_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

int ParallelSweep::jobs_from_env() {
  if (const char* env = std::getenv("UFAB_JOBS"); env != nullptr && env[0] != '\0') {
    const int jobs = std::atoi(env);
    if (jobs >= 1) return jobs;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

void ParallelSweep::run_indexed(int n, const std::function<void(int)>& fn) {
  UFAB_CHECK(n >= 0);
  worker_stats_.clear();
  if (n == 0) return;
  const bool report = obs::Profiler::env_level() >= 1;
  const int workers = jobs_ < n ? jobs_ : n;
  if (workers <= 1) {
    // Inline serial path: same thread, same order, no thread machinery —
    // UFAB_JOBS=1 behaves exactly like the pre-sweep benches.
    SweepWorkerStat stat;
    const std::int64_t start = wall_ns();
    for (int i = 0; i < n; ++i) {
      const std::int64_t t0 = wall_ns();
      fn(i);
      stat.busy_ns += wall_ns() - t0;
      ++stat.variants;
    }
    stat.wall_ns = wall_ns() - start;
    worker_stats_.push_back(stat);
    if (report) {
      std::fprintf(stderr, "[prof] sweep: serial, %d variants in %.2fs\n", n,
                   static_cast<double>(stat.wall_ns) / 1e9);
    }
    return;
  }

  std::atomic<int> next{0};
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(n));
  worker_stats_.resize(static_cast<std::size_t>(workers));
  auto worker = [&](int w) {
    SweepWorkerStat& stat = worker_stats_[static_cast<std::size_t>(w)];
    const std::int64_t start = wall_ns();
    while (true) {
      const int i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) break;
      const std::int64_t t0 = wall_ns();
      try {
        fn(i);
      } catch (...) {
        errors[static_cast<std::size_t>(i)] = std::current_exception();
      }
      stat.busy_ns += wall_ns() - t0;
      ++stat.variants;
    }
    stat.wall_ns = wall_ns() - start;
  };

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(workers));
  for (int w = 0; w < workers; ++w) threads.emplace_back(worker, w);
  for (std::thread& t : threads) t.join();

  if (report) {
    for (int w = 0; w < workers; ++w) {
      const SweepWorkerStat& stat = worker_stats_[static_cast<std::size_t>(w)];
      const double util = stat.wall_ns > 0
                              ? 100.0 * static_cast<double>(stat.busy_ns) /
                                    static_cast<double>(stat.wall_ns)
                              : 0.0;
      std::fprintf(stderr, "[prof] sweep: worker %d ran %d variants, busy %.2fs/%.2fs (%.1f%%)\n",
                   w, stat.variants, static_cast<double>(stat.busy_ns) / 1e9,
                   static_cast<double>(stat.wall_ns) / 1e9, util);
    }
  }

  // Deterministic error propagation: the lowest-index failure wins.
  for (const std::exception_ptr& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

}  // namespace ufab::harness

// Experiment bundle: simulator + network + tenants + agents + metering.
//
// Fabric owns everything a testbed run needs and wires it together: the
// event engine, a topology, the VM map, uFAB-C agents on every switch egress,
// and one transport stack per host.  Benches and tests build a Fabric, add
// tenants and traffic, then run and read the meters.
#pragma once

#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/core/rng.hpp"
#include "src/harness/vm_map.hpp"
#include "src/obs/obs.hpp"
#include "src/sim/simulator.hpp"
#include "src/stats/rate_meter.hpp"
#include "src/telemetry/core_agent.hpp"
#include "src/topo/network.hpp"
#include "src/topo/partition.hpp"
#include "src/transport/transport.hpp"

namespace ufab::harness {

class Fabric {
 public:
  using Builder = std::function<std::unique_ptr<topo::Network>(sim::Simulator&)>;

  explicit Fabric(const Builder& build, std::uint64_t seed = 1)
      : rng_(seed), net_(build(sim_)) {
    stacks_.resize(net_->host_count());
  }

  ~Fabric();

  /// Partitions the topology and switches the engine into canonical sharded
  /// mode (see DESIGN.md §9).  Call right after construction, before any
  /// scheme, source, or meter schedules events.  `shards` is clamped to what
  /// the topology supports; `shards == 1` still enables canonical ordering so
  /// serial and sharded runs are comparable byte-for-byte.
  void configure_sharding(int shards, sim::ShardExec exec = sim::ShardExec::kAuto);

  /// The shard a node / host was assigned to (0 when not sharded).
  [[nodiscard]] int shard_of_node(NodeId n) const {
    return partition_.node_shard.empty() ? 0 : partition_.shard_of(n);
  }
  [[nodiscard]] int shard_of_host(HostId h) const { return shard_of_node(net_->node_of(h)); }
  [[nodiscard]] const topo::Partition& partition() const { return partition_; }

  /// Schedules `fn` at `t` homed on `host`'s shard, so setup-time work lands
  /// in the same calendar regardless of the shard count.
  template <typename F>
  void schedule_on_host(HostId host, TimeNs t, F&& fn) {
    const auto scope = sim_.scoped(shard_of_host(host));
    sim_.at(t, std::forward<F>(fn));
  }

  /// Attaches a uFAB-C agent to every switch egress port.
  void instrument_cores(const telemetry::CoreConfig& cfg = {}) {
    for (sim::Switch* sw : net_->switches()) {
      // Agent timers belong to the switch's shard.
      const auto scope = sim_.scoped(shard_of_node(sw->id()));
      auto agents = telemetry::instrument_switch(sim_, *sw, cfg);
      auto& of_switch = agents_by_switch_[sw->id().value()];
      for (auto& a : agents) {
        of_switch.push_back(a.get());
        core_agents_.push_back(std::move(a));
      }
    }
    if (obs_ != nullptr && obs_->enabled()) attach_obs_to_cores();
  }

  /// The uFAB-C agents of one switch (empty if not instrumented). Fault
  /// injection uses this to reboot a whole switch's register state at once.
  [[nodiscard]] const std::vector<telemetry::CoreAgent*>& core_agents_of(NodeId sw) const {
    static const std::vector<telemetry::CoreAgent*> kNone;
    auto it = agents_by_switch_.find(sw.value());
    return it == agents_by_switch_.end() ? kNone : it->second;
  }

  /// Installs a transport stack (takes ownership). One per host.
  template <typename StackT>
  StackT& adopt_stack(HostId host, std::unique_ptr<StackT> stack) {
    StackT& ref = *stack;
    ref.set_message_sink(&sink_mux_);
    stacks_.at(static_cast<std::size_t>(host.value())) = std::move(stack);
    if (obs_ != nullptr && obs_->enabled()) ref.attach_obs(*obs_);
    return ref;
  }

  /// Message-delivery listeners (workload FCT recording, application logic).
  using DeliveryListener = std::function<void(const transport::Message&, TimeNs)>;
  void add_delivery_listener(DeliveryListener fn) {
    sink_mux_.listeners.push_back(std::move(fn));
  }

  [[nodiscard]] transport::TransportStack& stack_at(HostId host) {
    return *stacks_.at(static_cast<std::size_t>(host.value()));
  }
  template <typename StackT>
  [[nodiscard]] StackT& stack_as(HostId host) {
    return static_cast<StackT&>(stack_at(host));
  }

  /// Per-VM-pair delivered-byte meters (install before traffic starts).
  /// `retain_buckets` > 0 caps each meter to that many trailing buckets
  /// (bounded-memory mode for long soaks); 0 keeps the full series.
  void install_pair_metering(TimeNs bucket, std::size_t retain_buckets = 0);
  [[nodiscard]] RateMeter* pair_meter(VmPairId pair);
  /// Per-tenant delivered-byte meters; `retain_buckets` as above.
  void install_tenant_metering(TimeNs bucket, std::size_t retain_buckets = 0);
  [[nodiscard]] RateMeter* tenant_meter(TenantId tenant);

  /// Sends a message from a VM pair through the source host's stack.
  std::uint64_t send(VmPairId pair, std::int64_t bytes, std::uint64_t user_tag = 0);

  /// Keeps `pair` saturated between [start, stop): tops the send queue up to
  /// two chunks whenever it drains.
  void keep_backlogged(VmPairId pair, TimeNs start, TimeNs stop,
                       std::int64_t chunk_bytes = 1'000'000);

  /// Samples every link's queue into `out` each `period` until `until`.
  void sample_queues(TimeNs period, TimeNs until, PercentileTracker& out);

  /// Schedules a callback that touches state across the whole fabric —
  /// killing a set of links, reading every switch's registers.  Under a
  /// multi-shard engine this forces sequential epoch execution (results are
  /// identical, only the parallelism is declined; DESIGN.md §9.4), because
  /// no single shard may safely reach across the partition mid-epoch.
  template <typename F>
  void schedule_global(TimeNs t, F&& fn) {
    if (sim_.shard_count() > 1) sim_.require_sequential("global-callback");
    sim_.at(t, std::forward<F>(fn));
  }

  [[nodiscard]] sim::Simulator& sim() { return sim_; }
  [[nodiscard]] topo::Network& net() { return *net_; }
  [[nodiscard]] VmMap& vms() { return vms_; }
  [[nodiscard]] Rng& rng() { return rng_; }
  [[nodiscard]] const std::vector<std::unique_ptr<telemetry::CoreAgent>>& core_agents() const {
    return core_agents_;
  }

  // --- observability plane ---
  /// Creates the fabric's Obs context and attaches it to every link, switch,
  /// core agent, and transport stack — existing ones now, later ones as they
  /// are adopted/instrumented.  Call at most once.  Passive: an enabled run
  /// is packet-for-packet identical to a disabled one.
  obs::Obs& enable_observability(obs::ObsOptions opts = {});
  /// The fabric's Obs, or nullptr when never enabled.
  [[nodiscard]] obs::Obs* observability() { return obs_.get(); }
  /// Current values of every registered metric (requires observability).
  [[nodiscard]] obs::MetricsSnapshot metrics_snapshot();
  /// Writes the flight recorder as Chrome trace-event JSON (requires
  /// observability); loadable in chrome://tracing or Perfetto.
  void write_trace_json(const std::string& path);

 private:
  void top_up_tick(VmPairId pair, TimeNs stop, std::int64_t chunk_bytes);
  void sample_queues_tick(TimeNs period, TimeNs until, PercentileTracker* out);
  void attach_obs_to_cores();

  struct SinkMux final : transport::MessageSink {
    std::vector<DeliveryListener> listeners;
    void on_message_delivered(const transport::Message& msg, TimeNs at) override {
      for (const auto& fn : listeners) fn(msg, at);
    }
  };

  Rng rng_;
  sim::Simulator sim_;
  std::unique_ptr<topo::Network> net_;
  VmMap vms_;
  SinkMux sink_mux_;
  std::vector<std::unique_ptr<telemetry::CoreAgent>> core_agents_;
  std::unordered_map<std::int32_t, std::vector<telemetry::CoreAgent*>> agents_by_switch_;
  std::vector<std::unique_ptr<transport::TransportStack>> stacks_;
  topo::Partition partition_;
  /// Meters are accumulated per receiving host (a host belongs to exactly one
  /// shard, so sharded runs never share a meter across threads) and merged at
  /// query time; bucket sums are order-independent, so the merged view equals
  /// the old single-map behavior.
  std::vector<std::unordered_map<std::uint64_t, std::unique_ptr<RateMeter>>>
      pair_meters_by_host_;
  std::vector<std::unordered_map<std::int32_t, std::unique_ptr<RateMeter>>>
      tenant_meters_by_host_;
  std::unordered_map<std::int32_t, std::unique_ptr<RateMeter>> merged_tenant_;
  std::unique_ptr<obs::Obs> obs_;
  std::size_t cores_with_obs_ = 0;  ///< Agents already attached (idempotence).
  bool log_clock_installed_ = false;
};

}  // namespace ufab::harness

// Scheme factory: the four systems the paper's evaluation compares.
#pragma once

#include <string>

#include "src/baselines/es_transport.hpp"
#include "src/baselines/pwc_transport.hpp"
#include "src/harness/fabric.hpp"
#include "src/topo/builders.hpp"
#include "src/ufab/edge_agent.hpp"

namespace ufab::harness {

enum class Scheme {
  kUfab,       ///< uFAB (full, with two-stage bounded-latency admission).
  kUfabPrime,  ///< uFAB' — no bounded-latency optimization (Fig. 12).
  kPwc,        ///< PicNIC' + WCC(Swift) + Clove.
  kEsClove,    ///< ElasticSwitch + Clove.
};

[[nodiscard]] const char* to_string(Scheme s);

struct SchemeOptions {
  edge::EdgeConfig ufab;
  baselines::PwcConfig pwc;
  baselines::EsConfig es;
  transport::TransportOptions transport;
  telemetry::CoreConfig core;
  /// ECN marking threshold installed on fabric links for the baselines
  /// (Swift is delay-based but Clove and ElasticSwitch-RA need marks).
  std::int64_t baseline_ecn_threshold = 30'000;
};

/// Per-scheme fabric tweaks (ECN thresholds for the baselines); apply before
/// building the topology.
[[nodiscard]] topo::FabricOptions fabric_options_for(Scheme s, topo::FabricOptions base,
                                                     const SchemeOptions& opts = {});

/// Installs one transport stack per host (and uFAB-C agents for the uFAB
/// schemes). Call after the Fabric is constructed.
void install_scheme(Fabric& fab, Scheme s, const SchemeOptions& opts = {});

}  // namespace ufab::harness

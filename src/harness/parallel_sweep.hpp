// Multi-core bench variant sweeps.
//
// The figure benches run a grid of (scheme × oversubscription × load)
// variants that share nothing: each builds its own Fabric — simulator, RNG,
// topology, metric registry — and returns a plain result struct.  After the
// global-state audit (thread-local log sink/clock and crash-dump hook,
// per-pool packet ids; see DESIGN.md §8.4) the variants are genuinely
// independent, so ParallelSweep fans them out over std::thread workers.
//
// Output stays serial-identical: map() returns results in index order no
// matter which worker finished first, and benches print only after the sweep
// completes.  Each variant's simulation is deterministic on its own seed, so
// `UFAB_JOBS=1` and `UFAB_JOBS=N` produce byte-identical results (locked in
// by tests/integration/determinism_test.cpp).
//
// The variant function must not touch process-global mutable state; writing
// per-variant artifact files (distinct names) and stderr notices is fine.
#pragma once

#include <cstdint>
#include <exception>
#include <functional>
#include <vector>

namespace ufab::harness {

/// Per-worker utilization accounting for one run_indexed call: how much of
/// the worker's wall time went to variant functions vs idling on the work
/// queue.  Feeds the profiling plane (DESIGN.md §11) — a sweep whose workers
/// sit at 60% busy is starved for variants, not CPU.
struct SweepWorkerStat {
  int variants = 0;          ///< Variants this worker executed.
  std::int64_t busy_ns = 0;  ///< Wall time inside variant functions.
  std::int64_t wall_ns = 0;  ///< Worker lifetime for the sweep.
};

class ParallelSweep {
 public:
  /// `jobs` <= 0 means "decide from the environment": UFAB_JOBS when set,
  /// else std::thread::hardware_concurrency().
  explicit ParallelSweep(int jobs = 0) : jobs_(jobs > 0 ? jobs : jobs_from_env()) {}

  /// UFAB_JOBS (clamped to >= 1) or hardware concurrency.
  [[nodiscard]] static int jobs_from_env();

  [[nodiscard]] int jobs() const { return jobs_; }

  /// Runs `fn(0..n-1)` across the workers and returns the results in index
  /// order.  With one job everything runs inline on the calling thread (the
  /// exact serial code path).  The first variant exception (by index)
  /// propagates after all workers join.
  template <typename R>
  std::vector<R> map(int n, const std::function<R(int)>& fn) {
    std::vector<R> results(static_cast<std::size_t>(n));
    run_indexed(n, [&](int i) { results[static_cast<std::size_t>(i)] = fn(i); });
    return results;
  }

  /// As map(), for variant functions with side effects only.
  void for_each(int n, const std::function<void(int)>& fn) { run_indexed(n, fn); }

  /// Utilization of each worker in the most recent map()/for_each() call
  /// (one entry for the inline serial path).  When UFAB_PROF >= 1 a summary
  /// is also printed to stderr at the end of the sweep.
  [[nodiscard]] const std::vector<SweepWorkerStat>& worker_stats() const {
    return worker_stats_;
  }

 private:
  void run_indexed(int n, const std::function<void(int)>& fn);

  int jobs_;
  std::vector<SweepWorkerStat> worker_stats_;
};

/// One-shot helper: `parallel_sweep<R>(n, fn)` with env-derived job count.
template <typename R>
std::vector<R> parallel_sweep(int n, const std::function<R(int)>& fn) {
  return ParallelSweep().map(n, fn);
}

}  // namespace ufab::harness

// Shared experiment machinery for the figure/table benches.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "src/harness/fabric.hpp"
#include "src/harness/schemes.hpp"
#include "src/stats/cdf.hpp"
#include "src/stats/timeseries.hpp"

namespace ufab::harness {

/// One scheme instantiated over a topology, with measurement helpers.
class Experiment {
 public:
  using TopoFn =
      std::function<std::unique_ptr<topo::Network>(sim::Simulator&, const topo::FabricOptions&)>;

  Experiment(Scheme scheme, const TopoFn& topo_fn, topo::FabricOptions base_opts = {},
             SchemeOptions scheme_opts = {}, std::uint64_t seed = 1);

  [[nodiscard]] Fabric& fab() { return *fab_; }
  [[nodiscard]] Scheme scheme() const { return scheme_; }

  /// Enables the fabric's observability plane (see Fabric). Passive — bench
  /// output and packet schedules are identical with or without it.
  obs::Obs& enable_observability(obs::ObsOptions opts = {}) {
    return fab_->enable_observability(std::move(opts));
  }
  /// Structured values of every registered metric (requires observability).
  [[nodiscard]] obs::MetricsSnapshot metrics_snapshot() { return fab_->metrics_snapshot(); }

  /// Average delivered rate of a pair / tenant over [from, to).
  double pair_rate_gbps(VmPairId pair, TimeNs from, TimeNs to);
  double tenant_rate_gbps(TenantId tenant, TimeNs from, TimeNs to);

  /// All data-packet RTT samples across every host stack.
  [[nodiscard]] PercentileTracker aggregate_rtt_us() const;

  /// Worst queue observed across all fabric links.
  [[nodiscard]] std::int64_t max_queue_bytes() const;
  [[nodiscard]] std::int64_t total_drops() const;

 private:
  Scheme scheme_;
  SchemeOptions scheme_opts_;
  std::unique_ptr<Fabric> fab_;
};

/// A minimum-bandwidth expectation over an interval (for dissatisfaction).
struct GuaranteeSpec {
  VmPairId pair;
  double min_bps;
  TimeNs from;
  TimeNs to;
};

/// Bandwidth-dissatisfaction ratio (§5.2, Fig 11d/17a): total guarantee
/// shortfall over total delivered volume, computed per metering bucket.
double dissatisfaction_ratio(Fabric& fab, const std::vector<GuaranteeSpec>& specs, TimeNs until);

/// Per-bucket dissatisfaction percentage series (Fig 11d).
TimeSeries dissatisfaction_series(Fabric& fab, const std::vector<GuaranteeSpec>& specs,
                                  TimeNs until);

/// Time for a pair's delivered rate to settle into [lo, hi] Gbps after
/// `from`, holding for `hold`; TimeNs::max() if it never does.
TimeNs rate_settle_time(Fabric& fab, VmPairId pair, TimeNs from, TimeNs until, double lo_gbps,
                        double hi_gbps, TimeNs hold);

/// Writes machine-readable observability artifacts next to a bench's printed
/// output: `<bench>[.<variant>].metrics.json` / `.metrics.csv`, plus
/// `.trace.json` (Chrome trace) when the flight recorder holds events.  Files
/// land in $UFAB_METRICS_DIR (default: bench_artifacts/, created on demand).
/// Notices go to stderr so bench stdout stays byte-identical to runs without
/// observability.
/// No-op when the fabric has no enabled observability plane.
void write_bench_artifacts(Fabric& fab, const std::string& bench,
                           const std::string& variant = "");

/// ObsOptions for benches, derived from the environment: UFAB_OBS=0 turns the
/// plane off entirely, UFAB_OBS_DATAPATH=0 drops per-packet wire events while
/// keeping control-plane history.  Defaults to fully enabled — observability
/// is passive, so bench stdout is identical either way.
[[nodiscard]] obs::ObsOptions obs_options_from_env();

// --- printing helpers shared by benches ---
void print_header(const std::string& title);
void print_rate_series(Fabric& fab, const std::vector<std::pair<std::string, VmPairId>>& pairs,
                       TimeNs from, TimeNs to, TimeNs step);
void print_cdf_rows(const std::string& label, const PercentileTracker& tracker,
                    const std::string& unit);

}  // namespace ufab::harness

#include "src/harness/fabric.hpp"

#include "src/core/assert.hpp"

namespace ufab::harness {

void Fabric::install_pair_metering(TimeNs bucket) {
  for (auto& stack : stacks_) {
    if (stack == nullptr) continue;
    stack->add_rx_tap([this, bucket](const sim::Packet& pkt) {
      auto [it, inserted] = pair_meters_.try_emplace(pkt.pair.key(), nullptr);
      if (inserted) it->second = std::make_unique<RateMeter>(bucket);
      it->second->add(sim_.now(), pkt.payload);
    });
  }
}

RateMeter* Fabric::pair_meter(VmPairId pair) {
  auto it = pair_meters_.find(pair.key());
  return it == pair_meters_.end() ? nullptr : it->second.get();
}

void Fabric::install_tenant_metering(TimeNs bucket) {
  for (auto& stack : stacks_) {
    if (stack == nullptr) continue;
    stack->add_rx_tap([this, bucket](const sim::Packet& pkt) {
      auto [it, inserted] = tenant_meters_.try_emplace(pkt.tenant.value(), nullptr);
      if (inserted) it->second = std::make_unique<RateMeter>(bucket);
      it->second->add(sim_.now(), pkt.payload);
    });
  }
}

RateMeter* Fabric::tenant_meter(TenantId tenant) {
  auto it = tenant_meters_.find(tenant.value());
  return it == tenant_meters_.end() ? nullptr : it->second.get();
}

std::uint64_t Fabric::send(VmPairId pair, std::int64_t bytes, std::uint64_t user_tag) {
  const HostId src = vms_.host_of(pair.src);
  transport::Message msg;
  msg.pair = pair;
  msg.tenant = vms_.tenant_of(pair.src);
  msg.size_bytes = bytes;
  msg.created_at = sim_.now();
  msg.user_tag = user_tag;
  return stack_at(src).send_message(msg);
}

void Fabric::keep_backlogged(VmPairId pair, TimeNs start, TimeNs stop,
                             std::int64_t chunk_bytes) {
  // Top-up loop: whenever the send queue dips below two chunks, enqueue one
  // more, so the pair always has demand without unbounded queue growth.
  sim_.at(start, [this, pair, stop, chunk_bytes] { top_up_tick(pair, stop, chunk_bytes); });
}

void Fabric::top_up_tick(VmPairId pair, TimeNs stop, std::int64_t chunk_bytes) {
  if (sim_.now() >= stop) return;
  const HostId src = vms_.host_of(pair.src);
  auto& stack = stack_at(src);
  transport::Connection* conn = stack.find_connection(pair);
  std::int64_t queued = conn != nullptr ? conn->queued_bytes() : 0;
  while (queued < 2 * chunk_bytes) {
    send(pair, chunk_bytes);
    queued += chunk_bytes;
  }
  // Re-check roughly every chunk drain time at line rate (cheap, coarse).
  sim_.after(TimeNs{200'000},
             [this, pair, stop, chunk_bytes] { top_up_tick(pair, stop, chunk_bytes); });
}

void Fabric::sample_queues(TimeNs period, TimeNs until, PercentileTracker& out) {
  sim_.after(period, [this, period, until, &out] { sample_queues_tick(period, until, &out); });
}

void Fabric::sample_queues_tick(TimeNs period, TimeNs until, PercentileTracker* out) {
  for (const sim::Link* l : net_->links()) out->add(static_cast<double>(l->queue_bytes()));
  if (sim_.now() + period <= until) {
    sim_.after(period, [this, period, until, out] { sample_queues_tick(period, until, out); });
  }
}

}  // namespace ufab::harness

#include "src/harness/fabric.hpp"

#include <algorithm>
#include <string>

#include "src/core/assert.hpp"
#include "src/core/log.hpp"

namespace ufab::harness {

Fabric::~Fabric() {
  if (log_clock_installed_) set_log_clock({});
}

void Fabric::configure_sharding(int shards, sim::ShardExec exec) {
  partition_ = topo::partition_network(*net_, shards);
  sim_.configure_shards(partition_.shards, partition_.lookahead, exec);
  // Per-shard outgoing strides feed the engine's solo barrier-skip rounds:
  // when one shard is the only one with pending work, it may run ahead by
  // its own min outgoing cut-link prop, not the global minimum.
  sim_.set_shard_lookaheads(partition_.shard_out_lookahead);
  // Cut links hand their deliveries to the peer shard's mailbox instead of
  // scheduling locally.
  for (const LinkId lid : partition_.cut_links) {
    net_->link(lid)->set_cross_shard_dst(
        partition_.link_dst_shard.at(static_cast<std::size_t>(lid.value())));
  }
}

obs::Obs& Fabric::enable_observability(obs::ObsOptions opts) {
  UFAB_CHECK_MSG(obs_ == nullptr, "enable_observability called twice");
  obs_ = std::make_unique<obs::Obs>(std::move(opts));
  if (!obs_->enabled()) return *obs_;

  // Exported track labels use the fabric's real entity names.
  obs_->set_track_namer([this](const obs::Track& t) -> std::string {
    switch (t.kind) {
      case obs::TrackKind::kHost:
        return net_->host(HostId{t.id}).name();
      case obs::TrackKind::kSwitch: {
        const std::string& sw = net_->switch_at(NodeId{t.id}).name();
        return t.sub >= 0 ? sw + "/port-" + std::to_string(t.sub) : sw;
      }
      case obs::TrackKind::kTenant:
        return vms_.tenant_name(TenantId{t.id});
      case obs::TrackKind::kLink: {
        const sim::Link* l = net_->link(LinkId{t.id});
        return l != nullptr ? l->name() : "link-" + std::to_string(t.id);
      }
      case obs::TrackKind::kFabric:
        break;
    }
    return "fabric";
  });

  // Log lines get simulation-time stamps for the fabric's lifetime.
  set_log_clock([this] { return sim_.now(); });
  log_clock_installed_ = true;

  // Wire-level hooks on every link and switch (host NIC links included).
  for (sim::Link* l : net_->links()) l->set_obs(obs_.get());
  for (sim::Switch* sw : net_->switches()) sw->set_obs(obs_.get());
  for (auto& stack : stacks_) {
    if (stack != nullptr) stack->attach_obs(*obs_);
  }
  attach_obs_to_cores();

  // Fabric-wide pull gauges.
  auto& m = obs_->metrics();
  m.gauge_fn("sim.events_processed", {},
             [this] { return static_cast<double>(sim_.events_processed()); });
  m.gauge_fn("sim.now_us", {}, [this] { return static_cast<double>(sim_.now().ns()) / 1e3; });
  // One row per reason the engine was pinned to sequential epochs — reasons
  // can arrive after enable_observability (the fault plane, late workload
  // setup), so the rows materialize at snapshot time via a collector.
  m.add_collector([this](obs::MetricRegistry& reg) {
    for (const std::string& r : sim_.sequential_reasons()) {
      reg.gauge("sim.forced_sequential", {{"reason", r}})->set(1.0);
    }
  });
  m.gauge_fn("fabric.total_drops", {}, [this] {
    std::int64_t drops = 0;
    for (const sim::Link* l : net_->links()) drops += l->drops() + l->fault_drops();
    for (const sim::Switch* sw : net_->switches()) drops += sw->no_route_drops();
    return static_cast<double>(drops);
  });
  m.gauge_fn("fabric.max_queue_bytes", {}, [this] {
    std::int64_t worst = 0;
    for (const sim::Link* l : net_->links()) worst = std::max(worst, l->max_queue_bytes());
    return static_cast<double>(worst);
  });

  // Per-tenant guarantee / work-conservation gauges.  A collector (re-run at
  // each snapshot) handles tenants that join after observability is enabled;
  // values are pulled from the tenant meters, so nothing is recorded between
  // snapshots and determinism is untouched.
  m.add_collector([this](obs::MetricRegistry& reg) {
    for (std::size_t ti = 0; ti < vms_.tenant_count(); ++ti) {
      const TenantId tenant{static_cast<std::int32_t>(ti)};
      const obs::Labels labels{{"tenant", vms_.tenant_name(tenant)}};
      // Aggregate hose guarantee: per-VM guarantee times the tenant's VMs.
      const double agg_gbps = vms_.tenant_guarantee(tenant).bits_per_sec() / 1e9 *
                              static_cast<double>(vms_.vms_of(tenant).size());
      reg.gauge("tenant.guarantee_gbps", labels)->set(agg_gbps);
      const RateMeter* meter = tenant_meter(tenant);
      double delivered_gbps = 0.0;
      if (meter != nullptr && sim_.now().ns() > 0) {
        delivered_gbps = static_cast<double>(meter->total_bytes()) * 8.0 /
                         static_cast<double>(sim_.now().ns());
      }
      reg.gauge("tenant.delivered_gbps", labels)->set(delivered_gbps);
      reg.gauge("tenant.guarantee_satisfaction", labels)
          ->set(agg_gbps > 0.0 ? delivered_gbps / agg_gbps : 0.0);
    }
  });

  // Per-shard engine counters.  A collector (not direct gauge_fn) so the
  // gauges appear even when sharding is configured after observability, and
  // only for actually-sharded runs.
  m.add_collector([this](obs::MetricRegistry& reg) {
    if (sim_.shard_count() <= 1) return;
    for (int s = 0; s < sim_.shard_count(); ++s) {
      const obs::Labels labels{{"shard", std::to_string(s)}};
      reg.gauge("sim.shard.events_processed", labels)
          ->set(static_cast<double>(sim_.shard_events_processed(s)));
      reg.gauge("sim.shard.mailbox_crossings", labels)
          ->set(static_cast<double>(sim_.shard_crossings_out(s)));
      reg.gauge("sim.shard.barrier_wait_ns", labels)
          ->set(static_cast<double>(sim_.shard_barrier_wait_ns(s)));
      reg.gauge("sim.shard.pool_in_use_hwm", labels)
          ->set(static_cast<double>(sim_.shard_pool(s).in_use_high_water()));
      reg.gauge("sim.shard.mailbox_drains", labels)
          ->set(static_cast<double>(sim_.shard_outbox_drains(s)));
      reg.gauge("sim.shard.mailbox_max_batch", labels)
          ->set(static_cast<double>(sim_.shard_outbox_max_batch(s)));
    }
  });

  // Engine self-profiling gauges (prof.*), materialized only when the
  // profiling plane is attached (UFAB_PROF >= 1).  Pull-only, like every
  // other gauge here: nothing is recorded between snapshots.
  m.add_collector([this](obs::MetricRegistry& reg) {
    const obs::Profiler* p = sim_.profiler();
    if (p == nullptr) return;
    const obs::ProfDerived d = p->derived(sim_.shard_count());
    reg.gauge("prof.level", {})->set(static_cast<double>(p->level()));
    reg.gauge("prof.stall_fraction", {})->set(d.stall_fraction);
    reg.gauge("prof.shard_imbalance", {})->set(d.shard_imbalance);
    reg.gauge("prof.busy_us_total", {})->set(d.busy_ns_total / 1e3);
    reg.gauge("prof.stall_us_total", {})->set(d.stall_ns_total / 1e3);
    reg.gauge("prof.epochs", {})->set(static_cast<double>(p->epochs()));
    reg.gauge("prof.windows", {})->set(static_cast<double>(p->windows()));
    reg.gauge("prof.barrier_skips", {})->set(static_cast<double>(p->barrier_skips()));
    reg.gauge("prof.crossings_injected", {})
        ->set(static_cast<double>(p->crossings_injected()));
    reg.gauge("prof.handoff_max_batch", {})
        ->set(static_cast<double>(sim_.handoff_max_batch()));
    // Epoch-length distribution: one labeled row per occupied log2 bucket
    // ("epoch spanned [2^b, 2^{b+1}) ns of simulated time, N times").
    const auto& hist = p->epoch_len_hist();
    for (std::size_t b = 0; b < hist.size(); ++b) {
      if (hist[b] == 0) continue;
      reg.gauge("prof.epoch_len_ns", {{"log2", std::to_string(b)}})
          ->set(static_cast<double>(hist[b]));
    }
    for (int s = 0; s < sim_.shard_count(); ++s) {
      const std::string shard_label = std::to_string(s);
      reg.gauge("prof.busy_us", {{"shard", shard_label}})
          ->set(d.busy_ns_per_shard[static_cast<std::size_t>(s)] / 1e3);
      reg.gauge("prof.queue_samples", {{"shard", shard_label}})
          ->set(static_cast<double>(p->samples_taken(s)));
      const obs::ProfSlice& sl = p->slice(s);
      for (int c = 0; c < obs::kProfCatCount; ++c) {
        if (sl.count[static_cast<std::size_t>(c)] == 0) continue;
        const obs::Labels labels{{"shard", shard_label},
                                 {"scope", obs::to_string(static_cast<obs::ProfCat>(c))}};
        reg.gauge("prof.scope_us", labels)
            ->set(p->scope_ns(s, static_cast<obs::ProfCat>(c)) / 1e3);
        reg.gauge("prof.scope_count", labels)
            ->set(static_cast<double>(sl.count[static_cast<std::size_t>(c)]));
      }
    }
  });
  return *obs_;
}

void Fabric::attach_obs_to_cores() {
  // Idempotent: only agents added since the last attach are wired up, in the
  // per-switch port order instrument_cores() created them.
  std::size_t seen = 0;
  for (sim::Switch* sw : net_->switches()) {
    auto it = agents_by_switch_.find(sw->id().value());
    if (it == agents_by_switch_.end()) continue;
    for (std::size_t port = 0; port < it->second.size(); ++port) {
      telemetry::CoreAgent* agent = it->second[port];
      if (++seen <= cores_with_obs_) continue;
      const obs::Track track =
          obs::Track::switch_port(sw->id(), static_cast<std::int32_t>(port));
      agent->set_obs(obs_.get(), track);
      const obs::Labels labels{{"switch", sw->name()}, {"port", std::to_string(port)}};
      auto& m = obs_->metrics();
      m.gauge_fn("core.phi_total", labels, [agent] { return agent->phi_total(); });
      m.gauge_fn("core.window_total", labels, [agent] { return agent->window_total(); });
      m.gauge_fn("core.active_pairs", labels,
                 [agent] { return static_cast<double>(agent->active_pairs()); });
      m.gauge_fn("core.fp_omissions", labels,
                 [agent] { return static_cast<double>(agent->false_positive_omissions()); });
      m.gauge_fn("core.resets", labels,
                 [agent] { return static_cast<double>(agent->resets()); });
    }
  }
  cores_with_obs_ = seen;
}

obs::MetricsSnapshot Fabric::metrics_snapshot() {
  UFAB_CHECK_MSG(obs_ != nullptr, "metrics_snapshot requires enable_observability");
  return obs_->metrics().snapshot();
}

void Fabric::write_trace_json(const std::string& path) {
  UFAB_CHECK_MSG(obs_ != nullptr, "write_trace_json requires enable_observability");
  obs_->set_profiler(sim_.profiler(), sim_.shard_count());
  obs_->write_chrome_trace_file(path);
}

void Fabric::install_pair_metering(TimeNs bucket, std::size_t retain_buckets) {
  pair_meters_by_host_.resize(net_->host_count());
  for (std::size_t h = 0; h < stacks_.size(); ++h) {
    if (stacks_[h] == nullptr) continue;
    stacks_[h]->add_rx_tap([this, bucket, retain_buckets, h](const sim::Packet& pkt) {
      auto& per_host = pair_meters_by_host_[h];
      auto [it, inserted] = per_host.try_emplace(pkt.pair.key(), nullptr);
      if (inserted) it->second = std::make_unique<RateMeter>(bucket, retain_buckets);
      it->second->add(sim_.now(), pkt.payload);
    });
  }
}

RateMeter* Fabric::pair_meter(VmPairId pair) {
  // A pair's payload is delivered (and therefore metered) at exactly one
  // place: the destination VM's host.
  if (pair_meters_by_host_.empty()) return nullptr;
  const HostId dst = vms_.host_of(pair.dst);
  auto& per_host = pair_meters_by_host_.at(static_cast<std::size_t>(dst.value()));
  auto it = per_host.find(pair.key());
  return it == per_host.end() ? nullptr : it->second.get();
}

void Fabric::install_tenant_metering(TimeNs bucket, std::size_t retain_buckets) {
  tenant_meters_by_host_.resize(net_->host_count());
  for (std::size_t h = 0; h < stacks_.size(); ++h) {
    if (stacks_[h] == nullptr) continue;
    stacks_[h]->add_rx_tap([this, bucket, retain_buckets, h](const sim::Packet& pkt) {
      auto& per_host = tenant_meters_by_host_[h];
      auto [it, inserted] = per_host.try_emplace(pkt.tenant.value(), nullptr);
      if (inserted) it->second = std::make_unique<RateMeter>(bucket, retain_buckets);
      it->second->add(sim_.now(), pkt.payload);
    });
  }
}

RateMeter* Fabric::tenant_meter(TenantId tenant) {
  // A tenant receives at many hosts: merge the per-host meters on demand.
  std::unique_ptr<RateMeter> merged;
  for (auto& per_host : tenant_meters_by_host_) {
    auto it = per_host.find(tenant.value());
    if (it == per_host.end()) continue;
    if (merged == nullptr) merged = std::make_unique<RateMeter>(it->second->bucket_width());
    merged->merge_from(*it->second);
  }
  if (merged == nullptr) return nullptr;
  auto& slot = merged_tenant_[tenant.value()];
  slot = std::move(merged);
  return slot.get();
}

std::uint64_t Fabric::send(VmPairId pair, std::int64_t bytes, std::uint64_t user_tag) {
  const HostId src = vms_.host_of(pair.src);
  // Home the send on the source host's shard: the events it triggers (NIC
  // kicks, pacing wake-ups, loopback deliveries) must live where the host's
  // transport state lives.
  const auto scope = sim_.scoped(shard_of_host(src));
  transport::Message msg;
  msg.pair = pair;
  msg.tenant = vms_.tenant_of(pair.src);
  msg.size_bytes = bytes;
  msg.created_at = sim_.now();
  msg.user_tag = user_tag;
  return stack_at(src).send_message(msg);
}

void Fabric::keep_backlogged(VmPairId pair, TimeNs start, TimeNs stop,
                             std::int64_t chunk_bytes) {
  // Top-up loop: whenever the send queue dips below two chunks, enqueue one
  // more, so the pair always has demand without unbounded queue growth.  The
  // tick lives on the sending host's shard (follow-ups inherit it).
  schedule_on_host(vms_.host_of(pair.src), start,
                   [this, pair, stop, chunk_bytes] { top_up_tick(pair, stop, chunk_bytes); });
}

void Fabric::top_up_tick(VmPairId pair, TimeNs stop, std::int64_t chunk_bytes) {
  if (sim_.now() >= stop) return;
  const HostId src = vms_.host_of(pair.src);
  auto& stack = stack_at(src);
  transport::Connection* conn = stack.find_connection(pair);
  std::int64_t queued = conn != nullptr ? conn->queued_bytes() : 0;
  while (queued < 2 * chunk_bytes) {
    send(pair, chunk_bytes);
    queued += chunk_bytes;
  }
  // Re-check roughly every chunk drain time at line rate (cheap, coarse).
  sim_.after(TimeNs{200'000},
             [this, pair, stop, chunk_bytes] { top_up_tick(pair, stop, chunk_bytes); });
}

void Fabric::sample_queues(TimeNs period, TimeNs until, PercentileTracker& out) {
  // The sampler reads every link's queue depth across all shards mid-run;
  // that is only race-free when shards execute one at a time.
  if (sim_.shard_count() > 1) sim_.require_sequential("queue-sampling");
  sim_.after(period, [this, period, until, &out] { sample_queues_tick(period, until, &out); });
}

void Fabric::sample_queues_tick(TimeNs period, TimeNs until, PercentileTracker* out) {
  for (const sim::Link* l : net_->links()) out->add(static_cast<double>(l->queue_bytes()));
  if (sim_.now() + period <= until) {
    sim_.after(period, [this, period, until, out] { sample_queues_tick(period, until, out); });
  }
}

}  // namespace ufab::harness

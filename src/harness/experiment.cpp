#include "src/harness/experiment.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "src/transport/transport.hpp"

namespace ufab::harness {

namespace {
using namespace ufab::time_literals;

double rate_over(RateMeter* m, TimeNs from, TimeNs to) {
  if (m == nullptr || to <= from) return 0.0;
  double bytes = 0.0;
  for (const auto& s : m->series(to)) {
    if (s.at >= from && s.at < to) bytes += s.rate.bytes_per_sec() * m->bucket_width().sec();
  }
  return bytes * 8.0 / 1e9 / (to - from).sec();
}
}  // namespace

Experiment::Experiment(Scheme scheme, const TopoFn& topo_fn, topo::FabricOptions base_opts,
                       SchemeOptions scheme_opts, std::uint64_t seed)
    : scheme_(scheme), scheme_opts_(scheme_opts) {
  const topo::FabricOptions opts = fabric_options_for(scheme, base_opts, scheme_opts);
  fab_ = std::make_unique<Fabric>(
      [&](sim::Simulator& s) { return topo_fn(s, opts); }, seed);
  // UFAB_SHARDS switches the engine into canonical sharded mode before any
  // scheme or workload events exist; UFAB_SHARD_EXEC=seq|threads pins the
  // execution strategy (equivalence testing), default auto.
  if (const char* v = std::getenv("UFAB_SHARDS"); v != nullptr && v[0] != '\0') {
    sim::ShardExec exec = sim::ShardExec::kAuto;
    if (const char* e = std::getenv("UFAB_SHARD_EXEC"); e != nullptr) {
      if (e[0] == 's') {
        exec = sim::ShardExec::kSequential;
      } else if (e[0] == 't') {
        exec = sim::ShardExec::kThreads;
      }
    }
    fab_->configure_sharding(std::max(1, std::atoi(v)), exec);
  }
  // UFAB_ADAPTIVE_EPOCHS=0 pins the engine to one barrier per lookahead
  // window (the legacy cadence — A/B and determinism baselines);
  // UFAB_EPOCH_WINDOWS=<n> sets how many lookahead windows each adaptive
  // epoch amortizes over one barrier (default 16).  Both are schedule-neutral
  // knobs: results are byte-identical either way (DESIGN.md §12).
  {
    bool adaptive = true;
    if (const char* v = std::getenv("UFAB_ADAPTIVE_EPOCHS"); v != nullptr && v[0] == '0') {
      adaptive = false;
    }
    int windows = 16;
    if (const char* v = std::getenv("UFAB_EPOCH_WINDOWS"); v != nullptr && v[0] != '\0') {
      windows = std::max(1, std::atoi(v));
    }
    fab_->sim().set_adaptive_epochs(adaptive, windows);
  }
  // UFAB_PROF attaches the engine self-profiling plane (level 1 = loop
  // attribution, 2 = + per-call scopes).  Passive: the schedule and every
  // simulation result are unchanged (tests/obs/profiler_test.cpp).
  if (const int prof_level = obs::Profiler::env_level(); prof_level > 0) {
    obs::ProfOptions popts;
    popts.level = prof_level;
    fab_->sim().enable_profiling(popts);
  }
  install_scheme(*fab_, scheme, scheme_opts_);
  fab_->install_pair_metering(1_ms);
  fab_->install_tenant_metering(1_ms);
}

double Experiment::pair_rate_gbps(VmPairId pair, TimeNs from, TimeNs to) {
  return rate_over(fab_->pair_meter(pair), from, to);
}

double Experiment::tenant_rate_gbps(TenantId tenant, TimeNs from, TimeNs to) {
  return rate_over(fab_->tenant_meter(tenant), from, to);
}

PercentileTracker Experiment::aggregate_rtt_us() const {
  PercentileTracker out;
  for (std::size_t h = 0; h < fab_->net().host_count(); ++h) {
    const auto& stack = const_cast<Fabric&>(*fab_).stack_at(HostId{static_cast<std::int32_t>(h)});
    for (const double v : stack.rtt_samples_us().sorted()) out.add(v);
  }
  return out;
}

std::int64_t Experiment::max_queue_bytes() const {
  std::int64_t worst = 0;
  for (const auto* l : fab_->net().links()) worst = std::max(worst, l->max_queue_bytes());
  return worst;
}

std::int64_t Experiment::total_drops() const {
  std::int64_t total = 0;
  for (const auto* l : fab_->net().links()) total += l->drops();
  return total;
}

double dissatisfaction_ratio(Fabric& fab, const std::vector<GuaranteeSpec>& specs,
                             TimeNs until) {
  double shortfall_bytes = 0.0;
  double delivered_bytes = 0.0;
  for (const GuaranteeSpec& g : specs) {
    RateMeter* m = fab.pair_meter(g.pair);
    const double bucket_sec = m != nullptr ? m->bucket_width().sec() : 1e-3;
    if (m == nullptr) {
      shortfall_bytes += g.min_bps / 8.0 * (std::min(until, g.to) - g.from).sec();
      continue;
    }
    for (const auto& s : m->series(until)) {
      if (s.at < g.from || s.at >= g.to) continue;
      const double got = s.rate.bytes_per_sec() * bucket_sec;
      const double want = g.min_bps / 8.0 * bucket_sec;
      delivered_bytes += got;
      shortfall_bytes += std::max(0.0, want - got);
    }
  }
  return delivered_bytes + shortfall_bytes <= 0.0 ? 0.0
                                                  : shortfall_bytes / std::max(delivered_bytes, 1.0);
}

TimeSeries dissatisfaction_series(Fabric& fab, const std::vector<GuaranteeSpec>& specs,
                                  TimeNs until) {
  TimeSeries out;
  if (specs.empty()) return out;
  RateMeter* first = fab.pair_meter(specs.front().pair);
  const TimeNs bucket = first != nullptr ? first->bucket_width() : 1_ms;
  for (TimeNs t = TimeNs::zero(); t < until; t += bucket) {
    double shortfall = 0.0;
    double want_total = 0.0;
    for (const GuaranteeSpec& g : specs) {
      if (t < g.from || t >= g.to) continue;
      RateMeter* m = fab.pair_meter(g.pair);
      double got = 0.0;
      if (m != nullptr) {
        for (const auto& s : m->series(t + bucket)) {
          if (s.at == t) got = s.rate.bits_per_sec();
        }
      }
      want_total += g.min_bps;
      shortfall += std::max(0.0, g.min_bps - got);
    }
    if (want_total > 0.0) out.add(t, 100.0 * shortfall / want_total);
  }
  return out;
}

TimeNs rate_settle_time(Fabric& fab, VmPairId pair, TimeNs from, TimeNs until, double lo_gbps,
                        double hi_gbps, TimeNs hold) {
  RateMeter* m = fab.pair_meter(pair);
  if (m == nullptr) return TimeNs::max();
  TimeSeries ts;
  for (const auto& s : m->series(until)) ts.add(s.at, s.rate.gbit_per_sec());
  return ts.settle_time(from, lo_gbps, hi_gbps, hold);
}

namespace {
bool write_text_file(const std::string& path, const std::string& body) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << body;
  return static_cast<bool>(out);
}

// Scheme/variant labels ("PicNIC'+WCC+Clove") become filename-safe slugs.
std::string slug(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
    out.push_back(ok ? c : '-');
  }
  return out;
}
}  // namespace

void write_bench_artifacts(Fabric& fab, const std::string& bench, const std::string& variant) {
  obs::Obs* obs = fab.observability();
  const bool obs_on = obs != nullptr && obs->enabled();
  const bool prof_on = fab.sim().profiler() != nullptr;
  if (!obs_on && !prof_on) return;

  // Artifacts default to bench_artifacts/ (gitignored) instead of littering
  // the working directory; UFAB_METRICS_DIR overrides.
  const char* dir_env = std::getenv("UFAB_METRICS_DIR");
  const std::string dir =
      dir_env != nullptr && dir_env[0] != '\0' ? dir_env : "bench_artifacts";
  std::error_code mkdir_ec;
  std::filesystem::create_directories(dir, mkdir_ec);
  if (mkdir_ec) {
    std::fprintf(stderr, "[obs] cannot create %s: %s\n", dir.c_str(),
                 mkdir_ec.message().c_str());
    return;
  }
  std::string base = dir + "/" + slug(bench);
  if (!variant.empty()) base += "." + slug(variant);

  // The profile artifact is independent of the obs plane: a UFAB_PROF=1
  // UFAB_OBS=0 run (the perf lane's shape, where obs event recording would
  // distort the numbers) still gets its shard x scope matrix.
  if (prof_on) {
    const std::string profile_path = base + ".profile.json";
    if (!write_text_file(profile_path, fab.sim().profile_json())) {
      std::fprintf(stderr, "[prof] failed to write %s\n", profile_path.c_str());
    } else {
      std::fprintf(stderr, "[prof] profile: %s\n", profile_path.c_str());
    }
  }
  if (!obs_on) return;

  const obs::MetricsSnapshot snap = fab.metrics_snapshot();
  const std::string json_path = base + ".metrics.json";
  const std::string csv_path = base + ".metrics.csv";
  if (!write_text_file(json_path, snap.to_json())) {
    std::fprintf(stderr, "[obs] failed to write %s\n", json_path.c_str());
  } else if (!write_text_file(csv_path, snap.to_csv())) {
    std::fprintf(stderr, "[obs] failed to write %s\n", csv_path.c_str());
  } else {
    std::fprintf(stderr, "[obs] metrics: %s (%zu metrics)\n", json_path.c_str(),
                 snap.rows.size());
  }

  if (obs->recorder().size() > 0) {
    const std::string trace_path = base + ".trace.json";
    obs->set_profiler(fab.sim().profiler(), fab.sim().shard_count());
    obs->write_chrome_trace_file(trace_path);
    std::fprintf(stderr, "[obs] trace: %s (%zu events, %llu recorded)\n", trace_path.c_str(),
                 obs->recorder().size(),
                 static_cast<unsigned long long>(obs->recorder().recorded_total()));
  }
}

obs::ObsOptions obs_options_from_env() {
  obs::ObsOptions opts;
  if (const char* v = std::getenv("UFAB_OBS"); v != nullptr && v[0] == '0') opts.enabled = false;
  if (const char* v = std::getenv("UFAB_OBS_DATAPATH"); v != nullptr && v[0] == '0') {
    opts.record_datapath = false;
  }
  return opts;
}

void print_header(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

void print_rate_series(Fabric& fab, const std::vector<std::pair<std::string, VmPairId>>& pairs,
                       TimeNs from, TimeNs to, TimeNs step) {
  std::printf("%10s", "time_ms");
  for (const auto& [name, pair] : pairs) std::printf("  %12s", name.c_str());
  std::printf("\n");
  for (TimeNs t = from; t < to; t += step) {
    std::printf("%10.1f", t.ms());
    for (const auto& [name, pair] : pairs) {
      RateMeter* m = fab.pair_meter(pair);
      double gbps = 0.0;
      if (m != nullptr) {
        for (const auto& s : m->series(t + step)) {
          if (s.at >= t && s.at < t + step) gbps = s.rate.gbit_per_sec();
        }
      }
      std::printf("  %12.2f", gbps);
    }
    std::printf("\n");
  }
}

void print_cdf_rows(const std::string& label, const PercentileTracker& tracker,
                    const std::string& unit) {
  if (tracker.empty()) {
    std::printf("%-24s  (no samples)\n", label.c_str());
    return;
  }
  std::printf("%-24s  p50=%10.1f%s  p90=%10.1f%s  p99=%10.1f%s  p99.9=%10.1f%s  max=%10.1f%s\n",
              label.c_str(), tracker.percentile(50), unit.c_str(), tracker.percentile(90),
              unit.c_str(), tracker.percentile(99), unit.c_str(), tracker.percentile(99.9),
              unit.c_str(), tracker.max(), unit.c_str());
}

}  // namespace ufab::harness

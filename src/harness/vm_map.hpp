// Tenant / VM placement and hose-model guarantees.
//
// uFAB abstracts each VF with the hose model: every VM of a tenant may send
// and receive at its minimum guarantee.  VmMap records tenant membership, VM
// placement (assumed done by a virtual-cluster allocator such as Oktopus),
// and the per-VM guarantee that Guarantee Partitioning divides among VM pairs.
//
// Token convention: one token == 1 bps of minimum guarantee (B_u = 1 bps), so
// token arithmetic and bandwidth arithmetic coincide; the switch registers
// Phi_l then read directly as "subscribed bps".
#pragma once

#include <string>
#include <vector>

#include "src/core/ids.hpp"
#include "src/core/units.hpp"

namespace ufab::harness {

class VmMap {
 public:
  TenantId add_tenant(std::string name, Bandwidth per_vm_guarantee);
  VmId add_vm(TenantId tenant, HostId host);

  [[nodiscard]] HostId host_of(VmId vm) const { return vm_host_.at(idx(vm)); }
  [[nodiscard]] TenantId tenant_of(VmId vm) const { return vm_tenant_.at(idx(vm)); }
  [[nodiscard]] Bandwidth vm_guarantee(VmId vm) const {
    return tenant_guarantee_.at(static_cast<std::size_t>(tenant_of(vm).value()));
  }
  /// Hose tokens of a VM (B_u = 1 bps => tokens == guaranteed bps).
  [[nodiscard]] double vm_tokens(VmId vm) const { return vm_guarantee(vm).bits_per_sec(); }

  [[nodiscard]] const std::string& tenant_name(TenantId t) const {
    return tenant_name_.at(static_cast<std::size_t>(t.value()));
  }
  [[nodiscard]] Bandwidth tenant_guarantee(TenantId t) const {
    return tenant_guarantee_.at(static_cast<std::size_t>(t.value()));
  }

  [[nodiscard]] std::size_t vm_count() const { return vm_host_.size(); }
  [[nodiscard]] std::size_t tenant_count() const { return tenant_name_.size(); }

  /// All VMs of a tenant, in creation order.
  [[nodiscard]] const std::vector<VmId>& vms_of(TenantId t) const {
    return tenant_vms_.at(static_cast<std::size_t>(t.value()));
  }
  /// All VMs placed on a host.
  [[nodiscard]] const std::vector<VmId>& vms_on(HostId h) const;

 private:
  static std::size_t idx(VmId vm) { return static_cast<std::size_t>(vm.value()); }

  std::vector<std::string> tenant_name_;
  std::vector<Bandwidth> tenant_guarantee_;
  std::vector<std::vector<VmId>> tenant_vms_;
  std::vector<HostId> vm_host_;
  std::vector<TenantId> vm_tenant_;
  mutable std::vector<std::vector<VmId>> host_vms_;
};

}  // namespace ufab::harness

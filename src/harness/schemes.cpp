#include "src/harness/schemes.hpp"

namespace ufab::harness {

const char* to_string(Scheme s) {
  switch (s) {
    case Scheme::kUfab:
      return "uFAB";
    case Scheme::kUfabPrime:
      return "uFAB'";
    case Scheme::kPwc:
      return "PicNIC'+WCC+Clove";
    case Scheme::kEsClove:
      return "ES+Clove";
  }
  return "?";
}

topo::FabricOptions fabric_options_for(Scheme s, topo::FabricOptions base,
                                       const SchemeOptions& opts) {
  if (s == Scheme::kPwc || s == Scheme::kEsClove) {
    base.ecn_threshold_bytes = opts.baseline_ecn_threshold;
  }
  return base;
}

void install_scheme(Fabric& fab, Scheme s, const SchemeOptions& opts) {
  const bool is_ufab = s == Scheme::kUfab || s == Scheme::kUfabPrime;
  if (is_ufab) fab.instrument_cores(opts.core);
  for (std::size_t h = 0; h < fab.net().host_count(); ++h) {
    const HostId host{static_cast<std::int32_t>(h)};
    Rng rng = fab.rng().fork(h);
    // Stack construction schedules the host's first timers: home them on the
    // host's shard so serial and sharded runs build identical calendars.
    const auto scope = fab.sim().scoped(fab.shard_of_host(host));
    switch (s) {
      case Scheme::kUfab: {
        fab.adopt_stack(host, std::make_unique<edge::EdgeAgent>(
                                  fab.net(), fab.vms(), host, opts.ufab, opts.transport, rng));
        break;
      }
      case Scheme::kUfabPrime: {
        edge::EdgeConfig cfg = opts.ufab;
        cfg.two_stage_admission = false;
        fab.adopt_stack(host, std::make_unique<edge::EdgeAgent>(fab.net(), fab.vms(), host, cfg,
                                                                opts.transport, rng));
        break;
      }
      case Scheme::kPwc: {
        fab.adopt_stack(host, std::make_unique<baselines::PwcTransport>(
                                  fab.net(), fab.vms(), host, opts.pwc, opts.transport, rng));
        break;
      }
      case Scheme::kEsClove: {
        fab.adopt_stack(host, std::make_unique<baselines::EsTransport>(
                                  fab.net(), fab.vms(), host, opts.es, opts.transport, rng));
        break;
      }
    }
  }
}

}  // namespace ufab::harness

#include "src/harness/vm_map.hpp"

#include "src/core/assert.hpp"

namespace ufab::harness {

TenantId VmMap::add_tenant(std::string name, Bandwidth per_vm_guarantee) {
  const TenantId id{static_cast<std::int32_t>(tenant_name_.size())};
  tenant_name_.push_back(std::move(name));
  tenant_guarantee_.push_back(per_vm_guarantee);
  tenant_vms_.emplace_back();
  return id;
}

VmId VmMap::add_vm(TenantId tenant, HostId host) {
  UFAB_CHECK(tenant.valid() && host.valid());
  const VmId id{static_cast<std::int32_t>(vm_host_.size())};
  vm_host_.push_back(host);
  vm_tenant_.push_back(tenant);
  tenant_vms_.at(static_cast<std::size_t>(tenant.value())).push_back(id);
  const auto hi = static_cast<std::size_t>(host.value());
  if (host_vms_.size() <= hi) host_vms_.resize(hi + 1);
  host_vms_[hi].push_back(id);
  return id;
}

const std::vector<VmId>& VmMap::vms_on(HostId h) const {
  static const std::vector<VmId> kEmpty;
  const auto hi = static_cast<std::size_t>(h.value());
  if (hi >= host_vms_.size()) return kEmpty;
  return host_vms_[hi];
}

}  // namespace ufab::harness

#include "src/obs/metrics.hpp"

#include <algorithm>
#include <cstdio>

#include "src/core/assert.hpp"

namespace ufab::obs {

namespace {

/// Registry key: name + sorted labels, separated by unit separators so no
/// legal metric name can collide with a (name, labels) combination.
std::string make_key(const std::string& name, const Labels& labels) {
  Labels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  std::string key = name;
  for (const auto& [k, v] : sorted) {
    key.push_back('\x1f');
    key += k;
    key.push_back('\x1e');
    key += v;
  }
  return key;
}

std::string format_double(double v) {
  char buf[64];
  // %.12g round-trips every value these metrics produce while keeping
  // integers rendered without a spurious fraction.
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  return buf;
}

}  // namespace

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

MetricRegistry::Cell* MetricRegistry::cell(const std::string& name, const Labels& labels,
                                           Kind kind) {
  const std::string key = make_key(name, labels);
  auto it = index_.find(key);
  if (it != index_.end()) {
    UFAB_CHECK_MSG(it->second->kind == kind, "metric re-registered with a different kind");
    return it->second;
  }
  cells_.push_back(Cell{name, labels, kind, {}, {}, {}});
  Cell* c = &cells_.back();
  index_.emplace(key, c);
  return c;
}

Counter* MetricRegistry::counter(const std::string& name, const Labels& labels) {
  return &cell(name, labels, Kind::kCounter)->counter;
}

Gauge* MetricRegistry::gauge(const std::string& name, const Labels& labels) {
  return &cell(name, labels, Kind::kGauge)->gauge;
}

Gauge* MetricRegistry::gauge_fn(const std::string& name, const Labels& labels,
                                std::function<double()> fn) {
  Gauge* g = gauge(name, labels);
  g->set_callback(std::move(fn));
  return g;
}

Histogram* MetricRegistry::histogram(const std::string& name, const Labels& labels) {
  return &cell(name, labels, Kind::kHistogram)->histogram;
}

void MetricRegistry::add_collector(std::function<void(MetricRegistry&)> fn) {
  collectors_.push_back(std::move(fn));
}

MetricsSnapshot MetricRegistry::snapshot() {
  for (const auto& fn : collectors_) fn(*this);
  MetricsSnapshot snap;
  snap.rows.reserve(cells_.size());
  for (const Cell& c : cells_) {
    MetricsSnapshot::Row row;
    row.name = c.name;
    row.labels = c.labels;
    switch (c.kind) {
      case Kind::kCounter:
        row.kind = "counter";
        row.value = static_cast<double>(c.counter.value());
        break;
      case Kind::kGauge:
        row.kind = "gauge";
        row.value = c.gauge.value();
        break;
      case Kind::kHistogram: {
        row.kind = "histogram";
        const PercentileTracker& t = c.histogram.samples();
        row.value = static_cast<double>(t.count());
        if (!t.empty()) {
          row.mean = t.mean();
          row.p50 = t.percentile(50);
          row.p90 = t.percentile(90);
          row.p99 = t.percentile(99);
          row.p999 = t.percentile(99.9);
          row.max = t.max();
        }
        break;
      }
    }
    snap.rows.push_back(std::move(row));
  }
  // Deterministic output order regardless of registration interleaving.
  std::stable_sort(snap.rows.begin(), snap.rows.end(),
                   [](const MetricsSnapshot::Row& a, const MetricsSnapshot::Row& b) {
                     if (a.name != b.name) return a.name < b.name;
                     return a.labels < b.labels;
                   });
  return snap;
}

std::string MetricsSnapshot::to_json() const {
  std::string out = "{\n  \"metrics\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    out += "    {\"name\": \"" + json_escape(r.name) + "\", \"kind\": \"" + r.kind + "\"";
    if (!r.labels.empty()) {
      out += ", \"labels\": {";
      for (std::size_t j = 0; j < r.labels.size(); ++j) {
        if (j > 0) out += ", ";
        out += "\"" + json_escape(r.labels[j].first) + "\": \"" +
               json_escape(r.labels[j].second) + "\"";
      }
      out += "}";
    }
    if (r.kind == "histogram") {
      out += ", \"count\": " + format_double(r.value) + ", \"mean\": " + format_double(r.mean) +
             ", \"p50\": " + format_double(r.p50) + ", \"p90\": " + format_double(r.p90) +
             ", \"p99\": " + format_double(r.p99) + ", \"p999\": " + format_double(r.p999) +
             ", \"max\": " + format_double(r.max);
    } else {
      out += ", \"value\": " + format_double(r.value);
    }
    out += i + 1 < rows.size() ? "},\n" : "}\n";
  }
  out += "  ]\n}\n";
  return out;
}

std::string MetricsSnapshot::to_csv() const {
  std::string out = "name,labels,kind,value,mean,p50,p90,p99,p999,max\n";
  for (const Row& r : rows) {
    std::string labels;
    for (std::size_t j = 0; j < r.labels.size(); ++j) {
      if (j > 0) labels += ";";
      labels += r.labels[j].first + "=" + r.labels[j].second;
    }
    out += r.name + "," + labels + "," + r.kind + "," + format_double(r.value) + "," +
           format_double(r.mean) + "," + format_double(r.p50) + "," + format_double(r.p90) +
           "," + format_double(r.p99) + "," + format_double(r.p999) + "," +
           format_double(r.max) + "\n";
  }
  return out;
}

const MetricsSnapshot::Row* MetricsSnapshot::find(const std::string& name,
                                                  const Labels& labels) const {
  for (const Row& r : rows) {
    if (r.name != name) continue;
    bool all = true;
    for (const auto& want : labels) {
      bool present = false;
      for (const auto& have : r.labels) {
        if (have == want) {
          present = true;
          break;
        }
      }
      if (!present) {
        all = false;
        break;
      }
    }
    if (all) return &r;
  }
  return nullptr;
}

}  // namespace ufab::obs

#include "src/obs/flight_recorder.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>

#include "src/core/assert.hpp"
#include "src/core/shard_context.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/profiler.hpp"

namespace ufab::obs {

const char* to_string(EventKind kind) {
  switch (kind) {
    case EventKind::kProbeSent:
      return "probe_sent";
    case EventKind::kScoutSent:
      return "scout_sent";
    case EventKind::kProbeRetransmit:
      return "probe_retransmit";
    case EventKind::kProbeEchoed:
      return "probe_echoed";
    case EventKind::kWindowUpdate:
      return "window_update";
    case EventKind::kPathMigration:
      return "path_migration";
    case EventKind::kFinishSent:
      return "finish_sent";
    case EventKind::kStateLossDetected:
      return "state_loss_detected";
    case EventKind::kStaleTelemetry:
      return "stale_telemetry";
    case EventKind::kGuaranteeDegraded:
      return "guarantee_degraded";
    case EventKind::kDataRetransmit:
      return "data_retransmit";
    case EventKind::kProbeIntStamp:
      return "probe_int_stamp";
    case EventKind::kRegisterWrite:
      return "register_write";
    case EventKind::kRegisterClear:
      return "register_clear";
    case EventKind::kBloomInsert:
      return "bloom_insert";
    case EventKind::kBloomRemove:
      return "bloom_remove";
    case EventKind::kBloomClear:
      return "bloom_clear";
    case EventKind::kSwitchReset:
      return "switch_reset";
    case EventKind::kDrop:
      return "drop";
    case EventKind::kEcnMark:
      return "ecn_mark";
    case EventKind::kLinkDown:
      return "link_down";
    case EventKind::kLinkUp:
      return "link_up";
    case EventKind::kFaultLossDrop:
      return "fault_loss_drop";
    case EventKind::kIntTamper:
      return "int_tamper";
    case EventKind::kBloomJunk:
      return "bloom_junk";
    case EventKind::kCheckFailure:
      return "check_failure";
  }
  return "?";
}

const char* to_string(WindowBound bound) {
  switch (bound) {
    case WindowBound::kBootstrapRamp:
      return "bootstrap_ramp";
    case WindowBound::kEqn3:
      return "eqn3";
    case WindowBound::kGuaranteeOnly:
      return "guarantee_only";
    case WindowBound::kFloor:
      return "floor";
  }
  return "?";
}

const char* to_string(DropReason reason) {
  switch (reason) {
    case DropReason::kTailDrop:
      return "tail_drop";
    case DropReason::kLinkDown:
      return "link_down";
    case DropReason::kWireFault:
      return "wire_fault";
    case DropReason::kNoRoute:
      return "no_route";
  }
  return "?";
}

namespace {

/// Stable per-TrackKind Chrome "process" id so every host, switch egress,
/// tenant, and link family renders as its own named process group.
int pid_of(TrackKind kind) {
  switch (kind) {
    case TrackKind::kHost:
      return 1;
    case TrackKind::kSwitch:
      return 2;
    case TrackKind::kTenant:
      return 3;
    case TrackKind::kLink:
      return 4;
    case TrackKind::kFabric:
      return 5;
  }
  return 5;
}

const char* pid_name(TrackKind kind) {
  switch (kind) {
    case TrackKind::kHost:
      return "hosts";
    case TrackKind::kSwitch:
      return "switches";
    case TrackKind::kTenant:
      return "tenants";
    case TrackKind::kLink:
      return "links";
    case TrackKind::kFabric:
      return "fabric";
  }
  return "fabric";
}

/// Chrome "thread" id: unique per (id, sub) within a process group.
std::int64_t tid_of(const Track& t) {
  return static_cast<std::int64_t>(t.id + 1) * 1024 + (t.sub + 1);
}

std::string default_track_name(const Track& t) {
  char buf[64];
  switch (t.kind) {
    case TrackKind::kHost:
      std::snprintf(buf, sizeof(buf), "host-%d", t.id);
      break;
    case TrackKind::kSwitch:
      std::snprintf(buf, sizeof(buf), "switch-%d/port-%d", t.id, t.sub);
      break;
    case TrackKind::kTenant:
      std::snprintf(buf, sizeof(buf), "tenant-%d", t.id);
      break;
    case TrackKind::kLink:
      std::snprintf(buf, sizeof(buf), "link-%d", t.id);
      break;
    case TrackKind::kFabric:
      std::snprintf(buf, sizeof(buf), "fabric");
      break;
  }
  return buf;
}

std::string pair_str(VmPairId pair) {
  if (!pair.valid()) return "";
  return std::to_string(pair.src.value()) + "->" + std::to_string(pair.dst.value());
}

/// Stable flow id binding one probe's causal chain across tracks.
std::uint64_t flow_id(const TraceEvent& ev) {
  std::uint64_t x = ev.pair.key() ^ (ev.seq * 0x9e3779b97f4a7c15ULL);
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  return x ^ (x >> 31);
}

bool is_probe_chain(EventKind kind) {
  return kind == EventKind::kProbeSent || kind == EventKind::kProbeIntStamp ||
         kind == EventKind::kProbeEchoed || kind == EventKind::kWindowUpdate;
}

std::string detail_str(const TraceEvent& ev) {
  switch (ev.kind) {
    case EventKind::kWindowUpdate:
      return to_string(static_cast<WindowBound>(ev.detail));
    case EventKind::kDrop:
      return to_string(static_cast<DropReason>(ev.detail));
    case EventKind::kIntTamper:
      return ev.detail == 0 ? "stale" : ev.detail == 1 ? "corrupt" : "strip";
    default:
      return "";
  }
}

std::string event_args_json(const TraceEvent& ev) {
  char buf[128];
  std::string args;
  if (ev.pair.valid()) args += "\"pair\": \"" + pair_str(ev.pair) + "\", ";
  if (ev.tenant.valid()) args += "\"tenant\": " + std::to_string(ev.tenant.value()) + ", ";
  if (ev.link.valid()) args += "\"link\": " + std::to_string(ev.link.value()) + ", ";
  if (ev.seq != 0) args += "\"seq\": " + std::to_string(ev.seq) + ", ";
  const std::string detail = detail_str(ev);
  if (!detail.empty()) args += "\"detail\": \"" + detail + "\", ";
  std::snprintf(buf, sizeof(buf), "\"a\": %.12g, \"b\": %.12g", ev.a, ev.b);
  args += buf;
  return args;
}

}  // namespace

FlightRecorder::FlightRecorder(std::size_t capacity) : cap_(capacity) {
  UFAB_CHECK_MSG(capacity > 0, "flight recorder needs a non-empty ring");
  rings_[0] = std::make_unique<Ring>();
  rings_[0]->buf.resize(cap_);
}

FlightRecorder::Ring& FlightRecorder::ring_for(int shard) {
  auto& slot = rings_[static_cast<std::size_t>(shard) % kMaxRings];
  if (slot == nullptr) {
    // First record from this shard; only that shard's thread touches the slot
    // during a run, so lazy creation is race-free.
    slot = std::make_unique<Ring>();
    slot->buf.resize(cap_);
  }
  return *slot;
}

void FlightRecorder::record(const TraceEvent& ev) {
  Ring& r = ring_for(current_shard_index());
  r.buf[static_cast<std::size_t>(r.total % r.buf.size())] = ev;
  ++r.total;
}

std::size_t FlightRecorder::size() const {
  std::size_t n = 0;
  for (const auto& r : rings_) {
    if (r != nullptr) {
      n += static_cast<std::size_t>(std::min<std::uint64_t>(r->total, r->buf.size()));
    }
  }
  return n;
}

std::uint64_t FlightRecorder::recorded_total() const {
  std::uint64_t n = 0;
  for (const auto& r : rings_) {
    if (r != nullptr) n += r->total;
  }
  return n;
}

std::vector<TraceEvent> FlightRecorder::events() const {
  // Concatenate the per-shard rings (each oldest first), then stable-sort by
  // timestamp: equal-time events keep (shard, ring position) order, so the
  // merged view is deterministic, and unchanged when only shard 0 recorded.
  std::vector<TraceEvent> out;
  out.reserve(size());
  for (const auto& r : rings_) {
    if (r == nullptr) continue;
    const std::uint64_t n = std::min<std::uint64_t>(r->total, r->buf.size());
    for (std::uint64_t i = r->total - n; i < r->total; ++i) {
      out.push_back(r->buf[static_cast<std::size_t>(i % r->buf.size())]);
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceEvent& a, const TraceEvent& b) { return a.at < b.at; });
  return out;
}

std::vector<TraceEvent> FlightRecorder::events_for_pair(VmPairId pair) const {
  std::vector<TraceEvent> out;
  for (const TraceEvent& ev : events()) {
    if (ev.pair == pair) out.push_back(ev);
  }
  return out;
}

void FlightRecorder::clear() {
  for (auto& r : rings_) {
    if (r != nullptr) r->total = 0;
  }
}

void FlightRecorder::write_json(std::ostream& os) const {
  const std::vector<TraceEvent> evs = events();
  os << "{\n  \"recorded_total\": " << recorded_total() << ",\n  \"events\": [\n";
  char buf[160];
  for (std::size_t i = 0; i < evs.size(); ++i) {
    const TraceEvent& ev = evs[i];
    std::snprintf(buf, sizeof(buf), "    {\"t_ns\": %lld, \"kind\": \"%s\", \"track\": \"%s\", ",
                  static_cast<long long>(ev.at.ns()), to_string(ev.kind),
                  default_track_name(ev.track).c_str());
    os << buf << event_args_json(ev) << (i + 1 < evs.size() ? "},\n" : "}\n");
  }
  os << "  ]\n}\n";
}

void FlightRecorder::write_chrome_trace(std::ostream& os, const TrackNamer& namer,
                                        const Profiler* profiler, int shard_count) const {
  const std::vector<TraceEvent> evs = events();
  // Schema 2 = schema 1 plus profiler counter tracks (pid 6) and this
  // explicit version key; render_trace.py uses it to catch version-mixed
  // traces (e.g. prof.* counters spliced into an old schema-1 export).
  os << "{\"ufab_schema\": 2, \"traceEvents\": [\n";

  // Metadata: name every process group and every track that appears,
  // including the per-tenant counter tracks fed by window updates (below).
  std::map<std::pair<int, std::int64_t>, Track> tracks;
  std::set<int> pids;
  for (const TraceEvent& ev : evs) {
    pids.insert(pid_of(ev.track.kind));
    tracks.emplace(std::make_pair(pid_of(ev.track.kind), tid_of(ev.track)), ev.track);
    if (ev.kind == EventKind::kWindowUpdate && ev.tenant.valid()) {
      const Track tt = Track::tenant(ev.tenant);
      pids.insert(pid_of(tt.kind));
      tracks.emplace(std::make_pair(pid_of(tt.kind), tid_of(tt)), tt);
    }
  }
  bool first = true;
  const auto emit = [&os, &first](const std::string& line) {
    if (!first) os << ",\n";
    first = false;
    os << line;
  };
  for (const int pid : pids) {
    const TrackKind kind = pid == 1   ? TrackKind::kHost
                           : pid == 2 ? TrackKind::kSwitch
                           : pid == 3 ? TrackKind::kTenant
                           : pid == 4 ? TrackKind::kLink
                                      : TrackKind::kFabric;
    emit("{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": " + std::to_string(pid) +
         ", \"args\": {\"name\": \"" + pid_name(kind) + "\"}}");
  }
  for (const auto& [key, track] : tracks) {
    const std::string name = namer ? namer(track) : default_track_name(track);
    emit("{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": " + std::to_string(key.first) +
         ", \"tid\": " + std::to_string(key.second) + ", \"args\": {\"name\": \"" +
         json_escape(name) + "\"}}");
  }

  // Events.  Probe-chain events become tiny slices joined by flow arrows so
  // chrome://tracing / Perfetto draws each probe's causal path end to end;
  // everything else is an instant on its track.
  char head[256];
  for (const TraceEvent& ev : evs) {
    const double ts_us = static_cast<double>(ev.at.ns()) / 1e3;
    const int pid = pid_of(ev.track.kind);
    const std::int64_t tid = tid_of(ev.track);
    const std::string args = event_args_json(ev);
    if (is_probe_chain(ev.kind) && ev.pair.valid()) {
      std::snprintf(head, sizeof(head),
                    "{\"name\": \"%s\", \"ph\": \"X\", \"pid\": %d, \"tid\": %lld, "
                    "\"ts\": %.3f, \"dur\": 0.2, \"args\": {",
                    to_string(ev.kind), pid, static_cast<long long>(tid), ts_us);
      emit(std::string(head) + args + "}}");
      const char flow_ph = ev.kind == EventKind::kProbeSent      ? 's'
                           : ev.kind == EventKind::kWindowUpdate ? 'f'
                                                                 : 't';
      std::snprintf(head, sizeof(head),
                    "{\"name\": \"probe\", \"cat\": \"probe\", \"ph\": \"%c\", \"id\": "
                    "\"0x%llx\", \"pid\": %d, \"tid\": %lld, \"ts\": %.3f%s}",
                    flow_ph, static_cast<unsigned long long>(flow_id(ev)), pid,
                    static_cast<long long>(tid), ts_us,
                    flow_ph == 'f' ? ", \"bp\": \"e\"" : "");
      emit(head);
    } else {
      std::snprintf(head, sizeof(head),
                    "{\"name\": \"%s\", \"ph\": \"i\", \"s\": \"t\", \"pid\": %d, "
                    "\"tid\": %lld, \"ts\": %.3f, \"args\": {",
                    to_string(ev.kind), pid, static_cast<long long>(tid), ts_us);
      emit(std::string(head) + args + "}}");
    }
    // Tenant-track counter: the admitted window over time, one counter series
    // per tenant ("one track per tenant" in the exported view).
    if (ev.kind == EventKind::kWindowUpdate && ev.tenant.valid()) {
      std::snprintf(head, sizeof(head),
                    "{\"name\": \"window_bytes\", \"ph\": \"C\", \"pid\": %d, \"tid\": %lld, "
                    "\"ts\": %.3f, \"args\": {\"window\": %.12g}}",
                    pid_of(TrackKind::kTenant),
                    static_cast<long long>(tid_of(Track::tenant(ev.tenant))), ts_us, ev.b);
      emit(head);
    }
  }
  if (profiler != nullptr) profiler->write_chrome_counter_events(os, first, shard_count);
  os << "\n]}\n";
}

}  // namespace ufab::obs

// Fabric-wide metrics registry.
//
// A MetricRegistry is the one place an experiment's quantitative state is
// published: hierarchical dot-separated names plus free-form labels identify
// counters, gauges, and histograms.  Handles are resolved ONCE, at
// registration time — the hot path holds a raw pointer and increments through
// it, so no string hashing or map lookup ever happens per packet.  Histograms
// reuse PercentileTracker; gauges may be plain values or pull callbacks read
// at snapshot time, so register-once/read-live state (Φ_l totals, tenant
// meters) costs nothing between snapshots.
//
// Snapshots serialize every metric to JSON or CSV so benches emit
// machine-readable results next to their printed tables.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/stats/percentile.hpp"

namespace ufab::obs {

/// Label set attached to a metric, e.g. {{"host", "3"}, {"tenant", "VF-1"}}.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Monotonic integer count (events, bytes, drops).
class Counter {
 public:
  void inc(std::int64_t d = 1) { v_ += d; }
  [[nodiscard]] std::int64_t value() const { return v_; }

 private:
  std::int64_t v_ = 0;
};

/// Point-in-time scalar; either set explicitly or pulled from a callback
/// (the callback wins while installed).
class Gauge {
 public:
  void set(double v) { v_ = v; }
  void set_callback(std::function<double()> fn) { fn_ = std::move(fn); }
  [[nodiscard]] double value() const { return fn_ ? fn_() : v_; }

 private:
  double v_ = 0.0;
  std::function<double()> fn_;
};

/// Sample distribution backed by an exact PercentileTracker.
class Histogram {
 public:
  void observe(double v) { samples_.add(v); }
  [[nodiscard]] const PercentileTracker& samples() const { return samples_; }

 private:
  PercentileTracker samples_;
};

/// One serialized view of every registered metric.
struct MetricsSnapshot {
  struct Row {
    std::string name;
    Labels labels;
    std::string kind;  ///< "counter" | "gauge" | "histogram"
    double value = 0.0;  ///< Counter/gauge value; histogram sample count.
    /// Histogram-only summary (zeroed otherwise).
    double mean = 0.0, p50 = 0.0, p90 = 0.0, p99 = 0.0, p999 = 0.0, max = 0.0;
  };
  std::vector<Row> rows;

  [[nodiscard]] std::string to_json() const;
  [[nodiscard]] std::string to_csv() const;
  /// First row matching name (and labels when given); nullptr if absent.
  [[nodiscard]] const Row* find(const std::string& name, const Labels& labels = {}) const;
};

class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  /// Registration: the same (name, labels) always returns the same handle,
  /// so instrumented objects can re-attach without duplicating series.
  /// Handles stay valid for the registry's lifetime (deque storage).
  Counter* counter(const std::string& name, const Labels& labels = {});
  Gauge* gauge(const std::string& name, const Labels& labels = {});
  /// Gauge whose value is pulled from `fn` at snapshot time.
  Gauge* gauge_fn(const std::string& name, const Labels& labels, std::function<double()> fn);
  Histogram* histogram(const std::string& name, const Labels& labels = {});

  /// Collectors run at the start of every snapshot; use them to publish
  /// metrics whose population is dynamic (tenants joining mid-run).
  void add_collector(std::function<void(MetricRegistry&)> fn);

  [[nodiscard]] MetricsSnapshot snapshot();
  [[nodiscard]] std::size_t metric_count() const { return cells_.size(); }

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Cell {
    std::string name;
    Labels labels;
    Kind kind;
    Counter counter;
    Gauge gauge;
    Histogram histogram;
  };

  Cell* cell(const std::string& name, const Labels& labels, Kind kind);

  std::deque<Cell> cells_;  // deque: stable addresses as the registry grows
  std::unordered_map<std::string, Cell*> index_;
  std::vector<std::function<void(MetricRegistry&)>> collectors_;
};

/// Escapes a string for embedding in a JSON document (shared by the metrics
/// and flight-recorder exporters).
[[nodiscard]] std::string json_escape(const std::string& s);

}  // namespace ufab::obs

#include "src/obs/profiler.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <chrono>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <ostream>

namespace ufab::obs {

namespace {

[[nodiscard]] std::int64_t wall_ns_now() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Calibrates ticks -> ns once per process.  ~300 us of busy spinning, paid
/// on the first export (or first Profiler construction), never per run.
[[nodiscard]] double calibrate_ns_per_tick() {
#if UFAB_PROF_HAS_RDTSC
  const std::int64_t w0 = wall_ns_now();
  const std::int64_t t0 = ProfClock::now();
  std::int64_t w1 = w0;
  // Spin until enough wall time has passed for a stable ratio.
  while (w1 - w0 < 300'000) w1 = wall_ns_now();
  const std::int64_t t1 = ProfClock::now();
  if (t1 <= t0) return 1.0;  // non-monotonic TSC; degrade to raw ticks
  return static_cast<double>(w1 - w0) / static_cast<double>(t1 - t0);
#else
  return 1.0;  // clock already reads nanoseconds
#endif
}

[[nodiscard]] double ticks_to_ns(std::int64_t ticks) {
  return static_cast<double>(ticks) * ProfClock::ns_per_tick();
}

void append_f(std::string& out, const char* fmt, ...) __attribute__((format(printf, 2, 3)));
void append_f(std::string& out, const char* fmt, ...) {
  char buf[256];
  va_list ap;
  va_start(ap, fmt);
  const int n = std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  if (n > 0) out.append(buf, std::min(static_cast<std::size_t>(n), sizeof(buf) - 1));
}

[[nodiscard]] int occ_bucket(std::uint64_t occupancy) {
  return std::min(static_cast<int>(std::bit_width(occupancy)), Profiler::kOccBuckets - 1);
}

}  // namespace

const char* to_string(ProfCat cat) {
  switch (cat) {
    case ProfCat::kDispatchDeliver: return "dispatch_deliver";
    case ProfCat::kDispatchClosure: return "dispatch_closure";
    case ProfCat::kQueuePop: return "queue_pop";
    case ProfCat::kMailboxInject: return "mailbox_inject";
    case ProfCat::kBarrierWait: return "barrier_wait";
    case ProfCat::kWfq: return "wfq";
    case ProfCat::kTelemetry: return "telemetry";
    case ProfCat::kMailboxPost: return "mailbox_post";
    case ProfCat::kCount: break;
  }
  return "unknown";
}

double ProfClock::ns_per_tick() {
  static const double ratio = calibrate_ns_per_tick();
  return ratio;
}

std::int64_t ProfClock::self_ticks() {
  static const std::int64_t self = [] {
    std::array<std::int64_t, 129> reads{};
    for (std::int64_t& r : reads) r = ProfClock::now();
    std::array<std::int64_t, 128> deltas{};
    for (std::size_t i = 0; i < deltas.size(); ++i) deltas[i] = reads[i + 1] - reads[i];
    std::sort(deltas.begin(), deltas.end());
    return std::max<std::int64_t>(deltas[deltas.size() / 2], 0);
  }();
  return self;
}

Profiler::Profiler(const ProfOptions& opts) : opts_(opts) {
  if (opts_.level < 1) opts_.level = 1;
  if (opts_.sample_period_ns < 1) opts_.sample_period_ns = 1;
  if (opts_.max_samples_per_shard < 1) opts_.max_samples_per_shard = 1;
  if (opts_.timing_stride < 1) opts_.timing_stride = 1;
  opts_.timing_stride = std::bit_ceil(opts_.timing_stride);
  timing_mask_ = opts_.timing_stride - 1;
  // Pay the clock calibration now, outside any timed region, so the first
  // export does not stall and benchmark iterations never see it.
  (void)ProfClock::ns_per_tick();
}

int Profiler::env_level() {
  const char* v = std::getenv("UFAB_PROF");
  if (v == nullptr || v[0] == '\0') return 0;
  const int level = std::atoi(v);
  if (level <= 0) return 0;
  return level >= 2 ? 2 : 1;
}

void Profiler::add_sample(int shard, const ProfSample& sample) {
  const auto si = static_cast<std::size_t>(shard);
  std::vector<ProfSample>& ring = sample_rings_[si];
  if (ring.empty()) ring.resize(opts_.max_samples_per_shard);
  ring[samples_taken_[si] % ring.size()] = sample;
  ++samples_taken_[si];
  ++ring_occ_hist_[si][static_cast<std::size_t>(occ_bucket(sample.ring_events))];
  ++overflow_occ_hist_[si][static_cast<std::size_t>(occ_bucket(sample.overflow_events))];
  next_sample_ns_[si] = sample.sim_ns + opts_.sample_period_ns;
}

void Profiler::note_epoch(std::int64_t epoch_sim_ns) {
  if (epochs_ == 0 || epoch_sim_ns < epoch_sim_ns_min_) epoch_sim_ns_min_ = epoch_sim_ns;
  if (epochs_ == 0 || epoch_sim_ns > epoch_sim_ns_max_) epoch_sim_ns_max_ = epoch_sim_ns;
  epoch_sim_ns_total_ += epoch_sim_ns;
  ++epochs_;
  const auto len = static_cast<std::uint64_t>(epoch_sim_ns < 0 ? 0 : epoch_sim_ns);
  const int b = std::min(static_cast<int>(std::bit_width(len)), kEpochLenBuckets - 1);
  ++epoch_len_hist_[static_cast<std::size_t>(b)];
}

void Profiler::note_injected(std::uint64_t crossings) { crossings_injected_ += crossings; }

double Profiler::run_wall_ns() const { return ticks_to_ns(run_wall_ticks_); }

std::vector<ProfSample> Profiler::samples(int shard) const {
  const auto si = static_cast<std::size_t>(shard);
  const std::vector<ProfSample>& ring = sample_rings_[si];
  std::vector<ProfSample> out;
  if (ring.empty()) return out;
  const std::uint64_t taken = samples_taken_[si];
  const std::uint64_t n = std::min<std::uint64_t>(taken, ring.size());
  out.reserve(n);
  const std::uint64_t start = taken - n;  // oldest still in the ring
  for (std::uint64_t i = 0; i < n; ++i) out.push_back(ring[(start + i) % ring.size()]);
  return out;
}

double Profiler::scope_ns(int shard, ProfCat cat) const {
  const ProfSlice& sl = slice(shard);
  const auto ci = static_cast<std::size_t>(cat);
  if (sl.sampled[ci] == 0) return 0.0;
  // Each measured interval includes one clock read's own latency — material
  // on VMs where a TSC read costs tens of ns, the same order as an event.
  double ticks = static_cast<double>(sl.ticks[ci]) -
                 static_cast<double>(sl.sampled[ci]) *
                     static_cast<double>(ProfClock::self_ticks());
  if (ticks < 0) ticks = 0;
  const double ns = ticks * ProfClock::ns_per_tick();
  if (sl.sampled[ci] >= sl.count[ci]) return ns;
  // Strided category: the sampled ticks stand for count/sampled times as
  // many calls (self-normalizing ratio estimator, exact when stride is 1).
  return ns * (static_cast<double>(sl.count[ci]) / static_cast<double>(sl.sampled[ci]));
}

ProfDerived Profiler::derived(int shard_count) const {
  ProfDerived d;
  d.busy_ns_per_shard.resize(static_cast<std::size_t>(shard_count), 0.0);
  d.stall_ns_per_shard.resize(static_cast<std::size_t>(shard_count), 0.0);
  for (int s = 0; s < shard_count; ++s) {
    double busy = 0.0;
    for (const ProfCat cat : {ProfCat::kDispatchDeliver, ProfCat::kDispatchClosure,
                              ProfCat::kQueuePop, ProfCat::kMailboxInject}) {
      busy += scope_ns(s, cat);
    }
    const double stall = scope_ns(s, ProfCat::kBarrierWait);
    d.busy_ns_per_shard[static_cast<std::size_t>(s)] = busy;
    d.stall_ns_per_shard[static_cast<std::size_t>(s)] = stall;
    d.busy_ns_total += busy;
    d.stall_ns_total += stall;
  }
  if (d.busy_ns_total + d.stall_ns_total > 0) {
    d.stall_fraction = d.stall_ns_total / (d.busy_ns_total + d.stall_ns_total);
  }
  if (d.busy_ns_total > 0 && shard_count > 0) {
    const double mean = d.busy_ns_total / shard_count;
    const double max =
        *std::max_element(d.busy_ns_per_shard.begin(), d.busy_ns_per_shard.end());
    if (mean > 0) d.shard_imbalance = max / mean;
  }
  return d;
}

std::string Profiler::to_json(const ProfContext& ctx) const {
  const ProfDerived d = derived(ctx.shard_count);
  std::string out;
  out.reserve(4096);
  out += "{\n  \"schema\": \"ufab-profile-v1\",\n";
  append_f(out, "  \"level\": %d,\n", opts_.level);
  append_f(out, "  \"shards\": %d,\n", ctx.shard_count);
  append_f(out, "  \"threaded\": %s,\n", ctx.threaded ? "true" : "false");
  append_f(out, "  \"lookahead_ns\": %lld,\n", static_cast<long long>(ctx.lookahead_ns));
  append_f(out, "  \"adaptive_epochs\": %s,\n", ctx.adaptive_epochs ? "true" : "false");
  append_f(out, "  \"epoch_windows\": %d,\n", ctx.epoch_windows);
  append_f(out, "  \"sample_period_ns\": %lld,\n",
           static_cast<long long>(opts_.sample_period_ns));
  append_f(out, "  \"timing_stride\": %llu,\n",
           static_cast<unsigned long long>(opts_.timing_stride));
  append_f(out, "  \"wall_ns\": %.1f,\n", run_wall_ns());
  append_f(out,
           "  \"epochs\": {\"count\": %llu, \"sim_ns_total\": %lld, \"sim_ns_min\": %lld, "
           "\"sim_ns_max\": %lld, \"crossings_injected\": %llu, \"windows\": %llu, "
           "\"barrier_skips\": %llu},\n",
           static_cast<unsigned long long>(epochs_),
           static_cast<long long>(epoch_sim_ns_total_),
           static_cast<long long>(epochs_ == 0 ? 0 : epoch_sim_ns_min_),
           static_cast<long long>(epochs_ == 0 ? 0 : epoch_sim_ns_max_),
           static_cast<unsigned long long>(crossings_injected_),
           static_cast<unsigned long long>(windows_),
           static_cast<unsigned long long>(barrier_skips_));
  out += "  \"epoch_len_ns_log2\": [";
  for (int b = 0; b < kEpochLenBuckets; ++b) {
    append_f(out, "%s%llu", b == 0 ? "" : ",",
             static_cast<unsigned long long>(epoch_len_hist_[static_cast<std::size_t>(b)]));
  }
  out += "],\n";
  append_f(out,
           "  \"handoff\": {\"max_drain_batch\": %llu, \"mailbox_flushes\": %llu},\n",
           static_cast<unsigned long long>(ctx.handoff_max_batch),
           static_cast<unsigned long long>(ctx.mailbox_flushes));
  append_f(out,
           "  \"derived\": {\"stall_fraction\": %.6f, \"shard_imbalance\": %.6f, "
           "\"busy_ns_total\": %.1f, \"stall_ns_total\": %.1f},\n",
           d.stall_fraction, d.shard_imbalance, d.busy_ns_total, d.stall_ns_total);
  out += "  \"scopes\": [";
  for (int c = 0; c < kProfCatCount; ++c) {
    append_f(out, "%s\"%s\"", c == 0 ? "" : ", ", to_string(static_cast<ProfCat>(c)));
  }
  out += "],\n  \"shards_detail\": [\n";
  for (int s = 0; s < ctx.shard_count; ++s) {
    const ProfSlice& sl = slice(s);
    const std::uint64_t events =
        static_cast<std::size_t>(s) < ctx.events_per_shard.size()
            ? ctx.events_per_shard[static_cast<std::size_t>(s)]
            : 0;
    const std::uint64_t crossings =
        static_cast<std::size_t>(s) < ctx.crossings_per_shard.size()
            ? ctx.crossings_per_shard[static_cast<std::size_t>(s)]
            : 0;
    append_f(out, "    {\"shard\": %d, \"events\": %llu, \"crossings_out\": %llu,\n", s,
             static_cast<unsigned long long>(events),
             static_cast<unsigned long long>(crossings));
    append_f(out, "     \"busy_ns\": %.1f, \"stall_ns\": %.1f,\n",
             d.busy_ns_per_shard[static_cast<std::size_t>(s)],
             d.stall_ns_per_shard[static_cast<std::size_t>(s)]);
    out += "     \"scope_ns\": {";
    for (int c = 0; c < kProfCatCount; ++c) {
      append_f(out, "%s\"%s\": %.1f", c == 0 ? "" : ", ",
               to_string(static_cast<ProfCat>(c)), scope_ns(s, static_cast<ProfCat>(c)));
    }
    out += "},\n     \"scope_count\": {";
    for (int c = 0; c < kProfCatCount; ++c) {
      append_f(out, "%s\"%s\": %llu", c == 0 ? "" : ", ",
               to_string(static_cast<ProfCat>(c)),
               static_cast<unsigned long long>(sl.count[static_cast<std::size_t>(c)]));
    }
    out += "},\n     \"scope_sampled\": {";
    for (int c = 0; c < kProfCatCount; ++c) {
      append_f(out, "%s\"%s\": %llu", c == 0 ? "" : ", ",
               to_string(static_cast<ProfCat>(c)),
               static_cast<unsigned long long>(sl.sampled[static_cast<std::size_t>(c)]));
    }
    append_f(out, "},\n     \"queue\": {\"samples\": %llu, \"ring_occ_log2\": [",
             static_cast<unsigned long long>(samples_taken_[static_cast<std::size_t>(s)]));
    const auto& rh = ring_occ_hist_[static_cast<std::size_t>(s)];
    const auto& oh = overflow_occ_hist_[static_cast<std::size_t>(s)];
    for (int b = 0; b < kOccBuckets; ++b) {
      append_f(out, "%s%llu", b == 0 ? "" : ",",
               static_cast<unsigned long long>(rh[static_cast<std::size_t>(b)]));
    }
    out += "], \"overflow_occ_log2\": [";
    for (int b = 0; b < kOccBuckets; ++b) {
      append_f(out, "%s%llu", b == 0 ? "" : ",",
               static_cast<unsigned long long>(oh[static_cast<std::size_t>(b)]));
    }
    append_f(out, "]}}%s\n", s + 1 < ctx.shard_count ? "," : "");
  }
  out += "  ]\n}\n";
  return out;
}

void Profiler::write_chrome_counter_events(std::ostream& os, bool& first,
                                           int shard_count) const {
  const auto emit = [&os, &first](const std::string& json) {
    if (!first) os << ",\n";
    first = false;
    os << json;
  };
  bool any = false;
  for (int s = 0; s < shard_count; ++s) {
    if (samples_taken_[static_cast<std::size_t>(s)] != 0) any = true;
  }
  if (!any) return;
  std::string buf;
  append_f(buf,
           "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": %d, \"tid\": 0, "
           "\"args\": {\"name\": \"engine profiler\"}}",
           kTracePid);
  emit(buf);
  for (int s = 0; s < shard_count; ++s) {
    if (samples_taken_[static_cast<std::size_t>(s)] == 0) continue;
    buf.clear();
    append_f(buf,
             "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": %d, \"tid\": %d, "
             "\"args\": {\"name\": \"shard %d\"}}",
             kTracePid, s, s);
    emit(buf);
    const std::vector<ProfSample> series = samples(s);
    bool any_crossings = false;
    for (const ProfSample& sm : series) {
      if (sm.crossings_out != 0) any_crossings = true;
    }
    for (const ProfSample& sm : series) {
      buf.clear();
      append_f(buf,
               "{\"name\": \"prof.queue_depth[s%d]\", \"ph\": \"C\", \"pid\": %d, "
               "\"tid\": %d, \"ts\": %.3f, \"args\": {\"ring\": %llu, \"overflow\": %llu}}",
               s, kTracePid, s, static_cast<double>(sm.sim_ns) / 1e3,
               static_cast<unsigned long long>(sm.ring_events),
               static_cast<unsigned long long>(sm.overflow_events));
      emit(buf);
      if (any_crossings) {
        buf.clear();
        append_f(buf,
                 "{\"name\": \"prof.crossings[s%d]\", \"ph\": \"C\", \"pid\": %d, "
                 "\"tid\": %d, \"ts\": %.3f, \"args\": {\"posted\": %llu}}",
                 s, kTracePid, s, static_cast<double>(sm.sim_ns) / 1e3,
                 static_cast<unsigned long long>(sm.crossings_out));
        emit(buf);
      }
    }
  }
}

}  // namespace ufab::obs

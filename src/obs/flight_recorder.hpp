// Flight recorder: a bounded ring of typed simulation events.
//
// Every interesting state transition — probe sent / INT-stamped / echoed /
// retransmitted, window updates with the Eqn 1–3 term that bound them, path
// migrations, Φ_l/W_l register writes, Bloom mutations, fault activations,
// drops and ECN marks — is appended as one fixed-size TraceEvent.  The ring
// overwrites the oldest entry when full, so recording cost is a bounds check
// plus a 64-byte store regardless of run length, and the recorder always
// holds the most recent window of history ("why did the p99 spike?").
//
// Exports:
//  * write_json      — the raw event list, one JSON object per event;
//  * write_chrome_trace — Chrome trace-event JSON loadable in chrome://tracing
//    or Perfetto, one track per host / switch egress / tenant / link, with
//    flow arrows stitching each probe's send → INT-stamp → echo →
//    window-update causal chain.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "src/core/ids.hpp"
#include "src/core/time.hpp"

namespace ufab::obs {

enum class EventKind : std::uint8_t {
  // --- edge (uFAB-E) ---
  kProbeSent,          ///< a=phi claimed, b=window claimed (bytes/s), seq=probe seq.
  kScoutSent,          ///< a=candidate path idx, seq=scout round.
  kProbeRetransmit,    ///< a=consecutive losses, seq=timed-out probe seq.
  kProbeEchoed,        ///< Destination turned the probe around; a=admitted phi_r.
  kWindowUpdate,       ///< a=old window, b=new window (bytes); detail=WindowBound.
  kPathMigration,      ///< a=old path idx, b=new path idx.
  kFinishSent,         ///< Deregistration probe sent; seq=reg_key low bits.
  kStateLossDetected,  ///< Φ_l discontinuity seen on the current path.
  kStaleTelemetry,     ///< INT stamps older than the staleness bound.
  kGuaranteeDegraded,  ///< Window fell back to the guarantee-only BDP.
  kDataRetransmit,     ///< Transport-level data retransmission; seq=packet id.
  // --- core (uFAB-C) ---
  kProbeIntStamp,   ///< INT record appended; a=Φ_l, b=q_l bytes; link set.
  kRegisterWrite,   ///< Registers folded a probe; a=Φ_l, b=W_l after the write.
  kRegisterClear,   ///< Pair deregistered (finish probe or sweep); a=Φ_l after.
  kBloomInsert,     ///< seq=registration key.
  kBloomRemove,     ///< seq=registration key.
  kBloomClear,      ///< Whole-filter wipe (warm restart).
  kSwitchReset,     ///< uFAB-C register state wiped.
  // --- wire / faults ---
  kDrop,           ///< detail=DropReason; a=packet size bytes; link set.
  kEcnMark,        ///< CE set on enqueue; a=queue bytes at mark; link set.
  kLinkDown,       ///< Administrative down (fault plane).
  kLinkUp,         ///< Administrative up.
  kFaultLossDrop,  ///< Bernoulli wire-loss rule fired; a=packet size.
  kIntTamper,      ///< detail: 0=stale 1=corrupt 2=strip.
  kBloomJunk,      ///< Junk key inserted (saturation fault).
  // --- harness ---
  kCheckFailure,  ///< UFAB_CHECK fired; the recorder dumped itself.
};

[[nodiscard]] const char* to_string(EventKind kind);

/// Which term of Eqns 1–3 (or which safety fallback) produced a window.
enum class WindowBound : std::uint8_t {
  kBootstrapRamp,   ///< Two-stage stage 1: additive-increase ramp (Eqn 1 share).
  kEqn3,            ///< Utilization window (Eqns 2–3 min over links).
  kGuaranteeOnly,   ///< Degraded: guarantee BDP only (stale/lost telemetry).
  kFloor,           ///< Clamped up to the configured window floor.
};

[[nodiscard]] const char* to_string(WindowBound bound);

enum class DropReason : std::uint8_t { kTailDrop, kLinkDown, kWireFault, kNoRoute };

[[nodiscard]] const char* to_string(DropReason reason);

/// Where an event happened; becomes one Chrome-trace track.
enum class TrackKind : std::uint8_t { kHost, kSwitch, kTenant, kLink, kFabric };

struct Track {
  TrackKind kind = TrackKind::kFabric;
  std::int32_t id = -1;   ///< HostId / switch NodeId / TenantId / LinkId value.
  std::int32_t sub = -1;  ///< Switch egress port (switch tracks only).

  [[nodiscard]] static Track host(HostId h) { return {TrackKind::kHost, h.value(), -1}; }
  [[nodiscard]] static Track switch_port(NodeId sw, std::int32_t port) {
    return {TrackKind::kSwitch, sw.value(), port};
  }
  [[nodiscard]] static Track tenant(TenantId t) { return {TrackKind::kTenant, t.value(), -1}; }
  [[nodiscard]] static Track link(LinkId l) { return {TrackKind::kLink, l.value(), -1}; }
};

/// One recorded event.  Fixed-size and trivially copyable: recording is a
/// store into a pre-sized ring, never an allocation.
struct TraceEvent {
  TimeNs at;
  EventKind kind = EventKind::kCheckFailure;
  std::uint8_t detail = 0;  ///< Kind-specific sub-code (WindowBound, DropReason…).
  Track track;
  VmPairId pair{};    ///< Invalid when not pair-scoped.
  TenantId tenant{};  ///< Invalid when unknown.
  LinkId link{};      ///< Invalid when not link-scoped.
  std::uint64_t seq = 0;  ///< Probe sequence / packet id / registration key.
  double a = 0.0;         ///< Kind-specific (see EventKind comments).
  double b = 0.0;
};

/// Maps a Track to a human-readable name in exports (the harness supplies
/// real host/switch/tenant names; the default renders generic ones).
using TrackNamer = std::function<std::string(const Track&)>;

/// Recording routes to a per-shard ring (ufab::current_shard_index()), so a
/// sharded engine's worker threads never share a write cursor; exports merge
/// the rings by timestamp with (shard, ring) order breaking ties, which is
/// deterministic and — when only shard 0 ever records — identical to the old
/// single-ring behavior.
class FlightRecorder {
 public:
  explicit FlightRecorder(std::size_t capacity = 1 << 16);

  void record(const TraceEvent& ev);

  /// Per-shard ring capacity.
  [[nodiscard]] std::size_t capacity() const { return cap_; }
  [[nodiscard]] std::size_t size() const;
  /// Total events ever recorded, including overwritten ones.
  [[nodiscard]] std::uint64_t recorded_total() const;

  /// Events currently held, oldest first (merged across shard rings).
  [[nodiscard]] std::vector<TraceEvent> events() const;
  /// Causal slice: every retained event touching `pair`, oldest first.
  [[nodiscard]] std::vector<TraceEvent> events_for_pair(VmPairId pair) const;

  void clear();

  void write_json(std::ostream& os) const;
  /// Chrome trace-event JSON (schema 2: top-level "ufab_schema" key).  When
  /// `profiler` is non-null its queue-occupancy counter tracks (pid 6) are
  /// appended after the fabric events — scripts/render_trace.py validates
  /// them and rejects profiler counters in a schema-1 trace.
  void write_chrome_trace(std::ostream& os, const TrackNamer& namer = {},
                          const class Profiler* profiler = nullptr, int shard_count = 0) const;

 private:
  /// Mirrors the engine's shard cap; each slot is written by one shard only.
  static constexpr std::size_t kMaxRings = 64;
  struct Ring {
    std::vector<TraceEvent> buf;
    std::uint64_t total = 0;  ///< Next write slot = total % buf.size().
  };
  [[nodiscard]] Ring& ring_for(int shard);

  std::size_t cap_;
  std::array<std::unique_ptr<Ring>, kMaxRings> rings_;
};

}  // namespace ufab::obs

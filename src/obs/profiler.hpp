// Engine self-profiling plane: wall-clock attribution for the simulator.
//
// The observability plane of PR 2 answers "what did the *fabric* do"; this
// plane answers "where did the *engine's wall time* go".  It attributes every
// nanosecond of a run to a small closed set of typed scopes (ProfCat): event
// dispatch split by category, calendar-queue pop/migrate work, epoch-barrier
// stalls, cross-shard mailbox traffic, and — at the detailed level — the WFQ
// and telemetry hot paths inside events.  The numbers it produces
// (stall_fraction, shard_imbalance, per-scope ns) are what the sharding
// optimization work measures itself against (ROADMAP "make sharding actually
// pay").
//
// Design rules, in order of importance:
//
//  1. Passive.  Profiling reads wall clocks and writes per-shard slices; it
//     never schedules events, consumes randomness, or touches simulation
//     state.  An enabled run produces byte-identical simulation output to a
//     disabled run (tests/obs/profiler_test.cpp proves it, mirroring the
//     PR 2 obs guarantee).
//  2. Branch-gated, always compiled.  There is no build flag; a disabled
//     simulator pays one `prof_ != nullptr` test per run loop *entry* (the
//     unprofiled hot loops are untouched), and a disabled ProfScope is a
//     null-pointer compare.
//  3. Zero atomics on the hot path.  Each shard accumulates into its own
//     cache-line-aligned ProfSlice; the coordinator reads them only while
//     workers are parked at the epoch barrier (the same ownership discipline
//     as the shard calendars).  Detailed scopes reach their slice through a
//     plain thread_local pointer.
//
// Timing uses the TSC on x86-64 (rdtsc; cheap bare-metal, tens of ns on
// some VMs) and falls back to steady_clock elsewhere.  Because mean event
// cost is ~100 ns, even one clock-read pair per event can cost tens of
// percent — so level 1 times only every `timing_stride`-th event (default
// 32) while *counting* every event exactly, and export scales the sampled
// ticks by count/sampled per category (a self-normalizing ratio estimator).
// Slices store raw ticks; conversion to nanoseconds happens once at export
// using a process-wide calibration performed on first use.
//
// Levels (UFAB_PROF):
//   0  disabled (default) — engine hot paths identical to pre-profiler code.
//   1  loop-level attribution: dispatch/queue/barrier/inject scopes (strided
//      timing, exact counts), queue occupancy sampling, epoch accounting.
//      Budgeted at <= 5% on BM_Fig17Slice (CI-guarded via
//      scripts/run_perf.sh).
//   2  adds per-call scopes inside events (WFQ next, telemetry ingest,
//      mailbox post) via UFAB_PROF_SCOPE; costs two clock reads per call and
//      is exempt from the overhead guard.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#if defined(__x86_64__) || defined(_M_X64)
#include <x86intrin.h>
#define UFAB_PROF_HAS_RDTSC 1
#else
#include <chrono>
#define UFAB_PROF_HAS_RDTSC 0
#endif

namespace ufab::obs {

/// The closed scope taxonomy.  Top-level categories (dispatch*, queue_pop,
/// mailbox_inject, barrier_wait) are disjoint — their sum is a shard's
/// accounted wall time.  Detailed categories (wfq, telemetry, mailbox_post)
/// nest *inside* dispatch and must not be added to the top-level sum.
enum class ProfCat : std::uint8_t {
  kDispatchDeliver = 0,  ///< Packet-delivery events (link propagation, crossings).
  kDispatchClosure,      ///< All other event closures (timers, host logic, ...).
  kQueuePop,             ///< Calendar peek + overflow migration + pop.
  kMailboxInject,        ///< Coordinator draining outboxes into calendars.
  kBarrierWait,          ///< Epoch-barrier stall (the only non-busy category).
  kWfq,                  ///< [level 2] WfqScheduler::next inside dispatch.
  kTelemetry,            ///< [level 2] telemetry agent ingest inside dispatch.
  kMailboxPost,          ///< [level 2] post_cross inside dispatch.
  kCount,
};

inline constexpr int kProfCatCount = static_cast<int>(ProfCat::kCount);

/// Stable snake_case name for JSON/metric labels.
[[nodiscard]] const char* to_string(ProfCat cat);

/// The profiling clock: raw ticks, converted to ns only at export.
struct ProfClock {
  [[nodiscard]] static std::int64_t now() {
#if UFAB_PROF_HAS_RDTSC
    return static_cast<std::int64_t>(__rdtsc());
#else
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
#endif
  }
  /// Nanoseconds per tick; calibrated once per process on first call (a few
  /// hundred microseconds of busy-wait), cached thereafter.  Export-path
  /// only — never called from the hot loops.
  [[nodiscard]] static double ns_per_tick();
  /// Median ticks a back-to-back now()/now() pair reports — the clock's own
  /// read latency, which every measured interval includes once.  The export
  /// subtracts it per sampled interval so slow TSC reads (VMs) do not
  /// inflate the attribution.  Measured once per process with ns_per_tick().
  [[nodiscard]] static std::int64_t self_ticks();
};

/// One shard's accumulation buffer: ticks, exact call counts, and the number
/// of timed (sampled) calls per category.  `count == sampled` for scopes that
/// time every call (ProfScope, barrier waits); the strided level-1 loop keeps
/// counts exact but only accumulates ticks on sampled events — the export
/// corrects by count/sampled.  Cache-line aligned so adjacent shards' slices
/// never false-share.
struct alignas(64) ProfSlice {
  std::array<std::int64_t, kProfCatCount> ticks{};
  std::array<std::uint64_t, kProfCatCount> count{};
  std::array<std::uint64_t, kProfCatCount> sampled{};
  std::uint64_t strided = 0;  ///< Level-1 loop's stride counter (owner-only).

  /// Fully-timed call: ticks, count, and sampled move together.
  void add(ProfCat cat, std::int64_t dt) {
    ticks[static_cast<std::size_t>(cat)] += dt;
    ++count[static_cast<std::size_t>(cat)];
    ++sampled[static_cast<std::size_t>(cat)];
  }
  /// Untimed call: exact count only.
  void bump(ProfCat cat) { ++count[static_cast<std::size_t>(cat)]; }
  /// Timed portion of a strided category (count bumped separately).
  void add_sampled(ProfCat cat, std::int64_t dt) {
    ticks[static_cast<std::size_t>(cat)] += dt;
    ++sampled[static_cast<std::size_t>(cat)];
  }
  void merge(const ProfSlice& o) {
    for (int c = 0; c < kProfCatCount; ++c) {
      ticks[static_cast<std::size_t>(c)] += o.ticks[static_cast<std::size_t>(c)];
      count[static_cast<std::size_t>(c)] += o.count[static_cast<std::size_t>(c)];
      sampled[static_cast<std::size_t>(c)] += o.sampled[static_cast<std::size_t>(c)];
    }
  }
};

/// The thread's detailed-scope target.  Null (the default) makes every
/// UFAB_PROF_SCOPE a two-instruction no-op; the engine points it at the
/// running shard's slice only at level 2, for the duration of a pass.
inline thread_local ProfSlice* tls_prof_slice = nullptr;

/// RAII scope token: accumulates elapsed ticks into `slice` under `cat`.
/// A null slice disables the token entirely (no clock reads).
class [[nodiscard]] ProfScope {
 public:
  ProfScope(ProfSlice* slice, ProfCat cat) : slice_(slice), cat_(cat) {
    if (slice_ != nullptr) t0_ = ProfClock::now();
  }
  ~ProfScope() {
    if (slice_ != nullptr) slice_->add(cat_, ProfClock::now() - t0_);
  }
  ProfScope(const ProfScope&) = delete;
  ProfScope& operator=(const ProfScope&) = delete;

 private:
  ProfSlice* slice_;
  ProfCat cat_;
  std::int64_t t0_ = 0;
};

// Detailed (level 2) scope: times the rest of the enclosing block against the
// current thread's slice.  Safe to leave in hot code permanently — with
// profiling off (or at level 1) tls_prof_slice is null and the token is a
// load+branch.
#define UFAB_PROF_SCOPE_CAT_(name, line) name##line
#define UFAB_PROF_SCOPE_CAT(name, line) UFAB_PROF_SCOPE_CAT_(name, line)
#define UFAB_PROF_SCOPE(cat)                                              \
  const ::ufab::obs::ProfScope UFAB_PROF_SCOPE_CAT(ufab_prof_scope_,      \
                                                   __LINE__)(             \
      ::ufab::obs::tls_prof_slice, cat)

/// One calendar-queue introspection sample, taken on a sim-time cadence.
/// Everything here is simulation state, so the sample series is fully
/// deterministic — only the slice timings vary run to run.
struct ProfSample {
  std::int64_t sim_ns = 0;
  std::uint64_t ring_events = 0;      ///< Near-horizon tier occupancy.
  std::uint64_t overflow_events = 0;  ///< Far-horizon tier occupancy.
  std::uint64_t processed = 0;        ///< Shard events processed so far.
  std::uint64_t crossings_out = 0;    ///< Outbox posted_total so far.
};

struct ProfOptions {
  int level = 1;                      ///< 1 = loop scopes, 2 = + detailed scopes.
  std::int64_t sample_period_ns = 100'000;  ///< Queue sampling cadence (sim time).
  std::size_t max_samples_per_shard = 4096;  ///< Ring; oldest overwritten.
  /// Time every Nth loop event (rounded up to a power of two).  1 = time
  /// everything (exact, but up to tens of percent overhead on VMs with slow
  /// TSC reads); the default keeps the realized overhead inside the <= 5%
  /// CI guard while counts stay exact.
  std::uint64_t timing_stride = 32;
};

/// Derived summary statistics over all shard slices.
struct ProfDerived {
  std::vector<double> busy_ns_per_shard;   ///< Disjoint top-level busy ns.
  std::vector<double> stall_ns_per_shard;  ///< Barrier-wait ns.
  double busy_ns_total = 0;
  double stall_ns_total = 0;
  /// stall / (busy + stall) across shards; 0 for serial runs.
  double stall_fraction = 0;
  /// max(busy) / mean(busy) across shards; 1.0 when perfectly balanced.
  double shard_imbalance = 1.0;
};

/// Run context the engine passes in at export time (the profiler itself
/// holds no simulator pointers — it is a passive sink).
struct ProfContext {
  int shard_count = 1;
  bool threaded = false;
  std::int64_t lookahead_ns = -1;  ///< -1 = unbounded (no cut links).
  bool adaptive_epochs = false;    ///< Multi-window epochs + solo skipping on.
  int epoch_windows = 1;           ///< Lookahead windows per barrier (knob).
  std::uint64_t handoff_max_batch = 0;  ///< Largest single mailbox drain.
  std::uint64_t mailbox_flushes = 0;    ///< Batch publications, all mailboxes.
  std::vector<std::uint64_t> events_per_shard;
  std::vector<std::uint64_t> crossings_per_shard;
};

/// Per-simulator profiling state: one slice + sample ring per shard, plus
/// epoch accounting.  Owned by sim::Simulator; all mutation happens under
/// the engine's existing shard-ownership discipline (a shard's slice is
/// touched only by the thread running that shard's pass; epoch/inject
/// accounting only by the coordinator while workers are parked).
class Profiler {
 public:
  static constexpr int kMaxShards = 64;  ///< Mirrors sim::Simulator::kMaxShards.
  /// Number of log2 occupancy buckets: bucket i counts samples with
  /// bit_width(occupancy) == i, i.e. bucket 0 is "empty", bucket i covers
  /// [2^(i-1), 2^i).
  static constexpr int kOccBuckets = 33;

  explicit Profiler(const ProfOptions& opts);

  [[nodiscard]] int level() const { return opts_.level; }
  [[nodiscard]] bool detailed() const { return opts_.level >= 2; }

  /// Mask for the level-1 timing stride: an event is timed when
  /// `(slice.strided++ & timing_mask()) == 0`.
  [[nodiscard]] std::uint64_t timing_mask() const { return timing_mask_; }

  /// Parses UFAB_PROF from the environment: unset/"0" -> 0, "1" -> 1,
  /// anything >= 2 -> 2.
  [[nodiscard]] static int env_level();

  [[nodiscard]] ProfSlice& slice(int shard) {
    return slices_[static_cast<std::size_t>(shard)];
  }
  [[nodiscard]] const ProfSlice& slice(int shard) const {
    return slices_[static_cast<std::size_t>(shard)];
  }

  /// The sim-time threshold for `shard`'s next queue sample; the engine loop
  /// compares against it inline and calls add_sample when crossed.
  [[nodiscard]] std::int64_t next_sample_ns(int shard) const {
    return next_sample_ns_[static_cast<std::size_t>(shard)];
  }
  void add_sample(int shard, const ProfSample& sample);

  /// Number of log2 epoch-length buckets: bucket i counts epochs with
  /// bit_width(sim_ns) == i (bucket 0 would be a zero-length epoch; bucket i
  /// covers [2^(i-1), 2^i) ns).  48 buckets reach ~1.6 simulated days.
  static constexpr int kEpochLenBuckets = 48;

  /// Epoch accounting (coordinator only, between passes).  One note_epoch
  /// per coordinator barrier, carrying the sim-time span the barrier paid
  /// for — multi-window epochs report the whole span, which is exactly what
  /// the epoch-length histogram is for.
  void note_epoch(std::int64_t epoch_sim_ns);
  /// Lookahead windows resolved inside multi-window epochs (clock-spin
  /// boundaries, no barrier).
  void note_windows(int windows) { windows_ += static_cast<std::uint64_t>(windows); }
  /// A solo round ran with no barrier and no clock publication at all.
  void note_barrier_skip() { ++barrier_skips_; }
  void note_injected(std::uint64_t crossings);
  void add_run_wall(std::int64_t ticks) { run_wall_ticks_ += ticks; }

  [[nodiscard]] std::uint64_t epochs() const { return epochs_; }
  [[nodiscard]] std::uint64_t windows() const { return windows_; }
  [[nodiscard]] std::uint64_t barrier_skips() const { return barrier_skips_; }
  [[nodiscard]] const std::array<std::uint64_t, kEpochLenBuckets>& epoch_len_hist() const {
    return epoch_len_hist_;
  }
  [[nodiscard]] std::uint64_t crossings_injected() const { return crossings_injected_; }
  [[nodiscard]] double run_wall_ns() const;

  /// Samples recorded for `shard`, oldest first (ring-decoded).
  [[nodiscard]] std::vector<ProfSample> samples(int shard) const;
  [[nodiscard]] std::uint64_t samples_taken(int shard) const {
    return samples_taken_[static_cast<std::size_t>(shard)];
  }
  [[nodiscard]] const std::array<std::uint64_t, kOccBuckets>& ring_occ_hist(int shard) const {
    return ring_occ_hist_[static_cast<std::size_t>(shard)];
  }
  [[nodiscard]] const std::array<std::uint64_t, kOccBuckets>& overflow_occ_hist(
      int shard) const {
    return overflow_occ_hist_[static_cast<std::size_t>(shard)];
  }

  /// Stride-corrected wall nanoseconds attributed to one shard x scope cell:
  /// raw sampled ticks scaled by count/sampled (1.0 for fully-timed scopes).
  [[nodiscard]] double scope_ns(int shard, ProfCat cat) const;

  [[nodiscard]] ProfDerived derived(int shard_count) const;

  /// The per-run profile artifact: run context + shard x scope time matrix +
  /// epoch stats + occupancy histograms + derived summary.
  [[nodiscard]] std::string to_json(const ProfContext& ctx) const;

  /// Appends Chrome-trace counter tracks (phase "C", pid kTracePid) for the
  /// queue-occupancy sample series, plus the pid/tid metadata records.
  /// `first` follows the FlightRecorder emit convention: true when no event
  /// has been written yet (suppresses the leading comma).
  void write_chrome_counter_events(std::ostream& os, bool& first, int shard_count) const;

  /// The trace pid profiler counter tracks live under (FlightRecorder's
  /// fabric pids are 1..5).
  static constexpr int kTracePid = 6;

 private:
  ProfOptions opts_;
  std::uint64_t timing_mask_ = 0;
  std::array<ProfSlice, kMaxShards> slices_{};
  std::array<std::int64_t, kMaxShards> next_sample_ns_{};
  std::array<std::uint64_t, kMaxShards> samples_taken_{};
  std::array<std::vector<ProfSample>, kMaxShards> sample_rings_;
  std::array<std::array<std::uint64_t, kOccBuckets>, kMaxShards> ring_occ_hist_{};
  std::array<std::array<std::uint64_t, kOccBuckets>, kMaxShards> overflow_occ_hist_{};
  std::uint64_t epochs_ = 0;
  std::int64_t epoch_sim_ns_total_ = 0;
  std::int64_t epoch_sim_ns_min_ = 0;
  std::int64_t epoch_sim_ns_max_ = 0;
  std::uint64_t windows_ = 0;
  std::uint64_t barrier_skips_ = 0;
  std::array<std::uint64_t, kEpochLenBuckets> epoch_len_hist_{};
  std::uint64_t crossings_injected_ = 0;
  std::int64_t run_wall_ticks_ = 0;
};

}  // namespace ufab::obs

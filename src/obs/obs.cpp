#include "src/obs/obs.hpp"

#include <fstream>

#include "src/core/assert.hpp"
#include "src/core/log.hpp"

namespace ufab::obs {

namespace {

/// The Obs instance whose flight recorder dumps on a failed check.  At most
/// one per thread: the newest enabled instance with dump_on_check_failure
/// wins (experiments run one fabric at a time per thread; nested fabrics in
/// tests simply hand the hook back on destruction).  Thread-local alongside
/// the check-failure hook so concurrent bench variants dump their own
/// recorder, not a racing neighbor's.
thread_local Obs* g_crash_dump_obs = nullptr;

void crash_dump_hook(const char* expr, const char* file, int line, const char* msg) {
  (void)file;
  (void)line;
  (void)msg;
  if (g_crash_dump_obs == nullptr) return;
  Obs* obs = g_crash_dump_obs;
  TraceEvent ev;
  ev.kind = EventKind::kCheckFailure;
  // The simulator clock is unreachable from here; the ring is ordered, so a
  // trailing zero-stamp marker is still unambiguous.
  obs->recorder().record(ev);
  const std::string& path = obs->options().crash_dump_path;
  std::ofstream out(path, std::ios::trunc);
  if (out) {
    obs->recorder().write_json(out);
    std::fprintf(stderr, "ufab: flight recorder dumped to %s (check: %s)\n", path.c_str(),
                 expr);
  }
}

}  // namespace

Obs::Obs(ObsOptions opts)
    : opts_(std::move(opts)),
      recorder_(opts_.ring_capacity) {
  if (opts_.enabled && opts_.dump_on_check_failure) {
    g_crash_dump_obs = this;
    set_check_failure_hook(&crash_dump_hook);
  }
}

Obs::~Obs() {
  if (g_crash_dump_obs == this) {
    g_crash_dump_obs = nullptr;
    set_check_failure_hook(nullptr);
  }
}

void Obs::write_chrome_trace_file(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    UFAB_LOG_WARN("cannot open %s for trace export", path.c_str());
    return;
  }
  recorder_.write_chrome_trace(out, namer_, profiler_, profiler_shards_);
}

void Obs::write_events_json_file(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    UFAB_LOG_WARN("cannot open %s for event export", path.c_str());
    return;
  }
  recorder_.write_json(out);
}

}  // namespace ufab::obs

// Observability context: one MetricRegistry + one FlightRecorder per fabric.
//
// Instrumented objects hold a raw `Obs*` (null = disabled) and record through
// the UFAB_OBS_EVENT macro, so the disabled cost is a single pointer compare
// on cold paths and literally nothing when UFAB_OBS_DISABLED is defined at
// compile time.  Observability is strictly passive: it never schedules
// simulator events, never consumes experiment randomness, and never mutates
// instrumented state — an enabled run is packet-for-packet identical to a
// disabled one (tests/obs asserts this).
#pragma once

#include <memory>
#include <string>

#include "src/obs/flight_recorder.hpp"
#include "src/obs/metrics.hpp"

namespace ufab::obs {

struct ObsOptions {
  /// Master toggle: disabled means attach calls are no-ops and no state is
  /// recorded anywhere.
  bool enabled = true;
  /// Flight-recorder ring capacity (events retained).
  std::size_t ring_capacity = 1 << 16;
  /// Record wire-level events (drops, ECN marks, data retransmits). These
  /// are the only events that can fire per data packet; switch them off to
  /// keep the ring for control-plane history on pathological workloads.
  bool record_datapath = true;
  /// On a UFAB_CHECK failure, dump the flight recorder to `crash_dump_path`
  /// before aborting, so the violation's history is not lost with the run.
  bool dump_on_check_failure = true;
  std::string crash_dump_path = "ufab_flight_recorder.crash.json";
};

class Obs {
 public:
  explicit Obs(ObsOptions opts = {});
  ~Obs();
  Obs(const Obs&) = delete;
  Obs& operator=(const Obs&) = delete;

  [[nodiscard]] bool enabled() const { return opts_.enabled; }
  [[nodiscard]] const ObsOptions& options() const { return opts_; }
  [[nodiscard]] MetricRegistry& metrics() { return metrics_; }
  [[nodiscard]] FlightRecorder& recorder() { return recorder_; }

  void record(const TraceEvent& ev) {
    if (opts_.enabled) recorder_.record(ev);
  }
  [[nodiscard]] bool record_datapath() const {
    return opts_.enabled && opts_.record_datapath;
  }

  /// The namer used for exported track labels (set by the harness, which
  /// knows real host/switch/tenant names).
  void set_track_namer(TrackNamer namer) { namer_ = std::move(namer); }
  [[nodiscard]] const TrackNamer& track_namer() const { return namer_; }

  /// Attaches the engine profiler so trace exports append its counter tracks
  /// (queue occupancy per shard, pid 6).  Null detaches; the harness keeps
  /// this in sync with Simulator::profiler() before each export.
  void set_profiler(const class Profiler* profiler, int shard_count) {
    profiler_ = profiler;
    profiler_shards_ = shard_count;
  }

  /// Writes the Chrome trace / raw event JSON to `path` (truncating).
  void write_chrome_trace_file(const std::string& path) const;
  void write_events_json_file(const std::string& path) const;

 private:
  ObsOptions opts_;
  MetricRegistry metrics_;
  FlightRecorder recorder_;
  TrackNamer namer_;
  const class Profiler* profiler_ = nullptr;  ///< Counter-track source, optional.
  int profiler_shards_ = 0;
};

}  // namespace ufab::obs

/// Records a TraceEvent through an `obs::Obs*` that may be null (disabled).
/// Compiles away entirely under -DUFAB_OBS_DISABLED.
#if defined(UFAB_OBS_DISABLED)
#define UFAB_OBS_EVENT(obsptr, ...) \
  do {                              \
  } while (false)
#else
#define UFAB_OBS_EVENT(obsptr, ...)                      \
  do {                                                   \
    if ((obsptr) != nullptr) (obsptr)->record(__VA_ARGS__); \
  } while (false)
#endif

// Counting Bloom filter used by uFAB-C to recognise active VM-pairs.
//
// The paper's switch uses a 2-way-hashed 20 KB Bloom filter supporting ~20K
// distinct VM-pairs at <5% false positives (§4.2).  We implement a counting
// variant (4-bit saturating counters) so that explicit finish probes can
// remove entries, which the plain bit-vector form cannot.
#pragma once

#include <cstdint>
#include <vector>

namespace ufab::telemetry {

struct BloomConfig {
  /// Number of cells. The paper's 20 KB filter uses 1-bit cells => 163,840
  /// cells across 2 banks, which yields <5% false positives at 20K pairs.
  /// We keep the same cell count for false-positive fidelity; the counting
  /// variant costs 4 bits/cell (80 KB SRAM), accounted in the resource model.
  std::size_t counters = 163'840;
  /// Hash functions (the paper's switch uses 2 memory banks in parallel).
  int hashes = 2;
};

class CountingBloomFilter {
 public:
  explicit CountingBloomFilter(BloomConfig cfg = {});

  void insert(std::uint64_t key);

  /// Decrements counters for `key`; safe to call only for inserted keys
  /// (callers track membership out-of-band, as uFAB-E does on the edge).
  void remove(std::uint64_t key);

  /// True if `key` might be present (false positives possible, no false
  /// negatives while inserted).
  [[nodiscard]] bool maybe_contains(std::uint64_t key) const;

  [[nodiscard]] std::size_t inserted_count() const { return inserted_; }
  [[nodiscard]] std::size_t counter_count() const { return counters_.size(); }

  /// Analytic false-positive probability at the current fill level.
  [[nodiscard]] double false_positive_rate() const;

  void clear();

 private:
  [[nodiscard]] std::size_t slot(std::uint64_t key, int i) const;

  BloomConfig cfg_;
  std::vector<std::uint8_t> counters_;
  std::size_t inserted_ = 0;
};

}  // namespace ufab::telemetry

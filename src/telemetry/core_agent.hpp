// uFAB-C: the informative core agent attached to one switch egress (§3.6, §4.2).
//
// For every probe that leaves through its egress, the agent
//   (1) reads the VM-pair's claimed (phi, w) and folds them into the link
//       registers Phi_l / W_l — gated by a Bloom-filter membership test, so a
//       Bloom false positive omits the pair exactly as the paper describes;
//   (2) appends an IntRecord carrying (Phi_l, W_l, cumulative TX bytes,
//       timestamp, queue depth, capacity) for the edge to act on.
//
// Finish probes deregister a pair; per-switch acknowledgments are counted in
// the probe so the edge can retry until every hop confirmed.  Pairs that quit
// silently are aged out by a periodic sweep (10 s in the paper's deployment).
//
// Hardware-fidelity note: a Tofino keeps only the two registers plus a timing
// Bloom filter; the per-entry map here is the simulation stand-in that lets
// the sweep subtract exactly the aged pair's contribution.  Visibility is
// still gated by the Bloom filter so its false-positive behaviour is modeled.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "src/core/time.hpp"
#include "src/obs/flight_recorder.hpp"
#include "src/sim/link.hpp"
#include "src/sim/simulator.hpp"
#include "src/sim/switch.hpp"
#include "src/telemetry/bloom.hpp"

namespace ufab::telemetry {

struct CoreConfig {
  BloomConfig bloom;
  /// Sweep period for silently inactive pairs (paper: 10 s).
  TimeNs clean_period = TimeNs{10'000'000'000};
  /// Disable to give the switch exact membership (ablation studies).
  bool use_bloom = true;
  /// Quantize INT records to the 64-bit Appendix-G wire format before they
  /// leave the switch (the edge then works from quantized telemetry).
  bool quantize_int = false;
};

class CoreAgent final : public sim::EgressProcessor {
 public:
  CoreAgent(sim::Simulator& sim, CoreConfig cfg);

  void on_probe_egress(sim::Packet& pkt, sim::Link& link, TimeNs now) override;

  /// Warm restart (fault injection): the switch reboots and loses all
  /// register and Bloom state.  Registers rebuild from the re-registration
  /// probes active pairs keep sending — no control-plane resync exists, just
  /// as on a real Tofino power cycle.
  void reset_state();

  /// INT tamper hook (fault injection): invoked on every record about to be
  /// appended; the hook may mutate it (staleness, corruption) or return
  /// false to suppress it entirely (INT stripping).
  using IntTamper = std::function<bool(sim::IntRecord&, TimeNs now)>;
  void set_int_tamper(IntTamper tamper) { tamper_ = std::move(tamper); }

  /// Inserts a junk key into the Bloom filter (fault injection: saturation
  /// raises the false-positive rate the §3.6 analysis tolerates).
  void inject_bloom_junk(std::uint64_t key) { bloom_.insert(key); }

  [[nodiscard]] double phi_total() const { return phi_total_; }
  [[nodiscard]] double window_total() const { return window_total_; }
  [[nodiscard]] std::size_t active_pairs() const { return registered_.size(); }
  [[nodiscard]] std::int64_t false_positive_omissions() const { return fp_omissions_; }
  [[nodiscard]] std::int64_t resets() const { return resets_; }
  [[nodiscard]] std::int64_t suppressed_records() const { return suppressed_records_; }
  [[nodiscard]] const CountingBloomFilter& bloom() const { return bloom_; }

  /// Attaches the observability context. `track` identifies this egress in
  /// exports (the harness passes the owning switch + port).
  void set_obs(obs::Obs* obs, obs::Track track) {
    obs_ = obs;
    track_ = track;
  }

 private:
  struct PairEntry {
    double phi = 0.0;
    double window = 0.0;
    TimeNs last_seen;
  };

  /// speed_class() memoized on the raw capacity: each agent serves one
  /// fixed-speed egress, so after the first record this is a single compare.
  [[nodiscard]] int speed_class_cached(Bandwidth capacity);

  void handle_probe(sim::Packet& pkt, TimeNs now);
  void handle_finish(sim::Packet& pkt, TimeNs now);
  void sweep(TimeNs now);
  void clamp_registers();
  void record_event(obs::EventKind kind, TimeNs now, VmPairId pair, TenantId tenant,
                    std::uint64_t seq, double a, double b);

  sim::Simulator& sim_;
  CoreConfig cfg_;
  CountingBloomFilter bloom_;
  IntTamper tamper_;
  std::unordered_map<std::uint64_t, PairEntry> registered_;
  double phi_total_ = 0.0;
  double window_total_ = 0.0;
  std::int64_t fp_omissions_ = 0;
  std::int64_t resets_ = 0;
  std::int64_t suppressed_records_ = 0;
  double cached_cap_bps_ = -1.0;  ///< speed_class_cached key (-1 = empty).
  int cached_cls_ = 0;
  obs::Obs* obs_ = nullptr;
  obs::Track track_;
};

/// Attaches a CoreAgent to every egress port of `sw`; returns the agents.
/// The switch does not own them — callers keep the vector alive.
std::vector<std::unique_ptr<CoreAgent>> instrument_switch(sim::Simulator& sim, sim::Switch& sw,
                                                          const CoreConfig& cfg);

}  // namespace ufab::telemetry

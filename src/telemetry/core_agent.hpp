// uFAB-C: the informative core agent attached to one switch egress (§3.6, §4.2).
//
// For every probe that leaves through its egress, the agent
//   (1) reads the VM-pair's claimed (phi, w) and folds them into the link
//       registers Phi_l / W_l — gated by a Bloom-filter membership test, so a
//       Bloom false positive omits the pair exactly as the paper describes;
//   (2) appends an IntRecord carrying (Phi_l, W_l, cumulative TX bytes,
//       timestamp, queue depth, capacity) for the edge to act on.
//
// Finish probes deregister a pair; per-switch acknowledgments are counted in
// the probe so the edge can retry until every hop confirmed.  Pairs that quit
// silently are aged out by a periodic sweep (10 s in the paper's deployment).
//
// Hardware-fidelity note: a Tofino keeps only the two registers plus a timing
// Bloom filter; the per-entry map here is the simulation stand-in that lets
// the sweep subtract exactly the aged pair's contribution.  Visibility is
// still gated by the Bloom filter so its false-positive behaviour is modeled.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "src/core/time.hpp"
#include "src/sim/link.hpp"
#include "src/sim/simulator.hpp"
#include "src/sim/switch.hpp"
#include "src/telemetry/bloom.hpp"

namespace ufab::telemetry {

struct CoreConfig {
  BloomConfig bloom;
  /// Sweep period for silently inactive pairs (paper: 10 s).
  TimeNs clean_period = TimeNs{10'000'000'000};
  /// Disable to give the switch exact membership (ablation studies).
  bool use_bloom = true;
  /// Quantize INT records to the 64-bit Appendix-G wire format before they
  /// leave the switch (the edge then works from quantized telemetry).
  bool quantize_int = false;
};

class CoreAgent final : public sim::EgressProcessor {
 public:
  CoreAgent(sim::Simulator& sim, CoreConfig cfg);

  void on_probe_egress(sim::Packet& pkt, sim::Link& link, TimeNs now) override;

  [[nodiscard]] double phi_total() const { return phi_total_; }
  [[nodiscard]] double window_total() const { return window_total_; }
  [[nodiscard]] std::size_t active_pairs() const { return registered_.size(); }
  [[nodiscard]] std::int64_t false_positive_omissions() const { return fp_omissions_; }
  [[nodiscard]] const CountingBloomFilter& bloom() const { return bloom_; }

 private:
  struct PairEntry {
    double phi = 0.0;
    double window = 0.0;
    TimeNs last_seen;
  };

  void handle_probe(sim::Packet& pkt, TimeNs now);
  void handle_finish(sim::Packet& pkt, TimeNs now);
  void sweep(TimeNs now);
  void clamp_registers();

  sim::Simulator& sim_;
  CoreConfig cfg_;
  CountingBloomFilter bloom_;
  std::unordered_map<std::uint64_t, PairEntry> registered_;
  double phi_total_ = 0.0;
  double window_total_ = 0.0;
  std::int64_t fp_omissions_ = 0;
};

/// Attaches a CoreAgent to every egress port of `sw`; returns the agents.
/// The switch does not own them — callers keep the vector alive.
std::vector<std::unique_ptr<CoreAgent>> instrument_switch(sim::Simulator& sim, sim::Switch& sw,
                                                          const CoreConfig& cfg);

}  // namespace ufab::telemetry

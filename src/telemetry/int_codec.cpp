#include "src/telemetry/int_codec.hpp"

#include <algorithm>
#include <cmath>

namespace ufab::telemetry {

namespace {
constexpr double kSpeedsGbps[16] = {1, 10, 25, 40, 50, 100, 200, 400,
                                    0, 0,  0,  0,  0,  0,   0,   0};

std::uint16_t clamp_u16(double v) {
  return static_cast<std::uint16_t>(std::clamp(v, 0.0, 65535.0));
}
}  // namespace

int IntCodec::speed_class(Bandwidth capacity) {
  const double gbps = capacity.gbit_per_sec();
  int best = 0;
  double best_err = 1e300;
  for (int i = 0; i < 8; ++i) {
    const double err = std::abs(kSpeedsGbps[i] - gbps);
    if (err < best_err) {
      best_err = err;
      best = i;
    }
  }
  return best;
}

Bandwidth IntCodec::class_speed(int cls) {
  return Bandwidth::gbps(kSpeedsGbps[std::clamp(cls, 0, 7)]);
}

EncodedIntRecord IntCodec::encode(const sim::IntRecord& rec) {
  EncodedIntRecord enc{};
  // W_l is carried as a rate (bytes/s on the host side); encode in bps units.
  enc.window = clamp_u16(std::round(rec.window_total * 8.0 / kRateUnitBps));
  enc.phi = clamp_u16(std::round(rec.phi_total / kRateUnitBps));
  const double cap = rec.capacity.bits_per_sec();
  const double frac = cap > 0.0 ? rec.tx_rate_hint.bits_per_sec() / cap : 0.0;
  enc.tx_frac = clamp_u16(std::round(std::clamp(frac, 0.0, 1.0) * 65535.0));
  const auto q_units = static_cast<std::uint16_t>(std::min<std::int64_t>(
      4095, static_cast<std::int64_t>(
                std::ceil(static_cast<double>(rec.queue_bytes) / kQueueUnitBytes))));
  enc.q_and_c = static_cast<std::uint16_t>(
      (q_units << 4) | static_cast<std::uint16_t>(speed_class(rec.capacity) & 0xf));
  return enc;
}

sim::IntRecord IntCodec::decode(const EncodedIntRecord& enc, LinkId link, TimeNs stamp) {
  sim::IntRecord rec{};
  rec.link = link;
  rec.stamp = stamp;
  rec.window_total = static_cast<double>(enc.window) * kRateUnitBps / 8.0;  // bytes/s
  rec.phi_total = static_cast<double>(enc.phi) * kRateUnitBps;
  rec.capacity = class_speed(enc.q_and_c & 0xf);
  rec.tx_rate_hint = Bandwidth::bps(rec.capacity.bits_per_sec() *
                                    static_cast<double>(enc.tx_frac) / 65535.0);
  rec.queue_bytes =
      static_cast<std::int64_t>((enc.q_and_c >> 4) & 0xfff) * static_cast<std::int64_t>(1024);
  // Not representable on the wire: the edge must use tx_rate_hint.
  rec.tx_bytes_cum = 0;
  return rec;
}

void IntCodec::quantize(sim::IntRecord& rec) {
  rec = decode(encode(rec), rec.link, rec.stamp);
}

void IntCodec::quantize_inline(sim::IntRecord& rec, int cls) {
  // Mirrors encode() then decode() field by field; every intermediate is the
  // same u16 code point, so the results are bit-identical to quantize().
  const std::uint16_t window = clamp_u16(std::round(rec.window_total * 8.0 / kRateUnitBps));
  const std::uint16_t phi = clamp_u16(std::round(rec.phi_total / kRateUnitBps));
  const double cap = rec.capacity.bits_per_sec();
  const double frac = cap > 0.0 ? rec.tx_rate_hint.bits_per_sec() / cap : 0.0;
  const std::uint16_t tx_frac = clamp_u16(std::round(std::clamp(frac, 0.0, 1.0) * 65535.0));
  const auto q_units = std::min<std::int64_t>(
      4095, static_cast<std::int64_t>(
                std::ceil(static_cast<double>(rec.queue_bytes) / kQueueUnitBytes)));
  rec.window_total = static_cast<double>(window) * kRateUnitBps / 8.0;  // bytes/s
  rec.phi_total = static_cast<double>(phi) * kRateUnitBps;
  rec.capacity = class_speed(cls & 0xf);
  rec.tx_rate_hint = Bandwidth::bps(rec.capacity.bits_per_sec() *
                                    static_cast<double>(tx_frac) / 65535.0);
  rec.queue_bytes = q_units * static_cast<std::int64_t>(1024);
  // Not representable on the wire: the edge must use tx_rate_hint.
  rec.tx_bytes_cum = 0;
}

}  // namespace ufab::telemetry

#include "src/telemetry/bloom.hpp"

#include <cmath>

#include "src/core/assert.hpp"

namespace ufab::telemetry {

namespace {
constexpr std::uint8_t kCounterMax = 15;  // 4-bit saturating counters

std::uint64_t mix(std::uint64_t x, std::uint64_t salt) {
  x ^= salt;
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}
}  // namespace

CountingBloomFilter::CountingBloomFilter(BloomConfig cfg) : cfg_(cfg) {
  UFAB_CHECK(cfg_.counters > 0 && cfg_.hashes > 0);
  counters_.assign(cfg_.counters, 0);
}

std::size_t CountingBloomFilter::slot(std::uint64_t key, int i) const {
  // Each "hash function" indexes its own bank, mirroring the two parallel
  // memory banks on the switch.
  const std::size_t bank_size = counters_.size() / static_cast<std::size_t>(cfg_.hashes);
  const std::size_t bank_base = static_cast<std::size_t>(i) * bank_size;
  return bank_base + mix(key, 0xabcdef12u + static_cast<std::uint64_t>(i) * 0x9e37ULL) % bank_size;
}

void CountingBloomFilter::insert(std::uint64_t key) {
  for (int i = 0; i < cfg_.hashes; ++i) {
    std::uint8_t& c = counters_[slot(key, i)];
    if (c < kCounterMax) ++c;
  }
  ++inserted_;
}

void CountingBloomFilter::remove(std::uint64_t key) {
  for (int i = 0; i < cfg_.hashes; ++i) {
    std::uint8_t& c = counters_[slot(key, i)];
    if (c > 0 && c < kCounterMax) --c;  // saturated counters are sticky
  }
  if (inserted_ > 0) --inserted_;
}

bool CountingBloomFilter::maybe_contains(std::uint64_t key) const {
  for (int i = 0; i < cfg_.hashes; ++i) {
    if (counters_[slot(key, i)] == 0) return false;
  }
  return true;
}

double CountingBloomFilter::false_positive_rate() const {
  // Standard approximation with per-bank occupancy: p = (1 - e^{-n/m'})^k
  // where m' is the bank size and n the inserted keys.
  const double bank =
      static_cast<double>(counters_.size()) / static_cast<double>(cfg_.hashes);
  const double n = static_cast<double>(inserted_);
  const double p_one = 1.0 - std::exp(-n / bank);
  return std::pow(p_one, cfg_.hashes);
}

void CountingBloomFilter::clear() {
  counters_.assign(counters_.size(), 0);
  inserted_ = 0;
}

}  // namespace ufab::telemetry

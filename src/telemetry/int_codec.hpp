// INT wire-format codec (Appendix G).
//
// On the wire each per-hop INT record is 64 bits:
//   W_l  (16) — total claimed rate, 8 Mbps units
//   Φ_l  (16) — total subscribed tokens (bps), 8 Mbps units
//   tx_l (16) — link TX rate as a fraction of capacity (1/65535 units)
//   q_l  (12) — queue depth, 1 KB units (saturating)
//   C_l   (4) — egress speed class (1/10/25/40/50/100/200/400 Gbps)
//
// The simulator normally carries full-precision telemetry; enabling the
// codec in CoreConfig quantizes every record exactly as the hardware wire
// format would, so experiments can measure what the 64-bit encoding costs.
// (The HPCC-style cumulative TX byte counter is not part of the paper's
// format; with the codec enabled the edge falls back to the switch's
// quantized rate estimate.)
#pragma once

#include <cstdint>

#include "src/sim/packet.hpp"

namespace ufab::telemetry {

/// The 64-bit on-wire representation of one hop's INT record.
struct EncodedIntRecord {
  std::uint16_t window;    ///< W_l in 8 Mbps units.
  std::uint16_t phi;       ///< Phi_l in 8 Mbps units.
  std::uint16_t tx_frac;   ///< tx / capacity in 1/65535 units.
  std::uint16_t q_and_c;   ///< [q:12 (1 KB units, saturating) | speed class:4].
};

class IntCodec {
 public:
  /// Quantizes `rec` into the wire format. LinkId and timestamp are carried
  /// by the simulator out of band (on hardware they are implicit in hop
  /// order); the cumulative byte counter is dropped.
  static EncodedIntRecord encode(const sim::IntRecord& rec);

  /// Expands a wire record back into an IntRecord (lossy). `link` and
  /// `stamp` are re-attached from simulator metadata.
  static sim::IntRecord decode(const EncodedIntRecord& enc, LinkId link, TimeNs stamp);

  /// Applies an encode/decode round trip in place (what a probe would carry).
  static void quantize(sim::IntRecord& rec);

  /// Hot-path equivalent of quantize(): produces bit-identical doubles
  /// without materializing the intermediate EncodedIntRecord (the same u16
  /// code points are computed as locals and expanded back in place).  `cls`
  /// must be speed_class(rec.capacity); callers that stamp one fixed-speed
  /// egress cache it instead of re-running the 8-way class search per record.
  /// The struct codec above stays the wire format for the fault plane
  /// (corruption/staleness operate on real encoded records).
  static void quantize_inline(sim::IntRecord& rec, int cls);

  /// Nearest representable speed class for a physical capacity.
  static int speed_class(Bandwidth capacity);
  static Bandwidth class_speed(int cls);

  /// Quantization units.
  static constexpr double kRateUnitBps = 8e6;   ///< 8 Mbps per code point.
  static constexpr double kQueueUnitBytes = 1024.0;
  static constexpr std::int64_t kQueueMaxBytes = 4095 * 1024;
};

}  // namespace ufab::telemetry

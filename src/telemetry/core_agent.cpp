#include "src/telemetry/core_agent.hpp"

#include <algorithm>
#include <vector>

#include "src/obs/obs.hpp"
#include "src/obs/profiler.hpp"
#include "src/telemetry/int_codec.hpp"

namespace ufab::telemetry {

CoreAgent::CoreAgent(sim::Simulator& sim, CoreConfig cfg)
    : sim_(sim), cfg_(cfg), bloom_(cfg.bloom) {
  if (cfg_.clean_period > TimeNs::zero()) {
    sim_.after(cfg_.clean_period, [this] { sweep(sim_.now()); });
  }
}

void CoreAgent::record_event(obs::EventKind kind, TimeNs now, VmPairId pair, TenantId tenant,
                             std::uint64_t seq, double a, double b) {
#if !defined(UFAB_OBS_DISABLED)
  if (obs_ == nullptr) return;
  obs::TraceEvent ev;
  ev.at = now;
  ev.kind = kind;
  ev.track = track_;
  ev.pair = pair;
  ev.tenant = tenant;
  ev.seq = seq;
  ev.a = a;
  ev.b = b;
  obs_->record(ev);
#else
  (void)kind; (void)now; (void)pair; (void)tenant; (void)seq; (void)a; (void)b;
#endif
}

void CoreAgent::on_probe_egress(sim::Packet& pkt, sim::Link& link, TimeNs now) {
  UFAB_PROF_SCOPE(obs::ProfCat::kTelemetry);
  if (pkt.kind == sim::PacketKind::kFinishProbe) {
    handle_finish(pkt, now);
    return;
  }
  handle_probe(pkt, now);
  // Write the INT record after updating the registers (workflow step 3: the
  // probe carries the *updated* aggregate downstream).  The record is
  // composed directly in the probe's inline INT stack — no stack temporary
  // copied in, no wire-struct round trip when quantizing (DESIGN.md §13).
  sim::IntRecord& rec = pkt.telemetry.emplace_back();
  rec.link = link.id();
  rec.phi_total = phi_total_;
  rec.window_total = window_total_;
  rec.tx_bytes_cum = link.tx_bytes_cum();
  rec.stamp = now;
  rec.tx_rate_hint = link.tx_rate();
  rec.queue_bytes = link.queue_bytes();
  rec.capacity = link.capacity();
  if (cfg_.quantize_int) IntCodec::quantize_inline(rec, speed_class_cached(rec.capacity));
  if (tamper_ && !tamper_(rec, now)) {
    ++suppressed_records_;
    pkt.telemetry.pop_back();
    return;
  }
#if !defined(UFAB_OBS_DISABLED)
  if (obs_ != nullptr) {
    obs::TraceEvent ev;
    ev.at = now;
    ev.kind = obs::EventKind::kProbeIntStamp;
    ev.track = track_;
    ev.pair = pkt.pair;
    ev.tenant = pkt.tenant;
    ev.link = link.id();
    ev.seq = pkt.probe.seq;
    ev.a = rec.phi_total;
    ev.b = static_cast<double>(rec.queue_bytes);
    obs_->record(ev);
  }
#endif
}

int CoreAgent::speed_class_cached(Bandwidth capacity) {
  const double bps = capacity.bits_per_sec();
  if (bps != cached_cap_bps_) {
    cached_cap_bps_ = bps;
    cached_cls_ = IntCodec::speed_class(capacity);
  }
  return cached_cls_;
}

void CoreAgent::reset_state() {
  registered_.clear();
  bloom_.clear();
  phi_total_ = 0.0;
  window_total_ = 0.0;
  ++resets_;
  const TimeNs now = sim_.now();
  record_event(obs::EventKind::kSwitchReset, now, {}, {}, 0, 0.0, 0.0);
  record_event(obs::EventKind::kBloomClear, now, {}, {}, 0, 0.0, 0.0);
  // The sweep timer keeps running: it is part of the switch program, not of
  // the lost register state, and re-arms itself.
}

void CoreAgent::handle_probe(sim::Packet& pkt, TimeNs now) {
  const auto& pf = pkt.probe;
  const std::uint64_t key = pf.reg_key;
  const bool seen = cfg_.use_bloom ? bloom_.maybe_contains(key) : registered_.contains(key);
  if (!seen) {
    if (cfg_.use_bloom) bloom_.insert(key);
    registered_[key] = PairEntry{pf.phi, pf.window, now};
    phi_total_ += pf.phi;
    window_total_ += pf.window;
    record_event(obs::EventKind::kBloomInsert, now, pkt.pair, pkt.tenant, key, 0.0, 0.0);
    record_event(obs::EventKind::kRegisterWrite, now, pkt.pair, pkt.tenant, key, phi_total_,
                 window_total_);
    return;
  }
  auto it = registered_.find(key);
  if (it == registered_.end()) {
    // Bloom false positive on a genuinely new pair: the pair is omitted from
    // the registers (Phi_l and W_l run smaller than truth; §3.6 analyses why
    // this is safe). The omission heals at the next sweep, which rebuilds
    // membership from actual probe activity.
    ++fp_omissions_;
    return;
  }
  phi_total_ += pf.phi - it->second.phi;
  window_total_ += pf.window - it->second.window;
  it->second.phi = pf.phi;
  it->second.window = pf.window;
  it->second.last_seen = now;
  clamp_registers();
  record_event(obs::EventKind::kRegisterWrite, now, pkt.pair, pkt.tenant, key, phi_total_,
               window_total_);
}

void CoreAgent::handle_finish(sim::Packet& pkt, TimeNs now) {
  const std::uint64_t key = pkt.probe.reg_key;
  auto it = registered_.find(key);
  if (it != registered_.end()) {
    phi_total_ -= it->second.phi;
    window_total_ -= it->second.window;
    registered_.erase(it);
    if (cfg_.use_bloom) bloom_.remove(key);
    clamp_registers();
    record_event(obs::EventKind::kBloomRemove, now, pkt.pair, pkt.tenant, key, 0.0, 0.0);
    record_event(obs::EventKind::kRegisterClear, now, pkt.pair, pkt.tenant, key, phi_total_,
                 window_total_);
  }
  // Acknowledge even if already gone — the edge retries finish probes until
  // every switch on the path has confirmed (§3.6).
  ++pkt.probe.finish_acks;
}

void CoreAgent::sweep(TimeNs now) {
  std::vector<std::uint64_t> stale;
  for (const auto& [key, entry] : registered_) {
    if (now - entry.last_seen >= cfg_.clean_period) stale.push_back(key);
  }
  for (const std::uint64_t key : stale) {
    auto it = registered_.find(key);
    phi_total_ -= it->second.phi;
    window_total_ -= it->second.window;
    registered_.erase(it);
    if (cfg_.use_bloom) bloom_.remove(key);
    record_event(obs::EventKind::kRegisterClear, now, {}, {}, key, phi_total_, window_total_);
  }
  clamp_registers();
  sim_.after(cfg_.clean_period, [this] { sweep(sim_.now()); });
}

void CoreAgent::clamp_registers() {
  // Floating-point residue from long add/subtract chains must never turn the
  // registers negative.
  phi_total_ = std::max(0.0, phi_total_);
  window_total_ = std::max(0.0, window_total_);
}

std::vector<std::unique_ptr<CoreAgent>> instrument_switch(sim::Simulator& sim, sim::Switch& sw,
                                                          const CoreConfig& cfg) {
  std::vector<std::unique_ptr<CoreAgent>> agents;
  agents.reserve(static_cast<std::size_t>(sw.port_count()));
  for (std::int32_t p = 0; p < sw.port_count(); ++p) {
    agents.push_back(std::make_unique<CoreAgent>(sim, cfg));
    sw.set_egress_processor(p, agents.back().get());
  }
  return agents;
}

}  // namespace ufab::telemetry

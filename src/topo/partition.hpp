// Graph partitioner for the sharded engine.
//
// Cuts a finalized Network into `shards` pieces along its highest switch
// tiers: a host always stays with its ToR (the edge agent and its subtree
// are one causal unit), and shards are the connected components left after
// stripping the top tiers, balanced by host count.  The stripped top-tier
// switches are dealt round-robin across shards — their links are the cut
// links, and the minimum propagation delay over them is the partition's
// lookahead: the epoch length under which the sharded engine is provably
// equivalent to the serial one (see DESIGN.md §9).
#pragma once

#include <vector>

#include "src/core/ids.hpp"
#include "src/core/time.hpp"

namespace ufab::topo {

class Network;

struct Partition {
  int shards = 1;
  /// Epoch length: min prop delay over cut links; TimeNs::max() if none cut.
  TimeNs lookahead = TimeNs::max();
  /// Shard of every node, indexed by NodeId value.
  std::vector<int> node_shard;
  /// Every link whose endpoints live on different shards.
  std::vector<LinkId> cut_links;
  /// Aligned with cut_links: each cut link's propagation delay.  The engine's
  /// adaptive synchronization wants the delay *table*, not just the min —
  /// per-shard strides come from it (DESIGN.md §12).
  std::vector<TimeNs> cut_link_prop;
  /// Indexed by LinkId value: the peer's shard for cut links, -1 for local.
  std::vector<int> link_dst_shard;
  /// Per-shard min prop delay over *outgoing* cut links (TimeNs::max() for a
  /// shard with none).  Solo rounds stride by this: nothing shard s runs
  /// before tau + shard_out_lookahead[s] can be observed elsewhere.
  std::vector<TimeNs> shard_out_lookahead;

  [[nodiscard]] int shard_of(NodeId n) const {
    return node_shard.at(static_cast<std::size_t>(n.value()));
  }
};

/// Partitions `net` into up to `want_shards` pieces.  Deterministic: the
/// same topology and shard count always produce the same partition.  When
/// the topology cannot support `want_shards` host-bearing components (every
/// strippable tier removed still leaves fewer), the result is clamped to
/// what is achievable and a note goes to stderr.
[[nodiscard]] Partition partition_network(const Network& net, int want_shards);

}  // namespace ufab::topo

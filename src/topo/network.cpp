#include "src/topo/network.hpp"

#include <algorithm>
#include <deque>

#include "src/core/assert.hpp"

namespace ufab::topo {

namespace {
constexpr std::int32_t kBfsUnreached = -1;

std::uint64_t pair_key(HostId a, HostId b) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(a.value())) << 32) |
         static_cast<std::uint32_t>(b.value());
}
}  // namespace

NodeId Network::add_switch(std::string name) {
  UFAB_CHECK_MSG(!finalized_, "topology already finalized");
  const NodeId id{static_cast<std::int32_t>(nodes_.size())};
  nodes_.push_back(std::make_unique<sim::Switch>(sim_, id, std::move(name)));
  adj_.emplace_back();
  ++switch_count_;
  return id;
}

HostId Network::add_host(std::string name) {
  UFAB_CHECK_MSG(!finalized_, "topology already finalized");
  const NodeId id{static_cast<std::int32_t>(nodes_.size())};
  const HostId hid{static_cast<std::int32_t>(host_nodes_.size())};
  nodes_.push_back(std::make_unique<sim::Host>(sim_, id, hid, std::move(name)));
  adj_.emplace_back();
  host_nodes_.push_back(id);
  return hid;
}

void Network::connect(NodeId a, NodeId b, const sim::LinkConfig& cfg) {
  UFAB_CHECK_MSG(!finalized_, "topology already finalized");
  auto make_one = [&](NodeId from, NodeId to) -> std::pair<LinkId, std::int32_t> {
    const LinkId lid{static_cast<std::int32_t>(links_.size())};
    auto* dst_node = nodes_[static_cast<std::size_t>(to.value())].get();
    auto name = nodes_[static_cast<std::size_t>(from.value())]->name() + "->" + dst_node->name();
    auto link = std::make_unique<sim::Link>(sim_, lid, std::move(name), dst_node, cfg);
    sim::Link* raw = link.get();
    std::int32_t port;
    auto* from_node = nodes_[static_cast<std::size_t>(from.value())].get();
    if (auto* sw = dynamic_cast<sim::Switch*>(from_node)) {
      port = sw->add_port(std::move(link));
    } else {
      auto* h = dynamic_cast<sim::Host*>(from_node);
      UFAB_CHECK(h != nullptr);
      h->attach_uplink(std::move(link));
      port = 0;
    }
    links_.push_back(raw);
    adj_[static_cast<std::size_t>(from.value())].push_back(Edge{port, lid, to});
    return {lid, port};
  };
  const auto [lab, pab] = make_one(a, b);
  const auto [lba, pba] = make_one(b, a);
  (void)pab;
  (void)pba;
  // Record the duplex pairing for reverse-path construction.
  if (reverse_link_.size() < links_.size()) reverse_link_.resize(links_.size(), LinkId::invalid());
  reverse_link_[static_cast<std::size_t>(lab.value())] = lba;
  reverse_link_[static_cast<std::size_t>(lba.value())] = lab;
  if (link_owner_.size() < links_.size()) link_owner_.resize(links_.size(), NodeId::invalid());
  if (link_port_.size() < links_.size()) link_port_.resize(links_.size(), -1);
  link_owner_[static_cast<std::size_t>(lab.value())] = a;
  link_port_[static_cast<std::size_t>(lab.value())] = pab;
  link_owner_[static_cast<std::size_t>(lba.value())] = b;
  link_port_[static_cast<std::size_t>(lba.value())] = pba;
}

sim::Switch& Network::switch_at(NodeId id) {
  auto* sw = dynamic_cast<sim::Switch*>(nodes_.at(static_cast<std::size_t>(id.value())).get());
  UFAB_CHECK_MSG(sw != nullptr, "node is not a switch");
  return *sw;
}

sim::Host& Network::host(HostId id) {
  const NodeId nid = node_of(id);
  auto* h = dynamic_cast<sim::Host*>(nodes_.at(static_cast<std::size_t>(nid.value())).get());
  UFAB_CHECK(h != nullptr);
  return *h;
}

NodeId Network::node_of(HostId id) const {
  return host_nodes_.at(static_cast<std::size_t>(id.value()));
}

sim::Link* Network::link(LinkId id) const {
  return links_.at(static_cast<std::size_t>(id.value()));
}

std::vector<sim::Switch*> Network::switches() const {
  std::vector<sim::Switch*> out;
  out.reserve(switch_count_);
  for (const auto& n : nodes_) {
    if (auto* sw = dynamic_cast<sim::Switch*>(n.get())) out.push_back(sw);
  }
  return out;
}

std::vector<std::int32_t> Network::bfs_distances_to(NodeId dst) const {
  std::vector<std::int32_t> dist(nodes_.size(), kBfsUnreached);
  std::deque<NodeId> frontier;
  dist[static_cast<std::size_t>(dst.value())] = 0;
  frontier.push_back(dst);
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop_front();
    const auto ui = static_cast<std::size_t>(u.value());
    // Hosts never forward: only the BFS root (the destination) expands.
    const bool is_host =
        dynamic_cast<const sim::Host*>(nodes_[ui].get()) != nullptr;
    if (is_host && u != dst) continue;
    for (const Edge& e : adj_[ui]) {
      const auto vi = static_cast<std::size_t>(e.to.value());
      if (dist[vi] == kBfsUnreached) {
        dist[vi] = dist[ui] + 1;
        frontier.push_back(e.to);
      }
    }
  }
  return dist;
}

void Network::finalize() {
  UFAB_CHECK_MSG(!finalized_, "finalize() called twice");
  finalized_ = true;
  // Healthy hash configuration: a distinct salt per switch.
  for (auto& n : nodes_) {
    if (auto* sw = dynamic_cast<sim::Switch*>(n.get())) {
      sw->set_hash_salt(0x5bd1e995ULL * static_cast<std::uint64_t>(sw->id().value() + 1));
    }
  }
  // ECMP tables: for each destination host, every switch learns the ports on
  // minimum-hop paths toward it.
  for (std::size_t h = 0; h < host_nodes_.size(); ++h) {
    const auto dist = bfs_distances_to(host_nodes_[h]);
    for (auto& n : nodes_) {
      auto* sw = dynamic_cast<sim::Switch*>(n.get());
      if (sw == nullptr) continue;
      const auto si = static_cast<std::size_t>(sw->id().value());
      if (dist[si] == kBfsUnreached) continue;
      std::vector<std::int32_t> ports;
      for (const Edge& e : adj_[si]) {
        const auto vi = static_cast<std::size_t>(e.to.value());
        if (dist[vi] != kBfsUnreached && dist[vi] == dist[si] - 1) ports.push_back(e.port);
      }
      sw->set_ecmp_ports(HostId{static_cast<std::int32_t>(h)}, std::move(ports));
    }
  }
  // Flatten every switch's ECMP table into its steady-state FIB.
  for (auto& n : nodes_) {
    if (auto* sw = dynamic_cast<sim::Switch*>(n.get())) sw->compile_fib();
  }
}

void Network::set_hash_polarization(bool polarized) {
  std::uint64_t salt = 0xdecaf;
  for (auto& n : nodes_) {
    if (auto* sw = dynamic_cast<sim::Switch*>(n.get())) {
      if (polarized) {
        sw->set_hash_salt(salt);  // every tier hashes identically
      } else {
        sw->set_hash_salt(0x5bd1e995ULL * static_cast<std::uint64_t>(sw->id().value() + 1));
      }
    }
  }
}

void Network::for_each_shortest_dfs(NodeId at, NodeId dst, const std::vector<std::int32_t>& dist,
                                    Path& partial, std::vector<Path>& out,
                                    std::size_t max_paths) {
  if (out.size() >= max_paths) return;
  if (at == dst) {
    out.push_back(partial);
    return;
  }
  const auto ai = static_cast<std::size_t>(at.value());
  const bool at_switch = dynamic_cast<sim::Switch*>(nodes_[ai].get()) != nullptr;
  for (const Edge& e : adj_[ai]) {
    const auto vi = static_cast<std::size_t>(e.to.value());
    if (dist[vi] == kBfsUnreached || dist[vi] != dist[ai] - 1) continue;
    if (at_switch) {
      partial.route.push_back(e.port);
      partial.switches.push_back(at);
    }
    partial.links.push_back(e.link);
    for_each_shortest_dfs(e.to, dst, dist, partial, out, max_paths);
    partial.links.pop_back();
    if (at_switch) {
      partial.route.pop_back();
      partial.switches.pop_back();
    }
  }
}

const std::vector<Path>& Network::paths(HostId src, HostId dst, std::size_t max_paths) {
  UFAB_CHECK_MSG(finalized_, "call finalize() before querying paths");
  UFAB_CHECK_MSG(src != dst, "paths() between a host and itself");
  const std::lock_guard<std::mutex> lock(path_mu_);
  const std::uint64_t key = pair_key(src, dst);
  if (auto it = path_cache_.find(key); it != path_cache_.end()) return it->second;
  const auto dist = bfs_distances_to(node_of(dst));
  std::vector<Path> out;
  Path partial;
  for_each_shortest_dfs(node_of(src), node_of(dst), dist, partial, out, max_paths);
  UFAB_CHECK_MSG(!out.empty(), "no path between hosts");
  auto [it, inserted] = path_cache_.emplace(key, std::move(out));
  UFAB_CHECK(inserted);
  return it->second;
}

Path Network::reverse(const Path& p, HostId src, HostId dst) {
  (void)src;
  (void)dst;
  Path rev;
  for (auto it = p.links.rbegin(); it != p.links.rend(); ++it) {
    const LinkId back = reverse_link_.at(static_cast<std::size_t>(it->value()));
    rev.links.push_back(back);
    const NodeId owner = link_owner_.at(static_cast<std::size_t>(back.value()));
    if (dynamic_cast<sim::Switch*>(nodes_[static_cast<std::size_t>(owner.value())].get()) !=
        nullptr) {
      rev.route.push_back(link_port_.at(static_cast<std::size_t>(back.value())));
      rev.switches.push_back(owner);
    }
  }
  return rev;
}

TimeNs Network::base_rtt(HostId src, HostId dst) {
  const Path& p = paths(src, dst).front();
  const Path rev = reverse(p, src, dst);
  TimeNs total = TimeNs::zero();
  for (LinkId lid : p.links) {
    const sim::Link* l = link(lid);
    total += l->prop_delay() + l->capacity().tx_time(sim::kMtuBytes);
  }
  for (LinkId lid : rev.links) {
    const sim::Link* l = link(lid);
    total += l->prop_delay() + l->capacity().tx_time(sim::kAckBytes);
  }
  return total;
}

}  // namespace ufab::topo

// Fabric-level view: nodes + links + path queries.
//
// Network instantiates the simulated nodes and links, keeps the adjacency
// needed to enumerate equal-cost paths (uFAB assumption: the DCN topology is
// known a priori, so the edge knows all path candidates), and installs ECMP
// tables for baselines that forward without source routes.
#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/core/ids.hpp"
#include "src/sim/host.hpp"
#include "src/sim/link.hpp"
#include "src/sim/simulator.hpp"
#include "src/sim/switch.hpp"

namespace ufab::topo {

/// One end-to-end underlay path between two hosts.
struct Path {
  /// Egress port index at each switch along the way (the source route).
  std::vector<std::int32_t> route;
  /// Every link the path traverses, starting with the source host uplink.
  std::vector<LinkId> links;
  /// Switches visited, in order.
  std::vector<NodeId> switches;
};

class Network {
 public:
  explicit Network(sim::Simulator& sim) : sim_(sim) {}
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  NodeId add_switch(std::string name);
  HostId add_host(std::string name);

  /// Connects two nodes with a duplex pair of links (same config each way).
  void connect(NodeId a, NodeId b, const sim::LinkConfig& cfg);
  void connect(NodeId a, HostId h, const sim::LinkConfig& cfg) { connect(a, node_of(h), cfg); }

  /// Computes ECMP tables; call once after the topology is assembled.
  void finalize();

  // --- accessors ---
  [[nodiscard]] sim::Simulator& simulator() { return sim_; }
  [[nodiscard]] sim::Switch& switch_at(NodeId id);
  [[nodiscard]] sim::Host& host(HostId id);
  [[nodiscard]] NodeId node_of(HostId id) const;
  [[nodiscard]] std::size_t host_count() const { return host_nodes_.size(); }
  [[nodiscard]] std::size_t switch_count() const { return switch_count_; }
  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] sim::Link* link(LinkId id) const;
  [[nodiscard]] const std::vector<sim::Link*>& links() const { return links_; }
  /// The node a link's egress belongs to (the partitioner's edge list).
  [[nodiscard]] NodeId link_owner(LinkId id) const {
    return link_owner_.at(static_cast<std::size_t>(id.value()));
  }
  /// The opposite direction of a duplex link pair.
  [[nodiscard]] LinkId reverse_link(LinkId id) const {
    return reverse_link_.at(static_cast<std::size_t>(id.value()));
  }
  /// All switches, in creation order.
  [[nodiscard]] std::vector<sim::Switch*> switches() const;

  /// All equal-cost (minimum-hop) paths between two hosts, capped at
  /// `max_paths` in deterministic (port-order DFS) order. Cached.
  const std::vector<Path>& paths(HostId src, HostId dst, std::size_t max_paths = 64);

  /// The reverse of `p` (same physical links in the opposite direction),
  /// expressed as a source route from dst back to src.
  [[nodiscard]] Path reverse(const Path& p, HostId src, HostId dst);

  /// Base RTT: forward MTU serialization + ACK return, no queueing.
  TimeNs base_rtt(HostId src, HostId dst);

  /// Makes every switch use the same ECMP hash salt (hash polarization) or
  /// per-switch distinct salts (the default healthy configuration).
  void set_hash_polarization(bool polarized);

 private:
  struct Edge {
    std::int32_t port;  ///< Egress port index at `from`.
    LinkId link;
    NodeId to;
  };

  void for_each_shortest_dfs(NodeId at, NodeId dst, const std::vector<std::int32_t>& dist,
                             Path& partial, std::vector<Path>& out, std::size_t max_paths);
  [[nodiscard]] std::vector<std::int32_t> bfs_distances_to(NodeId dst) const;

  sim::Simulator& sim_;
  std::vector<std::unique_ptr<sim::Node>> nodes_;  // switches and hosts
  std::vector<std::vector<Edge>> adj_;             // indexed by NodeId
  std::vector<NodeId> host_nodes_;                 // HostId -> NodeId
  std::vector<sim::Link*> links_;                  // LinkId -> link
  std::vector<LinkId> reverse_link_;               // duplex pairing
  std::vector<NodeId> link_owner_;                 // LinkId -> owning node
  std::vector<std::int32_t> link_port_;            // LinkId -> port at owner
  std::size_t switch_count_ = 0;
  bool finalized_ = false;

  /// Guards path_cache_: connections are created lazily at runtime, so
  /// sharded (multi-threaded) runs can race first-use path queries.  Element
  /// references survive rehashing, so a returned span stays valid after the
  /// lock drops.
  std::mutex path_mu_;
  std::unordered_map<std::uint64_t, std::vector<Path>> path_cache_;
};

}  // namespace ufab::topo

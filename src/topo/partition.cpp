#include "src/topo/partition.hpp"

#include <algorithm>
#include <cstdio>
#include <deque>
#include <limits>

#include "src/core/assert.hpp"
#include "src/topo/network.hpp"

namespace ufab::topo {

namespace {

/// Undirected neighbor lists derived from the duplex link pairs.
std::vector<std::vector<int>> adjacency(const Network& net) {
  std::vector<std::vector<int>> adj(net.node_count());
  for (const sim::Link* l : net.links()) {
    const int from = net.link_owner(l->id()).value();
    const int to = net.link_owner(net.reverse_link(l->id())).value();
    adj[static_cast<std::size_t>(from)].push_back(to);
  }
  return adj;
}

/// Min hop distance from every node to the nearest host (hosts are 0, their
/// ToRs 1, and so on up the tiers).  Multi-source BFS.
std::vector<int> tier_levels(const Network& net, const std::vector<std::vector<int>>& adj) {
  std::vector<int> level(net.node_count(), -1);
  std::deque<int> frontier;
  for (std::size_t h = 0; h < net.host_count(); ++h) {
    const int n = net.node_of(HostId{static_cast<std::int32_t>(h)}).value();
    level[static_cast<std::size_t>(n)] = 0;
    frontier.push_back(n);
  }
  while (!frontier.empty()) {
    const int u = frontier.front();
    frontier.pop_front();
    for (const int v : adj[static_cast<std::size_t>(u)]) {
      if (level[static_cast<std::size_t>(v)] == -1) {
        level[static_cast<std::size_t>(v)] = level[static_cast<std::size_t>(u)] + 1;
        frontier.push_back(v);
      }
    }
  }
  return level;
}

/// Connected components over nodes with level < strip_level (plus every
/// host), labeled in increasing min-node-id order so the labeling — and
/// everything downstream — is deterministic.
std::vector<int> components_below(const std::vector<std::vector<int>>& adj,
                                  const std::vector<int>& level, int strip_level,
                                  int* count_out) {
  std::vector<int> comp(adj.size(), -1);
  int next = 0;
  for (std::size_t seed = 0; seed < adj.size(); ++seed) {
    if (comp[seed] != -1 || level[seed] < 0 || level[seed] >= strip_level) continue;
    std::deque<int> frontier{static_cast<int>(seed)};
    comp[seed] = next;
    while (!frontier.empty()) {
      const int u = frontier.front();
      frontier.pop_front();
      for (const int v : adj[static_cast<std::size_t>(u)]) {
        const auto vi = static_cast<std::size_t>(v);
        if (comp[vi] == -1 && level[vi] >= 0 && level[vi] < strip_level) {
          comp[vi] = next;
          frontier.push_back(v);
        }
      }
    }
    ++next;
  }
  *count_out = next;
  return comp;
}

}  // namespace

Partition partition_network(const Network& net, int want_shards) {
  UFAB_CHECK(want_shards >= 1);
  Partition out;
  out.node_shard.assign(net.node_count(), 0);
  out.link_dst_shard.assign(net.links().size(), -1);
  if (want_shards == 1) {
    out.shards = 1;
    return out;
  }

  const auto adj = adjacency(net);
  const auto level = tier_levels(net, adj);
  int max_level = 0;
  for (const int l : level) max_level = std::max(max_level, l);

  // Strip tiers top-down until enough host-bearing components appear.  A
  // strip level of 2 is the floor: level-1 switches are the ToRs, and a host
  // separated from its ToR would turn every NIC link into a cut link.
  int strip_level = std::max(2, max_level);  // strip switches with level >= this
  int comp_count = 0;
  std::vector<int> comp = components_below(adj, level, strip_level, &comp_count);
  while (comp_count < want_shards && strip_level > 2) {
    --strip_level;
    comp = components_below(adj, level, strip_level, &comp_count);
  }
  if (comp_count < want_shards) {
    std::fprintf(stderr,
                 "[partition] topology supports only %d shard%s (requested %d); clamping\n",
                 comp_count, comp_count == 1 ? "" : "s", want_shards);
  }
  const int shards = std::min(want_shards, std::max(1, comp_count));
  out.shards = shards;
  if (shards == 1) return out;

  // Component weights (hosts) for balance, plus the deterministic order:
  // heaviest first, ties by the component's smallest node id (== label).
  std::vector<int> comp_hosts(static_cast<std::size_t>(comp_count), 0);
  for (std::size_t h = 0; h < net.host_count(); ++h) {
    const int n = net.node_of(HostId{static_cast<std::int32_t>(h)}).value();
    ++comp_hosts[static_cast<std::size_t>(comp[static_cast<std::size_t>(n)])];
  }
  std::vector<int> order(static_cast<std::size_t>(comp_count));
  for (int c = 0; c < comp_count; ++c) order[static_cast<std::size_t>(c)] = c;
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    const int ha = comp_hosts[static_cast<std::size_t>(a)];
    const int hb = comp_hosts[static_cast<std::size_t>(b)];
    if (ha != hb) return ha > hb;
    return a < b;
  });

  // Greedy bin packing: each component lands on the lightest shard so far
  // (lowest index on ties).
  std::vector<int> comp_shard(static_cast<std::size_t>(comp_count), 0);
  std::vector<int> shard_hosts(static_cast<std::size_t>(shards), 0);
  for (const int c : order) {
    int best = 0;
    for (int s = 1; s < shards; ++s) {
      if (shard_hosts[static_cast<std::size_t>(s)] < shard_hosts[static_cast<std::size_t>(best)]) {
        best = s;
      }
    }
    comp_shard[static_cast<std::size_t>(c)] = best;
    shard_hosts[static_cast<std::size_t>(best)] += comp_hosts[static_cast<std::size_t>(c)];
  }

  // Node assignment: component members follow their component; stripped
  // top-tier switches are dealt round-robin in node-id order.
  int rr = 0;
  for (std::size_t n = 0; n < net.node_count(); ++n) {
    if (comp[n] >= 0) {
      out.node_shard[n] = comp_shard[static_cast<std::size_t>(comp[n])];
    } else {
      out.node_shard[n] = rr++ % shards;
    }
  }

  // Cut links, the global lookahead bound, and the per-shard outgoing
  // strides (min prop over each source shard's cut links).
  std::int64_t min_prop = std::numeric_limits<std::int64_t>::max();
  out.shard_out_lookahead.assign(static_cast<std::size_t>(shards), TimeNs::max());
  for (const sim::Link* l : net.links()) {
    const int from = out.node_shard[static_cast<std::size_t>(net.link_owner(l->id()).value())];
    const int to = out.node_shard[static_cast<std::size_t>(
        net.link_owner(net.reverse_link(l->id())).value())];
    if (from == to) continue;
    out.cut_links.push_back(l->id());
    out.cut_link_prop.push_back(l->prop_delay());
    out.link_dst_shard[static_cast<std::size_t>(l->id().value())] = to;
    min_prop = std::min(min_prop, l->prop_delay().ns());
    TimeNs& from_la = out.shard_out_lookahead[static_cast<std::size_t>(from)];
    if (l->prop_delay() < from_la) from_la = l->prop_delay();
  }
  if (!out.cut_links.empty()) {
    UFAB_CHECK_MSG(min_prop > 0, "cut link with zero propagation delay: no lookahead");
    out.lookahead = TimeNs{min_prop};
  }
  return out;
}

}  // namespace ufab::topo

// Topology builders for every fabric used in the paper's evaluation.
#pragma once

#include <memory>

#include "src/topo/network.hpp"

namespace ufab::topo {

/// Knobs shared by all builders.
struct FabricOptions {
  Bandwidth host_bw = Bandwidth::gbps(10);    ///< Host NIC / ToR downlink speed.
  Bandwidth fabric_bw = Bandwidth::gbps(10);  ///< Switch-to-switch speed.
  /// Per-link propagation. 2 us/link puts the testbed's max base RTT near
  /// the paper's 24 us; the NS3-style FatTree runs override this to 1 us.
  TimeNs prop_delay = TimeNs{2000};
  /// Agg<->core propagation for make_fat_tree; zero means "inherit
  /// prop_delay" (uniform links, the historical default).  A real DC's
  /// inter-pod spans are 10-100x its in-rack fibers, and the split is what
  /// the sharded engine's lookahead feeds on: partition cuts fall on the
  /// agg<->core tier, so the cut-link (and thus epoch) lookahead becomes
  /// core_prop while in-pod hops keep the short prop_delay (DESIGN.md §12).
  TimeNs core_prop = TimeNs{0};
  std::int64_t queue_limit_bytes = 4'000'000;
  std::int64_t ecn_threshold_bytes = -1;  ///< >=0 enables ECN marking (baselines).
  double target_utilization = 0.95;       ///< eta, the paper's 95% target.

  [[nodiscard]] sim::LinkConfig host_link() const {
    return {host_bw, prop_delay, queue_limit_bytes, ecn_threshold_bytes, target_utilization};
  }
  [[nodiscard]] sim::LinkConfig fabric_link() const {
    return {fabric_bw, prop_delay, queue_limit_bytes, ecn_threshold_bytes, target_utilization};
  }
  [[nodiscard]] sim::LinkConfig core_link() const {
    return {fabric_bw, core_prop.ns() > 0 ? core_prop : prop_delay, queue_limit_bytes,
            ecn_threshold_bytes, target_utilization};
  }
};

/// Two ToRs joined by a single bottleneck link; `n_left`/`n_right` hosts.
/// The smallest fabric with a shared core link — unit tests live here.
std::unique_ptr<Network> make_dumbbell(sim::Simulator& sim, int n_left, int n_right,
                                       const FabricOptions& opts = {});

/// Leaf-spine: every leaf connects to every spine. `make_leaf_spine(2, 3, 4)`
/// is the Case-2 fabric of Figure 5 (three parallel paths between two racks).
std::unique_ptr<Network> make_leaf_spine(sim::Simulator& sim, int n_leaf, int n_spine,
                                         int hosts_per_leaf, const FabricOptions& opts = {});

/// The paper's hardware testbed (Figure 10): 2 pods, each with 2 ToRs
/// (2 hosts each) and 2 Aggs; 2 Cores. 8 servers, 10 switches, 8 equal-cost
/// paths between pods. Max base RTT ~ 24 us at 10 Gbps with 1 us links.
std::unique_ptr<Network> make_testbed(sim::Simulator& sim, const FabricOptions& opts = {});

/// k-ary FatTree: k pods x (k/2 edge + k/2 agg), (k/2)^2/oversub cores,
/// k^3/4 hosts. `oversub` = 1 gives full bisection (1:1), 2 halves the core
/// layer (1:2), matching the NS3 configurations in section 5.1.
std::unique_ptr<Network> make_fat_tree(sim::Simulator& sim, int k, int oversub = 1,
                                       const FabricOptions& opts = {});

}  // namespace ufab::topo

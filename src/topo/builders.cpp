#include "src/topo/builders.hpp"

#include <string>

#include "src/core/assert.hpp"

namespace ufab::topo {

namespace {
std::string num_name(const char* prefix, int i) { return std::string(prefix) + std::to_string(i); }
}  // namespace

std::unique_ptr<Network> make_dumbbell(sim::Simulator& sim, int n_left, int n_right,
                                       const FabricOptions& opts) {
  UFAB_CHECK(n_left > 0 && n_right > 0);
  auto net = std::make_unique<Network>(sim);
  const NodeId left = net->add_switch("ToR-L");
  const NodeId right = net->add_switch("ToR-R");
  net->connect(left, right, opts.fabric_link());
  for (int i = 0; i < n_left; ++i) {
    net->connect(left, net->add_host(num_name("L", i)), opts.host_link());
  }
  for (int i = 0; i < n_right; ++i) {
    net->connect(right, net->add_host(num_name("R", i)), opts.host_link());
  }
  net->finalize();
  return net;
}

std::unique_ptr<Network> make_leaf_spine(sim::Simulator& sim, int n_leaf, int n_spine,
                                         int hosts_per_leaf, const FabricOptions& opts) {
  UFAB_CHECK(n_leaf > 0 && n_spine > 0 && hosts_per_leaf > 0);
  auto net = std::make_unique<Network>(sim);
  std::vector<NodeId> leaves;
  std::vector<NodeId> spines;
  leaves.reserve(static_cast<std::size_t>(n_leaf));
  spines.reserve(static_cast<std::size_t>(n_spine));
  for (int i = 0; i < n_leaf; ++i) leaves.push_back(net->add_switch(num_name("Leaf", i + 1)));
  for (int i = 0; i < n_spine; ++i) spines.push_back(net->add_switch(num_name("Spine", i + 1)));
  for (const NodeId leaf : leaves) {
    for (const NodeId spine : spines) net->connect(leaf, spine, opts.fabric_link());
  }
  int host_no = 1;
  for (const NodeId leaf : leaves) {
    for (int i = 0; i < hosts_per_leaf; ++i) {
      net->connect(leaf, net->add_host(num_name("H", host_no++)), opts.host_link());
    }
  }
  net->finalize();
  return net;
}

std::unique_ptr<Network> make_testbed(sim::Simulator& sim, const FabricOptions& opts) {
  auto net = std::make_unique<Network>(sim);
  // 2 cores; per pod: 2 aggs + 2 ToRs; 2 hosts per ToR => S1..S8.
  const NodeId core1 = net->add_switch("Core1");
  const NodeId core2 = net->add_switch("Core2");
  int host_no = 1;
  for (int pod = 0; pod < 2; ++pod) {
    const NodeId agg1 = net->add_switch(num_name("Agg", pod * 2 + 1));
    const NodeId agg2 = net->add_switch(num_name("Agg", pod * 2 + 2));
    net->connect(agg1, core1, opts.fabric_link());
    net->connect(agg1, core2, opts.fabric_link());
    net->connect(agg2, core1, opts.fabric_link());
    net->connect(agg2, core2, opts.fabric_link());
    for (int t = 0; t < 2; ++t) {
      const NodeId tor = net->add_switch(num_name("ToR", pod * 2 + t + 1));
      net->connect(tor, agg1, opts.fabric_link());
      net->connect(tor, agg2, opts.fabric_link());
      for (int h = 0; h < 2; ++h) {
        net->connect(tor, net->add_host(num_name("S", host_no++)), opts.host_link());
      }
    }
  }
  net->finalize();
  return net;
}

std::unique_ptr<Network> make_fat_tree(sim::Simulator& sim, int k, int oversub,
                                       const FabricOptions& opts) {
  UFAB_CHECK_MSG(k >= 2 && k % 2 == 0, "fat tree requires even k");
  UFAB_CHECK(oversub >= 1);
  const int half = k / 2;
  const int cores_per_group = std::max(1, half / oversub);
  auto net = std::make_unique<Network>(sim);

  // Core groups: group g serves agg index g of every pod.
  std::vector<std::vector<NodeId>> core_groups(static_cast<std::size_t>(half));
  int core_no = 1;
  for (int g = 0; g < half; ++g) {
    for (int c = 0; c < cores_per_group; ++c) {
      core_groups[static_cast<std::size_t>(g)].push_back(
          net->add_switch(num_name("Core", core_no++)));
    }
  }

  int host_no = 1;
  for (int pod = 0; pod < k; ++pod) {
    std::vector<NodeId> aggs;
    aggs.reserve(static_cast<std::size_t>(half));
    for (int a = 0; a < half; ++a) {
      const NodeId agg = net->add_switch(num_name("Agg", pod * half + a + 1));
      aggs.push_back(agg);
      for (const NodeId core : core_groups[static_cast<std::size_t>(a)]) {
        net->connect(agg, core, opts.core_link());
      }
    }
    for (int e = 0; e < half; ++e) {
      const NodeId edge = net->add_switch(num_name("Edge", pod * half + e + 1));
      for (const NodeId agg : aggs) net->connect(edge, agg, opts.fabric_link());
      for (int h = 0; h < half; ++h) {
        net->connect(edge, net->add_host(num_name("H", host_no++)), opts.host_link());
      }
    }
  }
  net->finalize();
  return net;
}

}  // namespace ufab::topo

// Bandwidth-token assignment: hose-model guarantees -> VM-pair guarantees.
//
// uFAB adopts ElasticSwitch-style Guarantee Partitioning (Appendix E,
// Algorithm 1): the sender apportions its VM's tokens across active VM pairs
// — granting at least the fair share even to demand-bounded pairs so they can
// ramp instantly, the paper's deliberate <=2x transient over-assignment — and
// the receiver admits demands with max-min fairness.  Algorithm 2 (Appendix
// F) splits one pair's token across multiple underlay paths the same way.
//
// Token unit convention: 1 token == 1 bps (B_u = 1), see harness::VmMap.
#pragma once

#include <vector>

namespace ufab::edge {

/// Sender-side view of one VM pair for TOKENASSIGNMENT.
struct SenderPairView {
  double demand_tokens = 0.0;    ///< Measured TX rate, in tokens (bps).
  double receiver_tokens = 0.0;  ///< phi_D last admitted by the receiver.
  bool receiver_known = false;   ///< false until the first response arrives.
  double assigned = 0.0;         ///< Output: phi_s.
};

/// Receiver-side view of one VM pair for TOKENADMISSION.
struct ReceiverPairView {
  double requested_tokens = 0.0;  ///< phi_s conveyed in the sender's probes.
  double admitted = 0.0;          ///< Output: phi_D.
};

/// Algorithm 1, sender half: partitions `vm_tokens` across `pairs`.
void assign_tokens(double vm_tokens, std::vector<SenderPairView>& pairs);

/// Algorithm 1, receiver half: max-min admission of requested tokens.
void admit_tokens(double vm_tokens, std::vector<ReceiverPairView>& pairs);

/// Algorithm 2: splits a pair's token across underlay paths; `demand[i]` is
/// the measured TX rate on path i (tokens). Returns per-path tokens.
std::vector<double> split_tokens_across_paths(double pair_tokens,
                                              const std::vector<double>& path_demand_tokens);

}  // namespace ufab::edge

#include "src/ufab/token_assigner.hpp"

#include <algorithm>
#include <numeric>

#include "src/core/assert.hpp"

namespace ufab::edge {

void assign_tokens(double vm_tokens, std::vector<SenderPairView>& pairs) {
  if (pairs.empty()) return;
  UFAB_CHECK(vm_tokens >= 0.0);
  const auto ns = static_cast<double>(pairs.size());
  double fair = vm_tokens / ns;
  for (auto& p : pairs) p.assigned = 0.0;

  // Stage 1 — demand-bounded pairs: they still reserve the fair share (so a
  // returning burst can ramp within one RTT), but their spare capacity is
  // redistributed to the rest. Worst-case transient over-assignment is 2x a
  // pair's token, which the paper accepts deliberately (Appendix E).
  double spare = 0.0;
  std::size_t bounded = 0;
  for (auto& p : pairs) {
    if (fair > p.demand_tokens) {
      spare += fair - p.demand_tokens;
      p.assigned = fair;
      ++bounded;
    }
  }
  if (bounded < pairs.size()) fair += spare / static_cast<double>(pairs.size() - bounded);

  // Stage 2+3 — max-min water-fill of the remaining budget over the open
  // pairs, with each pair's demand being the receiver-admitted token (or
  // unbounded while the receiver's answer is unknown). Pairs capped by their
  // receiver get exactly phi_D; the freed tokens raise the level for others.
  std::vector<SenderPairView*> open;
  for (auto& p : pairs) {
    if (p.assigned == 0.0) open.push_back(&p);
  }
  if (open.empty()) return;
  std::sort(open.begin(), open.end(), [](const SenderPairView* a, const SenderPairView* b) {
    const double da = a->receiver_known ? a->receiver_tokens : 1e300;
    const double db = b->receiver_known ? b->receiver_tokens : 1e300;
    return da < db;
  });
  double budget = fair * static_cast<double>(open.size());
  std::size_t n = open.size();
  for (SenderPairView* p : open) {
    const double level = budget / static_cast<double>(n);
    const double demand = p->receiver_known ? p->receiver_tokens : 1e300;
    if (demand < level) {
      p->assigned = demand;
      budget -= demand;
    } else {
      p->assigned = level;
      budget -= level;
    }
    --n;
  }
}

void admit_tokens(double vm_tokens, std::vector<ReceiverPairView>& pairs) {
  if (pairs.empty()) return;
  UFAB_CHECK(vm_tokens >= 0.0);
  double fair = vm_tokens / static_cast<double>(pairs.size());

  // Max-min: pairs requesting less than the (rising) water level are
  // admitted in full ("UNBOUND" in Algorithm 1); their slack raises the
  // level for the rest.
  std::vector<ReceiverPairView*> order;
  order.reserve(pairs.size());
  for (auto& p : pairs) order.push_back(&p);
  std::sort(order.begin(), order.end(), [](const ReceiverPairView* a, const ReceiverPairView* b) {
    return a->requested_tokens < b->requested_tokens;
  });
  std::size_t remaining = order.size();
  for (ReceiverPairView* p : order) {
    --remaining;
    if (p->requested_tokens < fair) {
      if (remaining > 0) fair += (fair - p->requested_tokens) / static_cast<double>(remaining);
      p->admitted = p->requested_tokens;
    } else {
      p->admitted = fair;
    }
  }
}

std::vector<double> split_tokens_across_paths(double pair_tokens,
                                              const std::vector<double>& path_demand_tokens) {
  const std::size_t n = path_demand_tokens.size();
  std::vector<double> out(n, 0.0);
  if (n == 0) return out;
  double fair = pair_tokens / static_cast<double>(n);

  // Demand-starved paths keep the fair share (boosting future growth, line 7
  // of Algorithm 2) while their spare is spread over busy paths.
  double spare = 0.0;
  std::size_t bounded = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (fair > path_demand_tokens[i]) {
      out[i] = fair;
      spare += fair - path_demand_tokens[i];
      ++bounded;
    }
  }
  if (bounded < n) {
    const double boost = spare / static_cast<double>(n - bounded);
    for (std::size_t i = 0; i < n; ++i) {
      if (out[i] == 0.0) out[i] = fair + boost;
    }
  }
  return out;
}

}  // namespace ufab::edge

// Hierarchical weighted-fair packet scheduler (uFAB-E Packet Scheduler, §4.1).
//
// The FPGA implementation constrains the WFQ engine to 8 weighted queues with
// distinct weight levels; VFs are binned into the nearest level and VFs
// sharing a level are served round-robin, as are VM-pair queues inside a VF.
// This scheduler reproduces that structure: deficit round robin across the 8
// levels (quantum proportional to the level weight, which doubles per level),
// round robin across tenants within a level, round robin across connections
// within a tenant.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "src/core/ids.hpp"

namespace ufab::edge {

class WfqScheduler {
 public:
  static constexpr int kLevels = 8;

  /// `base_weight` maps to level 0; each further level doubles the weight.
  explicit WfqScheduler(double base_weight = 1.0, std::int32_t quantum_bytes = 1500)
      : base_weight_(base_weight), quantum_(quantum_bytes) {}

  /// Registers/updates a tenant's weight (its aggregate guarantee). Must be
  /// called before entities of the tenant are added.
  void set_tenant_weight(TenantId tenant, double weight);

  /// Adds a schedulable entity (a VM-pair connection) under a tenant.
  void add(TenantId tenant, std::uint64_t entity);
  void remove(TenantId tenant, std::uint64_t entity);

  /// Returns the next entity allowed to send, or 0 if none is sendable.
  /// `sendable(entity)` returns the wire size of the entity's next packet, or
  /// 0 if the entity has nothing admissible right now.
  std::uint64_t next(const std::function<std::int32_t(std::uint64_t)>& sendable);

  [[nodiscard]] int level_of(TenantId tenant) const;
  [[nodiscard]] std::size_t entity_count() const { return entity_count_; }

 private:
  struct TenantQueue {
    TenantId tenant;
    std::vector<std::uint64_t> entities;
    std::size_t cursor = 0;
  };
  struct Level {
    std::vector<TenantQueue> tenants;
    std::size_t cursor = 0;
    double deficit = 0.0;
  };

  [[nodiscard]] int weight_to_level(double weight) const;
  TenantQueue* find_tenant(Level& level, TenantId tenant);
  std::uint64_t find_sendable(Level& level,
                              const std::function<std::int32_t(std::uint64_t)>& sendable,
                              std::int32_t& size_out, bool commit);

  double base_weight_;
  std::int32_t quantum_;
  Level levels_[kLevels];
  std::unordered_map<std::int32_t, int> tenant_level_;  // TenantId value -> level
  std::size_t entity_count_ = 0;
  int rr_level_ = 0;
};

}  // namespace ufab::edge

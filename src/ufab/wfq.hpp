// Hierarchical weighted-fair packet scheduler (uFAB-E Packet Scheduler, §4.1).
//
// The FPGA implementation constrains the WFQ engine to 8 weighted queues with
// distinct weight levels; VFs are binned into the nearest level and VFs
// sharing a level are served round-robin, as are VM-pair queues inside a VF.
// This scheduler reproduces that structure: deficit round robin across the 8
// levels (quantum proportional to the level weight, which doubles per level),
// round robin across tenants within a level, round robin across connections
// within a tenant.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/core/ids.hpp"
#include "src/obs/profiler.hpp"

namespace ufab::edge {

class WfqScheduler {
 public:
  static constexpr int kLevels = 8;

  /// `base_weight` maps to level 0; each further level doubles the weight.
  explicit WfqScheduler(double base_weight = 1.0, std::int32_t quantum_bytes = 1500)
      : base_weight_(base_weight), quantum_(quantum_bytes) {}

  /// Registers/updates a tenant's weight (its aggregate guarantee). Must be
  /// called before entities of the tenant are added.
  void set_tenant_weight(TenantId tenant, double weight);

  /// Adds a schedulable entity (a VM-pair connection) under a tenant.
  void add(TenantId tenant, std::uint64_t entity);
  void remove(TenantId tenant, std::uint64_t entity);

  /// Returns the next entity allowed to send, or 0 if none is sendable.
  /// `sendable(entity)` returns the wire size of the entity's next packet, or
  /// 0 if the entity has nothing admissible right now; it must be a pure
  /// query (no side effects), since a scan may evaluate it for several
  /// entities.  Templated on the callable — this is the edge hot path
  /// (~1e8 calls per large bench), and an std::function here would make
  /// every per-entity query an indirect call.
  template <typename Sendable>
  std::uint64_t next(Sendable&& sendable) {
    UFAB_PROF_SCOPE(obs::ProfCat::kWfq);
    // Classic DRR adapted to pull-one semantics: the rotation pointer stays
    // on a level while its deficit lasts; moving onto a level grants its
    // quantum exactly once. A level with nothing sendable forfeits its
    // deficit, as in standard DRR where an emptied queue resets its counter.
    for (int i = 0; i < 2 * kLevels; ++i) {
      Level& L = levels_[rr_level_];
      if (!L.tenants.empty()) {
        const Found f = find_sendable(L, sendable);
        if (f.entity != 0 && L.deficit >= f.size) {
          commit(L, f);
          L.deficit -= f.size;
          return f.entity;
        }
        if (f.entity == 0) L.deficit = 0.0;
      }
      // Advance the rotation and grant the next level its quantum.
      rr_level_ = (rr_level_ + 1) % kLevels;
      Level& N = levels_[rr_level_];
      const double level_quantum =
          static_cast<double>(quantum_) * static_cast<double>(1 << rr_level_);
      N.deficit = std::min(N.deficit + level_quantum, 2.0 * level_quantum);
    }
    // Work-conserving fallback: never leave the wire idle because every level
    // is deficit-blocked — serve the first sendable entity and let its level
    // borrow (deficit goes negative, repaid on later rounds).
    for (int li = 0; li < kLevels; ++li) {
      Level& L = levels_[li];
      if (L.tenants.empty()) continue;
      const Found f = find_sendable(L, sendable);
      if (f.entity == 0) continue;
      commit(L, f);
      L.deficit -= f.size;
      return f.entity;
    }
    return 0;
  }

  [[nodiscard]] int level_of(TenantId tenant) const;
  [[nodiscard]] std::size_t entity_count() const { return entity_count_; }

 private:
  struct TenantQueue {
    TenantId tenant;
    std::vector<std::uint64_t> entities;
    std::size_t cursor = 0;
  };
  struct Level {
    std::vector<TenantQueue> tenants;
    std::size_t cursor = 0;
    double deficit = 0.0;
  };

  /// A sendable entity located by find_sendable, with the round-robin
  /// positions needed to commit the scan (advance the cursors) only if the
  /// caller actually serves it.  Locate-then-commit keeps `sendable` invoked
  /// once per scanned entity; the old probe-then-rescan shape evaluated the
  /// query twice for every served packet.
  struct Found {
    std::uint64_t entity = 0;
    std::int32_t size = 0;
    std::size_t tenant_off = 0;  ///< Tenant offset from level.cursor.
    std::size_t entity_idx = 0;  ///< Index into the tenant's entity list.
  };

  template <typename Sendable>
  [[nodiscard]] Found find_sendable(Level& level, Sendable& sendable) const {
    Found f;
    const std::size_t nt = level.tenants.size();
    for (std::size_t t = 0; t < nt; ++t) {
      const TenantQueue& tq = level.tenants[(level.cursor + t) % nt];
      const std::size_t ne = tq.entities.size();
      for (std::size_t e = 0; e < ne; ++e) {
        const std::size_t ei = (tq.cursor + e) % ne;
        const std::uint64_t entity = tq.entities[ei];
        const std::int32_t size = sendable(entity);
        if (size > 0) {
          f.entity = entity;
          f.size = size;
          f.tenant_off = t;
          f.entity_idx = ei;
          return f;
        }
      }
    }
    return f;
  }

  /// Advances the round-robin cursors past the entity `f` that was served.
  static void commit(Level& level, const Found& f) {
    TenantQueue& tq = level.tenants[(level.cursor + f.tenant_off) % level.tenants.size()];
    tq.cursor = (f.entity_idx + 1) % tq.entities.size();
    level.cursor = (level.cursor + f.tenant_off + 1) % level.tenants.size();
  }

  [[nodiscard]] int weight_to_level(double weight) const;
  TenantQueue* find_tenant(Level& level, TenantId tenant);

  double base_weight_;
  std::int32_t quantum_;
  Level levels_[kLevels];
  std::unordered_map<std::int32_t, int> tenant_level_;  // TenantId value -> level
  std::size_t entity_count_ = 0;
  int rr_level_ = 0;
};

}  // namespace ufab::edge

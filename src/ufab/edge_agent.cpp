#include "src/ufab/edge_agent.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/core/assert.hpp"
#include "src/obs/obs.hpp"
#include "src/ufab/token_assigner.hpp"

namespace ufab::edge {

namespace {
using sim::Packet;
using sim::PacketKind;
using sim::PacketPtr;

constexpr double kInf = std::numeric_limits<double>::infinity();
/// Demand stand-in for a backlogged pair: effectively unbounded.
constexpr double kUnboundedDemand = 1e30;

std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}
}  // namespace

EdgeAgent::EdgeAgent(topo::Network& net, const harness::VmMap& vms, HostId host, EdgeConfig cfg,
                     transport::TransportOptions topts, Rng rng)
    : TransportStack(net, vms, host, topts, rng),
      cfg_(cfg),
      wfq_(cfg.wfq_base_weight, cfg.wfq_quantum) {}

UfabConnection* EdgeAgent::ufab_connection(VmPairId pair) {
  return static_cast<UfabConnection*>(find_connection(pair));
}

void EdgeAgent::attach_obs(obs::Obs& obs) {
  TransportStack::attach_obs(obs);
  if (obs_ == nullptr) return;
  const obs::Labels labels{{"host", std::to_string(host_id().value())}};
  auto& m = obs.metrics();
  m.gauge_fn("edge.probes_sent", labels,
             [this] { return static_cast<double>(probes_sent_); });
  m.gauge_fn("edge.probe_bytes", labels,
             [this] { return static_cast<double>(probe_bytes_); });
  m.gauge_fn("edge.probe_timeouts", labels,
             [this] { return static_cast<double>(probe_timeouts_); });
  m.gauge_fn("edge.probe_retransmits", labels,
             [this] { return static_cast<double>(probe_retransmits_); });
  m.gauge_fn("edge.migrations", labels,
             [this] { return static_cast<double>(migrations_); });
  m.gauge_fn("edge.state_losses_detected", labels,
             [this] { return static_cast<double>(state_losses_detected_); });
  m.gauge_fn("edge.reregistrations", labels,
             [this] { return static_cast<double>(reregistrations_); });
  m.gauge_fn("edge.stale_telemetry_events", labels,
             [this] { return static_cast<double>(stale_telemetry_events_); });
  m.gauge_fn("edge.guarantee_degradations", labels,
             [this] { return static_cast<double>(guarantee_degradations_); });
  m.gauge_fn("edge.finish_retries", labels,
             [this] { return static_cast<double>(finish_retries_); });
  m.gauge_fn("edge.finish_abandoned", labels,
             [this] { return static_cast<double>(finish_abandoned_); });
}

void EdgeAgent::record_event(obs::EventKind kind, const UfabConnection& c, std::uint64_t seq,
                             double a, double b, std::uint8_t detail) {
#if !defined(UFAB_OBS_DISABLED)
  if (obs_ == nullptr || !obs_->enabled()) return;
  obs::TraceEvent ev;
  ev.at = simulator().now();
  ev.kind = kind;
  ev.detail = detail;
  ev.track = obs::Track::host(host_id());
  ev.pair = c.pair;
  ev.tenant = c.tenant;
  ev.seq = seq;
  ev.a = a;
  ev.b = b;
  obs_->record(ev);
#else
  (void)kind; (void)c; (void)seq; (void)a; (void)b; (void)detail;
#endif
}

std::unique_ptr<transport::Connection> EdgeAgent::make_connection() {
  return std::make_unique<UfabConnection>();
}

std::uint64_t EdgeAgent::registration_key(const UfabConnection& c, std::int32_t path_idx) const {
  // FNV over the source route identifies the physical path; mixing with the
  // pair key gives the per-(pair, path) registration identity switches use.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::int32_t port : c.candidates.at(static_cast<std::size_t>(path_idx)).route) {
    h ^= static_cast<std::uint64_t>(port + 1);
    h *= 0x100000001b3ULL;
  }
  return mix64(c.pair.key() ^ mix64(h));
}

void EdgeAgent::on_connection_created(transport::Connection& conn) {
  auto& c = static_cast<UfabConnection&>(conn);
  UFAB_CHECK_MSG(!c.candidates.empty(), "uFAB requires source routing (path candidates)");
  // Initial sender token: an equal split of the VM's hose tokens across its
  // current outgoing pairs; the token epoch refines this continuously.
  int outgoing = 0;
  for (transport::Connection* other : conn_order_) {
    if (other->pair.src == c.pair.src) ++outgoing;
  }
  c.phi_s = vms().vm_tokens(c.pair.src) / std::max(1, outgoing);
  c.reg_key = registration_key(c, c.path_idx);
  c.window = std::max(bytes_for(c.phi(), c.base_rtt), cfg_.min_window_bytes);
  c.w_stage = c.window;
  c.epoch_started = simulator().now();

  const std::uint64_t entity = next_entity_++;
  by_entity_[entity] = &c;
  entity_of_pair_[c.pair.key()] = entity;
  wfq_.set_tenant_weight(c.tenant, vms().tenant_guarantee(c.tenant).bits_per_sec());
  wfq_.add(c.tenant, entity);
  ensure_token_timer();
}

bool EdgeAgent::can_send(const transport::Connection& conn) const {
  const auto& c = static_cast<const UfabConnection&>(conn);
  if (simulator().now() < c.data_blocked_until) return false;
  // Nearest-packet admission: send while at least half of the next packet
  // fits. Floor-rounding (strict fit) would waste up to one MTU of every
  // window and ceiling-rounding (inflight < window) would overshoot by one —
  // both distort weighted fairness badly at testbed scale where a window is
  // a handful of MTUs; rounding to nearest is unbiased.
  const std::int32_t next = c.next_wire_size(options().mtu_payload, sim::kDataHeaderBytes);
  if (next == 0) return false;
  return c.window - static_cast<double>(c.inflight_bytes) >= static_cast<double>(next) / 2.0;
}

transport::Connection* EdgeAgent::next_sender() {
  const auto sendable = [this](std::uint64_t entity) -> std::int32_t {
    auto it = by_entity_.find(entity);
    if (it == by_entity_.end()) return 0;
    UfabConnection* c = it->second;
    if (!c->has_backlog() || !can_send(*c)) return 0;
    return c->next_wire_size(options().mtu_payload, sim::kDataHeaderBytes);
  };
  const std::uint64_t entity = wfq_.next(sendable);
  if (entity == 0) return nullptr;
  return by_entity_.at(entity);
}

void EdgeAgent::on_data_sent(transport::Connection& conn, const sim::Packet& pkt) {
  (void)pkt;
  auto& c = static_cast<UfabConnection&>(conn);
  if (!c.probe_outstanding && cfg_.probe_mode == ProbeMode::kAdaptive &&
      c.bytes_sent_total - c.bytes_at_last_probe >= cfg_.probe_interval_bytes) {
    send_probe(c);
  }
}

void EdgeAgent::on_demand_arrived(transport::Connection& conn) {
  auto& c = static_cast<UfabConnection&>(conn);
  // Two-stage admission, Scenario 1 (new pair) and Scenario 2 (returning
  // demand): bootstrap at the guarantee (or last known share) BDP, then
  // increase additively until the Eqn-3 window takes over.
  const double target_bps = std::max(c.phi(), c.r_path_bps);
  if (cfg_.two_stage_admission) {
    c.bootstrap = true;
    c.w_stage = std::max(bytes_for(target_bps, c.base_rtt), window_floor(c));
    c.window = c.w_stage;
  } else {
    // uFAB': jump straight to the utilization window (last known, or a full
    // path BDP when unknown) — fast but with unbounded transient bursts.
    const double line_bps = host().nic().capacity().bits_per_sec() * cfg_.eta;
    c.window = std::max(bytes_for(line_bps, c.base_rtt), window_floor(c));
    c.bootstrap = false;
  }
  // Probe on demand arrival — but rate-limit to one per RTT so applications
  // issuing many small messages do not turn every request into a probe.
  if (!c.probe_outstanding &&
      (!c.registered || simulator().now() - c.probe_sent_at >= c.base_rtt)) {
    send_probe(c);
  }
  // Initial placement (§3.5): a joining pair scouts its candidate paths in
  // parallel and moves to a qualified, least-subscribed one — data starts on
  // the provisional path meanwhile, bounded by the bootstrap window.
  if (cfg_.initial_placement_scouting && c.scout_round == 0 && c.candidates.size() > 1 &&
      !c.scouting) {
    start_scouting(c, /*include_current=*/true);
  }
}

double EdgeAgent::window_floor(const UfabConnection& c) const {
  (void)c;
  return cfg_.min_window_bytes;
}

// ---------------------------------------------------------------------------
// Probing
// ---------------------------------------------------------------------------

void EdgeAgent::send_probe(UfabConnection& c) {
  auto pkt = sim::make_packet(simulator().packet_pool(), PacketKind::kProbe, c.pair, c.tenant, host_id(), c.dst_host,
                          sim::probe_wire_size(0));
  pkt->probe.phi = c.phi();
  // The admission claim is reported as a *rate* (window / baseRTT, bytes/s),
  // so the aggregate W_l the core returns is RTT-neutral: pairs with short
  // base RTTs would otherwise convert the same window share into a larger
  // rate share (cf. Eqn 2, where the aggregate is a rate).
  pkt->probe.window = c.window / c.base_rtt.sec();
  pkt->probe.phi_prev = c.reg_phi;
  pkt->probe.window_prev = c.reg_window;
  pkt->probe.reg_key = c.reg_key;
  pkt->probe.seq = ++c.probe_seq;
  pkt->route = c.current_path().route;
  pkt->reverse_route = c.candidate_reverse[static_cast<std::size_t>(c.path_idx)].route;
  pkt->path_tag = PathId{c.path_idx};
  pkt->sent_at = simulator().now();
  pkt->ecn_capable = false;

  c.probe_outstanding = true;
  c.probe_sent_at = simulator().now();
  c.bytes_at_last_probe = c.bytes_sent_total;
  c.reg_phi = pkt->probe.phi;
  c.reg_window = pkt->probe.window;
  c.registered = true;
  ++probes_sent_;
  probe_bytes_ += sim::probe_wire_size(static_cast<std::int32_t>(pkt->route.size()));
  record_event(obs::EventKind::kProbeSent, c, c.probe_seq, pkt->probe.phi, pkt->probe.window);
  schedule_probe_timeout(c, c.probe_seq);
  send_control_packet(std::move(pkt));
}

void EdgeAgent::send_scout_probe(UfabConnection& c, std::int32_t path_idx) {
  auto pkt = sim::make_packet(simulator().packet_pool(), PacketKind::kProbe, c.pair, c.tenant, host_id(), c.dst_host,
                          sim::probe_wire_size(0));
  pkt->probe.scout = true;
  pkt->probe.phi = 0.0;
  pkt->probe.window = 0.0;
  pkt->probe.reg_key = registration_key(c, path_idx);
  pkt->probe.seq = c.scout_round;
  pkt->route = c.candidates[static_cast<std::size_t>(path_idx)].route;
  pkt->reverse_route = c.candidate_reverse[static_cast<std::size_t>(path_idx)].route;
  pkt->path_tag = PathId{path_idx};
  pkt->sent_at = simulator().now();
  pkt->ecn_capable = false;
  ++probes_sent_;
  probe_bytes_ += sim::probe_wire_size(static_cast<std::int32_t>(pkt->route.size()));
  record_event(obs::EventKind::kScoutSent, c, c.scout_round, static_cast<double>(path_idx), 0.0);
  send_control_packet(std::move(pkt));
}

void EdgeAgent::schedule_probe_timeout(UfabConnection& c, std::uint64_t seq) {
  const TimeNs deadline =
      simulator().now() + c.base_rtt.scaled(cfg_.probe_timeout_rtts);
  const VmPairId pair = c.pair;
  simulator().at(deadline, [this, pair, seq] {
    UfabConnection* conn = ufab_connection(pair);
    if (conn == nullptr || !conn->probe_outstanding || conn->probe_seq != seq) return;
    // Probe lost: the path is suspect. Retransmit with exponential backoff;
    // consecutive losses declare the path failed and force a migration (§4.1).
    ++probe_timeouts_;
    ++conn->probe_losses;
    conn->probe_outstanding = false;
    if (conn->probe_losses >= cfg_.probe_losses_to_migrate) {
      if (!conn->scouting) start_scouting(*conn);
      return;
    }
    const int shift = std::min(conn->probe_losses - 1, cfg_.probe_backoff_max_shift);
    const TimeNs wait =
        conn->base_rtt.scaled(cfg_.probe_backoff_rtts * static_cast<double>(1 << shift));
    ++probe_retransmits_;
    record_event(obs::EventKind::kProbeRetransmit, *conn, seq,
                 static_cast<double>(conn->probe_losses), 0.0);
    simulator().after(wait, [this, pair] {
      UfabConnection* c2 = ufab_connection(pair);
      // Skip if a newer probe went out meanwhile (demand arrival, cadence)
      // or the pair moved on to scouting.
      if (c2 != nullptr && !c2->probe_outstanding && !c2->scouting) send_probe(*c2);
    });
  });
}

void EdgeAgent::schedule_probe_floor(UfabConnection& c) {
  if (c.probe_floor_scheduled) return;
  c.probe_floor_scheduled = true;
  const VmPairId pair = c.pair;
  const TimeNs wake = simulator().now() + (cfg_.probe_mode == ProbeMode::kPeriodic
                                               ? c.base_rtt.scaled(cfg_.periodic_rtts)
                                               : c.base_rtt);
  simulator().at(wake, [this, pair] {
    UfabConnection* conn = ufab_connection(pair);
    if (conn == nullptr) return;
    conn->probe_floor_scheduled = false;
    if (!conn->probe_outstanding && (conn->has_backlog() || conn->inflight_bytes > 0)) {
      send_probe(*conn);
    }
  });
}

void EdgeAgent::on_control_packet(PacketPtr pkt) {
  switch (pkt->kind) {
    case PacketKind::kProbe:
      handle_probe_at_destination(std::move(pkt));
      return;
    case PacketKind::kFinishProbe:
      handle_finish_at_destination(std::move(pkt));
      return;
    case PacketKind::kProbeResponse:
      handle_response(std::move(pkt));
      return;
    default:
      return;  // credits etc. are not part of uFAB
  }
}

void EdgeAgent::handle_probe_at_destination(PacketPtr pkt) {
  double admitted = pkt->probe.phi;
  if (!pkt->probe.scout) {
    auto& entry = incoming_[pkt->pair.key()];
    const bool is_new = entry.last_seen == TimeNs::zero();
    entry.pair = pkt->pair;
    entry.requested = pkt->probe.phi;
    entry.last_seen = simulator().now();
    if (is_new) {
      // First sight: admit an equal share of the destination VM's tokens
      // until the next admission epoch refines it.
      int incoming_to_vm = 0;
      for (const auto& [key, in] : incoming_) {
        if (in.pair.dst == pkt->pair.dst) ++incoming_to_vm;
      }
      entry.admitted = vms().vm_tokens(pkt->pair.dst) / std::max(1, incoming_to_vm);
    }
    admitted = entry.admitted;
    ensure_token_timer();
  }

#if !defined(UFAB_OBS_DISABLED)
  if (obs_ != nullptr) {
    obs::TraceEvent ev;
    ev.at = simulator().now();
    ev.kind = obs::EventKind::kProbeEchoed;
    ev.track = obs::Track::host(host_id());
    ev.pair = pkt->pair;
    ev.tenant = pkt->tenant;
    ev.seq = pkt->probe.seq;
    ev.a = admitted;
    obs_->record(ev);
  }
#endif

  auto resp = sim::make_packet(simulator().packet_pool(), PacketKind::kProbeResponse, pkt->pair, pkt->tenant, host_id(),
                           pkt->src_host, pkt->size_bytes + 8);
  resp->probe = pkt->probe;
  resp->probe.phi_receiver = admitted;
  resp->telemetry = std::move(pkt->telemetry);
  resp->route = pkt->reverse_route;
  resp->path_tag = pkt->path_tag;
  resp->sent_at = pkt->sent_at;
  resp->ecn_capable = false;
  send_control_packet(std::move(resp));
}

void EdgeAgent::handle_finish_at_destination(PacketPtr pkt) {
  incoming_.erase(pkt->pair.key());
  auto resp = sim::make_packet(simulator().packet_pool(), PacketKind::kProbeResponse, pkt->pair, pkt->tenant, host_id(),
                           pkt->src_host, sim::kProbeBaseBytes);
  resp->probe = pkt->probe;  // carries the per-switch finish_acks count
  resp->route = pkt->reverse_route;
  resp->ecn_capable = false;
  send_control_packet(std::move(resp));
}

void EdgeAgent::handle_response(PacketPtr pkt) {
  UfabConnection* cp = ufab_connection(pkt->pair);
  if (cp == nullptr) return;
  UfabConnection& c = *cp;
  if (pkt->kind != PacketKind::kProbeResponse) return;

  if (pkt->probe.finish_acks > 0 && !pkt->probe.scout && pkt->probe.phi == 0.0 &&
      pkt->probe.window == 0.0 && pkt->telemetry.empty()) {
    // Finish-probe acknowledgment round trip.
    auto it = pending_finishes_.find(pkt->probe.reg_key);
    if (it != pending_finishes_.end() && pkt->probe.finish_acks >= it->second.expected_acks) {
      pending_finishes_.erase(it);
    }
    return;
  }
  if (pkt->probe.scout) {
    handle_scout_response(c, *pkt);
    return;
  }
  handle_data_response(c, *pkt);
}

// ---------------------------------------------------------------------------
// Control laws (Eqns 1-3 + two-stage admission)
// ---------------------------------------------------------------------------

EdgeAgent::PathEvaluation EdgeAgent::evaluate_path(UfabConnection& c, const sim::Packet& resp,
                                                   bool include_self) {
  PathEvaluation ev{kInf, kInf, kInf, true, true, 0.0};
  const double phi = c.phi();
  const double t_ns = static_cast<double>(c.base_rtt.ns());

  for (const sim::IntRecord& rec : resp.telemetry) {
    const double c_target = rec.capacity.bits_per_sec() * cfg_.eta;

    // When evaluating a *candidate* path (include_self == false), links the
    // candidate shares with the current path — the host downlink, typically —
    // already carry this pair's registration. Subtract it, or the pair would
    // double-count itself and never find a qualified migration target.
    double phi_reg = rec.phi_total;
    double w_reg = rec.window_total;
    if (!include_self && c.registered) {
      for (const LinkId shared : c.current_path().links) {
        if (shared == rec.link) {
          phi_reg = std::max(0.0, phi_reg - c.reg_phi);
          w_reg = std::max(0.0, w_reg - c.reg_window);
          break;
        }
      }
    }

    // TX rate: differentiate consecutive cumulative-byte samples (HPCC
    // style); fall back to the switch's own short-window estimate when no
    // prior sample exists or the record was wire-quantized (the Appendix-G
    // format carries the rate directly, not a byte counter).
    double tx_bps = rec.tx_rate_hint.bits_per_sec();
    auto& sample = c.link_samples[rec.link.value()];
    if (rec.tx_bytes_cum > 0 && sample.stamp != TimeNs::zero() && rec.stamp > sample.stamp) {
      const double dt_ns = static_cast<double>((rec.stamp - sample.stamp).ns());
      tx_bps = static_cast<double>(rec.tx_bytes_cum - sample.tx_bytes) * 8e9 / dt_ns;
    }
    // Switch state-loss detection: Φ_l is a sum of registered tokens and can
    // only fall by what deregisters. A collapse bigger than both the pair's
    // own φ and a large fraction of the previous reading means the register
    // bank was wiped (switch reboot) and is rebuilding from re-registration
    // probes — Eqn 1-3 shares computed from it are transiently inflated.
    if (include_self && c.registered && sample.phi_total >= 0.0) {
      const double drop = sample.phi_total - rec.phi_total;
      if (drop > std::max(c.reg_phi, cfg_.phi_discontinuity_frac * sample.phi_total)) {
        ev.phi_discontinuity = true;
      }
    }
    sample = {rec.tx_bytes_cum, rec.stamp, rec.phi_total};

    const double t_sec = t_ns / 1e9;
    const double claim_rate = c.window / t_sec;  // this pair's rate claim, B/s
    const double phi_l = include_self ? std::max(phi_reg, phi) : phi_reg;
    const double rate_sum = include_self ? std::max(w_reg, claim_rate) : w_reg;
    const double share = phi / std::max(phi_l, 1.0);

    // Eqn (1): proportional guaranteed share.
    const double r_l = share * c_target;

    // Eqns (2)-(3) in the rate domain: the pair's allocation is its token
    // share of the aggregate claimed rate, scaled by the utilization gap
    // (queue converted to rate surplus over one RTT), capped at the link's
    // target rate; the admission window is that rate x baseRTT.
    const double cap_rate = c_target / 8.0;  // bytes/s
    const double inflight_rate =
        tx_bps / 8.0 + static_cast<double>(rec.queue_bytes) / t_sec;
    const double factor = cap_rate / std::max(inflight_rate, 1.0);
    const double w_l = std::min(share * rate_sum * factor, cap_rate) * t_sec;

    ev.r_bps = std::min(ev.r_bps, r_l);
    ev.w_bytes = std::min(ev.w_bytes, w_l);
    // Qualification (B_u = 1: tokens are bps).
    if (c_target < phi_l) ev.qualified = false;
    if (c_target < phi_reg + phi) ev.qualified_as_new = false;
    ev.subscription_ratio = std::max(ev.subscription_ratio, (phi_reg + phi) / c_target);
  }
  if (resp.telemetry.empty()) {
    ev.w_bytes = c.window;
    ev.r_bps = c.r_path_bps;
  }
  ev.R_bps = ev.w_bytes * 8e9 / t_ns;
  return ev;
}

void EdgeAgent::apply_two_stage(UfabConnection& c, const PathEvaluation& eval) {
  if (!cfg_.two_stage_admission) {
    c.bootstrap = false;
    c.window = std::max(eval.w_bytes, window_floor(c));
    return;
  }
  if (c.bootstrap) {
    // Stage 1: additive increase by the pair's capacity share per RTT.
    c.w_stage += bytes_for(eval.r_bps, c.base_rtt);
    if (c.w_stage >= eval.w_bytes) {
      c.bootstrap = false;
      c.window = eval.w_bytes;
    } else {
      c.window = c.w_stage;
    }
  } else {
    c.window = eval.w_bytes;
  }
  c.window = std::max(c.window, window_floor(c));
}

void EdgeAgent::handle_data_response(UfabConnection& c, const sim::Packet& pkt) {
  if (pkt.probe.seq != c.probe_seq) return;  // stale response
  c.probe_outstanding = false;
  c.probe_losses = 0;
  c.last_response_at = simulator().now();
  if (cfg_.record_response_times) c.response_times.push_back(simulator().now());

  if (pkt.probe.phi_receiver > 0.0) {
    c.phi_r = pkt.probe.phi_receiver;
    c.phi_r_known = true;
  }

  const TimeNs now = simulator().now();
  const double old_window = c.window;
  const PathEvaluation eval = evaluate_path(c, pkt, /*include_self=*/true);

  // --- failure handling ---
  // Telemetry freshness: INT stamped many RTTs in the past means the switch
  // view is frozen (fault or wedged pipeline); Eqns 1-3 computed from it
  // would admit against a world that no longer exists.
  bool stale = false;
  if (!pkt.telemetry.empty()) {
    TimeNs oldest = TimeNs::max();
    for (const sim::IntRecord& rec : pkt.telemetry) oldest = std::min(oldest, rec.stamp);
    stale = now - oldest > c.base_rtt.scaled(cfg_.telemetry_stale_rtts);
  }
  if (stale) {
    ++stale_telemetry_events_;
    record_event(obs::EventKind::kStaleTelemetry, c, pkt.probe.seq, 0.0, 0.0);
  }
  if (eval.phi_discontinuity) {
    // A switch on the path lost its register state. This probe already
    // re-registered the pair there, but Φ_l/W_l reflect only the pairs that
    // have re-probed since the wipe, so shares are transiently inflated.
    ++state_losses_detected_;
    record_event(obs::EventKind::kStateLossDetected, c, pkt.probe.seq, 0.0, 0.0);
    c.guarantee_only_until = now + c.base_rtt.scaled(cfg_.reregister_hold_rtts);
  }
  const bool degraded = stale || now < c.guarantee_only_until;
  if (degraded) {
    // Guarantee-only window: admit exactly the pair's token BDP. The
    // guarantee needs no telemetry to be safe (§3.3: r >= φ by contract);
    // work conservation resumes once trustworthy telemetry returns.
    ++guarantee_degradations_;
    record_event(obs::EventKind::kGuaranteeDegraded, c, pkt.probe.seq, 0.0, 0.0);
    c.r_path_bps = c.phi();
    c.R_est_bps = c.phi();
    c.window = std::max(bytes_for(c.phi(), c.base_rtt), window_floor(c));
    if (cfg_.two_stage_admission) {
      c.bootstrap = true;  // re-enter the additive ramp when recovering
      c.w_stage = c.window;
    }
  } else {
    c.r_path_bps = eval.r_bps;
    c.R_est_bps = eval.R_bps;
    c.path_qualified = eval.qualified;
    apply_two_stage(c, eval);
  }
  // Which term of Eqns 1-3 (or which fallback) bound this window; the order
  // mirrors the branches above (degraded wins, then the bootstrap ramp).
  obs::WindowBound bound = obs::WindowBound::kEqn3;
  if (degraded) {
    bound = obs::WindowBound::kGuaranteeOnly;
  } else if (c.bootstrap) {
    bound = obs::WindowBound::kBootstrapRamp;
  } else if (c.window <= window_floor(c)) {
    bound = obs::WindowBound::kFloor;
  }
  record_event(obs::EventKind::kWindowUpdate, c, pkt.probe.seq, old_window, c.window,
               static_cast<std::uint8_t>(bound));

  // Violations drive migration; frozen telemetry says nothing about the
  // path, so it must not trigger (or reset) the violation counter.
  if (!stale) note_violation(c, !eval.qualified);

  // Probe cadence (§4.1): self-clocked on L_m transmitted bytes, which
  // bounds the overhead at ~L_p/(L_p+L_m) regardless of the pair count
  // (Fig. 15b). A one-RTT floor applies only while the pair is ramping
  // (bootstrap) or its guarantee is violated — transient states that need
  // per-RTT feedback. Periodic mode (Fig. 18c ablation) probes every
  // `periodic_rtts` instead.
  if (eval.phi_discontinuity) {
    // Re-registration probe: rebuild the wiped registers at once instead of
    // waiting out the L_m byte cadence.
    ++reregistrations_;
    send_probe(c);
  } else if (c.has_backlog() || c.inflight_bytes > 0) {
    if (cfg_.probe_mode == ProbeMode::kPeriodic) {
      schedule_probe_floor(c);
    } else if (c.bytes_sent_total - c.bytes_at_last_probe >= cfg_.probe_interval_bytes) {
      send_probe(c);
    } else if (c.bootstrap || c.violations > 0 || !c.path_qualified || degraded) {
      schedule_probe_floor(c);
    }
  }
  kick();
}

// ---------------------------------------------------------------------------
// Path migration (§3.5)
// ---------------------------------------------------------------------------

void EdgeAgent::note_violation(UfabConnection& c, bool violated) {
  if (!violated) {
    c.violations = 0;
    return;
  }
  ++c.violations;
  if (c.violations >= cfg_.violation_threshold && !c.scouting &&
      simulator().now() >= c.no_migrate_until && c.candidates.size() > 1) {
    start_scouting(c);
  }
}

void EdgeAgent::start_scouting(UfabConnection& c, bool include_current) {
  c.scouting = true;
  ++c.scout_round;
  c.scout_results.clear();
  // Scout up to `scout_paths` distinct candidates other than the current one
  // (plus the current path itself when choosing an initial placement).
  std::vector<std::int32_t> order;
  for (std::int32_t i = 0; i < static_cast<std::int32_t>(c.candidates.size()); ++i) {
    if (i != c.path_idx || include_current) order.push_back(i);
  }
  for (std::size_t i = 0; i + 1 < order.size(); ++i) {
    const auto j = i + static_cast<std::size_t>(rng().below(order.size() - i));
    std::swap(order[i], order[j]);
  }
  const std::size_t cap = include_current ? order.size() : cfg_.scout_paths;
  if (order.size() > cap) order.resize(cap);
  c.scouts_pending = static_cast<int>(order.size());
  if (c.scouts_pending == 0) {
    c.scouting = false;
    return;
  }
  for (const std::int32_t idx : order) send_scout_probe(c, idx);

  // Scout responses that never return should not wedge the state machine.
  const VmPairId pair = c.pair;
  const std::uint64_t round = c.scout_round;
  simulator().after(c.base_rtt.scaled(cfg_.probe_timeout_rtts), [this, pair, round] {
    UfabConnection* conn = ufab_connection(pair);
    if (conn != nullptr && conn->scouting && conn->scout_round == round) {
      finish_scouting(*conn);
    }
  });
}

void EdgeAgent::handle_scout_response(UfabConnection& c, const sim::Packet& pkt) {
  if (!c.scouting || pkt.probe.seq != c.scout_round) return;
  const PathEvaluation eval = evaluate_path(c, pkt, /*include_self=*/false);
  c.scout_results.push_back(UfabConnection::ScoutResult{
      pkt.path_tag.value(), eval.qualified_as_new, eval.subscription_ratio, eval.R_bps});
  if (--c.scouts_pending <= 0) finish_scouting(c);
}

void EdgeAgent::finish_scouting(UfabConnection& c) {
  c.scouting = false;
  c.scouts_pending = 0;

  std::int32_t best = -1;
  double best_ratio = kInf;
  for (const auto& s : c.scout_results) {
    if (s.qualified && s.subscription_ratio < best_ratio) {
      best_ratio = s.subscription_ratio;
      best = s.path_idx;
    }
  }
  const bool path_dead = c.probe_losses >= cfg_.probe_losses_to_migrate;
  if (best < 0 && path_dead) {
    // The current path is unusable: move to the least-subscribed candidate
    // even if it cannot serve every guarantee.
    for (const auto& s : c.scout_results) {
      if (s.subscription_ratio < best_ratio) {
        best_ratio = s.subscription_ratio;
        best = s.path_idx;
      }
    }
  }
  if (best >= 0 && best != c.path_idx) migrate_to(c, best);
  c.violations = 0;
  c.probe_losses = 0;
  // Freeze window: at most one migration per random [1, N]-RTT window (§3.5,
  // "avoiding oscillations").
  const auto rtts = rng().range(1, cfg_.freeze_window_max_rtts);
  c.no_migrate_until = simulator().now() + c.base_rtt * rtts;
  if (path_dead && best < 0 && !c.probe_outstanding) send_probe(c);
}

void EdgeAgent::migrate_to(UfabConnection& c, std::int32_t path_idx) {
  ++migrations_;
  record_event(obs::EventKind::kPathMigration, c, c.probe_seq,
               static_cast<double>(c.path_idx), static_cast<double>(path_idx));
  if (c.registered) {
    send_finish_probe(c, c.path_idx, c.reg_key, cfg_.finish_probe_retries);
  }
  c.path_idx = path_idx;
  c.reg_key = registration_key(c, path_idx);
  c.registered = false;
  c.reg_phi = 0.0;
  c.reg_window = 0.0;
  c.link_samples.clear();

  // Re-enter bootstrap on the new path (Scenario 2).
  if (cfg_.two_stage_admission) {
    c.bootstrap = true;
    c.w_stage = std::max(bytes_for(std::max(c.phi(), c.r_path_bps), c.base_rtt),
                         window_floor(c));
    c.window = c.w_stage;
  }
  if (cfg_.reorder_free_migration) {
    // Probe-only first RTT on the new path: packets on the old path drain.
    c.data_blocked_until = simulator().now() + c.base_rtt;
  }
  c.probe_outstanding = false;
  send_probe(c);
}

void EdgeAgent::send_finish_probe(UfabConnection& c, std::int32_t path_idx,
                                  std::uint64_t reg_key, int retries_left) {
  const auto& path = c.candidates.at(static_cast<std::size_t>(path_idx));
  auto pkt = sim::make_packet(simulator().packet_pool(), PacketKind::kFinishProbe, c.pair, c.tenant, host_id(), c.dst_host,
                          sim::kProbeBaseBytes);
  pkt->probe.reg_key = reg_key;
  pkt->probe.phi = 0.0;
  pkt->probe.window = 0.0;
  pkt->route = path.route;
  pkt->reverse_route = c.candidate_reverse.at(static_cast<std::size_t>(path_idx)).route;
  pkt->ecn_capable = false;
  pending_finishes_[reg_key] =
      PendingFinish{static_cast<std::int32_t>(path.route.size()), retries_left};
  record_event(obs::EventKind::kFinishSent, c, reg_key, static_cast<double>(retries_left), 0.0);
  send_control_packet(std::move(pkt));

  // The paper retries the finish probe until every switch acknowledged; we
  // back off exponentially so retries ride out multi-ms path outages before
  // finally deferring to the core's silent-quit sweep.
  const VmPairId pair = c.pair;
  const int backoff_shift = std::max(0, cfg_.finish_probe_retries - retries_left);
  const TimeNs retry_at = c.base_rtt * (2LL << std::min(backoff_shift, 8));
  simulator().after(retry_at, [this, pair, path_idx, reg_key, retries_left] {
    auto it = pending_finishes_.find(reg_key);
    if (it == pending_finishes_.end()) return;  // acknowledged
    pending_finishes_.erase(it);
    if (retries_left <= 1) {
      // Budget exhausted: abandon leak-free (the pending entry is gone) and
      // let the core's silent-quit sweep reclaim the registration.
      ++finish_abandoned_;
      return;
    }
    UfabConnection* conn = ufab_connection(pair);
    if (conn != nullptr) {
      ++finish_retries_;
      send_finish_probe(*conn, path_idx, reg_key, retries_left - 1);
    }
  });
}

// ---------------------------------------------------------------------------
// Token epochs (Guarantee Partitioning, Appendix E)
// ---------------------------------------------------------------------------

void EdgeAgent::ensure_token_timer() {
  if (token_timer_running_) return;
  token_timer_running_ = true;
  simulator().after(cfg_.token_update_period, [this] {
    token_timer_running_ = false;
    token_epoch();
  });
}

void EdgeAgent::token_epoch() {
  const TimeNs now = simulator().now();
  const double period_ns = static_cast<double>(cfg_.token_update_period.ns());

  // --- Sender side: Algorithm 1 TOKENASSIGNMENT per local VM ---
  std::unordered_map<std::int32_t, std::vector<UfabConnection*>> by_vm;
  for (transport::Connection* conn : conn_order_) {
    auto* c = static_cast<UfabConnection*>(conn);
    const bool active = c->registered || c->has_backlog() || c->inflight_bytes > 0;
    if (active) by_vm[c->pair.src.value()].push_back(c);

    // Idle pairs eventually deregister with an explicit finish probe (§3.6).
    if (c->registered && !c->has_backlog() && c->inflight_bytes == 0 &&
        now - c->last_activity > cfg_.idle_finish_timeout) {
      send_finish_probe(*c, c->path_idx, c->reg_key, cfg_.finish_probe_retries);
      c->registered = false;
      c->reg_phi = 0.0;
      c->reg_window = 0.0;
    }
  }
  for (auto& [vm, conns] : by_vm) {
    std::vector<SenderPairView> views(conns.size());
    for (std::size_t i = 0; i < conns.size(); ++i) {
      UfabConnection* c = conns[i];
      const double measured_bps =
          static_cast<double>(c->bytes_sent_total - c->bytes_at_epoch) * 8e9 / period_ns;
      c->bytes_at_epoch = c->bytes_sent_total;
      views[i].demand_tokens = c->has_backlog() ? kUnboundedDemand : measured_bps;
      views[i].receiver_tokens = c->phi_r;
      views[i].receiver_known = c->phi_r_known;
    }
    assign_tokens(vms().vm_tokens(VmId{vm}), views);
    for (std::size_t i = 0; i < conns.size(); ++i) conns[i]->phi_s = views[i].assigned;
  }

  // --- Receiver side: Algorithm 1 TOKENADMISSION per local VM ---
  std::unordered_map<std::int32_t, std::vector<IncomingPair*>> by_dst_vm;
  for (auto it = incoming_.begin(); it != incoming_.end();) {
    if (now - it->second.last_seen > 2 * cfg_.idle_finish_timeout) {
      it = incoming_.erase(it);
    } else {
      by_dst_vm[it->second.pair.dst.value()].push_back(&it->second);
      ++it;
    }
  }
  for (auto& [vm, entries] : by_dst_vm) {
    std::vector<ReceiverPairView> views(entries.size());
    for (std::size_t i = 0; i < entries.size(); ++i) {
      views[i].requested_tokens = entries[i]->requested;
    }
    admit_tokens(vms().vm_tokens(VmId{vm}), views);
    for (std::size_t i = 0; i < entries.size(); ++i) entries[i]->admitted = views[i].admitted;
  }

  if (!conn_order_.empty() || !incoming_.empty()) ensure_token_timer();
}

}  // namespace ufab::edge

// Analytic hardware resource model (Tables 3 and 4).
//
// The paper reports FPGA (Xilinx Alveo U200) utilization for uFAB-E and
// Tofino utilization for uFAB-C. Absolute synthesis results cannot be
// reproduced without the chips; what *can* be reproduced is the state-size
// arithmetic behind them — how much memory each module needs as a function
// of supported VM pairs / tenants, normalized by the device budgets — and
// the paper's scaling claim that uFAB-C grows only slightly with the number
// of VM pairs (its per-pair state is just Bloom-filter bits).
#pragma once

#include <string>
#include <vector>

namespace ufab::edge {

/// One row of Table 3: per-module utilization on an Alveo-U200-class device.
struct EdgeResourceRow {
  std::string module;
  double lut_pct;
  double registers_pct;
  double bram_pct;
  double uram_pct;
};

/// uFAB-E resource table for a given scale (paper: 8K pairs, 1K tenants).
std::vector<EdgeResourceRow> edge_resource_table(int vm_pairs = 8192, int tenants = 1024);

/// One row of Table 4: per-resource-type utilization on a Tofino-class chip.
struct CoreResourceRow {
  std::string resource;
  double pct;
};

/// uFAB-C resource table for a given number of distinct VM pairs
/// (paper columns: 20K, 40K, 80K).
std::vector<CoreResourceRow> core_resource_table(int vm_pairs);

}  // namespace ufab::edge

#include "src/ufab/resource_model.hpp"

#include <algorithm>
#include <cmath>

namespace ufab::edge {

namespace {
// Alveo U200 budgets (from the device datasheet).
constexpr double kLutTotal = 1'182'000;
constexpr double kRegTotal = 2'364'000;
constexpr double kBramBits = 75.9e6;   // 2160 x 36 Kb
constexpr double kUramBits = 270.0e6;  // 960 x 288 Kb

// Per-entry state sizes (bits), from the uFAB-E design (§4.1):
// context table: tokens, windows, path ids, probe state, per-link samples.
constexpr double kContextBitsPerPair = 1024;
// path monitor: 8 candidate paths x (route + quality stats).
constexpr double kPathBitsPerPair = 1200;
// packet scheduler: per-pair queue descriptors + 8 weighted VF queues.
constexpr double kSchedBitsPerPair = 192;
constexpr double kSchedBitsPerTenant = 512;
}  // namespace

std::vector<EdgeResourceRow> edge_resource_table(int vm_pairs, int tenants) {
  const double pairs = vm_pairs;
  const double tens = tenants;

  // Logic (LUT/FF) costs are dominated by fixed pipeline structure and grow
  // only logarithmically with table sizes (wider addresses/muxes); memory
  // grows linearly with the state arithmetic above. Constants are calibrated
  // so the paper's operating point (8K pairs / 1K tenants) reproduces the
  // magnitudes of Table 3.
  const double addr_scale = std::log2(std::max(2.0, pairs)) / std::log2(8192.0);

  std::vector<EdgeResourceRow> rows;
  rows.push_back({"Packet Scheduler", 0.8 * addr_scale, 1.1 * addr_scale,
                  100.0 * (kSchedBitsPerPair * pairs * 0.1) / kBramBits,
                  100.0 * (kSchedBitsPerPair * pairs + kSchedBitsPerTenant * tens) / kUramBits});
  rows.push_back({"Context Tables", 0.2, 0.2,
                  100.0 * (kContextBitsPerPair * pairs * 0.4) / kBramBits,
                  100.0 * (kContextBitsPerPair * pairs * 0.8) / kUramBits});
  rows.push_back({"Path Monitor", 0.9 * addr_scale, 0.7 * addr_scale,
                  100.0 * (kPathBitsPerPair * pairs * 0.37) / kBramBits,
                  100.0 * (kPathBitsPerPair * pairs * 0.17) / kUramBits});
  rows.push_back({"TX/RX pipes", 0.3, 0.1, 1.2, 0.0});
  rows.push_back({"Vendor Modules", 5.5, 3.6, 5.0, 0.0});

  EdgeResourceRow total{"Total", 0, 0, 0, 0};
  for (const auto& r : rows) {
    total.lut_pct += r.lut_pct;
    total.registers_pct += r.registers_pct;
    total.bram_pct += r.bram_pct;
    total.uram_pct += r.uram_pct;
  }
  rows.push_back(total);
  return rows;
}

std::vector<CoreResourceRow> core_resource_table(int vm_pairs) {
  // Fixed pipeline costs (parsing, INT insertion, register ALUs) do not
  // depend on the pair count; only the Bloom filter SRAM scales, at ~8 bits
  // of (counting) filter per supported pair across both banks.
  constexpr double kSramFixedPct = 16.87;
  constexpr double kSramPctPerPair = 0.021 / 1000.0;  // % per pair
  const double sram = kSramFixedPct + kSramPctPerPair * vm_pairs;
  // Hash bits grow (negligibly) with the key space.
  const double hash = 17.01 + 0.02 * std::log2(std::max(2, vm_pairs)) / 16.0;

  return {
      {"Match Crossbar", 8.64},
      {"SRAM", sram},
      {"TCAM", 6.25},
      {"VLIW Actions", 18.23},
      {"Hash Bits", hash},
      {"Stateful ALUs", 47.92},
      {"Packet Header Vector", 20.05},
  };
}

}  // namespace ufab::edge

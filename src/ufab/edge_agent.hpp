// uFAB-E: the active edge (sections 3.3-3.5, 4.1).
//
// EdgeAgent is the per-host transport stack implementing the paper's control
// laws on top of the shared transport framework:
//
//  * Hierarchical bandwidth allocation (Eqns 1-3): every probe response
//    carries per-link (Phi_l, W_l, tx_l, q_l, C_l); the edge derives the
//    guaranteed share r = min_l (phi/Phi_l)*C_l and the admission window
//        w^l = min{ (phi/Phi_l) * W_l * (C_l*T)/(tx_l*T + q_l),  C_l*T }
//    taking the min over links on the path.
//  * Two-stage traffic admission (§3.4): a joining/bursting pair bootstraps
//    at its guarantee BDP and additively increases by its capacity share per
//    RTT until the Eqn-3 window takes over, bounding inflight at 3x BDP.
//  * Path migration (§3.5): 5 consecutive subscription violations trigger
//    scout probes over candidate paths; the pair moves to a qualified path
//    (C_l >= (Phi_l + phi)*B_u on every link) with minimum subscription,
//    then freezes migration for a random [1, N]-RTT window.
//  * Scalable probing (§4.1): self-clocked, at most one probe outstanding
//    per pair, next probe after L_m transmitted bytes (with a 1-RTT floor
//    while backlogged), giving the bounded overhead of Fig. 15b.
//  * Guarantee Partitioning (§6, Appendix E): a periodic token epoch runs
//    Algorithm 1 on both sides; receiver-admitted tokens return in probe
//    responses.
//  * Hierarchical WFQ across VFs at the NIC (§4.1), 8 weight levels.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "src/transport/transport.hpp"
#include "src/ufab/wfq.hpp"

namespace ufab::obs {
enum class EventKind : std::uint8_t;
}  // namespace ufab::obs

namespace ufab::edge {

enum class ProbeMode {
  kAdaptive,  ///< Next probe after min(L_m bytes sent, 1 base RTT). Default.
  kPeriodic,  ///< Fixed cadence of `periodic_rtts` (Fig. 18c ablation).
};

struct EdgeConfig {
  /// Target utilization eta; C_l used by the edge is eta * physical.
  double eta = 0.95;
  /// L_m: payload bytes between probes (4 KB bounds overhead at 1.28%).
  std::int64_t probe_interval_bytes = 4096;
  ProbeMode probe_mode = ProbeMode::kAdaptive;
  double periodic_rtts = 2.0;
  /// Token (Guarantee Partitioning) epoch, 32 us in the paper's testbed.
  TimeNs token_update_period = TimeNs{32'000};
  /// Consecutive violating responses (~RTTs) before migrating (§3.5).
  int violation_threshold = 5;
  /// Migration freeze window upper bound N: random [1, N] RTTs.
  int freeze_window_max_rtts = 10;
  /// Probe considered lost after this many base RTTs (§4.1: 8).
  double probe_timeout_rtts = 8.0;
  /// Consecutive probe losses that declare the path dead.
  int probe_losses_to_migrate = 2;
  /// Candidate paths scouted per migration attempt.
  std::size_t scout_paths = 4;
  /// Disable for uFAB' (no bounded-latency optimization, Fig. 12).
  bool two_stage_admission = true;
  /// Optional reorder-free migration: probe-only first RTT on the new path.
  bool reorder_free_migration = false;
  /// Send a finish probe after this much sender idleness. Short timeouts
  /// matter under bursty many-flow workloads: a lingering registration keeps
  /// reserving Phi_l on five links per idle pair.
  TimeNs idle_finish_timeout = TimeNs{1'000'000};  // 1 ms
  /// Observation time before a work-conservation migration (30 s in paper).
  TimeNs wc_migration_observe = TimeNs{30'000'000'000};
  /// Required gain for a work-conservation migration.
  double wc_migration_gain = 1.2;
  /// Window floor in bytes (keeps progress under extreme contention).
  double min_window_bytes = 3000.0;
  /// WFQ base weight (tokens mapped to level 0) and quantum.
  double wfq_base_weight = 5e8;
  std::int32_t wfq_quantum = 1500;
  /// Record per-connection probe-response arrival times (Appendix D study).
  bool record_response_times = false;
  // --- failure handling (exercised by the src/faults fault plane) ---
  /// Exponential-backoff base for probe retransmission after a timeout: the
  /// k-th consecutive loss waits baseRTT * probe_backoff_rtts * 2^(k-1)
  /// before resending (immediate resends hammer a path exactly while it is
  /// sick, and under probe-class loss the resend storm alone would defeat
  /// the overhead bound of §4.1).
  double probe_backoff_rtts = 1.0;
  /// Cap on the backoff exponent (bounds the longest retransmit wait).
  int probe_backoff_max_shift = 6;
  /// Telemetry stamped older than this many base RTTs is stale (frozen INT,
  /// wedged switch clock): fall back to the guarantee-only window instead
  /// of feeding garbage into Eqns 1-3.
  double telemetry_stale_rtts = 8.0;
  /// A Φ_l drop on a current-path link exceeding this fraction of the last
  /// reading (and exceeding the pair's own φ) signals switch state loss.
  double phi_discontinuity_frac = 0.5;
  /// Hold the guarantee-only window this many RTTs after a detected state
  /// loss while re-registration probes rebuild Φ_l/W_l at the switch.
  double reregister_hold_rtts = 3.0;
  /// Finish-probe retry budget; exhaustion abandons the deregistration to
  /// the core's silent-quit sweep (leak-free: no pending state remains).
  int finish_probe_retries = 10;
  /// Scout candidate paths at join time and start on a qualified one (§3.5).
  /// Disabled by the Fig. 18 sensitivity study to isolate violation-driven
  /// migration dynamics.
  bool initial_placement_scouting = true;
};

/// Per-VM-pair uFAB state on top of the generic connection.
struct UfabConnection : transport::Connection {
  // --- tokens (1 token = 1 bps) ---
  double phi_s = 0.0;       ///< Sender-assigned (Algorithm 1).
  double phi_r = 0.0;       ///< Receiver-admitted, from probe responses.
  bool phi_r_known = false;
  [[nodiscard]] double phi() const { return phi_r_known ? std::min(phi_s, phi_r) : phi_s; }

  // --- admission windows (bytes) ---
  double window = 0.0;   ///< Effective admission window.
  double w_stage = 0.0;  ///< Bootstrap additive window (two-stage stage 1).
  bool bootstrap = true;
  double r_path_bps = 0.0;  ///< Eqn 1 guaranteed share along the path.
  double R_est_bps = 0.0;   ///< Achievable-rate estimate (work conservation).
  bool path_qualified = true;
  TimeNs data_blocked_until = TimeNs::zero();  ///< Reorder-free migration gate.

  // --- probing ---
  bool probe_outstanding = false;
  TimeNs probe_sent_at = TimeNs::zero();
  std::uint64_t probe_seq = 0;
  std::int64_t bytes_at_last_probe = 0;
  int probe_losses = 0;
  TimeNs last_response_at = TimeNs::zero();
  bool probe_floor_scheduled = false;
  /// Per-link telemetry samples: cumulative TX bytes + stamp for HPCC-style
  /// rate differentiation, and the last observed Φ_l for switch state-loss
  /// detection (a register discontinuity means the switch rebooted).
  struct LinkSample {
    std::int64_t tx_bytes = 0;
    TimeNs stamp;
    double phi_total = -1.0;  ///< <0 means no previous reading.
  };
  std::unordered_map<std::int32_t, LinkSample> link_samples;
  /// While now < this, only the guarantee window is admitted (recovery from
  /// switch state loss or stale telemetry).
  TimeNs guarantee_only_until = TimeNs::zero();

  // --- switch registration ---
  std::uint64_t reg_key = 0;
  double reg_phi = 0.0;
  double reg_window = 0.0;
  bool registered = false;

  // --- migration ---
  int violations = 0;
  TimeNs no_migrate_until = TimeNs::zero();
  bool scouting = false;
  std::uint64_t scout_round = 0;
  struct ScoutResult {
    std::int32_t path_idx;
    bool qualified;
    double subscription_ratio;  ///< max_l (Phi_l + phi) / C_l.
    double R_bps;
  };
  std::vector<ScoutResult> scout_results;
  int scouts_pending = 0;
  // Work-conservation migration bookkeeping.
  TimeNs better_path_since = TimeNs::max();
  std::int32_t better_path_idx = -1;

  // --- token-epoch accounting ---
  std::int64_t bytes_at_epoch = 0;
  TimeNs epoch_started = TimeNs::zero();

  /// Probe-response arrival log (only with EdgeConfig::record_response_times).
  std::vector<TimeNs> response_times;
};

class EdgeAgent : public transport::TransportStack {
 public:
  EdgeAgent(topo::Network& net, const harness::VmMap& vms, HostId host,
            EdgeConfig cfg = {}, transport::TransportOptions topts = {}, Rng rng = Rng{1});

  // --- observability ---
  void attach_obs(obs::Obs& obs) override;
  [[nodiscard]] std::int64_t migrations() const { return migrations_; }
  [[nodiscard]] std::int64_t probes_sent() const { return probes_sent_; }
  [[nodiscard]] std::int64_t probe_bytes_sent() const { return probe_bytes_; }
  [[nodiscard]] std::int64_t probe_timeouts() const { return probe_timeouts_; }
  [[nodiscard]] std::int64_t probe_retransmits() const { return probe_retransmits_; }
  [[nodiscard]] std::int64_t state_losses_detected() const { return state_losses_detected_; }
  [[nodiscard]] std::int64_t reregistrations() const { return reregistrations_; }
  [[nodiscard]] std::int64_t stale_telemetry_events() const { return stale_telemetry_events_; }
  [[nodiscard]] std::int64_t guarantee_degradations() const { return guarantee_degradations_; }
  [[nodiscard]] std::int64_t finish_retries() const { return finish_retries_; }
  [[nodiscard]] std::int64_t finish_abandoned() const { return finish_abandoned_; }
  [[nodiscard]] std::size_t pending_finish_count() const { return pending_finishes_.size(); }
  [[nodiscard]] const EdgeConfig& config() const { return cfg_; }
  /// uFAB state of a pair's connection (nullptr if absent).
  [[nodiscard]] UfabConnection* ufab_connection(VmPairId pair);

 protected:
  std::unique_ptr<transport::Connection> make_connection() override;
  void on_connection_created(transport::Connection& conn) override;
  bool can_send(const transport::Connection& conn) const override;
  void on_data_sent(transport::Connection& conn, const sim::Packet& pkt) override;
  void on_demand_arrived(transport::Connection& conn) override;
  void on_control_packet(sim::PacketPtr pkt) override;
  transport::Connection* next_sender() override;

 private:
  // --- probing ---
  void send_probe(UfabConnection& c);
  void send_scout_probe(UfabConnection& c, std::int32_t path_idx);
  void schedule_probe_timeout(UfabConnection& c, std::uint64_t seq);
  void schedule_probe_floor(UfabConnection& c);
  void handle_probe_at_destination(sim::PacketPtr pkt);
  void handle_finish_at_destination(sim::PacketPtr pkt);
  void handle_response(sim::PacketPtr pkt);
  void handle_data_response(UfabConnection& c, const sim::Packet& pkt);
  void handle_scout_response(UfabConnection& c, const sim::Packet& pkt);

  // --- control laws ---
  struct PathEvaluation {
    double w_bytes;      ///< Eqn 3 window, min over links.
    double r_bps;        ///< Eqn 1 guaranteed share, min over links.
    double R_bps;        ///< Achievable-rate estimate.
    bool qualified;      ///< C_l >= Phi_l * B_u on all links.
    bool qualified_as_new;  ///< C_l >= (Phi_l + phi) * B_u on all links.
    double subscription_ratio;
    /// Φ_l collapsed versus the previous reading on some current-path link:
    /// a switch lost its register state (reboot / warm restart).
    bool phi_discontinuity = false;
  };
  PathEvaluation evaluate_path(UfabConnection& c, const sim::Packet& response,
                               bool update_samples);
  void apply_two_stage(UfabConnection& c, const PathEvaluation& eval);

  // --- migration ---
  void note_violation(UfabConnection& c, bool violated);
  void start_scouting(UfabConnection& c, bool include_current = false);
  void finish_scouting(UfabConnection& c);
  void migrate_to(UfabConnection& c, std::int32_t path_idx);
  void send_finish_probe(UfabConnection& c, std::int32_t path_idx, std::uint64_t reg_key,
                         int retries_left);

  // --- tokens / registration ---
  void token_epoch();
  void ensure_token_timer();
  [[nodiscard]] std::uint64_t registration_key(const UfabConnection& c,
                                               std::int32_t path_idx) const;
  /// Flight-recorder helper for control-plane events on this host's track.
  void record_event(obs::EventKind kind, const UfabConnection& c, std::uint64_t seq,
                    double a, double b, std::uint8_t detail = 0);
  [[nodiscard]] double window_floor(const UfabConnection& c) const;
  [[nodiscard]] static double bytes_for(double bps, TimeNs t) {
    return bps * static_cast<double>(t.ns()) / 8e9;
  }

  /// In-flight finish probes awaiting per-switch acknowledgments.
  struct PendingFinish {
    std::int32_t expected_acks;
    int retries_left;
  };
  std::unordered_map<std::uint64_t, PendingFinish> pending_finishes_;

  EdgeConfig cfg_;
  WfqScheduler wfq_;
  std::unordered_map<std::uint64_t, UfabConnection*> by_entity_;  // WFQ entity -> conn
  std::uint64_t next_entity_ = 1;
  std::unordered_map<std::int64_t, std::uint64_t> entity_of_pair_;  // pair key -> entity

  /// Receiver-side incoming-pair state for token admission.
  struct IncomingPair {
    VmPairId pair;
    double requested = 0.0;
    double admitted = 0.0;
    TimeNs last_seen = TimeNs::zero();
  };
  std::unordered_map<std::uint64_t, IncomingPair> incoming_;  // by pair key

  bool token_timer_running_ = false;
  std::int64_t migrations_ = 0;
  std::int64_t probes_sent_ = 0;
  std::int64_t probe_bytes_ = 0;
  std::int64_t probe_timeouts_ = 0;
  std::int64_t probe_retransmits_ = 0;
  std::int64_t state_losses_detected_ = 0;
  std::int64_t reregistrations_ = 0;
  std::int64_t stale_telemetry_events_ = 0;
  std::int64_t guarantee_degradations_ = 0;
  std::int64_t finish_retries_ = 0;
  std::int64_t finish_abandoned_ = 0;
};

}  // namespace ufab::edge

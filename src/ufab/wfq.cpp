#include "src/ufab/wfq.hpp"

#include <algorithm>
#include <cmath>

#include "src/core/assert.hpp"

namespace ufab::edge {

int WfqScheduler::weight_to_level(double weight) const {
  if (weight <= base_weight_) return 0;
  const int level = static_cast<int>(std::floor(std::log2(weight / base_weight_) + 0.5));
  return std::clamp(level, 0, kLevels - 1);
}

void WfqScheduler::set_tenant_weight(TenantId tenant, double weight) {
  const int level = weight_to_level(weight);
  auto it = tenant_level_.find(tenant.value());
  if (it != tenant_level_.end() && it->second == level) return;
  // Move existing entities if the tenant changes level.
  std::vector<std::uint64_t> moved;
  if (it != tenant_level_.end()) {
    Level& old = levels_[it->second];
    if (TenantQueue* tq = find_tenant(old, tenant)) {
      moved = std::move(tq->entities);
      old.tenants.erase(old.tenants.begin() + (tq - old.tenants.data()));
      old.cursor = 0;
    }
  }
  tenant_level_[tenant.value()] = level;
  if (!moved.empty()) {
    levels_[level].tenants.push_back(TenantQueue{tenant, std::move(moved), 0});
  }
}

WfqScheduler::TenantQueue* WfqScheduler::find_tenant(Level& level, TenantId tenant) {
  for (auto& tq : level.tenants) {
    if (tq.tenant == tenant) return &tq;
  }
  return nullptr;
}

void WfqScheduler::add(TenantId tenant, std::uint64_t entity) {
  auto it = tenant_level_.find(tenant.value());
  const int level = it != tenant_level_.end() ? it->second : weight_to_level(base_weight_);
  if (it == tenant_level_.end()) tenant_level_[tenant.value()] = level;
  Level& L = levels_[level];
  TenantQueue* tq = find_tenant(L, tenant);
  if (tq == nullptr) {
    L.tenants.push_back(TenantQueue{tenant, {}, 0});
    tq = &L.tenants.back();
  }
  tq->entities.push_back(entity);
  ++entity_count_;
}

void WfqScheduler::remove(TenantId tenant, std::uint64_t entity) {
  auto it = tenant_level_.find(tenant.value());
  if (it == tenant_level_.end()) return;
  Level& L = levels_[it->second];
  TenantQueue* tq = find_tenant(L, tenant);
  if (tq == nullptr) return;
  auto pos = std::find(tq->entities.begin(), tq->entities.end(), entity);
  if (pos == tq->entities.end()) return;
  tq->entities.erase(pos);
  tq->cursor = 0;
  --entity_count_;
  if (tq->entities.empty()) {
    L.tenants.erase(L.tenants.begin() + (tq - L.tenants.data()));
    L.cursor = 0;
  }
}

int WfqScheduler::level_of(TenantId tenant) const {
  auto it = tenant_level_.find(tenant.value());
  return it == tenant_level_.end() ? 0 : it->second;
}

}  // namespace ufab::edge

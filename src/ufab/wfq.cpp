#include "src/ufab/wfq.hpp"

#include <algorithm>
#include <cmath>

#include "src/core/assert.hpp"

namespace ufab::edge {

int WfqScheduler::weight_to_level(double weight) const {
  if (weight <= base_weight_) return 0;
  const int level = static_cast<int>(std::floor(std::log2(weight / base_weight_) + 0.5));
  return std::clamp(level, 0, kLevels - 1);
}

void WfqScheduler::set_tenant_weight(TenantId tenant, double weight) {
  const int level = weight_to_level(weight);
  auto it = tenant_level_.find(tenant.value());
  if (it != tenant_level_.end() && it->second == level) return;
  // Move existing entities if the tenant changes level.
  std::vector<std::uint64_t> moved;
  if (it != tenant_level_.end()) {
    Level& old = levels_[it->second];
    if (TenantQueue* tq = find_tenant(old, tenant)) {
      moved = std::move(tq->entities);
      old.tenants.erase(old.tenants.begin() + (tq - old.tenants.data()));
      old.cursor = 0;
    }
  }
  tenant_level_[tenant.value()] = level;
  if (!moved.empty()) {
    levels_[level].tenants.push_back(TenantQueue{tenant, std::move(moved), 0});
  }
}

WfqScheduler::TenantQueue* WfqScheduler::find_tenant(Level& level, TenantId tenant) {
  for (auto& tq : level.tenants) {
    if (tq.tenant == tenant) return &tq;
  }
  return nullptr;
}

void WfqScheduler::add(TenantId tenant, std::uint64_t entity) {
  auto it = tenant_level_.find(tenant.value());
  const int level = it != tenant_level_.end() ? it->second : weight_to_level(base_weight_);
  if (it == tenant_level_.end()) tenant_level_[tenant.value()] = level;
  Level& L = levels_[level];
  TenantQueue* tq = find_tenant(L, tenant);
  if (tq == nullptr) {
    L.tenants.push_back(TenantQueue{tenant, {}, 0});
    tq = &L.tenants.back();
  }
  tq->entities.push_back(entity);
  ++entity_count_;
}

void WfqScheduler::remove(TenantId tenant, std::uint64_t entity) {
  auto it = tenant_level_.find(tenant.value());
  if (it == tenant_level_.end()) return;
  Level& L = levels_[it->second];
  TenantQueue* tq = find_tenant(L, tenant);
  if (tq == nullptr) return;
  auto pos = std::find(tq->entities.begin(), tq->entities.end(), entity);
  if (pos == tq->entities.end()) return;
  tq->entities.erase(pos);
  tq->cursor = 0;
  --entity_count_;
  if (tq->entities.empty()) {
    L.tenants.erase(L.tenants.begin() + (tq - L.tenants.data()));
    L.cursor = 0;
  }
}

int WfqScheduler::level_of(TenantId tenant) const {
  auto it = tenant_level_.find(tenant.value());
  return it == tenant_level_.end() ? 0 : it->second;
}

std::uint64_t WfqScheduler::find_sendable(
    Level& level, const std::function<std::int32_t(std::uint64_t)>& sendable,
    std::int32_t& size_out, bool commit) {
  if (level.tenants.empty()) return 0;
  const std::size_t nt = level.tenants.size();
  for (std::size_t t = 0; t < nt; ++t) {
    TenantQueue& tq = level.tenants[(level.cursor + t) % nt];
    const std::size_t ne = tq.entities.size();
    for (std::size_t e = 0; e < ne; ++e) {
      const std::size_t ei = (tq.cursor + e) % ne;
      const std::uint64_t entity = tq.entities[ei];
      const std::int32_t size = sendable(entity);
      if (size > 0) {
        if (commit) {
          // Advance round-robin cursors past the served entity/tenant.
          tq.cursor = (ei + 1) % ne;
          level.cursor = ((level.cursor + t) + 1) % nt;
        }
        size_out = size;
        return entity;
      }
    }
  }
  return 0;
}

std::uint64_t WfqScheduler::next(const std::function<std::int32_t(std::uint64_t)>& sendable) {
  // Classic DRR adapted to pull-one semantics: the rotation pointer stays on
  // a level while its deficit lasts; moving onto a level grants its quantum
  // exactly once. A level with nothing sendable forfeits its deficit, as in
  // standard DRR where an emptied queue resets its counter.
  for (int i = 0; i < 2 * kLevels; ++i) {
    Level& L = levels_[rr_level_];
    if (!L.tenants.empty()) {
      std::int32_t size = 0;
      const std::uint64_t probe = find_sendable(L, sendable, size, /*commit=*/false);
      if (probe != 0 && L.deficit >= size) {
        const std::uint64_t entity = find_sendable(L, sendable, size, /*commit=*/true);
        L.deficit -= size;
        return entity;
      }
      if (probe == 0) L.deficit = 0.0;
    }
    // Advance the rotation and grant the next level its quantum.
    rr_level_ = (rr_level_ + 1) % kLevels;
    Level& N = levels_[rr_level_];
    const double level_quantum =
        static_cast<double>(quantum_) * static_cast<double>(1 << rr_level_);
    N.deficit = std::min(N.deficit + level_quantum, 2.0 * level_quantum);
  }
  // Work-conserving fallback: never leave the wire idle because every level
  // is deficit-blocked — serve the first sendable entity and let its level
  // borrow (deficit goes negative, repaid on later rounds).
  for (int li = 0; li < kLevels; ++li) {
    Level& L = levels_[li];
    if (L.tenants.empty()) continue;
    std::int32_t size = 0;
    const std::uint64_t entity = find_sendable(L, sendable, size, /*commit=*/true);
    if (entity == 0) continue;
    L.deficit -= size;
    return entity;
  }
  return 0;
}

}  // namespace ufab::edge

// Tests for distributions, traffic sources and application models.
#include <gtest/gtest.h>

#include "src/harness/schemes.hpp"
#include "src/workload/apps.hpp"
#include "src/workload/distributions.hpp"
#include "src/workload/sources.hpp"

namespace ufab::workload {
namespace {

using namespace ufab::time_literals;
using namespace ufab::unit_literals;
using harness::Fabric;
using harness::Scheme;

TEST(Distributions, KeyValueMeanAroundTwoKb) {
  const auto dist = EmpiricalSizeDist::key_value();
  EXPECT_GT(dist.mean_bytes(), 1000.0);
  EXPECT_LT(dist.mean_bytes(), 4000.0);
  Rng rng(1);
  double sum = 0.0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(dist.sample(rng));
  EXPECT_NEAR(sum / n, dist.mean_bytes(), dist.mean_bytes() * 0.05);
}

TEST(Distributions, WebsearchIsHeavyTailed) {
  const auto dist = EmpiricalSizeDist::websearch();
  Rng rng(2);
  PercentileTracker t;
  for (int i = 0; i < 50'000; ++i) t.add(static_cast<double>(dist.sample(rng)));
  EXPECT_LT(t.median(), 120'000.0);       // most flows are small
  EXPECT_GT(t.percentile(99), 3'000'000.0);  // the tail carries megabytes
}

TEST(Distributions, SamplesWithinSupport) {
  const auto dist = EmpiricalSizeDist::websearch();
  Rng rng(3);
  for (int i = 0; i < 10'000; ++i) {
    const auto s = dist.sample(rng);
    EXPECT_GE(s, 6'000);
    EXPECT_LE(s, 20'000'000);
  }
}

TEST(Distributions, PoissonArrivalsHitTargetLoad) {
  PoissonArrivals arr(0.5, 10e9, 100'000.0);
  // mean gap = 100KB*8 / (0.5*10G) = 160 us.
  EXPECT_NEAR(arr.mean_gap_sec(), 160e-6, 1e-9);
}

struct AppWorld {
  Fabric fab;
  explicit AppWorld(Scheme s, int left, int right, std::uint64_t seed = 21)
      : fab([s, left, right](sim::Simulator& sim2) {
          return topo::make_dumbbell(sim2, left, right,
                                     harness::fabric_options_for(s, {}));
        },
        seed) {
    install_scheme(fab, s);
    fab.install_pair_metering(1_ms);
  }
};

TEST(OnOff, AlternatesBetweenPacedAndBacklogged) {
  AppWorld w(Scheme::kUfab, 1, 1);
  auto& vms = w.fab.vms();
  const TenantId t = vms.add_tenant("A", 1_Gbps);
  const VmPairId pair{vms.add_vm(t, HostId{0}), vms.add_vm(t, HostId{1})};
  OnOffSource::Config cfg;
  cfg.period = 4_ms;
  cfg.limited_rate = 500_Mbps;
  cfg.stop = 16_ms;
  OnOffSource src(w.fab, pair, cfg);
  w.fab.sim().run_until(20_ms);
  RateMeter* m = w.fab.pair_meter(pair);
  ASSERT_NE(m, nullptr);
  // Phase 1 (0-4 ms): paced at 500 Mbps. Phase 2 (4-8 ms): line rate.
  const auto series = m->series(16_ms);
  double phase1 = 0.0;
  double phase2 = 0.0;
  for (const auto& s : series) {
    if (s.at >= 1_ms && s.at < 4_ms) phase1 = std::max(phase1, s.rate.gbit_per_sec());
    if (s.at >= 5_ms && s.at < 8_ms) phase2 = std::max(phase2, s.rate.gbit_per_sec());
  }
  EXPECT_LT(phase1, 1.0);
  EXPECT_GT(phase2, 5.0);
}

TEST(FlowRecorderTest, TracksFctAndSlowdown) {
  FlowRecorder rec;
  rec.on_start(1, 0_us, 100e-6, 50'000);  // expected 100 us
  rec.on_delivery(1, 200_us);             // actual 200 us => slowdown 2
  rec.on_start(2, 0_us, 50e-6, 1'000);
  rec.on_delivery(2, 50_us);  // slowdown 1
  rec.on_delivery(99, 1_ms);  // unknown tag ignored
  EXPECT_EQ(rec.completed(), 2u);
  EXPECT_DOUBLE_EQ(rec.slowdown().max(), 2.0);
  EXPECT_DOUBLE_EQ(rec.fct_us().max(), 200.0);
  const auto small = rec.slowdown_for_sizes(0, 10'000);
  EXPECT_EQ(small.count(), 1u);
  EXPECT_DOUBLE_EQ(small.max(), 1.0);
}

TEST(PoissonGenerator, CompletesFlowsNearTargetLoad) {
  AppWorld w(Scheme::kUfab, 2, 2);
  auto& vms = w.fab.vms();
  const TenantId t = vms.add_tenant("A", 2_Gbps);
  const VmId a = vms.add_vm(t, HostId{0});
  const VmId b = vms.add_vm(t, HostId{1});
  const VmId c = vms.add_vm(t, HostId{2});
  const VmId d = vms.add_vm(t, HostId{3});
  PoissonFlowGenerator::Config cfg;
  cfg.target_load = 0.3;
  cfg.stop = 30_ms;
  PoissonFlowGenerator gen(w.fab, {VmPairId{a, c}, VmPairId{b, d}},
                           EmpiricalSizeDist::key_value(), cfg, w.fab.rng().fork("gen"));
  w.fab.sim().run_until(60_ms);
  EXPECT_GT(gen.recorder().started(), 100u);
  // Nearly all flows complete well after the generator stops.
  EXPECT_GT(static_cast<double>(gen.recorder().completed()),
            0.95 * static_cast<double>(gen.recorder().started()));
}

TEST(Rpc, MemcachedClosedLoopCompletesQueries) {
  AppWorld w(Scheme::kUfab, 2, 2);
  auto& vms = w.fab.vms();
  const TenantId t = vms.add_tenant("mc", 2_Gbps);
  const VmId c1 = vms.add_vm(t, HostId{0});
  const VmId c2 = vms.add_vm(t, HostId{1});
  const VmId s1 = vms.add_vm(t, HostId{2});
  const VmId s2 = vms.add_vm(t, HostId{3});
  RpcApp app(w.fab, {c1, c2}, {s1, s2}, RpcApp::memcached(0_ms, 40_ms, 3),
             w.fab.rng().fork("mc"));
  w.fab.sim().run_until(50_ms);
  EXPECT_GT(app.completed(), 200);
  EXPECT_GT(app.qps(10_ms, 40_ms), 5'000.0);
  // Unloaded fabric: QCT should be tens of microseconds at the median.
  EXPECT_LT(app.qct_us().median(), 200.0);
}

TEST(Rpc, MongodbMovesBulkData) {
  AppWorld w(Scheme::kUfab, 1, 1);
  auto& vms = w.fab.vms();
  const TenantId t = vms.add_tenant("mongo", 2_Gbps);
  const VmId c = vms.add_vm(t, HostId{0});
  const VmId s = vms.add_vm(t, HostId{1});
  RpcApp app(w.fab, {c}, {s}, RpcApp::mongodb(0_ms, 40_ms, 4), w.fab.rng().fork("mg"));
  w.fab.sim().run_until(50_ms);
  // 500 KB at ~9.5 Gbps is ~420 us per query: expect tens of queries.
  EXPECT_GT(app.completed(), 40);
}

TEST(Ebs, PipelineReplicatesBlocks) {
  AppWorld w(Scheme::kUfab, 4, 4);
  auto& vms = w.fab.vms();
  const TenantId sa_t = vms.add_tenant("SA", 2_Gbps);
  const TenantId ba_t = vms.add_tenant("BA", 6_Gbps);
  const TenantId gc_t = vms.add_tenant("GC", 1_Gbps);
  std::vector<VmId> sas;
  std::vector<VmId> bas;
  std::vector<VmId> css;
  std::vector<VmId> gcs;
  for (int i = 0; i < 4; ++i) sas.push_back(vms.add_vm(sa_t, HostId{i}));
  for (int i = 0; i < 4; ++i) {
    bas.push_back(vms.add_vm(ba_t, HostId{4 + i}));
    css.push_back(vms.add_vm(ba_t, HostId{4 + ((i + 1) % 4)}));
    gcs.push_back(vms.add_vm(gc_t, HostId{4 + i}));
  }
  EbsApp::Config cfg;
  cfg.stop = 20_ms;
  EbsApp app(w.fab, sas, bas, css, gcs, cfg, w.fab.rng().fork("ebs"));
  w.fab.sim().run_until(40_ms);
  // 4 SAs x one block / 320 us x 20 ms = ~250 blocks.
  EXPECT_GT(app.blocks_completed(), 150);
  EXPECT_FALSE(app.sa_tct_ms().empty());
  EXPECT_FALSE(app.ba_tct_ms().empty());
  EXPECT_FALSE(app.total_tct_ms().empty());
  EXPECT_FALSE(app.gc_tct_ms().empty());
  // End-to-end TCT >= SA stage by construction.
  EXPECT_GE(app.total_tct_ms().median(), app.sa_tct_ms().median());
}

}  // namespace
}  // namespace ufab::workload

// Unit tests for the hierarchical WFQ scheduler.
#include <gtest/gtest.h>

#include <map>

#include "src/ufab/wfq.hpp"

namespace ufab::edge {
namespace {

/// Runs `rounds` pulls with every entity always sendable at `pkt` bytes and
/// returns bytes served per entity.
std::map<std::uint64_t, std::int64_t> serve(WfqScheduler& wfq, int rounds, std::int32_t pkt) {
  std::map<std::uint64_t, std::int64_t> bytes;
  for (int i = 0; i < rounds; ++i) {
    const std::uint64_t e = wfq.next([pkt](std::uint64_t) { return pkt; });
    if (e == 0) break;
    bytes[e] += pkt;
  }
  return bytes;
}

TEST(Wfq, EmptySchedulerReturnsZero) {
  WfqScheduler wfq;
  EXPECT_EQ(wfq.next([](std::uint64_t) { return 1500; }), 0u);
}

TEST(Wfq, SingleEntityAlwaysServed) {
  WfqScheduler wfq;
  wfq.set_tenant_weight(TenantId{0}, 1.0);
  wfq.add(TenantId{0}, 7);
  const auto bytes = serve(wfq, 10, 1500);
  EXPECT_EQ(bytes.at(7), 15'000);
}

TEST(Wfq, EqualWeightsShareEqually) {
  WfqScheduler wfq(1.0);
  wfq.set_tenant_weight(TenantId{0}, 1.0);
  wfq.set_tenant_weight(TenantId{1}, 1.0);
  wfq.add(TenantId{0}, 1);
  wfq.add(TenantId{1}, 2);
  const auto bytes = serve(wfq, 1000, 1500);
  EXPECT_NEAR(static_cast<double>(bytes.at(1)) / static_cast<double>(bytes.at(2)), 1.0, 0.05);
}

TEST(Wfq, WeightedSharesFollowLevels) {
  WfqScheduler wfq(1.0);
  wfq.set_tenant_weight(TenantId{0}, 1.0);  // level 0
  wfq.set_tenant_weight(TenantId{1}, 4.0);  // level 2
  wfq.add(TenantId{0}, 1);
  wfq.add(TenantId{1}, 2);
  const auto bytes = serve(wfq, 5000, 1500);
  const double ratio = static_cast<double>(bytes.at(2)) / static_cast<double>(bytes.at(1));
  EXPECT_NEAR(ratio, 4.0, 0.8);
}

TEST(Wfq, WeightsQuantizedToEightLevels) {
  WfqScheduler wfq(1.0);
  EXPECT_EQ(wfq.level_of(TenantId{9}), 0);  // unknown tenant
  wfq.set_tenant_weight(TenantId{0}, 0.25);
  wfq.set_tenant_weight(TenantId{1}, 1.0);
  wfq.set_tenant_weight(TenantId{2}, 2.0);
  wfq.set_tenant_weight(TenantId{3}, 1000.0);  // clamped to top level
  EXPECT_EQ(wfq.level_of(TenantId{0}), 0);
  EXPECT_EQ(wfq.level_of(TenantId{1}), 0);
  EXPECT_EQ(wfq.level_of(TenantId{2}), 1);
  EXPECT_EQ(wfq.level_of(TenantId{3}), 7);
}

TEST(Wfq, RoundRobinWithinTenant) {
  WfqScheduler wfq;
  wfq.set_tenant_weight(TenantId{0}, 1.0);
  wfq.add(TenantId{0}, 1);
  wfq.add(TenantId{0}, 2);
  wfq.add(TenantId{0}, 3);
  const auto bytes = serve(wfq, 300, 1000);
  EXPECT_EQ(bytes.at(1), bytes.at(2));
  EXPECT_EQ(bytes.at(2), bytes.at(3));
}

TEST(Wfq, SkipsUnsendableEntities) {
  WfqScheduler wfq;
  wfq.set_tenant_weight(TenantId{0}, 1.0);
  wfq.add(TenantId{0}, 1);
  wfq.add(TenantId{0}, 2);
  // Entity 1 never sendable.
  std::int64_t served2 = 0;
  for (int i = 0; i < 50; ++i) {
    const auto e = wfq.next([](std::uint64_t ent) { return ent == 2 ? 1500 : 0; });
    ASSERT_NE(e, 1u);
    if (e == 2) ++served2;
  }
  EXPECT_EQ(served2, 50);
}

TEST(Wfq, RemoveStopsService) {
  WfqScheduler wfq;
  wfq.set_tenant_weight(TenantId{0}, 1.0);
  wfq.add(TenantId{0}, 1);
  wfq.remove(TenantId{0}, 1);
  EXPECT_EQ(wfq.next([](std::uint64_t) { return 1500; }), 0u);
  EXPECT_EQ(wfq.entity_count(), 0u);
}

TEST(Wfq, TenantWeightChangeMovesEntities) {
  WfqScheduler wfq(1.0);
  wfq.set_tenant_weight(TenantId{0}, 1.0);
  wfq.add(TenantId{0}, 1);
  wfq.set_tenant_weight(TenantId{0}, 128.0);  // move to level 7
  EXPECT_EQ(wfq.level_of(TenantId{0}), 7);
  // Still schedulable after the move.
  EXPECT_EQ(wfq.next([](std::uint64_t) { return 1500; }), 1u);
}

TEST(Wfq, WorkConservingUnderMixedLoad) {
  // Even when high-weight levels dominate, low levels are never starved.
  WfqScheduler wfq(1.0);
  wfq.set_tenant_weight(TenantId{0}, 1.0);
  wfq.set_tenant_weight(TenantId{1}, 128.0);
  wfq.add(TenantId{0}, 1);
  wfq.add(TenantId{1}, 2);
  const auto bytes = serve(wfq, 4000, 1500);
  EXPECT_GT(bytes.at(1), 0);
  EXPECT_GT(bytes.at(2), bytes.at(1));
}

}  // namespace
}  // namespace ufab::edge

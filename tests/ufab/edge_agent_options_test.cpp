// Tests for uFAB-E option paths: reorder-free migration, periodic probing,
// probe-loss handling, finish-probe retries, and uFAB' mode.
#include <gtest/gtest.h>

#include "src/harness/fabric.hpp"
#include "src/topo/builders.hpp"
#include "src/ufab/edge_agent.hpp"

namespace ufab::edge {
namespace {

using namespace ufab::time_literals;
using namespace ufab::unit_literals;
using harness::Fabric;

struct World {
  Fabric fab;
  World(const Fabric::Builder& builder, EdgeConfig cfg, std::uint64_t seed = 3)
      : fab(builder, seed) {
    telemetry::CoreConfig core;
    core.clean_period = 1_s;
    fab.instrument_cores(core);
    for (std::size_t h = 0; h < fab.net().host_count(); ++h) {
      const HostId host{static_cast<std::int32_t>(h)};
      fab.adopt_stack(host, std::make_unique<EdgeAgent>(fab.net(), fab.vms(), host, cfg,
                                                        transport::TransportOptions{},
                                                        fab.rng().fork(h)));
    }
    fab.install_pair_metering(1_ms);
  }
  EdgeAgent& edge(HostId h) { return fab.stack_as<EdgeAgent>(h); }
};

Fabric::Builder leaf_spine() {
  return [](sim::Simulator& s) { return topo::make_leaf_spine(s, 2, 2, 2); };
}

TEST(EdgeOptions, ReorderFreeMigrationBlocksDataOneRtt) {
  EdgeConfig cfg;
  cfg.reorder_free_migration = true;
  World w(leaf_spine(), cfg);
  auto& vms = w.fab.vms();
  const TenantId t = vms.add_tenant("A", 2_Gbps);
  const VmPairId pair{vms.add_vm(t, HostId{0}), vms.add_vm(t, HostId{2})};
  w.fab.keep_backlogged(pair, 0_ms, 40_ms);
  // Kill the current spine's fabric links at 10 ms to force a migration.
  w.fab.sim().at(10_ms, [&] {
    auto* conn = w.edge(HostId{0}).ufab_connection(pair);
    ASSERT_NE(conn, nullptr);
    const auto& links = conn->current_path().links;
    for (std::size_t i = 1; i + 1 < links.size(); ++i) {
      w.fab.net().link(links[i])->set_down(true);
    }
  });
  w.fab.sim().run_until(40_ms);
  auto* conn = w.edge(HostId{0}).ufab_connection(pair);
  ASSERT_NE(conn, nullptr);
  EXPECT_GE(w.edge(HostId{0}).migrations(), 1);
  // The reorder-free gate was armed at migration time.
  EXPECT_GT(conn->data_blocked_until.ns(), 0);
  // And traffic recovered afterwards.
  EXPECT_GT(w.fab.pair_meter(pair)->trailing_rate(40_ms, 10).gbit_per_sec(), 5.0);
}

TEST(EdgeOptions, PeriodicProbeModeKeepsWindowFresh) {
  EdgeConfig cfg;
  cfg.probe_mode = ProbeMode::kPeriodic;
  cfg.periodic_rtts = 2.0;
  World w(leaf_spine(), cfg);
  auto& vms = w.fab.vms();
  const TenantId t = vms.add_tenant("A", 2_Gbps);
  const VmPairId pair{vms.add_vm(t, HostId{0}), vms.add_vm(t, HostId{2})};
  w.fab.keep_backlogged(pair, 0_ms, 20_ms);
  w.fab.sim().run_until(20_ms);
  auto& e = w.edge(HostId{0});
  // Roughly one probe per 2 RTTs (~36 us at this scale): over 20 ms that is
  // in the hundreds, far fewer than the per-L_m adaptive rate at 9 Gbps.
  EXPECT_GT(e.probes_sent(), 150);
  EXPECT_LT(e.probes_sent(), 900);
  EXPECT_GT(w.fab.pair_meter(pair)->trailing_rate(20_ms, 10).gbit_per_sec(), 8.0);
}

TEST(EdgeOptions, ProbeTimeoutsCountedOnDeadPath) {
  World w(leaf_spine(), EdgeConfig{});
  auto& vms = w.fab.vms();
  const TenantId t = vms.add_tenant("A", 2_Gbps);
  const VmPairId pair{vms.add_vm(t, HostId{0}), vms.add_vm(t, HostId{2})};
  w.fab.keep_backlogged(pair, 0_ms, 30_ms);
  // Kill *all* spine links: no path survives, probes keep timing out.
  w.fab.sim().at(5_ms, [&] {
    for (sim::Link* l : w.fab.net().links()) {
      if (l->name().find("Spine") != std::string::npos) l->set_down(true);
    }
  });
  w.fab.sim().run_until(30_ms);
  EXPECT_GT(w.edge(HostId{0}).probe_timeouts(), 2);
}

TEST(EdgeOptions, UfabPrimeSkipsBootstrap) {
  EdgeConfig cfg;
  cfg.two_stage_admission = false;
  World w(leaf_spine(), cfg);
  auto& vms = w.fab.vms();
  const TenantId t = vms.add_tenant("A", 1_Gbps);
  const VmPairId pair{vms.add_vm(t, HostId{0}), vms.add_vm(t, HostId{2})};
  w.fab.send(pair, 500'000);
  w.fab.sim().run_until(100_us);
  auto* conn = w.edge(HostId{0}).ufab_connection(pair);
  ASSERT_NE(conn, nullptr);
  EXPECT_FALSE(conn->bootstrap);
  // uFAB' starts at a full line-rate BDP, not the guarantee BDP.
  EXPECT_GT(conn->window, Bandwidth::gbps(5).bdp_bytes(conn->base_rtt));
}

TEST(EdgeOptions, BootstrapWindowStartsAtGuaranteeBdp) {
  World w(leaf_spine(), EdgeConfig{});
  auto& vms = w.fab.vms();
  const TenantId t = vms.add_tenant("A", 1_Gbps);
  const VmPairId pair{vms.add_vm(t, HostId{0}), vms.add_vm(t, HostId{2})};
  w.fab.send(pair, 500'000);
  // Inspect immediately, before the first probe response arrives.
  w.fab.sim().run_until(TimeNs{2000});
  auto* conn = w.edge(HostId{0}).ufab_connection(pair);
  ASSERT_NE(conn, nullptr);
  EXPECT_TRUE(conn->bootstrap);
  const double guarantee_bdp = Bandwidth::gbps(1).bdp_bytes(conn->base_rtt);
  EXPECT_LE(conn->window, std::max(guarantee_bdp, 3000.0) + 1.0);
}

TEST(EdgeOptions, FinishProbeRetriesSurviveLossyPath) {
  // An idle pair deregisters even when its finish probe must be retried
  // (path flaps while the finish is in flight).
  World w(leaf_spine(), EdgeConfig{});
  auto& vms = w.fab.vms();
  const TenantId t = vms.add_tenant("A", 1_Gbps);
  const VmPairId pair{vms.add_vm(t, HostId{0}), vms.add_vm(t, HostId{2})};
  w.fab.send(pair, 100'000);
  // Flap the whole fabric briefly right around the idle-finish timeout.
  w.fab.sim().at(1_ms, [&] {
    for (sim::Link* l : w.fab.net().links()) {
      if (l->name().find("Spine") != std::string::npos) l->set_down(true);
    }
  });
  w.fab.sim().at(3_ms, [&] {
    for (sim::Link* l : w.fab.net().links()) l->set_down(false);
  });
  w.fab.sim().run_until(80_ms);
  double total_phi = 0.0;
  for (const auto& agent : w.fab.core_agents()) total_phi += agent->phi_total();
  EXPECT_NEAR(total_phi, 0.0, 1.0);
}

TEST(EdgeOptions, ConfigDefaultsMatchPaper) {
  const EdgeConfig cfg;
  EXPECT_DOUBLE_EQ(cfg.eta, 0.95);                       // §5.1 target utilization
  EXPECT_EQ(cfg.probe_interval_bytes, 4096);             // §5.4 L_m = 4 KB
  EXPECT_EQ(cfg.token_update_period.ns(), 32'000);       // §5.1 token period
  EXPECT_EQ(cfg.violation_threshold, 5);                 // §3.5, 5 RTTs
  EXPECT_EQ(cfg.freeze_window_max_rtts, 10);             // §5.6, [1,10]
  EXPECT_DOUBLE_EQ(cfg.probe_timeout_rtts, 8.0);         // §4.1
  EXPECT_EQ(cfg.wc_migration_observe.sec(), 30.0);       // §3.5, 30 s
  EXPECT_TRUE(cfg.two_stage_admission);
}

}  // namespace
}  // namespace ufab::edge

// Integration tests: uFAB edge + informative core on small fabrics.
//
// These exercise the paper's three goals end to end: minimum bandwidth
// guarantee, work conservation, and bounded queueing, plus path migration.
#include <gtest/gtest.h>

#include "src/harness/fabric.hpp"
#include "src/topo/builders.hpp"
#include "src/ufab/edge_agent.hpp"

namespace ufab::edge {
namespace {

using namespace ufab::time_literals;
using namespace ufab::unit_literals;
using harness::Fabric;

telemetry::CoreConfig test_core_config() {
  telemetry::CoreConfig cfg;
  cfg.clean_period = 1_s;
  return cfg;
}

/// Builds a fabric with uFAB agents on every host.
struct UfabWorld {
  Fabric fab;

  explicit UfabWorld(const Fabric::Builder& builder, EdgeConfig cfg = {}, std::uint64_t seed = 7)
      : fab(builder, seed) {
    fab.instrument_cores(test_core_config());
    for (std::size_t h = 0; h < fab.net().host_count(); ++h) {
      const HostId host{static_cast<std::int32_t>(h)};
      fab.adopt_stack(host, std::make_unique<EdgeAgent>(fab.net(), fab.vms(), host, cfg,
                                                        transport::TransportOptions{},
                                                        fab.rng().fork(h)));
    }
    fab.install_pair_metering(1_ms);
  }

  EdgeAgent& edge(HostId h) { return fab.stack_as<EdgeAgent>(h); }

  double pair_rate_gbps(VmPairId pair, TimeNs from, TimeNs to) {
    RateMeter* m = fab.pair_meter(pair);
    if (m == nullptr) return 0.0;
    double bytes = 0.0;
    for (const auto& s : m->series(to)) {
      if (s.at >= from && s.at < to) bytes += s.rate.bytes_per_sec() * m->bucket_width().sec();
    }
    return bytes * 8.0 / 1e9 / (to - from).sec();
  }
};

TEST(UfabIntegration, SinglePairReachesTargetUtilization) {
  UfabWorld w([](sim::Simulator& s) { return topo::make_dumbbell(s, 2, 2); });
  const TenantId t = w.fab.vms().add_tenant("A", 1_Gbps);
  const VmId a = w.fab.vms().add_vm(t, HostId{0});
  const VmId b = w.fab.vms().add_vm(t, HostId{2});  // other side of the trunk
  const VmPairId pair{a, b};
  w.fab.keep_backlogged(pair, 0_ms, 40_ms);
  w.fab.sim().run_until(40_ms);

  // Work conservation: despite a 1 Gbps guarantee, the lone tenant should
  // fill the 10 Gbps trunk to the 95% target.
  const double rate = w.pair_rate_gbps(pair, 20_ms, 40_ms);
  EXPECT_GT(rate, 8.5);
  EXPECT_LT(rate, 10.0);

  // Close-to-zero queueing: the Eqn-3 window caps inflight at the target BDP.
  for (const auto* l : w.fab.net().links()) {
    EXPECT_LT(l->max_queue_bytes(), 40'000) << l->name();
    EXPECT_EQ(l->drops(), 0) << l->name();
  }
}

TEST(UfabIntegration, TokenProportionalSharingOnSharedLink) {
  UfabWorld w([](sim::Simulator& s) { return topo::make_dumbbell(s, 2, 2); });
  auto& vms = w.fab.vms();
  const TenantId big = vms.add_tenant("big", 4_Gbps);
  const TenantId small = vms.add_tenant("small", 2_Gbps);
  const VmPairId p1{vms.add_vm(big, HostId{0}), vms.add_vm(big, HostId{2})};
  const VmPairId p2{vms.add_vm(small, HostId{1}), vms.add_vm(small, HostId{3})};
  w.fab.keep_backlogged(p1, 0_ms, 60_ms);
  w.fab.keep_backlogged(p2, 0_ms, 60_ms);
  w.fab.sim().run_until(60_ms);

  const double r1 = w.pair_rate_gbps(p1, 30_ms, 60_ms);
  const double r2 = w.pair_rate_gbps(p2, 30_ms, 60_ms);
  // Proportional sharing (Eqn 1): 4:2 tokens => 2:1 rates, full utilization.
  EXPECT_NEAR(r1 / r2, 2.0, 0.35);
  EXPECT_GT(r1 + r2, 8.5);
  // Both exceed their minimum guarantees.
  EXPECT_GT(r1, 4.0 * 0.9);
  EXPECT_GT(r2, 2.0 * 0.9);
}

TEST(UfabIntegration, WorkConservationAndFastReclaim) {
  UfabWorld w([](sim::Simulator& s) { return topo::make_dumbbell(s, 2, 2); });
  auto& vms = w.fab.vms();
  const TenantId ta = vms.add_tenant("A", 8_Gbps);
  const TenantId tb = vms.add_tenant("B", 2_Gbps);
  const VmPairId pa{vms.add_vm(ta, HostId{0}), vms.add_vm(ta, HostId{2})};
  const VmPairId pb{vms.add_vm(tb, HostId{1}), vms.add_vm(tb, HostId{3})};
  // B alone first; A joins at 30 ms.
  w.fab.keep_backlogged(pb, 0_ms, 80_ms);
  w.fab.keep_backlogged(pa, 30_ms, 80_ms);
  w.fab.sim().run_until(80_ms);

  // Phase 1: B (2 Gbps guarantee) uses the whole trunk — work conservation.
  EXPECT_GT(w.pair_rate_gbps(pb, 15_ms, 30_ms), 8.0);
  // Phase 2: A reclaims its 8 Gbps guarantee quickly; B falls to ~2 Gbps.
  const double ra = w.pair_rate_gbps(pa, 50_ms, 80_ms);
  const double rb = w.pair_rate_gbps(pb, 50_ms, 80_ms);
  EXPECT_GT(ra, 8.0 * 0.85);
  EXPECT_NEAR(rb, 2.0, 0.8);
}

TEST(UfabIntegration, IncastKeepsQueuesBoundedByThreeBdp) {
  // 6-to-1 incast into one 10G host downlink, distinct tenants.
  UfabWorld w([](sim::Simulator& s) { return topo::make_dumbbell(s, 6, 1); });
  auto& vms = w.fab.vms();
  std::vector<VmPairId> pairs;
  for (int i = 0; i < 6; ++i) {
    const TenantId t = vms.add_tenant("T" + std::to_string(i), 1_Gbps);
    pairs.push_back(VmPairId{vms.add_vm(t, HostId{i}), vms.add_vm(t, HostId{6})});
  }
  // All start at exactly the same instant: the worst case of section 3.4.
  for (const auto& p : pairs) w.fab.keep_backlogged(p, 1_ms, 40_ms);
  w.fab.sim().run_until(40_ms);

  // Every tenant converges near its fair share of the 9.5 Gbps target.
  for (const auto& p : pairs) {
    EXPECT_NEAR(w.pair_rate_gbps(p, 20_ms, 40_ms), 9.5 / 6.0, 0.5);
  }
  // The bottleneck (ToR-R -> host) queue stays within ~3x BDP (§3.4).
  const double bdp =
      Bandwidth::gbps(9.5).bdp_bytes(w.fab.net().base_rtt(HostId{0}, HostId{6}));
  for (const auto* l : w.fab.net().links()) {
    EXPECT_LT(static_cast<double>(l->max_queue_bytes()), 3.0 * bdp + 4500.0) << l->name();
    EXPECT_EQ(l->drops(), 0) << l->name();
  }
}

TEST(UfabIntegration, SubscriptionAwareMigrationRestoresGuarantees) {
  // Case-2 style fabric: 2 leaves, 3 spines (3 parallel paths), 4+4 hosts.
  EdgeConfig cfg;
  UfabWorld w([](sim::Simulator& s) { return topo::make_leaf_spine(s, 2, 3, 4); }, cfg);
  auto& vms = w.fab.vms();
  // Four 4 Gbps VFs crossing the fabric: total 16 Gbps needs at least two of
  // the three 10G spine paths; if chance packs them badly, migration must
  // spread them so every VF gets its guarantee.
  std::vector<VmPairId> pairs;
  for (int i = 0; i < 4; ++i) {
    const TenantId t = vms.add_tenant("VF" + std::to_string(i), 4_Gbps);
    pairs.push_back(VmPairId{vms.add_vm(t, HostId{i}), vms.add_vm(t, HostId{4 + i})});
    w.fab.keep_backlogged(pairs.back(), TimeNs{i * 2'000'000}, 100_ms);
  }
  w.fab.sim().run_until(100_ms);

  for (const auto& p : pairs) {
    EXPECT_GT(w.pair_rate_gbps(p, 60_ms, 100_ms), 4.0 * 0.85) << "pair " << p.src.value();
  }
}

TEST(UfabIntegration, PathFailureTriggersMigration) {
  UfabWorld w([](sim::Simulator& s) { return topo::make_leaf_spine(s, 2, 2, 2); });
  auto& vms = w.fab.vms();
  const TenantId t = vms.add_tenant("A", 2_Gbps);
  const VmPairId pair{vms.add_vm(t, HostId{0}), vms.add_vm(t, HostId{2})};
  w.fab.keep_backlogged(pair, 0_ms, 60_ms);

  // Discover which spine the pair is using at 10 ms, then kill that spine's
  // fabric links (not the host's own uplink/downlink).
  w.fab.sim().at(10_ms, [&] {
    auto* conn = w.edge(HostId{0}).ufab_connection(pair);
    ASSERT_NE(conn, nullptr);
    const auto& path = conn->current_path();
    for (std::size_t i = 1; i + 1 < path.links.size(); ++i) {
      w.fab.net().link(path.links[i])->set_down(true);
    }
  });
  w.fab.sim().run_until(60_ms);

  EXPECT_GE(w.edge(HostId{0}).migrations(), 1);
  // Traffic recovered on the surviving spine.
  EXPECT_GT(w.pair_rate_gbps(pair, 40_ms, 60_ms), 7.0);
}

TEST(UfabIntegration, GuaranteePartitioningAcrossPairsOfOneVm) {
  // One sender VM with a 6 Gbps hose guarantee talking to two peers, while a
  // competing tenant loads the trunk: the two pairs together should claim
  // roughly the VM's 6 Gbps share against the competitor's 3 Gbps.
  UfabWorld w([](sim::Simulator& s) { return topo::make_dumbbell(s, 2, 3); });
  auto& vms = w.fab.vms();
  const TenantId ta = vms.add_tenant("A", 6_Gbps);
  const TenantId tb = vms.add_tenant("B", 3_Gbps);
  const VmId a0 = vms.add_vm(ta, HostId{0});
  const VmId a1 = vms.add_vm(ta, HostId{2});
  const VmId a2 = vms.add_vm(ta, HostId{3});
  const VmPairId pa1{a0, a1};
  const VmPairId pa2{a0, a2};
  const VmPairId pb{vms.add_vm(tb, HostId{1}), vms.add_vm(tb, HostId{4})};
  w.fab.keep_backlogged(pa1, 0_ms, 60_ms);
  w.fab.keep_backlogged(pa2, 0_ms, 60_ms);
  w.fab.keep_backlogged(pb, 0_ms, 60_ms);
  w.fab.sim().run_until(60_ms);

  const double ra = w.pair_rate_gbps(pa1, 30_ms, 60_ms) + w.pair_rate_gbps(pa2, 30_ms, 60_ms);
  const double rb = w.pair_rate_gbps(pb, 30_ms, 60_ms);
  EXPECT_NEAR(ra / rb, 2.0, 0.4);  // 6:3 tokens across the tenant's pairs
  EXPECT_GT(ra + rb, 8.5);
}

TEST(UfabIntegration, IdlePairDeregistersFromSwitches) {
  UfabWorld w([](sim::Simulator& s) { return topo::make_dumbbell(s, 2, 2); });
  auto& vms = w.fab.vms();
  const TenantId t = vms.add_tenant("A", 1_Gbps);
  const VmPairId pair{vms.add_vm(t, HostId{0}), vms.add_vm(t, HostId{2})};
  w.fab.send(pair, 100'000);  // one short message, then silence
  w.fab.sim().run_until(50_ms);  // > idle_finish_timeout (10 ms)

  double total_phi = 0.0;
  for (const auto& agent : w.fab.core_agents()) total_phi += agent->phi_total();
  EXPECT_DOUBLE_EQ(total_phi, 0.0);
}

TEST(UfabIntegration, ProbeOverheadIsBounded) {
  UfabWorld w([](sim::Simulator& s) { return topo::make_dumbbell(s, 2, 2); });
  auto& vms = w.fab.vms();
  const TenantId t = vms.add_tenant("A", 1_Gbps);
  const VmPairId pair{vms.add_vm(t, HostId{0}), vms.add_vm(t, HostId{2})};
  w.fab.keep_backlogged(pair, 0_ms, 40_ms);
  w.fab.sim().run_until(40_ms);

  auto& e = w.edge(HostId{0});
  auto* conn = e.ufab_connection(pair);
  ASSERT_NE(conn, nullptr);
  // Probe bytes vs payload bytes: bounded by ~L_p/L_m plus the 1-RTT floor.
  const double overhead = static_cast<double>(e.probe_bytes_sent()) /
                          static_cast<double>(conn->bytes_sent_total);
  EXPECT_LT(overhead, 0.04);
  EXPECT_GT(e.probes_sent(), 100);
}

}  // namespace
}  // namespace ufab::edge

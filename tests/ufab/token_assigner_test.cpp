// Unit tests for Guarantee Partitioning (Algorithms 1 and 2).
#include <gtest/gtest.h>

#include "src/ufab/token_assigner.hpp"

namespace ufab::edge {
namespace {

constexpr double kUnbounded = 1e30;

SenderPairView sender_view(double demand, double receiver = 0.0, bool known = false) {
  return SenderPairView{demand, receiver, known, 0.0};
}

TEST(AssignTokens, EqualSplitWithUnboundedDemand) {
  std::vector<SenderPairView> pairs(4, sender_view(kUnbounded));
  assign_tokens(8.0, pairs);
  for (const auto& p : pairs) EXPECT_DOUBLE_EQ(p.assigned, 2.0);
}

TEST(AssignTokens, SinglePairGetsEverything) {
  std::vector<SenderPairView> pairs{sender_view(kUnbounded)};
  assign_tokens(5.0, pairs);
  EXPECT_DOUBLE_EQ(pairs[0].assigned, 5.0);
}

TEST(AssignTokens, DemandBoundedPairKeepsFairShareAndSpareRedistributed) {
  // Appendix E, Fig 21b: pair with demand epsilon still gets phi-bar, while
  // the others split the spare.
  std::vector<SenderPairView> pairs{sender_view(0.5), sender_view(kUnbounded),
                                    sender_view(kUnbounded)};
  assign_tokens(9.0, pairs);
  // fair = 3; pair0 bounded: reserves 3, spare 2.5 split across 2 others.
  EXPECT_DOUBLE_EQ(pairs[0].assigned, 3.0);
  EXPECT_DOUBLE_EQ(pairs[1].assigned, 3.0 + 1.25);
  EXPECT_DOUBLE_EQ(pairs[2].assigned, 3.0 + 1.25);
}

TEST(AssignTokens, ReceiverBoundedPairFreesTokens) {
  std::vector<SenderPairView> pairs{sender_view(kUnbounded, 1.0, true),
                                    sender_view(kUnbounded), sender_view(kUnbounded)};
  assign_tokens(9.0, pairs);
  // fair = 3; pair0 capped by receiver at 1; spare 2 water-fills the rest.
  EXPECT_DOUBLE_EQ(pairs[0].assigned, 1.0);
  EXPECT_DOUBLE_EQ(pairs[1].assigned, 4.0);
  EXPECT_DOUBLE_EQ(pairs[2].assigned, 4.0);
}

TEST(AssignTokens, UnknownReceiverDoesNotBound) {
  std::vector<SenderPairView> pairs{sender_view(kUnbounded, 0.0, false),
                                    sender_view(kUnbounded, 0.0, false)};
  assign_tokens(4.0, pairs);
  EXPECT_DOUBLE_EQ(pairs[0].assigned, 2.0);
  EXPECT_DOUBLE_EQ(pairs[1].assigned, 2.0);
}

TEST(AssignTokens, EmptyPairsIsNoop) {
  std::vector<SenderPairView> pairs;
  assign_tokens(4.0, pairs);  // must not crash
  EXPECT_TRUE(pairs.empty());
}

TEST(AdmitTokens, FairShareWhenAllGreedy) {
  std::vector<ReceiverPairView> pairs(4);
  for (auto& p : pairs) p.requested_tokens = 100.0;
  admit_tokens(8.0, pairs);
  for (const auto& p : pairs) EXPECT_DOUBLE_EQ(p.admitted, 2.0);
}

TEST(AdmitTokens, SmallRequestsAdmittedInFull) {
  // Appendix E, Fig 21a: a6 responds 1/3 phi to a1 and 2/3 phi to a4 when
  // a1 demands phi/3 and a4 demands phi.
  std::vector<ReceiverPairView> pairs{{1.0 / 3.0, 0.0}, {1.0, 0.0}};
  admit_tokens(1.0, pairs);
  EXPECT_DOUBLE_EQ(pairs[0].admitted, 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(pairs[1].admitted, 2.0 / 3.0);
}

TEST(AdmitTokens, MaxMinWaterfilling) {
  std::vector<ReceiverPairView> pairs{{1.0, 0.0}, {2.0, 0.0}, {10.0, 0.0}, {10.0, 0.0}};
  admit_tokens(12.0, pairs);
  EXPECT_DOUBLE_EQ(pairs[0].admitted, 1.0);
  EXPECT_DOUBLE_EQ(pairs[1].admitted, 2.0);
  EXPECT_DOUBLE_EQ(pairs[2].admitted, 4.5);
  EXPECT_DOUBLE_EQ(pairs[3].admitted, 4.5);
}

TEST(AdmitTokens, TotalAdmittedNeverExceedsVmTokens) {
  std::vector<ReceiverPairView> pairs{{5.0, 0.0}, {3.0, 0.0}, {8.0, 0.0}};
  admit_tokens(6.0, pairs);
  double total = 0.0;
  for (const auto& p : pairs) total += p.admitted;
  EXPECT_LE(total, 6.0 + 1e-9);
}

TEST(SplitTokens, EqualAcrossIdlePaths) {
  const auto out = split_tokens_across_paths(8.0, {kUnbounded, kUnbounded});
  ASSERT_EQ(out.size(), 2u);
  EXPECT_DOUBLE_EQ(out[0], 4.0);
  EXPECT_DOUBLE_EQ(out[1], 4.0);
}

TEST(SplitTokens, StarvedPathKeepsFairShareOthersGetSpare) {
  const auto out = split_tokens_across_paths(9.0, {0.0, kUnbounded, kUnbounded});
  EXPECT_DOUBLE_EQ(out[0], 3.0);  // fairness floor (Algorithm 2 line 7)
  EXPECT_DOUBLE_EQ(out[1], 4.5);
  EXPECT_DOUBLE_EQ(out[2], 4.5);
}

TEST(SplitTokens, EmptyPathsReturnsEmpty) {
  EXPECT_TRUE(split_tokens_across_paths(5.0, {}).empty());
}

}  // namespace
}  // namespace ufab::edge

// Unit tests for src/core: time, units, ids, rng, ewma, log.
#include <gtest/gtest.h>

#include <cstdlib>
#include <set>
#include <string>
#include <vector>

#include "src/core/ewma.hpp"
#include "src/core/ids.hpp"
#include "src/core/log.hpp"
#include "src/core/rng.hpp"
#include "src/core/time.hpp"
#include "src/core/units.hpp"

namespace ufab {
namespace {

using namespace ufab::time_literals;
using namespace ufab::unit_literals;

TEST(TimeNs, LiteralsAndArithmetic) {
  EXPECT_EQ((3_us).ns(), 3000);
  EXPECT_EQ((2_ms).ns(), 2'000'000);
  EXPECT_EQ((1_s).ns(), 1'000'000'000);
  EXPECT_EQ((5_us + 5_us).ns(), (10_us).ns());
  EXPECT_EQ((10_us - 4_us).ns(), (6_us).ns());
  EXPECT_EQ((3_us * 4).ns(), (12_us).ns());
  EXPECT_EQ(12_us / 3_us, 4);
  EXPECT_LT(1_us, 2_us);
  EXPECT_DOUBLE_EQ((1500_ns).us(), 1.5);
}

TEST(TimeNs, ScaledRounds) {
  EXPECT_EQ((10_us).scaled(1.5).ns(), 15'000);
  EXPECT_EQ((10_us).scaled(0.0).ns(), 0);
}

TEST(Bandwidth, Conversions) {
  const Bandwidth b = 10_Gbps;
  EXPECT_DOUBLE_EQ(b.bits_per_sec(), 1e10);
  EXPECT_DOUBLE_EQ(b.bytes_per_ns(), 1.25);
  EXPECT_DOUBLE_EQ(b.gbit_per_sec(), 10.0);
}

TEST(Bandwidth, TxTimeIsExactForMtu) {
  // 1500 B at 10 Gbps = 1200 ns exactly.
  EXPECT_EQ((10_Gbps).tx_time(1500).ns(), 1200);
  // 64 B at 100 Gbps = 5.12 ns, rounded to 5.
  EXPECT_EQ((100_Gbps).tx_time(64).ns(), 5);
  // Tiny payloads still take at least 1 ns.
  EXPECT_EQ((100_Gbps).tx_time(1).ns(), 1);
  EXPECT_EQ((10_Gbps).tx_time(0).ns(), 0);
}

TEST(Bandwidth, BdpBytes) {
  // 10 Gbps * 24 us = 30 KB.
  EXPECT_DOUBLE_EQ((10_Gbps).bdp_bytes(24_us), 30'000.0);
}

TEST(Bandwidth, ArithmeticAndRatios) {
  EXPECT_DOUBLE_EQ((4_Gbps + 6_Gbps).gbit_per_sec(), 10.0);
  EXPECT_DOUBLE_EQ((10_Gbps * 0.95).gbit_per_sec(), 9.5);
  EXPECT_DOUBLE_EQ(8_Gbps / 2_Gbps, 4.0);
}

TEST(Ids, ValidityAndComparison) {
  EXPECT_FALSE(HostId{}.valid());
  EXPECT_TRUE(HostId{0}.valid());
  EXPECT_EQ(HostId{3}, HostId{3});
  EXPECT_NE(HostId{3}, HostId{4});
}

TEST(Ids, VmPairKeyIsInjective) {
  std::set<std::uint64_t> keys;
  for (int a = 0; a < 30; ++a) {
    for (int b = 0; b < 30; ++b) {
      keys.insert(VmPairId{VmId{a}, VmId{b}}.key());
    }
  }
  EXPECT_EQ(keys.size(), 900u);
}

TEST(Rng, DeterministicForSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInRange) {
  Rng r(7);
  for (int i = 0; i < 10'000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, BelowIsUnbiasedEnough) {
  Rng r(9);
  int counts[5] = {};
  const int n = 100'000;
  for (int i = 0; i < n; ++i) ++counts[r.below(5)];
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c), n / 5.0, n * 0.01);
  }
}

TEST(Rng, RangeInclusive) {
  Rng r(11);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10'000; ++i) {
    const auto v = r.range(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    saw_lo |= v == 3;
    saw_hi |= v == 7;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, ExponentialMean) {
  Rng r(13);
  double sum = 0;
  const int n = 200'000;
  for (int i = 0; i < n; ++i) sum += r.exponential(5.0);
  EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(Rng, ForkIndependence) {
  Rng parent(99);
  Rng a = parent.fork("alpha");
  Rng b = parent.fork("beta");
  Rng a2 = Rng(99).fork("alpha");
  EXPECT_EQ(a(), a2());  // fork is a pure function of (seed, tag)
  EXPECT_NE(a(), b());
}

TEST(Ewma, FirstSampleVerbatim) {
  Ewma e(0.5);
  EXPECT_FALSE(e.primed());
  e.add(10.0);
  EXPECT_TRUE(e.primed());
  EXPECT_DOUBLE_EQ(e.value(), 10.0);
  e.add(20.0);
  EXPECT_DOUBLE_EQ(e.value(), 15.0);
}

TEST(Ewma, ConvergesToConstant) {
  Ewma e(0.2);
  for (int i = 0; i < 200; ++i) e.add(7.5);
  EXPECT_DOUBLE_EQ(e.value(), 7.5);
}

TEST(Strings, RenderTimeAndBandwidth) {
  EXPECT_EQ(to_string(1500_ns), "1500ns");
  EXPECT_EQ(to_string(13250_ns), "13.250us");
  EXPECT_EQ(to_string(10_Gbps), "10.00Gbps");
}

/// Log sink/clock/threshold are process-wide; this fixture snapshots and
/// restores them so the tests compose in any order.
class LogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    saved_threshold_ = log_threshold();
    set_log_sink([this](LogLevel level, const std::string& line) {
      levels.push_back(level);
      lines.push_back(line);
    });
  }
  void TearDown() override {
    set_log_sink({});
    set_log_clock({});
    set_log_threshold(saved_threshold_);
  }

  std::vector<LogLevel> levels;
  std::vector<std::string> lines;

 private:
  LogLevel saved_threshold_ = LogLevel::kWarn;
};

TEST_F(LogTest, SinkReceivesFormattedLine) {
  set_log_threshold(LogLevel::kDebug);
  UFAB_LOG_WARN("queue %d over %s", 3, "budget");
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(levels[0], LogLevel::kWarn);
  EXPECT_EQ(lines[0], "[ufab WARN] queue 3 over budget");
}

TEST_F(LogTest, ThresholdSuppressesBelow) {
  set_log_threshold(LogLevel::kWarn);
  UFAB_LOG_DEBUG("invisible");
  UFAB_LOG_INFO("invisible");
  UFAB_LOG_ERROR("visible");
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(levels[0], LogLevel::kError);
  set_log_threshold(LogLevel::kOff);
  UFAB_LOG_ERROR("also invisible");
  EXPECT_EQ(lines.size(), 1u);
}

TEST_F(LogTest, ClockStampsLinesWithSimTime) {
  set_log_threshold(LogLevel::kInfo);
  set_log_clock([] { return TimeNs{1'500}; });
  UFAB_LOG_INFO("probe echoed");
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0], "[ufab INFO t=1500ns] probe echoed");
  // Removing the clock removes the stamp.
  set_log_clock({});
  UFAB_LOG_INFO("later");
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[1], "[ufab INFO] later");
}

TEST(LogLevelParse, NamesAliasesAndCase) {
  EXPECT_EQ(parse_log_level("debug", LogLevel::kOff), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("info", LogLevel::kOff), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("warn", LogLevel::kOff), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("warning", LogLevel::kOff), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("error", LogLevel::kOff), LogLevel::kError);
  EXPECT_EQ(parse_log_level("off", LogLevel::kDebug), LogLevel::kOff);
  EXPECT_EQ(parse_log_level("none", LogLevel::kDebug), LogLevel::kOff);
  EXPECT_EQ(parse_log_level("WARN", LogLevel::kOff), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("Info", LogLevel::kOff), LogLevel::kInfo);
  // Unknown names and a missing variable fall back, not abort.
  EXPECT_EQ(parse_log_level("loud", LogLevel::kInfo), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("", LogLevel::kError), LogLevel::kError);
  EXPECT_EQ(parse_log_level(nullptr, LogLevel::kWarn), LogLevel::kWarn);
}

TEST(LogLevelParse, ReloadFromEnvAndExplicitOverride) {
  const LogLevel saved = log_threshold();
  ::setenv("UFAB_LOG_LEVEL", "debug", 1);
  reload_log_level_from_env();
  EXPECT_EQ(log_threshold(), LogLevel::kDebug);
  // An explicit set outranks the environment until the next reload.
  set_log_threshold(LogLevel::kError);
  EXPECT_EQ(log_threshold(), LogLevel::kError);
  ::setenv("UFAB_LOG_LEVEL", "garbage", 1);
  reload_log_level_from_env();  // unknown value keeps the current threshold
  EXPECT_EQ(log_threshold(), LogLevel::kError);
  ::unsetenv("UFAB_LOG_LEVEL");
  set_log_threshold(saved);
}

}  // namespace
}  // namespace ufab

// UniqueFunction small-buffer optimization: capture placement, heap
// fallback for large or over-aligned captures, move semantics for both
// storage classes, and destruction of pending captures when the event queue
// is cut short (the ownership property simulator events rely on).
#include <cstdint>
#include <memory>
#include <utility>

#include <gtest/gtest.h>

#include "src/core/time.hpp"
#include "src/core/unique_function.hpp"
#include "src/sim/simulator.hpp"

namespace ufab {
namespace {

struct DtorCounter {
  explicit DtorCounter(int* count) : count_(count) {}
  ~DtorCounter() {
    if (count_ != nullptr) ++*count_;
  }
  DtorCounter(DtorCounter&& o) noexcept : count_(std::exchange(o.count_, nullptr)) {}
  DtorCounter& operator=(DtorCounter&& o) noexcept {
    count_ = std::exchange(o.count_, nullptr);
    return *this;
  }
  int* count_;
};

TEST(UniqueFunction, SmallCaptureIsInline) {
  std::int64_t a = 1, b = 2, c = 3;
  UniqueFunction fn([a, b, c] { (void)(a + b + c); });
  EXPECT_TRUE(fn.is_inline());
}

TEST(UniqueFunction, MoveOnlyCaptureOverInlineLimitFallsBackToHeap) {
  struct Big {
    std::unique_ptr<int> owned;
    unsigned char pad[UniqueFunction::kInlineCaptureBytes];  // pushes over the limit
  };
  Big big{std::make_unique<int>(7), {}};
  int got = 0;
  UniqueFunction fn([&got, big = std::move(big)] { got = *big.owned; });
  EXPECT_FALSE(fn.is_inline());
  fn();
  EXPECT_EQ(got, 7);
}

TEST(UniqueFunction, ExactlyAtLimitStaysInline) {
  struct AtLimit {
    unsigned char bytes[UniqueFunction::kInlineCaptureBytes];
    void operator()() {}
  };
  static_assert(UniqueFunction::fits_inline<AtLimit>());
  struct OverLimit {
    unsigned char bytes[UniqueFunction::kInlineCaptureBytes + 1];
    void operator()() {}
  };
  static_assert(!UniqueFunction::fits_inline<OverLimit>());
  UniqueFunction fn(AtLimit{});
  EXPECT_TRUE(fn.is_inline());
}

TEST(UniqueFunction, MovePreservesCallableAndEmptiesSource) {
  int calls = 0;
  UniqueFunction a([&calls] { ++calls; });
  UniqueFunction b(std::move(a));
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move): post-move state test
  ASSERT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(calls, 1);

  UniqueFunction c;
  c = std::move(b);
  c();
  EXPECT_EQ(calls, 2);
}

TEST(UniqueFunction, MoveOnlyInlineCaptureDestroyedExactlyOnce) {
  int dtors = 0;
  {
    UniqueFunction fn([d = DtorCounter(&dtors)] { (void)d; });
    EXPECT_TRUE(fn.is_inline());
    UniqueFunction moved(std::move(fn));
    EXPECT_EQ(dtors, 0);  // alive inside `moved`
  }
  EXPECT_EQ(dtors, 1);
}

TEST(UniqueFunction, HeapCaptureDestroyedExactlyOnce) {
  int dtors = 0;
  {
    struct BigCapture {
      DtorCounter d;
      unsigned char pad[2 * UniqueFunction::kInlineCaptureBytes] = {};
    };
    UniqueFunction fn([cap = BigCapture{DtorCounter(&dtors)}] { (void)cap; });
    EXPECT_FALSE(fn.is_inline());
    UniqueFunction moved(std::move(fn));
    EXPECT_EQ(dtors, 0);
  }
  EXPECT_EQ(dtors, 1);
}

TEST(UniqueFunction, PendingCapturesDestroyedAtRunUntilCutoff) {
  // A run cut short must destroy the captures of never-run events with the
  // event queue — both inline and heap-stored — or owned packets would leak.
  int dtors = 0;
  {
    sim::Simulator sim;
    sim.at(TimeNs{1'000}, [d = DtorCounter(&dtors)] { (void)d; });
    struct BigCapture {
      DtorCounter d;
      unsigned char pad[2 * UniqueFunction::kInlineCaptureBytes] = {};
    };
    sim.at(TimeNs{2'000'000}, [cap = BigCapture{DtorCounter(&dtors)}] { (void)cap; });
    sim.run_until(TimeNs{500});  // both events still pending
    EXPECT_EQ(sim.pending(), 2u);
    EXPECT_EQ(dtors, 0);
  }  // Simulator teardown destroys the queue
  EXPECT_EQ(dtors, 2);
}

}  // namespace
}  // namespace ufab

// MetricRegistry: handle identity, label churn, pull gauges, collectors,
// and snapshot serialization.
#include <gtest/gtest.h>

#include <string>

#include "src/obs/metrics.hpp"

namespace ufab::obs {
namespace {

TEST(MetricRegistry, SameNameAndLabelsReturnSameHandle) {
  MetricRegistry reg;
  Counter* c1 = reg.counter("edge.probes", {{"host", "0"}});
  Counter* c2 = reg.counter("edge.probes", {{"host", "0"}});
  EXPECT_EQ(c1, c2);
  EXPECT_EQ(reg.metric_count(), 1u);
  c1->inc(3);
  EXPECT_EQ(c2->value(), 3);
}

TEST(MetricRegistry, DifferentLabelsAreDifferentSeries) {
  MetricRegistry reg;
  Counter* a = reg.counter("edge.probes", {{"host", "0"}});
  Counter* b = reg.counter("edge.probes", {{"host", "1"}});
  Counter* bare = reg.counter("edge.probes");
  EXPECT_NE(a, b);
  EXPECT_NE(a, bare);
  EXPECT_EQ(reg.metric_count(), 3u);
}

TEST(MetricRegistry, HandlesStableUnderLabelChurn) {
  // Re-registering with many interleaved label sets (tenants joining and
  // re-attaching) must neither invalidate earlier handles nor duplicate
  // series: the registry's deque storage keeps addresses stable.
  MetricRegistry reg;
  Counter* first = reg.counter("tenant.bytes", {{"tenant", "T0"}});
  first->inc(7);
  for (int round = 0; round < 4; ++round) {
    for (int t = 0; t < 64; ++t) {
      reg.counter("tenant.bytes", {{"tenant", "T" + std::to_string(t)}})->inc();
    }
  }
  EXPECT_EQ(reg.metric_count(), 64u);
  EXPECT_EQ(reg.counter("tenant.bytes", {{"tenant", "T0"}}), first);
  EXPECT_EQ(first->value(), 7 + 4);
}

TEST(MetricRegistry, GaugeCallbackIsPulledAtSnapshot) {
  MetricRegistry reg;
  double live = 1.5;
  reg.gauge_fn("core.phi_total", {}, [&live] { return live; });
  EXPECT_DOUBLE_EQ(reg.snapshot().find("core.phi_total")->value, 1.5);
  live = 99.0;  // no re-registration, the next snapshot just re-reads
  EXPECT_DOUBLE_EQ(reg.snapshot().find("core.phi_total")->value, 99.0);
}

TEST(MetricRegistry, CollectorsRunEverySnapshot) {
  MetricRegistry reg;
  int tenants = 1;
  reg.add_collector([&tenants](MetricRegistry& r) {
    for (int t = 0; t < tenants; ++t) {
      r.gauge("tenant.rate", {{"tenant", std::to_string(t)}})->set(t * 10.0);
    }
  });
  EXPECT_EQ(reg.snapshot().rows.size(), 1u);
  tenants = 3;  // population grew between snapshots
  const auto snap = reg.snapshot();
  EXPECT_EQ(snap.rows.size(), 3u);
  EXPECT_DOUBLE_EQ(snap.find("tenant.rate", {{"tenant", "2"}})->value, 20.0);
}

TEST(MetricsSnapshot, HistogramSummaryAndFind) {
  MetricRegistry reg;
  Histogram* h = reg.histogram("rtt_us", {{"host", "3"}});
  for (int i = 1; i <= 100; ++i) h->observe(i);
  const auto snap = reg.snapshot();
  const auto* row = snap.find("rtt_us", {{"host", "3"}});
  ASSERT_NE(row, nullptr);
  EXPECT_EQ(row->kind, "histogram");
  EXPECT_DOUBLE_EQ(row->value, 100.0);  // sample count
  EXPECT_NEAR(row->p50, 50.5, 0.1);
  EXPECT_DOUBLE_EQ(row->max, 100.0);
  // find() with labels omitted matches the first row of that name; a label
  // mismatch matches nothing.
  EXPECT_EQ(snap.find("rtt_us"), row);
  EXPECT_EQ(snap.find("rtt_us", {{"host", "9"}}), nullptr);
  EXPECT_EQ(snap.find("absent"), nullptr);
}

TEST(MetricsSnapshot, JsonAndCsvSerialization) {
  MetricRegistry reg;
  reg.counter("a.count", {{"k", "v\"q"}})->inc(2);
  reg.gauge("b.level")->set(0.5);
  const auto snap = reg.snapshot();

  const std::string json = snap.to_json();
  EXPECT_NE(json.find("\"a.count\""), std::string::npos);
  EXPECT_NE(json.find("\\\"q"), std::string::npos);  // label value escaped
  EXPECT_NE(json.find("\"b.level\""), std::string::npos);

  const std::string csv = snap.to_csv();
  EXPECT_NE(csv.find("a.count"), std::string::npos);
  EXPECT_NE(csv.find("counter"), std::string::npos);
  EXPECT_NE(csv.find("gauge"), std::string::npos);
}

}  // namespace
}  // namespace ufab::obs

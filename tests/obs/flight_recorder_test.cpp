// FlightRecorder: ring semantics, causal slices, and export validity.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "src/obs/flight_recorder.hpp"

namespace ufab::obs {
namespace {

TraceEvent probe_event(std::uint64_t seq, EventKind kind = EventKind::kProbeSent) {
  TraceEvent ev;
  ev.at = TimeNs{static_cast<std::int64_t>(seq) * 1'000};
  ev.kind = kind;
  ev.track = Track::host(HostId{0});
  ev.pair = VmPairId{VmId{1}, VmId{2}};
  ev.seq = seq;
  return ev;
}

TEST(FlightRecorder, RingWraparoundKeepsNewestInOrder) {
  FlightRecorder rec(8);
  for (std::uint64_t i = 0; i < 20; ++i) rec.record(probe_event(i));
  EXPECT_EQ(rec.capacity(), 8u);
  EXPECT_EQ(rec.size(), 8u);
  EXPECT_EQ(rec.recorded_total(), 20u);
  const auto evs = rec.events();
  ASSERT_EQ(evs.size(), 8u);
  // The retained window is exactly the last 8 events, oldest first — the
  // wraparound is deterministic, not approximate.
  for (std::size_t i = 0; i < evs.size(); ++i) {
    EXPECT_EQ(evs[i].seq, 12u + i);
    if (i > 0) EXPECT_GE(evs[i].at, evs[i - 1].at);
  }
}

TEST(FlightRecorder, BelowCapacityReturnsAllInOrder) {
  FlightRecorder rec(16);
  for (std::uint64_t i = 0; i < 5; ++i) rec.record(probe_event(i));
  const auto evs = rec.events();
  ASSERT_EQ(evs.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(evs[i].seq, i);
}

TEST(FlightRecorder, EventsForPairSlicesCausally) {
  FlightRecorder rec(64);
  const VmPairId mine{VmId{1}, VmId{2}};
  const VmPairId other{VmId{3}, VmId{4}};
  for (std::uint64_t i = 0; i < 10; ++i) {
    TraceEvent ev = probe_event(i);
    ev.pair = (i % 2 == 0) ? mine : other;
    rec.record(ev);
  }
  const auto slice = rec.events_for_pair(mine);
  ASSERT_EQ(slice.size(), 5u);
  for (const auto& ev : slice) EXPECT_EQ(ev.pair.key(), mine.key());
}

TEST(FlightRecorder, ClearResetsRetainedButNotTotal) {
  FlightRecorder rec(8);
  for (std::uint64_t i = 0; i < 3; ++i) rec.record(probe_event(i));
  rec.clear();
  EXPECT_EQ(rec.size(), 0u);
  EXPECT_TRUE(rec.events().empty());
  rec.record(probe_event(42));
  ASSERT_EQ(rec.events().size(), 1u);
  EXPECT_EQ(rec.events()[0].seq, 42u);
}

TEST(FlightRecorder, ChromeTraceExportIsWellFormed) {
  FlightRecorder rec(64);
  // A full probe chain plus an instant event, so the export exercises the
  // "X"+flow path, the "i" path, and the tenant counter series.
  for (const EventKind k : {EventKind::kProbeSent, EventKind::kProbeIntStamp,
                            EventKind::kProbeEchoed, EventKind::kWindowUpdate}) {
    TraceEvent ev = probe_event(7, k);
    ev.tenant = TenantId{0};
    rec.record(ev);
  }
  TraceEvent drop = probe_event(8, EventKind::kDrop);
  drop.track = Track::link(LinkId{2});
  rec.record(drop);

  std::ostringstream os;
  rec.write_chrome_trace(os);
  const std::string trace = os.str();
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace.find("\"process_name\""), std::string::npos);
  EXPECT_NE(trace.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(trace.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(trace.find("\"ph\": \"s\""), std::string::npos);
  EXPECT_NE(trace.find("\"ph\": \"i\""), std::string::npos);
  EXPECT_NE(trace.find("\"ph\": \"C\""), std::string::npos);

  // Validate against the reference checker when python3 is available (it is
  // in CI); the checker exits non-zero on any schema violation.
  if (std::system("python3 -c '' >/dev/null 2>&1") != 0) {
    GTEST_SKIP() << "python3 not available";
  }
  const std::string path = ::testing::TempDir() + "/flight_recorder_test.trace.json";
  {
    std::ofstream f(path, std::ios::trunc);
    f << trace;
  }
  const std::string cmd =
      "python3 " SOURCE_DIR "/scripts/render_trace.py --quiet " + path + " >/dev/null";
  EXPECT_EQ(std::system(cmd.c_str()), 0) << "render_trace.py rejected the export";
  std::remove(path.c_str());
}

TEST(FlightRecorderSustained, MultiWrapEvictsOldestKeepsNewestInOrder) {
  // A soak-length stream pushes the ring through many full revolutions; the
  // retained window must always be exactly the newest `capacity` events.
  constexpr std::size_t kCap = 32;
  constexpr std::uint64_t kTotal = 5 * kCap + 7;  // > 5 full wraps, misaligned
  FlightRecorder rec(kCap);
  for (std::uint64_t i = 0; i < kTotal; ++i) rec.record(probe_event(i));
  EXPECT_EQ(rec.size(), kCap);
  EXPECT_EQ(rec.recorded_total(), kTotal);
  const auto evs = rec.events();
  ASSERT_EQ(evs.size(), kCap);
  for (std::size_t i = 0; i < kCap; ++i) {
    EXPECT_EQ(evs[i].seq, kTotal - kCap + i);
    if (i > 0) {
      EXPECT_GE(evs[i].at, evs[i - 1].at);
    }
  }
}

TEST(FlightRecorderSustained, CausalSliceStaysCorrectAcrossWraps) {
  // Interleave two pairs while wrapping four times: the per-pair slice must
  // contain only the surviving events of that pair, still in causal order.
  constexpr std::size_t kCap = 16;
  constexpr std::uint64_t kTotal = 4 * kCap;
  const VmPairId mine{VmId{1}, VmId{2}};
  const VmPairId other{VmId{3}, VmId{4}};
  FlightRecorder rec(kCap);
  for (std::uint64_t i = 0; i < kTotal; ++i) {
    TraceEvent ev = probe_event(i);
    ev.pair = (i % 3 == 0) ? mine : other;
    rec.record(ev);
  }
  const auto slice = rec.events_for_pair(mine);
  // The retained ring is seqs [kTotal-kCap, kTotal); mine are the multiples
  // of 3 within it.
  std::size_t expect = 0;
  for (std::uint64_t s = kTotal - kCap; s < kTotal; ++s) {
    if (s % 3 == 0) ++expect;
  }
  ASSERT_EQ(slice.size(), expect);
  for (std::size_t i = 0; i < slice.size(); ++i) {
    EXPECT_EQ(slice[i].pair.key(), mine.key());
    EXPECT_EQ(slice[i].seq % 3, 0u);
    EXPECT_GE(slice[i].seq, kTotal - kCap);
    if (i > 0) {
      EXPECT_GT(slice[i].at, slice[i - 1].at);
    }
  }
}

TEST(FlightRecorderSustained, ChromeTraceStaysValidAfterThreeWraps) {
  // Export validity must not depend on the ring being in its first
  // revolution: drive >= 3 full wraps of mixed event kinds (complete probe
  // chains, drops on a link track, window updates with a tenant) and check
  // the export still renders.
  constexpr std::size_t kCap = 16;
  FlightRecorder rec(kCap);
  std::uint64_t seq = 0;
  for (int round = 0; round < 16; ++round) {  // 16 * 4 events = 4 wraps of 16
    for (const EventKind k : {EventKind::kProbeSent, EventKind::kProbeIntStamp,
                              EventKind::kProbeEchoed, EventKind::kWindowUpdate}) {
      TraceEvent ev = probe_event(seq++, k);
      ev.tenant = TenantId{0};
      if (k == EventKind::kWindowUpdate) ev.track = Track::link(LinkId{1});
      rec.record(ev);
    }
  }
  ASSERT_GE(rec.recorded_total(), 3 * kCap);
  EXPECT_EQ(rec.size(), kCap);

  std::ostringstream os;
  rec.write_chrome_trace(os);
  const std::string trace = os.str();
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace.find("\"ph\": \"X\""), std::string::npos);
  // Evicted events must not leak into the export: the oldest surviving seq
  // is recorded_total - capacity.
  const std::uint64_t oldest = rec.recorded_total() - kCap;
  for (const auto& ev : rec.events()) EXPECT_GE(ev.seq, oldest);

  if (std::system("python3 -c '' >/dev/null 2>&1") != 0) {
    GTEST_SKIP() << "python3 not available";
  }
  const std::string path = ::testing::TempDir() + "/flight_recorder_wrap.trace.json";
  {
    std::ofstream f(path, std::ios::trunc);
    f << trace;
  }
  const std::string cmd =
      "python3 " SOURCE_DIR "/scripts/render_trace.py --quiet " + path + " >/dev/null";
  EXPECT_EQ(std::system(cmd.c_str()), 0) << "render_trace.py rejected the post-wrap export";
  std::remove(path.c_str());
}

TEST(FlightRecorder, RawJsonExportListsEveryEvent) {
  FlightRecorder rec(8);
  rec.record(probe_event(1));
  rec.record(probe_event(2, EventKind::kWindowUpdate));
  std::ostringstream os;
  rec.write_json(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("probe_sent"), std::string::npos);
  EXPECT_NE(json.find("window_update"), std::string::npos);
}

}  // namespace
}  // namespace ufab::obs

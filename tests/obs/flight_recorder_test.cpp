// FlightRecorder: ring semantics, causal slices, and export validity.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "src/obs/flight_recorder.hpp"

namespace ufab::obs {
namespace {

TraceEvent probe_event(std::uint64_t seq, EventKind kind = EventKind::kProbeSent) {
  TraceEvent ev;
  ev.at = TimeNs{static_cast<std::int64_t>(seq) * 1'000};
  ev.kind = kind;
  ev.track = Track::host(HostId{0});
  ev.pair = VmPairId{VmId{1}, VmId{2}};
  ev.seq = seq;
  return ev;
}

TEST(FlightRecorder, RingWraparoundKeepsNewestInOrder) {
  FlightRecorder rec(8);
  for (std::uint64_t i = 0; i < 20; ++i) rec.record(probe_event(i));
  EXPECT_EQ(rec.capacity(), 8u);
  EXPECT_EQ(rec.size(), 8u);
  EXPECT_EQ(rec.recorded_total(), 20u);
  const auto evs = rec.events();
  ASSERT_EQ(evs.size(), 8u);
  // The retained window is exactly the last 8 events, oldest first — the
  // wraparound is deterministic, not approximate.
  for (std::size_t i = 0; i < evs.size(); ++i) {
    EXPECT_EQ(evs[i].seq, 12u + i);
    if (i > 0) EXPECT_GE(evs[i].at, evs[i - 1].at);
  }
}

TEST(FlightRecorder, BelowCapacityReturnsAllInOrder) {
  FlightRecorder rec(16);
  for (std::uint64_t i = 0; i < 5; ++i) rec.record(probe_event(i));
  const auto evs = rec.events();
  ASSERT_EQ(evs.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(evs[i].seq, i);
}

TEST(FlightRecorder, EventsForPairSlicesCausally) {
  FlightRecorder rec(64);
  const VmPairId mine{VmId{1}, VmId{2}};
  const VmPairId other{VmId{3}, VmId{4}};
  for (std::uint64_t i = 0; i < 10; ++i) {
    TraceEvent ev = probe_event(i);
    ev.pair = (i % 2 == 0) ? mine : other;
    rec.record(ev);
  }
  const auto slice = rec.events_for_pair(mine);
  ASSERT_EQ(slice.size(), 5u);
  for (const auto& ev : slice) EXPECT_EQ(ev.pair.key(), mine.key());
}

TEST(FlightRecorder, ClearResetsRetainedButNotTotal) {
  FlightRecorder rec(8);
  for (std::uint64_t i = 0; i < 3; ++i) rec.record(probe_event(i));
  rec.clear();
  EXPECT_EQ(rec.size(), 0u);
  EXPECT_TRUE(rec.events().empty());
  rec.record(probe_event(42));
  ASSERT_EQ(rec.events().size(), 1u);
  EXPECT_EQ(rec.events()[0].seq, 42u);
}

TEST(FlightRecorder, ChromeTraceExportIsWellFormed) {
  FlightRecorder rec(64);
  // A full probe chain plus an instant event, so the export exercises the
  // "X"+flow path, the "i" path, and the tenant counter series.
  for (const EventKind k : {EventKind::kProbeSent, EventKind::kProbeIntStamp,
                            EventKind::kProbeEchoed, EventKind::kWindowUpdate}) {
    TraceEvent ev = probe_event(7, k);
    ev.tenant = TenantId{0};
    rec.record(ev);
  }
  TraceEvent drop = probe_event(8, EventKind::kDrop);
  drop.track = Track::link(LinkId{2});
  rec.record(drop);

  std::ostringstream os;
  rec.write_chrome_trace(os);
  const std::string trace = os.str();
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace.find("\"process_name\""), std::string::npos);
  EXPECT_NE(trace.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(trace.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(trace.find("\"ph\": \"s\""), std::string::npos);
  EXPECT_NE(trace.find("\"ph\": \"i\""), std::string::npos);
  EXPECT_NE(trace.find("\"ph\": \"C\""), std::string::npos);

  // Validate against the reference checker when python3 is available (it is
  // in CI); the checker exits non-zero on any schema violation.
  if (std::system("python3 -c '' >/dev/null 2>&1") != 0) {
    GTEST_SKIP() << "python3 not available";
  }
  const std::string path = ::testing::TempDir() + "/flight_recorder_test.trace.json";
  {
    std::ofstream f(path, std::ios::trunc);
    f << trace;
  }
  const std::string cmd =
      "python3 " SOURCE_DIR "/scripts/render_trace.py --quiet " + path + " >/dev/null";
  EXPECT_EQ(std::system(cmd.c_str()), 0) << "render_trace.py rejected the export";
  std::remove(path.c_str());
}

TEST(FlightRecorder, RawJsonExportListsEveryEvent) {
  FlightRecorder rec(8);
  rec.record(probe_event(1));
  rec.record(probe_event(2, EventKind::kWindowUpdate));
  std::ostringstream os;
  rec.write_json(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("probe_sent"), std::string::npos);
  EXPECT_NE(json.find("window_update"), std::string::npos);
}

}  // namespace
}  // namespace ufab::obs

// Observability plane integration: passivity (enabled == disabled, packet for
// packet), causal-chain reconstruction from the flight recorder alone, and
// fabric/fault metric export.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <vector>

#include "src/faults/fault_plane.hpp"
#include "src/harness/fabric.hpp"
#include "src/topo/builders.hpp"
#include "src/ufab/edge_agent.hpp"

namespace ufab {
namespace {

using namespace ufab::time_literals;
using namespace ufab::unit_literals;

constexpr TimeNs kRun = 8_ms;

/// Two 4 Gbps VFs on a 2-leaf / 2-spine fabric — the same shape the
/// fault-recovery bench uses, small enough to run twice per test.
struct World {
  std::unique_ptr<harness::Fabric> fab;
  std::vector<VmPairId> pairs;

  explicit World(bool with_obs, std::uint64_t seed = 7) {
    fab = std::make_unique<harness::Fabric>(
        [](sim::Simulator& s) { return topo::make_leaf_spine(s, 2, 2, 2); }, seed);
    if (with_obs) fab->enable_observability();
    fab->instrument_cores({});
    for (std::size_t h = 0; h < fab->net().host_count(); ++h) {
      const HostId host{static_cast<std::int32_t>(h)};
      fab->adopt_stack(host, std::make_unique<edge::EdgeAgent>(
                                 fab->net(), fab->vms(), host, edge::EdgeConfig{},
                                 transport::TransportOptions{}, fab->rng().fork(h)));
    }
    fab->install_pair_metering(1_ms);
    fab->install_tenant_metering(1_ms);
    for (int i = 0; i < 2; ++i) {
      const TenantId t = fab->vms().add_tenant("VF-" + std::to_string(i + 1), 4_Gbps);
      pairs.push_back(
          VmPairId{fab->vms().add_vm(t, HostId{i}), fab->vms().add_vm(t, HostId{2 + i})});
      fab->keep_backlogged(pairs.back(), 0_ms, kRun);
    }
  }

  struct Signature {
    std::uint64_t events = 0;
    std::vector<std::int64_t> pair_bytes;
    std::int64_t drops = 0;
    std::int64_t max_queue = 0;
  };

  Signature run() {
    fab->sim().run_until(kRun);
    Signature s;
    s.events = fab->sim().events_processed();
    for (const VmPairId p : pairs) {
      RateMeter* m = fab->pair_meter(p);
      s.pair_bytes.push_back(m != nullptr ? m->total_bytes() : -1);
    }
    for (const sim::Link* l : fab->net().links()) {
      s.drops += l->drops() + l->fault_drops();
      s.max_queue = std::max(s.max_queue, l->max_queue_bytes());
    }
    return s;
  }
};

TEST(ObsIntegration, DisabledModeIsBitIdenticalToSeedRun) {
  // The acceptance property for the whole plane: recording everything
  // (control plane + datapath) must not perturb the simulation by a single
  // event, byte, or drop.
  World plain(/*with_obs=*/false);
  World observed(/*with_obs=*/true);
  const auto a = plain.run();
  const auto b = observed.run();
  EXPECT_GT(observed.fab->observability()->recorder().recorded_total(), 0u);

  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.pair_bytes, b.pair_bytes);
  EXPECT_EQ(a.drops, b.drops);
  EXPECT_EQ(a.max_queue, b.max_queue);
}

TEST(ObsIntegration, ObsOptionsEnabledFalseRecordsNothing) {
  obs::ObsOptions opts;
  opts.enabled = false;
  World w(/*with_obs=*/false);
  w.fab->enable_observability(opts);
  w.run();
  ASSERT_NE(w.fab->observability(), nullptr);
  EXPECT_FALSE(w.fab->observability()->enabled());
  EXPECT_EQ(w.fab->observability()->recorder().recorded_total(), 0u);
  EXPECT_EQ(w.fab->observability()->metrics().metric_count(), 0u);
}

TEST(ObsIntegration, ProbeCausalChainReconstructsFromRecorderAlone) {
  World w(/*with_obs=*/true);
  w.run();
  const VmPairId pair = w.pairs[0];
  const auto slice = w.fab->observability()->recorder().events_for_pair(pair);
  ASSERT_FALSE(slice.empty());

  // Group the pair's slice by probe sequence number and find sequences that
  // carry the full send -> INT-stamp -> echo -> window-update chain.
  std::map<std::uint64_t, std::vector<obs::TraceEvent>> by_seq;
  for (const auto& ev : slice) by_seq[ev.seq].push_back(ev);
  int complete_chains = 0;
  for (const auto& [seq, evs] : by_seq) {
    const auto find = [&evs](obs::EventKind k) {
      return std::find_if(evs.begin(), evs.end(),
                          [k](const obs::TraceEvent& e) { return e.kind == k; });
    };
    const auto sent = find(obs::EventKind::kProbeSent);
    const auto stamp = find(obs::EventKind::kProbeIntStamp);
    const auto echo = find(obs::EventKind::kProbeEchoed);
    const auto update = find(obs::EventKind::kWindowUpdate);
    if (sent == evs.end() || stamp == evs.end() || echo == evs.end() || update == evs.end()) {
      continue;
    }
    ++complete_chains;
    // Causal order holds on the recorder's timestamps alone.
    EXPECT_LE(sent->at, stamp->at);
    EXPECT_LE(stamp->at, echo->at);
    EXPECT_LE(echo->at, update->at);
    // And each hop sits on the right kind of track.
    EXPECT_EQ(sent->track.kind, obs::TrackKind::kHost);
    EXPECT_EQ(stamp->track.kind, obs::TrackKind::kSwitch);
    EXPECT_TRUE(stamp->link.valid());
    EXPECT_EQ(echo->track.kind, obs::TrackKind::kHost);
    EXPECT_NE(echo->track.id, sent->track.id);  // echoed at the destination
    EXPECT_EQ(update->track.kind, obs::TrackKind::kHost);
    EXPECT_EQ(update->track.id, sent->track.id);  // consumed back at the source
  }
  EXPECT_GT(complete_chains, 10);
}

TEST(ObsIntegration, WindowUpdatesCarryBoundAndTransition) {
  World w(/*with_obs=*/true);
  w.run();
  const auto evs = w.fab->observability()->recorder().events();
  int updates = 0;
  for (const auto& ev : evs) {
    if (ev.kind != obs::EventKind::kWindowUpdate) continue;
    ++updates;
    EXPECT_GE(ev.b, 0.0);  // new window
    EXPECT_LE(ev.detail, static_cast<std::uint8_t>(obs::WindowBound::kFloor));
  }
  EXPECT_GT(updates, 0);
}

TEST(ObsIntegration, MetricsSnapshotCoversFabricTenantsAndFaults) {
  World w(/*with_obs=*/true);
  faults::FaultPlane plane(*w.fab, 99);
  plane.attach_obs(*w.fab->observability());
  const LinkId victim = w.fab->net().links().front()->id();
  plane.flap(victim, 2_ms, 3_ms);
  plane.reset_switch_state(w.fab->net().switches().front()->id(), 4_ms);
  plane.arm();
  w.run();

  const auto snap = w.fab->metrics_snapshot();
  // Fabric-wide gauges.
  EXPECT_GT(snap.find("sim.events_processed")->value, 0.0);
  ASSERT_NE(snap.find("sim.now_us"), nullptr);
  ASSERT_NE(snap.find("fabric.total_drops"), nullptr);
  // Per-tenant guarantee / work-conservation gauges, labeled by tenant name.
  const obs::Labels vf1{{"tenant", "VF-1"}};
  ASSERT_NE(snap.find("tenant.guarantee_gbps", vf1), nullptr);
  EXPECT_DOUBLE_EQ(snap.find("tenant.guarantee_gbps", vf1)->value, 8.0);  // 4G x 2 VMs
  EXPECT_GT(snap.find("tenant.delivered_gbps", vf1)->value, 1.0);
  EXPECT_GT(snap.find("tenant.guarantee_satisfaction", vf1)->value, 0.1);
  // Per-core registers.
  ASSERT_NE(snap.find("core.phi_total"), nullptr);
  // Fault counters reflect the armed scenario.
  EXPECT_DOUBLE_EQ(snap.find("fault.link_downs")->value, 1.0);
  EXPECT_DOUBLE_EQ(snap.find("fault.link_ups")->value, 1.0);
  EXPECT_GT(snap.find("fault.switch_resets")->value, 0.0);

  // The flight recorder saw the fault activations too.
  const auto evs = w.fab->observability()->recorder().events();
  const auto has = [&evs](obs::EventKind k) {
    return std::any_of(evs.begin(), evs.end(),
                       [k](const obs::TraceEvent& e) { return e.kind == k; });
  };
  EXPECT_TRUE(has(obs::EventKind::kLinkDown));
  EXPECT_TRUE(has(obs::EventKind::kLinkUp));
  EXPECT_TRUE(has(obs::EventKind::kSwitchReset));
}

TEST(ObsIntegration, EnableObservabilityBeforeOrAfterWiringIsEquivalent) {
  // enable_observability() attaches to everything that exists and to
  // everything adopted later; both orders must produce a live recorder.
  World after(/*with_obs=*/false);
  after.fab->enable_observability();  // stacks + cores already in place
  after.run();
  World before(/*with_obs=*/true);  // enabled before instrument/adopt
  before.run();
  EXPECT_GT(after.fab->observability()->recorder().recorded_total(), 0u);
  EXPECT_EQ(after.fab->observability()->recorder().recorded_total(),
            before.fab->observability()->recorder().recorded_total());
}

}  // namespace
}  // namespace ufab

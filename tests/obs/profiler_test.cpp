// Engine self-profiling plane: passivity (profiled == unprofiled, event for
// event, serial and sharded), dispatch attribution completeness, profile
// export sanity, thread-local detailed scopes under ParallelSweep, prof.*
// metric export, and schema-2 Chrome-trace counter tracks.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "src/harness/fabric.hpp"
#include "src/harness/parallel_sweep.hpp"
#include "src/obs/profiler.hpp"
#include "src/topo/builders.hpp"
#include "src/ufab/edge_agent.hpp"

namespace ufab {
namespace {

using namespace ufab::time_literals;
using namespace ufab::unit_literals;

constexpr TimeNs kRun = 8_ms;

/// Two 4 Gbps VFs on a 2-leaf / 2-spine fabric — the same world the obs
/// passivity test uses, so the two planes are held to the same standard.
struct World {
  std::unique_ptr<harness::Fabric> fab;
  std::vector<VmPairId> pairs;

  explicit World(int prof_level, int shards = 0, std::uint64_t seed = 7,
                 bool with_obs = false) {
    fab = std::make_unique<harness::Fabric>(
        [](sim::Simulator& s) { return topo::make_leaf_spine(s, 2, 2, 2); }, seed);
    if (shards > 0) fab->configure_sharding(shards);
    if (with_obs) fab->enable_observability();
    if (prof_level > 0) {
      obs::ProfOptions opts;
      opts.level = prof_level;
      fab->sim().enable_profiling(opts);
    }
    fab->instrument_cores({});
    for (std::size_t h = 0; h < fab->net().host_count(); ++h) {
      const HostId host{static_cast<std::int32_t>(h)};
      fab->adopt_stack(host, std::make_unique<edge::EdgeAgent>(
                                 fab->net(), fab->vms(), host, edge::EdgeConfig{},
                                 transport::TransportOptions{}, fab->rng().fork(h)));
    }
    fab->install_pair_metering(1_ms);
    for (int i = 0; i < 2; ++i) {
      const TenantId t = fab->vms().add_tenant("VF-" + std::to_string(i + 1), 4_Gbps);
      pairs.push_back(
          VmPairId{fab->vms().add_vm(t, HostId{i}), fab->vms().add_vm(t, HostId{2 + i})});
      fab->keep_backlogged(pairs.back(), 0_ms, kRun);
    }
  }

  struct Signature {
    std::uint64_t events = 0;
    std::vector<std::int64_t> pair_bytes;
    std::int64_t drops = 0;
    std::int64_t max_queue = 0;

    bool operator==(const Signature&) const = default;
  };

  Signature run() {
    fab->sim().run_until(kRun);
    Signature s;
    s.events = fab->sim().events_processed();
    for (const VmPairId p : pairs) {
      RateMeter* m = fab->pair_meter(p);
      s.pair_bytes.push_back(m != nullptr ? m->total_bytes() : -1);
    }
    for (const sim::Link* l : fab->net().links()) {
      s.drops += l->drops() + l->fault_drops();
      s.max_queue = std::max(s.max_queue, l->max_queue_bytes());
    }
    return s;
  }

  /// Sum of both dispatch-category call counts across all shard slices.
  [[nodiscard]] std::uint64_t dispatch_count() const {
    const obs::Profiler* p = fab->sim().profiler();
    std::uint64_t n = 0;
    for (int s = 0; s < std::max(1, fab->sim().shard_count()); ++s) {
      const obs::ProfSlice& sl = p->slice(s);
      n += sl.count[static_cast<std::size_t>(obs::ProfCat::kDispatchDeliver)] +
           sl.count[static_cast<std::size_t>(obs::ProfCat::kDispatchClosure)];
    }
    return n;
  }
};

bool python3_available() { return std::system("python3 -c '' >/dev/null 2>&1") == 0; }

TEST(ProfilerPassivity, SerialProfiledRunIsBitIdentical) {
  // The acceptance property: attributing every nanosecond of engine time must
  // not perturb the simulation by a single event, byte, or drop.
  World plain(/*prof_level=*/0);
  World profiled(/*prof_level=*/2);
  const auto a = plain.run();
  const auto b = profiled.run();
  ASSERT_NE(profiled.fab->sim().profiler(), nullptr);
  EXPECT_GT(profiled.dispatch_count(), 0u);
  EXPECT_EQ(a, b);
}

TEST(ProfilerPassivity, ShardedProfiledRunIsBitIdentical) {
  // Same property with the 4-shard engine: barrier accounting, mailbox
  // injection timing, and per-shard queue sampling must all stay passive —
  // and must also match the serial unprofiled run (the engine's existing
  // serial == sharded guarantee must survive profiling).
  World serial(/*prof_level=*/0);
  World plain(/*prof_level=*/0, /*shards=*/4);
  World profiled(/*prof_level=*/2, /*shards=*/4);
  const auto s = serial.run();
  const auto a = plain.run();
  const auto b = profiled.run();
  EXPECT_EQ(a, b);
  EXPECT_EQ(s.pair_bytes, b.pair_bytes);
  EXPECT_EQ(s.drops, b.drops);
  EXPECT_EQ(s.max_queue, b.max_queue);
}

TEST(Profiler, DispatchCountsCoverEveryProcessedEvent) {
  // Loop-level attribution is complete: every event pops through exactly one
  // dispatch category, serial and sharded.
  World serial(/*prof_level=*/1);
  const auto a = serial.run();
  EXPECT_EQ(serial.dispatch_count(), a.events);

  World sharded(/*prof_level=*/1, /*shards=*/4);
  const auto b = sharded.run();
  EXPECT_EQ(sharded.dispatch_count(), b.events);
}

TEST(Profiler, DetailedScopesRequireLevelTwo) {
  World level1(/*prof_level=*/1);
  level1.run();
  const auto& s1 = level1.fab->sim().profiler()->slice(0);
  EXPECT_EQ(s1.count[static_cast<std::size_t>(obs::ProfCat::kWfq)], 0u);

  World level2(/*prof_level=*/2);
  level2.run();
  const auto& s2 = level2.fab->sim().profiler()->slice(0);
  EXPECT_GT(s2.count[static_cast<std::size_t>(obs::ProfCat::kWfq)], 0u);
  EXPECT_GT(s2.count[static_cast<std::size_t>(obs::ProfCat::kTelemetry)], 0u);
}

TEST(Profiler, DerivedSummaryAndProfileJsonAreSane) {
  World w(/*prof_level=*/1, /*shards=*/4);
  w.run();
  const obs::Profiler* p = w.fab->sim().profiler();
  const auto d = p->derived(w.fab->sim().shard_count());
  EXPECT_GE(d.stall_fraction, 0.0);
  EXPECT_LE(d.stall_fraction, 1.0);
  EXPECT_GE(d.shard_imbalance, 1.0);
  EXPECT_GT(d.busy_ns_total, 0.0);
  EXPECT_GT(p->epochs(), 0u);
  // Queue sampling ran on the sim-time cadence: 8 ms at 100 us per sample.
  EXPECT_GT(p->samples_taken(0), 10u);

  const std::string json = w.fab->sim().profile_json();
  EXPECT_NE(json.find("\"schema\": \"ufab-profile-v1\""), std::string::npos);
  EXPECT_NE(json.find("\"stall_fraction\""), std::string::npos);
  EXPECT_NE(json.find("\"shard_imbalance\""), std::string::npos);
  EXPECT_NE(json.find("\"dispatch_deliver\""), std::string::npos);

  if (!python3_available()) GTEST_SKIP() << "python3 not available";
  const std::string path = ::testing::TempDir() + "/profiler_test.profile.json";
  {
    std::ofstream f(path, std::ios::trunc);
    f << json;
  }
  // Valid JSON, and the report renderer accepts it in both modes.
  EXPECT_EQ(std::system(("python3 -c 'import json,sys; json.load(open(sys.argv[1]))' " + path)
                            .c_str()),
            0);
  EXPECT_EQ(std::system(("python3 " SOURCE_DIR "/scripts/profile_report.py " + path +
                         " >/dev/null")
                            .c_str()),
            0);
  EXPECT_EQ(std::system(("python3 " SOURCE_DIR "/scripts/profile_report.py --json " + path +
                         " >/dev/null")
                            .c_str()),
            0);
  std::remove(path.c_str());
}

TEST(Profiler, ParallelSweepKeepsPerVariantSlicesIsolated) {
  // Four profiled variants across three workers: each variant's detailed
  // scopes land in its own simulator's profiler (tls_prof_slice is scoped to
  // the running pass), and the sweep's own utilization stats cover exactly
  // the variants that ran.
  harness::ParallelSweep sweep(3);
  struct Row {
    std::uint64_t events = 0;
    std::uint64_t dispatch = 0;
    std::uint64_t wfq = 0;
  };
  const auto rows = sweep.map<Row>(4, [](int i) {
    World w(/*prof_level=*/2, /*shards=*/0, /*seed=*/100 + static_cast<std::uint64_t>(i));
    const auto sig = w.run();
    const auto& sl = w.fab->sim().profiler()->slice(0);
    return Row{sig.events, w.dispatch_count(),
               sl.count[static_cast<std::size_t>(obs::ProfCat::kWfq)]};
  });
  ASSERT_EQ(rows.size(), 4u);
  for (const Row& r : rows) {
    EXPECT_GT(r.events, 0u);
    EXPECT_EQ(r.dispatch, r.events);  // no cross-variant leakage
    EXPECT_GT(r.wfq, 0u);
  }
  int total_variants = 0;
  for (const auto& ws : sweep.worker_stats()) {
    total_variants += ws.variants;
    EXPECT_GE(ws.wall_ns, ws.busy_ns);
  }
  EXPECT_EQ(total_variants, 4);
}

TEST(Profiler, MetricsSnapshotCarriesProfGauges) {
  World w(/*prof_level=*/2, /*shards=*/4, /*seed=*/7, /*with_obs=*/true);
  w.run();
  const auto snap = w.fab->metrics_snapshot();
  ASSERT_NE(snap.find("prof.level"), nullptr);
  EXPECT_DOUBLE_EQ(snap.find("prof.level")->value, 2.0);
  ASSERT_NE(snap.find("prof.stall_fraction"), nullptr);
  ASSERT_NE(snap.find("prof.shard_imbalance"), nullptr);
  EXPECT_GT(snap.find("prof.busy_us_total")->value, 0.0);
  ASSERT_NE(snap.find("prof.epochs"), nullptr);
  const obs::Labels shard0{{"shard", "0"}};
  ASSERT_NE(snap.find("prof.busy_us", shard0), nullptr);
  const obs::Labels wfq0{{"shard", "0"}, {"scope", "wfq"}};
  ASSERT_NE(snap.find("prof.scope_us", wfq0), nullptr);
  EXPECT_GT(snap.find("prof.scope_count", wfq0)->value, 0.0);
}

TEST(Profiler, ChromeTraceGainsSchemaTwoCounterTracks) {
  World w(/*prof_level=*/1, /*shards=*/4, /*seed=*/7, /*with_obs=*/true);
  w.run();
  const std::string path = ::testing::TempDir() + "/profiler_test.trace.json";
  w.fab->write_trace_json(path);

  std::ifstream f(path);
  const std::string trace((std::istreambuf_iterator<char>(f)),
                          std::istreambuf_iterator<char>());
  EXPECT_NE(trace.find("\"ufab_schema\": 2"), std::string::npos);
  EXPECT_NE(trace.find("prof.queue_depth[s0]"), std::string::npos);
  EXPECT_NE(trace.find("\"engine profiler\""), std::string::npos);

  if (!python3_available()) GTEST_SKIP() << "python3 not available";
  const std::string cmd =
      "python3 " SOURCE_DIR "/scripts/render_trace.py --quiet " + path + " >/dev/null";
  EXPECT_EQ(std::system(cmd.c_str()), 0) << "render_trace.py rejected the profiled export";
  std::remove(path.c_str());
}

TEST(Profiler, RenderTraceRejectsMixedSchemaVersions) {
  // A profiler counter smuggled into a schema-1 trace (no ufab_schema key)
  // must be rejected, not silently rendered.
  if (!python3_available()) GTEST_SKIP() << "python3 not available";
  const std::string path = ::testing::TempDir() + "/profiler_mixed_schema.trace.json";
  {
    std::ofstream f(path, std::ios::trunc);
    f << "{\"traceEvents\": [\n"
         "{\"ph\": \"M\", \"name\": \"process_name\", \"pid\": 6, "
         "\"args\": {\"name\": \"engine profiler\"}},\n"
         "{\"ph\": \"C\", \"name\": \"prof.queue_depth[s0]\", \"pid\": 6, "
         "\"tid\": 0, \"ts\": 1.0, \"args\": {\"ring\": 3}}\n"
         "]}\n";
  }
  const std::string cmd = "python3 " SOURCE_DIR "/scripts/render_trace.py --quiet " + path +
                          " >/dev/null 2>&1";
  EXPECT_NE(std::system(cmd.c_str()), 0) << "mixed-schema trace was accepted";
  std::remove(path.c_str());
}

}  // namespace
}  // namespace ufab

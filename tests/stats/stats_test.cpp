// Unit tests for src/stats.
#include <gtest/gtest.h>

#include "src/stats/cdf.hpp"
#include "src/stats/percentile.hpp"
#include "src/stats/rate_meter.hpp"
#include "src/stats/timeseries.hpp"

namespace ufab {
namespace {

using namespace ufab::time_literals;

TEST(PercentileTracker, BasicStatistics) {
  PercentileTracker t;
  for (int i = 1; i <= 100; ++i) t.add(i);
  EXPECT_EQ(t.count(), 100u);
  EXPECT_DOUBLE_EQ(t.mean(), 50.5);
  EXPECT_DOUBLE_EQ(t.min(), 1.0);
  EXPECT_DOUBLE_EQ(t.max(), 100.0);
  EXPECT_NEAR(t.percentile(50), 50.5, 0.01);
  EXPECT_NEAR(t.percentile(99), 99.01, 0.01);
  EXPECT_DOUBLE_EQ(t.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(t.percentile(100), 100.0);
}

TEST(PercentileTracker, SingleSample) {
  PercentileTracker t;
  t.add(42.0);
  EXPECT_DOUBLE_EQ(t.percentile(0), 42.0);
  EXPECT_DOUBLE_EQ(t.percentile(99.9), 42.0);
  EXPECT_DOUBLE_EQ(t.stddev(), 0.0);
}

TEST(PercentileTracker, InterleavedAddAndQuery) {
  PercentileTracker t;
  t.add(5.0);
  t.add(1.0);
  EXPECT_DOUBLE_EQ(t.median(), 3.0);
  t.add(9.0);  // must re-sort transparently
  EXPECT_DOUBLE_EQ(t.median(), 5.0);
}

TEST(PercentileTracker, StddevOfKnownSet) {
  PercentileTracker t;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) t.add(v);
  EXPECT_NEAR(t.stddev(), 2.0, 1e-9);
}

TEST(PercentileTracker, ClearResets) {
  PercentileTracker t;
  t.add(1.0);
  t.clear();
  EXPECT_TRUE(t.empty());
  t.add(3.0);
  EXPECT_DOUBLE_EQ(t.mean(), 3.0);
}

TEST(RateMeter, SingleBucketRate) {
  RateMeter m(10_us);
  // 12500 bytes in the first 10 us bucket = 10 Gbps.
  m.add(2_us, 6250);
  m.add(8_us, 6250);
  EXPECT_NEAR(m.rate(15_us).gbit_per_sec(), 10.0, 1e-9);
}

TEST(RateMeter, ZeroBeforeFirstBucketCloses) {
  RateMeter m(10_us);
  m.add(2_us, 1000);
  EXPECT_DOUBLE_EQ(m.rate(5_us).bits_per_sec(), 0.0);
}

TEST(RateMeter, TrailingWindowAverages) {
  RateMeter m(10_us);
  m.add(5_us, 12500);   // bucket 0: 10 Gbps
  m.add(15_us, 0);      // bucket 1: 0
  EXPECT_NEAR(m.trailing_rate(20_us, 2).gbit_per_sec(), 5.0, 1e-9);
}

TEST(RateMeter, SeriesCoversClosedBuckets) {
  RateMeter m(10_us);
  m.add(5_us, 12500);
  m.add(25_us, 12500);
  const auto s = m.series(30_us);
  ASSERT_EQ(s.size(), 3u);
  EXPECT_NEAR(s[0].rate.gbit_per_sec(), 10.0, 1e-9);
  EXPECT_NEAR(s[1].rate.gbit_per_sec(), 0.0, 1e-9);
  EXPECT_NEAR(s[2].rate.gbit_per_sec(), 10.0, 1e-9);
  EXPECT_EQ(m.total_bytes(), 25000);
}

TEST(TimeSeries, MeanMaxInWindow) {
  TimeSeries ts;
  ts.add(1_us, 10.0);
  ts.add(2_us, 20.0);
  ts.add(3_us, 30.0);
  EXPECT_DOUBLE_EQ(ts.mean_in(1_us, 3_us), 15.0);
  EXPECT_DOUBLE_EQ(ts.max_in(0_us, 10_us), 30.0);
  EXPECT_DOUBLE_EQ(ts.mean_in(5_us, 6_us), 0.0);
}

TEST(TimeSeries, ValueAt) {
  TimeSeries ts;
  ts.add(10_us, 1.0);
  ts.add(20_us, 2.0);
  EXPECT_DOUBLE_EQ(ts.value_at(5_us, -1.0), -1.0);
  EXPECT_DOUBLE_EQ(ts.value_at(10_us), 1.0);
  EXPECT_DOUBLE_EQ(ts.value_at(15_us), 1.0);
  EXPECT_DOUBLE_EQ(ts.value_at(25_us), 2.0);
}

TEST(TimeSeries, SettleTimeDetectsConvergence) {
  TimeSeries ts;
  // Oscillates, then converges to 10 at t=50us.
  for (int i = 0; i < 5; ++i) ts.add(TimeNs{i * 10'000}, i % 2 == 0 ? 5.0 : 15.0);
  for (int i = 5; i < 20; ++i) ts.add(TimeNs{i * 10'000}, 10.0);
  const TimeNs settle = ts.settle_time(0_us, 9.0, 11.0, 50_us);
  EXPECT_EQ(settle.ns(), 50'000);
}

TEST(TimeSeries, SettleTimeNeverSettles) {
  TimeSeries ts;
  for (int i = 0; i < 20; ++i) ts.add(TimeNs{i * 1000}, i % 2 == 0 ? 0.0 : 100.0);
  EXPECT_EQ(ts.settle_time(0_us, 40.0, 60.0, 5_us), TimeNs::max());
}

TEST(Cdf, PointsAreMonotonic) {
  PercentileTracker t;
  for (int i = 0; i < 1000; ++i) t.add(i * 0.5);
  const auto cdf = make_cdf(t, 20);
  ASSERT_EQ(cdf.size(), 20u);
  for (std::size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_GE(cdf[i].value, cdf[i - 1].value);
    EXPECT_GT(cdf[i].cum_prob, cdf[i - 1].cum_prob);
  }
  EXPECT_DOUBLE_EQ(cdf.front().cum_prob, 0.0);
  EXPECT_DOUBLE_EQ(cdf.back().cum_prob, 1.0);
}

TEST(Cdf, LatencyRowFormatting) {
  PercentileTracker t;
  t.add(1.0);
  const auto row = latency_row("test", t);
  EXPECT_NE(row.find("test"), std::string::npos);
  EXPECT_NE(row.find("p99"), std::string::npos);
  PercentileTracker empty;
  EXPECT_NE(latency_row("x", empty).find("no samples"), std::string::npos);
}

}  // namespace
}  // namespace ufab

// Long-horizon behavior of RateMeter and TimeSeries: multi-hour simulated
// feeds must keep bounded memory in retention mode, roll windows over
// correctly, and keep totals exact regardless of eviction.
#include <gtest/gtest.h>

#include "src/stats/rate_meter.hpp"
#include "src/stats/timeseries.hpp"

namespace ufab {
namespace {

using namespace ufab::time_literals;

TEST(RateMeterLongHorizon, UnboundedDefaultKeepsFullSeries) {
  RateMeter m(1_ms);
  for (std::int64_t i = 0; i < 10'000; ++i) m.add(TimeNs{i * 1'000'000}, 100);
  EXPECT_EQ(m.retention_cap(), 0u);
  EXPECT_EQ(m.retained_buckets(), 10'000u);
  EXPECT_EQ(m.evicted_bytes(), 0);
  EXPECT_EQ(m.series(TimeNs{10'000LL * 1'000'000}).size(), 10'000u);
}

TEST(RateMeterLongHorizon, BoundedModeCapsMemoryOverHours) {
  // Three simulated hours of 1 ms buckets would be 10.8M buckets unbounded;
  // the cap must hold the footprint to 64 while totals stay exact.
  RateMeter m(1_ms, /*retain_buckets=*/64);
  const std::int64_t hours3 = 3LL * 3600 * 1'000'000'000;
  std::int64_t fed = 0;
  for (std::int64_t t = 0; t < hours3; t += 500'000'000) {  // every 0.5 s
    m.add(TimeNs{t}, 1'000);
    fed += 1'000;
    ASSERT_LE(m.retained_buckets(), 64u);
  }
  EXPECT_EQ(m.total_bytes(), fed);
  // The retained window plus the evicted tally must account for every byte.
  std::int64_t retained = 0;
  for (const auto& s : m.series(TimeNs{hours3})) {
    retained += static_cast<std::int64_t>(s.rate.bits_per_sec() / 8e9 * 1e6);
  }
  EXPECT_EQ(retained + m.evicted_bytes(), m.total_bytes());
}

TEST(RateMeterLongHorizon, WindowRolloverSlidesNotGrows) {
  RateMeter m(10_us, /*retain_buckets=*/8);
  // Fill 20 consecutive buckets; only the trailing 8 survive.
  for (int i = 0; i < 20; ++i) m.add(TimeNs{i * 10'000 + 1}, 10 + i);
  EXPECT_EQ(m.retained_buckets(), 8u);
  const auto series = m.series(TimeNs{20 * 10'000});
  ASSERT_EQ(series.size(), 8u);
  // Oldest retained bucket is index 12 (value 22 bytes).
  EXPECT_EQ(series.front().at.ns(), 12 * 10'000);
  EXPECT_DOUBLE_EQ(series.front().rate.bits_per_sec(), 22.0 * 8e9 / 10'000.0);
  // Evicted = buckets 0..11 = sum(10..21).
  std::int64_t expect_evicted = 0;
  for (int i = 0; i < 12; ++i) expect_evicted += 10 + i;
  EXPECT_EQ(m.evicted_bytes(), expect_evicted);
}

TEST(RateMeterLongHorizon, SparseFarFutureAddIsBoundedWork) {
  RateMeter m(50_us, /*retain_buckets=*/16);
  m.add(TimeNs{0}, 500);
  // An idle meter waking up two simulated hours later must not materialize
  // 144M intermediate buckets — the window slides directly.
  const std::int64_t t2h = 2LL * 3600 * 1'000'000'000;
  m.add(TimeNs{t2h}, 700);
  EXPECT_LE(m.retained_buckets(), 16u);
  EXPECT_EQ(m.evicted_bytes(), 500);
  EXPECT_EQ(m.total_bytes(), 1200);
  EXPECT_GT(m.rate(TimeNs{t2h + 50'000}).bits_per_sec(), 0.0);
}

TEST(RateMeterLongHorizon, LateSampleFoldsIntoEvicted) {
  RateMeter m(10_us, /*retain_buckets=*/4);
  for (int i = 0; i < 10; ++i) m.add(TimeNs{i * 10'000 + 1}, 100);
  const std::int64_t evicted_before = m.evicted_bytes();
  // A sample for a long-evicted bucket still counts toward the totals.
  m.add(TimeNs{1'001}, 50);
  EXPECT_EQ(m.evicted_bytes(), evicted_before + 50);
  EXPECT_EQ(m.total_bytes(), 10 * 100 + 50);
}

TEST(RateMeterLongHorizon, MergeBoundedMeters) {
  RateMeter a(10_us, 4);
  RateMeter b(10_us, 4);
  for (int i = 0; i < 8; ++i) {
    a.add(TimeNs{i * 10'000 + 1}, 100);
    b.add(TimeNs{i * 10'000 + 1}, 10);
  }
  a.merge_from(b);
  EXPECT_EQ(a.total_bytes(), 8 * 110);
  EXPECT_LE(a.retained_buckets(), 4u);
  // Retained + evicted still conserves all bytes from both meters.
  std::int64_t retained = 0;
  for (const auto& s : a.series(TimeNs{8 * 10'000})) {
    retained += static_cast<std::int64_t>(s.rate.bits_per_sec() * 10'000.0 / 8e9);
  }
  EXPECT_EQ(retained + a.evicted_bytes(), a.total_bytes());
}

TEST(RateMeterLongHorizon, MergeUnboundedIntoBoundedAndBack) {
  RateMeter bounded(10_us, 4);
  RateMeter full(10_us);
  for (int i = 0; i < 12; ++i) full.add(TimeNs{i * 10'000 + 1}, 7);
  bounded.merge_from(full);
  EXPECT_EQ(bounded.total_bytes(), 12 * 7);
  EXPECT_LE(bounded.retained_buckets(), 4u);

  RateMeter wide(10_us);
  wide.merge_from(bounded);
  // Evicted bytes survive the round trip in the totals.
  EXPECT_EQ(wide.total_bytes(), 12 * 7);
}

TEST(TimeSeriesLongHorizon, UnboundedDefaultUnchanged) {
  TimeSeries ts;
  for (std::int64_t i = 0; i < 5'000; ++i) {
    ts.add(TimeNs{i * 1'000'000}, static_cast<double>(i));
  }
  EXPECT_EQ(ts.size(), 5'000u);
  EXPECT_EQ(ts.dropped(), 0u);
  EXPECT_EQ(ts.retention_cap(), 0u);
}

TEST(TimeSeriesLongHorizon, BoundedRetentionCompactsFromFront) {
  TimeSeries ts(/*retain_points=*/100);
  const int n = 100'000;  // hours of 100 ms samples
  for (int i = 0; i < n; ++i) ts.add(TimeNs{i * 100'000'000LL}, static_cast<double>(i));
  EXPECT_LT(ts.size(), 200u);  // never more than 2x the cap resident
  EXPECT_GE(ts.size(), 100u);
  EXPECT_EQ(ts.size() + ts.dropped(), static_cast<std::size_t>(n));
  // The retained suffix is the newest points, in order.
  const auto& pts = ts.points();
  EXPECT_DOUBLE_EQ(pts.back().value, static_cast<double>(n - 1));
  for (std::size_t i = 1; i < pts.size(); ++i) EXPECT_LT(pts[i - 1].at, pts[i].at);
}

TEST(TimeSeriesLongHorizon, QueriesAnswerOverRetainedSuffix) {
  TimeSeries ts(10);
  for (int i = 0; i < 40; ++i) ts.add(TimeNs{i * 1'000}, static_cast<double>(i));
  // value_at beyond the retained range falls back; inside it reads the point.
  const TimeNs newest{39 * 1'000};
  EXPECT_DOUBLE_EQ(ts.value_at(newest), 39.0);
  EXPECT_DOUBLE_EQ(ts.mean_in(newest, newest + TimeNs{1}), 39.0);
  EXPECT_DOUBLE_EQ(ts.max_in(TimeNs::zero(), newest + TimeNs{1}),
                   ts.points().back().value);
}

}  // namespace
}  // namespace ufab

// P² streaming quantile estimator: exactness below five samples, accuracy
// against the exact tracker on long streams, and O(1)-memory bookkeeping.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "src/core/rng.hpp"
#include "src/stats/p2.hpp"
#include "src/stats/percentile.hpp"

namespace ufab {
namespace {

TEST(P2Quantile, EmptyReadsZero) {
  P2Quantile q(0.99);
  EXPECT_TRUE(q.empty());
  EXPECT_DOUBLE_EQ(q.value(), 0.0);
}

TEST(P2Quantile, ExactBelowFiveSamples) {
  P2Quantile med(0.5);
  med.add(30.0);
  EXPECT_DOUBLE_EQ(med.value(), 30.0);
  med.add(10.0);
  EXPECT_DOUBLE_EQ(med.value(), 20.0);  // interpolated median of {10, 30}
  med.add(20.0);
  EXPECT_DOUBLE_EQ(med.value(), 20.0);  // middle of {10, 20, 30}
}

TEST(P2Quantile, ConvergesOnUniform) {
  Rng rng(42);
  P2Quantile p50(0.5), p99(0.99);
  for (int i = 0; i < 200'000; ++i) {
    const double x = rng.uniform();
    p50.add(x);
    p99.add(x);
  }
  EXPECT_NEAR(p50.value(), 0.5, 0.01);
  EXPECT_NEAR(p99.value(), 0.99, 0.01);
}

TEST(P2Quantile, TracksExactTrackerOnExponential) {
  // Heavy-ish tail: the p99 estimate should land within a few percent of the
  // exact store-everything tracker.
  Rng rng(7);
  P2Quantile p99(0.99);
  PercentileTracker exact;
  for (int i = 0; i < 100'000; ++i) {
    const double x = rng.exponential(10.0);
    p99.add(x);
    exact.add(x);
  }
  const double truth = exact.percentile(99.0);
  EXPECT_NEAR(p99.value(), truth, truth * 0.05);
}

TEST(P2Quantile, MonotoneShiftFollowsDistribution) {
  // Feed a step change: the estimator must move toward the new regime rather
  // than stay pinned to the old one.
  Rng rng(3);
  P2Quantile p50(0.5);
  for (int i = 0; i < 50'000; ++i) p50.add(rng.uniform());
  const double before = p50.value();
  for (int i = 0; i < 500'000; ++i) p50.add(100.0 + rng.uniform());
  EXPECT_LT(before, 1.0);
  EXPECT_GT(p50.value(), 50.0);
}

TEST(P2Quantile, ClearResets) {
  P2Quantile q(0.9);
  for (int i = 0; i < 100; ++i) q.add(static_cast<double>(i));
  q.clear();
  EXPECT_TRUE(q.empty());
  q.add(5.0);
  EXPECT_DOUBLE_EQ(q.value(), 5.0);
}

TEST(StreamingStats, MomentsMatchDefinition) {
  StreamingStats s;
  const std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  for (const double x : xs) s.add(x);
  EXPECT_EQ(s.count(), xs.size());
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.stddev(), 2.0, 1e-12);  // population stddev of the classic set
}

TEST(StreamingStats, DefaultQuantileSetIsSloShaped) {
  StreamingStats s;
  EXPECT_EQ(s.quantile_count(), 4u);
  Rng rng(11);
  for (int i = 0; i < 100'000; ++i) s.add(rng.uniform());
  EXPECT_NEAR(s.quantile(0.5), 0.5, 0.02);
  EXPECT_NEAR(s.quantile(0.9), 0.9, 0.02);
  EXPECT_NEAR(s.quantile(0.99), 0.99, 0.02);
  EXPECT_NEAR(s.quantile(0.999), 0.999, 0.02);
}

TEST(StreamingStats, EmptyIsAllZeros) {
  StreamingStats s;
  EXPECT_TRUE(s.empty());
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
  EXPECT_DOUBLE_EQ(s.max(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.99), 0.0);
}

TEST(StreamingStats, ClearThenReuse) {
  StreamingStats s;
  for (int i = 0; i < 1000; ++i) s.add(1e6);
  s.clear();
  EXPECT_TRUE(s.empty());
  s.add(1.0);
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.mean(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 3.0);
}

}  // namespace
}  // namespace ufab

// RateMeter edge cases: window clamping, open buckets, and input validation.
#include <gtest/gtest.h>

#include "src/stats/rate_meter.hpp"

namespace ufab {
namespace {

using namespace ufab::time_literals;

TEST(RateMeterEdge, ZeroWhileInsideBucketZero) {
  RateMeter m(10_us);
  m.add(TimeNs{2'000}, 1'000);
  // No bucket has closed yet: every query inside bucket 0 reads zero.
  EXPECT_DOUBLE_EQ(m.rate(TimeNs{9'999}).bits_per_sec(), 0.0);
  EXPECT_DOUBLE_EQ(m.trailing_rate(TimeNs{9'999}, 100).bits_per_sec(), 0.0);
  EXPECT_TRUE(m.series(TimeNs{9'999}).empty());
  // The instant bucket 0 closes, its bytes become visible.
  EXPECT_GT(m.rate(TimeNs{10'000}).bits_per_sec(), 0.0);
}

TEST(RateMeterEdge, TrailingWindowClampsToClosedHistory) {
  RateMeter m(10_us);
  // 1000 bytes in each of buckets 0 and 1; now sits in bucket 2.
  m.add(TimeNs{1'000}, 1'000);
  m.add(TimeNs{11'000}, 1'000);
  const TimeNs now{25'000};
  const double two_bucket = m.trailing_rate(now, 2).bits_per_sec();
  // Asking for far more buckets than have closed must average over the two
  // that exist, not divide by a span that was never observed.
  EXPECT_DOUBLE_EQ(m.trailing_rate(now, 1'000'000).bits_per_sec(), two_bucket);
  EXPECT_DOUBLE_EQ(two_bucket, 2'000.0 * 8e9 / 20'000.0);
}

TEST(RateMeterEdge, CurrentBucketExcludedFromTrailingRate) {
  RateMeter m(10_us);
  m.add(TimeNs{1'000}, 1'000);
  m.add(TimeNs{12'000}, 1'000'000);  // still open at now=15us
  // Only bucket 0 is closed; the million bytes in the open bucket 1 must not
  // leak into the measurement.
  EXPECT_DOUBLE_EQ(m.rate(TimeNs{15'000}).bits_per_sec(), 1'000.0 * 8e9 / 10'000.0);
}

TEST(RateMeterEdge, SeriesCoversOnlyClosedBuckets) {
  RateMeter m(10_us);
  m.add(TimeNs{5'000}, 100);
  m.add(TimeNs{25'000}, 300);
  const auto s = m.series(TimeNs{29'000});  // bucket 2 still open
  ASSERT_EQ(s.size(), 2u);
  EXPECT_EQ(s[0].at, TimeNs{0});
  EXPECT_EQ(s[1].at, TimeNs{10'000});
  EXPECT_DOUBLE_EQ(s[0].rate.bits_per_sec(), 100.0 * 8e9 / 10'000.0);
  EXPECT_DOUBLE_EQ(s[1].rate.bits_per_sec(), 0.0);  // empty gap bucket
}

TEST(RateMeterEdge, NegativeQueryTimeIsZeroNotACrash) {
  RateMeter m(10_us);
  m.add(TimeNs{1'000}, 1'000);
  EXPECT_DOUBLE_EQ(m.rate(TimeNs{-5'000}).bits_per_sec(), 0.0);
  EXPECT_DOUBLE_EQ(m.trailing_rate(TimeNs{-1}, 3).bits_per_sec(), 0.0);
  EXPECT_TRUE(m.series(TimeNs{-1}).empty());
}

TEST(RateMeterEdge, TotalBytesIndependentOfWindows) {
  RateMeter m(50_us);
  m.add(TimeNs{0}, 10);
  m.add(TimeNs{49'999}, 20);
  m.add(TimeNs{50'000}, 30);
  EXPECT_EQ(m.total_bytes(), 60);
}

using RateMeterDeath = ::testing::Test;

TEST(RateMeterDeath, ZeroBucketWidthIsRejected) {
  EXPECT_DEATH(RateMeter m(TimeNs{0}), "bucket width must be positive");
}

TEST(RateMeterDeath, NegativeBucketWidthIsRejected) {
  EXPECT_DEATH(RateMeter m(TimeNs{-10}), "bucket width must be positive");
}

TEST(RateMeterDeath, NegativeAddTimestampIsRejected) {
  RateMeter m(10_us);
  EXPECT_DEATH(m.add(TimeNs{-1}, 100), "negative timestamp");
}

}  // namespace
}  // namespace ufab

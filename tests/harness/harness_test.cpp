// Tests for the harness layer: VmMap, Fabric services, experiment metrics
// and the resource model.
#include <gtest/gtest.h>

#include "src/harness/experiment.hpp"
#include "src/ufab/resource_model.hpp"

namespace ufab::harness {
namespace {

using namespace ufab::time_literals;
using namespace ufab::unit_literals;

TEST(VmMapTest, PlacementAndGuarantees) {
  VmMap vms;
  const TenantId a = vms.add_tenant("A", 2_Gbps);
  const TenantId b = vms.add_tenant("B", 5_Gbps);
  const VmId v1 = vms.add_vm(a, HostId{0});
  const VmId v2 = vms.add_vm(a, HostId{1});
  const VmId v3 = vms.add_vm(b, HostId{0});
  EXPECT_EQ(vms.host_of(v1), HostId{0});
  EXPECT_EQ(vms.tenant_of(v2), a);
  EXPECT_DOUBLE_EQ(vms.vm_guarantee(v3).gbit_per_sec(), 5.0);
  EXPECT_DOUBLE_EQ(vms.vm_tokens(v1), 2e9);  // B_u = 1 bps
  EXPECT_EQ(vms.vms_of(a).size(), 2u);
  EXPECT_EQ(vms.vms_on(HostId{0}).size(), 2u);
  EXPECT_TRUE(vms.vms_on(HostId{9}).empty());
  EXPECT_EQ(vms.tenant_name(b), "B");
  EXPECT_EQ(vms.vm_count(), 3u);
  EXPECT_EQ(vms.tenant_count(), 2u);
}

TEST(ExperimentTest, MetersAndAggregates) {
  Experiment exp(
      Scheme::kUfab,
      [](sim::Simulator& s, const topo::FabricOptions& o) {
        return topo::make_dumbbell(s, 1, 1, o);
      },
      {}, {}, 9);
  auto& fab = exp.fab();
  const TenantId t = fab.vms().add_tenant("A", 1_Gbps);
  const VmPairId p{fab.vms().add_vm(t, HostId{0}), fab.vms().add_vm(t, HostId{1})};
  fab.keep_backlogged(p, 0_ms, 20_ms);
  fab.sim().run_until(20_ms);

  EXPECT_GT(exp.pair_rate_gbps(p, 10_ms, 20_ms), 8.0);
  EXPECT_NEAR(exp.tenant_rate_gbps(t, 10_ms, 20_ms), exp.pair_rate_gbps(p, 10_ms, 20_ms), 0.01);
  EXPECT_FALSE(exp.aggregate_rtt_us().empty());
  EXPECT_GE(exp.max_queue_bytes(), 0);
  EXPECT_EQ(exp.total_drops(), 0);
}

TEST(ExperimentTest, DissatisfactionRatioSemantics) {
  Experiment exp(
      Scheme::kUfab,
      [](sim::Simulator& s, const topo::FabricOptions& o) {
        return topo::make_dumbbell(s, 2, 2, o);
      },
      {}, {}, 9);
  auto& fab = exp.fab();
  const TenantId t = fab.vms().add_tenant("A", 2_Gbps);
  const VmPairId p{fab.vms().add_vm(t, HostId{0}), fab.vms().add_vm(t, HostId{2})};
  fab.keep_backlogged(p, 0_ms, 20_ms);
  fab.sim().run_until(20_ms);

  // Satisfied guarantee => ~0 ratio.
  const std::vector<GuaranteeSpec> ok{{p, 2e9, 5_ms, 20_ms}};
  EXPECT_LT(dissatisfaction_ratio(fab, ok, 20_ms), 0.02);
  // An absurd guarantee (50G on a 10G trunk) must show heavy dissatisfaction.
  const std::vector<GuaranteeSpec> absurd{{p, 5e10, 5_ms, 20_ms}};
  EXPECT_GT(dissatisfaction_ratio(fab, absurd, 20_ms), 0.5);
  // A pair that never sent anything counts as fully dissatisfied.
  const VmPairId ghost{fab.vms().add_vm(t, HostId{1}), fab.vms().add_vm(t, HostId{3})};
  const std::vector<GuaranteeSpec> ghost_spec{{ghost, 1e9, 0_ms, 20_ms}};
  EXPECT_GT(dissatisfaction_ratio(fab, ghost_spec, 20_ms), 0.9);
}

TEST(ExperimentTest, RateSettleTime) {
  Experiment exp(
      Scheme::kUfab,
      [](sim::Simulator& s, const topo::FabricOptions& o) {
        return topo::make_dumbbell(s, 1, 1, o);
      },
      {}, {}, 9);
  auto& fab = exp.fab();
  const TenantId t = fab.vms().add_tenant("A", 1_Gbps);
  const VmPairId p{fab.vms().add_vm(t, HostId{0}), fab.vms().add_vm(t, HostId{1})};
  fab.keep_backlogged(p, 5_ms, 30_ms);
  fab.sim().run_until(30_ms);
  const TimeNs settle = rate_settle_time(fab, p, 5_ms, 30_ms, 8.0, 10.0, 5_ms);
  ASSERT_NE(settle, TimeNs::max());
  EXPECT_LT((settle - 5_ms).ms(), 3.0);
  // A band the rate never enters never settles.
  EXPECT_EQ(rate_settle_time(fab, p, 5_ms, 30_ms, 0.1, 0.2, 5_ms), TimeNs::max());
}

TEST(ResourceModel, EdgeTableShape) {
  const auto rows = edge::edge_resource_table(8192, 1024);
  ASSERT_EQ(rows.size(), 6u);  // 5 modules + total
  const auto& total = rows.back();
  EXPECT_EQ(total.module, "Total");
  // Paper's operating point: ~10% logic, <20% memory.
  EXPECT_GT(total.lut_pct, 5.0);
  EXPECT_LT(total.lut_pct, 12.0);
  EXPECT_LT(total.bram_pct, 20.0);
  EXPECT_LT(total.uram_pct, 20.0);
  // Memory grows with scale; logic barely.
  const auto big = edge::edge_resource_table(16384, 1024).back();
  EXPECT_GT(big.bram_pct, total.bram_pct);
  EXPECT_LT(big.lut_pct - total.lut_pct, 2.0);
}

TEST(ResourceModel, CoreTableOnlySramGrows) {
  const auto t20 = edge::core_resource_table(20'000);
  const auto t80 = edge::core_resource_table(80'000);
  ASSERT_EQ(t20.size(), t80.size());
  for (std::size_t i = 0; i < t20.size(); ++i) {
    if (t20[i].resource == "SRAM") {
      EXPECT_GT(t80[i].pct, t20[i].pct);
      EXPECT_LT(t80[i].pct - t20[i].pct, 2.0);  // only slightly (the claim)
    } else if (t20[i].resource == "Hash Bits") {
      EXPECT_NEAR(t80[i].pct, t20[i].pct, 0.1);
    } else {
      EXPECT_DOUBLE_EQ(t80[i].pct, t20[i].pct);
    }
    EXPECT_LT(t80[i].pct, 50.0);  // everything stays deployable
  }
}

TEST(FabricTest, QueueSamplerCollects) {
  Fabric fab([](sim::Simulator& s) { return topo::make_dumbbell(s, 1, 1); }, 1);
  PercentileTracker q;
  fab.sample_queues(1_ms, 10_ms, q);
  fab.sim().run_until(10_ms);
  EXPECT_GE(q.count(), 8u);  // ~10 samples x all links, idle => zeros
  EXPECT_DOUBLE_EQ(q.max(), 0.0);
}

}  // namespace
}  // namespace ufab::harness

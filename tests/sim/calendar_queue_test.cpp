// The calendar-queue future-event list must be observationally identical to
// the straightforward reference: a priority queue over (time, seq) with FIFO
// tie-breaking.  These tests drive both through the same randomized schedules
// — including events scheduled from inside running events, far-horizon events
// that live in the overflow tier, and same-time bursts — and require the
// exact same firing order.
#include <algorithm>
#include <cstdint>
#include <queue>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/time.hpp"
#include "src/sim/simulator.hpp"

namespace ufab::sim {
namespace {

/// Reference future-event list: the semantics the simulator must preserve.
class ReferenceQueue {
 public:
  void at(std::int64_t t, int label) { heap_.push(Ref{t, next_seq_++, label}); }

  /// Pops every event in (time, seq) order, invoking `child_fn(label)` to get
  /// the same follow-up events the simulator's callbacks schedule.
  template <typename ChildFn>
  std::vector<int> drain(const ChildFn& child_fn) {
    std::vector<int> order;
    while (!heap_.empty()) {
      const Ref top = heap_.top();
      heap_.pop();
      order.push_back(top.label);
      for (const auto& [dt, child_label] : child_fn(top.label)) {
        at(top.t + dt, child_label);
      }
    }
    return order;
  }

 private:
  struct Ref {
    std::int64_t t;
    std::uint64_t seq;
    int label;
    bool operator>(const Ref& o) const {
      if (t != o.t) return t > o.t;
      return seq > o.seq;
    }
  };
  std::priority_queue<Ref, std::vector<Ref>, std::greater<>> heap_;
  std::uint64_t next_seq_ = 0;
};

/// Children are a pure function of the parent label, so the reference and the
/// simulator generate identical follow-up schedules independently.  Labels
/// past the cutoff are leaves; without it the `% 5` chain would self-sustain
/// (300'000 is divisible by 5) and the schedule would never drain.
std::vector<std::pair<std::int64_t, int>> children_of(int label) {
  std::vector<std::pair<std::int64_t, int>> out;
  if (label >= 1'000'000) return out;
  if (label % 7 == 0) out.push_back({1, label + 100'000});            // same-ish time
  if (label % 11 == 0) out.push_back({700'000, label + 200'000});     // overflow horizon
  if (label % 5 == 0) out.push_back({(label % 97) * 13, label + 300'000});
  return out;
}

TEST(CalendarQueue, RandomizedOrderMatchesReference) {
  std::mt19937_64 rng(12345);
  // Offsets span same-bucket, cross-bucket, and far-overflow horizons
  // (the near window is ~0.5 ms wide).
  std::uniform_int_distribution<std::int64_t> offset(0, 2'000'000);

  Simulator sim;
  ReferenceQueue ref;
  std::vector<int> sim_order;

  // The recursive scheduling helper the simulator side uses.
  struct Scheduler {
    Simulator& sim;
    std::vector<int>& order;
    void fire(int label) {
      order.push_back(label);
      for (const auto& [dt, child] : children_of(label)) {
        sim.after(TimeNs{dt}, [this, child] { fire(child); });
      }
    }
  } scheduler{sim, sim_order};

  constexpr int kEvents = 5000;
  for (int i = 0; i < kEvents; ++i) {
    const std::int64_t t = offset(rng);
    sim.at(TimeNs{t}, [&scheduler, i] { scheduler.fire(i); });
    ref.at(t, i);
  }
  sim.run();
  const std::vector<int> ref_order = ref.drain(children_of);

  ASSERT_EQ(sim_order.size(), ref_order.size());
  EXPECT_EQ(sim_order, ref_order);
  EXPECT_EQ(sim.events_processed(), sim_order.size());
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(CalendarQueue, FifoTieBreakSurvivesOverflowMigration) {
  Simulator sim;
  std::vector<int> order;
  // All at the same instant, but scheduled on both sides of the near-horizon
  // window: the first batch goes to the overflow tier, then the clock moves
  // close enough that the second batch lands in the ring directly.  FIFO
  // order must still hold across the tiers.
  const TimeNs t{1'000'000};  // 1 ms out: beyond the ~0.5 ms window
  for (int i = 0; i < 5; ++i) {
    sim.at(t, [&order, i] { order.push_back(i); });
  }
  sim.run_until(TimeNs{900'000});  // now the target is inside the window
  for (int i = 5; i < 10; ++i) {
    sim.at(t, [&order, i] { order.push_back(i); });
  }
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}));
}

TEST(CalendarQueue, CursorRewindsForEarlierEvent) {
  Simulator sim;
  std::vector<int> order;
  // Peeking at a far event advances the bucket cursor; a later schedule into
  // an earlier (still future) bucket must rewind it or the event is lost.
  sim.at(TimeNs{10'000}, [&order] { order.push_back(1); });
  sim.run_until(TimeNs::zero());  // peeks, advancing the cursor to ~10 us
  sim.at(TimeNs{1'000}, [&order] { order.push_back(0); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1}));
}

TEST(CalendarQueue, RecurringTimerCrossesWindowRepeatedly) {
  Simulator sim;
  // A self-rescheduling timer beyond the window exercises overflow push,
  // migration, and the overflow tier's slot-recycling path on every tick.
  int ticks = 0;
  struct Timer {
    Simulator& sim;
    int& ticks;
    void fire() {
      if (++ticks >= 200) return;
      sim.after(TimeNs{700'000}, [this] { fire(); });
    }
  } timer{sim, ticks};
  sim.after(TimeNs{700'000}, [&timer] { timer.fire(); });
  sim.run();
  EXPECT_EQ(ticks, 200);
  EXPECT_EQ(sim.now(), TimeNs{200 * 700'000});
  EXPECT_EQ(sim.events_processed(), 200u);
}

TEST(CalendarQueue, RunUntilBoundaryIsInclusive) {
  Simulator sim;
  std::vector<int> order;
  sim.at(TimeNs{100}, [&order] { order.push_back(0); });
  sim.at(TimeNs{200}, [&order] { order.push_back(1); });
  sim.at(TimeNs{201}, [&order] { order.push_back(2); });
  sim.run_until(TimeNs{200});
  EXPECT_EQ(order, (std::vector<int>{0, 1}));
  EXPECT_EQ(sim.now(), TimeNs{200});
  EXPECT_EQ(sim.pending(), 1u);
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

}  // namespace
}  // namespace ufab::sim

// Switch-specific behaviours: source-route consumption, INT growth on the
// probe path, no-route accounting, ECMP stability per flow.
#include <gtest/gtest.h>

#include "src/telemetry/core_agent.hpp"
#include "src/topo/builders.hpp"

namespace ufab::sim {
namespace {

using namespace ufab::time_literals;
using namespace ufab::unit_literals;

struct Capture final : HostStack {
  std::vector<PacketPtr> got;
  void on_packet(PacketPtr pkt) override { got.push_back(std::move(pkt)); }
  PacketPtr pull() override { return nullptr; }
};

TEST(SwitchTest, ProbeGrowsByOneIntRecordPerHop) {
  Simulator sim;
  auto net = topo::make_testbed(sim);
  std::vector<std::unique_ptr<telemetry::CoreAgent>> agents;
  telemetry::CoreConfig cfg;
  cfg.clean_period = 1_s;
  for (sim::Switch* sw : net->switches()) {
    auto a = telemetry::instrument_switch(sim, *sw, cfg);
    for (auto& x : a) agents.push_back(std::move(x));
  }
  Capture rx;
  net->host(HostId{4}).set_stack(&rx);

  const auto& path = net->paths(HostId{0}, HostId{4}).front();
  auto probe = Packet::make(PacketKind::kProbe, VmPairId{VmId{0}, VmId{4}}, TenantId{0},
                            HostId{0}, HostId{4}, probe_wire_size(0));
  probe->probe.reg_key = 42;
  probe->probe.phi = 1e9;
  probe->probe.window = 10'000;
  probe->route = path.route;
  net->host(HostId{0}).send_control(std::move(probe));
  sim.run_until(1_ms);

  ASSERT_EQ(rx.got.size(), 1u);
  const Packet& arrived = *rx.got[0];
  // One INT record per switch traversed (5 on a cross-pod path).
  EXPECT_EQ(arrived.telemetry.size(), path.switches.size());
  EXPECT_EQ(arrived.size_bytes,
            probe_wire_size(static_cast<std::int32_t>(path.switches.size())));
  // Hop order: records follow the path's link order.
  for (std::size_t i = 0; i < arrived.telemetry.size(); ++i) {
    EXPECT_EQ(arrived.telemetry[i].link, path.links[i + 1]) << i;  // [0] = host uplink
    EXPECT_DOUBLE_EQ(arrived.telemetry[i].phi_total, 1e9);
  }
}

TEST(SwitchTest, NoRouteCountsDrop) {
  Simulator sim;
  Switch sw(sim, NodeId{0}, "sw");
  auto pkt = Packet::make(PacketKind::kData, VmPairId{VmId{0}, VmId{1}}, TenantId{0}, HostId{0},
                          HostId{9}, 1500);
  // No ECMP table for host 9 and no source route.
  sw.receive(std::move(pkt));
  EXPECT_EQ(sw.no_route_drops(), 1);
}

TEST(SwitchTest, EcmpIsStablePerFlow) {
  Simulator sim;
  auto net = topo::make_leaf_spine(sim, 2, 4, 2);
  Capture rx;
  net->host(HostId{2}).set_stack(&rx);
  // Same (pair, message) always takes the same spine.
  for (int copy = 0; copy < 20; ++copy) {
    auto pkt = Packet::make(PacketKind::kData, VmPairId{VmId{0}, VmId{2}}, TenantId{0},
                            HostId{0}, HostId{2}, 1500);
    pkt->message_id = 1234;
    net->host(HostId{0}).send_control(std::move(pkt));
    sim.run();
  }
  int used = 0;
  for (const auto* l : net->links()) {
    if (l->name().rfind("Leaf1->Spine", 0) == 0 && l->tx_bytes_cum() > 0) ++used;
  }
  EXPECT_EQ(used, 1);
}

TEST(SwitchTest, SourceRouteOverridesEcmp) {
  Simulator sim;
  auto net = topo::make_leaf_spine(sim, 2, 3, 2);
  Capture rx;
  net->host(HostId{2}).set_stack(&rx);
  const auto& paths = net->paths(HostId{0}, HostId{2});
  // Force each spine explicitly; all must deliver.
  for (const auto& p : paths) {
    auto pkt = Packet::make(PacketKind::kData, VmPairId{VmId{0}, VmId{2}}, TenantId{0},
                            HostId{0}, HostId{2}, 1500);
    pkt->route = p.route;
    net->host(HostId{0}).send_control(std::move(pkt));
  }
  sim.run();
  EXPECT_EQ(rx.got.size(), paths.size());
  int used = 0;
  for (const auto* l : net->links()) {
    if (l->name().rfind("Leaf1->Spine", 0) == 0 && l->tx_bytes_cum() > 0) ++used;
  }
  EXPECT_EQ(used, 3);
}

TEST(SwitchTest, FinishProbeDoesNotAccumulateInt) {
  Simulator sim;
  auto net = topo::make_dumbbell(sim, 1, 1);
  std::vector<std::unique_ptr<telemetry::CoreAgent>> agents;
  telemetry::CoreConfig cfg;
  cfg.clean_period = 1_s;
  for (sim::Switch* sw : net->switches()) {
    auto a = telemetry::instrument_switch(sim, *sw, cfg);
    for (auto& x : a) agents.push_back(std::move(x));
  }
  Capture rx;
  net->host(HostId{1}).set_stack(&rx);
  const auto& path = net->paths(HostId{0}, HostId{1}).front();
  auto fin = Packet::make(PacketKind::kFinishProbe, VmPairId{VmId{0}, VmId{1}}, TenantId{0},
                          HostId{0}, HostId{1}, kProbeBaseBytes);
  fin->probe.reg_key = 9;
  fin->route = path.route;
  net->host(HostId{0}).send_control(std::move(fin));
  sim.run_until(1_ms);
  ASSERT_EQ(rx.got.size(), 1u);
  EXPECT_TRUE(rx.got[0]->telemetry.empty());
  EXPECT_EQ(rx.got[0]->probe.finish_acks, static_cast<std::int32_t>(path.switches.size()));
}

}  // namespace
}  // namespace ufab::sim

// Fused link pipelines (DESIGN.md §13): one resident calendar event per busy
// link, with delivery times, drop accounting, telemetry, and flap semantics
// byte-identical to the legacy two-event serializer.  Canonical ordering
// (configure_shards) is what makes the fused path eligible; the same
// scenarios are replayed against the legacy serializer to pin equivalence.
#include <gtest/gtest.h>

#include <memory>
#include <utility>
#include <vector>

#include "src/sim/link.hpp"
#include "src/sim/node.hpp"
#include "src/sim/simulator.hpp"

namespace ufab::sim {
namespace {

using namespace ufab::time_literals;
using namespace ufab::unit_literals;

class SinkNode : public Node {
 public:
  explicit SinkNode(Simulator& sim) : Node(NodeId{0}, "sink"), sim_(sim) {}
  void receive(PacketPtr pkt) override {
    arrivals.push_back({sim_.now(), std::move(pkt)});
  }
  std::vector<std::pair<TimeNs, PacketPtr>> arrivals;

 private:
  Simulator& sim_;
};

PacketPtr make_data(std::int32_t bytes) {
  return Packet::make(PacketKind::kData, VmPairId{VmId{0}, VmId{1}}, TenantId{0}, HostId{0},
                      HostId{1}, bytes);
}

/// A canonical-order serial simulator with fused pipelines on or off.
struct World {
  explicit World(bool fused, TimeNs prop = 1_us) : sink(sim) {
    sim.configure_shards(1, TimeNs::max());
    sim.set_fused_links(fused);
    link = std::make_unique<Link>(sim, LinkId{0}, "l", &sink,
                                  LinkConfig{10_Gbps, prop, 1'000'000, -1, 0.95});
  }
  Simulator sim;
  SinkNode sink;
  std::unique_ptr<Link> link;
};

TEST(FusedLink, MatchesLegacyDeliveryTimesAndCounters) {
  std::vector<std::pair<TimeNs, std::int32_t>> legacy_arrivals;
  for (const bool fused : {false, true}) {
    World w(fused);
    for (const std::int32_t bytes : {1500, 64, 1500, 9000, 300}) {
      w.link->enqueue(make_data(bytes));
    }
    w.sim.run();
    ASSERT_EQ(w.sink.arrivals.size(), 5u);
    if (!fused) {
      for (const auto& [at, pkt] : w.sink.arrivals) {
        legacy_arrivals.push_back({at, pkt->size_bytes});
      }
      continue;
    }
    for (std::size_t i = 0; i < w.sink.arrivals.size(); ++i) {
      EXPECT_EQ(w.sink.arrivals[i].first, legacy_arrivals[i].first) << "packet " << i;
      EXPECT_EQ(w.sink.arrivals[i].second->size_bytes, legacy_arrivals[i].second);
    }
    EXPECT_EQ(w.link->tx_bytes_cum(), 1500 + 64 + 1500 + 9000 + 300);
    EXPECT_EQ(w.link->drops(), 0);
    EXPECT_EQ(w.link->pipe_depth(), 0u);
  }
}

TEST(FusedLink, OneResidentCalendarEventPerBusyLink) {
  // Long propagation: all eight packets serialize before the first arrives,
  // so the legacy engine holds one DeliverEvent per in-flight packet while
  // the fused pipe holds them all behind a single head event.
  World legacy(false, 100_us);
  World fused(true, 100_us);
  for (int i = 0; i < 8; ++i) {
    legacy.link->enqueue(make_data(1500));
    fused.link->enqueue(make_data(1500));
  }
  // 8 x 1200 ns of serialization ends at 9.6 us; first delivery at 101.2 us.
  legacy.sim.run_until(50_us);
  fused.sim.run_until(50_us);
  EXPECT_EQ(legacy.sim.pending(), 8u);  // one propagation event per packet
  EXPECT_EQ(fused.sim.pending(), 1u);   // the head departure only
  EXPECT_EQ(fused.link->pipe_depth(), 8u);
  EXPECT_EQ(fused.link->tx_bytes_cum(), legacy.link->tx_bytes_cum());
  legacy.sim.run();
  fused.sim.run();
  ASSERT_EQ(fused.sink.arrivals.size(), 8u);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(fused.sink.arrivals[i].first, legacy.sink.arrivals[i].first);
  }
  // The fused run retires one calendar event per hop instead of two.
  EXPECT_LT(fused.sim.events_processed(), legacy.sim.events_processed());
}

TEST(FusedLink, TelemetryMatchesLegacyMidStream) {
  World legacy(false, 2_us);
  World fused(true, 2_us);
  for (int i = 0; i < 6; ++i) {
    legacy.link->enqueue(make_data(1500));
    fused.link->enqueue(make_data(1500));
  }
  for (const TimeNs at : {TimeNs{1000}, TimeNs{1200}, TimeNs{2500}, TimeNs{5000}, TimeNs{9000}}) {
    legacy.sim.run_until(at);
    fused.sim.run_until(at);
    EXPECT_EQ(fused.link->queue_bytes(), legacy.link->queue_bytes()) << "at " << at.ns();
    EXPECT_EQ(fused.link->tx_bytes_cum(), legacy.link->tx_bytes_cum()) << "at " << at.ns();
    EXPECT_EQ(fused.link->max_queue_bytes(), legacy.link->max_queue_bytes()) << "at " << at.ns();
    EXPECT_DOUBLE_EQ(fused.link->tx_rate().bits_per_sec(), legacy.link->tx_rate().bits_per_sec())
        << "at " << at.ns();
  }
}

TEST(FusedLink, TailDropAndEcnMatchLegacy) {
  // Tail drop: queue limit fits exactly two MTUs beyond the in-service
  // packet, so of five arrivals two must drop on both serializer paths.
  for (const bool fused : {false, true}) {
    World w(fused);
    w.link = std::make_unique<Link>(w.sim, LinkId{0}, "l", &w.sink,
                                    LinkConfig{10_Gbps, 1_us, 3000, -1, 0.95});
    for (int i = 0; i < 5; ++i) w.link->enqueue(make_data(1500));
    w.sim.run();
    ASSERT_EQ(w.sink.arrivals.size(), 3u) << "fused=" << fused;
    EXPECT_EQ(w.link->drops(), 2) << "fused=" << fused;
  }
  // ECN: the mark pattern (which packets exceed the standing-queue
  // threshold at enqueue) must be identical packet by packet.
  World legacy(false);
  World marked(true);
  legacy.link = std::make_unique<Link>(legacy.sim, LinkId{0}, "l", &legacy.sink,
                                       LinkConfig{10_Gbps, 1_us, 1'000'000, 2000, 0.95});
  marked.link = std::make_unique<Link>(marked.sim, LinkId{0}, "l", &marked.sink,
                                       LinkConfig{10_Gbps, 1_us, 1'000'000, 2000, 0.95});
  for (int i = 0; i < 4; ++i) {
    legacy.link->enqueue(make_data(1500));
    marked.link->enqueue(make_data(1500));
  }
  legacy.sim.run();
  marked.sim.run();
  ASSERT_EQ(marked.sink.arrivals.size(), 4u);
  int marks = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(marked.sink.arrivals[i].second->ecn_ce, legacy.sink.arrivals[i].second->ecn_ce)
        << "packet " << i;
    marks += marked.sink.arrivals[i].second->ecn_ce ? 1 : 0;
  }
  EXPECT_GE(marks, 1);
  EXPECT_FALSE(marked.sink.arrivals[0].second->ecn_ce);
}

TEST(FusedLink, RapidFlapDoesNotWedgePipeline) {
  // The fused variant of the PR 1 wedge-window regression: an abort mid-
  // serialization must free the pipe immediately and neutralize the stale
  // head event, so traffic after a fast re-enable flows at once.
  World w(true);
  w.link->enqueue(make_data(1500));  // serializes during [0, 1200) ns
  w.sim.run_until(TimeNs{600});
  w.link->set_down(true);   // aborts mid-serialization
  w.link->set_down(false);  // immediate re-enable
  EXPECT_EQ(w.link->pipe_depth(), 0u);
  w.link->enqueue(make_data(1000));
  w.sim.run();
  ASSERT_EQ(w.sink.arrivals.size(), 1u);
  // New packet serializes during [600, 1400), arrives prop (1 us) later —
  // not at the aborted packet's old completion time.  The stale head event
  // (2200 ns) must not deliver anything.
  EXPECT_EQ(w.sink.arrivals[0].first, TimeNs{2400});
  EXPECT_EQ(w.link->drops(), 1);
  EXPECT_EQ(w.link->tx_bytes_cum(), 1000);
}

TEST(FusedLink, SetDownKeepsPacketsAlreadyOnTheWire) {
  // Packets past their serializer-end are propagating: like legacy
  // DeliverEvents they survive a set_down and still arrive.
  World w(true, 100_us);
  for (int i = 0; i < 3; ++i) w.link->enqueue(make_data(1500));
  w.sim.run_until(10_us);  // all serialized (3.6 us), none delivered
  w.link->set_down(true);
  w.link->enqueue(make_data(1500));  // dropped on arrival: link is down
  w.sim.run();
  ASSERT_EQ(w.sink.arrivals.size(), 3u);
  EXPECT_EQ(w.sink.arrivals[2].first, TimeNs{103'600});
  EXPECT_EQ(w.link->drops(), 1);
  EXPECT_EQ(w.link->pipe_depth(), 0u);
}

TEST(FusedLink, FlapMidPipelineDropsOnlyUnserializedSuffix) {
  // Mixed pipe at the moment of failure: one packet on the wire (kept), one
  // in virtual serialization plus one queued (both dropped) — exactly the
  // packets the legacy engine would have dropped.
  World w(true, 10_us);
  for (int i = 0; i < 3; ++i) w.link->enqueue(make_data(1500));  // ser-ends 1.2/2.4/3.6 us
  w.sim.run_until(TimeNs{1500});
  w.link->set_down(true);
  EXPECT_EQ(w.link->drops(), 2);
  EXPECT_EQ(w.link->pipe_depth(), 1u);  // the propagating packet
  w.link->set_down(false);
  w.link->enqueue(make_data(1000));  // serializes during [1500, 2300)
  w.sim.run();
  ASSERT_EQ(w.sink.arrivals.size(), 2u);
  EXPECT_EQ(w.sink.arrivals[0].first, TimeNs{11'200});  // survivor: 1.2 us + 10 us
  EXPECT_EQ(w.sink.arrivals[1].first, TimeNs{12'300});  // post-recovery packet
  EXPECT_EQ(w.link->tx_bytes_cum(), 1500 + 1000);
}

TEST(FusedLink, LegacyOnlyModesStayOnLegacyPath) {
  // Pull sources, fault filters, and pinned links must not enter the pipe.
  World w(true);
  int remaining = 2;
  w.link->set_source([&]() -> PacketPtr {
    if (remaining == 0) return nullptr;
    --remaining;
    return make_data(1000);
  });
  w.link->kick();
  w.sim.run();
  EXPECT_EQ(w.sink.arrivals.size(), 2u);
  EXPECT_EQ(w.link->pipe_depth(), 0u);

  World pinned(true);
  pinned.link->pin_legacy();
  pinned.link->enqueue(make_data(1500));
  pinned.sim.run();
  EXPECT_EQ(pinned.sink.arrivals.size(), 1u);
  EXPECT_EQ(pinned.link->pipe_depth(), 0u);

  World filtered(true);
  filtered.link->set_fault_filter([](const Packet&) { return true; });
  filtered.link->enqueue(make_data(1500));
  filtered.sim.run();
  EXPECT_EQ(filtered.sink.arrivals.size(), 0u);
  EXPECT_EQ(filtered.link->fault_drops(), 1);
  EXPECT_EQ(filtered.link->pipe_depth(), 0u);
}

TEST(FusedLink, DefaultOrderModeStaysOnLegacyPath) {
  // Without configure_shards there is no canonical key space to reproduce,
  // so the fused path must not engage even when enabled.
  Simulator sim;
  SinkNode sink(sim);
  Link link(sim, LinkId{0}, "l", &sink, LinkConfig{10_Gbps, 1_us, 1'000'000, -1, 0.95});
  link.enqueue(make_data(1500));
  EXPECT_EQ(link.pipe_depth(), 0u);
  sim.run();
  EXPECT_EQ(sink.arrivals.size(), 1u);
}

}  // namespace
}  // namespace ufab::sim

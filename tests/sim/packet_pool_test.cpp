// PacketPool recycling: a reused packet must be indistinguishable from a
// freshly constructed one — no route, telemetry, probe, or ECN state may leak
// from its previous life — and packet ids must be deterministic per pool so
// concurrently running variants (harness::ParallelSweep) trace identically.
#include <vector>

#include <gtest/gtest.h>

#include "src/sim/packet.hpp"
#include "src/sim/packet_pool.hpp"

namespace ufab::sim {
namespace {

PacketPtr make_dirty(PacketPool& pool) {
  PacketPtr p = make_packet(pool, PacketKind::kProbe, VmPairId{VmId{7}, VmId{8}}, TenantId{3},
                            HostId{1}, HostId{2}, 1500);
  p->route.push_back(4);
  p->route.push_back(2);
  p->reverse_route.push_back(1);
  p->hop = 2;
  p->seq = 999;
  p->payload = 1400;
  p->message_size = 1 << 20;
  p->last_of_message = true;
  p->ecn_ce = true;
  p->ecn_echo = true;
  p->probe.phi = 3.5;
  p->probe.window = 1e6;
  p->probe.reg_key = 0xdeadbeef;
  p->probe.scout = true;
  IntRecord rec;
  rec.phi_total = 42.0;
  rec.queue_bytes = 4096;
  p->telemetry.push_back(rec);
  p->telemetry.push_back(rec);
  return p;
}

TEST(PacketPool, RecycledPacketCarriesNoStaleState) {
  PacketPool pool;
  Packet* first_addr = nullptr;
  {
    PacketPtr p = make_dirty(pool);
    first_addr = p.get();
  }  // destroyed -> recycled
  EXPECT_EQ(pool.free_count(), pool.allocated());

  PacketPtr p = make_packet(pool, PacketKind::kData, VmPairId{VmId{1}, VmId{2}}, TenantId{0},
                            HostId{0}, HostId{1}, 100);
  // LIFO freelist: storage is reused, not re-allocated.
  EXPECT_EQ(p.get(), first_addr);
  EXPECT_EQ(pool.recycled_total(), 1u);

  // Everything from the previous life is gone.
  EXPECT_EQ(p->kind, PacketKind::kData);
  EXPECT_EQ(p->size_bytes, 100);
  EXPECT_TRUE(p->route.empty());
  EXPECT_TRUE(p->reverse_route.empty());
  EXPECT_EQ(p->hop, 0);
  EXPECT_EQ(p->seq, 0);
  EXPECT_EQ(p->payload, 0);
  EXPECT_EQ(p->message_size, 0);
  EXPECT_FALSE(p->last_of_message);
  EXPECT_TRUE(p->ecn_capable);
  EXPECT_FALSE(p->ecn_ce);
  EXPECT_FALSE(p->ecn_echo);
  EXPECT_EQ(p->probe.phi, 0.0);
  EXPECT_EQ(p->probe.window, 0.0);
  EXPECT_EQ(p->probe.reg_key, 0u);
  EXPECT_FALSE(p->probe.scout);
  EXPECT_TRUE(p->telemetry.empty());
  EXPECT_EQ(p->origin_pool, &pool);
}

TEST(PacketPool, IdsAreFreshAndPerPoolDeterministic) {
  PacketPool a;
  PacketPool b;
  std::vector<std::uint64_t> ids_a;
  std::vector<std::uint64_t> ids_b;
  for (int i = 0; i < 5; ++i) {
    // Recycle between makes so ids keep advancing while storage is reused.
    ids_a.push_back(make_packet(a, PacketKind::kData, VmPairId{}, TenantId{}, HostId{0},
                                HostId{1}, 64)
                        ->id);
    ids_b.push_back(make_packet(b, PacketKind::kData, VmPairId{}, TenantId{}, HostId{0},
                                HostId{1}, 64)
                        ->id);
  }
  EXPECT_EQ(ids_a, (std::vector<std::uint64_t>{1, 2, 3, 4, 5}));
  // A second pool sees the identical sequence: ids are per-run, not global.
  EXPECT_EQ(ids_a, ids_b);
}

TEST(PacketPool, GrowsInChunksAndReusesFreelist) {
  PacketPool pool;
  std::vector<PacketPtr> live;
  for (int i = 0; i < 300; ++i) {
    live.push_back(make_packet(pool, PacketKind::kData, VmPairId{}, TenantId{}, HostId{0},
                               HostId{1}, 64));
  }
  EXPECT_EQ(pool.allocated(), 512u);  // two 256-packet chunks
  EXPECT_EQ(pool.free_count(), 512u - 300u);
  live.clear();
  EXPECT_EQ(pool.free_count(), 512u);

  // Steady state: no new chunks however many make/destroy cycles run.
  for (int i = 0; i < 1000; ++i) {
    make_packet(pool, PacketKind::kData, VmPairId{}, TenantId{}, HostId{0}, HostId{1}, 64);
  }
  EXPECT_EQ(pool.allocated(), 512u);
  EXPECT_EQ(pool.recycled_total(), 1000u + 300u);  // every destruction recycled
}

TEST(PacketPool, PoolLessPacketsStillWork) {
  // Packet::make without a pool: heap-allocated, origin_pool null, deleter
  // falls back to delete.  (Tests and setup code use this path.)
  PacketPtr p = Packet::make(PacketKind::kAck, VmPairId{VmId{1}, VmId{2}}, TenantId{1},
                             HostId{3}, HostId{4}, 40);
  EXPECT_EQ(p->origin_pool, nullptr);
  EXPECT_GT(p->id, 0u);
}

}  // namespace
}  // namespace ufab::sim

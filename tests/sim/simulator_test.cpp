// Unit tests for the discrete-event engine.
#include <gtest/gtest.h>

#include <vector>

#include "src/sim/simulator.hpp"

namespace ufab::sim {
namespace {

using namespace ufab::time_literals;

TEST(Simulator, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.at(30_us, [&] { order.push_back(3); });
  sim.at(10_us, [&] { order.push_back(1); });
  sim.at(20_us, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30_us);
  EXPECT_EQ(sim.events_processed(), 3u);
}

TEST(Simulator, FifoTieBreakAtSameTime) {
  Simulator sim;
  std::vector<int> order;
  sim.at(5_us, [&] { order.push_back(1); });
  sim.at(5_us, [&] { order.push_back(2); });
  sim.at(5_us, [&] { order.push_back(3); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, EventsCanScheduleMoreEvents) {
  Simulator sim;
  int fired = 0;
  std::function<void()> chain = [&] {
    ++fired;
    if (fired < 5) sim.after(1_us, chain);
  };
  sim.after(1_us, chain);
  sim.run();
  EXPECT_EQ(fired, 5);
  EXPECT_EQ(sim.now(), 5_us);
}

TEST(Simulator, RunUntilStopsAndAdvancesClock) {
  Simulator sim;
  int fired = 0;
  sim.at(10_us, [&] { ++fired; });
  sim.at(30_us, [&] { ++fired; });
  sim.run_until(20_us);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), 20_us);
  EXPECT_EQ(sim.pending(), 1u);
  sim.run_until(40_us);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.now(), 40_us);
}

TEST(Simulator, RunUntilInclusiveOfBoundary) {
  Simulator sim;
  int fired = 0;
  sim.at(10_us, [&] { ++fired; });
  sim.run_until(10_us);
  EXPECT_EQ(fired, 1);
}

TEST(SimulatorDeathTest, SchedulingIntoThePastAborts) {
  Simulator sim;
  sim.at(10_us, [] {});
  sim.run();
  EXPECT_DEATH(sim.at(5_us, [] {}), "scheduling into the past");
}

}  // namespace
}  // namespace ufab::sim

// Unit tests for Link: serialization, queueing, ECN, drops, rate estimate.
#include <gtest/gtest.h>

#include <vector>

#include "src/sim/host.hpp"
#include "src/sim/link.hpp"
#include "src/sim/node.hpp"
#include "src/sim/simulator.hpp"

namespace ufab::sim {
namespace {

using namespace ufab::time_literals;
using namespace ufab::unit_literals;

/// Terminal node that records arrivals.
class SinkNode : public Node {
 public:
  explicit SinkNode(Simulator& sim) : Node(NodeId{0}, "sink"), sim_(sim) {}
  void receive(PacketPtr pkt) override {
    arrivals.push_back({sim_.now(), std::move(pkt)});
  }
  std::vector<std::pair<TimeNs, PacketPtr>> arrivals;

 private:
  Simulator& sim_;
};

PacketPtr make_data(std::int32_t bytes) {
  auto p = Packet::make(PacketKind::kData, VmPairId{VmId{0}, VmId{1}}, TenantId{0}, HostId{0},
                        HostId{1}, bytes);
  return p;
}

TEST(Link, DeliversAfterSerializationPlusPropagation) {
  Simulator sim;
  SinkNode sink(sim);
  Link link(sim, LinkId{0}, "l", &sink, {10_Gbps, 2_us, 1'000'000, -1, 0.95});
  link.enqueue(make_data(1500));
  sim.run();
  ASSERT_EQ(sink.arrivals.size(), 1u);
  // 1500 B @10 Gbps = 1.2 us serialize + 2 us propagate.
  EXPECT_EQ(sink.arrivals[0].first, TimeNs{3200});
  EXPECT_EQ(link.tx_bytes_cum(), 1500);
}

TEST(Link, BackToBackPacketsSerializeSequentially) {
  Simulator sim;
  SinkNode sink(sim);
  Link link(sim, LinkId{0}, "l", &sink, {10_Gbps, 0_us, 1'000'000, -1, 0.95});
  link.enqueue(make_data(1500));
  link.enqueue(make_data(1500));
  link.enqueue(make_data(1500));
  sim.run();
  ASSERT_EQ(sink.arrivals.size(), 3u);
  EXPECT_EQ(sink.arrivals[0].first.ns(), 1200);
  EXPECT_EQ(sink.arrivals[1].first.ns(), 2400);
  EXPECT_EQ(sink.arrivals[2].first.ns(), 3600);
}

TEST(Link, TailDropsWhenQueueFull) {
  Simulator sim;
  SinkNode sink(sim);
  // Queue limit fits exactly two MTUs beyond the in-service packet.
  Link link(sim, LinkId{0}, "l", &sink, {10_Gbps, 0_us, 3000, -1, 0.95});
  for (int i = 0; i < 5; ++i) link.enqueue(make_data(1500));
  sim.run();
  // First starts transmitting immediately (leaves queue), two fit, two drop.
  EXPECT_EQ(sink.arrivals.size(), 3u);
  EXPECT_EQ(link.drops(), 2);
}

TEST(Link, EcnMarksAboveThreshold) {
  Simulator sim;
  SinkNode sink(sim);
  Link link(sim, LinkId{0}, "l", &sink, {10_Gbps, 0_us, 1'000'000, 2000, 0.95});
  for (int i = 0; i < 4; ++i) link.enqueue(make_data(1500));
  sim.run();
  ASSERT_EQ(sink.arrivals.size(), 4u);
  // Packet 0: queue empty on arrival. Packet 1: queue 0 after pkt0 started
  // transmitting... marks appear once standing queue exceeds 2000 B.
  int marked = 0;
  for (auto& [t, p] : sink.arrivals) marked += p->ecn_ce ? 1 : 0;
  EXPECT_GE(marked, 1);
  EXPECT_FALSE(sink.arrivals[0].second->ecn_ce);
}

TEST(Link, PullSourceDrainedWhenIdle) {
  Simulator sim;
  SinkNode sink(sim);
  Link link(sim, LinkId{0}, "l", &sink, {10_Gbps, 0_us, 1'000'000, -1, 0.95});
  int remaining = 3;
  link.set_source([&]() -> PacketPtr {
    if (remaining == 0) return nullptr;
    --remaining;
    return make_data(1000);
  });
  link.kick();
  sim.run();
  EXPECT_EQ(sink.arrivals.size(), 3u);
  EXPECT_EQ(remaining, 0);
}

TEST(Link, PushQueueHasPriorityOverPullSource) {
  Simulator sim;
  SinkNode sink(sim);
  Link link(sim, LinkId{0}, "l", &sink, {10_Gbps, 0_us, 1'000'000, -1, 0.95});
  bool pulled = false;
  link.set_source([&]() -> PacketPtr {
    if (pulled) return nullptr;
    pulled = true;
    return make_data(1000);
  });
  auto control = make_data(64);
  control->kind = PacketKind::kAck;
  link.enqueue(std::move(control));
  sim.run();
  ASSERT_EQ(sink.arrivals.size(), 2u);
  EXPECT_EQ(sink.arrivals[0].second->kind, PacketKind::kAck);
  EXPECT_EQ(sink.arrivals[1].second->kind, PacketKind::kData);
}

TEST(Link, TxRateEstimateTracksLoad) {
  Simulator sim;
  SinkNode sink(sim);
  Link link(sim, LinkId{0}, "l", &sink, {10_Gbps, 0_us, 10'000'000, -1, 0.95});
  // Saturate for 100 us: 10 Gbps = 125000 bytes per 100 us.
  for (int i = 0; i < 80; ++i) link.enqueue(make_data(1500));
  sim.run_until(96_us);
  EXPECT_NEAR(link.tx_rate(50_us).gbit_per_sec(), 10.0, 0.5);
}

TEST(Link, TxRateZeroWhenIdle) {
  Simulator sim;
  SinkNode sink(sim);
  Link link(sim, LinkId{0}, "l", &sink, {10_Gbps, 0_us, 10'000'000, -1, 0.95});
  EXPECT_DOUBLE_EQ(link.tx_rate().bits_per_sec(), 0.0);
}

TEST(Link, FailureDropsEverything) {
  Simulator sim;
  SinkNode sink(sim);
  Link link(sim, LinkId{0}, "l", &sink, {10_Gbps, 1_us, 1'000'000, -1, 0.95});
  link.enqueue(make_data(1500));
  link.enqueue(make_data(1500));
  link.set_down(true);
  link.enqueue(make_data(1500));  // dropped on arrival
  sim.run();
  EXPECT_TRUE(sink.arrivals.empty());
  EXPECT_EQ(link.drops(), 3);
  // Recovery: new packets flow again.
  link.set_down(false);
  link.enqueue(make_data(1500));
  sim.run();
  EXPECT_EQ(sink.arrivals.size(), 1u);
}

TEST(Link, ReentrantEnqueueFromPullSourceIsNotLost) {
  // Regression: start_next() used to claim the serializer only *after* the
  // pull source returned.  A source callback that re-entered enqueue() (the
  // transport's probe cadence fires while the NIC pulls the next data packet)
  // saw busy_ == false, ran a nested start_next() that put the control packet
  // in flight, and then the outer start_next() overwrote in_flight_ with the
  // pulled data packet — silently destroying the control packet.
  Simulator sim;
  SinkNode sink(sim);
  Link link(sim, LinkId{0}, "l", &sink, {10_Gbps, 0_us, 1'000'000, -1, 0.95});
  int pulls = 0;
  link.set_source([&]() -> PacketPtr {
    if (pulls >= 2) return nullptr;
    ++pulls;
    // Re-enter while the link is mid-pull, as a host pushing a probe does.
    auto probe = Packet::make(PacketKind::kProbe, VmPairId{VmId{0}, VmId{1}}, TenantId{0},
                              HostId{0}, HostId{1}, 64);
    link.enqueue(std::move(probe));
    return make_data(1500);
  });
  link.kick();
  sim.run();
  // Both generations of (probe, data) must arrive: nothing destroyed.
  ASSERT_EQ(sink.arrivals.size(), 4u);
  int probes = 0;
  int datas = 0;
  for (const auto& [when, pkt] : sink.arrivals) {
    (pkt->kind == PacketKind::kProbe ? probes : datas)++;
  }
  EXPECT_EQ(probes, 2);
  EXPECT_EQ(datas, 2);
  EXPECT_EQ(link.tx_bytes_cum(), 2 * 1500 + 2 * 64);
}

TEST(Link, RapidFlapDoesNotWedgeSerializer) {
  // Regression: set_down(true) used to leave busy_ set while dropping the
  // in-flight packet, so kick() after an immediate re-enable was a no-op
  // until the stale serializer event fired — a wedge window as long as the
  // aborted packet's remaining serialization time.
  Simulator sim;
  SinkNode sink(sim);
  Link link(sim, LinkId{0}, "l", &sink, {10_Gbps, 0_us, 1'000'000, -1, 0.95});
  link.enqueue(make_data(1500));  // serializes during [0, 1200) ns
  sim.run_until(TimeNs{600});
  link.set_down(true);   // aborts mid-serialization
  link.set_down(false);  // immediate re-enable
  link.enqueue(make_data(1000));
  sim.run();
  ASSERT_EQ(sink.arrivals.size(), 1u);
  // The new packet starts serializing at 600 ns, not at the aborted
  // packet's old completion time (1200 ns): 600 + 800 = 1400 ns.
  EXPECT_EQ(sink.arrivals[0].first, TimeNs{1400});
  EXPECT_EQ(link.drops(), 1);
}

TEST(Link, StaleSerializerEventIsNeutralizedAcrossFlaps) {
  // The aborted packet's completion event must not double-complete the
  // packet that started after re-enable.
  Simulator sim;
  SinkNode sink(sim);
  Link link(sim, LinkId{0}, "l", &sink, {10_Gbps, 0_us, 1'000'000, -1, 0.95});
  link.enqueue(make_data(1500));
  sim.run_until(TimeNs{100});
  link.set_down(true);
  link.set_down(false);
  link.enqueue(make_data(1500));  // starts at 100, finishes at 1300
  // The stale event fires at 1200; it must not deliver or free the wire.
  sim.run();
  ASSERT_EQ(sink.arrivals.size(), 1u);
  EXPECT_EQ(sink.arrivals[0].first, TimeNs{1300});
  EXPECT_EQ(link.tx_bytes_cum(), 1500);
  // Redundant set_down calls are idempotent (no double drop counting).
  link.set_down(false);
  EXPECT_EQ(link.drops(), 1);
}

TEST(Link, FaultFilterDropsOnTheWire) {
  Simulator sim;
  SinkNode sink(sim);
  Link link(sim, LinkId{0}, "l", &sink, {10_Gbps, 0_us, 1'000'000, -1, 0.95});
  int seen = 0;
  link.set_fault_filter([&seen](const Packet&) { return ++seen % 2 == 0; });
  for (int i = 0; i < 4; ++i) link.enqueue(make_data(1000));
  sim.run();
  // Every packet consumed wire time (cumulative TX counts all four), but
  // every second one was lost after serializing.
  EXPECT_EQ(sink.arrivals.size(), 2u);
  EXPECT_EQ(link.fault_drops(), 2);
  EXPECT_EQ(link.drops(), 0);
  EXPECT_EQ(link.tx_bytes_cum(), 4000);
}

TEST(Link, MaxQueueTracksHighWaterMark) {
  Simulator sim;
  SinkNode sink(sim);
  Link link(sim, LinkId{0}, "l", &sink, {10_Gbps, 0_us, 1'000'000, -1, 0.95});
  for (int i = 0; i < 4; ++i) link.enqueue(make_data(1500));
  // First packet starts service immediately; three remain queued.
  EXPECT_EQ(link.max_queue_bytes(), 4500);
  sim.run();
  EXPECT_EQ(link.queue_bytes(), 0);
  link.reset_max_queue();
  EXPECT_EQ(link.max_queue_bytes(), 0);
}

}  // namespace
}  // namespace ufab::sim

// Sharded-engine semantics: canonical ordering (single- and multi-shard),
// cross-shard packet handoff timing, and the core equivalence claim — a
// threaded epoch run fires the exact same schedule as a sequential one.
#include <cstdint>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "src/obs/profiler.hpp"
#include "src/sim/node.hpp"
#include "src/sim/packet.hpp"
#include "src/sim/shard_sync.hpp"
#include "src/sim/simulator.hpp"

namespace ufab::sim {
namespace {

TEST(ShardedEngine, CanonicalSingleShardKeepsRootFifoOrder) {
  Simulator sim;
  sim.configure_shards(1, TimeNs::max());
  ASSERT_TRUE(sim.canonical_order());
  std::vector<int> fired;
  for (int i = 0; i < 8; ++i) {
    sim.at(TimeNs{100}, [i, &fired] { fired.push_back(i); });
  }
  sim.run();
  EXPECT_EQ(fired, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
  EXPECT_EQ(sim.events_processed(), 8u);
}

TEST(ShardedEngine, CanonicalChildrenKeepCreationOrder) {
  Simulator sim;
  sim.configure_shards(1, TimeNs::max());
  std::vector<int> fired;
  sim.at(TimeNs{50}, [&sim, &fired] {
    for (int i = 0; i < 6; ++i) {
      sim.at(TimeNs{200}, [i, &fired] { fired.push_back(i); });
    }
  });
  sim.run();
  EXPECT_EQ(fired, (std::vector<int>{0, 1, 2, 3, 4, 5}));
}

class RecordingNode final : public Node {
 public:
  RecordingNode(Simulator& sim, std::int32_t id) : Node(NodeId{id}, "rec"), sim_(sim) {}
  void receive(PacketPtr pkt) override {
    arrivals.emplace_back(sim_.now().ns(), pkt->size_bytes);
  }
  std::vector<std::pair<std::int64_t, std::int64_t>> arrivals;

 private:
  Simulator& sim_;
};

TEST(ShardedEngine, CrossShardHandoffDeliversAtPostedTime) {
  Simulator sim;
  sim.configure_shards(2, TimeNs{1000}, ShardExec::kSequential);
  ASSERT_EQ(sim.shard_count(), 2);
  RecordingNode dst(sim, 0);
  {
    const auto scope = sim.scoped(0);
    sim.at(TimeNs{100}, [&sim, &dst] {
      // Wire-exit at t=100, one propagation delay (== lookahead) later on
      // the far shard: the earliest legal crossing.
      auto pkt = make_packet(sim.packet_pool(), PacketKind::kData, VmPairId{VmId{1}, VmId{2}},
                             TenantId{0}, HostId{0}, HostId{1}, 1500);
      sim.post_cross(1, TimeNs{1100}, &dst, std::move(pkt));
    });
  }
  sim.run_until(TimeNs{5000});
  ASSERT_EQ(dst.arrivals.size(), 1u);
  EXPECT_EQ(dst.arrivals[0].first, 1100);
  EXPECT_EQ(dst.arrivals[0].second, 1500);
  EXPECT_EQ(sim.shard_crossings_out(0), 1u);
  EXPECT_EQ(sim.shard_crossings_out(1), 0u);
  EXPECT_GE(sim.shard_events_processed(1), 1u);
  EXPECT_EQ(sim.now(), TimeNs{5000});
}

/// A deterministic two-shard workload: per shard, a self-rescheduling chain
/// that periodically fires a packet across to the other shard.  The trace —
/// (time, payload) per shard — plus the engine counters must be identical
/// however the epochs execute.
struct TwoShardRun {
  std::vector<std::pair<std::int64_t, std::int64_t>> arrivals[2];
  std::vector<std::int64_t> chain_times[2];
  std::uint64_t events = 0;
  std::uint64_t crossings[2] = {0, 0};
  std::int64_t final_now = 0;
};

TwoShardRun run_two_shard_workload(ShardExec exec, bool adaptive = true, int windows = 16,
                                   std::uint64_t* epochs_out = nullptr) {
  constexpr std::int64_t kLookahead = 1000;
  constexpr TimeNs kEnd{40'000};
  Simulator sim;
  sim.configure_shards(2, TimeNs{kLookahead}, exec);
  sim.set_adaptive_epochs(adaptive, windows);
  if (epochs_out != nullptr) {
    obs::ProfOptions popts;
    popts.level = 1;
    sim.enable_profiling(popts);
  }
  TwoShardRun out;
  RecordingNode* nodes[2] = {new RecordingNode(sim, 0), new RecordingNode(sim, 1)};

  // One chain per shard; steps deliberately misaligned with the epoch length
  // so events straddle boundaries.  Every third step posts a crossing that
  // lands exactly one lookahead later on the peer shard.
  struct Chain {
    Simulator* sim;
    RecordingNode* peer;
    int self;
    std::vector<std::int64_t>* times;
    int step = 0;
    void fire() {
      times->push_back(sim->now().ns());
      ++step;
      if (step % 3 == 0) {
        auto pkt =
            make_packet(sim->packet_pool(), PacketKind::kData, VmPairId{VmId{1}, VmId{2}},
                        TenantId{0}, HostId{0}, HostId{1}, 64 * self + step);
        sim->post_cross(1 - self, sim->now() + TimeNs{kLookahead}, peer, std::move(pkt));
      }
      if (sim->now() < TimeNs{30'000}) {
        sim->after(TimeNs{self == 0 ? 331 : 457}, [this] { fire(); });
      }
    }
  };
  auto* chains = new Chain[2];
  for (int s = 0; s < 2; ++s) {
    chains[s] = Chain{&sim, nodes[1 - s], s, &out.chain_times[s]};
    const auto scope = sim.scoped(s);
    sim.at(TimeNs{10 + s}, [chain = &chains[s]] { chain->fire(); });
  }
  sim.run_until(kEnd);

  for (int s = 0; s < 2; ++s) {
    out.arrivals[s] = nodes[s]->arrivals;
    out.crossings[s] = sim.shard_crossings_out(s);
  }
  out.events = sim.events_processed();
  out.final_now = sim.now().ns();
  if (epochs_out != nullptr) *epochs_out = sim.profiler()->epochs();
  delete[] chains;
  delete nodes[0];
  delete nodes[1];
  return out;
}

TEST(ShardedEngine, ThreadedEpochsMatchSequentialExactly) {
  const TwoShardRun seq = run_two_shard_workload(ShardExec::kSequential);
  const TwoShardRun thr = run_two_shard_workload(ShardExec::kThreads);
  // The workload actually exercised both shards and the mailboxes.
  ASSERT_GT(seq.chain_times[0].size(), 10u);
  ASSERT_GT(seq.chain_times[1].size(), 10u);
  ASSERT_GT(seq.crossings[0], 0u);
  ASSERT_GT(seq.crossings[1], 0u);
  ASSERT_FALSE(seq.arrivals[0].empty());
  ASSERT_FALSE(seq.arrivals[1].empty());
  for (int s = 0; s < 2; ++s) {
    EXPECT_EQ(seq.chain_times[s], thr.chain_times[s]) << "shard " << s;
    EXPECT_EQ(seq.arrivals[s], thr.arrivals[s]) << "shard " << s;
    EXPECT_EQ(seq.crossings[s], thr.crossings[s]) << "shard " << s;
  }
  EXPECT_EQ(seq.events, thr.events);
  EXPECT_EQ(seq.final_now, thr.final_now);
}

TEST(ShardedEngine, AdaptiveEpochsAreScheduleNeutral) {
  // Every (adaptive, windows, exec) combination must fire the identical
  // schedule: multi-window epochs only change *when barriers happen*, never
  // what runs between them (DESIGN.md §12).
  const TwoShardRun base = run_two_shard_workload(ShardExec::kSequential, false, 1);
  ASSERT_GT(base.chain_times[0].size(), 10u);
  struct Combo {
    ShardExec exec;
    bool adaptive;
    int windows;
  };
  for (const Combo c : {Combo{ShardExec::kSequential, true, 4},
                        Combo{ShardExec::kSequential, true, 16},
                        Combo{ShardExec::kThreads, false, 1},
                        Combo{ShardExec::kThreads, true, 4},
                        Combo{ShardExec::kThreads, true, 16}}) {
    const TwoShardRun run = run_two_shard_workload(c.exec, c.adaptive, c.windows);
    for (int s = 0; s < 2; ++s) {
      EXPECT_EQ(base.chain_times[s], run.chain_times[s])
          << "adaptive=" << c.adaptive << " windows=" << c.windows << " shard " << s;
      EXPECT_EQ(base.arrivals[s], run.arrivals[s]) << "shard " << s;
      EXPECT_EQ(base.crossings[s], run.crossings[s]) << "shard " << s;
    }
    EXPECT_EQ(base.events, run.events);
    EXPECT_EQ(base.final_now, run.final_now);
  }
}

TEST(ShardedEngine, AdaptiveEpochsAmortizeBarriers) {
  // Same workload, profiled: the adaptive engine must reach the horizon with
  // several-fold fewer coordinator barriers than the one-window-per-epoch
  // legacy cadence (this is the whole point of the optimization).
  std::uint64_t legacy = 0;
  std::uint64_t adaptive = 0;
  const TwoShardRun a = run_two_shard_workload(ShardExec::kSequential, false, 1, &legacy);
  const TwoShardRun b = run_two_shard_workload(ShardExec::kSequential, true, 16, &adaptive);
  EXPECT_EQ(a.events, b.events);
  ASSERT_GT(legacy, 0u);
  ASSERT_GT(adaptive, 0u);
  EXPECT_LE(adaptive * 4, legacy)
      << "adaptive epochs should amortize >=4x fewer barriers (legacy=" << legacy
      << " adaptive=" << adaptive << ")";
}

TEST(ShardMailboxUnit, PostFlushDrainKeepsOrderAndCounts) {
  ShardMailbox<int> box;
  for (int i = 0; i < 5; ++i) box.post(int{i});
  EXPECT_EQ(box.posted_total(), 5u);
  std::vector<int> got;
  const auto take = [&got](int v) { got.push_back(v); };
  // Nothing published yet: a drain sees an empty mailbox.
  box.drain(take);
  EXPECT_TRUE(got.empty());
  box.flush();
  EXPECT_EQ(box.flushes(), 1u);
  box.drain(take);
  EXPECT_EQ(got, (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_EQ(box.max_drain_batch(), 5u);
  EXPECT_TRUE(box.quiesced_empty());
  // A second flush with nothing new published is a no-op (no release store).
  box.flush();
  EXPECT_EQ(box.flushes(), 1u);
  got.clear();
  box.post(7);
  box.flush();
  box.drain(take);
  EXPECT_EQ(got, std::vector<int>{7});
  EXPECT_EQ(box.posted_total(), 6u);
  EXPECT_EQ(box.max_drain_batch(), 5u);
}

TEST(ShardMailboxUnit, BatchesSpanChunksAndRewind) {
  ShardMailbox<int> box;
  // More than one 64-item chunk in a single batch, across several cycles so
  // the quiesced rewind path runs too.
  std::uint64_t total = 0;
  std::vector<int> got;
  for (int round = 0; round < 200; ++round) {
    const int n = 100 + round;  // straddles chunk boundaries at every offset
    for (int i = 0; i < n; ++i) box.post(round * 1000 + i);
    box.flush();
    got.clear();
    box.drain([&got](int v) { got.push_back(v); });
    ASSERT_EQ(static_cast<int>(got.size()), n) << "round " << round;
    ASSERT_EQ(got.front(), round * 1000);
    ASSERT_EQ(got.back(), round * 1000 + n - 1);
    total += static_cast<std::uint64_t>(n);
    ASSERT_TRUE(box.quiesced_empty());
    box.maybe_reset();
  }
  EXPECT_EQ(box.posted_total(), total);
  EXPECT_GE(box.max_drain_batch(), 100u);
}

}  // namespace
}  // namespace ufab::sim

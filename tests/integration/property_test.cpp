// Cross-cutting property tests, parameterized over schemes / topologies /
// seeds (TEST_P sweeps). These pin down invariants no single scenario test
// covers: reliable delivery under every scheme, determinism, register
// conservation, and uFAB's guarantee/queue bounds across random workloads.
#include <gtest/gtest.h>

#include <atomic>
#include <tuple>

#include "src/harness/experiment.hpp"
#include "src/workload/sources.hpp"

namespace ufab::harness {
namespace {

using namespace ufab::time_literals;
using namespace ufab::unit_literals;

// ---------------------------------------------------------------------------
// Reliable delivery: every message injected under random traffic completes,
// for every scheme, on every topology, across seeds.
// ---------------------------------------------------------------------------

using DeliveryParam = std::tuple<Scheme, int /*topology*/, std::uint64_t /*seed*/>;

class ReliableDelivery : public ::testing::TestWithParam<DeliveryParam> {};

Experiment::TopoFn topology(int which) {
  switch (which) {
    case 0:
      return [](sim::Simulator& s, const topo::FabricOptions& o) {
        return topo::make_dumbbell(s, 3, 3, o);
      };
    case 1:
      return [](sim::Simulator& s, const topo::FabricOptions& o) {
        return topo::make_leaf_spine(s, 2, 3, 3, o);
      };
    default:
      return [](sim::Simulator& s, const topo::FabricOptions& o) {
        return topo::make_testbed(s, o);
      };
  }
}

TEST_P(ReliableDelivery, AllMessagesComplete) {
  const auto [scheme, topo_idx, seed] = GetParam();
  Experiment exp(scheme, topology(topo_idx), {}, {}, seed);
  auto& fab = exp.fab();
  auto& vms = fab.vms();

  // Random pairs across the fabric with mixed guarantees.
  Rng rng = fab.rng().fork("prop");
  const int hosts = static_cast<int>(fab.net().host_count());
  std::vector<VmPairId> pairs;
  for (int i = 0; i < 6; ++i) {
    const TenantId t =
        vms.add_tenant("T" + std::to_string(i), Bandwidth::gbps(1.0 + static_cast<double>(i % 3)));
    const int a = static_cast<int>(rng.below(static_cast<std::uint64_t>(hosts)));
    int b = static_cast<int>(rng.below(static_cast<std::uint64_t>(hosts)));
    if (b == a) b = (b + 1) % hosts;
    pairs.push_back(VmPairId{vms.add_vm(t, HostId{a}), vms.add_vm(t, HostId{b})});
  }

  std::int64_t sent_msgs = 0;
  // Deliveries land on the receiving host's shard, so under a sharded engine
  // the listener can fire from several worker threads; the sums are
  // order-independent, so atomics keep the assertion exact.
  std::atomic<std::int64_t> delivered{0};
  std::atomic<std::int64_t> delivered_bytes{0};
  std::int64_t sent_bytes = 0;
  fab.add_delivery_listener([&](const transport::Message& m, TimeNs) {
    delivered.fetch_add(1, std::memory_order_relaxed);
    delivered_bytes.fetch_add(m.size_bytes, std::memory_order_relaxed);
  });
  for (int burst = 0; burst < 40; ++burst) {
    const auto& p = pairs[rng.below(pairs.size())];
    const auto size = static_cast<std::int64_t>(1 + rng.below(200'000));
    // Each burst is homed on its sender's shard: the closure mutates that
    // host's transport state, so it must run on the owning event loop.
    fab.schedule_on_host(vms.host_of(p.src),
                         TimeNs{static_cast<std::int64_t>(rng.below(10'000'000))},
                         [&fab, p, size] { fab.send(p, size); });
    ++sent_msgs;
    sent_bytes += size;
  }
  fab.sim().run_until(120_ms);  // generous drain

  EXPECT_EQ(delivered, sent_msgs);
  EXPECT_EQ(delivered_bytes, sent_bytes);
}

std::string delivery_param_name(const ::testing::TestParamInfo<DeliveryParam>& info) {
  std::string name = to_string(std::get<0>(info.param));
  for (char& c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return name + "_topo" + std::to_string(std::get<1>(info.param)) + "_seed" +
         std::to_string(std::get<2>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ReliableDelivery,
    ::testing::Combine(::testing::Values(Scheme::kUfab, Scheme::kUfabPrime, Scheme::kPwc,
                                         Scheme::kEsClove),
                       ::testing::Values(0, 1, 2), ::testing::Values(1u, 42u)),
    delivery_param_name);

// ---------------------------------------------------------------------------
// uFAB guarantee/queue invariants across seeds.
// ---------------------------------------------------------------------------

class UfabInvariants : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(UfabInvariants, GuaranteesAndQueueBoundHold) {
  const std::uint64_t seed = GetParam();
  Experiment exp(Scheme::kUfab, topology(2), {}, {}, seed);
  auto& fab = exp.fab();
  auto& vms = fab.vms();
  // Feasible permutation: 3 VFs per source host, 1+2+4 = 7G < 9.5G.
  std::vector<GuaranteeSpec> specs;
  std::vector<VmPairId> pairs;
  for (int h = 0; h < 4; ++h) {
    for (const double g : {1.0, 2.0, 4.0}) {
      const TenantId t = vms.add_tenant("T" + std::to_string(h) + std::to_string(int(g)),
                                        Bandwidth::gbps(g));
      const VmPairId p{vms.add_vm(t, HostId{h}), vms.add_vm(t, HostId{4 + h})};
      pairs.push_back(p);
      fab.keep_backlogged(p, 0_ms, 60_ms);
      specs.push_back(GuaranteeSpec{p, g * 1e9, 10_ms, 60_ms});
    }
  }
  fab.sim().run_until(60_ms);

  // Guarantees: low dissatisfaction in steady state.
  EXPECT_LT(dissatisfaction_ratio(fab, specs, 60_ms), 0.05) << "seed " << seed;
  // Queue bound: every link below ~3x its BDP (24 us max baseRTT).
  for (const auto* l : fab.net().links()) {
    const double bdp = l->target_capacity().bdp_bytes(TimeNs{26'000});
    EXPECT_LT(static_cast<double>(l->max_queue_bytes()), 3.0 * bdp + 4500.0)
        << l->name() << " seed " << seed;
    EXPECT_EQ(l->drops(), 0) << l->name();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, UfabInvariants, ::testing::Values(1u, 7u, 13u, 99u));

// ---------------------------------------------------------------------------
// Register conservation: after all traffic drains and idle-finish fires,
// every switch register returns to zero.
// ---------------------------------------------------------------------------

TEST(RegisterConservation, DrainsToZeroAfterTraffic) {
  SchemeOptions opts;
  // Short silent-quit sweep so zero-token scout registrations also age out
  // within the test horizon.
  opts.core.clean_period = 20_ms;
  Experiment exp(Scheme::kUfab, topology(2), {}, opts, 5);
  auto& fab = exp.fab();
  auto& vms = fab.vms();
  Rng rng = fab.rng().fork("x");
  for (int i = 0; i < 8; ++i) {
    const TenantId t = vms.add_tenant("T" + std::to_string(i), 1_Gbps);
    const int a = static_cast<int>(rng.below(8));
    const int b = (a + 1 + static_cast<int>(rng.below(7))) % 8;
    const VmPairId p{vms.add_vm(t, HostId{a}), vms.add_vm(t, HostId{b})};
    fab.send(p, static_cast<std::int64_t>(10'000 + rng.below(500'000)));
  }
  fab.sim().run_until(80_ms);  // >> idle finish timeout

  double total_phi = 0.0;
  double total_w = 0.0;
  std::size_t total_pairs = 0;
  for (const auto& agent : fab.core_agents()) {
    total_phi += agent->phi_total();
    total_w += agent->window_total();
    total_pairs += agent->active_pairs();
  }
  EXPECT_NEAR(total_phi, 0.0, 1.0);  // float residue from delta chains
  EXPECT_NEAR(total_w, 0.0, 1.0);
  EXPECT_EQ(total_pairs, 0u);
}

// ---------------------------------------------------------------------------
// Determinism: identical seeds produce bit-identical outcomes.
// ---------------------------------------------------------------------------

TEST(Determinism, SameSeedSameBytes) {
  const auto run = [](std::uint64_t seed) {
    Experiment exp(Scheme::kUfab, topology(1), {}, {}, seed);
    auto& fab = exp.fab();
    auto& vms = fab.vms();
    const TenantId t = vms.add_tenant("A", 2_Gbps);
    const TenantId u = vms.add_tenant("B", 1_Gbps);
    const VmPairId p1{vms.add_vm(t, HostId{0}), vms.add_vm(t, HostId{3})};
    const VmPairId p2{vms.add_vm(u, HostId{1}), vms.add_vm(u, HostId{4})};
    fab.keep_backlogged(p1, 0_ms, 20_ms);
    fab.keep_backlogged(p2, 1_ms, 20_ms);
    fab.sim().run_until(20_ms);
    std::int64_t sig = 0;
    for (const auto* l : fab.net().links()) sig += l->tx_bytes_cum() * (l->id().value() + 1);
    return std::pair<std::int64_t, std::uint64_t>{sig, fab.sim().events_processed()};
  };
  const auto a = run(77);
  const auto b = run(77);
  const auto c = run(78);
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
  EXPECT_NE(a.first, c.first);  // different seed perturbs the run
}

}  // namespace
}  // namespace ufab::harness

// Application models must function correctly over every transport scheme —
// parameterized sweep checking liveness and sane latency accounting.
#include <gtest/gtest.h>

#include "src/harness/experiment.hpp"
#include "src/workload/apps.hpp"

namespace ufab::harness {
namespace {

using namespace ufab::time_literals;
using namespace ufab::unit_literals;

class AppsAcrossSchemes : public ::testing::TestWithParam<Scheme> {};

TEST_P(AppsAcrossSchemes, RpcClosedLoopLives) {
  Experiment exp(
      GetParam(),
      [](sim::Simulator& s, const topo::FabricOptions& o) {
        return topo::make_dumbbell(s, 2, 2, o);
      },
      {}, {}, 4);
  auto& fab = exp.fab();
  auto& vms = fab.vms();
  const TenantId t = vms.add_tenant("rpc", 2_Gbps);
  std::vector<VmId> clients{vms.add_vm(t, HostId{0}), vms.add_vm(t, HostId{1})};
  std::vector<VmId> servers{vms.add_vm(t, HostId{2}), vms.add_vm(t, HostId{3})};
  workload::RpcApp app(fab, clients, servers, workload::RpcApp::memcached(0_ms, 30_ms, 3),
                       fab.rng().fork("rpc"));
  fab.sim().run_until(40_ms);

  EXPECT_GT(app.completed(), 100) << to_string(GetParam());
  // Closed loop with 2 clients: QPS x QCT ~ 2 (Little's law sanity).
  const double qps = app.qps(5_ms, 30_ms);
  const double qct_sec = app.qct_us().mean() / 1e6;
  EXPECT_NEAR(qps * qct_sec, 2.0, 0.6) << to_string(GetParam());
  // Every QCT is at least a round trip of small packets (the MTU-based
  // base RTT overestimates serialization for 100 B requests, hence 0.5x).
  EXPECT_GT(app.qct_us().min(),
            fab.net().base_rtt(HostId{0}, HostId{2}).us() * 0.5);
}

TEST_P(AppsAcrossSchemes, EbsPipelineLives) {
  Experiment exp(
      GetParam(),
      [](sim::Simulator& s, const topo::FabricOptions& o) {
        return topo::make_dumbbell(s, 2, 4, o);
      },
      {}, {}, 4);
  auto& fab = exp.fab();
  auto& vms = fab.vms();
  const TenantId sa = vms.add_tenant("SA", 2_Gbps);
  const TenantId ba = vms.add_tenant("BA", 4_Gbps);
  std::vector<VmId> sas{vms.add_vm(sa, HostId{0}), vms.add_vm(sa, HostId{1})};
  std::vector<VmId> bas{vms.add_vm(ba, HostId{2}), vms.add_vm(ba, HostId{3})};
  std::vector<VmId> css{vms.add_vm(ba, HostId{4}), vms.add_vm(ba, HostId{5}),
                        vms.add_vm(ba, HostId{2})};
  workload::EbsApp::Config cfg;
  cfg.stop = 20_ms;
  workload::EbsApp app(fab, sas, bas, css, /*gc=*/{}, cfg, fab.rng().fork("ebs"));
  fab.sim().run_until(50_ms);

  EXPECT_GT(app.blocks_completed(), 30) << to_string(GetParam());
  // Replication happens after the SA stage by construction.
  EXPECT_GE(app.total_tct_ms().min(), app.sa_tct_ms().min());
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, AppsAcrossSchemes,
                         ::testing::Values(Scheme::kUfab, Scheme::kUfabPrime, Scheme::kPwc,
                                           Scheme::kEsClove),
                         [](const ::testing::TestParamInfo<Scheme>& info) {
                           std::string name = to_string(info.param);
                           for (char& c : name) {
                             if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace ufab::harness

// Determinism regression for the engine overhaul (calendar queue, packet
// pool, parallel sweeps): a fig17-style workload at tiny scale must produce
// bit-identical results run-to-run within a process, and under
// harness::ParallelSweep with 1 vs 4 workers.  Catches cross-run state leaks
// (global counters, shared pools) and any event-ordering drift in the queue.
#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/harness/experiment.hpp"
#include "src/harness/parallel_sweep.hpp"
#include "src/workload/sources.hpp"

namespace ufab {
namespace {

using harness::Experiment;
using harness::Scheme;

constexpr TimeNs kRun{2'000'000};    // 2 ms of offered load
constexpr TimeNs kDrain{1'000'000};  // +1 ms drain

/// Everything observable a variant produces.  Doubles are compared exactly:
/// the computation is deterministic, so even the bits must match.
struct Snapshot {
  std::vector<double> pair_rates_gbps;
  std::vector<double> fct_us;
  double dissatisfaction_pct = 0.0;
  std::int64_t drops = 0;
  std::uint64_t events = 0;

  bool operator==(const Snapshot&) const = default;
};

Snapshot run_tiny_fig17(Scheme scheme, std::uint64_t seed) {
  Experiment exp(
      scheme,
      [](sim::Simulator& s, const topo::FabricOptions& o) {
        return topo::make_fat_tree(s, 4, 1, o);
      },
      {}, {}, seed);
  auto& fab = exp.fab();
  auto& vms = fab.vms();

  std::vector<VmPairId> pairs;
  Rng pair_rng = fab.rng().fork("pairs");
  const int hosts = static_cast<int>(fab.net().host_count());
  const TenantId tid = vms.add_tenant("T0", Bandwidth::gbps(1.0));
  std::vector<VmId> tvms;
  for (int h = 0; h < hosts; ++h) tvms.push_back(vms.add_vm(tid, HostId{h}));
  for (int h = 0; h < hosts; ++h) {
    int peer = static_cast<int>(pair_rng.below(static_cast<std::uint64_t>(hosts)));
    if (peer == h) peer = (peer + 1) % hosts;
    pairs.push_back(
        VmPairId{tvms[static_cast<std::size_t>(h)], tvms[static_cast<std::size_t>(peer)]});
  }

  workload::PoissonFlowGenerator::Config gcfg;
  gcfg.target_load = 0.5;
  gcfg.stop = kRun;
  workload::PoissonFlowGenerator gen(fab, pairs, workload::EmpiricalSizeDist::websearch(), gcfg,
                                     fab.rng().fork("flows"));
  fab.sim().run_until(kRun + kDrain);

  Snapshot snap;
  for (const VmPairId& p : pairs) {
    snap.pair_rates_gbps.push_back(exp.pair_rate_gbps(p, TimeNs::zero(), kRun));
  }
  snap.fct_us = gen.recorder().fct_us().sorted();
  snap.dissatisfaction_pct = gen.recorder().violation_volume_pct();
  snap.drops = exp.total_drops();
  snap.events = fab.sim().events_processed();
  return snap;
}

TEST(Determinism, RepeatedRunsAreBitIdentical) {
  const Snapshot a = run_tiny_fig17(Scheme::kUfab, 41);
  const Snapshot b = run_tiny_fig17(Scheme::kUfab, 41);
  ASSERT_FALSE(a.fct_us.empty()) << "workload produced no completed flows";
  EXPECT_GT(a.events, 0u);
  EXPECT_EQ(a, b);
}

TEST(Determinism, SerialAndParallelSweepsAgree) {
  struct Variant {
    Scheme scheme;
    std::uint64_t seed;
  };
  const std::vector<Variant> variants = {
      {Scheme::kPwc, 41}, {Scheme::kEsClove, 41}, {Scheme::kUfab, 41}, {Scheme::kUfab, 42}};
  const auto run_all = [&variants](int jobs) {
    return harness::ParallelSweep(jobs).map<Snapshot>(
        static_cast<int>(variants.size()), [&variants](int i) {
          const Variant& v = variants[static_cast<std::size_t>(i)];
          return run_tiny_fig17(v.scheme, v.seed);
        });
  };
  const std::vector<Snapshot> serial = run_all(1);
  const std::vector<Snapshot> parallel = run_all(4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], parallel[i]) << "variant " << i << " diverged under 4 workers";
  }
}

TEST(Determinism, JobsFromEnvHonorsUfabJobs) {
  const char* old = std::getenv("UFAB_JOBS");
  const std::string saved = old != nullptr ? old : "";
  ::setenv("UFAB_JOBS", "4", 1);
  EXPECT_EQ(harness::ParallelSweep::jobs_from_env(), 4);
  ::setenv("UFAB_JOBS", "0", 1);
  EXPECT_GE(harness::ParallelSweep::jobs_from_env(), 1);  // clamped
  if (old != nullptr) {
    ::setenv("UFAB_JOBS", saved.c_str(), 1);
  } else {
    ::unsetenv("UFAB_JOBS");
  }
}

}  // namespace
}  // namespace ufab

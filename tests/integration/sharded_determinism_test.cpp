// The sharded engine's equivalence guarantee, end to end: a fig17-style
// workload run under UFAB_SHARDS=1, =2, and =4 must produce bit-identical
// statistics and event counts, and a 4-shard run must not care whether its
// epochs execute sequentially or on worker threads.  This is the regression
// gate for the conservative-lookahead parallel engine (DESIGN.md §9).
#include <cstdlib>
#include <optional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/harness/experiment.hpp"
#include "src/workload/sources.hpp"

namespace ufab {
namespace {

using harness::Experiment;
using harness::Scheme;

constexpr TimeNs kRun{2'000'000};    // 2 ms of offered load
constexpr TimeNs kDrain{1'000'000};  // +1 ms drain

/// Everything observable a run produces.  Doubles are compared exactly: the
/// schedule is deterministic, so even the bits must match.
struct Snapshot {
  std::vector<double> pair_rates_gbps;
  std::vector<double> fct_us;
  double dissatisfaction_pct = 0.0;
  std::int64_t drops = 0;
  std::uint64_t events = 0;

  bool operator==(const Snapshot&) const = default;
};

/// Scoped setenv: restores the previous value (or unsets) on destruction, so
/// a failing assertion cannot leak shard settings into later tests.
class EnvGuard {
 public:
  EnvGuard(const char* name, const char* value) : name_(name) {
    if (const char* old = std::getenv(name)) saved_ = old;
    if (value != nullptr) {
      ::setenv(name, value, 1);
    } else {
      ::unsetenv(name);
    }
  }
  ~EnvGuard() {
    if (saved_.has_value()) {
      ::setenv(name_, saved_->c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }
  EnvGuard(const EnvGuard&) = delete;
  EnvGuard& operator=(const EnvGuard&) = delete;

 private:
  const char* name_;
  std::optional<std::string> saved_;
};

Snapshot run_tiny_fig17(Scheme scheme, std::uint64_t seed) {
  Experiment exp(
      scheme,
      [](sim::Simulator& s, const topo::FabricOptions& o) {
        return topo::make_fat_tree(s, 4, 1, o);
      },
      {}, {}, seed);
  auto& fab = exp.fab();
  auto& vms = fab.vms();

  std::vector<VmPairId> pairs;
  Rng pair_rng = fab.rng().fork("pairs");
  const int hosts = static_cast<int>(fab.net().host_count());
  const TenantId tid = vms.add_tenant("T0", Bandwidth::gbps(1.0));
  std::vector<VmId> tvms;
  for (int h = 0; h < hosts; ++h) tvms.push_back(vms.add_vm(tid, HostId{h}));
  for (int h = 0; h < hosts; ++h) {
    int peer = static_cast<int>(pair_rng.below(static_cast<std::uint64_t>(hosts)));
    if (peer == h) peer = (peer + 1) % hosts;
    pairs.push_back(
        VmPairId{tvms[static_cast<std::size_t>(h)], tvms[static_cast<std::size_t>(peer)]});
  }

  workload::PoissonFlowGenerator::Config gcfg;
  gcfg.target_load = 0.5;
  gcfg.stop = kRun;
  workload::PoissonFlowGenerator gen(fab, pairs, workload::EmpiricalSizeDist::websearch(), gcfg,
                                     fab.rng().fork("flows"));
  fab.sim().run_until(kRun + kDrain);

  Snapshot snap;
  for (const VmPairId& p : pairs) {
    snap.pair_rates_gbps.push_back(exp.pair_rate_gbps(p, TimeNs::zero(), kRun));
  }
  snap.fct_us = gen.recorder().fct_us().sorted();
  snap.dissatisfaction_pct = gen.recorder().violation_volume_pct();
  snap.drops = exp.total_drops();
  snap.events = fab.sim().events_processed();
  return snap;
}

Snapshot run_with_shards(const char* shards, const char* exec, Scheme scheme,
                         std::uint64_t seed, const char* adaptive = nullptr,
                         const char* windows = nullptr) {
  EnvGuard g1("UFAB_SHARDS", shards);
  EnvGuard g2("UFAB_SHARD_EXEC", exec);
  EnvGuard g3("UFAB_ADAPTIVE_EPOCHS", adaptive);
  EnvGuard g4("UFAB_EPOCH_WINDOWS", windows);
  return run_tiny_fig17(scheme, seed);
}

TEST(ShardedDeterminism, OneTwoFourEightShardsAreBitIdentical) {
  const Snapshot one = run_with_shards("1", nullptr, Scheme::kUfab, 41);
  ASSERT_FALSE(one.fct_us.empty()) << "workload produced no completed flows";
  EXPECT_GT(one.events, 0u);
  const Snapshot two = run_with_shards("2", nullptr, Scheme::kUfab, 41);
  const Snapshot four = run_with_shards("4", nullptr, Scheme::kUfab, 41);
  // k=4 has eight edge subtrees, so 8 shards cuts below the agg tier.
  const Snapshot eight = run_with_shards("8", nullptr, Scheme::kUfab, 41);
  EXPECT_EQ(one, two);
  EXPECT_EQ(one, four);
  EXPECT_EQ(one, eight);
}

TEST(ShardedDeterminism, ThreadedExecutionMatchesSequential) {
  const Snapshot seq = run_with_shards("4", "seq", Scheme::kUfab, 41);
  const Snapshot thr = run_with_shards("4", "threads", Scheme::kUfab, 41);
  ASSERT_FALSE(seq.fct_us.empty());
  EXPECT_EQ(seq, thr);
}

TEST(ShardedDeterminism, AdaptiveEpochsAreScheduleNeutral) {
  // The legacy one-window cadence is the reference; multi-window adaptive
  // epochs (any width, either executor) must reproduce it bit for bit.
  const Snapshot legacy = run_with_shards("4", "seq", Scheme::kUfab, 41, "0");
  ASSERT_FALSE(legacy.fct_us.empty());
  EXPECT_EQ(legacy, run_with_shards("4", "seq", Scheme::kUfab, 41, "1", "4"));
  EXPECT_EQ(legacy, run_with_shards("4", "seq", Scheme::kUfab, 41, "1", "16"));
  EXPECT_EQ(legacy, run_with_shards("4", "threads", Scheme::kUfab, 41, "1", "16"));
  EXPECT_EQ(legacy, run_with_shards("8", "threads", Scheme::kUfab, 41, "1", "16"));
  EXPECT_EQ(legacy, run_with_shards("8", "seq", Scheme::kUfab, 41, "0"));
}

TEST(ShardedDeterminism, FusedLinksMatchLegacySerializerBitForBit) {
  // UFAB_FUSED_LINKS=0 is the escape hatch back to the two-event serializer;
  // with it on (the default) every observable statistic must survive byte
  // for byte — only the event count may change, and it must shrink.
  auto run_fused = [](const char* shards, const char* exec, const char* fused) {
    EnvGuard g("UFAB_FUSED_LINKS", fused);
    return run_with_shards(shards, exec, Scheme::kUfab, 41);
  };
  const Snapshot legacy = run_fused("1", nullptr, "0");
  const Snapshot fused = run_fused("1", nullptr, nullptr);
  ASSERT_FALSE(fused.fct_us.empty());
  EXPECT_EQ(fused.pair_rates_gbps, legacy.pair_rates_gbps);
  EXPECT_EQ(fused.fct_us, legacy.fct_us);
  EXPECT_EQ(fused.dissatisfaction_pct, legacy.dissatisfaction_pct);
  EXPECT_EQ(fused.drops, legacy.drops);
  EXPECT_LT(fused.events, legacy.events);  // the point of fusing

  // The fused schedule is itself partition- and executor-invariant...
  EXPECT_EQ(fused, run_fused("4", "seq", nullptr));
  EXPECT_EQ(fused, run_fused("4", "threads", nullptr));
  // ...and so is the escape hatch.
  EXPECT_EQ(legacy, run_fused("4", "threads", "0"));
}

TEST(ShardedDeterminism, HoldsAcrossSchemesAndSeeds) {
  struct Variant {
    Scheme scheme;
    std::uint64_t seed;
  };
  for (const Variant v : {Variant{Scheme::kPwc, 41}, Variant{Scheme::kEsClove, 41},
                          Variant{Scheme::kUfab, 42}}) {
    const Snapshot one = run_with_shards("1", nullptr, v.scheme, v.seed);
    const Snapshot four = run_with_shards("4", nullptr, v.scheme, v.seed);
    EXPECT_EQ(one, four) << "scheme diverged under 4 shards (seed " << v.seed << ")";
  }
}

}  // namespace
}  // namespace ufab

// EpisodeScheduler: seeded reproducibility, horizon/warmup discipline, and
// dirty-interval coalescing — the properties the soak's determinism and
// clean-window SLO accounting stand on.
#include <gtest/gtest.h>

#include <set>

#include "src/soak/episode.hpp"

namespace ufab::soak {
namespace {

using namespace ufab::time_literals;

EpisodeOptions dense_opts() {
  EpisodeOptions o;
  o.warmup = 500_ms;
  o.mean_gap = 700_ms;
  o.min_cooldown = 300_ms;
  o.mean_duration = 500_ms;
  o.max_duration = 1'500_ms;
  return o;
}

TEST(EpisodeScheduler, SameSeedReproducesScheduleExactly) {
  EpisodeScheduler a(99, dense_opts());
  EpisodeScheduler b(99, dense_opts());
  const auto& ea = a.generate(60_s, /*trunks=*/8, /*switches=*/4, /*hosts=*/8);
  const auto& eb = b.generate(60_s, 8, 4, 8);
  ASSERT_FALSE(ea.empty());
  ASSERT_EQ(ea.size(), eb.size());
  for (std::size_t i = 0; i < ea.size(); ++i) {
    EXPECT_EQ(ea[i].kind, eb[i].kind) << i;
    EXPECT_EQ(ea[i].start, eb[i].start) << i;
    EXPECT_EQ(ea[i].end, eb[i].end) << i;
    EXPECT_DOUBLE_EQ(ea[i].intensity, eb[i].intensity) << i;
    EXPECT_EQ(ea[i].target, eb[i].target) << i;
    EXPECT_EQ(ea[i].aux, eb[i].aux) << i;
  }
}

TEST(EpisodeScheduler, DifferentSeedDiffers) {
  EpisodeScheduler a(1, dense_opts());
  EpisodeScheduler b(2, dense_opts());
  const auto& ea = a.generate(60_s, 8, 4, 8);
  const auto& eb = b.generate(60_s, 8, 4, 8);
  bool differs = ea.size() != eb.size();
  for (std::size_t i = 0; !differs && i < ea.size(); ++i) {
    differs = ea[i].kind != eb[i].kind || ea[i].start != eb[i].start ||
              ea[i].target != eb[i].target;
  }
  EXPECT_TRUE(differs);
}

TEST(EpisodeScheduler, RespectsWarmupHorizonAndOrdering) {
  EpisodeScheduler s(7, dense_opts());
  const auto& eps = s.generate(30_s, 8, 4, 8);
  ASSERT_FALSE(eps.empty());
  for (std::size_t i = 0; i < eps.size(); ++i) {
    EXPECT_GE(eps[i].start, dense_opts().warmup);
    EXPECT_LT(eps[i].start, 30_s);
    EXPECT_LE(eps[i].end, 30_s);       // clipped to the horizon
    EXPECT_LE(eps[i].start, eps[i].end);
    if (i > 0) {
      EXPECT_GE(eps[i].start, eps[i - 1].start);  // sorted
    }
  }
}

TEST(EpisodeScheduler, RotatesThroughEveryKind) {
  EpisodeScheduler s(3, dense_opts());
  const auto& eps = s.generate(120_s, 8, 4, 8);
  std::set<EpisodeKind> seen;
  for (const auto& e : eps) seen.insert(e.kind);
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(kEpisodeKindCount));
}

TEST(EpisodeScheduler, DirtyIntervalsSortedCoalescedAndCovering) {
  EpisodeScheduler s(11, dense_opts());
  const auto& eps = s.generate(60_s, 8, 4, 8);
  const TimeNs allowance = 400_ms;
  const auto dirty = s.dirty_intervals(allowance);
  ASSERT_FALSE(dirty.empty());
  for (std::size_t i = 0; i < dirty.size(); ++i) {
    EXPECT_LT(dirty[i].first, dirty[i].second);
    // Strictly disjoint after coalescing: next starts after this one ends.
    if (i > 0) {
      EXPECT_GT(dirty[i].first, dirty[i - 1].second);
    }
  }
  // Every episode span plus its recovery tail lies inside some interval.
  for (const auto& e : eps) {
    bool covered = false;
    for (const auto& [lo, hi] : dirty) {
      if (lo <= e.start && e.end + allowance <= hi) {
        covered = true;
        break;
      }
    }
    EXPECT_TRUE(covered) << e.describe();
  }
}

TEST(EpisodeScheduler, DescribeNamesEveryKind) {
  EpisodeScheduler s(5, dense_opts());
  for (const auto& e : s.generate(60_s, 8, 4, 8)) {
    EXPECT_FALSE(e.describe().empty());
    EXPECT_NE(to_string(e.kind), nullptr);
  }
}

}  // namespace
}  // namespace ufab::soak

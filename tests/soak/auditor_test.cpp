// InvariantAuditor: conservation checks against a live fabric, externally
// reported post-conditions, and the recording cap.
#include <gtest/gtest.h>

#include "src/harness/fabric.hpp"
#include "src/soak/auditor.hpp"
#include "src/topo/builders.hpp"

namespace ufab::soak {
namespace {

using namespace ufab::time_literals;

harness::Fabric::Builder leaf_spine() {
  return [](sim::Simulator& s) { return topo::make_leaf_spine(s, 2, 2, 2); };
}

TEST(InvariantAuditor, IdleFabricPassesCheckpointAndFinalAudit) {
  harness::Fabric fab(leaf_spine());
  InvariantAuditor aud(fab);
  aud.checkpoint();
  aud.final_audit();
  EXPECT_EQ(aud.violation_count(), 0u);
  EXPECT_EQ(aud.checkpoints(), 1u);
}

TEST(InvariantAuditor, ReportRecordsExternalPostConditions) {
  harness::Fabric fab(leaf_spine());
  InvariantAuditor aud(fab);
  aud.report("episode-recovery", "edge 3 not re-registered within 128 RTTs");
  ASSERT_EQ(aud.violation_count(), 1u);
  ASSERT_EQ(aud.violations().size(), 1u);
  EXPECT_EQ(aud.violations()[0].invariant, "episode-recovery");
}

TEST(InvariantAuditor, RecordingIsCappedButCountIsNot) {
  harness::Fabric fab(leaf_spine());
  AuditorLimits limits;
  limits.max_recorded = 2;
  InvariantAuditor aud(fab, limits);
  for (int i = 0; i < 5; ++i) aud.report("episode-recovery", "x");
  EXPECT_EQ(aud.violation_count(), 5u);
  EXPECT_EQ(aud.violations().size(), 2u);
}

TEST(InvariantAuditor, PendingEventBoundTripsLoudly) {
  harness::Fabric fab(leaf_spine());
  // A recurring-timer-free fabric still has schedulable work; park a few
  // events and set the bound to zero so the checkpoint must trip.
  for (int i = 0; i < 4; ++i) fab.sim().at(TimeNs{1'000 * (i + 1)}, [] {});
  AuditorLimits limits;
  limits.max_pending_events = 0;
  InvariantAuditor aud(fab, limits);
  aud.checkpoint();
  ASSERT_GE(aud.violation_count(), 1u);
  EXPECT_EQ(aud.violations()[0].invariant, "event-bound");
  EXPECT_GE(aud.peak_pending_events(), 4u);
}

TEST(InvariantAuditor, PeaksTrackHighWaterMarks) {
  harness::Fabric fab(leaf_spine());
  InvariantAuditor aud(fab);
  fab.sim().at(TimeNs{1'000}, [] {});
  aud.checkpoint();
  const std::size_t peak = aud.peak_pending_events();
  EXPECT_GE(peak, 1u);
  fab.sim().run_until(TimeNs{2'000});
  aud.checkpoint();
  EXPECT_EQ(aud.peak_pending_events(), peak);  // peak does not decay
  EXPECT_EQ(aud.violation_count(), 0u);
}

}  // namespace
}  // namespace ufab::soak

// SoakRunner integration: the smoke-shaped soak must pass its own gates,
// reproduce its SLO CSV byte-for-byte from the seed, and hold the
// memory-bound evidence flat as the horizon grows — including one full
// simulated hour on the tiny fabric.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "src/faults/fault_plane.hpp"
#include "src/harness/fabric.hpp"
#include "src/soak/runner.hpp"
#include "src/topo/builders.hpp"

namespace ufab::soak {
namespace {

using namespace ufab::time_literals;

SoakOptions smoke_opts(std::uint64_t seed) {
  SoakOptions o;
  o.seed = seed;
  o.apply_smoke();
  o.observability = false;  // keep the test lean; the bench exercises obs
  return o;
}

std::string slurp(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  std::ostringstream os;
  os << f.rdbuf();
  return os.str();
}

TEST(SoakRunner, SmokeRunPassesItsOwnGates) {
  SoakRunner runner(smoke_opts(5));
  const SoakReport r = runner.run();
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.invariant_violations, 0u);
  EXPECT_TRUE(r.slo_breaches.empty());
  EXPECT_GT(r.windows, 0);
  EXPECT_GT(r.episodes_total, 0);
  EXPECT_GT(r.fct_samples, 0u);
  EXPECT_GT(r.events, 0u);
  // Streaming stats only on the hot path: the exact tracker must stay empty.
  EXPECT_EQ(r.rtt_exact_samples, 0u);
  EXPECT_GT(r.rtt_stream_samples, 0u);
}

TEST(SoakRunner, SloCsvIsByteIdenticalForFixedSeed) {
  const std::string p1 = ::testing::TempDir() + "/soak_csv_a.csv";
  const std::string p2 = ::testing::TempDir() + "/soak_csv_b.csv";
  const std::string p3 = ::testing::TempDir() + "/soak_csv_c.csv";
  {
    SoakOptions o = smoke_opts(21);
    o.csv_path = p1;
    SoakRunner(o).run();
  }
  {
    SoakOptions o = smoke_opts(21);
    o.csv_path = p2;
    SoakRunner(o).run();
  }
  {
    SoakOptions o = smoke_opts(22);
    o.csv_path = p3;
    SoakRunner(o).run();
  }
  const std::string a = slurp(p1), b = slurp(p2), c = slurp(p3);
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b) << "same seed must reproduce the CSV byte-for-byte";
  EXPECT_NE(a, c) << "a different seed must change the run";
  std::remove(p1.c_str());
  std::remove(p2.c_str());
  std::remove(p3.c_str());
}

TEST(SoakRunner, MemoryEvidenceStaysFlatAsHorizonGrows) {
  SoakOptions shorter = smoke_opts(9);
  SoakOptions longer = smoke_opts(9);
  longer.duration = shorter.duration * 3;
  const SoakReport rs = SoakRunner(shorter).run();
  const SoakReport rl = SoakRunner(longer).run();
  ASSERT_GT(rl.windows, rs.windows);
  // Meters sit at their retention cap regardless of horizon.
  EXPECT_LE(rs.meter_buckets_retained_max, shorter.meter_retain_buckets);
  EXPECT_EQ(rl.meter_buckets_retained_max, rs.meter_buckets_retained_max);
  // No exact (store-everything) RTT samples in either run.
  EXPECT_EQ(rs.rtt_exact_samples, 0u);
  EXPECT_EQ(rl.rtt_exact_samples, 0u);
  // In-flight and pending peaks are workload-shaped, not horizon-shaped:
  // allow slack for episode variety but forbid linear growth.
  EXPECT_LT(rl.peak_packets_in_flight, 4 * rs.peak_packets_in_flight + 64);
  EXPECT_LT(rl.peak_pending_events, 4 * rs.peak_pending_events + 64);
}

TEST(SoakRunner, OneSimulatedHourCompletesWithBoundedMemory) {
  // The acceptance bar: a full simulated hour on a shrunken fabric (one host
  // per leaf, low rates, sparse episodes, coarse windows) finishes with zero
  // invariant violations and flat memory evidence, in seconds of wall clock.
  SoakOptions o;
  o.seed = 13;
  o.duration = 3'600_s;
  o.window = 10_s;
  o.hosts_per_leaf = 1;
  o.host_bw = Bandwidth::mbps(8);
  o.fabric_bw = Bandwidth::mbps(16);
  o.flows_per_sec = 4.0;
  o.flow_bytes_mean = 12'000;
  o.episodes.mean_gap = 30_s;
  o.episodes.min_cooldown = 5_s;
  o.observability = false;
  o.csv_path.clear();
  const SoakReport r = SoakRunner(o).run();
  EXPECT_GE(r.sim_seconds, 3'600.0);
  EXPECT_EQ(r.invariant_violations, 0u);
  EXPECT_GT(r.windows, 300);
  EXPECT_GT(r.episodes_total, 10);
  EXPECT_LE(r.meter_buckets_retained_max, o.meter_retain_buckets);
  EXPECT_EQ(r.rtt_exact_samples, 0u);
  EXPECT_LT(r.peak_packets_in_flight, o.audit.max_packets_in_flight);
  EXPECT_LT(r.peak_pending_events, o.audit.max_pending_events);
}

TEST(SoakRunner, ForcedSequentialGaugeNamesTheReason) {
  // Satellite: the fault plane pinning a sharded engine to sequential epochs
  // must be visible in metrics, labeled with the reason, not silent.
  harness::Fabric fab([](sim::Simulator& s) { return topo::make_leaf_spine(s, 2, 2, 2); });
  fab.configure_sharding(2);
  fab.enable_observability();
  faults::FaultPlane plane(fab, 1);
  const auto snap = fab.metrics_snapshot();
  const auto* row = snap.find("sim.forced_sequential", {{"reason", "fault-plane"}});
  ASSERT_NE(row, nullptr);
  EXPECT_DOUBLE_EQ(row->value, 1.0);
  EXPECT_FALSE(fab.sim().sequential_reasons().empty());
}

}  // namespace
}  // namespace ufab::soak

// SloTracker: clean-window-only enforcement, O(1) cumulative summaries, and
// the pass/fail gates the soak exits on.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/soak/slo.hpp"

namespace ufab::soak {
namespace {

using namespace ufab::time_literals;

TEST(SloTracker, CleanWindowsAccrueViolationSecondsDirtyDoNot) {
  SloTracker t(1_s, /*guarantee_bps=*/1e6, /*wc_reference_bps=*/1e7, "");
  // Clean window with two pairs under guarantee: 2 pair-seconds accrue.
  t.begin_window(TimeNs::zero(), /*clean=*/true, 0);
  t.close_window(/*delivered_bps=*/5e6, /*pairs_below=*/2, 0, 0, 0);
  EXPECT_DOUBLE_EQ(t.violation_seconds(), 2.0);
  // Dirty window: shortfalls are the fault's fault, nothing accrues.
  t.begin_window(1_s, /*clean=*/false, 1);
  t.close_window(0.0, /*pairs_below=*/4, 10, 10, 3);
  EXPECT_DOUBLE_EQ(t.violation_seconds(), 2.0);
  EXPECT_EQ(t.windows(), 2);
  EXPECT_EQ(t.clean_windows(), 1);
}

TEST(SloTracker, CleanFctStreamSeparatesFromAll) {
  SloTracker t(1_s, 1e6, 1e7, "");
  t.begin_window(TimeNs::zero(), true, 0);
  t.record_fct_us(100.0);
  t.record_fct_us(200.0);
  t.close_window(1e7, 0, 0, 0, 0);
  t.begin_window(1_s, false, 2);
  t.record_fct_us(9'000.0);
  t.close_window(1e6, 0, 0, 0, 0);
  EXPECT_EQ(t.all_fct_us().count(), 3u);
  EXPECT_EQ(t.clean_fct_us().count(), 2u);
  EXPECT_DOUBLE_EQ(t.clean_fct_us().max(), 200.0);
}

TEST(SloTracker, WorkConservationGapTracksCleanWindows) {
  SloTracker t(1_s, 1e6, 1e7, "");
  t.begin_window(TimeNs::zero(), true, 0);
  t.close_window(/*delivered_bps=*/5e6, 0, 0, 0, 0);  // gap 0.5
  t.begin_window(1_s, true, 0);
  t.close_window(1e7, 0, 0, 0, 0);  // gap 0.0
  EXPECT_DOUBLE_EQ(t.clean_wc_gap().mean(), 0.25);
  // Over-delivery clamps at zero rather than going negative.
  t.begin_window(2_s, true, 0);
  t.close_window(2e7, 0, 0, 0, 0);
  EXPECT_DOUBLE_EQ(t.clean_wc_gap().min(), 0.0);
}

TEST(SloTracker, CheckPassesCleanRunAndFlagsBreaches) {
  SloTracker good(1_s, 1e6, 1e7, "");
  good.begin_window(TimeNs::zero(), true, 0);
  good.record_fct_us(500.0);
  good.close_window(1e7, 0, 0, 0, 0);
  std::vector<std::string> out;
  EXPECT_TRUE(good.check(SloThresholds{}, &out));
  EXPECT_TRUE(out.empty());

  SloTracker bad(1_s, 1e6, 1e7, "");
  bad.begin_window(TimeNs::zero(), true, 0);
  bad.record_fct_us(2'000'000.0);  // 2 s FCT >> 400 ms gate
  bad.close_window(/*delivered_bps=*/1e6, /*pairs_below=*/3, 0, 0, 0);
  SloThresholds tight;
  tight.violation_seconds_per_hour = 0.5;
  EXPECT_FALSE(bad.check(tight, &out));
  EXPECT_FALSE(out.empty());
}

TEST(SloTracker, RecoveryGateUsesP99) {
  SloTracker t(1_s, 1e6, 1e7, "");
  t.begin_window(TimeNs::zero(), true, 0);
  for (int i = 0; i < 50; ++i) t.record_recovery_rtts(4.0);
  t.close_window(1e7, 0, 0, 0, 0);
  std::vector<std::string> out;
  SloThresholds gate;
  gate.recovery_p99_rtts = 8.0;
  EXPECT_TRUE(t.check(gate, &out)) << (out.empty() ? "" : out.front());
  t.begin_window(1_s, true, 0);
  for (int i = 0; i < 200; ++i) t.record_recovery_rtts(100.0);
  t.close_window(1e7, 0, 0, 0, 0);
  EXPECT_FALSE(t.check(gate, &out));
}

TEST(SloTracker, CsvHasHeaderAndOneRowPerWindow) {
  const std::string path = ::testing::TempDir() + "/slo_tracker_test.csv";
  {
    SloTracker t(500_ms, 1e6, 1e7, path);
    for (int w = 0; w < 3; ++w) {
      t.begin_window(TimeNs{w * 500'000'000LL}, w % 2 == 0, w % 2);
      t.record_fct_us(100.0 * (w + 1));
      t.close_window(1e7, 0, w, 0, 0);
    }
    t.finish();
  }
  std::ifstream f(path);
  ASSERT_TRUE(f.good());
  std::string line;
  std::vector<std::string> lines;
  while (std::getline(f, line)) lines.push_back(line);
  ASSERT_EQ(lines.size(), 4u);  // header + 3 windows
  EXPECT_NE(lines[0].find("window,start_s,clean"), std::string::npos);
  EXPECT_NE(lines[0].find("fct_p99_us"), std::string::npos);
  EXPECT_EQ(lines[1].substr(0, 2), "0,");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace ufab::soak

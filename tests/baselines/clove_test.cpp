// Unit tests for the Clove flowlet path selector.
#include <gtest/gtest.h>

#include <map>

#include "src/baselines/clove.hpp"

namespace ufab::baselines {
namespace {

using namespace ufab::time_literals;

TEST(Clove, SticksWithinFlowlet) {
  CloveConfig cfg;
  cfg.flowlet_gap = 200_us;
  CloveSelector sel(cfg, 4, Rng{3});
  TimeNs now = 1_ms;
  const std::int32_t first = sel.select(now);
  // Back-to-back packets (1 us apart) never switch paths.
  for (int i = 0; i < 100; ++i) {
    now += 1_us;
    EXPECT_EQ(sel.select(now), first);
  }
  EXPECT_EQ(sel.path_switches(), 0);
}

TEST(Clove, GapOpensFlowletBoundary) {
  CloveConfig cfg;
  cfg.flowlet_gap = 36_us;
  CloveSelector sel(cfg, 8, Rng{5});
  TimeNs now = 1_ms;
  std::map<std::int32_t, int> seen;
  for (int i = 0; i < 300; ++i) {
    now += 50_us;  // every packet is its own flowlet
    ++seen[sel.select(now)];
  }
  EXPECT_GT(seen.size(), 4u);  // explores multiple paths
}

TEST(Clove, EcnShiftsTrafficAway) {
  CloveConfig cfg;
  cfg.flowlet_gap = 10_us;
  CloveSelector sel(cfg, 2, Rng{7});
  TimeNs now = 1_ms;
  // Path 0 always marked, path 1 always clean.
  std::map<std::int32_t, int> seen;
  for (int i = 0; i < 2000; ++i) {
    now += 20_us;
    const std::int32_t p = sel.select(now);
    ++seen[p];
    sel.on_ack(p, /*ecn_marked=*/p == 0);
  }
  EXPECT_GT(seen[1], seen[0] * 3);
}

TEST(Clove, WeightsRecoverAfterCongestionClears) {
  CloveConfig cfg;
  CloveSelector sel(cfg, 2, Rng{9});
  for (int i = 0; i < 50; ++i) sel.on_ack(0, true);
  const double beaten = sel.weights()[0];
  EXPECT_LE(beaten, cfg.min_weight + 1e-9);
  for (int i = 0; i < 200; ++i) sel.on_ack(0, false);
  EXPECT_GT(sel.weights()[0], 0.9);
}

TEST(Clove, IgnoresOutOfRangeFeedback) {
  CloveSelector sel(CloveConfig{}, 2, Rng{1});
  sel.on_ack(-1, true);
  sel.on_ack(99, true);  // must not crash or corrupt
  EXPECT_DOUBLE_EQ(sel.weights()[0], 1.0);
  EXPECT_DOUBLE_EQ(sel.weights()[1], 1.0);
}

}  // namespace
}  // namespace ufab::baselines

// Unit tests for Swift/WCC congestion control.
#include <gtest/gtest.h>

#include "src/baselines/swift.hpp"

namespace ufab::baselines {
namespace {

using namespace ufab::time_literals;

SwiftConfig cfg() {
  SwiftConfig c;
  c.target_slack = 20_us;
  c.initial_cwnd_mss = 1.0;  // growth tests start from the minimum window
  return c;
}

TEST(Swift, GrowsBelowTargetDelay) {
  SwiftCc cc(cfg(), 24_us, 1.0);
  const double w0 = cc.cwnd_bytes();
  TimeNs now = 0_us;
  for (int i = 0; i < 50; ++i) {
    now += 24_us;
    cc.on_ack(24_us, 1500, now);
  }
  EXPECT_GT(cc.cwnd_bytes(), w0 * 2);
}

TEST(Swift, ShrinksAboveTargetDelay) {
  SwiftCc cc(cfg(), 24_us, 1.0);
  TimeNs now = 0_us;
  for (int i = 0; i < 100; ++i) {
    now += 24_us;
    cc.on_ack(24_us, 1500, now);
  }
  const double peak = cc.cwnd_bytes();
  for (int i = 0; i < 20; ++i) {
    now += 100_us;
    cc.on_ack(200_us, 1500, now);  // heavy queueing
  }
  EXPECT_LT(cc.cwnd_bytes(), peak * 0.5);
}

TEST(Swift, DecreaseAtMostOncePerRtt) {
  SwiftCc cc(cfg(), 24_us, 1.0);
  TimeNs now = 1_us;
  for (int i = 0; i < 200; ++i) {
    now += 24_us;
    cc.on_ack(24_us, 1500, now);
  }
  const double before = cc.cwnd_bytes();
  // Burst of bad samples within one RTT: only one cut allowed.
  cc.on_ack(300_us, 1500, now + 1_us);
  const double after_first = cc.cwnd_bytes();
  cc.on_ack(300_us, 1500, now + 2_us);
  cc.on_ack(300_us, 1500, now + 3_us);
  EXPECT_LT(after_first, before);
  EXPECT_DOUBLE_EQ(cc.cwnd_bytes(), after_first);
}

TEST(Swift, MaxDecreaseFactorRespected) {
  SwiftCc cc(cfg(), 24_us, 1.0);
  TimeNs now = 1_us;
  for (int i = 0; i < 200; ++i) {
    now += 24_us;
    cc.on_ack(24_us, 1500, now);
  }
  const double before = cc.cwnd_bytes();
  cc.on_ack(10'000_us, 1500, now + 25_us);  // absurd delay
  EXPECT_GE(cc.cwnd_bytes(), before * 0.5 - 1.0);
}

TEST(Swift, WindowNeverBelowMinimum) {
  SwiftCc cc(cfg(), 24_us, 1.0);
  TimeNs now = 0_us;
  for (int i = 0; i < 500; ++i) {
    now += 30_us;
    cc.on_ack(2000_us, 1500, now);
  }
  EXPECT_GE(cc.cwnd_bytes(), 1500.0);
}

TEST(Swift, WeightScalesGrowthRate) {
  SwiftCc heavy(cfg(), 24_us, 4.0);
  SwiftCc light(cfg(), 24_us, 1.0);
  TimeNs now = 0_us;
  for (int i = 0; i < 50; ++i) {
    now += 24_us;
    heavy.on_ack(24_us, 1500, now);
    light.on_ack(24_us, 1500, now);
  }
  EXPECT_GT(heavy.cwnd_bytes(), light.cwnd_bytes() * 1.5);
}

}  // namespace
}  // namespace ufab::baselines

// Integration tests for the baseline composites (PWC, ES+Clove).
//
// These pin down the *qualitative* behaviours the paper's evaluation relies
// on: the baselines work, but converge slowly, and ES+Clove keeps guarantees
// at the cost of fabric queueing.
#include <gtest/gtest.h>

#include "src/harness/fabric.hpp"
#include "src/harness/schemes.hpp"
#include "src/stats/timeseries.hpp"
#include "src/topo/builders.hpp"

namespace ufab::harness {
namespace {

using namespace ufab::time_literals;
using namespace ufab::unit_literals;

struct World {
  Fabric fab;
  World(Scheme scheme, const Fabric::Builder& builder, std::uint64_t seed = 11)
      : fab(builder, seed) {
    install_scheme(fab, scheme);
    fab.install_pair_metering(1_ms);
  }
  double rate_gbps(VmPairId pair, TimeNs from, TimeNs to) {
    RateMeter* m = fab.pair_meter(pair);
    if (m == nullptr) return 0.0;
    double bytes = 0.0;
    for (const auto& s : m->series(to)) {
      if (s.at >= from && s.at < to) bytes += s.rate.bytes_per_sec() * m->bucket_width().sec();
    }
    return bytes * 8.0 / 1e9 / (to - from).sec();
  }
};

Fabric::Builder dumbbell_for(Scheme s) {
  return [s](sim::Simulator& sim) {
    return topo::make_dumbbell(sim, 2, 2, fabric_options_for(s, {}));
  };
}

TEST(PwcIntegration, SinglePairFillsTrunk) {
  World w(Scheme::kPwc, dumbbell_for(Scheme::kPwc));
  auto& vms = w.fab.vms();
  const TenantId t = vms.add_tenant("A", 1_Gbps);
  const VmPairId pair{vms.add_vm(t, HostId{0}), vms.add_vm(t, HostId{2})};
  w.fab.keep_backlogged(pair, 0_ms, 100_ms);
  w.fab.sim().run_until(100_ms);
  // Swift fills the pipe eventually (AIMD: takes tens of ms).
  EXPECT_GT(w.rate_gbps(pair, 60_ms, 100_ms), 7.0);
}

TEST(PwcIntegration, ConvergenceOnJoinIsSlowerThanUfab) {
  // The central quantitative claim of §2.2: when a new flow joins a busy
  // link, WCC needs many milliseconds to converge to the fair share because
  // the incumbent only yields via delay-triggered AIMD; uFAB's informative
  // core re-divides the link within a couple of RTTs.
  // Weighted setup (4:1): the joining flow must *settle at* its weighted
  // share, not merely touch it — AIMD overshoots and oscillates.
  const auto time_to_settle = [](Scheme s) {
    World w(s, dumbbell_for(s));
    auto& vms = w.fab.vms();
    const TenantId ta = vms.add_tenant("A", 4_Gbps);
    const TenantId tb = vms.add_tenant("B", 1_Gbps);
    const VmPairId pa{vms.add_vm(ta, HostId{0}), vms.add_vm(ta, HostId{2})};
    const VmPairId pb{vms.add_vm(tb, HostId{1}), vms.add_vm(tb, HostId{3})};
    w.fab.keep_backlogged(pa, 0_ms, 100_ms);
    w.fab.keep_backlogged(pb, 20_ms, 100_ms);  // B joins a saturated trunk
    w.fab.sim().run_until(100_ms);
    RateMeter* m = w.fab.pair_meter(pb);
    if (m == nullptr) return TimeNs::max();
    // B's weighted share is 9.5/5 = 1.9 Gbps; require +-30% held for 5 ms.
    TimeSeries ts;
    for (const auto& sm : m->series(100_ms)) ts.add(sm.at, sm.rate.gbit_per_sec());
    const TimeNs settle = ts.settle_time(20_ms, 1.9 * 0.7, 1.9 * 1.3, 5_ms);
    return settle == TimeNs::max() ? settle : settle - 20_ms;
  };
  const TimeNs ufab_t = time_to_settle(Scheme::kUfab);
  const TimeNs pwc_t = time_to_settle(Scheme::kPwc);
  EXPECT_LE(ufab_t, 2_ms);
  EXPECT_TRUE(pwc_t == TimeNs::max() || pwc_t > ufab_t * 2)
      << "pwc=" << pwc_t.ms() << "ms ufab=" << ufab_t.ms() << "ms";
}

TEST(PwcIntegration, ReceiverCreditsProtectDownlinkFairness) {
  // 4-to-1 on one downlink, different tenant weights 3:1:1:1.
  World w(Scheme::kPwc, [](sim::Simulator& s) {
    return topo::make_dumbbell(s, 4, 1, fabric_options_for(Scheme::kPwc, {}));
  });
  auto& vms = w.fab.vms();
  std::vector<VmPairId> pairs;
  for (int i = 0; i < 4; ++i) {
    const TenantId t = vms.add_tenant("T" + std::to_string(i), i == 0 ? 3_Gbps : 1_Gbps);
    pairs.push_back(VmPairId{vms.add_vm(t, HostId{i}), vms.add_vm(t, HostId{4})});
    w.fab.keep_backlogged(pairs.back(), 0_ms, 120_ms);
  }
  w.fab.sim().run_until(120_ms);
  const double r0 = w.rate_gbps(pairs[0], 60_ms, 120_ms);
  const double r1 = w.rate_gbps(pairs[1], 60_ms, 120_ms);
  EXPECT_GT(r0, r1);            // weighted allocation at the receiver
  EXPECT_GT(r0 + 3 * r1, 6.0);  // and the downlink is well used
}

TEST(EsIntegration, GuaranteeHeldUnderContention) {
  World w(Scheme::kEsClove, dumbbell_for(Scheme::kEsClove));
  auto& vms = w.fab.vms();
  const TenantId ta = vms.add_tenant("A", 6_Gbps);
  const TenantId tb = vms.add_tenant("B", 2_Gbps);
  const VmPairId pa{vms.add_vm(ta, HostId{0}), vms.add_vm(ta, HostId{2})};
  const VmPairId pb{vms.add_vm(tb, HostId{1}), vms.add_vm(tb, HostId{3})};
  w.fab.keep_backlogged(pa, 0_ms, 120_ms);
  w.fab.keep_backlogged(pb, 0_ms, 120_ms);
  w.fab.sim().run_until(120_ms);
  // ES's rate floor keeps both guarantees even while competing.
  EXPECT_GT(w.rate_gbps(pa, 60_ms, 120_ms), 6.0 * 0.8);
  EXPECT_GT(w.rate_gbps(pb, 60_ms, 120_ms), 2.0 * 0.8);
}

TEST(EsIntegration, RateFloorCausesQueueingUfabAvoids) {
  // Oversubscribe a trunk with guarantees only (8+8 > 10 Gbps): ES keeps
  // pushing at the guarantee floor and queues the fabric; uFAB degrades
  // proportionally and keeps the queue near zero (Fig. 11e's contrast).
  const auto max_trunk_queue = [](Scheme s) {
    World w(s, [s](sim::Simulator& sim2) {
      return topo::make_dumbbell(sim2, 2, 2, fabric_options_for(s, {}));
    });
    auto& vms = w.fab.vms();
    const TenantId ta = vms.add_tenant("A", 8_Gbps);
    const TenantId tb = vms.add_tenant("B", 8_Gbps);
    const VmPairId pa{vms.add_vm(ta, HostId{0}), vms.add_vm(ta, HostId{2})};
    const VmPairId pb{vms.add_vm(tb, HostId{1}), vms.add_vm(tb, HostId{3})};
    w.fab.keep_backlogged(pa, 0_ms, 60_ms);
    w.fab.keep_backlogged(pb, 0_ms, 60_ms);
    w.fab.sim().run_until(60_ms);
    std::int64_t worst = 0;
    for (const auto* l : w.fab.net().links()) {
      worst = std::max(worst, l->max_queue_bytes());
    }
    return worst;
  };
  const std::int64_t es_queue = max_trunk_queue(Scheme::kEsClove);
  const std::int64_t ufab_queue = max_trunk_queue(Scheme::kUfab);
  EXPECT_GT(es_queue, 2 * ufab_queue);
  EXPECT_LT(ufab_queue, 80'000);
}

TEST(SchemeFactory, NamesAndEcnWiring) {
  EXPECT_STREQ(to_string(Scheme::kUfab), "uFAB");
  EXPECT_STREQ(to_string(Scheme::kPwc), "PicNIC'+WCC+Clove");
  const auto base = topo::FabricOptions{};
  EXPECT_LT(fabric_options_for(Scheme::kUfab, base).ecn_threshold_bytes, 0);
  EXPECT_GT(fabric_options_for(Scheme::kPwc, base).ecn_threshold_bytes, 0);
  EXPECT_GT(fabric_options_for(Scheme::kEsClove, base).ecn_threshold_bytes, 0);
}

}  // namespace
}  // namespace ufab::harness

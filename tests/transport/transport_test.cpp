// Unit tests for the shared transport framework: packetization, ACK
// accounting, retransmission, reassembly, loopback, pacing and scheduling.
#include <gtest/gtest.h>

#include "src/harness/fabric.hpp"
#include "src/topo/builders.hpp"
#include "src/transport/transport.hpp"

namespace ufab::transport {
namespace {

using namespace ufab::time_literals;
using namespace ufab::unit_literals;
using harness::Fabric;

/// Minimal concrete transport: fixed window, no pacing.
class WindowStack : public TransportStack {
 public:
  using TransportStack::TransportStack;
  double window_bytes = 30'000.0;

 protected:
  bool can_send(const Connection& conn) const override {
    return static_cast<double>(conn.inflight_bytes) < window_bytes;
  }
};

/// Rate-paced transport for pacing tests.
class PacedStack : public TransportStack {
 public:
  using TransportStack::TransportStack;
  Bandwidth rate = Bandwidth::gbps(1);

 protected:
  TimeNs earliest_send(const Connection& conn) const override {
    auto it = next_at_.find(conn.pair.key());
    return it == next_at_.end() ? TimeNs::zero() : it->second;
  }
  void on_data_sent(Connection& conn, const sim::Packet& pkt) override {
    const TimeNs base = std::max(earliest_send(conn), simulator().now());
    next_at_[conn.pair.key()] = base + rate.tx_time(pkt.size_bytes);
  }

 private:
  std::unordered_map<std::uint64_t, TimeNs> next_at_;
};

struct World {
  Fabric fab;
  explicit World(std::uint64_t seed = 3)
      : fab([](sim::Simulator& s) { return topo::make_dumbbell(s, 2, 2); }, seed) {
    for (std::size_t h = 0; h < fab.net().host_count(); ++h) {
      const HostId host{static_cast<std::int32_t>(h)};
      fab.adopt_stack(host, std::make_unique<WindowStack>(fab.net(), fab.vms(), host,
                                                          TransportOptions{},
                                                          fab.rng().fork(h)));
    }
  }
  VmPairId make_pair(Bandwidth g = Bandwidth::gbps(1), HostId a = HostId{0},
                     HostId b = HostId{2}) {
    const TenantId t = fab.vms().add_tenant("t" + std::to_string(fab.vms().tenant_count()), g);
    return VmPairId{fab.vms().add_vm(t, a), fab.vms().add_vm(t, b)};
  }
};

TEST(Transport, DeliversAMessageIntact) {
  World w;
  const VmPairId pair = w.make_pair();
  transport::Message delivered;
  TimeNs at;
  w.fab.add_delivery_listener([&](const Message& m, TimeNs t) {
    delivered = m;
    at = t;
  });
  const std::uint64_t id = w.fab.send(pair, 100'000, /*user_tag=*/55);
  w.fab.sim().run_until(10_ms);
  EXPECT_EQ(delivered.id, id);
  EXPECT_EQ(delivered.size_bytes, 100'000);
  EXPECT_EQ(delivered.user_tag, 55u);
  EXPECT_GT(at.ns(), 0);
}

TEST(Transport, SenderCompletionFiresWhenFullyAcked) {
  World w;
  const VmPairId pair = w.make_pair();
  auto& stack = w.fab.stack_at(HostId{0});
  bool sender_done = false;
  stack.set_sent_callback([&](const Message&, TimeNs) { sender_done = true; });
  w.fab.send(pair, 50'000);
  w.fab.sim().run_until(10_ms);
  EXPECT_TRUE(sender_done);
  Connection* conn = stack.find_connection(pair);
  ASSERT_NE(conn, nullptr);
  EXPECT_EQ(conn->inflight_bytes, 0);
  EXPECT_TRUE(conn->outstanding.empty());
  EXPECT_TRUE(conn->pending_msgs.empty());
}

TEST(Transport, MessagesAreDeliveredInOrderPerPair) {
  World w;
  const VmPairId pair = w.make_pair();
  std::vector<std::uint64_t> order;
  w.fab.add_delivery_listener([&](const Message& m, TimeNs) { order.push_back(m.user_tag); });
  for (std::uint64_t i = 1; i <= 5; ++i) w.fab.send(pair, 20'000, i);
  w.fab.sim().run_until(20_ms);
  EXPECT_EQ(order, (std::vector<std::uint64_t>{1, 2, 3, 4, 5}));
}

TEST(Transport, RetransmissionRecoversFromLoss) {
  World w;
  const VmPairId pair = w.make_pair();
  int delivered = 0;
  w.fab.add_delivery_listener([&](const Message&, TimeNs) { ++delivered; });
  // Kill the trunk briefly so in-flight packets vanish.
  sim::Link* trunk = nullptr;
  for (sim::Link* l : w.fab.net().links()) {
    if (l->name() == "ToR-L->ToR-R") trunk = l;
  }
  ASSERT_NE(trunk, nullptr);
  w.fab.send(pair, 200'000);
  w.fab.sim().at(40_us, [&] { trunk->set_down(true); });
  w.fab.sim().at(200_us, [&] { trunk->set_down(false); });
  w.fab.sim().run_until(30_ms);
  EXPECT_EQ(delivered, 1);
  EXPECT_GT(trunk->drops(), 0);
  const auto& stack = w.fab.stack_at(HostId{0});
  EXPECT_GT(stack.retransmits(), 0);
}

TEST(Transport, DuplicateDataDoesNotDoubleDeliver) {
  // A late ACK racing a timeout causes a retransmit of received data; the
  // receiver's chunk bitmap must ignore the duplicate.
  World w;
  const VmPairId pair = w.make_pair();
  int delivered = 0;
  w.fab.add_delivery_listener([&](const Message&, TimeNs) { ++delivered; });
  // Drop only ACKs for a while by bringing the reverse trunk down.
  sim::Link* rev = nullptr;
  for (sim::Link* l : w.fab.net().links()) {
    if (l->name() == "ToR-R->ToR-L") rev = l;
  }
  ASSERT_NE(rev, nullptr);
  w.fab.send(pair, 100'000);
  w.fab.sim().at(30_us, [&] { rev->set_down(true); });
  w.fab.sim().at(600_us, [&] { rev->set_down(false); });
  w.fab.sim().run_until(40_ms);
  EXPECT_EQ(delivered, 1);
}

TEST(Transport, LoopbackDeliveryForSameHostPairs) {
  World w;
  // Both VMs on host 0.
  const TenantId t = w.fab.vms().add_tenant("local", 1_Gbps);
  const VmPairId pair{w.fab.vms().add_vm(t, HostId{0}), w.fab.vms().add_vm(t, HostId{0})};
  int delivered = 0;
  bool sent = false;
  w.fab.add_delivery_listener([&](const Message&, TimeNs) { ++delivered; });
  w.fab.stack_at(HostId{0}).set_sent_callback([&](const Message&, TimeNs) { sent = true; });
  w.fab.send(pair, 1'000'000);
  w.fab.sim().run_until(1_ms);
  EXPECT_EQ(delivered, 1);
  EXPECT_TRUE(sent);
  // Nothing touched the fabric.
  for (const auto* l : w.fab.net().links()) EXPECT_EQ(l->tx_bytes_cum(), 0) << l->name();
}

TEST(Transport, WindowLimitsInflight) {
  World w;
  const VmPairId pair = w.make_pair();
  auto& stack = static_cast<WindowStack&>(w.fab.stack_at(HostId{0}));
  stack.window_bytes = 4'500.0;  // three packets
  w.fab.send(pair, 1'000'000);
  w.fab.sim().run_until(100_us);
  Connection* conn = stack.find_connection(pair);
  ASSERT_NE(conn, nullptr);
  EXPECT_LE(conn->inflight_bytes, 4'500 + 1'500);
  // Throughput is window-bound: w / RTT, far below line rate.
  w.fab.sim().run_until(20_ms);
  const double rate_gbps =
      static_cast<double>(conn->bytes_sent_total) * 8.0 / 20e6 / 1000.0;
  EXPECT_LT(rate_gbps, 4.0);
}

TEST(Transport, PacingSpacesPackets) {
  Fabric fab([](sim::Simulator& s) { return topo::make_dumbbell(s, 1, 1); }, 5);
  for (std::size_t h = 0; h < fab.net().host_count(); ++h) {
    const HostId host{static_cast<std::int32_t>(h)};
    fab.adopt_stack(host, std::make_unique<PacedStack>(fab.net(), fab.vms(), host,
                                                       TransportOptions{}, fab.rng().fork(h)));
  }
  fab.install_pair_metering(1_ms);
  const TenantId t = fab.vms().add_tenant("p", 1_Gbps);
  const VmPairId pair{fab.vms().add_vm(t, HostId{0}), fab.vms().add_vm(t, HostId{1})};
  auto& stack = static_cast<PacedStack&>(fab.stack_at(HostId{0}));
  stack.rate = Bandwidth::gbps(2);
  fab.keep_backlogged(pair, 0_ms, 20_ms);
  fab.sim().run_until(20_ms);
  RateMeter* m = fab.pair_meter(pair);
  ASSERT_NE(m, nullptr);
  EXPECT_NEAR(m->trailing_rate(20_ms, 10).gbit_per_sec(), 2.0, 0.2);
}

TEST(Transport, RoundRobinSharesNicBetweenConnections) {
  World w;
  const VmPairId p1 = w.make_pair(Bandwidth::gbps(1), HostId{0}, HostId{2});
  const VmPairId p2 = w.make_pair(Bandwidth::gbps(1), HostId{0}, HostId{3});
  w.fab.install_pair_metering(1_ms);
  w.fab.keep_backlogged(p1, 0_ms, 20_ms);
  w.fab.keep_backlogged(p2, 0_ms, 20_ms);
  w.fab.sim().run_until(20_ms);
  auto& stack = w.fab.stack_at(HostId{0});
  Connection* c1 = stack.find_connection(p1);
  Connection* c2 = stack.find_connection(p2);
  ASSERT_NE(c1, nullptr);
  ASSERT_NE(c2, nullptr);
  const double ratio = static_cast<double>(c1->bytes_sent_total) /
                       static_cast<double>(c2->bytes_sent_total);
  EXPECT_NEAR(ratio, 1.0, 0.1);
}

TEST(Transport, QueuedBytesAccounting) {
  World w;
  const VmPairId pair = w.make_pair();
  auto& stack = static_cast<WindowStack&>(w.fab.stack_at(HostId{0}));
  stack.window_bytes = 0.0;  // block sending entirely
  w.fab.send(pair, 10'000);
  w.fab.send(pair, 20'000);
  Connection* conn = stack.find_connection(pair);
  ASSERT_NE(conn, nullptr);
  EXPECT_EQ(conn->queued_bytes(), 30'000);
  EXPECT_TRUE(conn->has_backlog());
  EXPECT_EQ(conn->next_wire_size(1440, sim::kDataHeaderBytes), 1440 + sim::kDataHeaderBytes);
}

TEST(Transport, RttSamplesExcludeRetransmits) {
  World w;
  const VmPairId pair = w.make_pair();
  sim::Link* trunk = nullptr;
  for (sim::Link* l : w.fab.net().links()) {
    if (l->name() == "ToR-L->ToR-R") trunk = l;
  }
  w.fab.send(pair, 150'000);
  w.fab.sim().at(30_us, [&] { trunk->set_down(true); });
  w.fab.sim().at(400_us, [&] { trunk->set_down(false); });
  w.fab.sim().run_until(30_ms);
  // All recorded RTTs are sane (no timeout-length samples from rtx).
  const auto& rtt = w.fab.stack_at(HostId{0}).rtt_samples_us();
  ASSERT_FALSE(rtt.empty());
  EXPECT_LT(rtt.max(), 1000.0);
}

}  // namespace
}  // namespace ufab::transport

// Tests for Network wiring, path enumeration, ECMP tables and builders.
#include <gtest/gtest.h>

#include <set>

#include "src/topo/builders.hpp"
#include "src/topo/network.hpp"

namespace ufab::topo {
namespace {

using namespace ufab::time_literals;
using namespace ufab::unit_literals;

TEST(Builders, DumbbellShape) {
  sim::Simulator sim;
  auto net = make_dumbbell(sim, 2, 3);
  EXPECT_EQ(net->host_count(), 5u);
  EXPECT_EQ(net->switch_count(), 2u);
  // 1 trunk + 5 host links, duplex.
  EXPECT_EQ(net->links().size(), 12u);
}

TEST(Builders, TestbedMatchesPaper) {
  sim::Simulator sim;
  auto net = make_testbed(sim);
  EXPECT_EQ(net->host_count(), 8u);
  EXPECT_EQ(net->switch_count(), 10u);  // 2 core + 4 agg + 4 tor
}

TEST(Builders, FatTreeK4Counts) {
  sim::Simulator sim;
  auto net = make_fat_tree(sim, 4);
  EXPECT_EQ(net->host_count(), 16u);  // k^3/4
  EXPECT_EQ(net->switch_count(), 20u);  // 4 cores + 8 agg + 8 edge
}

TEST(Builders, FatTreeOversubscriptionHalvesCores) {
  sim::Simulator sim1;
  auto full = make_fat_tree(sim1, 4, 1);
  sim::Simulator sim2;
  auto half = make_fat_tree(sim2, 4, 2);
  EXPECT_EQ(full->switch_count() - half->switch_count(), 2u);  // 4 -> 2 cores
}

TEST(Network, PathsWithinRackAreSingleHop) {
  sim::Simulator sim;
  auto net = make_dumbbell(sim, 2, 2);
  const auto& paths = net->paths(HostId{0}, HostId{1});
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0].switches.size(), 1u);
  EXPECT_EQ(paths[0].links.size(), 2u);  // host uplink + ToR downlink
}

TEST(Network, LeafSpineHasOnePathPerSpine) {
  sim::Simulator sim;
  auto net = make_leaf_spine(sim, 2, 3, 4);
  // Host 0 is on leaf 1, host 4 on leaf 2.
  const auto& paths = net->paths(HostId{0}, HostId{4});
  EXPECT_EQ(paths.size(), 3u);
  for (const auto& p : paths) {
    EXPECT_EQ(p.switches.size(), 3u);  // leaf, spine, leaf
    EXPECT_EQ(p.links.size(), 4u);
  }
  // The three paths traverse three distinct spines.
  std::set<std::int32_t> spines;
  for (const auto& p : paths) spines.insert(p.switches[1].value());
  EXPECT_EQ(spines.size(), 3u);
}

TEST(Network, TestbedCrossPodPathCount) {
  sim::Simulator sim;
  auto net = make_testbed(sim);
  // S1 (pod 1) to S5 (pod 2): 2 aggs x 2 cores x 2 dst aggs = 8 paths.
  const auto& paths = net->paths(HostId{0}, HostId{4});
  EXPECT_EQ(paths.size(), 8u);
  for (const auto& p : paths) EXPECT_EQ(p.switches.size(), 5u);
}

TEST(Network, ReversePathMirrorsForward) {
  sim::Simulator sim;
  auto net = make_leaf_spine(sim, 2, 3, 2);
  const auto& fwd = net->paths(HostId{0}, HostId{2});
  const Path rev = net->reverse(fwd[0], HostId{0}, HostId{2});
  EXPECT_EQ(rev.links.size(), fwd[0].links.size());
  EXPECT_EQ(rev.switches.size(), fwd[0].switches.size());
  // Reverse visits the same switches in opposite order.
  for (std::size_t i = 0; i < rev.switches.size(); ++i) {
    EXPECT_EQ(rev.switches[i], fwd[0].switches[fwd[0].switches.size() - 1 - i]);
  }
  // Reverse links are the duplex partners: they connect the same node pairs.
  for (std::size_t i = 0; i < rev.links.size(); ++i) {
    const auto* f = net->link(fwd[0].links[fwd[0].links.size() - 1 - i]);
    const auto* r = net->link(rev.links[i]);
    EXPECT_NE(f, r);
    EXPECT_EQ(f->capacity(), r->capacity());
  }
}

TEST(Network, BaseRttMatchesHandComputation) {
  sim::Simulator sim;
  FabricOptions opts;
  opts.prop_delay = 1_us;
  auto net = make_testbed(sim, opts);
  // Cross-pod: 6 links each way. Forward: 6 x (1 us + 1.2 us MTU @10G).
  // Reverse: 6 x (1 us + 51 ns ack). Total = 13.2 + 6.3... = 19.5 us.
  const TimeNs rtt = net->base_rtt(HostId{0}, HostId{4});
  const std::int64_t expect =
      6 * (1000 + 1200) + 6 * (1000 + Bandwidth::gbps(10).tx_time(64).ns());
  EXPECT_EQ(rtt.ns(), expect);
  EXPECT_NEAR(rtt.us(), 19.5, 0.5);  // close to the paper's 24 us scale
}

TEST(Network, SourceRouteDeliversToDestination) {
  sim::Simulator sim;
  auto net = make_testbed(sim);
  const auto& paths = net->paths(HostId{0}, HostId{7});

  struct Capture : sim::HostStack {
    std::vector<sim::PacketPtr> got;
    void on_packet(sim::PacketPtr pkt) override { got.push_back(std::move(pkt)); }
    sim::PacketPtr pull() override { return nullptr; }
  };
  Capture rx;
  net->host(HostId{7}).set_stack(&rx);

  for (const auto& path : paths) {
    auto pkt = sim::Packet::make(sim::PacketKind::kData, VmPairId{VmId{0}, VmId{7}}, TenantId{0},
                                 HostId{0}, HostId{7}, 1500);
    pkt->route = path.route;
    net->host(HostId{0}).send_control(std::move(pkt));
    sim.run();
  }
  EXPECT_EQ(rx.got.size(), paths.size());
}

TEST(Network, EcmpDeliversWithoutSourceRoute) {
  sim::Simulator sim;
  auto net = make_testbed(sim);

  struct Capture : sim::HostStack {
    int got = 0;
    void on_packet(sim::PacketPtr) override { ++got; }
    sim::PacketPtr pull() override { return nullptr; }
  };
  Capture rx;
  net->host(HostId{6}).set_stack(&rx);

  for (int flow = 0; flow < 32; ++flow) {
    auto pkt = sim::Packet::make(sim::PacketKind::kData, VmPairId{VmId{0}, VmId{6}}, TenantId{0},
                                 HostId{0}, HostId{6}, 1500);
    pkt->message_id = static_cast<std::uint64_t>(flow);
    net->host(HostId{0}).send_control(std::move(pkt));
  }
  sim.run();
  EXPECT_EQ(rx.got, 32);
}

TEST(Network, EcmpSpreadsFlowsAcrossSpines) {
  sim::Simulator sim;
  auto net = make_leaf_spine(sim, 2, 4, 2);

  struct Capture : sim::HostStack {
    void on_packet(sim::PacketPtr) override {}
    sim::PacketPtr pull() override { return nullptr; }
  };
  Capture rx;
  net->host(HostId{2}).set_stack(&rx);

  for (int flow = 0; flow < 400; ++flow) {
    auto pkt = sim::Packet::make(sim::PacketKind::kData, VmPairId{VmId{0}, VmId{2}}, TenantId{0},
                                 HostId{0}, HostId{2}, 1500);
    pkt->message_id = static_cast<std::uint64_t>(flow);
    net->host(HostId{0}).send_control(std::move(pkt));
    sim.run();
  }
  // Each leaf->spine link should carry a reasonable share of the 400 flows.
  int used_uplinks = 0;
  for (const auto* l : net->links()) {
    if (l->name().rfind("Leaf1->Spine", 0) == 0 && l->tx_bytes_cum() > 0) ++used_uplinks;
  }
  EXPECT_EQ(used_uplinks, 4);
}

TEST(Network, HashPolarizationCollapsesPathDiversity) {
  // With the same hash salt at both tiers, second-tier choices correlate with
  // first-tier choices, so some core links stay idle (the Fig. 3 pathology).
  sim::Simulator sim;
  auto net = make_fat_tree(sim, 4);
  net->set_hash_polarization(true);

  struct Capture : sim::HostStack {
    void on_packet(sim::PacketPtr) override {}
    sim::PacketPtr pull() override { return nullptr; }
  };
  Capture rx;
  // Cross-pod pair in a k=4 fat tree: host 0 (pod 1) -> host 15 (pod 4).
  net->host(HostId{15}).set_stack(&rx);
  for (int flow = 0; flow < 600; ++flow) {
    auto pkt = sim::Packet::make(sim::PacketKind::kData, VmPairId{VmId{0}, VmId{15}}, TenantId{0},
                                 HostId{0}, HostId{15}, 1500);
    pkt->message_id = static_cast<std::uint64_t>(flow);
    net->host(HostId{0}).send_control(std::move(pkt));
    sim.run();
  }
  int used_agg_up = 0;
  int total_agg_up = 0;
  for (const auto* l : net->links()) {
    if (l->name().rfind("Agg1->Core", 0) == 0 || l->name().rfind("Agg2->Core", 0) == 0) {
      ++total_agg_up;
      if (l->tx_bytes_cum() > 0) ++used_agg_up;
    }
  }
  EXPECT_EQ(total_agg_up, 4);
  EXPECT_LT(used_agg_up, 3);  // polarization: correlated tiers use fewer uplinks
}

}  // namespace
}  // namespace ufab::topo

// Topology partitioner invariants: full node coverage, hosts never cut from
// their ToR subtree, cut links exactly the shard-crossing links, lookahead
// equal to the true minimum boundary latency, and determinism on repeat.
#include <algorithm>
#include <cstdint>
#include <functional>
#include <limits>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "src/sim/simulator.hpp"
#include "src/topo/builders.hpp"
#include "src/topo/network.hpp"
#include "src/topo/partition.hpp"

namespace ufab::topo {
namespace {

using BuildFn = std::function<std::unique_ptr<Network>(sim::Simulator&)>;

void check_partition(Network& net, int want, int expect_shards) {
  const Partition part = partition_network(net, want);
  ASSERT_EQ(part.shards, expect_shards) << "want=" << want;
  ASSERT_EQ(part.node_shard.size(), net.node_count());
  ASSERT_EQ(part.link_dst_shard.size(), net.links().size());

  // Every node lands on a valid shard; every shard holds at least one host.
  std::set<int> host_nodes;
  std::vector<int> hosts_per(static_cast<std::size_t>(part.shards), 0);
  for (std::size_t h = 0; h < net.host_count(); ++h) {
    const NodeId n = net.node_of(HostId{static_cast<std::int32_t>(h)});
    host_nodes.insert(n.value());
    const int s = part.shard_of(n);
    ASSERT_GE(s, 0);
    ASSERT_LT(s, part.shards);
    ++hosts_per[static_cast<std::size_t>(s)];
  }
  for (int s = 0; s < part.shards; ++s) {
    EXPECT_GE(hosts_per[static_cast<std::size_t>(s)], 1) << "shard " << s << " has no hosts";
  }

  // Cut links are exactly the links whose endpoints sit on different shards,
  // link_dst_shard names the peer's shard, and the lookahead is the minimum
  // propagation delay over those links.
  std::set<std::int32_t> cut{};
  for (const LinkId lid : part.cut_links) cut.insert(lid.value());
  ASSERT_EQ(part.cut_link_prop.size(), part.cut_links.size());
  for (std::size_t i = 0; i < part.cut_links.size(); ++i) {
    EXPECT_EQ(part.cut_link_prop[i], net.link(part.cut_links[i])->prop_delay());
  }
  std::int64_t min_prop = std::numeric_limits<std::int64_t>::max();
  std::vector<TimeNs> out_la(static_cast<std::size_t>(part.shards), TimeNs::max());
  for (const sim::Link* l : net.links()) {
    const int from = part.shard_of(net.link_owner(l->id()));
    const int to = part.shard_of(net.link_owner(net.reverse_link(l->id())));
    const int dst = part.link_dst_shard.at(static_cast<std::size_t>(l->id().value()));
    if (from == to) {
      EXPECT_EQ(dst, -1) << l->name();
      EXPECT_FALSE(cut.count(l->id().value())) << l->name();
    } else {
      EXPECT_EQ(dst, to) << l->name();
      EXPECT_TRUE(cut.count(l->id().value())) << l->name();
      min_prop = std::min(min_prop, l->prop_delay().ns());
      TimeNs& la = out_la[static_cast<std::size_t>(from)];
      if (l->prop_delay() < la) la = l->prop_delay();
      // Hosts always stay with their ToR: a NIC link is never a cut link.
      EXPECT_FALSE(host_nodes.count(net.link_owner(l->id()).value())) << l->name();
      EXPECT_FALSE(host_nodes.count(net.link_owner(net.reverse_link(l->id())).value()))
          << l->name();
    }
  }
  if (part.shards == 1) {
    EXPECT_TRUE(part.cut_links.empty());
    EXPECT_EQ(part.lookahead, TimeNs::max());
    EXPECT_TRUE(part.shard_out_lookahead.empty());
  } else {
    ASSERT_FALSE(part.cut_links.empty());
    EXPECT_EQ(part.lookahead.ns(), min_prop);
    EXPECT_GT(part.lookahead.ns(), 0);
    // Per-source-shard outgoing strides: min prop over that shard's cut
    // links, feeding the engine's solo barrier-skip rounds.
    ASSERT_EQ(part.shard_out_lookahead.size(), static_cast<std::size_t>(part.shards));
    for (int s = 0; s < part.shards; ++s) {
      EXPECT_EQ(part.shard_out_lookahead[static_cast<std::size_t>(s)],
                out_la[static_cast<std::size_t>(s)])
          << "shard " << s;
    }
  }

  // Deterministic: the same topology and request reproduce the same cut.
  const Partition again = partition_network(net, want);
  EXPECT_EQ(part.node_shard, again.node_shard);
  EXPECT_EQ(part.lookahead, again.lookahead);
  ASSERT_EQ(part.cut_links.size(), again.cut_links.size());
  for (std::size_t i = 0; i < part.cut_links.size(); ++i) {
    EXPECT_EQ(part.cut_links[i].value(), again.cut_links[i].value());
  }
}

void check_topology(const BuildFn& build) {
  for (const int want : {1, 2, 4}) {
    sim::Simulator sim;
    auto net = build(sim);
    check_partition(*net, want, want);
  }
}

TEST(Partition, FatTreeK4SupportsOneTwoFourShards) {
  check_topology([](sim::Simulator& s) { return make_fat_tree(s, 4, 1, {}); });
}

TEST(Partition, FatTreeK8SupportsOneTwoFourShards) {
  check_topology([](sim::Simulator& s) { return make_fat_tree(s, 8, 1, {}); });
}

TEST(Partition, OversubscribedFatTreeSupportsOneTwoFourShards) {
  check_topology([](sim::Simulator& s) { return make_fat_tree(s, 4, 2, {}); });
}

TEST(Partition, FatTreeK16PartitionsCleanly) {
  // 1024 hosts, 320 switches: the fig17 UFAB_FIG17_K=16 scale.  All the
  // generic invariants hold — in particular no host is ever separated from
  // its ToR — at every shard count the perf grid uses.
  for (const int want : {1, 2, 4, 8, 16}) {
    sim::Simulator sim;
    auto net = make_fat_tree(sim, 16, 1, {});
    check_partition(*net, want, want);
  }
}

TEST(Partition, TieredCorePropSetsCutLookahead) {
  // With short in-pod fibers and long agg<->core spans (the fig17 bench
  // defaults), a per-pod cut lands exclusively on the core tier, so the
  // epoch lookahead is the core prop — 10x the uniform default.
  FabricOptions opts;
  opts.prop_delay = TimeNs{500};
  opts.core_prop = TimeNs{5'000};
  sim::Simulator sim;
  auto net = make_fat_tree(sim, 8, 1, opts);
  const Partition part = partition_network(*net, 4);
  ASSERT_EQ(part.shards, 4);
  EXPECT_EQ(part.lookahead, TimeNs{5'000});
  ASSERT_EQ(part.shard_out_lookahead.size(), 4u);
  for (const TimeNs la : part.shard_out_lookahead) EXPECT_EQ(la, TimeNs{5'000});
  for (const TimeNs p : part.cut_link_prop) EXPECT_EQ(p, TimeNs{5'000});
}

TEST(Partition, TestbedSupportsOneTwoFourShards) {
  check_topology([](sim::Simulator& s) { return make_testbed(s, {}); });
}

TEST(Partition, ClampsWhenTopologyCannotSplit) {
  // A dumbbell has a single ToR pair and no strippable upper tier that would
  // leave two host-bearing components; the partitioner clamps to 1 shard.
  sim::Simulator sim;
  auto net = make_dumbbell(sim, 4, 4, {});
  const Partition part = partition_network(*net, 4);
  EXPECT_EQ(part.shards, 1);
  EXPECT_TRUE(part.cut_links.empty());
  EXPECT_EQ(part.lookahead, TimeNs::max());
}

TEST(Partition, BalancesHostsAcrossShards) {
  sim::Simulator sim;
  auto net = make_fat_tree(sim, 4, 1, {});
  const Partition part = partition_network(*net, 4);
  std::vector<int> hosts_per(4, 0);
  for (std::size_t h = 0; h < net->host_count(); ++h) {
    ++hosts_per[static_cast<std::size_t>(
        part.shard_of(net->node_of(HostId{static_cast<std::int32_t>(h)})))];
  }
  // k=4: four pods of four hosts, one pod per shard.
  for (const int n : hosts_per) EXPECT_EQ(n, 4);
}

}  // namespace
}  // namespace ufab::topo

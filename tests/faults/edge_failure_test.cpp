// Edge failure-handling unit scenarios: finish-probe retry exhaustion (the
// deregistration path must be leak-free even when the path never heals) and
// probe-timeout-driven migration (`probe_losses_to_migrate`).
#include <gtest/gtest.h>

#include "tests/faults/fault_world.hpp"

namespace ufab::faults {
namespace {

using namespace ufab::time_literals;
using namespace ufab::unit_literals;

TEST(EdgeFailure, FinishProbeRetryExhaustionIsLeakFree) {
  // One short message registers the pair on both ToRs; then the trunk dies
  // before the idle finish probe can cross it.  The edge must retry with
  // backoff, exhaust its budget, abandon without leaking pending state, and
  // leave the orphaned far-side registration to the core's silent-quit sweep.
  edge::EdgeConfig cfg;
  cfg.finish_probe_retries = 3;
  telemetry::CoreConfig core;
  core.clean_period = 5_ms;
  FaultWorld w([](sim::Simulator& s) { return topo::make_dumbbell(s, 2, 2); }, cfg, core);
  const TenantId t = w.fab.vms().add_tenant("A", 1_Gbps);
  const VmPairId pair{w.fab.vms().add_vm(t, HostId{0}), w.fab.vms().add_vm(t, HostId{2})};
  const LinkId trunk = w.fab.net().paths(HostId{0}, HostId{2})[0].links[1];
  // Down after the transfer completes (~0.3 ms) but before the idle finish
  // probe goes out (idle_finish_timeout = 1 ms); never comes back in-run.
  w.plane.flap(trunk, TimeNs{900'000}, 50_ms).arm();
  w.fab.send(pair, 100'000);
  w.fab.sim().run_until(20_ms);

  auto& e = w.edge(HostId{0});
  EXPECT_GE(e.finish_retries(), 2);
  EXPECT_EQ(e.finish_abandoned(), 1);
  EXPECT_EQ(e.pending_finish_count(), 0u);
  // The near ToR deregistered synchronously (the finish probe crossed its
  // egress before dying on the wire); the far ToR's leak was reclaimed by
  // the sweep.  Nothing anywhere still counts the pair.
  EXPECT_DOUBLE_EQ(w.total_phi(), 0.0);
}

TEST(EdgeFailure, ProbeTimeoutLossDrivesMigration) {
  // 100% probe-class loss on the current path's fabric links: data still
  // flows, but consecutive probe timeouts must hit `probe_losses_to_migrate`
  // and move the pair to the clean spine.
  FaultWorld w([](sim::Simulator& s) { return topo::make_leaf_spine(s, 2, 2, 2); });
  const TenantId t = w.fab.vms().add_tenant("A", 2_Gbps);
  const VmPairId pair{w.fab.vms().add_vm(t, HostId{0}), w.fab.vms().add_vm(t, HostId{2})};
  w.fab.keep_backlogged(pair, 0_ms, 60_ms);

  w.fab.sim().at(10_ms, [&] {
    auto* conn = w.edge(HostId{0}).ufab_connection(pair);
    ASSERT_NE(conn, nullptr);
    const auto& path = conn->current_path();
    for (std::size_t i = 1; i + 1 < path.links.size(); ++i) {
      w.plane.loss(path.links[i], 1.0, LossClass::kProbeOnly, 10_ms);
    }
    w.plane.arm();
  });
  w.fab.sim().run_until(60_ms);

  auto& e = w.edge(HostId{0});
  EXPECT_GE(e.probe_timeouts(), e.config().probe_losses_to_migrate);
  EXPECT_GE(e.probe_retransmits(), 1);  // first timeout backs off and resends
  EXPECT_GE(e.migrations(), 1);
  EXPECT_GT(w.plane.counters().loss_drops, 0);
  // Full rate restored on the new path.
  EXPECT_GT(w.pair_rate_gbps(pair, 40_ms, 60_ms), 8.0);
}

}  // namespace
}  // namespace ufab::faults
